// Distributed: the full Figure-2 architecture over real TCP sockets.
//
// An analysis center listens on localhost; 32 collector nodes run in their
// own goroutines, each processing its traffic locally and shipping only the
// per-epoch digest over the wire. The center stacks whatever arrives and
// runs the aligned detector. (cmd/dcsd and cmd/dcsnode provide the same
// roles as standalone binaries for multi-process runs.)
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/transport"
)

func main() {
	const (
		routers  = 32
		carriers = 12
		segment  = 536
		bits     = 1 << 15
		hashSeed = 31337
	)

	// The analysis center: collect digests until every node reported.
	var mu sync.Mutex
	digests := make(map[int]*bitvec.Vector)
	done := make(chan struct{})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		d, ok := m.(transport.AlignedDigest)
		if !ok {
			return
		}
		mu.Lock()
		digests[d.RouterID] = d.Bitmap
		if len(digests) == routers {
			close(done)
		}
		mu.Unlock()
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analysis center listening on %s\n", srv.Addr())

	// Shared content all carrier nodes will observe.
	crng := stats.NewRand(11)
	content := trafficgen.NewContent(crng, 18, segment)

	var wg sync.WaitGroup
	for r := 0; r < routers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			col, err := aligned.NewCollector(aligned.CollectorConfig{Bits: bits, HashSeed: hashSeed})
			if err != nil {
				log.Printf("router %d: %v", r, err)
				return
			}
			rng := stats.NewRand(uint64(1000 + r))
			bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
				Packets: 10000, SegmentSize: segment,
			})
			if err != nil {
				log.Printf("router %d: %v", r, err)
				return
			}
			for _, p := range bg {
				col.Update(p)
			}
			if r < carriers {
				for _, p := range content.PlantAligned(packet.FlowLabel(r), segment) {
					col.Update(p)
				}
			}
			client, err := transport.Dial(srv.Addr(), 5*time.Second)
			if err != nil {
				log.Printf("router %d dial: %v", r, err)
				return
			}
			defer client.Close()
			if err := client.Send(transport.AlignedDigest{
				RouterID: r, Epoch: 1, Bitmap: col.Digest(),
			}); err != nil {
				log.Printf("router %d send: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		log.Fatal("timed out waiting for digests")
	}

	mu.Lock()
	vecs := make([]*bitvec.Vector, routers)
	for r, v := range digests {
		vecs[r] = v
	}
	mu.Unlock()

	det, err := aligned.Detect(aligned.FromDigests(vecs), aligned.RefinedConfig(512))
	if err != nil {
		log.Fatal(err)
	}
	if !det.Found {
		fmt.Println("no common content detected")
		return
	}
	fmt.Printf("common content detected across the wire: %d routers implicated: %v\n",
		len(det.Rows), det.Rows)
	fmt.Printf("(ground truth: routers 0..%d carried the object)\n", carriers-1)
}
