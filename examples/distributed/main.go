// Distributed: the full Figure-2 architecture over real TCP sockets.
//
// An analysis center listens on localhost; 32 collector nodes run in their
// own goroutines, each processing two epochs of traffic locally and shipping
// only the per-epoch digests over the wire (through a reconnecting client,
// as a production collector would). The common content appears only in the
// second epoch, and the collectors ship their digests in whatever order the
// scheduler produces — the center's epoch-keyed windows still analyze each
// epoch separately: epoch 1 stays clean, epoch 2 lights up. (cmd/dcsd and
// cmd/dcsnode provide the same roles as standalone binaries for
// multi-process runs.)
//
// The center also journals every ingested digest, and this example makes a
// point of crashing: after all digests arrive, the first center is dropped
// without ever analyzing — as a kill -9 would drop it — and a second center
// recovers both epochs purely from the journal replay. The verdicts printed
// at the end come from the recovered center.
//
// The same crash-recovery works across real processes with the binaries:
//
//	dcsd -listen 127.0.0.1:7460 -journal /tmp/dcsd-journal &
//	dcsnode -center 127.0.0.1:7460 -router 0 -epoch 1 -carry &
//	...                      # more collectors, more epochs
//	kill -9 %1               # crash the center mid-window
//	dcsd -listen 127.0.0.1:7460 -journal /tmp/dcsd-journal
//	# logs: "journal: recovered N digests ..." and the epochs analyze
//	# exactly as they would have without the crash.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/center"
	"dcstream/internal/journal"
	"dcstream/internal/metrics"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/transport"
)

func main() {
	const (
		routers  = 32
		carriers = 12
		epochs   = 2
		segment  = 536
		bits     = 1 << 15
		hashSeed = 31337
	)

	// The analysis center: epoch-keyed windowed ingest behind a TCP sink,
	// with every digest journaled before it reaches the in-RAM window.
	jdir, err := os.MkdirTemp("", "dcs-journal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(jdir)
	jr, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	c := center.New(center.Config{SubsetSize: 512, MaxEpochs: epochs})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		if err := jr.Append(m); err != nil {
			log.Printf("journal append: %v", err)
		}
		c.Ingest(m)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("analysis center listening on %s (journal in %s)\n", srv.Addr(), jdir)

	// Shared content all carrier nodes will observe — in epoch 2 only.
	crng := stats.NewRand(11)
	content := trafficgen.NewContent(crng, 18, segment)

	var wg sync.WaitGroup
	for r := 0; r < routers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := transport.NewReconnectingClient(srv.Addr(), transport.ReconnectConfig{})
			defer client.Close()
			rng := stats.NewRand(uint64(1000 + r))
			for epoch := 1; epoch <= epochs; epoch++ {
				col, err := aligned.NewCollector(aligned.CollectorConfig{Bits: bits, HashSeed: hashSeed})
				if err != nil {
					log.Printf("router %d: %v", r, err)
					return
				}
				bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
					Packets: 10000, SegmentSize: segment,
				})
				if err != nil {
					log.Printf("router %d: %v", r, err)
					return
				}
				for _, p := range bg {
					col.Update(p)
				}
				if epoch == epochs && r < carriers {
					for _, p := range content.PlantAligned(packet.FlowLabel(r), segment) {
						col.Update(p)
					}
				}
				if err := client.Send(transport.AlignedDigest{
					RouterID: r, Epoch: epoch, Bitmap: col.Digest(),
				}); err != nil {
					log.Printf("router %d send: %v", r, err)
				}
			}
			if left := client.Flush(10 * time.Second); left > 0 {
				log.Printf("router %d: %d digests undelivered", r, left)
			}
		}(r)
	}
	wg.Wait()

	// Every collector flushed before returning; wait for the last frames to
	// clear the server's handler goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if a, _ := c.Pending(); a == routers*epochs {
			break
		}
		if time.Now().After(deadline) {
			a, _ := c.Pending()
			log.Fatalf("timed out waiting for digests (%d/%d)", a, routers*epochs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash. The first center dies here with both epochs still buffered in
	// RAM and nothing analyzed — everything it knew is gone. (The journal's
	// file is deliberately not closed either; recovery must cope with the
	// state a kill -9 leaves behind.)
	srv.Close()
	c = nil
	fmt.Println("center crashed before analyzing; recovering from the journal...")

	rec, err := journal.Open(jdir, journal.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()
	recovered := center.New(center.Config{SubsetSize: 512, MaxEpochs: epochs})
	// One registry over every layer of the recovered deployment — exactly
	// what `dcsd -http` serves at /metrics; here it is dumped to stdout at
	// the end instead.
	reg := metrics.NewRegistry()
	recovered.RegisterMetrics(reg)
	rec.RegisterMetrics(reg)
	if err := rec.Replay(func(m transport.Message) error {
		recovered.Ingest(m)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	js := rec.Stats()
	fmt.Printf("journal replay: %d digests recovered (%d torn tails truncated)\n",
		js.FramesReplayed, js.TailsTruncated)

	for epoch := 1; epoch <= epochs; epoch++ {
		rep, err := recovered.Analyze(epoch)
		if err != nil {
			log.Fatal(err)
		}
		// Telling the journal the epoch is done lets it purge the frames.
		if err := rec.EpochAnalyzed(epoch); err != nil {
			log.Fatal(err)
		}
		if rep.Aligned == nil {
			fmt.Printf("epoch %d: nothing to correlate\n", epoch)
			continue
		}
		if !rep.Aligned.Detection.Found {
			fmt.Printf("epoch %d: no common content across %d routers\n", epoch, rep.Aligned.Routers)
			continue
		}
		fmt.Printf("epoch %d: common content detected across the wire: %d routers implicated: %v\n",
			epoch, len(rep.Aligned.RouterIDs), rep.Aligned.RouterIDs)
	}
	fmt.Printf("(ground truth: routers 0..%d carried the object, in epoch %d only)\n", carriers-1, epochs)

	snap := recovered.Stats().Snapshot()
	fmt.Printf("recovered-center counters: ingested=%d late=%d dup=%d dropped=%d analyzed=%d\n",
		snap.DigestsIngested, snap.LateDigests, snap.DuplicateDigests, snap.DroppedDigests,
		snap.EpochsAnalyzed)

	fmt.Println("\n--- /metrics exposition of the recovered deployment ---")
	if _, err := reg.WriteTo(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
