// Hotobject: detecting a hot P2P file against Zipf-skewed backbone traffic,
// and why per-link detection fails — the paper's core motivation (§I-A).
//
// A newly released file is fetched through many different links, but only
// once or twice per link, so a single-vantage prevalence detector
// (EarlyBird-style) never fires. Raw aggregation sees it perfectly but has
// to ship every payload byte to the center. DCS detects it from digests
// three orders of magnitude smaller.
//
//	go run ./examples/hotobject
package main

import (
	"fmt"
	"log"

	"dcstream/internal/baseline"
	"dcstream/internal/core"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func main() {
	const (
		routers    = 40
		carriers   = 18 // links the hot file crosses
		segment    = 536
		fileChunks = 25
		localAlarm = 5 // EarlyBird-style local repetition threshold
	)

	sys, err := core.NewAligned(core.AlignedConfig{
		Routers: routers, BitmapBits: 1 << 16, HashSeed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	agg := baseline.NewRawAggregator(77)
	locals := make([]*baseline.LocalDetector, routers)

	rng := stats.NewRand(5)
	hotFile := trafficgen.NewContent(rng, fileChunks, segment)

	for r := 0; r < routers; r++ {
		locals[r] = baseline.NewLocalDetector(77, localAlarm)
		// Zipf-skewed flow mix, like real backbone traffic.
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 20000, SegmentSize: segment, Flows: 4000, ZipfS: 1.2,
		})
		if err != nil {
			log.Fatal(err)
		}
		var pkts []packet.Packet
		pkts = append(pkts, bg...)
		if r < carriers {
			pkts = trafficgen.Mix(rng, pkts, hotFile.PlantAligned(packet.FlowLabel(1<<40|uint64(r)), segment))
		}
		for _, p := range pkts {
			sys.Router(r).Update(p)
			locals[r].Observe(p)
			agg.Observe(r, p)
		}
	}

	// 1. Single-vantage baseline: does any router alarm on the hot file?
	fileAlarms := 0
	chunkFp := map[uint64]bool{}
	for _, p := range hotFile.PlantAligned(0, segment) {
		chunkFp[locals[0].Fingerprint(p.Payload)] = true
	}
	for _, d := range locals {
		for _, fp := range d.Alarms() {
			if chunkFp[fp] {
				fileAlarms++
				break
			}
		}
	}
	fmt.Printf("EarlyBird-style local detectors (threshold %d): %d/%d routers alarmed on the hot file\n",
		localAlarm, fileAlarms, routers)

	// 2. Raw aggregation: perfect but unshippable.
	common := agg.CommonPayloads(carriers)
	fmt.Printf("raw aggregation: %d payloads seen at >= %d routers, at the cost of shipping %.1f MB\n",
		len(common), carriers, float64(agg.BytesShipped())/1e6)

	// 3. DCS: same answer from kilobytes of digests.
	report, err := sys.EndEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DCS: shipped %.1f KB of digests (%.0fx less than raw)\n",
		float64(report.DigestBytes)/1e3,
		float64(agg.BytesShipped())/float64(report.DigestBytes))
	if !report.Detection.Found {
		fmt.Println("DCS: no common content found (unexpected for this scenario)")
		return
	}
	hit := 0
	for _, r := range report.Detection.Rows {
		if r < carriers {
			hit++
		}
	}
	fmt.Printf("DCS: hot object detected; %d/%d carrier links identified (%d total flagged)\n",
		hit, carriers, len(report.Detection.Rows))
}
