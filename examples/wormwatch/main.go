// Wormwatch: early warning for an email worm — the unaligned case.
//
// An email worm propagates as a fixed binary attachment behind a variable
// SMTP header ("From", "To", "Subject" differ per victim), so the same
// content packetizes differently at every router: the paper's unaligned
// case (§IV). Each router runs the offset-sampling + flow-splitting
// collector; the analysis center merges the digests, induces the random
// graph, runs the Erdős–Rényi phase-transition test, and — when it fires —
// identifies the infected paths with the greedy core finder.
//
//	go run ./examples/wormwatch
package main

import (
	"fmt"
	"log"

	"dcstream/internal/core"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/unaligned"
)

// smtpHeader fabricates a variable-length header like the ones Nimda-era
// mail worms carried: per-victim fields before the fixed attachment bytes.
func smtpHeader(rng interface{ Intn(int) int }, victim int) []byte {
	subjects := []string{"Hi", "Your document", "Re: details", "Important!", "Check this out"}
	h := fmt.Sprintf(
		"From: user%d@infected.example\r\nTo: victim%d@target.example\r\nSubject: %s\r\nMIME-Version: 1.0\r\n\r\n",
		rng.Intn(100000), victim, subjects[rng.Intn(len(subjects))])
	return []byte(h)
}

func main() {
	const (
		routers  = 24
		infected = 14 // links the worm's SMTP sessions cross
		segment  = 536
		wormLen  = 100 // attachment segments ≈ 54 KB binary
	)

	collectorCfg := unaligned.CollectorConfig{
		Groups: 4, ArraysPerGroup: 10, ArrayBits: 1024,
		SegmentSize: segment, FragmentLen: 8, MinPayload: 400,
		HashSeed: 4242,
	}
	sys, err := core.NewUnaligned(core.UnalignedConfig{
		Routers:   routers,
		Collector: collectorCfg,
		// At this small scale the default 0.5/n background edge probability
		// leaves fat subcritical tails; a quarter of the phase-transition
		// point keeps the null quiet (cf. core.CalibrateComponentThreshold).
		TargetP1: 0.25 / float64(routers*4),
		Seed:     1234,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := stats.NewRand(99)
	worm := trafficgen.NewContent(rng, wormLen, segment) // the fixed attachment

	for r := 0; r < routers; r++ {
		// Background: ≈30% array fill of ordinary traffic.
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 365 * collectorCfg.Groups, SegmentSize: segment,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range bg {
			sys.Router(r).Update(p)
		}
		if r < infected {
			// One worm email crosses this link: variable SMTP header, then
			// the attachment. The header length modulo the segment size is
			// what shifts the packetization.
			hdr := smtpHeader(rng, r)
			obj := append(append([]byte(nil), hdr...), worm.Data...)
			flow := packet.FlowLabel(1<<50 | uint64(r))
			for _, p := range packet.Packetize(flow, obj, segment) {
				sys.Router(r).Update(p)
			}
		}
	}

	report, err := sys.EndEpoch()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ER test: largest connected component %d (threshold %d)\n",
		report.ER.LargestComponent, report.ER.Threshold)
	if !report.ER.PatternDetected {
		fmt.Println("no wide-spread common content this epoch")
		return
	}
	fmt.Println("ALERT: statistically impossible correlation across links — likely worm or spam campaign")
	fmt.Printf("  implicated routers: %v\n", report.RouterIDs)
	fmt.Printf("  (ground truth: the worm crossed routers 0..%d)\n", infected-1)
	fmt.Println("  next step per §IV-B: enable packet logging at these routers to extract the signature")
}
