// Quickstart: the smallest end-to-end DCS deployment.
//
// 40 simulated routers each observe an epoch of background traffic; 16 of
// them also carry one instance of the same 20-packet object (the aligned
// case — think a hot file fetched through different links). Each router
// reduces its traffic to a 64 Kbit digest; the analysis center stacks the
// digests and runs the greedy ASID detector.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dcstream/internal/core"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func main() {
	const (
		routers  = 40
		carriers = 16
		segment  = 536
	)

	sys, err := core.NewAligned(core.AlignedConfig{
		Routers:    routers,
		BitmapBits: 1 << 16,
		HashSeed:   2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := stats.NewRand(7)
	content := trafficgen.NewContent(rng, 20, segment)

	var rawBytes int64
	for r := 0; r < routers; r++ {
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 20000, SegmentSize: segment,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, p := range bg {
			sys.Router(r).Update(p)
			rawBytes += int64(len(p.Payload))
		}
		if r < carriers {
			for _, p := range content.PlantAligned(packet.FlowLabel(r), segment) {
				sys.Router(r).Update(p)
				rawBytes += int64(len(p.Payload))
			}
		}
	}

	report, err := sys.EndEpoch()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("epoch analyzed: %d routers, %.1f MB of raw traffic, %.1f KB of digests (%.0fx reduction)\n",
		routers, float64(rawBytes)/1e6, float64(report.DigestBytes)/1e3,
		float64(rawBytes)/float64(report.DigestBytes))
	if !report.Detection.Found {
		fmt.Println("no common content found")
		return
	}
	fmt.Printf("common content detected after %d greedy iterations\n", report.Detection.Iterations)
	fmt.Printf("  routers implicated (%d): %v\n", len(report.Detection.Rows), report.Detection.Rows)
	fmt.Printf("  shared packet signature: %d bitmap columns (core %d)\n",
		len(report.Detection.Cols), len(report.Detection.CoreCols))
	fmt.Printf("  (ground truth: routers 0..%d carried a %d-packet object)\n",
		carriers-1, content.Segments(segment))
}
