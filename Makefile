GO ?= go

.PHONY: build test verify bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification tier: vet plus the race-enabled test run. The transport
# and center packages spin up real TCP servers and concurrent ingest, so the
# race detector is part of the acceptance bar, not an optional extra.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

clean:
	$(GO) clean ./...
