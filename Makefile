GO ?= go
FUZZTIME ?= 30s
BENCH_LABEL ?= local
BENCH_SCALE ?= default

.PHONY: build test lint verify bench bench-json bench-udp-json bench-streaming-json bench-shards-json chaos fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Project-invariant static analysis: seeded RNG discipline, wall-clock bans in
# deterministic packages, lock discipline, atomic hygiene, write-path error
# handling, and the dataflow rules (wire-taint, map-order determinism,
# goroutine lifecycle). Exits non-zero on any unsuppressed finding; see
# DESIGN.md for the rules and the //dcslint:ignore escape hatch. LINTFLAGS
# passes extra dcslint flags through, e.g.
#   make lint LINTFLAGS='-json'            machine-readable findings
#   make lint LINTFLAGS='-show-suppressed' audit the escape hatches
LINTFLAGS ?=
lint:
	$(GO) run ./cmd/dcslint $(LINTFLAGS) ./...

# Full verification tier: vet, dcslint, the race-enabled test run, and a
# shuffled-order pass. The transport and center packages spin up real TCP
# servers and concurrent ingest, so the race detector is part of the
# acceptance bar, not an optional extra; the shuffle run enforces that no test
# depends on execution order or leaked global state.
verify:
	$(GO) vet ./...
	$(GO) run ./cmd/dcslint ./...
	$(GO) test -race ./...
	$(GO) test -shuffle=on -count=1 ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Tracked benchmark baseline: run every experiment driver through dcsbench
# and record per-experiment wall time plus the environment (GOMAXPROCS,
# goos/goarch) in BENCH_$(BENCH_LABEL).json. Timing records from different
# environments are not comparable — the environment block is there so nobody
# compares them blindly.
bench-json:
	$(GO) run ./cmd/dcsbench -exp all -scale $(BENCH_SCALE) -json -label $(BENCH_LABEL) > BENCH_$(BENCH_LABEL).json

# Transport ingest baseline: the batched-UDP-versus-framed-TCP throughput
# comparison, committed as BENCH_udp.json. The human table (rates and the
# udp/tcp speedup) goes to the json file too so the committed baseline is
# self-describing.
bench-udp-json:
	$(GO) run ./cmd/dcsbench -exp ingest -scale $(BENCH_SCALE) -json -label udp > BENCH_udp.json

# Admission-control baseline: ingest throughput and the shed/reject ledger
# at 1x/2x/4x memory-budget pressure under both shedding policies,
# committed as BENCH_shed.json. The run fails if the digest ledger does not
# balance exactly, so the baseline doubles as an accounting regression check.
bench-shed-json:
	$(GO) run ./cmd/dcsbench -exp shed -scale $(BENCH_SCALE) -json -label shed > BENCH_shed.json

# Incremental-analysis baseline: per-Analyze finalize latency, batch vs
# incremental, on the same digest stream, committed as BENCH_streaming.json.
# The run itself enforces the equivalence contract — it fails if the two
# modes' reports are not bit-identical — so the committed speedup is always
# a speedup of the same computation.
bench-streaming-json:
	$(GO) run ./cmd/dcsbench -exp streaming -scale $(BENCH_SCALE) -json -label streaming > BENCH_streaming.json

# Shard-tier scaling baseline: per-shard critical path (slowest shard, each
# measured in isolation — the wall time of a one-host-per-shard deployment)
# at 1/2/4 shards over one seeded stream, committed as BENCH_shards.json.
# Every width's merged verdicts are checked against a single un-sharded
# center inside the run, so the committed scaling is scaling of the same
# computation; the span-share column carries the hash-partition bound the
# speedups are read against.
bench-shards-json:
	$(GO) run ./cmd/dcsbench -exp shards -scale $(BENCH_SCALE) -json -label shards > BENCH_shards.json

# Fault-injection tier: the chaos-proxy integration tests (crash recovery
# through a corrupting link, lossy-UDP degraded-never-wrong, quorum under
# partition, eventual delivery and CRC integrity) plus the journal,
# duplicate/eviction corners, and the mid-chaos /metrics scrape (exposition
# must parse and counters stay monotone while ingest churns). The overload
# tier rides here too: budget-forced shedding, journal degraded mode and
# re-arm, segment quarantine, sender-gate quarantine, and the combined
# flood+disk-full+garbage scenario (TestChaosOverloadDegradedNeverWrong),
# with the /healthz degradation surface checked in cmd/dcsd. All chaos
# schedules are seeded in the tests themselves, so the run is reproducible.
# The streaming tier rides here as well: incremental-vs-batch equivalence
# under dup/late/tombstone churn at several worker counts, the sliding-window
# straddle detection, and the accumulator memory-budget ledger. The shard
# tier's chaos suite joins them: kill-one-shard Degraded-never-wrong, the
# mid-span crash journal replay on a shard journal, and the scatter/gather
# bit-identity contracts.
chaos:
	$(GO) test -race -run 'Chaos|Crash|Partition|Quorum|Torn|Replay|Eviction|DupKeep|Metrics|Scrape|Degraded|Shed|Gate|Quarantin|ShortWrite|Rollback|Budget|Healthz|Overload|Incremental|Sliding|Shard' \
		./internal/center/... ./internal/transport/... ./internal/faultinject/... ./internal/journal/... ./internal/shard/... ./cmd/dcsd/...

# Short fuzz of the crash/byte-level decoders: the transport wire reader, the
# UDP datagram decoder, the journal recovery scanner, and the trace replay
# reader (the fourth wiretaint decode surface; its seeds carry the hostile
# length geometries the rule checks for). Native Go fuzzing only supports one
# target per invocation.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzReadDatagram -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzSegmentScan -fuzztime $(FUZZTIME) ./internal/journal
	$(GO) test -run '^$$' -fuzz FuzzTraceRead -fuzztime $(FUZZTIME) ./internal/traceio

clean:
	$(GO) clean ./...
