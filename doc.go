// Package dcstream is a from-scratch Go implementation of the Distributed
// Collaborative Streaming (DCS) system of "Scalable and Efficient Data
// Streaming Algorithms for Detecting Common Content in Internet Traffic"
// (Sung, Kumar, Li, Wang, Xu — ICDE 2006).
//
// The module root carries the benchmark suite that regenerates every table
// and figure of the paper's evaluation (bench_test.go); the implementation
// lives under internal/ (see README.md for the package map), runnable
// scenarios under examples/, and the operational binaries under cmd/.
//
// Entry points:
//
//   - internal/core: AlignedSystem and UnalignedSystem, the end-to-end
//     public API (collectors per router + analysis per epoch).
//   - internal/experiments: one harness per paper table/figure.
//   - cmd/dcsbench: regenerate any artifact at test/default/paper scale.
//   - cmd/dcsd + cmd/dcsnode: the distributed deployment over TCP.
//   - cmd/dcstrace + cmd/dcsreplay: record and replay packet traces.
//
// DESIGN.md holds the system inventory and substitution notes;
// EXPERIMENTS.md records paper-versus-measured results for every artifact.
package dcstream
