package lint

import (
	"go/ast"
	"go/types"
)

// seededrandRule flags the two ways an irreproducible random stream sneaks
// into library code: calls to math/rand's top-level functions (they draw from
// the shared global source, which Go seeds randomly since 1.20) and RNG
// sources seeded from the wall clock. Every experiment in this repository is
// a claim of the form "with seed S the Erdős–Rényi threshold test behaves
// like Figure 9" — a global or time-seeded source voids the claim, so RNGs
// must be constructed from an explicit seed (stats.NewRand or an explicitly
// seeded rand.NewSource) and flow through parameters.
var seededrandRule = Rule{
	Name: "seededrand",
	Doc:  "no global math/rand top-level functions or time-seeded sources in library code; RNGs flow from stats.NewRand / explicit seeds",
	Run:  runSeededrand,
}

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that consume the process-global source. Constructors (New,
// NewSource, NewZipf) are deliberately absent: building an explicitly seeded
// generator is exactly what the rule wants.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"Uint": true, "UintN": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

func isRandPkg(path string) bool { return path == "math/rand" || path == "math/rand/v2" }

func runSeededrand(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
			if !ok || !isRandPkg(pkgName.Imported().Path()) {
				return true
			}
			name := sel.Sel.Name
			switch {
			case globalRandFuncs[name]:
				pass.Reportf(call.Pos(),
					"call to global math/rand.%s draws from the process-wide source; take a *rand.Rand built by stats.NewRand(seed) instead", name)
			case name == "New" || name == "NewSource":
				if tn := timeNowCall(info, call.Args); tn != nil {
					// rand.New(rand.NewSource(time.Now()...)) nests two
					// constructors around one clock read; the innermost one
					// owns the report.
					if nested := nestedRandConstructor(info, call.Args); nested {
						return true
					}
					pass.Reportf(tn.Pos(),
						"rand.%s seeded from the wall clock makes every run irreproducible; use an explicit seed (stats.NewRand)", name)
				}
			}
			return true
		})
	}
}

// nestedRandConstructor reports whether any argument contains a nested
// rand.New/rand.NewSource call (which will be visited and reported on its
// own).
func nestedRandConstructor(info *types.Info, args []ast.Expr) bool {
	nested := false
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return !nested
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && (sel.Sel.Name == "New" || sel.Sel.Name == "NewSource") {
				if pkgIdent, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && isRandPkg(pn.Imported().Path()) {
						nested = true
						return false
					}
				}
			}
			return !nested
		})
	}
	return nested
}

// timeNowCall returns the first time.Now() call nested anywhere in the given
// argument expressions, or nil.
func timeNowCall(info *types.Info, args []ast.Expr) *ast.CallExpr {
	var found *ast.CallExpr
	for _, arg := range args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Now" {
				if pkgIdent, ok := sel.X.(*ast.Ident); ok {
					if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && pn.Imported().Path() == "time" {
						found = call
						return false
					}
				}
			}
			return true
		})
		if found != nil {
			return found
		}
	}
	return nil
}
