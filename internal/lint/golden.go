package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// expectation is one `// want "regexp"` comment in a golden file: the line
// must produce an unsuppressed finding whose "rule: message" string matches
// the pattern. A line may carry several quoted patterns.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// parseExpectations extracts want-comments from every non-test Go file in
// dir. The comment syntax follows x/tools' analysistest: trailing
// `// want "re1" "re2"` with each pattern in a Go string literal.
func parseExpectations(dir string) ([]*expectation, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	fset := token.NewFileSet()
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for rest != "" {
					if rest[0] != '"' && rest[0] != '`' {
						return nil, fmt.Errorf("%s:%d: malformed want comment: patterns must be quoted", path, pos.Line)
					}
					lit, remainder, err := cutStringLit(rest)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: %v", path, pos.Line, err)
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, pos.Line, err)
					}
					out = append(out, &expectation{file: path, line: pos.Line, pattern: re})
					rest = strings.TrimSpace(remainder)
				}
			}
		}
	}
	return out, nil
}

// cutStringLit splits a leading Go string literal off s.
func cutStringLit(s string) (value, rest string, err error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		switch {
		case s[i] == '\\' && quote == '"':
			i++
		case s[i] == quote:
			v, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad string literal %s: %v", s[:i+1], err)
			}
			return v, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated string literal in want comment")
}

// CheckGolden loads the package rooted at dir under the import path rel
// (whose segments drive rule scoping), runs the given rules, and compares
// the unsuppressed findings against the `// want` expectations. It returns
// one error string per mismatch: an expectation no finding matched, or a
// finding no expectation covers.
func CheckGolden(dir, rel string, rules []Rule) ([]string, error) {
	pkg, err := LoadDir(dir, rel)
	if err != nil {
		return nil, err
	}
	findings := Unsuppressed(RunRules(pkg, rules))
	wants, err := parseExpectations(dir)
	if err != nil {
		return nil, err
	}

	var problems []string
	for _, f := range findings {
		text := f.Rule + ": " + f.Message
		matched := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.pattern.MatchString(text) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", f))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
