package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// maporderPkgs are the packages under the PR 4 determinism contract: their
// outputs must be bit-identical at any worker count and across runs, and a
// single `range` over a map feeding an ordered output is all it takes to
// break that silently (map iteration order is deliberately randomized by the
// runtime). center and experiments join the detector-math packages here
// because WindowReports and experiment tables are the externally compared
// artifacts.
var maporderPkgs = []string{"aligned", "unaligned", "graph", "center", "stats", "experiments"}

// maporderRule: inside the deterministic packages, a range over a map whose
// body builds ordered output — appending to an outer slice, overwriting an
// outer variable or field, or sending on a channel — is a finding, unless
// the appended keys are materialized and sorted afterwards in the same
// function, or the loop only performs order-insensitive reductions
// (compound assignments, counters, map writes, self-referential updates).
var maporderRule = Rule{
	Name: "maporder",
	Doc:  "no map iteration feeding ordered output (append/overwrite/send) in the deterministic packages unless the keys are sorted afterwards or the reduction is order-insensitive",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) {
	if !pass.PathHasSegment(maporderPkgs...) {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body)
		}
	}
}

// checkMapRanges finds every map-range in fn (including inside function
// literals — a goroutine body iterating a map is just as nondeterministic)
// and checks its body. fn is also the scope searched for the sorted-keys
// exemption.
func checkMapRanges(pass *Pass, fn *ast.BlockStmt) {
	ast.Inspect(fn, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fn, rs)
		return true
	})
}

// checkMapRangeBody reports the order-sensitive operations in one map-range
// body.
func checkMapRangeBody(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	mapName := exprString(rs.X)

	// outerObj resolves e's root identifier to an object declared outside
	// the range statement (nil when the target is loop-local, blank, or
	// unresolvable).
	outerObj := func(e ast.Expr) types.Object {
		root := rootIdent(e)
		if root == nil || root.Name == "_" {
			return nil
		}
		obj := info.ObjectOf(root)
		if obj == nil {
			return nil
		}
		if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			return nil // declared inside the loop: per-iteration state
		}
		return obj
	}

	// The walk carries the stack of enclosing if-conditions so a guarded
	// extremum selection — `if oldest < 0 || e < oldest { oldest = e }` —
	// can be recognized: an ordered comparison against the assignment target
	// in the guard makes the loop a min/max reduction, which is
	// order-insensitive when the compared quantity is unique per key (map
	// keys themselves always are).
	var walk func(n ast.Node, guards []ast.Expr)
	walk = func(n ast.Node, guards []ast.Expr) {
		switch st := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			if st.Init != nil {
				walk(st.Init, guards)
			}
			inner := append(guards, st.Cond)
			walk(st.Body, inner)
			if st.Else != nil {
				walk(st.Else, inner)
			}
			return
		case *ast.SendStmt:
			pass.Reportf(st.Arrow,
				"send inside a range over map %s: delivery order follows randomized map iteration; materialize and sort the keys first, or make the consumer order-insensitive", mapName)
			return
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, fn, rs, st, mapName, outerObj, guards)
			return
		}
		// Generic descent for every other node kind.
		ast.Inspect(n, func(child ast.Node) bool {
			if child == n {
				return true
			}
			switch child.(type) {
			case *ast.IfStmt, *ast.SendStmt, *ast.AssignStmt:
				walk(child, guards)
				return false
			}
			return true
		})
	}
	walk(rs.Body, nil)
}

// checkMapRangeAssign classifies one assignment inside a map-range body.
// guards are the conditions of the if statements enclosing it within the
// loop body.
func checkMapRangeAssign(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, st *ast.AssignStmt, mapName string, outerObj func(ast.Expr) types.Object, guards []ast.Expr) {
	// Compound assignments (+=, |=, ...) are reductions; every standard one
	// on this tree is commutative over its operand stream. (String += is
	// order-sensitive but also absent; the corpus pins the accepted set.)
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		return
	}
	for i, lhs := range st.Lhs {
		obj := outerObj(lhs)
		if obj == nil {
			continue
		}
		// Map-index stores build another map — order-insensitive.
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if tv, ok := pass.Pkg.Info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					continue
				}
			}
		}
		var rhs ast.Expr
		if len(st.Rhs) == len(st.Lhs) {
			rhs = st.Rhs[i]
		} else if len(st.Rhs) == 1 {
			rhs = st.Rhs[0]
		}
		if rhs == nil {
			continue
		}
		// x = append(x, ...) to an outer slice: ordered output — unless the
		// slice is sorted later in the same function (the materialize-and-
		// sort idiom this rule wants to push people toward).
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
			if sortedAfter(pass, fn, rs, obj) {
				continue
			}
			pass.Reportf(st.Pos(),
				"append to %s inside a range over map %s: element order follows randomized map iteration; sort %s afterwards or iterate sorted keys", exprString(lhs), mapName, exprString(lhs))
			continue
		}
		// Self-referential plain assignment (x = max(x, v), sum = sum+v) is
		// a reduction; overwriting an outer target with loop-derived data is
		// last-writer-wins under random order.
		if mentionsObj(pass, rhs, obj) {
			continue
		}
		if !usesLoopVars(pass, rhs, rs) {
			continue // loop-invariant store: same value every iteration
		}
		// Guarded extremum selection: an enclosing if compares the target in
		// an ordered comparison (`if oldest < 0 || e < oldest { oldest = e }`)
		// — a min/max reduction, order-insensitive over the unique map keys.
		if guardComparesTarget(pass, guards, obj) {
			continue
		}
		pass.Reportf(st.Pos(),
			"overwrite of %s inside a range over map %s: last writer wins under randomized map iteration; sort the keys first or reduce order-insensitively", exprString(lhs), mapName)
	}
}

// guardComparesTarget reports whether any enclosing guard condition contains
// an ordered comparison with the assignment target as an operand side — the
// shape that makes a plain overwrite a min/max selection.
func guardComparesTarget(pass *Pass, guards []ast.Expr, obj types.Object) bool {
	for _, g := range guards {
		found := false
		ast.Inspect(g, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || found {
				return !found
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if mentionsObj(pass, be.X, obj) || mentionsObj(pass, be.Y, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// rootIdent unwraps selectors, indexes, parens, and derefs to the base
// identifier of an assignable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Pkg.Info.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

// mentionsObj reports whether e references obj anywhere.
func mentionsObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// usesLoopVars reports whether e mentions the range statement's key or value
// variable (or any object declared inside the loop).
func usesLoopVars(pass *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return !found
		}
		if obj := pass.Pkg.Info.ObjectOf(id); obj != nil && obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
			found = true
			return false
		}
		return !found
	})
	return found
}

// sortFuncs are the sort entry points that establish a total order over a
// slice; appending map keys and then passing the slice through one of these
// is the sanctioned materialize-and-sort idiom.
var sortFuncs = map[string]map[string]bool{
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {
		"Sort": true, "SortFunc": true, "SortStableFunc": true,
	},
}

// sortedAfter reports whether obj (a slice) is passed as the first argument
// of a sort call anywhere in fn after the range statement ends.
func sortedAfter(pass *Pass, fn *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return !found
		}
		pn, ok := info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return !found
		}
		funcs, ok := sortFuncs[pn.Imported().Path()]
		if !ok || !funcs[sel.Sel.Name] {
			return !found
		}
		if mentionsObj(pass, call.Args[0], obj) {
			found = true
		}
		return !found
	})
	return found
}
