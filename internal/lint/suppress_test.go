package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// suppressionSource exercises every branch of the //dcslint:ignore machinery:
// a used suppression, a reasonless one, a multi-rule list, a stale comment,
// and one naming an unknown rule. (Golden files cannot host the reasonless
// case — its bare comment would swallow a trailing // want pattern as the
// "reason" — so the mechanics get this dedicated unit test.)
const suppressionSource = `package supp

import "math/rand"

func used() int {
	return rand.Intn(10) //dcslint:ignore seededrand fixed fanout for the demo
}

func noReason() int {
	//dcslint:ignore seededrand
	return rand.Intn(10)
}

func multi() int {
	return rand.Intn(3) //dcslint:ignore seededrand,walltime one comment, two rules
}

//dcslint:ignore seededrand nothing on the next line violates anything
func clean() int { return 4 }

func typo() int {
	return rand.Intn(2) //dcslint:ignore nosuchrule the rule name is misspelt
}
`

func TestSuppressionMechanics(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(suppressionSource), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "supp")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunRules(pkg, Rules())

	type check struct {
		name string
		ok   func(Finding) bool
	}
	checks := []check{
		{"used suppression silences the finding and records its reason", func(f Finding) bool {
			return f.Rule == "seededrand" && f.Suppressed && f.SuppressReason == "fixed fanout for the demo"
		}},
		{"reasonless comment yields a dcslint meta-finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, "without a reason")
		}},
		{"reasonless comment suppresses nothing: its rand.Intn stays unsuppressed", func(f Finding) bool {
			return f.Rule == "seededrand" && !f.Suppressed && f.Pos.Line == 11
		}},
		{"multi-rule list covers the finding", func(f Finding) bool {
			return f.Rule == "seededrand" && f.Suppressed && f.SuppressReason == "one comment, two rules"
		}},
		{"stale suppression is itself a finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, "stale suppression")
		}},
		{"unknown rule name is itself a finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, `unknown rule "nosuchrule"`)
		}},
		{"misspelt suppression covers nothing: its rand.Intn stays unsuppressed", func(f Finding) bool {
			return f.Rule == "seededrand" && !f.Suppressed && f.Pos.Line == 22
		}},
	}
	for _, c := range checks {
		found := false
		for _, f := range findings {
			if c.ok(f) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding: %s", c.name)
			for _, f := range findings {
				t.Logf("  have: %s (suppressed=%v reason=%q)", f, f.Suppressed, f.SuppressReason)
			}
		}
	}

	// dcslint meta-findings about the suppression machinery are not
	// themselves suppressible.
	for _, f := range findings {
		if f.Rule == "dcslint" && f.Suppressed {
			t.Errorf("meta-finding was suppressed: %s", f)
		}
	}
}
