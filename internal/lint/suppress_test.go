package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// suppressionSource exercises every branch of the //dcslint:ignore machinery:
// a used suppression, a reasonless one, a multi-rule list, a stale comment,
// and one naming an unknown rule. (Golden files cannot host the reasonless
// case — its bare comment would swallow a trailing // want pattern as the
// "reason" — so the mechanics get this dedicated unit test.)
const suppressionSource = `package supp

import "math/rand"

func used() int {
	return rand.Intn(10) //dcslint:ignore seededrand fixed fanout for the demo
}

func noReason() int {
	//dcslint:ignore seededrand
	return rand.Intn(10)
}

func multi() int {
	return rand.Intn(3) //dcslint:ignore seededrand,walltime one comment, two rules
}

//dcslint:ignore seededrand nothing on the next line violates anything
func clean() int { return 4 }

func typo() int {
	return rand.Intn(2) //dcslint:ignore nosuchrule the rule name is misspelt
}
`

func TestSuppressionMechanics(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(suppressionSource), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "supp")
	if err != nil {
		t.Fatal(err)
	}
	findings := RunRules(pkg, Rules())

	type check struct {
		name string
		ok   func(Finding) bool
	}
	checks := []check{
		{"used suppression silences the finding and records its reason", func(f Finding) bool {
			return f.Rule == "seededrand" && f.Suppressed && f.SuppressReason == "fixed fanout for the demo"
		}},
		{"reasonless comment yields a dcslint meta-finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, "without a reason")
		}},
		{"reasonless comment suppresses nothing: its rand.Intn stays unsuppressed", func(f Finding) bool {
			return f.Rule == "seededrand" && !f.Suppressed && f.Pos.Line == 11
		}},
		{"multi-rule list covers the finding", func(f Finding) bool {
			return f.Rule == "seededrand" && f.Suppressed && f.SuppressReason == "one comment, two rules"
		}},
		{"stale suppression is itself a finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, "stale suppression")
		}},
		{"unknown rule name is itself a finding", func(f Finding) bool {
			return f.Rule == "dcslint" && strings.Contains(f.Message, `unknown rule "nosuchrule"`)
		}},
		{"misspelt suppression covers nothing: its rand.Intn stays unsuppressed", func(f Finding) bool {
			return f.Rule == "seededrand" && !f.Suppressed && f.Pos.Line == 22
		}},
	}
	for _, c := range checks {
		found := false
		for _, f := range findings {
			if c.ok(f) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected finding: %s", c.name)
			for _, f := range findings {
				t.Logf("  have: %s (suppressed=%v reason=%q)", f, f.Suppressed, f.SuppressReason)
			}
		}
	}

	// dcslint meta-findings about the suppression machinery are not
	// themselves suppressible.
	for _, f := range findings {
		if f.Rule == "dcslint" && f.Suppressed {
			t.Errorf("meta-finding was suppressed: %s", f)
		}
	}
}

// taintedBefore is a decode-scope file whose unchecked wire-sized make is
// excused by a suppression; taintedAfter is the same file after the fix lands
// (a bounds comparison sanitizes the length) with the suppression left
// behind. The lifecycle contract: the moment the sanitizer makes the
// suppression unnecessary, the leftover comment must flip from "used" to a
// stale-suppression finding — suppressions cannot quietly outlive the code
// they excused.
const taintedBefore = `package transport

import "encoding/binary"

func decode(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	//dcslint:ignore wiretaint frame length is pre-validated by the caller
	return make([]byte, n)
}
`

const taintedAfter = `package transport

import "encoding/binary"

func decode(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	if n > 1<<20 {
		return nil
	}
	//dcslint:ignore wiretaint frame length is pre-validated by the caller
	return make([]byte, n)
}
`

func TestSuppressionGoesStaleWhenSanitizerAdded(t *testing.T) {
	load := func(src string) []Finding {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		// The "transport" segment puts the package in wiretaint's scope, as
		// in the real module.
		pkg, err := LoadDir(dir, "supp/transport")
		if err != nil {
			t.Fatal(err)
		}
		return RunRules(pkg, Rules())
	}

	before := load(taintedBefore)
	usedSuppression, staleBefore := false, false
	for _, f := range before {
		if f.Rule == "wiretaint" && f.Suppressed && f.SuppressReason == "frame length is pre-validated by the caller" {
			usedSuppression = true
		}
		if f.Rule == "dcslint" && strings.Contains(f.Message, "stale suppression") {
			staleBefore = true
		}
	}
	if !usedSuppression {
		t.Errorf("before the fix: expected a suppressed wiretaint finding, got %v", before)
	}
	if staleBefore {
		t.Errorf("before the fix: suppression wrongly reported stale: %v", before)
	}

	after := load(taintedAfter)
	var wiretaintAfter, staleAfter []Finding
	for _, f := range after {
		if f.Rule == "wiretaint" {
			wiretaintAfter = append(wiretaintAfter, f)
		}
		if f.Rule == "dcslint" && strings.Contains(f.Message, "stale suppression") {
			staleAfter = append(staleAfter, f)
		}
	}
	if len(wiretaintAfter) != 0 {
		t.Errorf("after the fix: bounds check should sanitize the make, got %v", wiretaintAfter)
	}
	if len(staleAfter) != 1 {
		t.Errorf("after the fix: want exactly one stale-suppression finding, got %v", after)
	}
	// And the stale finding must fail the build: stale comments are not
	// suppressible noise.
	if len(staleAfter) == 1 && staleAfter[0].Suppressed {
		t.Errorf("stale-suppression finding was itself suppressed: %s", staleAfter[0])
	}
}
