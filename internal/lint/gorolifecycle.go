package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// gorolifecycleRule: every `go` statement in library code must have a
// tracked join or stop path — a sync.WaitGroup Done (the spawner joins), a
// receive/select on a captured quit/ctx-done channel (the spawner stops it),
// a range over a channel (closing the channel stops it), or a send on a
// captured channel (the spawner drains it). A goroutine with none of these
// is fire-and-forget: under the sharded-center refactor those accumulate
// per-shard and per-connection until the process dies, and no test notices
// until production does. Commands and examples own their process lifetime
// and are out of scope.
var gorolifecycleRule = Rule{
	Name: "gorolifecycle",
	Doc:  "every go statement in library packages needs a tracked join/stop path (WaitGroup Done, receive/select on a captured channel, range over a channel, a close, or a send the spawner drains)",
	Run:  runGorolifecycle,
}

func runGorolifecycle(pass *Pass) {
	// Library packages only: commands and examples are process-lifetime code.
	if pass.PathHasSegment("cmd", "examples") || pass.Pkg.Types.Name() == "main" {
		return
	}
	// Map every function declared in this package to its body so `go f(...)`
	// and `go recv.method(...)` resolve to an inspectable body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if f, ok := pass.Pkg.Info.ObjectOf(fd.Name).(*types.Func); ok {
				decls[f] = fd
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, decls, gs)
			return true
		})
	}
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	body, target := goTargetBody(pass, decls, gs.Call)
	if body == nil {
		// The body is out of reach (method value from another package, a
		// function-typed variable, ...). The rule cannot prove a lifecycle
		// either way; report so the author either inlines a literal, names a
		// local function, or documents the lifecycle in a suppression.
		pass.Reportf(gs.Pos(),
			"go statement spawns %s, whose body this package cannot see; give the goroutine a visible join/stop path or document its lifecycle (//dcslint:ignore gorolifecycle <why>)", target)
		return
	}
	if sig := lifecycleSignal(pass, body); sig == "" {
		pass.Reportf(gs.Pos(),
			"goroutine %s has no tracked join/stop path (no WaitGroup Done, no receive/select on a captured channel, no channel send/close/range); it outlives all control — add a quit channel or WaitGroup, or document why it terminates (//dcslint:ignore gorolifecycle <why>)", target)
	}
}

// goTargetBody resolves the body of the function a go statement spawns:
// a function literal, or a package-local function/method declaration.
func goTargetBody(pass *Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) (*ast.BlockStmt, string) {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, "function literal"
	case *ast.Ident:
		if f, ok := pass.Pkg.Info.ObjectOf(fun).(*types.Func); ok {
			if fd := decls[f]; fd != nil {
				return fd.Body, fun.Name
			}
			return nil, fun.Name
		}
		return nil, fun.Name
	case *ast.SelectorExpr:
		if f, ok := pass.Pkg.Info.ObjectOf(fun.Sel).(*types.Func); ok {
			if fd := decls[f]; fd != nil {
				return fd.Body, exprString(fun)
			}
			return nil, exprString(fun)
		}
		return nil, exprString(fun)
	}
	return nil, "expression"
}

// lifecycleSignal scans a goroutine body (including nested literals — a
// deferred wg.Done closure still counts) for any accepted lifecycle
// mechanism and names the first one found, or returns "".
func lifecycleSignal(pass *Pass, body *ast.BlockStmt) string {
	info := pass.Pkg.Info
	signal := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if signal != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if selection, ok := info.Selections[sel]; ok && typeFromPackage(selection.Recv(), "sync") {
					signal = "WaitGroup.Done"
					return false
				}
				// ctx.Done() only matters if received from; the UnaryExpr /
				// select cases below catch that.
			}
			// close(done) on a captured channel is a join signal: the
			// spawner's <-done unblocks exactly when this body finishes.
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
					signal = "channel close"
					return false
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				signal = "channel receive"
				return false
			}
		case *ast.SendStmt:
			signal = "channel send"
			return false
		case *ast.SelectStmt:
			// A select with any comm clause is channel-coupled; an empty
			// select{} blocks forever and is not a lifecycle.
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					signal = "select"
					return false
				}
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					signal = "range over channel"
					return false
				}
			}
		}
		return true
	})
	return signal
}
