package lint

import (
	"go/ast"
	"go/types"
)

// errcritPkgs scopes the rule to the crash-safety-critical packages: the
// WAL, the digest transport, the analysis center, and the metrics registry.
// The first three are the places where a silently dropped write error
// converts "kill -9 loses nothing" into "kill -9 loses whatever the kernel
// had not flushed" with no test able to notice; the registry is in scope
// because a scrape that drops an exposition write error serves a silently
// truncated /metrics page that still parses — monitoring reads wrong, small
// counters as the truth. traceio and packet joined in PR 8: a trace capture
// whose Write/Flush error vanishes produces a short .dct file that replays as
// a quieter network than the one measured, and packet's serialization path
// feeds both of them. shard joined with the scatter/gather tier: a dropped
// scatter Send or report-push error silently turns a routed digest into a
// missing one — the coordinator would then merge a verdict that looks
// healthy but never saw the data.
var errcritPkgs = []string{"journal", "transport", "center", "metrics", "traceio", "packet", "shard"}

// errcritMethods are the write-path method names whose error result must not
// be discarded inside the scoped packages: writes, syncs, deadline arming,
// truncation, and closes (a Close error on a written file is the last chance
// to learn a buffered write failed).
var errcritMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteTo": true, "ReadFrom": true,
	"Sync": true, "Flush": true, "Close": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"Truncate": true,
	// UDP datagram path: sends and socket-buffer sizing. A discarded
	// WriteToUDP error hides local send failures (ENOBUFS, unreachable) that
	// are NOT the network loss the protocol tolerates; a discarded
	// SetReadBuffer error hides a kernel refusing the burst headroom the
	// epoch-boundary flood depends on.
	"WriteToUDP": true, "WriteMsgUDP": true,
	"SetReadBuffer": true, "SetWriteBuffer": true,
	// Journal FS-interface write path: the degraded-mode work routes
	// filesystem mutations through an injectable journal.FS, and the method
	// forms (fs.Remove, fs.Rename, fs.SyncDir, fs.MkdirAll) must stay as
	// in-scope as the os package functions they wrap — an interface
	// indirection is not an error laundry.
	"Remove": true, "Rename": true, "SyncDir": true, "MkdirAll": true,
}

// errcritOsFuncs are package-level os functions on the same footing.
var errcritOsFuncs = map[string]bool{
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true, "WriteFile": true,
}

// errcritRule flags write-path calls whose error result is discarded in the
// journal/transport/center packages. The journal's kill-9 guarantee is an
// induction over "every frame acknowledged was durably framed"; one ignored
// Write or Sync error breaks the induction silently. Deliberate best-effort
// calls (closing a read-only file, removing an already-empty segment) carry
// a //dcslint:ignore errcrit comment stating why the error cannot lose data.
var errcritRule = Rule{
	Name: "errcrit",
	Doc:  "no discarded error results from write-path calls (Write/Sync/Flush/Close/Set*Deadline/Truncate, WriteToUDP/Set*Buffer, os.Remove/Rename/... and their journal.FS method forms) in journal, transport, center, metrics, traceio, packet",
	Run:  runErrcrit,
}

func runErrcrit(pass *Pass) {
	if !pass.PathHasSegment(errcritPkgs...) {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				checkDiscardedCall(pass, stmt.X, "discarded")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, stmt.Call, "discarded by defer")
			case *ast.GoStmt:
				checkDiscardedCall(pass, stmt.Call, "discarded by go")
			case *ast.AssignStmt:
				if allBlank(stmt.Lhs) && len(stmt.Rhs) == 1 {
					checkDiscardedCall(pass, stmt.Rhs[0], "assigned to _")
				}
			}
			return true
		})
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		ident, ok := e.(*ast.Ident)
		if !ok || ident.Name != "_" {
			return false
		}
	}
	return true
}

// checkDiscardedCall reports expr when it is a write-path call returning an
// error that the surrounding statement throws away.
func checkDiscardedCall(pass *Pass, expr ast.Expr, how string) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := pass.Pkg.Info
	name := sel.Sel.Name
	if pkgIdent, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok {
			// Package-level function call.
			if pn.Imported().Path() == "os" && errcritOsFuncs[name] && callReturnsError(info, call) {
				pass.Reportf(call.Pos(),
					"error from os.%s %s; the write path must surface every failure (check it or //dcslint:ignore errcrit <reason>)", name, how)
			}
			// Same-module helpers like transport.Write are methods of no
			// receiver; treat a package function named like a write method
			// (Write, Sync, ...) the same way.
			if errcritMethods[name] && pn.Imported().Path() != "os" && callReturnsError(info, call) {
				pass.Reportf(call.Pos(),
					"error from %s.%s %s; the write path must surface every failure (check it or //dcslint:ignore errcrit <reason>)", pn.Name(), name, how)
			}
			return
		}
	}
	if !errcritMethods[name] {
		return
	}
	if !callReturnsError(info, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s %s; the write path must surface every failure (check it or //dcslint:ignore errcrit <reason>)",
		exprString(sel.X), name, how)
}

// callReturnsError reports whether the call's only or last result is error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
