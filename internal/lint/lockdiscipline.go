package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// lockdisciplineRule enforces the project's mutex annotations. A struct
// field whose doc or line comment says "guarded by <mu>" must only be
// touched with <mu> held: within each function the rule demands a
// positionally preceding <base>.<mu>.Lock()/RLock() with no live Unlock in
// between, unless the function declares that its caller holds the lock — by
// the *Locked name suffix or a "Caller holds x.mu" doc comment, both
// established conventions in this codebase. Two more lock bugs ride along:
// a Lock followed by a return path with no Unlock (and no deferred Unlock),
// and a receiver or parameter that copies a mutex-bearing struct by value.
//
// The analysis is intraprocedural and syntactic over the type-checked AST —
// it reasons about source order and block structure, not full control flow.
// Function literals are separate units (lock state does not follow a
// goroutine or deferred closure), and accesses are only checked when the
// base is a receiver or parameter: a value still private to its constructor
// cannot race.
var lockdisciplineRule = Rule{
	Name: "lockdiscipline",
	Doc:  "fields annotated 'guarded by mu' are only accessed with mu held; no early return while locked; no by-value mutex copies",
	Run:  runLockdiscipline,
}

var (
	guardedRe     = regexp.MustCompile(`guarded by (\w+)`)
	callerHoldsRe = regexp.MustCompile(`(?i)\bcallers?\s+(?:must\s+)?holds?\b`)
)

// lockEvent is one mutex operation or guarded-field access, positioned in
// source order within a unit.
type lockEvent struct {
	pos   token.Pos
	base  string // receiver/parameter identifier ("c" in c.mu.Lock())
	mutex string // mutex field name ("mu")
}

type guardedAccess struct {
	pos   token.Pos
	base  string
	mutex string
	field string
}

// unitEvents is everything lock-relevant inside one function body.
type unitEvents struct {
	locks, unlocks, deferUnlocks []lockEvent
	accesses                     []guardedAccess
	returns                      []token.Pos
	blocks                       []blockSpan
}

// blockSpan is one statement-list scope (block, case clause, comm clause).
type blockSpan struct {
	pos, end token.Pos
	stmts    []ast.Stmt
}

func (b blockSpan) contains(p token.Pos) bool { return b.pos <= p && p < b.end }

// terminatesAfter reports whether the block's own statement list reaches a
// return, branch, or panic after pos — i.e. the path through this block
// never rejoins the surrounding code.
func (b blockSpan) terminatesAfter(pos token.Pos) bool {
	for _, s := range b.stmts {
		if s.Pos() <= pos {
			continue
		}
		switch st := s.(type) {
		case *ast.ReturnStmt, *ast.BranchStmt:
			return true
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
	}
	return false
}

func runLockdiscipline(pass *Pass) {
	guards := collectGuards(pass)
	for _, file := range pass.Pkg.Files {
		checkMutexCopies(pass, file)
		if len(guards) == 0 {
			// Still check early-return lock leaks: they need no annotations.
			for _, unit := range funcUnits(file) {
				ev := collectUnitEvents(pass, unit, guards)
				checkLockLeaks(pass, ev)
			}
			continue
		}
		for _, unit := range funcUnits(file) {
			ev := collectUnitEvents(pass, unit, guards)
			checkLockLeaks(pass, ev)
			if unitCallerHoldsLock(unit) {
				continue
			}
			checkAccesses(pass, ev)
		}
	}
}

// unitCallerHoldsLock reports the two conventions that move the locking
// obligation to the caller: a *Locked name suffix, or a doc comment of the
// form "Caller holds c.mu."
func unitCallerHoldsLock(u funcUnit) bool {
	if len(u.name) > len("Locked") && u.name[len(u.name)-len("Locked"):] == "Locked" {
		return true
	}
	return u.doc != "" && callerHoldsRe.MatchString(u.doc)
}

// collectGuards maps each annotated field object to the mutex field name
// guarding it, validating that the named mutex exists in the same struct.
func collectGuards(pass *Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				text := ""
				if f.Doc != nil {
					text += f.Doc.Text()
				}
				if f.Comment != nil {
					text += f.Comment.Text()
				}
				m := guardedRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				if !fieldNames[m[1]] {
					pass.Reportf(f.Pos(), "guarded-by annotation names %q, which is not a field of this struct", m[1])
					continue
				}
				for _, name := range f.Names {
					if v, ok := pass.Pkg.Info.Defs[name].(*types.Var); ok {
						guards[v] = m[1]
					}
				}
			}
			return true
		})
	}
	return guards
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkMutexCopies flags by-value receivers and parameters of struct types
// that directly contain a sync.Mutex or sync.RWMutex.
func checkMutexCopies(pass *Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		check := func(fl *ast.FieldList, kind string) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				tv, ok := pass.Pkg.Info.Types[f.Type]
				if !ok || isPointer(tv.Type) {
					continue
				}
				st, ok := tv.Type.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					if isMutexType(st.Field(i).Type()) {
						pass.Reportf(f.Type.Pos(),
							"%s of %s copies %s by value, including its mutex %s; use a pointer",
							kind, fd.Name.Name, typeString(tv.Type), st.Field(i).Name())
						break
					}
				}
			}
		}
		check(fd.Recv, "receiver")
		check(fd.Type.Params, "parameter")
	}
}

// collectUnitEvents gathers, in source order, the unit's mutex operations,
// guarded-field accesses, returns, and block scopes. Nested function
// literals are excluded — they are their own units.
func collectUnitEvents(pass *Pass, u funcUnit, guards map[*types.Var]string) unitEvents {
	info := pass.Pkg.Info
	var ev unitEvents
	ev.blocks = append(ev.blocks, blockSpan{pos: u.body.Pos(), end: u.body.End(), stmts: u.body.List})

	inspectSkipFuncLits(u.body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.BlockStmt:
			ev.blocks = append(ev.blocks, blockSpan{pos: node.Pos(), end: node.End(), stmts: node.List})
		case *ast.CaseClause:
			ev.blocks = append(ev.blocks, blockSpan{pos: node.Pos(), end: node.End(), stmts: node.Body})
		case *ast.CommClause:
			ev.blocks = append(ev.blocks, blockSpan{pos: node.Pos(), end: node.End(), stmts: node.Body})
		case *ast.ReturnStmt:
			ev.returns = append(ev.returns, node.Pos())
		case *ast.DeferStmt:
			// Any Unlock reachable from the defer (directly or inside a
			// closure) releases at function exit, not here.
			for _, e := range mutexCallsIn(info, node.Call, true) {
				ev.deferUnlocks = append(ev.deferUnlocks, e)
			}
			return false
		case *ast.CallExpr:
			if base, mutex, op, ok := mutexCall(info, node); ok {
				e := lockEvent{pos: node.Pos(), base: base, mutex: mutex}
				if op == "Lock" || op == "RLock" {
					ev.locks = append(ev.locks, e)
				} else {
					ev.unlocks = append(ev.unlocks, e)
				}
				return false
			}
		case *ast.SelectorExpr:
			sel := info.Selections[node]
			if sel == nil || sel.Kind() != types.FieldVal {
				return true
			}
			v, ok := sel.Obj().(*types.Var)
			if !ok {
				return true
			}
			mutex, guarded := guards[v]
			if !guarded {
				return true
			}
			base, ok := node.X.(*ast.Ident)
			if !ok || !u.checked[base.Name] {
				return true
			}
			ev.accesses = append(ev.accesses, guardedAccess{
				pos: node.Sel.Pos(), base: base.Name, mutex: mutex, field: v.Name(),
			})
		}
		return true
	})
	sortEvents(&ev)
	return ev
}

func sortEvents(ev *unitEvents) {
	sort.Slice(ev.locks, func(i, j int) bool { return ev.locks[i].pos < ev.locks[j].pos })
	sort.Slice(ev.unlocks, func(i, j int) bool { return ev.unlocks[i].pos < ev.unlocks[j].pos })
	sort.Slice(ev.accesses, func(i, j int) bool { return ev.accesses[i].pos < ev.accesses[j].pos })
}

// mutexCall decodes base.mutex.Lock()-shaped calls, verifying via go/types
// that the inner selector really is a sync mutex.
func mutexCall(info *types.Info, call *ast.CallExpr) (base, mutex, op string, ok bool) {
	outer, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return
	}
	op = outer.Sel.Name
	if op != "Lock" && op != "Unlock" && op != "RLock" && op != "RUnlock" {
		return
	}
	inner, okSel := outer.X.(*ast.SelectorExpr)
	if !okSel {
		return
	}
	baseIdent, okSel := inner.X.(*ast.Ident)
	if !okSel {
		return
	}
	tv, okTv := info.Types[outer.X]
	if !okTv || !isMutexType(tv.Type) {
		return
	}
	return baseIdent.Name, inner.Sel.Name, op, true
}

// mutexCallsIn lists Unlock/RUnlock calls anywhere under n (including inside
// function literals when descend is set) — used for defer subtrees.
func mutexCallsIn(info *types.Info, n ast.Node, descend bool) []lockEvent {
	var out []lockEvent
	ast.Inspect(n, func(node ast.Node) bool {
		if _, isLit := node.(*ast.FuncLit); isLit && !descend {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok {
			if base, mutex, op, ok := mutexCall(info, call); ok && (op == "Unlock" || op == "RUnlock") {
				out = append(out, lockEvent{pos: call.Pos(), base: base, mutex: mutex})
			}
		}
		return true
	})
	return out
}

// innermost returns the smallest recorded block containing pos.
func (ev *unitEvents) innermost(pos token.Pos) blockSpan {
	best := ev.blocks[0]
	for _, b := range ev.blocks[1:] {
		if b.contains(pos) && (b.end-b.pos) < (best.end-best.pos) {
			best = b
		}
	}
	return best
}

func sameLock(a, b lockEvent) bool { return a.base == b.base && a.mutex == b.mutex }

// checkAccesses verifies every guarded access happens under its mutex: a
// preceding Lock on the same base and mutex, with no intervening Unlock that
// is live on the access's path (an Unlock inside an early-exit block that
// returns or branches does not release the fall-through path).
func checkAccesses(pass *Pass, ev unitEvents) {
	for _, a := range ev.accesses {
		key := lockEvent{base: a.base, mutex: a.mutex}
		var last *lockEvent
		for i := range ev.locks {
			if ev.locks[i].pos < a.pos && sameLock(ev.locks[i], key) {
				last = &ev.locks[i]
			}
		}
		if last == nil {
			pass.Reportf(a.pos,
				"%s.%s is guarded by %s but accessed without %s.%s.Lock (no preceding Lock in this function; if the caller locks, name the function *Locked or document \"Caller holds %s.%s\")",
				a.base, a.field, a.mutex, a.base, a.mutex, a.base, a.mutex)
			continue
		}
		for _, u := range ev.unlocks {
			if u.pos <= last.pos || u.pos >= a.pos || !sameLock(u, key) {
				continue
			}
			ub := ev.innermost(u.pos)
			if !ub.contains(a.pos) && ub.terminatesAfter(u.pos) {
				continue // the unlock belongs to an early-exit path
			}
			pass.Reportf(a.pos,
				"%s.%s is guarded by %s but accessed after %s.%s.Unlock (line %d)",
				a.base, a.field, a.mutex, a.base, a.mutex, pass.Pkg.Fset.Position(u.pos).Line)
			break
		}
	}
}

// checkLockLeaks flags Lock calls followed by a return with no Unlock on the
// path and no deferred Unlock — the early-return-skips-Unlock bug that
// deadlocks the next caller.
func checkLockLeaks(pass *Pass, ev unitEvents) {
	for i, l := range ev.locks {
		deferred := false
		for _, d := range ev.deferUnlocks {
			if sameLock(d, l) {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		// The region this Lock is answerable for ends at the next Lock of
		// the same mutex (a later region's returns are its problem).
		regionEnd := token.Pos(1 << 62)
		for _, l2 := range ev.locks[i+1:] {
			if sameLock(l2, l) {
				regionEnd = l2.pos
				break
			}
		}
		for _, r := range ev.returns {
			if r <= l.pos || r >= regionEnd {
				continue
			}
			covered := false
			for _, u := range ev.unlocks {
				if u.pos > l.pos && u.pos <= r && sameLock(u, l) && ev.innermost(u.pos).contains(r) {
					covered = true
					break
				}
			}
			if !covered {
				pass.Reportf(r,
					"return while %s.%s may still be locked (Lock at line %d has no Unlock on this path; unlock before returning or defer the Unlock)",
					l.base, l.mutex, pass.Pkg.Fset.Position(l.pos).Line)
			}
		}
	}
}
