package lint

import (
	"go/ast"
	"go/types"
)

// atomicmixRule guards the typed sync/atomic values (atomic.Int64 and
// friends) the transport and center stats use for their lock-free counters.
// Two mistakes silently break them: copying a struct that contains one (the
// copy races with the original and, for types carrying a noCopy sentinel,
// defeats the alignment guarantee), and assigning to one directly instead of
// calling Store (a plain write is not atomic and races every Load). go vet's
// copylocks catches some copies; this rule closes the direct-assignment hole
// and flags by-value receivers and parameters of atomic-bearing structs.
var atomicmixRule = Rule{
	Name: "atomicmix",
	Doc:  "typed sync/atomic values must not be copied by value or assigned directly; use Load/Store/Add through a pointer",
	Run:  runAtomicmix,
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// atomic.Pointer[T] instantiations are *types.Named too; aliases
		// resolve through Unalias.
		named, ok = types.Unalias(t).(*types.Named)
		if !ok {
			return false
		}
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether a struct type directly holds a typed atomic
// field, returning the first such field's name.
func containsAtomic(t types.Type) (string, bool) {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isAtomicType(st.Field(i).Type()) {
			return st.Field(i).Name(), true
		}
	}
	return "", false
}

func runAtomicmix(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				checkAtomicSignature(pass, info, fd)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
					continue
				}
				tv, ok := info.Types[lhs]
				if ok && isAtomicType(tv.Type) {
					pass.Reportf(lhs.Pos(),
						"direct assignment to atomic value %s is not atomic and races concurrent Loads; call Store", exprString(lhs))
					continue
				}
				// x := y or x = y where the value copied carries atomics.
				if i < len(assign.Rhs) && len(assign.Lhs) == len(assign.Rhs) {
					if rtv, ok := info.Types[assign.Rhs[i]]; ok && !isPointer(rtv.Type) {
						if field, has := containsAtomic(rtv.Type); has {
							pass.Reportf(assign.Rhs[i].Pos(),
								"copies %s by value, duplicating its atomic field %s; keep a pointer instead", typeString(rtv.Type), field)
						}
					}
				}
			}
			return true
		})
	}
}

func checkAtomicSignature(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := info.Types[f.Type]
			if !ok || isPointer(tv.Type) {
				continue
			}
			if field, has := containsAtomic(tv.Type); has {
				pass.Reportf(f.Type.Pos(),
					"%s of %s passes %s by value, copying its atomic field %s; use a pointer",
					kind, fd.Name.Name, typeString(tv.Type), field)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

func typeString(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// exprString renders a selector/identifier chain for diagnostics.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprString(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(v.X)
	}
	return "expression"
}
