package lint

import (
	"path/filepath"
	"testing"
)

// runGolden checks one testdata package against its // want expectations,
// running only the named rules so each corpus pins exactly one rule's
// behaviour (plus the always-on suppression machinery).
func runGolden(t *testing.T, rel string, ruleNames ...string) {
	t.Helper()
	var rules []Rule
	for _, r := range Rules() {
		for _, n := range ruleNames {
			if r.Name == n {
				rules = append(rules, r)
			}
		}
	}
	if len(rules) != len(ruleNames) {
		t.Fatalf("unknown rule in %v (registry has %d of them)", ruleNames, len(rules))
	}
	dir := filepath.Join("testdata", "src", filepath.FromSlash(rel))
	problems, err := CheckGolden(dir, rel, rules)
	if err != nil {
		t.Fatalf("golden %s: %v", rel, err)
	}
	for _, p := range problems {
		t.Errorf("golden %s: %s", rel, p)
	}
}

func TestGoldenSeededrand(t *testing.T) {
	runGolden(t, "seededrand", "seededrand")
}

func TestGoldenWalltime(t *testing.T) {
	// aligned is in walltime's deterministic-package scope; clock is the
	// out-of-scope negative where wall-clock reads are fine.
	runGolden(t, "walltime/aligned", "walltime")
	runGolden(t, "walltime/clock", "walltime")
}

func TestGoldenLockdiscipline(t *testing.T) {
	runGolden(t, "lockdiscipline", "lockdiscipline")
}

func TestGoldenAtomicmix(t *testing.T) {
	runGolden(t, "atomicmix", "atomicmix")
}

func TestGoldenErrcrit(t *testing.T) {
	// journal and metrics are in errcrit's crash-safety scope (the registry
	// because a dropped exposition-write error truncates /metrics silently);
	// other is the out-of-scope negative where best-effort closes are
	// tolerated.
	runGolden(t, "errcrit/journal", "errcrit")
	runGolden(t, "errcrit/metrics", "errcrit")
	runGolden(t, "errcrit/other", "errcrit")
	// transport pins the UDP write-path coverage: datagram sends and
	// socket-buffer sizing.
	runGolden(t, "errcrit/transport", "errcrit")
	// traceio and packet pin the PR 8 scope extension: trace capture and
	// packet serialization write paths.
	runGolden(t, "errcrit/traceio", "errcrit")
	runGolden(t, "errcrit/packet", "errcrit")
	// shard pins the scatter/gather tier's scope entry: coordinator scatter
	// writes, report-push closes, and the simulated-crash carve-out.
	runGolden(t, "errcrit/shard", "errcrit")
}

func TestGoldenWiretaint(t *testing.T) {
	// transport is in wiretaint's decode-surface scope and reintroduces the
	// PR 6 groups*arrays overflow; other is the out-of-scope negative where
	// the same shapes are silent.
	runGolden(t, "wiretaint/transport", "wiretaint")
	runGolden(t, "wiretaint/other", "wiretaint")
}

func TestGoldenMaporder(t *testing.T) {
	// center is under the PR 4 determinism contract; other is the
	// out-of-scope negative where unordered map consumption is fine.
	runGolden(t, "maporder/center", "maporder")
	runGolden(t, "maporder/other", "maporder")
}

func TestGoldenGorolifecycle(t *testing.T) {
	// lib is library code where every go statement needs a join/stop path;
	// cmd is the process-lifetime negative.
	runGolden(t, "gorolifecycle/lib", "gorolifecycle")
	runGolden(t, "gorolifecycle/cmd", "gorolifecycle")
}
