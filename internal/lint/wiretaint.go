package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// wiretaintPkgs scopes the rule to the packages that parse attacker-reachable
// bytes: the TCP/UDP wire codecs, the journal's segment recovery scanner, the
// packet model, and the trace reader. Everything a center ingests arrives
// through one of these decode surfaces, and PR 6's decodeUnaligned overflow
// (a 16-byte hostile frame driving a gigabyte allocation through an
// unchecked groups*arrays product) is the class this rule exists to make
// unwritable.
var wiretaintPkgs = []string{"transport", "journal", "packet", "traceio"}

// wiretaintRule: integers read from wire or disk bytes are tainted until an
// explicit ordered bounds comparison (or a registered sanitizer) launders
// them; a tainted value sizing a make, indexing a slice, bounding a slice
// expression, or feeding a multiplication that can wrap its type is a
// finding. Runs on the dataflow engine in dataflow.go.
var wiretaintRule = Rule{
	Name: "wiretaint",
	Doc:  "wire/disk-derived integers must pass a bounds comparison before sizing allocations, indexing, or multiplying in a wrappable type (transport, journal, packet, traceio)",
	Run:  runWiretaint,
}

// wiretaintSanitizers is the rule's sanitizer registry. Ordered comparisons
// are built into the engine; entries here bless named validation helpers so
// future decode code can centralize its bounds checks without fighting the
// rule. (Project helpers register here as they appear.)
var wiretaintSanitizers = NewSanitizerRegistry()

// binaryReadWidths maps encoding/binary ByteOrder getters to the width of
// the attacker-controlled value they produce.
var binaryReadWidths = map[string]uint8{
	"Uint16": 16,
	"Uint32": 32,
	"Uint64": 64,
}

func runWiretaint(pass *Pass) {
	if !pass.PathHasSegment(wiretaintPkgs...) {
		return
	}
	en := &taintEngine{
		pass:           pass,
		byteLoadSource: true,
		sanitizers:     wiretaintSanitizers,
		source: func(call *ast.CallExpr) (uint8, string) {
			return wiretaintSource(pass, call)
		},
		sink: func(s taintSink) {
			reportWiretaintSink(pass, s)
		},
	}
	en.run()
}

// wiretaintSource classifies binary.BigEndian/LittleEndian Uint* calls (and
// any binary.ByteOrder method value) as taint sources.
func wiretaintSource(pass *Pass, call *ast.CallExpr) (uint8, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, ""
	}
	w, ok := binaryReadWidths[sel.Sel.Name]
	if !ok {
		return 0, ""
	}
	selection, ok := pass.Pkg.Info.Selections[sel]
	if !ok {
		return 0, ""
	}
	recv := selection.Recv()
	if !typeFromPackage(recv, "encoding/binary") {
		return 0, ""
	}
	return w, fmt.Sprintf("%d-bit wire read (%s.%s)", w, exprString(sel.X), sel.Sel.Name)
}

// typeFromPackage reports whether t (or its pointee) is declared in pkgPath.
func typeFromPackage(t types.Type, pkgPath string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func reportWiretaintSink(pass *Pass, s taintSink) {
	const hint = "bounds-compare it first (or route it through a registered sanitizer)"
	switch s.kind {
	case sinkMakeLen:
		pass.Reportf(s.pos,
			"unchecked %s sizes a make; a hostile frame picks the allocation — %s", s.taint.origin, hint)
	case sinkMakeCap:
		pass.Reportf(s.pos,
			"unchecked %s sets a make capacity; a hostile frame picks the allocation — %s", s.taint.origin, hint)
	case sinkIndex:
		pass.Reportf(s.pos,
			"unchecked %s used as a slice index; a hostile frame picks the offset — %s", s.taint.origin, hint)
	case sinkSliceBound:
		pass.Reportf(s.pos,
			"unchecked %s used as a slice bound; a hostile frame picks the cut — %s", s.taint.origin, hint)
	case sinkMulWrap:
		pass.Reportf(s.pos,
			"multiplication of unchecked %s can wrap: operands span %d bits but the result type holds %d; widen to uint64 or bound the factors first",
			s.taint.origin, s.need, s.bits)
	}
}
