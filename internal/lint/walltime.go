package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the path segments naming the packages whose outputs
// must be pure functions of (input, seed): the detector math, the graph and
// statistics machinery, and the synthetic workload generators. transport,
// center, journal, faultinject, experiments, and the commands legitimately
// read the clock (deadlines, benchmarks) and are therefore not listed.
var deterministicPkgs = []string{
	"aligned", "unaligned", "graph", "stats", "simulate", "trafficgen", "baseline",
}

// walltimeRule keeps the wall clock out of the deterministic packages. A
// time.Now() hiding in a threshold computation or a trace generator makes
// the paper's reproductions (ER threshold position, Table 1–3, the stress
// tier) unrepeatable in exactly the way a stray global RNG does; timestamps
// and durations must be inputs, not ambient reads.
var walltimeRule = Rule{
	Name: "walltime",
	Doc:  "no wall-clock reads (time.Now/Since/Until/Tick/After/NewTicker/NewTimer) in the deterministic packages",
	Run:  runWalltime,
}

// wallClockFuncs are the time-package functions that observe or depend on
// the wall clock. time.Sleep is deliberately absent: sleeping changes when a
// result is computed, never what it is.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

func runWalltime(pass *Pass) {
	if !pass.PathHasSegment(deterministicPkgs...) {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := info.Uses[pkgIdent].(*types.PkgName); ok && pn.Imported().Path() == "time" {
				pass.Reportf(sel.Pos(),
					"time.%s in deterministic package %s; pass timestamps or durations in from the caller so results depend only on (input, seed)",
					sel.Sel.Name, pass.Pkg.Types.Name())
			}
			return true
		})
	}
}
