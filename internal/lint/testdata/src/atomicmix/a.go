// Package atomicmix exercises the atomicmix rule: typed sync/atomic values
// are operated on through Load/Store/Add via a pointer, never assigned
// directly or copied wholesale.
package atomicmix

import "sync/atomic"

// Stats is a typical lock-free counter block.
type Stats struct {
	Hits  atomic.Int64
	Level atomic.Uint64
	Live  atomic.Bool
}

// direct assigns an atomic value with =, which is not atomic at all.
func direct(s, other *Stats) {
	s.Hits = other.Hits // want `atomicmix: direct assignment to atomic value s\.Hits`
}

// snapshotWrong copies the whole struct, duplicating every counter.
func snapshotWrong(s *Stats) {
	local := *s // want `atomicmix: copies .*Stats by value, duplicating its atomic field Hits`
	_ = local
}

// byValueMethod copies the stats through its receiver.
func (s Stats) byValueMethod() {} // want `atomicmix: receiver of byValueMethod passes .*Stats by value`

// byValueParam copies them through a parameter.
func byValueParam(s Stats) {} // want `atomicmix: parameter of byValueParam passes .*Stats by value`

// bump is the approved shape: pointer receiver, atomic methods.
func (s *Stats) bump() { s.Hits.Add(1) }

// snapshotRight reads each counter individually into plain integers.
func snapshotRight(s *Stats) (int64, uint64) {
	s.Level.Store(3)
	s.Live.Store(true)
	return s.Hits.Load(), s.Level.Load()
}

// suppressed demonstrates the escape hatch.
func suppressed(s, o *Stats) {
	s.Hits = o.Hits //dcslint:ignore atomicmix golden-corpus demo of the suppression syntax
}
