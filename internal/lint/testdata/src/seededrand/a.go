// Package seededrand exercises the seededrand rule: library code must not
// draw from math/rand's process-global source or seed a source from the
// wall clock — every RNG flows from an explicit seed.
package seededrand

import (
	"math/rand"
	"time"
)

// globals draws from the process-wide source; each call reports separately.
func globals() int {
	n := rand.Intn(10)                 // want `seededrand: call to global math/rand\.Intn`
	rand.Shuffle(n, func(i, j int) {}) // want `seededrand: call to global math/rand\.Shuffle`
	return n
}

// reseed is the classic pre-1.20 idiom the rule exists to keep out.
func reseed() {
	rand.Seed(42) // want `seededrand: call to global math/rand\.Seed`
}

// timeSeeded defeats reproducibility even though it builds its own source.
func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `seededrand: rand\.NewSource seeded from the wall clock`
}

// seeded is the approved shape: an explicit seed flowing in from the caller.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// consume shows that using a passed-in *rand.Rand is always fine.
func consume(r *rand.Rand) int { return r.Intn(10) }

// suppressed demonstrates the documented escape hatch.
func suppressed() float64 {
	return rand.Float64() //dcslint:ignore seededrand golden-corpus demo of the suppression syntax
}
