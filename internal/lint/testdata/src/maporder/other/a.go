// Package other is the maporder out-of-scope negative: no deterministic
// package segment in the import path, so unordered map consumption is fine —
// diagnostics, ad-hoc tooling, and caches are allowed to be order-sloppy.
package other

// appendUnsorted would be a finding inside the determinism contract.
func appendUnsorted(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	return keys
}
