// Package center is the maporder golden corpus: the "center" path segment
// puts it under the PR 4 determinism contract, so map ranges feeding ordered
// output must fire while the sanctioned reductions stay silent.
package center

import "sort"

// appendUnsorted: element order follows randomized map iteration.
func appendUnsorted(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k) // want `maporder: append to keys inside a range over map counts`
	}
	return keys
}

// appendThenSort is the sanctioned materialize-and-sort idiom.
func appendThenSort(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// appendThenSortSlice: sort.Slice with the slice as first argument also
// counts.
func appendThenSortSlice(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// sendInRange: delivery order is randomized.
func sendInRange(counts map[string]int, out chan<- string) {
	for k := range counts {
		out <- k // want `maporder: send inside a range over map counts`
	}
}

// overwriteLastWriterWins: whichever key iterates last silently wins.
func overwriteLastWriterWins(byID map[uint64]string) string {
	var chosen string
	for _, name := range byID {
		chosen = name // want `maporder: overwrite of chosen inside a range over map byID`
	}
	return chosen
}

// guardedExtremum is the min-selection idiom the tree uses (oldest epoch,
// coldest shard): the guard's ordered comparison against the target makes it
// an order-insensitive reduction over the unique keys.
func guardedExtremum(lastSeen map[uint64]int64) int64 {
	oldest := int64(-1)
	for _, e := range lastSeen {
		if oldest < 0 || e < oldest {
			oldest = e
		}
	}
	return oldest
}

// compoundReduction: += over the values is commutative.
func compoundReduction(counts map[string]int) int {
	total := 0
	for _, v := range counts {
		total += v
	}
	return total
}

// selfReferentialReduction: sum = sum + v mentions its own target.
func selfReferentialReduction(counts map[string]int) int {
	sum := 0
	for _, v := range counts {
		sum = sum + v
	}
	return sum
}

// mapToMapCopy: building another map is order-insensitive.
func mapToMapCopy(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// loopInvariantStore: the same value is written every iteration.
func loopInvariantStore(counts map[string]int) bool {
	nonEmpty := false
	for range counts {
		nonEmpty = true
	}
	return nonEmpty
}

// insideGoroutine: a map range in a spawned literal is just as random.
func insideGoroutine(counts map[string]int, done chan struct{}) []string {
	var keys []string
	go func() {
		for k := range counts {
			keys = append(keys, k) // want `maporder: append to keys inside a range over map counts`
		}
		close(done)
	}()
	<-done
	return keys
}

// suppressedAppend: the escape hatch with a reason.
func suppressedAppend(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		//dcslint:ignore maporder consumer deduplicates into a set; order is irrelevant here
		keys = append(keys, k)
	}
	return keys
}
