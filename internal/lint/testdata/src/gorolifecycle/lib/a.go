// Package lib is the gorolifecycle golden corpus: a library package (no cmd
// or examples segment, not package main), so every go statement needs a
// visible join/stop path.
package lib

import (
	"sync"
	"time"
)

// fireAndForget never joins, never stops: the canonical leak.
func fireAndForget() {
	go func() { // want `gorolifecycle: goroutine function literal has no tracked join/stop path`
		for {
			time.Sleep(time.Second)
		}
	}()
}

// waitGroupJoined: the spawner can Wait for it.
func waitGroupJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
	}()
}

// quitChannelStopped: select on a captured quit channel.
func quitChannelStopped(quit <-chan struct{}) {
	go func() {
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
			}
		}
	}()
}

// rangeOverChannel terminates when the spawner closes jobs.
func rangeOverChannel(jobs <-chan int, handle func(int)) {
	go func() {
		for j := range jobs {
			handle(j)
		}
	}()
}

// closeSignalsDone: close(done) is a join signal the spawner blocks on.
func closeSignalsDone() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(time.Millisecond)
	}()
	<-done
}

// sendDrained: the spawner receives the result, coupling the lifetimes.
func sendDrained() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}

type worker struct {
	quit chan struct{}
}

// loop has a stop path, so spawning it as a method is fine.
func (w *worker) loop() {
	for {
		select {
		case <-w.quit:
			return
		}
	}
}

func (w *worker) start() {
	go w.loop()
}

// spin has no stop path; spawning it is a finding at the go statement.
func spin() {
	for {
		time.Sleep(time.Second)
	}
}

func spawnSpin() {
	go spin() // want `gorolifecycle: goroutine spin has no tracked join/stop path`
}

// opaqueTarget: the body is out of reach (function-typed parameter), so the
// rule asks for a visible lifecycle or a documented suppression.
func opaqueTarget(f func()) {
	go f() // want `gorolifecycle: go statement spawns f, whose body this package cannot see`
}

// suppressedDetached: documented fire-and-forget.
func suppressedDetached() {
	//dcslint:ignore gorolifecycle best-effort telemetry flush; process exit is its only stop and that is acceptable
	go func() {
		for {
			time.Sleep(time.Minute)
		}
	}()
}
