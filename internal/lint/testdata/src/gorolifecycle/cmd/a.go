// Package main is the gorolifecycle out-of-scope negative: the "cmd" path
// segment (and package main) mark process-lifetime code, where a detached
// goroutine dies with the process by construction.
package main

import "time"

func main() {
	go func() {
		for {
			time.Sleep(time.Second)
		}
	}()
	time.Sleep(10 * time.Millisecond)
}
