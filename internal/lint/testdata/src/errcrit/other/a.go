// Package other is the errcrit rule's negative case: its path has no
// journal/transport/center segment, so best-effort closes are tolerated
// (the repository-wide bar is set by the crash-safety packages, not every
// package).
package other

import "os"

// teardown is fine here: "other" is not a crash-safety-critical package.
func teardown(f *os.File) { f.Close() }
