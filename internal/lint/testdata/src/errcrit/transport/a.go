// Package transport exercises the errcrit rule's UDP coverage inside a
// crash-safety-critical package (the "transport" path segment puts it in
// scope): datagram sends and socket-buffer sizing return errors that must be
// surfaced — a discarded WriteToUDP error hides local send failures that are
// not network loss, and a discarded SetReadBuffer error hides a kernel
// refusing burst headroom.
package transport

import (
	"fmt"
	"net"
)

// discards throws away every UDP write-path error the rule knows.
func discards(c *net.UDPConn, payload []byte, to *net.UDPAddr) {
	c.WriteToUDP(payload, to)       // want `errcrit: error from c\.WriteToUDP discarded`
	c.WriteMsgUDP(payload, nil, to) // want `errcrit: error from c\.WriteMsgUDP discarded`
	_ = c.SetReadBuffer(4 << 20)    // want `errcrit: error from c\.SetReadBuffer assigned to _`
	defer c.SetWriteBuffer(1 << 20) // want `errcrit: error from c\.SetWriteBuffer discarded by defer`
	go c.WriteToUDP(payload, to)    // want `errcrit: error from c\.WriteToUDP discarded by go`
}

// checked is the approved shape: every failure surfaces.
func checked(c *net.UDPConn, payload []byte, to *net.UDPAddr) error {
	if err := c.SetReadBuffer(4 << 20); err != nil {
		return fmt.Errorf("read buffer: %w", err)
	}
	if _, err := c.WriteToUDP(payload, to); err != nil {
		return fmt.Errorf("send: %w", err)
	}
	return nil
}

// besteffort demonstrates the documented escape hatch.
func besteffort(c *net.UDPConn) {
	//dcslint:ignore errcrit golden-corpus demo: buffer sizing here is best-effort tuning
	_ = c.SetReadBuffer(1 << 20)
}

// reads shows receive-path calls are never flagged.
func reads(c *net.UDPConn, buf []byte) int {
	n, _, _ := c.ReadFromUDP(buf)
	return n
}
