// Package packet exercises the errcrit rule's serialization coverage (the
// "packet" path segment entered scope in PR 8): packet marshalling feeds both
// the trace writer and the wire transport, so a dropped Write or WriteTo
// error here corrupts everything downstream while every checksum still
// matches what was actually (not what should have been) written.
package packet

import (
	"bytes"
	"fmt"
	"io"
)

// discards drops serialization errors.
func discards(dst io.Writer, buf *bytes.Buffer, payload []byte) {
	dst.Write(payload) // want `errcrit: error from dst\.Write discarded`
	buf.WriteTo(dst)   // want `errcrit: error from buf\.WriteTo discarded`
}

// checked is the approved shape.
func checked(dst io.Writer, payload []byte) error {
	if _, err := dst.Write(payload); err != nil {
		return fmt.Errorf("serialize: %w", err)
	}
	return nil
}

// buffered shows the deliberate carve-out everyone relies on: bytes.Buffer
// writes cannot fail, and the rule still flags them uniformly, so the
// documented suppression is the contract.
func buffered(buf *bytes.Buffer, payload []byte) []byte {
	//dcslint:ignore errcrit bytes.Buffer.Write always returns a nil error by contract
	buf.Write(payload)
	return buf.Bytes()
}
