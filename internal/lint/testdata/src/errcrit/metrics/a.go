// Package metrics exercises the errcrit rule inside the metrics registry
// (the "metrics" path segment puts it in scope): an exposition write error
// that is dropped serves a silently truncated /metrics page, so write-path
// errors must surface here exactly as on the journal's crash path.
package metrics

import (
	"fmt"
	"io"
	"net/http"
)

// scrape discards exposition-write errors the rule must catch.
func scrape(w http.ResponseWriter, body io.WriterTo) {
	w.Write([]byte("# HELP x\n"))    // want `errcrit: error from w\.Write discarded`
	_, _ = body.WriteTo(w)           // want `errcrit: error from body\.WriteTo assigned to _`
	io.WriteString(w, "x_total 1\n") // want `errcrit: error from io\.WriteString discarded`
	// Fprintf is not in the write-method list (formatting helpers wrap a
	// Writer whose own Write the rule already polices at the call site that
	// owns it), so this line is the in-scope negative.
	fmt.Fprintf(w, "x_total %d\n", 1)
}

// checked is the approved shape: the first failed write aborts the scrape.
func checked(w io.Writer, body io.WriterTo) error {
	if _, err := io.WriteString(w, "# HELP x\n"); err != nil {
		return fmt.Errorf("exposition: %w", err)
	}
	if _, err := body.WriteTo(w); err != nil {
		return fmt.Errorf("exposition: %w", err)
	}
	return nil
}
