// Package journal exercises the errcrit rule inside a crash-safety-critical
// package (the "journal" path segment puts it in scope): write-path errors
// must be surfaced, not discarded.
package journal

import (
	"fmt"
	"os"
)

// discards throws away every kind of write-path error the rule knows.
func discards(f *os.File, path string) {
	f.Write([]byte("x")) // want `errcrit: error from f\.Write discarded`
	f.Sync()             // want `errcrit: error from f\.Sync discarded`
	defer f.Close()      // want `errcrit: error from f\.Close discarded by defer`
	os.Remove(path)      // want `errcrit: error from os\.Remove discarded`
	_ = f.Truncate(0)    // want `errcrit: error from f\.Truncate assigned to _`
}

// checked is the approved shape: every failure surfaces.
func checked(f *os.File) error {
	if _, err := f.Write([]byte("x")); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return f.Close()
}

// besteffort demonstrates the documented escape hatch.
func besteffort(path string) {
	//dcslint:ignore errcrit golden-corpus demo: removal here is best-effort cleanup
	os.Remove(path)
}

// report shows calls without an error result are never flagged.
func report(n int) { fmt.Println("frames:", n) }
