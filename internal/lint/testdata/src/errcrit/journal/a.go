// Package journal exercises the errcrit rule inside a crash-safety-critical
// package (the "journal" path segment puts it in scope): write-path errors
// must be surfaced, not discarded.
package journal

import (
	"fmt"
	"os"
)

// discards throws away every kind of write-path error the rule knows.
func discards(f *os.File, path string) {
	f.Write([]byte("x")) // want `errcrit: error from f\.Write discarded`
	f.Sync()             // want `errcrit: error from f\.Sync discarded`
	defer f.Close()      // want `errcrit: error from f\.Close discarded by defer`
	os.Remove(path)      // want `errcrit: error from os\.Remove discarded`
	_ = f.Truncate(0)    // want `errcrit: error from f\.Truncate assigned to _`
}

// checked is the approved shape: every failure surfaces.
func checked(f *os.File) error {
	if _, err := f.Write([]byte("x")); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return f.Close()
}

// besteffort demonstrates the documented escape hatch.
func besteffort(path string) {
	//dcslint:ignore errcrit golden-corpus demo: removal here is best-effort cleanup
	os.Remove(path)
}

// report shows calls without an error result are never flagged.
func report(n int) { fmt.Println("frames:", n) }

// degradedTeardown pins the degraded-mode absorb shape the overload layer
// introduced: a journal flipping to degraded closes its broken handle and
// drops the quarantined remains of a corrupt segment best-effort. Each
// discard is legal ONLY under an ignore that says why no data can be lost —
// degraded mode documents its concessions, it does not waive the rule.
func degradedTeardown(broken *os.File, quarantined string) {
	//dcslint:ignore errcrit the handle already failed a write; its cause is latched and the segment will be truncated back on re-arm
	broken.Close()
	//dcslint:ignore errcrit quarantine rename already failed once; leaving the file in place only re-runs the rescue scan next open
	os.Rename(quarantined, quarantined+".q")
}

// vfs mimics the journal's injectable FS: its method-form write ops are as
// in-scope as the os functions they wrap.
type vfs interface {
	Remove(string) error
	Rename(string, string) error
	SyncDir(string) error
	MkdirAll(string) error
}

// degradedFS pins the FS-interface coverage the degraded-mode work routes
// mutations through — an interface indirection must not launder the error.
func degradedFS(fs vfs, path string) {
	fs.Remove(path)       // want `errcrit: error from fs\.Remove discarded`
	fs.Rename(path, path) // want `errcrit: error from fs\.Rename discarded`
	fs.SyncDir(path)      // want `errcrit: error from fs\.SyncDir discarded`
	_ = fs.MkdirAll(path) // want `errcrit: error from fs\.MkdirAll assigned to _`
	//dcslint:ignore errcrit best-effort cleanup of a frameless file; a survivor holds no replayable data and is re-tried next Open
	fs.Remove(path)
}

// degradedUnsuppressed is the same shape without the documentation: still a
// finding on every line.
func degradedUnsuppressed(broken *os.File, path string) {
	broken.Close()           // want `errcrit: error from broken\.Close discarded`
	broken.Sync()            // want `errcrit: error from broken\.Sync discarded`
	os.Rename(path, path)    // want `errcrit: error from os\.Rename discarded`
	_ = os.Truncate(path, 0) // want `errcrit: error from os\.Truncate assigned to _`
}
