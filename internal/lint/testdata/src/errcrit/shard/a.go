// Package shard exercises the errcrit rule's scatter/gather coverage (the
// "shard" path segment entered scope with the sharded analysis tier): the
// coordinator's scatter path and the shards' report-push path both write to
// live sockets, and a dropped write or close error there silently converts a
// routed digest into a missing one — the merged verdict then looks healthy
// while a shard never saw its data.
package shard

import (
	"fmt"
	"io"
	"net"
	"time"
)

// deadline is a fixed zero deadline; the corpus never reads the clock.
var deadline time.Time

// scatter drops the wire-write error: the digest is counted routed but may
// never have left the process.
func scatter(conn net.Conn, frame []byte) {
	conn.Write(frame)               // want `errcrit: error from conn\.Write discarded`
	conn.SetWriteDeadline(deadline) // want `errcrit: error from conn\.SetWriteDeadline discarded`
}

// teardown drops the close error — the last chance to learn a buffered
// report push never reached the coordinator.
func teardown(push io.Closer) {
	push.Close() // want `errcrit: error from push\.Close discarded`
}

// checked is the approved shape: every write error is observed and
// propagated into the shard health ledger by the caller.
func checked(conn net.Conn, frame []byte) error {
	if _, err := conn.Write(frame); err != nil {
		return fmt.Errorf("scatter: %w", err)
	}
	if err := conn.Close(); err != nil {
		return fmt.Errorf("scatter close: %w", err)
	}
	return nil
}

// crashed is the documented carve-out: simulated-crash teardown in the chaos
// harness closes sockets whose errors are the point of the exercise.
func crashed(srv io.Closer) {
	//dcslint:ignore errcrit simulated crash teardown; the socket dying messily is the scenario
	srv.Close()
}
