// Package traceio exercises the errcrit rule's trace-capture coverage (the
// "traceio" path segment entered scope in PR 8): a capture writer that drops
// a Write, Flush, or Close error produces a short .dct file that replays as a
// quieter network than the one measured — the experiment silently compares
// against truncated ground truth.
package traceio

import (
	"bufio"
	"fmt"
	"os"
)

// discards throws away every stage of the capture write path.
func discards(f *os.File, w *bufio.Writer, frame []byte) {
	w.Write(frame)     // want `errcrit: error from w\.Write discarded`
	_ = w.Flush()      // want `errcrit: error from w\.Flush assigned to _`
	f.Sync()           // want `errcrit: error from f\.Sync discarded`
	defer f.Close()    // want `errcrit: error from f\.Close discarded by defer`
	os.Remove("x.dct") // want `errcrit: error from os\.Remove discarded`
}

// checked is the approved shape: the capture surfaces every failure.
func checked(f *os.File, w *bufio.Writer, frame []byte) error {
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("frame: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return f.Close()
}

// besteffort demonstrates the documented escape hatch.
func besteffort(f *os.File) {
	//dcslint:ignore errcrit golden-corpus demo: read-only handle, close cannot lose data
	_ = f.Close()
}
