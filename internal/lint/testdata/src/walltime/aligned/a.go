// Package aligned exercises the walltime rule inside a deterministic
// package (the "aligned" path segment puts it in scope): wall-clock reads
// are banned; time values may still flow through as data.
package aligned

import "time"

// stamp reads the ambient clock — the exact leak the rule exists for.
func stamp() time.Time {
	return time.Now() // want `walltime: time\.Now in deterministic package aligned`
}

// elapsed hides the same read behind a helper.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `walltime: time\.Since in deterministic package aligned`
}

// tick depends on wall-clock scheduling.
func tick() <-chan time.Time {
	return time.After(time.Millisecond) // want `walltime: time\.After in deterministic package aligned`
}

// format only transforms a caller-supplied value: fine.
func format(t time.Time) string { return t.String() }

// budget shows duration arithmetic is fine — only ambient reads are banned.
func budget(d time.Duration) time.Duration { return 2 * d }

// suppressed demonstrates the escape hatch.
func suppressed() time.Time {
	return time.Now() //dcslint:ignore walltime golden-corpus demo of the suppression syntax
}
