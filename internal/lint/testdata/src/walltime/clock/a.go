// Package clock is the walltime rule's negative case: its path has no
// deterministic-package segment, so wall-clock reads are allowed (this is
// the transport/experiments situation — deadlines and benchmarks are
// legitimately time-dependent).
package clock

import "time"

// stamp is fine here: "clock" is not a deterministic package.
func stamp() time.Time { return time.Now() }

// elapsed likewise.
func elapsed(start time.Time) time.Duration { return time.Since(start) }
