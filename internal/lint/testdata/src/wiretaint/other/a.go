// Package other is the wiretaint out-of-scope negative: its import path has
// no decode-surface segment (transport/journal/packet/traceio), so the same
// source-to-sink shapes that fire in the transport corpus are silent here —
// the rule is about hostile input boundaries, not arithmetic style.
package other

import "encoding/binary"

// allocBeforeCheck would be a finding inside a decode package; here the bytes
// are assumed to come from our own encoder.
func allocBeforeCheck(buf []byte) []byte {
	length := binary.LittleEndian.Uint32(buf[5:])
	return make([]byte, length)
}

// narrowProduct would be a mul-wrap finding in scope.
func narrowProduct(buf []byte) int {
	g := int(binary.LittleEndian.Uint32(buf))
	a := int(binary.LittleEndian.Uint32(buf[4:]))
	return g * a
}
