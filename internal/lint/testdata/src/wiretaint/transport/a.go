// Package transport is the wiretaint golden corpus: its import path carries
// the "transport" segment, so the rule treats it exactly like the real wire
// codecs. Each function pins one engine behaviour; decodeUnalignedPR6
// reintroduces the exact overflow PR 6 fixed in the tree, so the rule can
// never regress below "catches the bug we actually shipped".
package transport

import "encoding/binary"

const (
	maxFrame           = 64 << 20
	maxGeometryVectors = 1 << 24
)

// decodeUnalignedPR6 is the pre-PR6 decodeUnaligned shape: both dimensions
// come straight off the wire, the product is taken in int (32+32 bits needs
// 64, int holds 63 — it can wrap past the guard), and the allocation happens
// before any bounds comparison.
func decodeUnalignedPR6(buf []byte) [][]uint64 {
	groups := int(binary.LittleEndian.Uint32(buf[8:]))
	arrays := int(binary.LittleEndian.Uint32(buf[12:]))
	rows := make([][]uint64, groups)        // want `wiretaint: unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) sizes a make`
	if groups*arrays > maxGeometryVectors { // want `wiretaint: multiplication of unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) can wrap: operands span 64 bits but the result type holds 63`
		return nil
	}
	return rows
}

// decodeUnalignedFixed is the shipped fix: dimensions are bounded before any
// multiplication, and the product is taken in uint64 where 32+32 bits fit.
func decodeUnalignedFixed(buf []byte) [][]uint64 {
	g64 := uint64(binary.LittleEndian.Uint32(buf[8:]))
	a64 := uint64(binary.LittleEndian.Uint32(buf[12:]))
	if g64 > 1<<20 || a64 > 1<<20 || g64*a64 > maxGeometryVectors {
		return nil
	}
	return make([][]uint64, int(g64))
}

// wideProductIsSafe: multiplying two 32-bit wire reads in uint64 cannot wrap
// (64 bits of magnitude in a 64-bit type), so only the make is a finding.
func wideProductIsSafe(buf []byte) []byte {
	g := uint64(binary.LittleEndian.Uint32(buf))
	a := uint64(binary.LittleEndian.Uint32(buf[4:]))
	return make([]byte, g*a) // want `wiretaint: unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) sizes a make`
}

// allocBeforeCheck is the canonical source-to-sink path: the length is used
// before the comparison that would have sanitized it.
func allocBeforeCheck(buf []byte) []byte {
	length := binary.LittleEndian.Uint32(buf[5:])
	out := make([]byte, length) // want `wiretaint: unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) sizes a make`
	if length > maxFrame {
		return nil
	}
	return out
}

// allocAfterCheck is the sanctioned idiom: the ordered comparison launders
// the value, whichever branch the check takes.
func allocAfterCheck(buf []byte) []byte {
	length := binary.LittleEndian.Uint32(buf[5:])
	if length > maxFrame {
		return nil
	}
	return make([]byte, length)
}

// taintFlowsThroughArithmetic: conversions and additions keep the taint, so
// the derived offset is still hostile at the slice expression.
func taintFlowsThroughArithmetic(buf []byte) []byte {
	n := int(binary.LittleEndian.Uint16(buf[6:]))
	end := n + 13
	return buf[:end] // want `wiretaint: unchecked 16-bit wire read \(binary\.LittleEndian\.Uint16\) used as a slice bound`
}

// taintedIndex: a wire byte picking an offset is a finding; the same load
// after a bounds comparison is not.
func taintedIndex(buf []byte) (byte, byte) {
	off := int(buf[0])
	a := buf[off] // want `wiretaint: unchecked byte loaded from buf used as a slice index`
	off2 := int(buf[1])
	if off2 >= len(buf) {
		return a, 0
	}
	return a, buf[off2]
}

// minLaunders: the builtin min against a trusted limit bounds the result, so
// the allocation is safe without an explicit comparison.
func minLaunders(buf []byte) []uint64 {
	n := int(binary.LittleEndian.Uint32(buf))
	return make([]uint64, min(n, 1024))
}

// phiJoin: a value tainted on either arm of a branch is tainted at the join.
func phiJoin(buf []byte, fancy bool) []byte {
	n := 16
	if fancy {
		n = int(binary.LittleEndian.Uint32(buf))
	}
	return make([]byte, n) // want `wiretaint: unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) sizes a make`
}

// loopCarried: taint survives a loop-carried assignment (the fixpoint pass
// sees total pick up n's width on the second iteration).
func loopCarried(buf []byte) []byte {
	total := 0
	for i := 0; i < 4; i++ {
		n := int(binary.LittleEndian.Uint16(buf[i*2:]))
		total = total + n
	}
	return make([]byte, total) // want `wiretaint: unchecked 16-bit wire read \(binary\.LittleEndian\.Uint16\) sizes a make`
}

// havocAtCall: the engine does not track values through calls — clamp's
// result is trusted (the callee is responsible for its own contract). This
// pins the deliberate false negative; register a sanitizer entry instead of
// relying on it.
func havocAtCall(buf []byte) []byte {
	n := int(binary.LittleEndian.Uint32(buf))
	m := clamp(n)
	return make([]byte, m)
}

func clamp(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

// compoundWrap: x *= wire is the same wrap hazard as x = x*wire.
func compoundWrap(buf []byte) int {
	n := int(binary.LittleEndian.Uint32(buf))
	n *= int(binary.LittleEndian.Uint32(buf[4:])) // want `wiretaint: multiplication of unchecked 32-bit wire read \(binary\.LittleEndian\.Uint32\) can wrap`
	return n
}

// suppressed: the escape hatch works and demands a reason.
func suppressed(buf []byte) []byte {
	n := binary.LittleEndian.Uint16(buf)
	//dcslint:ignore wiretaint uint16 tops out at 64 KiB, an acceptable bound for this scratch buffer
	return make([]byte, n)
}

// remSanitizes: modulo by a trusted bound launders the value.
func remSanitizes(buf []byte) []byte {
	n := int(binary.LittleEndian.Uint64(buf))
	return make([]byte, n%4096)
}

// maskNarrows: masking with a small constant bounds the magnitude but the
// value is still attacker-chosen — fine for a make of bounded size; the
// width still trips the index sink.
func maskNarrows(buf []byte) []byte {
	n := binary.LittleEndian.Uint64(buf) & 0xFF
	return make([]byte, n) // want `wiretaint: unchecked 64-bit wire read \(binary\.LittleEndian\.Uint64\) sizes a make`
}
