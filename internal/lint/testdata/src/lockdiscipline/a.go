// Package lockdiscipline exercises the lockdiscipline rule: fields
// annotated "guarded by mu" are only touched with mu held, no return path
// leaks a held lock, and no mutex-bearing struct travels by value.
package lockdiscipline

import "sync"

// Box is a mutex-protected struct with annotated fields.
type Box struct {
	mu sync.Mutex

	count int      // guarded by mu
	items []string // guarded by mu
}

// Add is the classic lock/defer-unlock shape: clean.
func (b *Box) Add(item string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.items = append(b.items, item)
	b.count++
}

// TryAdd uses explicit unlocks with an early-exit branch: clean, because the
// branch's Unlock is followed by a return and so never releases the
// fall-through path.
func (b *Box) TryAdd(item string) bool {
	b.mu.Lock()
	if b.count > 10 {
		b.mu.Unlock()
		return false
	}
	b.items = append(b.items, item)
	b.mu.Unlock()
	return true
}

// appendLocked relies on the *Locked naming convention: the caller locks.
func (b *Box) appendLocked(item string) {
	b.items = append(b.items, item)
}

// reset empties the box. Caller holds b.mu.
func (b *Box) reset() {
	b.items = nil
	b.count = 0
}

// Peek reads a guarded field with no lock anywhere in sight.
func (b *Box) Peek() int {
	return b.count // want `lockdiscipline: b\.count is guarded by mu but accessed without b\.mu\.Lock`
}

// Racy releases the lock and keeps reading.
func (b *Box) Racy() int {
	b.mu.Lock()
	n := b.count
	b.mu.Unlock()
	return n + b.count // want `lockdiscipline: b\.count is guarded by mu but accessed after b\.mu\.Unlock`
}

// Leak forgets to unlock on the early-return path.
func (b *Box) Leak(item string) bool {
	b.mu.Lock()
	if item == "" {
		return false // want `lockdiscipline: return while b\.mu may still be locked`
	}
	b.items = append(b.items, item)
	b.mu.Unlock()
	return true
}

// Copied moves the whole box — mutex included — by value.
func (b Box) Copied() {} // want `lockdiscipline: receiver of Copied copies .*Box by value, including its mutex mu`

// Inspect copies it again through a parameter.
func Inspect(b Box) int { return 0 } // want `lockdiscipline: parameter of Inspect copies .*Box by value, including its mutex mu`

// NewBox touches guarded fields of a value that is still private to its
// constructor: exempt, nothing else can race with it yet.
func NewBox() *Box {
	b := &Box{}
	b.count = 1
	return b
}

// Async shows lock state never crosses into a closure, and a closure that
// locks for itself is clean.
func (b *Box) Async() {
	go func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.count++
	}()
}

// Sneaky demonstrates the escape hatch.
func (b *Box) Sneaky() int {
	return b.count //dcslint:ignore lockdiscipline golden-corpus demo of the suppression syntax
}

// Mislabeled has an annotation naming a nonexistent mutex: the annotation
// itself is the bug.
type Mislabeled struct {
	mu    sync.Mutex
	value int // guarded by lock // want `lockdiscipline: guarded-by annotation names "lock"`
}
