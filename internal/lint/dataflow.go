package lint

// This file is the intraprocedural dataflow engine the value-fact rules
// (today: wiretaint) run on. It grew out of the per-function AST pattern
// matching the first five rules use: those rules only need to recognize a
// shape at one program point, but "an untrusted wire integer sizes an
// allocation" is a property of a *path* — the value is read here, maybe
// bounds-checked there, and used two statements later. The engine makes that
// checkable with a deliberately small abstract interpretation:
//
//   - One function (or function literal) body at a time, forward, in source
//     order. No interprocedural propagation: a called function's effects are
//     havoc (see below), and a closure starts from an empty environment.
//   - The abstract state maps each *local variable* (including parameters)
//     to a taint width: 0 means untainted/trusted, w > 0 means "an
//     attacker-influenced value of at most w significant bits". Widths are
//     what make the overflow rule precise: two 32-bit wire reads multiplied
//     in uint64 cannot wrap (32+32 <= 64), the same product in int can
//     (32+32 > 63) — exactly the PR 6 decodeUnaligned bug class.
//   - Assignments, conversions, and arithmetic propagate widths through
//     expressions (conversions clamp to the target type's effective bits;
//     add/sub may carry, shifts widen, masking by a constant narrows).
//   - Control flow joins are phi-like: each branch walks a copy of the
//     environment and the continuation takes the per-variable maximum.
//     A branch that provably terminates (return/panic/continue/break as its
//     last statement) contributes nothing to the join. Loop bodies run to a
//     cheap fixpoint (two passes over the joined state — the lattice is
//     finite and monotone, and a third pass cannot add facts the second
//     missed for this lattice height).
//   - Calls havoc: an unknown callee's results are untrusted-free (width 0,
//     the caller is responsible for what it does with them) and any local
//     passed by address loses its facts. This is the conservative choice for
//     a *bug-finding* taint rule — it trades false negatives across calls
//     for zero false positives from helpers the engine cannot see; the
//     decode entry points the rule exists for are self-contained functions.
//   - Sanitization: an ordered comparison (<, <=, >, >=) mentioning a local
//     variable untaints that variable from that point on — the idiom every
//     decoder in this repository uses is "if length > maxFrame { return
//     ErrBadFrame }", and the engine credits the check when it is evaluated,
//     which is exactly the fallthrough path's guarantee under short-circuit
//     evaluation. Named sanitizers (the builtin min, plus anything a rule
//     registers) untaint their result or designated arguments.
//
// The engine reports nothing by itself; a rule supplies the source and sink
// hooks (taintSources, taintSink) and owns the diagnostics.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// taint is one variable's abstract fact: the maximum number of
// attacker-influenced significant bits, plus where the taint entered so
// diagnostics can say "read from the wire at wire.go:130".
type taint struct {
	width  uint8
	origin string
}

func (t taint) tainted() bool { return t.width > 0 }

// taintEnv is the abstract state at one program point.
type taintEnv map[*types.Var]taint

func (e taintEnv) clone() taintEnv {
	out := make(taintEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// join widens e to the per-variable maximum of e and o (phi at a merge
// point) and reports whether anything changed.
func (e taintEnv) join(o taintEnv) bool {
	changed := false
	for v, t := range o {
		if cur, ok := e[v]; !ok || t.width > cur.width {
			e[v] = t
			changed = true
		}
	}
	return changed
}

// sinkKind classifies the dangerous uses the engine can detect; the rule
// decides which ones it reports and with what message.
type sinkKind int

const (
	// sinkMakeLen / sinkMakeCap: a tainted length or capacity argument to
	// make — attacker-sized allocation.
	sinkMakeLen sinkKind = iota
	sinkMakeCap
	// sinkIndex: a tainted index expression — attacker-chosen offset.
	sinkIndex
	// sinkSliceBound: a tainted slice-expression bound.
	sinkSliceBound
	// sinkMulWrap: a multiplication whose operand magnitudes can exceed the
	// expression type's effective bits — the guard-bypassing overflow class.
	sinkMulWrap
)

// taintSink is one dangerous use of a tainted value.
type taintSink struct {
	kind  sinkKind
	pos   token.Pos
	taint taint
	// bits is the expression type's effective bit capacity (sinkMulWrap
	// only); need is the combined operand magnitude that exceeds it.
	bits, need int
}

// sanitizer describes one registered sanitizing function: calling it
// launders the listed argument indices and/or its results.
type sanitizer struct {
	// untaintResult marks every result of the call trusted.
	untaintResult bool
	// untaintArgs lists argument indices whose variables become trusted.
	untaintArgs []int
}

// SanitizerRegistry maps qualified function names ("pkgpath.Func",
// "(pkgpath.Type).Method", or "builtin.min") to their laundering behaviour.
// Ordered comparisons are built into the engine and need no entry; the
// registry exists so a rule can bless project validation helpers without
// touching the engine.
type SanitizerRegistry struct {
	byName map[string]sanitizer
}

// NewSanitizerRegistry returns a registry preloaded with the builtins the
// engine blesses by default: min clamps its result to its smallest operand,
// so a min(wireValue, limit) result is bounded by the trusted limit.
func NewSanitizerRegistry() *SanitizerRegistry {
	r := &SanitizerRegistry{byName: make(map[string]sanitizer)}
	r.Register("builtin.min", sanitizer{untaintResult: true})
	return r
}

// Register adds or replaces one sanitizer entry.
func (r *SanitizerRegistry) Register(name string, s sanitizer) { r.byName[name] = s }

func (r *SanitizerRegistry) lookup(name string) (sanitizer, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// taintEngine runs the dataflow over one package. The hooks are supplied by
// the rule that owns the diagnostics.
type taintEngine struct {
	pass *Pass
	// source classifies a call expression as a taint source and returns the
	// width of the value it produces (0 = not a source).
	source func(call *ast.CallExpr) (width uint8, origin string)
	// byteLoadSource, when true, treats every load from a []byte value as an
	// 8-bit source (wire and disk buffers are byte slices).
	byteLoadSource bool
	// sink receives every dangerous use of a tainted value.
	sink func(s taintSink)
	// sanitizers is the laundering registry (never nil).
	sanitizers *SanitizerRegistry

	// fn is the span of the unit under analysis; locals declared inside it
	// are the only variables tracked.
	fnPos, fnEnd token.Pos
}

// run walks every function declaration and literal in the package, each as
// an independent unit.
func (en *taintEngine) run() {
	for _, file := range en.pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			en.runUnit(fd.Pos(), fd.End(), fd.Body)
		}
	}
}

// runUnit analyzes one body with an empty initial environment, then recurses
// into the function literals it skipped.
func (en *taintEngine) runUnit(pos, end token.Pos, body *ast.BlockStmt) {
	savedPos, savedEnd := en.fnPos, en.fnEnd
	en.fnPos, en.fnEnd = pos, end
	env := make(taintEnv)
	en.walkStmts(body.List, env)
	en.fnPos, en.fnEnd = savedPos, savedEnd

	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			en.runUnit(lit.Pos(), lit.End(), lit.Body)
			return false
		}
		return true
	})
}

// localVar resolves id to a variable declared inside the current unit (a
// parameter, named result, or body local); package-level variables and
// struct fields are not tracked.
func (en *taintEngine) localVar(id *ast.Ident) *types.Var {
	obj := en.pass.Pkg.Info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() < en.fnPos || v.Pos() > en.fnEnd {
		return nil
	}
	return v
}

// effectiveBits is the magnitude capacity of a type: how many significant
// bits a non-negative value of the type can hold before wrapping. Signed
// types lose their sign bit; int/uint are taken at 64-bit sizes (every
// deployment target of this repository).
func effectiveBits(t types.Type) int {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return 64
	}
	switch b.Kind() {
	case types.Uint64, types.Uintptr, types.Uint, types.UntypedInt:
		return 64
	case types.Int64, types.Int:
		return 63
	case types.Uint32:
		return 32
	case types.Int32, types.UntypedRune:
		return 31
	case types.Uint16:
		return 16
	case types.Int16:
		return 15
	case types.Uint8:
		return 8
	case types.Int8:
		return 7
	default:
		return 64
	}
}

func capWidth(w int) uint8 {
	if w > 64 {
		return 64
	}
	if w < 0 {
		return 0
	}
	return uint8(w)
}

// constBits is the magnitude of a constant expression in bits, or 0 for
// non-constants (trusted runtime values carry no magnitude of their own —
// only tainted widths and constants feed the wrap check).
func (en *taintEngine) constBits(e ast.Expr) int {
	tv, ok := en.pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0
	}
	if tv.Value.Kind() != constant.Int {
		return 0
	}
	v := constant.ToInt(tv.Value)
	if i, exact := constant.Int64Val(v); exact {
		if i < 0 {
			i = -i
		}
		bits := 0
		for u := uint64(i); u != 0; u >>= 1 {
			bits++
		}
		return bits
	}
	return 64
}

// isConst reports whether e is a compile-time constant.
func (en *taintEngine) isConst(e ast.Expr) bool {
	tv, ok := en.pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// --- statement walk ---------------------------------------------------------

// walkStmts interprets a statement list in order, mutating env.
func (en *taintEngine) walkStmts(list []ast.Stmt, env taintEnv) {
	for _, s := range list {
		en.walkStmt(s, env)
	}
}

func (en *taintEngine) walkStmt(s ast.Stmt, env taintEnv) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		en.walkAssign(st, env)
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var t taint
				if i < len(vs.Values) {
					t = en.evalExpr(vs.Values[i], env)
				}
				if v := en.localVar(name); v != nil {
					en.setVar(env, v, t)
				}
			}
		}
	case *ast.ExprStmt:
		en.evalExpr(st.X, env)
	case *ast.IncDecStmt:
		t := en.evalExpr(st.X, env)
		if id, ok := st.X.(*ast.Ident); ok && t.tainted() {
			if v := en.localVar(id); v != nil {
				t.width = capWidth(int(t.width) + 1)
				env[v] = t
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			en.walkStmt(st.Init, env)
		}
		en.evalExpr(st.Cond, env) // comparisons sanitize env in place
		thenEnv := env.clone()
		en.walkStmts(st.Body.List, thenEnv)
		var elseEnv taintEnv
		if st.Else != nil {
			elseEnv = env.clone()
			en.walkStmt(st.Else, elseEnv)
		} else {
			elseEnv = env.clone()
		}
		// phi: the continuation joins the branch outcomes, skipping branches
		// that cannot fall through.
		for k := range env {
			delete(env, k)
		}
		if !blockTerminates(st.Body.List) {
			env.join(thenEnv)
		}
		var elseList []ast.Stmt
		if b, ok := st.Else.(*ast.BlockStmt); ok {
			elseList = b.List
		}
		if st.Else == nil || !blockTerminates(elseList) {
			env.join(elseEnv)
		}
	case *ast.BlockStmt:
		en.walkStmts(st.List, env)
	case *ast.ForStmt:
		if st.Init != nil {
			en.walkStmt(st.Init, env)
		}
		en.loopFixpoint(env, func(e taintEnv) {
			if st.Cond != nil {
				en.evalExpr(st.Cond, e)
			}
			en.walkStmts(st.Body.List, e)
			if st.Post != nil {
				en.walkStmt(st.Post, e)
			}
		})
	case *ast.RangeStmt:
		xT := en.evalExpr(st.X, env)
		en.loopFixpoint(env, func(e taintEnv) {
			en.bindRangeVars(st, xT, e)
			en.walkStmts(st.Body.List, e)
		})
	case *ast.SwitchStmt:
		if st.Init != nil {
			en.walkStmt(st.Init, env)
		}
		if st.Tag != nil {
			en.evalExpr(st.Tag, env)
		}
		en.walkCases(st.Body, env)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			en.walkStmt(st.Init, env)
		}
		en.walkCases(st.Body, env)
	case *ast.SelectStmt:
		en.walkCases(st.Body, env)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			en.evalExpr(r, env)
		}
	case *ast.SendStmt:
		en.evalExpr(st.Chan, env)
		en.evalExpr(st.Value, env)
	case *ast.DeferStmt:
		en.evalExpr(st.Call, env)
	case *ast.GoStmt:
		// Argument expressions evaluate now; the spawned body is its own unit.
		en.evalExpr(st.Call, env)
	case *ast.LabeledStmt:
		en.walkStmt(st.Stmt, env)
	}
}

// loopFixpoint runs body twice over the progressively joined environment —
// enough for a two-level lattice where one pass can only widen each variable
// once per carried dependency — and leaves env at the post-loop join (the
// loop may run zero times, so the pre-state survives).
func (en *taintEngine) loopFixpoint(env taintEnv, body func(taintEnv)) {
	work := env.clone()
	for i := 0; i < 2; i++ {
		body(work)
		if !work.join(env) && i > 0 {
			break
		}
	}
	env.join(work)
}

// walkCases joins the per-clause outcomes of a switch/select body.
func (en *taintEngine) walkCases(body *ast.BlockStmt, env taintEnv) {
	out := env.clone()
	for _, clause := range body.List {
		caseEnv := env.clone()
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				en.evalExpr(e, caseEnv)
			}
			en.walkStmts(c.Body, caseEnv)
			if !blockTerminates(c.Body) {
				out.join(caseEnv)
			}
		case *ast.CommClause:
			if c.Comm != nil {
				en.walkStmt(c.Comm, caseEnv)
			}
			en.walkStmts(c.Body, caseEnv)
			if !blockTerminates(c.Body) {
				out.join(caseEnv)
			}
		}
	}
	for k := range env {
		delete(env, k)
	}
	env.join(out)
}

// bindRangeVars assigns taint to a range statement's key/value variables:
// iterating a []byte yields tainted 8-bit values when byte loads are
// sources; everything else starts the iteration variables trusted.
func (en *taintEngine) bindRangeVars(st *ast.RangeStmt, xT taint, env taintEnv) {
	setIdent := func(e ast.Expr, t taint) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		if v := en.localVar(id); v != nil {
			en.setVar(env, v, t)
		}
	}
	if st.Key != nil {
		setIdent(st.Key, taint{})
	}
	if st.Value != nil {
		t := taint{}
		if en.byteLoadSource && en.isByteSlice(st.X) {
			t = taint{width: 8, origin: "byte loaded from " + exprString(st.X)}
		}
		setIdent(st.Value, t)
	}
}

// blockTerminates reports whether a statement list cannot fall through to
// the join point (it ends in return, panic, continue, break, or goto) — such
// a branch contributes no facts to the phi.
func blockTerminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.BREAK || last.Tok == token.CONTINUE || last.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// walkAssign interprets one assignment, including compound ops (x *= wire is
// the same wrap hazard as x = x*wire).
func (en *taintEngine) walkAssign(st *ast.AssignStmt, env taintEnv) {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// Compound assignment: one LHS, one RHS.
		lT := en.evalExpr(st.Lhs[0], env)
		rT := en.evalExpr(st.Rhs[0], env)
		t := en.combineOp(compoundOp(st.Tok), st.Lhs[0], st.Rhs[0], lT, rT, st.TokPos, st.Lhs[0])
		if id, ok := st.Lhs[0].(*ast.Ident); ok {
			if v := en.localVar(id); v != nil {
				en.setVar(env, v, t)
			}
		}
		return
	}

	// Evaluate all RHS before binding (Go assignment semantics).
	vals := make([]taint, 0, len(st.Rhs))
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Multi-value call / comma-ok: havoc already applied inside evalExpr;
		// every result is untracked (width 0) unless the call is a source,
		// in which case only a single-result source makes sense.
		t := en.evalExpr(st.Rhs[0], env)
		for range st.Lhs {
			vals = append(vals, t)
		}
		// comma-ok and multi-result calls: the source width applies to the
		// first (value) result only.
		for i := 1; i < len(vals); i++ {
			vals[i] = taint{}
		}
	} else {
		for _, r := range st.Rhs {
			vals = append(vals, en.evalExpr(r, env))
		}
	}
	for i, l := range st.Lhs {
		var t taint
		if i < len(vals) {
			t = vals[i]
		}
		switch lhs := l.(type) {
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if v := en.localVar(lhs); v != nil {
				en.setVar(env, v, t)
			}
		case *ast.IndexExpr:
			// Store through an index: check the index as a sink; the element
			// itself is untracked.
			en.evalExpr(l, env)
		default:
			// Field/deref stores are untracked.
		}
	}
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

// setVar records t for v, dropping untainted entries to keep envs small.
func (en *taintEngine) setVar(env taintEnv, v *types.Var, t taint) {
	if t.tainted() {
		env[v] = t
	} else {
		delete(env, v)
	}
}

// --- expression evaluation --------------------------------------------------

// evalExpr computes the taint of e under env, firing sink callbacks for
// dangerous uses and applying comparison sanitization to env in place.
func (en *taintEngine) evalExpr(e ast.Expr, env taintEnv) taint {
	switch ex := e.(type) {
	case *ast.Ident:
		if v := en.localVar(ex); v != nil {
			return env[v]
		}
		return taint{}
	case *ast.BasicLit:
		return taint{}
	case *ast.ParenExpr:
		return en.evalExpr(ex.X, env)
	case *ast.BinaryExpr:
		return en.evalBinary(ex, env)
	case *ast.UnaryExpr:
		t := en.evalExpr(ex.X, env)
		switch ex.Op {
		case token.XOR: // ^x has full-width magnitude
			if t.tainted() {
				t.width = 64
			}
		case token.SUB:
			if t.tainted() {
				t.width = capWidth(int(t.width) + 1)
			}
		case token.AND, token.ARROW, token.NOT:
			return taint{}
		}
		return t
	case *ast.CallExpr:
		return en.evalCall(ex, env)
	case *ast.IndexExpr:
		xT := en.evalExpr(ex.X, env)
		iT := en.evalExpr(ex.Index, env)
		if iT.tainted() {
			en.sink(taintSink{kind: sinkIndex, pos: ex.Index.Pos(), taint: iT})
		}
		if en.byteLoadSource && en.isByteSlice(ex.X) {
			return taint{width: 8, origin: "byte loaded from " + exprString(ex.X)}
		}
		_ = xT
		return taint{}
	case *ast.SliceExpr:
		en.evalExpr(ex.X, env)
		for _, b := range []ast.Expr{ex.Low, ex.High, ex.Max} {
			if b == nil {
				continue
			}
			if t := en.evalExpr(b, env); t.tainted() {
				en.sink(taintSink{kind: sinkSliceBound, pos: b.Pos(), taint: t})
			}
		}
		return taint{}
	case *ast.SelectorExpr:
		// Field reads and qualified identifiers are untracked.
		return taint{}
	case *ast.StarExpr:
		en.evalExpr(ex.X, env)
		return taint{}
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				en.evalExpr(kv.Value, env)
			} else {
				en.evalExpr(el, env)
			}
		}
		return taint{}
	case *ast.TypeAssertExpr:
		en.evalExpr(ex.X, env)
		return taint{}
	case *ast.FuncLit:
		// Analyzed as its own unit by runUnit.
		return taint{}
	}
	return taint{}
}

// evalBinary handles arithmetic width propagation, the multiplication wrap
// sink, and comparison sanitization.
func (en *taintEngine) evalBinary(ex *ast.BinaryExpr, env taintEnv) taint {
	lT := en.evalExpr(ex.X, env)
	rT := en.evalExpr(ex.Y, env)

	switch ex.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		// An ordered comparison is the sanctioned bounds check: every local
		// variable mentioned in either operand is trusted from here on. This
		// is sound for the guard idiom (the offending branch returns) and is
		// the rule's deliberate escape: compare before you use.
		en.sanitizeMentioned(ex.X, env)
		en.sanitizeMentioned(ex.Y, env)
		return taint{}
	case token.LAND, token.LOR, token.EQL, token.NEQ:
		return taint{}
	}
	return en.combineOp(ex.Op, ex.X, ex.Y, lT, rT, ex.OpPos, ex)
}

// combineOp propagates taint widths through one arithmetic operation; the
// same table serves binary expressions and compound assignments (x *= wire
// is the same wrap hazard as x = x*wire). resultExpr supplies the static
// result type for the wrap check (the whole expression for x*y, the LHS for
// x *= y).
func (en *taintEngine) combineOp(op token.Token, xExpr, yExpr ast.Expr, lT, rT taint, pos token.Pos, resultExpr ast.Expr) taint {
	switch op {
	case token.MUL:
		lBits := int(lT.width)
		if !lT.tainted() {
			lBits = en.constBits(xExpr)
		}
		rBits := int(rT.width)
		if !rT.tainted() {
			rBits = en.constBits(yExpr)
		}
		t := maxTaint(lT, rT)
		if t.tainted() {
			if typ, ok := en.pass.Pkg.Info.Types[resultExpr]; ok {
				bits := effectiveBits(typ.Type)
				if lBits+rBits > bits {
					en.sink(taintSink{kind: sinkMulWrap, pos: pos, taint: t, bits: bits, need: lBits + rBits})
				}
			}
			t.width = capWidth(lBits + rBits)
		}
		return t
	case token.ADD, token.SUB, token.OR, token.XOR:
		t := maxTaint(lT, rT)
		if t.tainted() {
			t.width = capWidth(int(max8(lT.width, rT.width)) + 1)
		}
		return t
	case token.AND, token.AND_NOT:
		// Masking with a constant bounds the result by the mask.
		t := maxTaint(lT, rT)
		if !t.tainted() {
			return taint{}
		}
		if cb := en.constBits(yExpr); cb > 0 && !rT.tainted() && op == token.AND {
			t.width = capWidth(cb)
		}
		if cb := en.constBits(xExpr); cb > 0 && !lT.tainted() && op == token.AND {
			t.width = capWidth(cb)
		}
		return t
	case token.SHL:
		t := maxTaint(lT, rT)
		if t.tainted() {
			t.width = 64
		}
		return t
	case token.SHR, token.QUO:
		// Shrinking operations keep the dividend's width (conservative).
		return lT
	case token.REM:
		// x % trusted is bounded by the modulus — a sanctioned sanitizer.
		if !rT.tainted() {
			return taint{}
		}
		return maxTaint(lT, rT)
	}
	return maxTaint(lT, rT)
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}

func maxTaint(a, b taint) taint {
	if b.width > a.width {
		return b
	}
	return a
}

// sanitizeMentioned untaints every tracked local mentioned anywhere in e.
func (en *taintEngine) sanitizeMentioned(e ast.Expr, env taintEnv) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := en.localVar(id); v != nil {
				delete(env, v)
			}
		}
		return true
	})
}

// evalCall handles conversions, builtins (make is a sink; min launders; len
// and cap are trusted), registered sources and sanitizers, and the
// conservative havoc for everything else.
func (en *taintEngine) evalCall(call *ast.CallExpr, env taintEnv) taint {
	info := en.pass.Pkg.Info

	// Type conversion: propagate the operand's taint clamped to the target
	// type's capacity.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		t := en.evalExpr(call.Args[0], env)
		if t.tainted() {
			if b := effectiveBits(tv.Type); int(t.width) > b {
				t.width = capWidth(b)
			}
		}
		return t
	}

	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			return en.evalBuiltin(id.Name, call, env)
		}
	}

	// Source?
	if w, origin := en.source(call); w > 0 {
		for _, a := range call.Args {
			en.evalExpr(a, env)
		}
		return taint{width: w, origin: origin}
	}

	// Registered sanitizer?
	if s, ok := en.sanitizers.lookup(en.calleeName(call)); ok {
		for i, a := range call.Args {
			en.evalExpr(a, env)
			for _, idx := range s.untaintArgs {
				if idx == i {
					en.sanitizeMentioned(a, env)
				}
			}
		}
		if s.untaintResult {
			return taint{}
		}
		return taint{}
	}

	// Unknown call: evaluate arguments (sinks inside them still fire), then
	// havoc — locals passed by address lose their facts, results are
	// untracked.
	for _, a := range call.Args {
		en.evalExpr(a, env)
		if un, ok := a.(*ast.UnaryExpr); ok && un.Op == token.AND {
			en.sanitizeMentioned(un.X, env)
		}
	}
	en.evalExpr(call.Fun, env)
	return taint{}
}

// evalBuiltin interprets the builtins the engine models.
func (en *taintEngine) evalBuiltin(name string, call *ast.CallExpr, env taintEnv) taint {
	switch name {
	case "make":
		// make(T, len[, cap]): args[0] is the type.
		for i := 1; i < len(call.Args); i++ {
			t := en.evalExpr(call.Args[i], env)
			if t.tainted() {
				kind := sinkMakeLen
				if i == 2 {
					kind = sinkMakeCap
				}
				en.sink(taintSink{kind: kind, pos: call.Args[i].Pos(), taint: t})
			}
		}
		return taint{}
	case "min":
		// min's result is bounded by its smallest operand: one trusted
		// argument launders the result.
		worst := taint{}
		allTainted := true
		for _, a := range call.Args {
			t := en.evalExpr(a, env)
			if !t.tainted() {
				allTainted = false
			}
			worst = maxTaint(worst, t)
		}
		if allTainted {
			return worst
		}
		return taint{}
	case "max":
		worst := taint{}
		for _, a := range call.Args {
			worst = maxTaint(worst, en.evalExpr(a, env))
		}
		return worst
	case "len", "cap":
		for _, a := range call.Args {
			en.evalExpr(a, env)
		}
		return taint{}
	case "append", "copy", "delete", "print", "println", "panic", "recover", "new", "clear":
		for _, a := range call.Args {
			en.evalExpr(a, env)
		}
		return taint{}
	}
	for _, a := range call.Args {
		en.evalExpr(a, env)
	}
	return taint{}
}

// calleeName renders the qualified name of a call target for the sanitizer
// registry: "pkgpath.Func" for package functions, "(pkgpath.Type).Method"
// for methods, "builtin.name" for builtins.
func (en *taintEngine) calleeName(call *ast.CallExpr) string {
	info := en.pass.Pkg.Info
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := info.ObjectOf(fun).(*types.Func); ok {
			if f.Pkg() != nil {
				return f.Pkg().Path() + "." + f.Name()
			}
			return f.Name()
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			recv := sel.Recv()
			return "(" + typeString(recv) + ")." + fun.Sel.Name
		}
		if f, ok := info.ObjectOf(fun.Sel).(*types.Func); ok && f.Pkg() != nil {
			return f.Pkg().Path() + "." + f.Name()
		}
	}
	return ""
}

// isByteSlice reports whether e's static type is []byte (or a named type
// whose underlying type is []byte).
func (en *taintEngine) isByteSlice(e ast.Expr) bool {
	tv, ok := en.pass.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	sl, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Byte)
}
