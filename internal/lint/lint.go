// Package lint is dcstream's project-invariant static analyzer. The go
// compiler cannot see the properties the paper's results rest on — that every
// experiment is seed-reproducible, that the center/transport/journal stack
// follows its lock discipline, and that the crash-safety write path never
// discards an error — so this package encodes them as mechanical rules over
// the type-checked AST, stdlib-only (go/ast, go/parser, go/types; the module
// stays dependency-free).
//
// The framework is deliberately small: a Rule is a name plus a function over
// a type-checked Pass; findings carry exact token positions; a finding is
// silenced by a same-line or preceding-line comment
//
//	//dcslint:ignore <rule>[,<rule>...] <reason>
//
// where the reason is mandatory — an undocumented suppression is itself a
// finding. cmd/dcslint runs every rule over the whole module and exits
// non-zero on any unsuppressed finding; the golden corpus under testdata/src
// pins each rule's behaviour analysistest-style (`// want "regexp"`).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by a rule.
type Finding struct {
	// Pos locates the offending token.
	Pos token.Position
	// Rule is the name of the rule that fired.
	Rule string
	// Message states the violated invariant.
	Message string
	// Suppressed is true when a //dcslint:ignore comment covers the finding;
	// SuppressReason is that comment's justification.
	Suppressed     bool
	SuppressReason string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Message)
}

// Rule is one named invariant check.
type Rule struct {
	// Name is the identifier used in diagnostics and ignore comments.
	Name string
	// Doc is a one-line statement of the invariant the rule encodes.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Rules returns the full registry, sorted by name. The slice is fresh on
// every call so callers may filter it freely.
func Rules() []Rule {
	rules := []Rule{
		seededrandRule,
		walltimeRule,
		lockdisciplineRule,
		atomicmixRule,
		errcritRule,
		wiretaintRule,
		maporderRule,
		gorolifecycleRule,
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name < rules[j].Name })
	return rules
}

// ruleKnown reports whether name is a registered rule.
func ruleKnown(name string) bool {
	for _, r := range Rules() {
		if r.Name == name {
			return true
		}
	}
	return false
}

// Pass is one rule's view of one package.
type Pass struct {
	// Pkg is the loaded, type-checked package under analysis.
	Pkg *Package
	// rule is the running rule's name, stamped on every report.
	rule     string
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// PathHasSegment reports whether the package's import path contains the
// given path segment — the scoping primitive rules use ("aligned",
// "journal", ...) so they apply identically to the real module and to the
// golden corpus's relative import paths.
func (p *Pass) PathHasSegment(segments ...string) bool {
	for _, seg := range strings.Split(p.Pkg.Path, "/") {
		for _, want := range segments {
			if seg == want {
				return true
			}
		}
	}
	return false
}

// suppression is one parsed //dcslint:ignore comment.
type suppression struct {
	rules  []string
	reason string
	used   bool
	pos    token.Position
}

func (s *suppression) covers(rule string) bool {
	for _, r := range s.rules {
		if r == rule {
			return true
		}
	}
	return false
}

var ignoreRe = regexp.MustCompile(`^//\s*dcslint:ignore\s+(\S+)(?:\s+(.*))?$`)

// collectSuppressions parses every //dcslint:ignore comment in the package.
// A suppression covers findings on its own line (trailing comment) and on
// the immediately following line (comment-above style). Malformed
// suppressions — no reason, or an unknown rule name — are reported as
// findings themselves so the escape hatch stays auditable.
func collectSuppressions(pkg *Package, findings *[]Finding) map[string][]*suppression {
	byFile := make(map[string][]*suppression)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				reason := strings.TrimSpace(m[2])
				if reason == "" {
					*findings = append(*findings, Finding{
						Pos:     pos,
						Rule:    "dcslint",
						Message: "suppression without a reason; write //dcslint:ignore <rule> <why it is safe>",
					})
					continue
				}
				s := &suppression{rules: strings.Split(m[1], ","), reason: reason, pos: pos}
				for _, r := range s.rules {
					if !ruleKnown(r) {
						*findings = append(*findings, Finding{
							Pos:     pos,
							Rule:    "dcslint",
							Message: fmt.Sprintf("suppression names unknown rule %q", r),
						})
					}
				}
				byFile[pos.Filename] = append(byFile[pos.Filename], s)
			}
		}
	}
	return byFile
}

// applySuppressions marks findings covered by an ignore comment and reports
// ignore comments that cover nothing (stale suppressions rot; they must be
// deleted when the code they excused is fixed).
func applySuppressions(byFile map[string][]*suppression, findings []Finding) []Finding {
	for i := range findings {
		f := &findings[i]
		if f.Rule == "dcslint" {
			continue // meta-findings about suppressions are not suppressible
		}
		for _, s := range byFile[f.Pos.Filename] {
			if !s.covers(f.Rule) {
				continue
			}
			if f.Pos.Line == s.pos.Line || f.Pos.Line == s.pos.Line+1 {
				f.Suppressed = true
				f.SuppressReason = s.reason
				s.used = true
			}
		}
	}
	for _, file := range sortedKeys(byFile) {
		for _, s := range byFile[file] {
			if !s.used {
				findings = append(findings, Finding{
					Pos:     s.pos,
					Rule:    "dcslint",
					Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line", strings.Join(s.rules, "/")),
				})
			}
		}
	}
	return findings
}

func sortedKeys(m map[string][]*suppression) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RunRules executes the given rules over one package and returns the
// findings — suppressions applied — sorted by position.
func RunRules(pkg *Package, rules []Rule) []Finding {
	var findings []Finding
	for _, r := range rules {
		pass := &Pass{Pkg: pkg, rule: r.Name, findings: &findings}
		r.Run(pass)
	}
	byFile := collectSuppressions(pkg, &findings)
	findings = applySuppressions(byFile, findings)
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Rule < findings[j].Rule
	})
	return findings
}

// Unsuppressed filters findings down to the ones that should fail a build.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// funcUnit is one lock-state analysis unit: a function declaration or
// function literal body, with the set of identifiers (receiver + parameters,
// including those of enclosing functions for a literal) whose guarded-field
// accesses are checked. Shared by lockdiscipline; defined here so the
// traversal helpers live next to the framework.
type funcUnit struct {
	name string // "" for function literals
	doc  string
	body *ast.BlockStmt
	// checked maps identifier names of receivers and parameters (own and
	// enclosing) to true; guarded-field accesses through other bases (locals,
	// globals) are exempt — a value still local to its constructor is not
	// shared yet.
	checked map[string]bool
}

// funcUnits flattens every function declaration and literal in the file into
// analysis units. Literal bodies are excluded from their enclosing unit (lock
// state does not flow into a goroutine or deferred closure) but inherit the
// enclosing receiver/parameter name set.
func funcUnits(file *ast.File) []funcUnit {
	var units []funcUnit
	var collect func(body *ast.BlockStmt, name, doc string, checked map[string]bool)
	collect = func(body *ast.BlockStmt, name, doc string, checked map[string]bool) {
		units = append(units, funcUnit{name: name, doc: doc, body: body, checked: checked})
		ast.Inspect(body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			inner := make(map[string]bool, len(checked))
			for k := range checked {
				inner[k] = true
			}
			addFieldNames(lit.Type.Params, inner)
			collect(lit.Body, "", "", inner)
			return false // the recursive call handles nested literals
		})
	}
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		checked := make(map[string]bool)
		if fd.Recv != nil {
			addFieldNames(fd.Recv, checked)
		}
		addFieldNames(fd.Type.Params, checked)
		doc := ""
		if fd.Doc != nil {
			doc = fd.Doc.Text()
		}
		collect(fd.Body, fd.Name.Name, doc, checked)
	}
	return units
}

func addFieldNames(fl *ast.FieldList, into map[string]bool) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			into[n.Name] = true
		}
	}
}

// inspectSkipFuncLits walks the statements of a unit body without descending
// into nested function literals (they are separate units).
func inspectSkipFuncLits(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}
