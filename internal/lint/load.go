package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one type-checked package of the module (non-test files only —
// dcslint's invariants are about library and command code; tests are free to
// use wall clocks and ad-hoc RNG seeds).
type Package struct {
	// Path is the import path ("dcstream/internal/center", or the
	// testdata-relative path in golden tests).
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every file in the load (shared across the whole load,
	// as the source importer requires).
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// stdImporter builds the fallback importer used for every import outside the
// module under analysis. "source" mode type-checks dependencies from source,
// which keeps dcslint working without compiled export data; cgo is disabled
// so packages like net resolve to their pure-Go variants.
func stdImporter(fset *token.FileSet) types.Importer {
	build.Default.CgoEnabled = false
	return importer.ForCompiler(fset, "source", nil)
}

// moduleImporter resolves module-internal imports from the packages already
// checked in dependency order and delegates everything else to the source
// importer.
type moduleImporter struct {
	modulePath string
	local      map[string]*types.Package
	std        types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m.local[path]; ok {
		return pkg, nil
	}
	if m.modulePath != "" && (path == m.modulePath || strings.HasPrefix(path, m.modulePath+"/")) {
		return nil, fmt.Errorf("lint: module package %s not yet checked (import cycle?)", path)
	}
	return m.std.Import(path)
}

// modulePathFromGoMod extracts the module path from a go.mod file.
func modulePathFromGoMod(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		rest, ok := strings.CutPrefix(line, "module")
		if !ok || rest == line {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			continue
		}
		if unq, err := strconv.Unquote(rest); err == nil {
			rest = unq
		}
		return rest, nil
	}
	return "", fmt.Errorf("lint: no module directive in %s", path)
}

// FindModuleRoot walks upward from dir to the directory holding go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// LoadModule parses and type-checks every non-test package under root (the
// directory containing go.mod), skipping testdata, vendor, and hidden
// directories. Packages are returned sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	modulePath, err := modulePathFromGoMod(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	type parsed struct {
		path, dir string
		files     []*ast.File
		imports   []string
	}
	byPath := make(map[string]*parsed, len(dirs))
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		importPath := modulePath
		if rel != "." {
			importPath = modulePath + "/" + filepath.ToSlash(rel)
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		p := &parsed{path: importPath, dir: dir, files: files}
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if (ip == modulePath || strings.HasPrefix(ip, modulePath+"/")) && !seen[ip] {
					seen[ip] = true
					p.imports = append(p.imports, ip)
				}
			}
		}
		byPath[importPath] = p
		order = append(order, importPath)
	}
	sort.Strings(order)

	// Topologically sort by module-internal imports so each package's
	// dependencies are checked before it.
	var topo []string
	state := make(map[string]int, len(order)) // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range byPath[path].imports {
			if _, ok := byPath[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		topo = append(topo, path)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}

	imp := &moduleImporter{
		modulePath: modulePath,
		local:      make(map[string]*types.Package, len(topo)),
		std:        stdImporter(fset),
	}
	pkgs := make([]*Package, 0, len(topo))
	for _, path := range topo {
		p := byPath[path]
		pkg, err := checkPackage(fset, path, p.files, imp)
		if err != nil {
			return nil, err
		}
		imp.local[path] = pkg.Types
		pkg.Dir = p.dir
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir parses and type-checks a single directory as the package
// importPath, resolving all imports through the source importer. It is the
// loader the golden-test runner uses: testdata packages import only the
// standard library.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	pkg, err := checkPackage(fset, importPath, files, stdImporter(fset))
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func checkPackage(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
