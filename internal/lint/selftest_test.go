package lint

import "testing"

// TestModuleIsClean runs every dcslint rule over the real dcstream module and
// asserts zero unsuppressed findings — the same bar `make lint` enforces, so
// a rule change that trips on the tree fails here first.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadModule returned no packages")
	}
	total := 0
	for _, pkg := range pkgs {
		findings := RunRules(pkg, Rules())
		for _, f := range Unsuppressed(findings) {
			t.Errorf("unsuppressed finding: %s", f)
		}
		total += len(findings)
	}
	t.Logf("checked %d packages, %d findings total (all suppressed)", len(pkgs), total)
}
