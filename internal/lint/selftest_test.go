package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleIsClean runs every dcslint rule over the real dcstream module and
// asserts zero unsuppressed findings — the same bar `make lint` enforces, so
// a rule change that trips on the tree fails here first.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadModule returned no packages")
	}
	total := 0
	for _, pkg := range pkgs {
		findings := RunRules(pkg, Rules())
		for _, f := range Unsuppressed(findings) {
			t.Errorf("unsuppressed finding: %s", f)
		}
		total += len(findings)
	}
	t.Logf("checked %d packages, %d findings total (all suppressed)", len(pkgs), total)
}

// dcsBinaries are the entry points shipped from cmd/. The selftest pins them
// by name so "the whole module is lint-clean" provably includes the binaries:
// a loader regression that silently dropped cmd/ would otherwise keep this
// suite green while `make lint` stopped seeing a sixth of the tree.
var dcsBinaries = []string{"dcsbench", "dcsd", "dcslint", "dcsnode", "dcsreplay", "dcstrace"}

// TestLoadModuleCoversWholeModule asserts LoadModule returns exactly the
// package set a directory walk of the module finds — every cmd/ binary by
// name, and no directory with non-test Go files missing. This is the
// machine-checked form of "dcslint lints everything it claims to".
func TestLoadModuleCoversWholeModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	loaded := make(map[string]bool, len(pkgs))
	for _, pkg := range pkgs {
		loaded[pkg.Path] = true
	}
	for _, bin := range dcsBinaries {
		if !loaded["dcstream/cmd/"+bin] {
			t.Errorf("LoadModule dropped cmd/%s; the binary is not being linted", bin)
		}
	}
	// Independent ground truth: every directory under the module with at
	// least one non-test .go file (minus the loader's documented exclusions)
	// must appear in the load.
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		want := "dcstream"
		if rel != "." {
			want = "dcstream/" + filepath.ToSlash(rel)
		}
		if !loaded[want] {
			t.Errorf("LoadModule dropped %s (%s has non-test Go files)", want, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("LoadModule covers all %d packages incl. %d cmd binaries", len(pkgs), len(dcsBinaries))
}

// incrementalStateFiles are the files holding the ingest-time analysis state
// added for the streaming/incremental path. Their correctness contract is
// determinism (incremental must reproduce batch bit-for-bit), so each must
// be (a) actually loaded by the linter and (b) inside the scope of the
// determinism rules — walltime for the accumulator packages, maporder for
// everything, lockdiscipline via the center's guarded-by annotations.
var incrementalStateFiles = map[string][]string{
	"dcstream/internal/aligned":   {"accumulator.go", "matrix.go"},
	"dcstream/internal/unaligned": {"tracker.go"},
	"dcstream/internal/center":    {"streaming.go"},
}

// shardCriticalFiles are the scatter/gather tier's write-path files. The
// coordinator's scatter sends and the cluster's report pushes are exactly the
// writes whose dropped errors turn routed digests into silently missing ones,
// so internal/shard must stay inside the errcrit scope and inside the lint
// load — this test fails on a scope-list edit or package rename that would
// drop it out.
var shardCriticalFiles = map[string][]string{
	"dcstream/internal/shard": {"coordinator.go", "cluster.go", "report.go"},
}

// TestErrcritCoversShardTier pins the shard package into the errcrit scope.
func TestErrcritCoversShardTier(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	if !segmentIn("shard", errcritPkgs) {
		t.Error("errcrit scope lost \"shard\"; dropped scatter/report-push write errors would go unlinted")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	remaining := map[string][]string{}
	for k, v := range shardCriticalFiles {
		remaining[k] = v
	}
	for _, pkg := range pkgs {
		want := remaining[pkg.Path]
		if want == nil {
			continue
		}
		have := map[string]bool{}
		for _, f := range pkg.Files {
			have[filepath.Base(pkg.Fset.File(f.Pos()).Name())] = true
		}
		for _, name := range want {
			if !have[name] {
				t.Errorf("%s: %s not in the lint load; the shard write path is not being linted", pkg.Path, name)
			}
		}
		delete(remaining, pkg.Path)
	}
	for path := range remaining {
		t.Errorf("package %s not loaded at all", path)
	}
}

// TestDeterminismRulesCoverIncrementalState pins the accumulator files into
// the dcslint scope: a rename, a package split, or a scope-list edit that
// silently dropped the incremental state out of the determinism rules would
// fail here, not in a later debugging session.
func TestDeterminismRulesCoverIncrementalState(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	for path := range incrementalStateFiles {
		seg := path[strings.LastIndex(path, "/")+1:]
		if !segmentIn(seg, maporderPkgs) {
			t.Errorf("maporder scope lost %q; incremental state in %s is no longer order-checked", seg, path)
		}
		if seg != "center" && !segmentIn(seg, deterministicPkgs) {
			t.Errorf("walltime scope lost %q; accumulators in %s may silently read the clock", seg, path)
		}
	}

	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		want := incrementalStateFiles[pkg.Path]
		if want == nil {
			continue
		}
		have := map[string]bool{}
		for _, f := range pkg.Files {
			have[filepath.Base(pkg.Fset.File(f.Pos()).Name())] = true
		}
		for _, name := range want {
			if !have[name] {
				t.Errorf("%s: %s not in the lint load; the incremental state is not being linted", pkg.Path, name)
			}
		}
		delete(incrementalStateFiles, pkg.Path)
	}
	for path := range incrementalStateFiles {
		t.Errorf("package %s not loaded at all", path)
	}
}

func segmentIn(seg string, list []string) bool {
	for _, s := range list {
		if s == seg {
			return true
		}
	}
	return false
}
