package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// bruteBinomCDF computes P[X<=k] by direct pmf summation for small n.
func bruteBinomCDF(k, n int, p float64) float64 {
	s := 0.0
	for i := 0; i <= k && i <= n; i++ {
		s += math.Exp(BinomLogPMF(i, n, p))
	}
	return s
}

func TestLogChooseSmall(t *testing.T) {
	cases := []struct {
		n, k float64
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := math.Exp(LogChoose(c.n, c.k))
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("C(%v,%v)=%v want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, 6), -1) || !math.IsInf(LogChoose(5, -1), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func TestBinomCDFAgainstBrute(t *testing.T) {
	for _, n := range []int{1, 2, 10, 37, 100} {
		for _, p := range []float64{0.01, 0.3, 0.5, 0.77, 0.99} {
			for k := -1; k <= n+1; k++ {
				got := BinomCDF(k, n, p)
				var want float64
				switch {
				case k < 0:
					want = 0
				case k >= n:
					want = 1
				default:
					want = bruteBinomCDF(k, n, p)
				}
				if math.Abs(got-want) > 1e-10 {
					t.Fatalf("BinomCDF(%d,%d,%v)=%v want %v", k, n, p, got, want)
				}
				gotS := BinomSurvival(k, n, p)
				if math.Abs(gotS-(1-want)) > 1e-10 {
					t.Fatalf("BinomSurvival(%d,%d,%v)=%v want %v", k, n, p, gotS, 1-want)
				}
			}
		}
	}
}

func TestBinomTinyTailsNoCancellation(t *testing.T) {
	// P[X > 900] for Binomial(1000, 0.5): deep tail, should be ~6.7e-153
	// (checked against log-space summation), definitely not 0 and not junk.
	s := BinomSurvival(900, 1000, 0.5)
	if s <= 0 || s > 1e-140 {
		t.Fatalf("deep upper tail = %g, expected tiny positive", s)
	}
	// Symmetric: deep lower tail via CDF should match by p=0.5 symmetry:
	// P[X <= 99] = P[X > 900].
	c := BinomCDF(99, 1000, 0.5)
	if math.Abs(c-s)/s > 1e-6 {
		t.Fatalf("symmetry violated: CDF(99)=%g Survival(900)=%g", c, s)
	}
}

func TestBinomLargeNPaperScale(t *testing.T) {
	// The Fig 12 computation: probability a noise column of 1000 rows is
	// heavier than 550 is 1-binocdf(550,1000,0.5) ≈ 0.00073 (paper §V-A.2).
	got := BinomSurvival(550, 1000, 0.5)
	if math.Abs(got-0.00068) > 3e-4 { // paper rounds; exact value ≈ 6.8e-4
		t.Fatalf("Survival(550,1000,0.5)=%v, expected ≈7e-4", got)
	}
	// Paper quotes 1 - binocdf(7, 30, 0.55) as 0.988; the exact value is
	// ≈0.99958 (the paper's rounding is loose). Assert the exact value and
	// that it is at least the paper's claimed detection probability.
	got = BinomSurvival(7, 30, 0.55)
	if math.Abs(got-0.99958) > 5e-4 || got < 0.988 {
		t.Fatalf("Survival(7,30,0.55)=%v want ≈0.9996", got)
	}
}

func TestBinomUpperQuantile(t *testing.T) {
	for _, tc := range []struct {
		n    int
		p    float64
		tail float64
	}{
		{1000, 0.5, 1e-3}, {1000, 0.5, 1e-8}, {100, 0.1, 0.05}, {10, 0.9, 0.5},
	} {
		k := BinomUpperQuantile(tc.n, tc.p, tc.tail)
		if BinomSurvival(k, tc.n, tc.p) > tc.tail {
			t.Fatalf("quantile %d does not satisfy tail %v", k, tc.tail)
		}
		if k > 0 && BinomSurvival(k-1, tc.n, tc.p) <= tc.tail {
			t.Fatalf("quantile %d not minimal for tail %v", k, tc.tail)
		}
	}
}

func TestHyperPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct{ N, K, n int }{
		{10, 3, 4}, {1024, 512, 512}, {50, 50, 10}, {7, 0, 3},
	} {
		s := 0.0
		for k := 0; k <= tc.n; k++ {
			s += math.Exp(HyperLogPMF(k, tc.N, tc.K, tc.n))
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("hypergeom(N=%d,K=%d,n=%d) sums to %v", tc.N, tc.K, tc.n, s)
		}
	}
}

func TestHyperSurvivalConsistent(t *testing.T) {
	// Survival must equal direct upper-tail summation for a mid-size case.
	N, K, n := 200, 90, 70
	for x := -1; x <= 71; x++ {
		want := 0.0
		for k := x + 1; k <= n; k++ {
			want += math.Exp(HyperLogPMF(k, N, K, n))
		}
		if want > 1 {
			want = 1
		}
		got := HyperSurvival(x, N, K, n)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("HyperSurvival(%d)=%v want %v", x, got, want)
		}
	}
}

func TestHyperThreshold(t *testing.T) {
	// Paper setting: N=1024, rows about half full, p* around 1e-7.
	N, K, n := 1024, 512, 512
	pstar := 1e-7
	lambda := HyperThreshold(N, K, n, pstar)
	if HyperSurvival(lambda, N, K, n) > pstar {
		t.Fatalf("threshold %d exceeds pstar", lambda)
	}
	if HyperSurvival(lambda-1, N, K, n) <= pstar {
		t.Fatalf("threshold %d not minimal", lambda)
	}
	// Mean overlap is 256; a 1e-7 threshold must sit a few sigma above it.
	if lambda <= 256 || lambda > 400 {
		t.Fatalf("implausible λ=%d for mean 256", lambda)
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRand(42)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 10}, {1000, 5}, {100, 90}, {1, 1}} {
		s := SampleDistinct(r, tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("len=%d want %d", len(s), tc.k)
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("bad sample %v for n=%d k=%d", s, tc.n, tc.k)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinctPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	SampleDistinct(NewRand(1), 3, 4)
}

func TestSampleDistinctUniform(t *testing.T) {
	// Each element of [0,20) should appear in a 5-subset with prob 1/4.
	r := NewRand(99)
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, v := range SampleDistinct(r, 20, 5) {
			counts[v]++
		}
	}
	for v, c := range counts {
		f := float64(c) / trials
		if math.Abs(f-0.25) > 0.02 {
			t.Fatalf("element %d frequency %v, want ≈0.25", v, f)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	r := NewRand(7)
	for _, mean := range []float64{0, 0.5, 4, 25, 100, 5000} {
		const n = 4000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := float64(Poisson(r, mean))
			sum += v
			sum2 += v * v
		}
		m := sum / n
		va := sum2/n - m*m
		tol := 5 * math.Sqrt(mean/n+1e-9) * 3
		if math.Abs(m-mean) > tol+0.05 {
			t.Fatalf("Poisson(%v) sample mean %v", mean, m)
		}
		if mean > 1 && math.Abs(va-mean)/mean > 0.25 {
			t.Fatalf("Poisson(%v) sample variance %v", mean, va)
		}
	}
}

func TestBinomialSamplerMoments(t *testing.T) {
	r := NewRand(11)
	for _, tc := range []struct {
		n int64
		p float64
	}{
		{40, 0.3}, {1000000, 1e-5}, {100000, 0.4}, {10, 0}, {10, 1}, {523, 0.9},
	} {
		const trials = 3000
		var sum float64
		for i := 0; i < trials; i++ {
			v := Binomial(r, tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial out of range: %d", v)
			}
			sum += float64(v)
		}
		mean := float64(tc.n) * tc.p
		sd := math.Sqrt(mean * (1 - tc.p))
		if math.Abs(sum/trials-mean) > 5*sd/math.Sqrt(trials)+0.02 {
			t.Fatalf("Binomial(%d,%v) sample mean %v want %v", tc.n, tc.p, sum/trials, mean)
		}
	}
}

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(124)
	same := 0
	a = NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds suspiciously correlated: %d/100 equal", same)
	}
}

// Property: CDF is monotone in k and bounded in [0,1].
func TestQuickBinomCDFMonotone(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw%200) + 1
		p := float64(pRaw) / 65536.0
		prev := 0.0
		for k := 0; k <= n; k++ {
			c := BinomCDF(k, n, p)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hypergeometric survival is monotone decreasing in x.
func TestQuickHyperSurvivalMonotone(t *testing.T) {
	f := func(nRaw, kRaw, dRaw uint8) bool {
		N := int(nRaw%100) + 2
		K := int(kRaw) % (N + 1)
		n := int(dRaw) % (N + 1)
		prev := 1.0
		for x := -1; x <= n; x++ {
			s := HyperSurvival(x, N, K, n)
			if s > prev+1e-12 || s < 0 || s > 1 {
				return false
			}
			prev = s
		}
		return prev == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp(math.Log(3), math.Log(4))
	if math.Abs(math.Exp(got)-7) > 1e-12 {
		t.Fatalf("LogSumExp log3,log4 = %v", math.Exp(got))
	}
	if LogSumExp(math.Inf(-1), 2.5) != 2.5 || LogSumExp(2.5, math.Inf(-1)) != 2.5 {
		t.Fatal("LogSumExp with -Inf operand")
	}
}

func TestBinomLogSurvivalMatchesLinear(t *testing.T) {
	// Where the linear-space survival is representable, the log version
	// must agree to high relative precision.
	for _, tc := range []struct {
		k, n int
		p    float64
	}{
		{5, 20, 0.3}, {550, 1000, 0.5}, {0, 10, 0.01}, {900, 1000, 0.5},
	} {
		want := math.Log(BinomSurvival(tc.k, tc.n, tc.p))
		got := BinomLogSurvival(tc.k, tc.n, tc.p)
		if math.Abs(got-want) > 1e-9*math.Abs(want)+1e-12 {
			t.Fatalf("BinomLogSurvival(%d,%d,%v)=%v want %v", tc.k, tc.n, tc.p, got, want)
		}
	}
}

func TestBinomLogSurvivalDeepTail(t *testing.T) {
	// P[X > 300] for Binomial(4465, 1e-5): mean 0.045, so the tail is
	// fantastically small — far below float64's 1e-308 — yet must remain
	// finite and monotone in log space (the Table II regime).
	prev := 0.0
	for _, k := range []int{0, 10, 50, 100, 300} {
		ls := BinomLogSurvival(k, 4465, 1e-5)
		if math.IsInf(ls, -1) || ls > 0 {
			t.Fatalf("k=%d: log survival %v", k, ls)
		}
		if k > 0 && ls >= prev {
			t.Fatalf("log survival not decreasing at k=%d: %v after %v", k, ls, prev)
		}
		prev = ls
	}
	if ls := BinomLogSurvival(300, 4465, 1e-5); ls > -1000 {
		t.Fatalf("deep tail only %v, expected far below -1000", ls)
	}
}

func TestBinomLogSurvivalEdges(t *testing.T) {
	if BinomLogSurvival(-1, 10, 0.5) != 0 {
		t.Fatal("k<0 should give log(1)=0")
	}
	if !math.IsInf(BinomLogSurvival(10, 10, 0.5), -1) {
		t.Fatal("k>=n should give -Inf")
	}
	if !math.IsInf(BinomLogSurvival(5, 10, 0), -1) {
		t.Fatal("p=0 should give -Inf")
	}
	if BinomLogSurvival(5, 10, 1) != 0 {
		t.Fatal("p=1 should give 0")
	}
}
