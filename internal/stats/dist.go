package stats

import "math"

// Thin aliases so rng.go reads cleanly without importing math twice.
func exp(x float64) float64  { return math.Exp(x) }
func sqrt(x float64) float64 { return math.Sqrt(x) }

// logFactSize bounds the precomputed log-factorial table: large enough for
// every digest-geometry argument (array rows are hundreds of bits, subsets
// thousands), small enough to stay negligible resident memory (512 KiB).
const logFactSize = 1 << 16

// logFact[i] = Lgamma(i+1) = log i!. The hypergeometric λ-threshold search
// evaluates LogChoose thousands of times per fresh analysis center before the
// per-center memo warms, and profiled as almost entirely Lgamma time; the
// table turns those calls into array lookups. Populated at init with the same
// math.Lgamma the fallback uses, so a table hit is bit-identical to a miss —
// thresholds and verdicts do not move.
var logFact [logFactSize]float64

func init() {
	for i := range logFact {
		logFact[i], _ = math.Lgamma(float64(i) + 1)
	}
}

// logFactorial returns Lgamma(x+1), from the table when x is a small
// non-negative integer (every caller inside the digest pipeline) and from
// math.Lgamma otherwise.
func logFactorial(x float64) float64 {
	if i := int(x); x == float64(i) && i >= 0 && i < logFactSize {
		return logFact[i]
	}
	v, _ := math.Lgamma(x + 1)
	return v
}

// LogChoose returns log C(n, k). It returns -Inf for k < 0 or k > n, and 0
// for the empty products C(n,0) and C(n,n). n may be astronomically large
// (the paper uses C(4_000_000, b)); everything stays in log space.
func LogChoose(n, k float64) float64 {
	if k < 0 || k > n || n < 0 {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return logFactorial(n) - logFactorial(k) - logFactorial(n-k)
}

// BinomLogPMF returns log P[X = k] for X ~ Binomial(n, p).
func BinomLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	return LogChoose(float64(n), float64(k)) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomCDF returns P[X <= k] for X ~ Binomial(n, p) — the paper's
// binocdf(k, n, p). The sum runs over the smaller tail to stay O(min(k, n-k))
// and avoid cancellation when the result is extreme.
func BinomCDF(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return 1
	case p <= 0:
		return 1
	case p >= 1:
		return 0
	}
	mean := float64(n) * p
	if float64(k) >= mean {
		// Upper tail P[X > k] is the small side; sum it and subtract.
		return 1 - binomUpperTail(k, n, p)
	}
	return binomLowerTail(k, n, p)
}

// BinomSurvival returns P[X > k] for X ~ Binomial(n, p).
func BinomSurvival(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 1
	case k >= n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	mean := float64(n) * p
	if float64(k) >= mean {
		return binomUpperTail(k, n, p)
	}
	return 1 - binomLowerTail(k, n, p)
}

// binomLowerTail sums P[X <= k] directly, using the pmf recurrence
// pmf(i+1)/pmf(i) = (n-i)/(i+1) * p/(1-p). Terms are accumulated in linear
// space scaled by the largest term to keep precision when the tail is tiny.
func binomLowerTail(k, n int, p float64) float64 {
	lp := BinomLogPMF(k, n, p) // largest term in this sum (k below the mean)
	odds := p / (1 - p)
	// Walk downward from k; term ratios pmf(i-1)/pmf(i) = (i)/(n-i+1) / odds.
	sum, term := 1.0, 1.0
	for i := k; i > 0; i-- {
		term *= float64(i) / (float64(n-i+1) * odds)
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	v := math.Exp(lp) * sum
	if v > 1 {
		v = 1
	}
	return v
}

// binomUpperTail sums P[X > k] for k at or above the mean.
func binomUpperTail(k, n int, p float64) float64 {
	lp := BinomLogPMF(k+1, n, p)
	if math.IsInf(lp, -1) {
		return 0
	}
	odds := p / (1 - p)
	sum, term := 1.0, 1.0
	for i := k + 1; i < n; i++ {
		term *= float64(n-i) / float64(i+1) * odds
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	v := math.Exp(lp) * sum
	if v > 1 {
		v = 1
	}
	return v
}

// BinomLogSurvival returns log P[X > k] for X ~ Binomial(n, p), staying in
// log space so tails far beyond float64's smallest positive value (needed by
// the unaligned type-I error computations, where C(n,m) factors of e^700
// multiply tails of e^-800) remain representable.
func BinomLogSurvival(k, n int, p float64) float64 {
	switch {
	case k < 0:
		return 0
	case k >= n:
		return math.Inf(-1)
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return 0
	}
	mean := float64(n) * p
	if float64(k) < mean {
		return math.Log(1 - binomLowerTail(k, n, p))
	}
	lp := BinomLogPMF(k+1, n, p)
	if math.IsInf(lp, -1) {
		return math.Inf(-1)
	}
	odds := p / (1 - p)
	sum, term := 1.0, 1.0
	for i := k + 1; i < n; i++ {
		term *= float64(n-i) / float64(i+1) * odds
		sum += term
		if term < 1e-18*sum {
			break
		}
	}
	return lp + math.Log(sum)
}

// BinomUpperQuantile returns the smallest k such that P[X > k] <= tail for
// X ~ Binomial(n, p). Used to set "screening by weight" thresholds: a column
// weight above the returned k is rarer than tail under the null.
func BinomUpperQuantile(n int, p, tail float64) int {
	lo, hi := -1, n // Survival(-1)=1 > tail (for tail<1); Survival(n)=0 <= tail
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if BinomSurvival(mid, n, p) <= tail {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// HyperLogPMF returns log P[X = k] where X counts successes in n draws
// without replacement from a population of N containing K successes —
// the paper's overlap distribution between two rows with i and j ones:
// P[X = k] = C(i,k) C(N-i, j-k) / C(N, j).
func HyperLogPMF(k, N, K, n int) float64 {
	if k < 0 || k > K || k > n || n-k > N-K {
		return math.Inf(-1)
	}
	return LogChoose(float64(K), float64(k)) +
		LogChoose(float64(N-K), float64(n-k)) -
		LogChoose(float64(N), float64(n))
}

// HyperSurvival returns P[X > x] for the hypergeometric above. The sum runs
// over whichever tail is shorter relative to the mean, so extreme
// probabilities (1e-8 and below, as the λ-table computation needs) come out
// without cancellation.
func HyperSurvival(x, N, K, n int) float64 {
	kmax := K
	if n < kmax {
		kmax = n
	}
	kmin := 0
	if n-(N-K) > kmin {
		kmin = n - (N - K)
	}
	if x >= kmax {
		return 0
	}
	if x < kmin {
		return 1
	}
	mean := float64(n) * float64(K) / float64(N)
	if float64(x) >= mean {
		// Sum the (small) upper tail directly.
		s := 0.0
		for k := x + 1; k <= kmax; k++ {
			s += math.Exp(HyperLogPMF(k, N, K, n))
		}
		if s > 1 {
			s = 1
		}
		return s
	}
	// Lower tail is the small side: P[X > x] = 1 - P[X <= x].
	s := 0.0
	for k := kmin; k <= x; k++ {
		s += math.Exp(HyperLogPMF(k, N, K, n))
	}
	if s > 1 {
		s = 1
	}
	return 1 - s
}

// HyperThreshold returns the smallest λ such that P[X > λ] <= pstar, i.e.
// the per-row-pair overlap threshold the unaligned analysis uses to induce
// graph edges with a uniform background probability.
func HyperThreshold(N, K, n int, pstar float64) int {
	kmax := K
	if n < kmax {
		kmax = n
	}
	lo := -1 // Survival(kmin-1) = 1
	hi := kmax
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if HyperSurvival(mid, N, K, n) <= pstar {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// LogSumExp returns log(exp(a) + exp(b)) without overflow.
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}
