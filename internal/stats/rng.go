// Package stats provides the probability machinery that the DCS paper's
// threshold computations and Monte-Carlo evaluations rest on: a fast
// deterministic random source, binomial and hypergeometric distribution
// functions evaluated in log space (the tails involved are as small as
// 1e-10), tail-quantile searches, and samplers (Bernoulli matrices, distinct
// subsets, Poisson / binomial counts, Zipf).
//
// Everything here is deterministic given a seed, so every experiment in the
// repository is exactly reproducible.
package stats

import "math/rand"

// splitmix64 is a tiny, well-mixed PRNG (Vigna's SplitMix64) implementing
// math/rand.Source64. It is the seed-expander used throughout the project;
// the sequence quality is more than sufficient for Monte-Carlo work and it
// is allocation-free and trivially reproducible.
type splitmix64 struct{ state uint64 }

func (s *splitmix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmix64) Seed(seed int64) { s.state = uint64(seed) }

// NewRand returns a deterministic *rand.Rand seeded with the given value.
// Distinct seeds yield independent-looking streams.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(&splitmix64{state: seed})
}

// SubSeed derives an independent stream seed from a base seed and a stream
// index: it is exactly the stream-th output of the SplitMix64 sequence
// started at seed, computed in O(1) via the generator's additive state.
// Nearby (seed, stream) pairs yield well-separated values, so experiment
// drivers can carve one user-facing seed into per-cell and per-trial streams
// whose order of consumption no longer matters.
func SubSeed(seed, stream uint64) uint64 {
	s := splitmix64{state: seed + stream*0x9e3779b97f4a7c15}
	return s.Uint64()
}

// SampleDistinct returns k distinct integers drawn uniformly from [0, n),
// in no particular order. It panics if k > n or either is negative.
// For k much smaller than n it uses rejection against a set; otherwise a
// partial Fisher-Yates shuffle.
func SampleDistinct(r *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: SampleDistinct requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	// Rejection sampling is expected O(k) when the sample is sparse.
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}

// Poisson draws a Poisson(mean) variate. Small means use Knuth's product
// method; large means use a normal approximation, which is accurate to well
// within Monte-Carlo noise for the edge-count sampling this project does.
func Poisson(r *rand.Rand, mean float64) int {
	if mean < 0 {
		panic("stats: negative Poisson mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := exp(-mean)
		k, p := 0, 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := mean + sqrt(mean)*r.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Binomial draws a Binomial(n, p) variate. Exact inversion for small n·p and
// small n; Poisson or normal approximations otherwise (again: Monte-Carlo
// grade, documented in DESIGN.md).
func Binomial(r *rand.Rand, n int64, p float64) int64 {
	switch {
	case p <= 0 || n <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		return n - Binomial(r, n, 1-p)
	}
	mean := float64(n) * p
	switch {
	case n <= 64:
		var c int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				c++
			}
		}
		return c
	case mean < 30:
		// Poisson limit: n large, p small.
		v := int64(Poisson(r, mean))
		if v > n {
			v = n
		}
		return v
	default:
		sd := sqrt(mean * (1 - p))
		v := mean + sd*r.NormFloat64()
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int64(v + 0.5)
	}
}
