// Package rabin implements Rabin fingerprinting by random polynomials over
// GF(2) [Rabin 1981], the substring-fingerprint scheme used by the
// single-vantage systems the paper relates to: EarlyBird's content sifting
// [Singh et al.] and protocol-independent redundancy elimination
// [Spring & Wetherall]. The baseline package builds its content-prevalence
// detector on it, giving the repository a faithful comparison point.
//
// The fingerprint of bytes b₁…b_w is Σ bᵢ·x^{8(w-i)} mod P over GF(2),
// with P an irreducible degree-63 polynomial. A Roller fingerprints every
// w-byte substring of a stream in O(1) per byte via the rolling identity
//
//	F' = F·x⁸ + c − b_old·x^{8w}   (mod P, − is XOR over GF(2)).
package rabin

import "fmt"

// Poly is the degree-63 irreducible polynomial (implicit x^63 leading term
// folded into the reduction); the value is the LBFS-lineage constant.
const Poly uint64 = 0xbfe6b8a5bf378d83

// mod2Step returns (fp·x⁸ + b) mod P, bit by bit.
func mod2Step(fp uint64, b byte) uint64 {
	for i := 7; i >= 0; i-- {
		bit := fp >> 63
		fp = fp<<1 | uint64((b>>uint(i))&1)
		if bit != 0 {
			fp ^= Poly
		}
	}
	return fp
}

// topTable[t] = t·x^64 mod P: the reduction applied when byte t shifts out
// of the 64-bit accumulator during a table-driven step.
var topTable = func() [256]uint64 {
	var tab [256]uint64
	for b := 0; b < 256; b++ {
		fp := mod2Step(0, byte(b)) // b·x⁰ (degree ≤ 7, no reduction yet)
		for i := 0; i < 8; i++ {
			fp = mod2Step(fp, 0) // ×x⁸ each time → b·x^64
		}
		tab[b] = fp
	}
	return tab
}()

// step returns (fp·x⁸ + b) mod P via one table lookup.
func step(fp uint64, b byte) uint64 {
	top := byte(fp >> 56)
	return (fp<<8 | uint64(b)) ^ topTable[top]
}

// Fingerprint returns the fingerprint of data in one pass.
func Fingerprint(data []byte) uint64 {
	fp := uint64(0)
	for _, b := range data {
		fp = step(fp, b)
	}
	return fp
}

// Table precomputes the drop table for one window size.
type Table struct {
	window int
	drop   [256]uint64 // drop[b] = b·x^{8w} mod P
}

// NewTable builds the tables for a w-byte window; w must be positive.
func NewTable(w int) (*Table, error) {
	if w <= 0 {
		return nil, fmt.Errorf("rabin: window must be positive, got %d", w)
	}
	t := &Table{window: w}
	for b := 0; b < 256; b++ {
		fp := mod2Step(0, byte(b)) // b
		for i := 0; i < w; i++ {
			fp = step(fp, 0) // ×x⁸ w times → b·x^{8w}
		}
		t.drop[b] = fp
	}
	return t, nil
}

// Window returns the window size.
func (t *Table) Window() int { return t.window }

// Roller computes fingerprints of every window-sized substring of a stream.
// Not safe for concurrent use.
type Roller struct {
	t   *Table
	buf []byte
	pos int
	n   int
	fp  uint64
}

// NewRoller returns a roller over t's window.
func (t *Table) NewRoller() *Roller {
	return &Roller{t: t, buf: make([]byte, t.window)}
}

// Roll feeds one byte. ok becomes true once a full window has been seen;
// fp is then the fingerprint of the most recent window bytes.
func (r *Roller) Roll(b byte) (fp uint64, ok bool) {
	old := r.buf[r.pos]
	r.buf[r.pos] = b
	r.pos++
	if r.pos == len(r.buf) {
		r.pos = 0
	}
	r.fp = step(r.fp, b)
	if r.n >= len(r.buf) {
		r.fp ^= r.t.drop[old]
	} else {
		r.n++
	}
	return r.fp, r.n >= len(r.buf)
}

// Reset clears the roller for a new stream.
func (r *Roller) Reset() {
	for i := range r.buf {
		r.buf[i] = 0
	}
	r.pos, r.n, r.fp = 0, 0, 0
}
