package rabin

import (
	"testing"
	"testing/quick"

	"dcstream/internal/stats"
)

func TestFingerprintDeterministicAndDiscriminating(t *testing.T) {
	a := Fingerprint([]byte("the quick brown fox"))
	if a != Fingerprint([]byte("the quick brown fox")) {
		t.Fatal("fingerprint not deterministic")
	}
	if a == Fingerprint([]byte("the quick brown fix")) {
		t.Fatal("one-byte change collided (astronomically unlikely)")
	}
	if Fingerprint(nil) != 0 {
		t.Fatal("empty fingerprint should be 0")
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0); err == nil {
		t.Fatal("window 0 accepted")
	}
	if _, err := NewTable(-3); err == nil {
		t.Fatal("negative window accepted")
	}
	tab, err := NewTable(16)
	if err != nil || tab.Window() != 16 {
		t.Fatalf("NewTable(16): %v", err)
	}
}

// TestRollingMatchesDirect is the defining property: after feeding
// b_1..b_t (t >= w), the roller's fingerprint equals the direct fingerprint
// of the last w bytes.
func TestRollingMatchesDirect(t *testing.T) {
	for _, w := range []int{1, 2, 8, 31, 64} {
		tab, err := NewTable(w)
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRand(uint64(w))
		data := make([]byte, 4*w+7)
		rng.Read(data)
		r := tab.NewRoller()
		for i, b := range data {
			fp, ok := r.Roll(b)
			if (i >= w-1) != ok {
				t.Fatalf("w=%d pos=%d: ok=%v", w, i, ok)
			}
			if ok {
				want := Fingerprint(data[i+1-w : i+1])
				if fp != want {
					t.Fatalf("w=%d pos=%d: rolled %x want %x", w, i, fp, want)
				}
			}
		}
	}
}

func TestQuickRollingMatchesDirect(t *testing.T) {
	tab, _ := NewTable(8)
	f := func(data []byte) bool {
		if len(data) < 8 {
			return true
		}
		r := tab.NewRoller()
		var last uint64
		for _, b := range data {
			last, _ = r.Roll(b)
		}
		return last == Fingerprint(data[len(data)-8:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRollerReset(t *testing.T) {
	tab, _ := NewTable(4)
	r := tab.NewRoller()
	for _, b := range []byte("abcdef") {
		r.Roll(b)
	}
	r.Reset()
	var fps []uint64
	for _, b := range []byte("wxyz") {
		fp, ok := r.Roll(b)
		if ok {
			fps = append(fps, fp)
		}
	}
	if len(fps) != 1 || fps[0] != Fingerprint([]byte("wxyz")) {
		t.Fatalf("after reset: %x", fps)
	}
}

// TestSharedSubstringDetected: two streams sharing a w-byte substring at
// different positions emit one identical fingerprint — the position
// independence that makes Rabin sifting robust to the unaligned case at a
// single vantage point.
func TestSharedSubstringDetected(t *testing.T) {
	const w = 16
	tab, _ := NewTable(w)
	rng := stats.NewRand(7)
	shared := make([]byte, w)
	rng.Read(shared)
	mk := func(prefixLen int) map[uint64]bool {
		prefix := make([]byte, prefixLen)
		rng.Read(prefix)
		stream := append(append([]byte(nil), prefix...), shared...)
		r := tab.NewRoller()
		set := map[uint64]bool{}
		for _, b := range stream {
			if fp, ok := r.Roll(b); ok {
				set[fp] = true
			}
		}
		return set
	}
	a, b := mk(13), mk(37)
	common := 0
	for fp := range a {
		if b[fp] {
			common++
		}
	}
	if common < 1 {
		t.Fatal("shared substring not detected across different offsets")
	}
}

func TestUniformityOfFingerprints(t *testing.T) {
	// Low bits of fingerprints of random 16-byte strings should be near-uniform
	// across 64 bins (chi-square, same critical region as hashing tests).
	rng := stats.NewRand(9)
	const bins = 64
	counts := make([]int, bins)
	buf := make([]byte, 16)
	const n = 64000
	for i := 0; i < n; i++ {
		rng.Read(buf)
		counts[Fingerprint(buf)%bins]++
	}
	expected := float64(n) / bins
	chi := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi += d * d / expected
	}
	if chi > 110 {
		t.Fatalf("chi-square %.1f: fingerprints biased", chi)
	}
}

func BenchmarkRoll(b *testing.B) {
	tab, _ := NewTable(16)
	r := tab.NewRoller()
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		r.Roll(byte(i))
	}
}
