// Package packet models the slice of the network stack the DCS algorithms
// care about: application-layer payloads carried in fixed-size segments,
// grouped into flows. Headers are abstracted to a 64-bit flow label — the
// collection modules only ever hash the label and read payload bytes, so
// nothing more is needed to reproduce the paper's behaviour.
package packet

import "fmt"

// FlowLabel identifies a flow (the 5-tuple in a real deployment). The
// unaligned collector hashes it to split traffic into groups so that all
// packets of one flow land in the same group of arrays.
type FlowLabel uint64

// Tuple packs a synthetic 5-tuple into a FlowLabel. The packing is
// injective over the field widths, so distinct tuples are distinct labels.
func Tuple(srcIP, dstIP uint16, srcPort, dstPort uint16) FlowLabel {
	return FlowLabel(uint64(srcIP)<<48 | uint64(dstIP)<<32 |
		uint64(srcPort)<<16 | uint64(dstPort))
}

// Packet is one application-layer segment observed on a link. Payload holds
// the application data after network/transport headers are stripped (the
// paper's line 5, "pkt.content").
type Packet struct {
	Flow    FlowLabel
	Payload []byte
}

// Common segment sizes from the Internet packet-size study the paper cites:
// 576-byte MTU (536-byte MSS payload) and 1500-byte MTU.
const (
	SegmentSize536  = 536
	SegmentSize1460 = 1460
)

// Packetize splits data into packets of segSize payload bytes each; the
// final packet may be shorter. All packets carry the given flow label.
// It panics on non-positive segSize; empty data yields no packets.
func Packetize(flow FlowLabel, data []byte, segSize int) []Packet {
	if segSize <= 0 {
		panic(fmt.Sprintf("packet: invalid segment size %d", segSize))
	}
	n := (len(data) + segSize - 1) / segSize
	pkts := make([]Packet, 0, n)
	for off := 0; off < len(data); off += segSize {
		end := off + segSize
		if end > len(data) {
			end = len(data)
		}
		pkts = append(pkts, Packet{Flow: flow, Payload: data[off:end]})
	}
	return pkts
}

// Instance materializes one transmission instance of a piece of content: a
// prefix of prefixLen arbitrary bytes (the variable application-layer header
// of the unaligned case — SMTP headers, per-victim fields, …) followed by
// the content itself, packetized at segSize. prefix supplies the prefix
// bytes and must have length >= prefixLen.
//
// With prefixLen == 0 this is the aligned case: every instance of the same
// content packetizes identically.
func Instance(flow FlowLabel, content, prefix []byte, prefixLen, segSize int) []Packet {
	if prefixLen < 0 || prefixLen > len(prefix) {
		panic(fmt.Sprintf("packet: prefixLen %d out of range [0,%d]", prefixLen, len(prefix)))
	}
	obj := make([]byte, 0, prefixLen+len(content))
	obj = append(obj, prefix[:prefixLen]...)
	obj = append(obj, content...)
	return Packetize(flow, obj, segSize)
}
