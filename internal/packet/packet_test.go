package packet

import (
	"bytes"
	"testing"
	"testing/quick"

	"dcstream/internal/stats"
)

func TestPacketizeSizes(t *testing.T) {
	cases := []struct {
		dataLen, seg int
		wantPkts     int
		wantLast     int
	}{
		{0, 536, 0, 0},
		{1, 536, 1, 1},
		{536, 536, 1, 536},
		{537, 536, 2, 1},
		{1072, 536, 2, 536},
		{5000, 536, 10, 176},
	}
	for _, c := range cases {
		data := make([]byte, c.dataLen)
		pkts := Packetize(7, data, c.seg)
		if len(pkts) != c.wantPkts {
			t.Fatalf("len(data)=%d: got %d packets want %d", c.dataLen, len(pkts), c.wantPkts)
		}
		for i, p := range pkts {
			if p.Flow != 7 {
				t.Fatalf("packet %d wrong flow", i)
			}
			want := c.seg
			if i == len(pkts)-1 {
				want = c.wantLast
			}
			if len(p.Payload) != want {
				t.Fatalf("packet %d payload len %d want %d", i, len(p.Payload), want)
			}
		}
	}
}

func TestPacketizeRoundTrip(t *testing.T) {
	f := func(data []byte, segRaw uint8) bool {
		seg := int(segRaw%100) + 1
		pkts := Packetize(1, data, seg)
		var rejoined []byte
		for _, p := range pkts {
			rejoined = append(rejoined, p.Payload...)
		}
		return bytes.Equal(rejoined, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for segSize=0")
		}
	}()
	Packetize(1, []byte("x"), 0)
}

func TestTupleInjective(t *testing.T) {
	seen := map[FlowLabel]bool{}
	for s := uint16(0); s < 8; s++ {
		for d := uint16(0); d < 8; d++ {
			for sp := uint16(0); sp < 8; sp++ {
				for dp := uint16(0); dp < 8; dp++ {
					l := Tuple(s, d, sp, dp)
					if seen[l] {
						t.Fatalf("Tuple collision at (%d,%d,%d,%d)", s, d, sp, dp)
					}
					seen[l] = true
				}
			}
		}
	}
}

func TestInstanceAlignedIdentical(t *testing.T) {
	rng := stats.NewRand(1)
	content := make([]byte, 5000)
	rng.Read(content)
	a := Instance(1, content, nil, 0, 536)
	b := Instance(2, content, nil, 0, 536)
	if len(a) != len(b) {
		t.Fatal("aligned instances differ in packet count")
	}
	for i := range a {
		if !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("aligned instances differ at packet %d", i)
		}
	}
}

// TestUnalignedShiftProperty is the cornerstone of offset sampling (§IV-A):
// for two instances with prefix lengths l1, l2 and intra-segment offsets
// o1, o2 such that o1 - l1 ≡ o2 - l2 (mod segSize), the fragments sampled at
// those offsets are equal, packet-for-packet up to a whole-packet shift.
func TestUnalignedShiftProperty(t *testing.T) {
	const seg = 100
	const fragLen = 8
	rng := stats.NewRand(2)
	content := make([]byte, 30*seg)
	rng.Read(content)
	prefix := make([]byte, seg)
	rng.Read(prefix)

	sample := func(pkts []Packet, off int) [][]byte {
		var frags [][]byte
		for _, p := range pkts {
			if off+fragLen <= len(p.Payload) {
				frags = append(frags, p.Payload[off:off+fragLen])
			}
		}
		return frags
	}

	for _, tc := range []struct{ l1, l2, o1 int }{
		{10, 30, 15}, {0, 50, 0}, {99, 1, 40}, {25, 25, 70},
	} {
		o2 := (tc.o1 - tc.l1 + tc.l2) % seg
		if o2 < 0 {
			o2 += seg
		}
		p1 := Instance(1, content, prefix, tc.l1, seg)
		p2 := Instance(2, content, prefix, tc.l2, seg)
		f1 := sample(p1, tc.o1)
		f2 := sample(p2, o2)
		// Count how many fragments of f1 appear in f2 — all content-region
		// fragments must match (only boundary fragments may fall off).
		set := map[string]bool{}
		for _, f := range f2 {
			set[string(f)] = true
		}
		matched := 0
		for _, f := range f1 {
			if set[string(f)] {
				matched++
			}
		}
		if matched < len(f1)-2 {
			t.Fatalf("l1=%d l2=%d o1=%d o2=%d: only %d/%d fragments matched",
				tc.l1, tc.l2, tc.o1, o2, matched, len(f1))
		}
	}
}

// TestUnalignedMismatchedOffsets verifies the converse: when the offset
// congruence does not hold, fragments (of random content) essentially never
// match — this is why a single fixed offset has only 1/segSize match
// probability, motivating offset sampling.
func TestUnalignedMismatchedOffsets(t *testing.T) {
	const seg = 100
	const fragLen = 8
	rng := stats.NewRand(3)
	content := make([]byte, 30*seg)
	rng.Read(content)
	prefix := make([]byte, seg)
	rng.Read(prefix)

	p1 := Instance(1, content, prefix, 10, seg)
	p2 := Instance(2, content, prefix, 30, seg)
	// o1 - l1 = 5, o2 - l2 = 7: incongruent.
	set := map[string]bool{}
	for _, p := range p2 {
		if 37+fragLen <= len(p.Payload) {
			set[string(p.Payload[37:37+fragLen])] = true
		}
	}
	for i, p := range p1 {
		if 15+fragLen <= len(p.Payload) {
			if set[string(p.Payload[15:15+fragLen])] {
				t.Fatalf("packet %d matched despite incongruent offsets", i)
			}
		}
	}
}
