package unaligned

import (
	"sort"

	"dcstream/internal/bitvec"
)

// Tracker accounting constants, in the same deterministic-estimate spirit as
// the center's shed ledger: the budget should see incremental state the same
// way it sees buffered digests.
const (
	trMemberBytes = 64 // member struct + map entry
	trGroupBytes  = 16 // per-group slice headers
	trRowBytes    = 8  // cached row weight
	trPairBytes   = 96 // pair record + map entry
	trEntryBytes  = 24 // one row-evidence entry
)

// TrackerConfig carries the analysis parameters the ingest-time λ prune must
// stay consistent with. Zero values mean the center's dynamic defaults
// (TargetP1 = 0.5/n, CoreP1 = 8/n).
type TrackerConfig struct {
	TargetP1 float64
	CoreP1   float64
	// Reach is the sliding-window span W: digests are correlated against
	// members at most Reach-1 epochs away (1 = within-epoch only).
	Reach int
}

// MemberRef identifies one ingested digest: a router's bank in one epoch.
type MemberRef struct {
	Epoch  int
	Router int
}

type trMember struct {
	ref     MemberRef
	rows    [][]*bitvec.Vector
	weights [][]int
	bad     bool // internally malformed (empty group); Merge would error
	bits    int  // -1 until a row fixes it
	arrays  int  // -1 until a group fixes it
}

type trPairKey struct{ a, b MemberRef }

// rowEvidence is one surviving row pair: the two row weights and the exact
// overlap. The final edge decision `count > λ_final(wa,wb)` needs nothing
// else — not the bitmaps, not the row indices.
type rowEvidence struct {
	ga, gb uint32
	wa, wb int32
	count  int32
}

type trPair struct{ entries []rowEvidence }

// Tracker maintains the unaligned correlation state of a whole (possibly
// sliding) window incrementally. For every digest pair within reach it keeps
// the row pairs that survive a deliberately loose λ threshold computed at a
// lower bound of the final vertex count; because the final vertex count can
// only grow, the final λ can only be larger, so the surviving set provably
// contains every row pair that could pass the final threshold. Finalize then
// replays `count > λ_final` over the stored evidence — literally the same
// comparisons the batch path makes — with zero bitmap work.
//
// The loose threshold is taken at the larger of the ER and core-graph edge
// probabilities, so one evidence store serves both graphs of the two-graph
// design. The tracker is not self-synchronizing: the center drives it under
// its own mutex.
type Tracker struct {
	cfg      TrackerConfig
	members  map[MemberRef]*trMember
	byEpoch  map[int][]MemberRef // insertion order per epoch
	verts    map[int]int         // current vertex (group) count per epoch
	maxVerts map[int]int         // historical high-water mark per epoch
	pairs    map[trPairKey]*trPair
	tables   map[uint64]*LambdaTable // prune tables keyed by (bits, arrays, pow2 n-low)
	bytes    int64
}

// NewTracker returns an empty tracker.
func NewTracker(cfg TrackerConfig) *Tracker {
	if cfg.Reach < 1 {
		cfg.Reach = 1
	}
	return &Tracker{
		cfg:      cfg,
		members:  map[MemberRef]*trMember{},
		byEpoch:  map[int][]MemberRef{},
		verts:    map[int]int{},
		maxVerts: map[int]int{},
		pairs:    map[trPairKey]*trPair{},
		tables:   map[uint64]*LambdaTable{},
	}
}

// Bytes returns the accounted footprint; it moves exactly by the deltas the
// mutating methods return.
func (t *Tracker) Bytes() int64 { return t.bytes }

func (k trPairKey) canonical() trPairKey {
	if k.b.Epoch < k.a.Epoch || (k.b.Epoch == k.a.Epoch && k.b.Router < k.a.Router) {
		k.a, k.b = k.b, k.a
	}
	return k
}

func memberBytes(m *trMember) int64 {
	b := int64(trMemberBytes)
	for _, g := range m.rows {
		b += trGroupBytes + int64(len(g))*trRowBytes
	}
	return b
}

// pruneTable returns the loose λ table for a pair whose final span is
// guaranteed to hold at least nLow vertices, or nil when no sound prune
// exists (tiny spans where the implied edge probability leaves (0,1): every
// row pair is then kept as evidence, which is cheap precisely because the
// span is tiny). nLow is bucketed to its floor power of two so at most
// log2(n) tables are ever built per geometry.
func (t *Tracker) pruneTable(bits, arrays, nLow int) *LambdaTable {
	if nLow < 1 {
		nLow = 1
	}
	pow2 := 1
	for pow2*2 <= nLow {
		pow2 *= 2
	}
	key := uint64(bits)<<40 | uint64(arrays)<<20 | uint64(pow2)
	if tab, ok := t.tables[key]; ok {
		return tab
	}
	er := t.cfg.TargetP1
	if er == 0 {
		er = 0.5 / float64(pow2)
	}
	core := t.cfg.CoreP1
	if core == 0 {
		core = 8 / float64(pow2)
	}
	p1 := er
	if core > p1 {
		p1 = core
	}
	var tab *LambdaTable
	pstar := PStarForEdgeProbability(p1, arrays*arrays)
	if pstar > 0 && pstar < 1 {
		tab, _ = NewLambdaTable(bits, pstar)
	}
	t.tables[key] = tab // nil is cached too: "no prune" is also an answer
	return tab
}

// Add registers a digest for (epoch, router) and computes row evidence
// against every member within reach, plus the digest's own intra-router group
// pairs. It returns the accounted byte delta. The caller must Remove any
// previous digest for the same (epoch, router) first.
func (t *Tracker) Add(epoch int, d *Digest) int64 {
	ref := MemberRef{Epoch: epoch, Router: d.RouterID}
	m := &trMember{ref: ref, rows: d.Rows, bits: -1, arrays: -1}
	m.weights = make([][]int, len(d.Rows))
	for g, rows := range d.Rows {
		if len(rows) == 0 {
			m.bad = true
			continue
		}
		if m.arrays == -1 {
			m.arrays = len(rows)
		} else if len(rows) != m.arrays {
			m.bad = true
		}
		w := make([]int, len(rows))
		for a, r := range rows {
			if m.bits == -1 {
				m.bits = r.Len()
			} else if r.Len() != m.bits {
				m.bad = true
			}
			w[a] = r.OnesCount()
		}
		m.weights[g] = w
	}
	t.members[ref] = m
	t.byEpoch[epoch] = append(t.byEpoch[epoch], ref)
	t.verts[epoch] += len(d.Rows)
	if t.verts[epoch] > t.maxVerts[epoch] {
		t.maxVerts[epoch] = t.verts[epoch]
	}
	delta := memberBytes(m)

	if !m.bad {
		// Intra-member group pairs: the induced graph correlates every pair
		// of vertices, including two groups of the same router.
		delta += t.correlate(m, m)
		for e := epoch - t.cfg.Reach + 1; e <= epoch+t.cfg.Reach-1; e++ {
			for _, oref := range t.byEpoch[e] {
				if oref == ref {
					continue
				}
				if o := t.members[oref]; !o.bad && o.bits == m.bits && o.arrays == m.arrays {
					delta += t.correlate(m, o)
				}
			}
		}
	}
	t.bytes += delta
	return delta
}

// correlate computes and stores the surviving row evidence between two
// members (or the intra-member group pairs when m == o).
func (t *Tracker) correlate(m, o *trMember) int64 {
	nLow := t.verts[m.ref.Epoch]
	if o.ref.Epoch != m.ref.Epoch {
		nLow += t.verts[o.ref.Epoch]
	}
	tab := t.pruneTable(m.bits, m.arrays, nLow)
	// Evidence group indices are stored relative to the canonical key order,
	// so SpanEdges can map them to vertex bases without knowing which side
	// was ingested later.
	key := trPairKey{a: m.ref, b: o.ref}.canonical()
	x, y := m, o
	if key.a != x.ref {
		x, y = o, m
	}
	var entries []rowEvidence
	for ga, ra := range x.rows {
		gbStart := 0
		if o == m {
			gbStart = ga + 1
		}
		for gb := gbStart; gb < len(y.rows); gb++ {
			rb := y.rows[gb]
			for a := range ra {
				wa := x.weights[ga][a]
				for b := range rb {
					wb := y.weights[gb][b]
					if tab != nil {
						lam := tab.Threshold(wa, wb)
						minW := wa
						if wb < minW {
							minW = wb
						}
						if minW <= lam {
							continue
						}
						if !bitvec.AndCountAtLeast(ra[a], rb[b], lam+1) {
							continue
						}
					}
					entries = append(entries, rowEvidence{
						ga: uint32(ga), gb: uint32(gb),
						wa: int32(wa), wb: int32(wb),
						count: int32(bitvec.AndCount(ra[a], rb[b])),
					})
				}
			}
		}
	}
	if len(entries) == 0 {
		return 0
	}
	// The caller guarantees stale pairs were purged, so the slot is fresh.
	t.pairs[key] = &trPair{entries: entries}
	return trPairBytes + int64(len(entries))*trEntryBytes
}

// Remove retracts the digest at (epoch, router): the member and every pair
// record touching it are dropped. Returns the (negative) byte delta.
func (t *Tracker) Remove(epoch, router int) int64 {
	ref := MemberRef{Epoch: epoch, Router: router}
	m, ok := t.members[ref]
	if !ok {
		return 0
	}
	delta := -memberBytes(m)
	delete(t.members, ref)
	refs := t.byEpoch[epoch]
	for i, r := range refs {
		if r == ref {
			t.byEpoch[epoch] = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	t.verts[epoch] -= len(m.rows)
	for key, p := range t.pairs {
		if key.a == ref || key.b == ref {
			delta -= trPairBytes + int64(len(p.entries))*trEntryBytes
			delete(t.pairs, key)
		}
	}
	t.bytes += delta
	return delta
}

// DropEpoch discards every member of the epoch and all evidence touching it
// (window eviction, shedding, sliding-window retirement). Returns the
// (negative) byte delta.
func (t *Tracker) DropEpoch(epoch int) int64 {
	var delta int64
	for _, ref := range append([]MemberRef(nil), t.byEpoch[epoch]...) {
		delta += t.Remove(ref.Epoch, ref.Router)
	}
	delete(t.byEpoch, epoch)
	delete(t.verts, epoch)
	delete(t.maxVerts, epoch)
	return delta
}

// spanPair is one member pair's evidence in a snapshot: the vertex bases of
// the canonical-first and canonical-second member, plus the shared (immutable
// once stored) evidence entries.
type spanPair struct {
	ba, bb  int32
	entries []rowEvidence
}

// SpanEvidence is a detached view of the tracker state for one analysis
// span. Snapshot builds it under the center's lock in O(members + pairs);
// Edges then replays the final λ comparisons outside the lock, because a
// stored evidence slice is never mutated in place (replacements swap whole
// records) and the copied metadata is plain values.
type SpanEvidence struct {
	usable   bool
	bits     int
	arrays   int
	vertices []Vertex
	pairs    []spanPair
}

// Snapshot captures the evidence for the given members (in batch Merge
// order). Usable() is false — and the batch fallback must run — when any
// member is missing or malformed, geometries mix, or a span epoch ever
// shrank below its vertex high-water mark (a replacement with fewer groups
// invalidates the loose prune's vertex-count lower bound).
func (t *Tracker) Snapshot(order []MemberRef) *SpanEvidence {
	s := &SpanEvidence{bits: -1, arrays: -1}
	base := make(map[MemberRef]int32, len(order))
	epochOK := map[int]bool{}
	for _, ref := range order {
		m, ok := t.members[ref]
		if !ok || m.bad {
			return s
		}
		if s.bits == -1 {
			s.bits, s.arrays = m.bits, m.arrays
		}
		if m.bits != s.bits || m.arrays != s.arrays {
			return s
		}
		if _, seen := epochOK[ref.Epoch]; !seen {
			epochOK[ref.Epoch] = true
			if t.verts[ref.Epoch] < t.maxVerts[ref.Epoch] {
				return s
			}
		}
		base[ref] = int32(len(s.vertices))
		for g := range m.rows {
			s.vertices = append(s.vertices, Vertex{RouterID: ref.Router, Group: g})
		}
	}
	if s.bits <= 0 {
		return s
	}
	s.usable = true
	for i, ra := range order {
		if p, ok := t.pairs[trPairKey{a: ra, b: ra}]; ok {
			s.pairs = append(s.pairs, spanPair{ba: base[ra], bb: base[ra], entries: p.entries})
		}
		for _, rb := range order[i+1:] {
			key := trPairKey{a: ra, b: rb}.canonical()
			if p, ok := t.pairs[key]; ok {
				s.pairs = append(s.pairs, spanPair{ba: base[key.a], bb: base[key.b], entries: p.entries})
			}
		}
	}
	return s
}

// Usable reports whether the evidence reproduces the batch result for this
// span; when false the caller must fall back to the batch path (which also
// reproduces the batch path's error, if the span is malformed).
func (s *SpanEvidence) Usable() bool { return s.usable }

// NumVertices returns the span's merged vertex count.
func (s *SpanEvidence) NumVertices() int { return len(s.vertices) }

// Bits returns the uniform array width.
func (s *SpanEvidence) Bits() int { return s.bits }

// Arrays returns the uniform per-group array count k.
func (s *SpanEvidence) Arrays() int { return s.arrays }

// Vertex returns the identity of vertex v under the batch Merge numbering.
func (s *SpanEvidence) Vertex(v int) Vertex { return s.vertices[v] }

// Edges replays the stored evidence against a final λ table: an edge joins
// two vertices when any surviving row pair's exact overlap beats the
// threshold for its weights — literally the batch BuildGraph predicate.
// Edges come back sorted and deduplicated, so graph construction is
// deterministic regardless of evidence order.
func (s *SpanEvidence) Edges(table *LambdaTable) [][2]int32 {
	var edges [][2]int32
	for _, p := range s.pairs {
		for _, e := range p.entries {
			if int(e.count) > table.Threshold(int(e.wa), int(e.wb)) {
				u, v := p.ba+int32(e.ga), p.bb+int32(e.gb)
				if u > v {
					u, v = v, u
				}
				edges = append(edges, [2]int32{u, v})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	out := edges[:0]
	for i, e := range edges {
		if i == 0 || e != edges[i-1] {
			out = append(out, e)
		}
	}
	return out
}
