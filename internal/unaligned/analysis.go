package unaligned

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dcstream/internal/bitvec"
	"dcstream/internal/graph"
)

// Vertex names one node of the induced random graph: one flow-split group at
// one router.
type Vertex struct {
	RouterID int
	Group    int
}

// GroupMatrix is the analysis center's view after merging router digests
// vertically (§IV-B): a list of vertices, each owning ArraysPerGroup rows of
// ArrayBits bits.
type GroupMatrix struct {
	arrayBits      int
	arraysPerGroup int
	vertices       []Vertex
	rows           [][]*bitvec.Vector // rows[v][a]
	weights        [][]int            // cached OnesCount per row
}

// Merge stacks router digests into one GroupMatrix. All digests must share
// array geometry: a uniform array count k across every group of every router
// (the λ-table row-pair count k² is a single deployment-wide constant) and a
// uniform array width. Mixed-k digests would silently skew the edge
// probability the ER test is calibrated for, so they are an error here.
func Merge(digests []*Digest) (*GroupMatrix, error) {
	if len(digests) == 0 {
		return nil, fmt.Errorf("unaligned: no digests to merge")
	}
	var gm GroupMatrix
	gm.arrayBits = -1
	gm.arraysPerGroup = -1
	for _, d := range digests {
		for g, rows := range d.Rows {
			if len(rows) == 0 {
				return nil, fmt.Errorf("unaligned: router %d group %d has no arrays", d.RouterID, g)
			}
			if gm.arraysPerGroup == -1 {
				gm.arraysPerGroup = len(rows)
			}
			if len(rows) != gm.arraysPerGroup {
				return nil, fmt.Errorf("unaligned: router %d group %d has %d arrays, want %d",
					d.RouterID, g, len(rows), gm.arraysPerGroup)
			}
			w := make([]int, len(rows))
			for a, r := range rows {
				if gm.arrayBits == -1 {
					gm.arrayBits = r.Len()
				}
				if r.Len() != gm.arrayBits {
					return nil, fmt.Errorf("unaligned: router %d group %d array %d width %d, want %d",
						d.RouterID, g, a, r.Len(), gm.arrayBits)
				}
				w[a] = r.OnesCount()
			}
			gm.vertices = append(gm.vertices, Vertex{RouterID: d.RouterID, Group: g})
			gm.rows = append(gm.rows, rows)
			gm.weights = append(gm.weights, w)
		}
	}
	return &gm, nil
}

// NumVertices returns the number of graph vertices (groups across routers).
func (gm *GroupMatrix) NumVertices() int { return len(gm.vertices) }

// ArrayBits returns the row width.
func (gm *GroupMatrix) ArrayBits() int { return gm.arrayBits }

// ArraysPerGroup returns k, the uniform per-vertex row count Merge enforced.
func (gm *GroupMatrix) ArraysPerGroup() int { return gm.arraysPerGroup }

// Vertex returns the identity of vertex v.
func (gm *GroupMatrix) Vertex(v int) Vertex { return gm.vertices[v] }

// BuildGraph induces the random graph of §IV-B: an edge joins two vertices
// when any pair of their rows shares more ones than the λ threshold for the
// rows' weights. This is the O(k²·n²) pass that dominates the analysis
// cost (§IV-D); rows of one vertex are never compared with each other.
func (gm *GroupMatrix) BuildGraph(lambda *LambdaTable) (*graph.Graph, error) {
	if lambda.N() != gm.arrayBits {
		return nil, fmt.Errorf("unaligned: λ table width %d, matrix width %d", lambda.N(), gm.arrayBits)
	}
	n := len(gm.vertices)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if gm.correlated(u, v, lambda) {
				g.AddEdge(u, v)
			}
		}
	}
	return g, nil
}

// BuildGraphParallel is BuildGraph with the O(k²·n²) correlation pass
// spread over the given number of goroutines (§IV-D's third remedy: the
// work is embarrassingly parallel). workers == 0 means GOMAXPROCS; negative
// values and 1 fall back to the serial path; counts above the vertex count
// are clamped (the extra goroutines would only idle). The result is
// identical at every setting.
func (gm *GroupMatrix) BuildGraphParallel(lambda *LambdaTable, workers int) (*graph.Graph, error) {
	n := len(gm.vertices)
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 2 {
		return gm.BuildGraph(lambda)
	}
	if lambda.N() != gm.arrayBits {
		return nil, fmt.Errorf("unaligned: λ table width %d, matrix width %d", lambda.N(), gm.arrayBits)
	}
	type edge struct{ u, v int32 }
	results := make([][]edge, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []edge
			// Strided row assignment balances the triangular workload.
			for u := w; u < n; u += workers {
				for v := u + 1; v < n; v++ {
					if gm.correlated(u, v, lambda) {
						local = append(local, edge{int32(u), int32(v)})
					}
				}
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	g := graph.New(n)
	for _, local := range results {
		for _, e := range local {
			g.AddEdge(int(e.u), int(e.v))
		}
	}
	return g, nil
}

// BuildGraphSampled induces the graph on a uniformly chosen subset of the
// vertices (§IV-D's second complexity remedy: "sample 10% of the vertices
// and find a core only in this subset"). It returns the graph plus the
// mapping from sampled-graph vertex ids to original vertex ids.
func (gm *GroupMatrix) BuildGraphSampled(lambda *LambdaTable, sample []int) (*graph.Graph, []int, error) {
	if lambda.N() != gm.arrayBits {
		return nil, nil, fmt.Errorf("unaligned: λ table width %d, matrix width %d", lambda.N(), gm.arrayBits)
	}
	for _, v := range sample {
		if v < 0 || v >= len(gm.vertices) {
			return nil, nil, fmt.Errorf("unaligned: sampled vertex %d out of range", v)
		}
	}
	g := graph.New(len(sample))
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample); j++ {
			if gm.correlated(sample[i], sample[j], lambda) {
				g.AddEdge(i, j)
			}
		}
	}
	return g, append([]int(nil), sample...), nil
}

// correlated reports whether the maximal row-pair overlap between vertices u
// and v exceeds the λ threshold for the respective row weights. Two layers
// of early exit keep the common (uncorrelated) case cheap: the overlap can
// never exceed the lighter row's weight, so pairs with min(wu,wv) ≤ λ are
// rejected without touching the bitmaps at all, and the remaining pairs only
// need the threshold decision, not the exact count.
func (gm *GroupMatrix) correlated(u, v int, lambda *LambdaTable) bool {
	ru, rv := gm.rows[u], gm.rows[v]
	wu, wv := gm.weights[u], gm.weights[v]
	for a := range ru {
		for b := range rv {
			t := lambda.Threshold(wu[a], wv[b])
			minW := wu[a]
			if wv[b] < minW {
				minW = wv[b]
			}
			if minW <= t {
				continue
			}
			if bitvec.AndCountAtLeast(ru[a], rv[b], t+1) {
				return true
			}
		}
	}
	return false
}

// ERTestResult reports the outcome of the Erdős–Rényi statistical test.
type ERTestResult struct {
	// LargestComponent is the test statistic.
	LargestComponent int
	// Threshold is the decision boundary used.
	Threshold int
	// PatternDetected is true when the largest component meets the
	// threshold — the alternative hypothesis ("preferential attachment").
	PatternDetected bool
}

// ERTest runs the statistical test of §IV-B: under the null the graph is
// G(n, p1) with p1 below the 1/n phase transition, so all components are
// O(log n); a planted correlation merges components into a giant one.
func ERTest(g *graph.Graph, threshold int) ERTestResult {
	lc := g.LargestComponent()
	return ERTestResult{
		LargestComponent: lc,
		Threshold:        threshold,
		PatternDetected:  lc >= threshold,
	}
}

// PatternConfig tunes the three-step greedy detector of §IV-B.
type PatternConfig struct {
	// Beta is the core size the min-degree peeling stops at.
	Beta int
	// D is the expansion filter: a non-core vertex survives step 3 only if
	// it has at least D edges into the core.
	D int
}

// Validate reports whether the configuration is usable.
func (c PatternConfig) Validate() error {
	if c.Beta <= 0 {
		return fmt.Errorf("unaligned: Beta must be positive, got %d", c.Beta)
	}
	if c.D < 1 {
		return fmt.Errorf("unaligned: D must be at least 1, got %d", c.D)
	}
	return nil
}

// FindPattern runs the greedy core detector (Figure 10 plus step 3): peel to
// a core of Beta vertices, keep non-core vertices with ≥ D edges into the
// core, find a second core among them, and return the union, sorted.
func FindPattern(g *graph.Graph, cfg PatternConfig) ([]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	core := g.Core(cfg.Beta)
	inCore := make(map[int]bool, len(core))
	for _, v := range core {
		inCore[v] = true
	}
	counts := g.CountEdgesInto(core)
	var keep []int
	for v := 0; v < g.NumVertices(); v++ {
		if !inCore[v] && counts[v] >= cfg.D {
			keep = append(keep, v)
		}
	}
	result := append([]int(nil), core...)
	if len(keep) > 0 {
		h, orig := g.Induced(keep)
		for _, v := range h.Core(cfg.Beta) {
			result = append(result, orig[v])
		}
	}
	sort.Ints(result)
	return result, nil
}
