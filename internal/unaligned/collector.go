// Package unaligned implements the paper's design for the unaligned case
// (§IV): the offset-sampling + flow-splitting online streaming module, the
// hypergeometric λ-threshold table that turns pairwise array correlations
// into a uniform-probability random graph, the Erdős–Rényi phase-transition
// statistical test, the three-step greedy core-finding detector, and the
// non-naturally-occurring / detectable threshold machinery of §IV-C
// (Tables I–III, Figure 13).
package unaligned

import (
	"fmt"
	"math/rand"

	"dcstream/internal/bitvec"
	"dcstream/internal/hashing"
	"dcstream/internal/packet"
)

// CollectorConfig parameterizes one router's unaligned streaming module.
// The paper's reference deployment: 128 groups × 10 arrays of 1,024 bits,
// segment size 536, packets under 500 bytes skipped.
type CollectorConfig struct {
	// Groups is the number of flow-split groups; a flow's packets all land
	// in one group so multiple instances of the same content register in
	// separate small arrays, magnifying signal strength (§IV-A).
	Groups int
	// ArraysPerGroup is k, the number of offset-sampled arrays per group.
	ArraysPerGroup int
	// ArrayBits is the width of each array (1,024 in the paper).
	ArrayBits int
	// SegmentSize is the assumed fixed packet payload size (536).
	SegmentSize int
	// FragmentLen is how many payload bytes each offset sample hashes.
	// Zero means 8.
	FragmentLen int
	// MinPayload skips packets with smaller payloads (the paper performs
	// no operation on packets under 500 bytes). Zero means 500.
	MinPayload int
	// LargePayload, when positive, enables the paper's large-packet rule
	// ("for packets 1000 bytes and above, use 20 different offsets, two
	// offsets per array"): packets at least this long are sampled at a
	// second offset per array, doubling the effective k for content
	// carried in large segments. Zero disables the rule.
	LargePayload int
	// HashSeed seeds the shared fragment/flow hash functions. Every router
	// in a deployment must use the same seed: cross-router matching relies
	// on identical fragments hashing to identical indices.
	HashSeed uint64
	// OffsetSeed seeds this router's offset choice. Each router picks its
	// own k random offsets, fixed for a measurement epoch (§IV-A).
	OffsetSeed uint64
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.FragmentLen == 0 {
		c.FragmentLen = 8
	}
	if c.MinPayload == 0 {
		c.MinPayload = 500
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c CollectorConfig) Validate() error {
	c = c.withDefaults()
	if c.Groups <= 0 || c.ArraysPerGroup <= 0 || c.ArrayBits <= 0 {
		return fmt.Errorf("unaligned: non-positive dimension in %+v", c)
	}
	if c.SegmentSize <= 0 {
		return fmt.Errorf("unaligned: segment size must be positive, got %d", c.SegmentSize)
	}
	if c.FragmentLen < 1 || c.FragmentLen > c.SegmentSize {
		return fmt.Errorf("unaligned: fragment length %d outside [1,%d]", c.FragmentLen, c.SegmentSize)
	}
	if c.MinPayload < 0 {
		return fmt.Errorf("unaligned: negative MinPayload")
	}
	if c.LargePayload < 0 {
		return fmt.Errorf("unaligned: negative LargePayload")
	}
	return nil
}

// Digest is one router's per-epoch output: Groups × ArraysPerGroup arrays of
// ArrayBits bits. Rows are indexed [group][array].
type Digest struct {
	RouterID int
	Rows     [][]*bitvec.Vector
}

// Collector is the unaligned-case data collection module (Figures 8 and 9).
// Not safe for concurrent use.
type Collector struct {
	cfg          CollectorConfig
	offsets      []int // one sampling offset per array
	largeOffsets []int // second offset per array for large packets (may be nil)
	flowHash     hashing.Hash64
	fragHash     hashing.Hash64
	rows         [][]*bitvec.Vector
	packets      int
	skipped      int
}

// NewCollector returns a collector with k offsets drawn uniformly from
// [0, SegmentSize-FragmentLen] using OffsetSeed. The fragment hash is shared
// across arrays and routers (seeded by HashSeed): a match between array i of
// one router and array j of another must produce identical bit indices.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(int64(cfg.OffsetSeed) ^ 0x5bd1e995))
	offsets := make([]int, cfg.ArraysPerGroup)
	span := cfg.SegmentSize - cfg.FragmentLen + 1
	for i := range offsets {
		offsets[i] = rng.Intn(span)
	}
	var largeOffsets []int
	if cfg.LargePayload > 0 {
		largeOffsets = make([]int, cfg.ArraysPerGroup)
		for i := range largeOffsets {
			largeOffsets[i] = rng.Intn(span)
		}
	}
	c := &Collector{
		cfg:          cfg,
		offsets:      offsets,
		largeOffsets: largeOffsets,
		flowHash:     hashing.New(cfg.HashSeed ^ 0xf10f10f1),
		fragHash:     hashing.New(cfg.HashSeed),
	}
	c.rows = make([][]*bitvec.Vector, cfg.Groups)
	for g := range c.rows {
		c.rows[g] = make([]*bitvec.Vector, cfg.ArraysPerGroup)
		for a := range c.rows[g] {
			c.rows[g][a] = bitvec.New(cfg.ArrayBits)
		}
	}
	return c, nil
}

// Offsets returns this router's sampling offsets (read-only).
func (c *Collector) Offsets() []int { return c.offsets }

// GroupOf returns the flow-split group a flow label maps to. All collectors
// sharing a HashSeed agree on this mapping.
func (c *Collector) GroupOf(flow packet.FlowLabel) int {
	return c.flowHash.IndexUint64(uint64(flow), c.cfg.Groups)
}

// Update processes one packet: flow-split to a group, then sample a fragment
// at each offset and set the hashed bit in the corresponding array.
func (c *Collector) Update(p packet.Packet) {
	if len(p.Payload) < c.cfg.MinPayload {
		c.skipped++
		return
	}
	g := c.flowHash.IndexUint64(uint64(p.Flow), c.cfg.Groups)
	group := c.rows[g]
	for a, off := range c.offsets {
		end := off + c.cfg.FragmentLen
		if end > len(p.Payload) {
			continue // short final packet: this offset has no full fragment
		}
		idx := c.fragHash.Index(p.Payload[off:end], c.cfg.ArrayBits)
		group[a].Set(idx)
	}
	if c.largeOffsets != nil && len(p.Payload) >= c.cfg.LargePayload {
		for a, off := range c.largeOffsets {
			end := off + c.cfg.FragmentLen
			if end > len(p.Payload) {
				continue
			}
			idx := c.fragHash.Index(p.Payload[off:end], c.cfg.ArrayBits)
			group[a].Set(idx)
		}
	}
	c.packets++
}

// Packets returns the number of packets sampled (post MinPayload filter).
func (c *Collector) Packets() int { return c.packets }

// Skipped returns the number of packets dropped by the MinPayload filter.
func (c *Collector) Skipped() int { return c.skipped }

// FillRatio returns the mean fraction of set bits across all arrays.
func (c *Collector) FillRatio() float64 {
	ones := 0
	for _, g := range c.rows {
		for _, a := range g {
			ones += a.OnesCount()
		}
	}
	return float64(ones) / float64(c.cfg.Groups*c.cfg.ArraysPerGroup*c.cfg.ArrayBits)
}

// Digest snapshots the arrays into a shippable digest without resetting.
func (c *Collector) Digest(routerID int) *Digest {
	d := &Digest{RouterID: routerID, Rows: make([][]*bitvec.Vector, len(c.rows))}
	for g := range c.rows {
		d.Rows[g] = make([]*bitvec.Vector, len(c.rows[g]))
		for a := range c.rows[g] {
			d.Rows[g][a] = c.rows[g][a].Clone()
		}
	}
	return d
}

// Reset clears every array for the next epoch.
func (c *Collector) Reset() {
	for _, g := range c.rows {
		for _, a := range g {
			a.Reset()
		}
	}
	c.packets = 0
	c.skipped = 0
}
