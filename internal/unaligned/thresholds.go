package unaligned

import (
	"fmt"
	"math"

	"dcstream/internal/stats"
)

// ClusterSearchConfig drives the non-naturally-occurring cluster-size search
// of §IV-C (Table II): find the minimum number of pattern vertices m such
// that some edge-count threshold d separates a pattern subgraph from chance
// with both type-I error and type-II error controlled. Since the induced
// graph's p1 (via the λ table) and d trade off, the search co-tunes them
// over a grid, exactly as the paper's "efficient numerical analysis
// procedure that searches for the best combination of p1 and d in a
// brute-force way".
type ClusterSearchConfig struct {
	Model Model
	// TypeI bounds C(n,m)·P[Binomial(m(m-1)/2, p1) > d] (equation (2)).
	// Zero means 1e-10.
	TypeI float64
	// Power is the required P[Binomial(m(m-1)/2, p2) > d] (equation (3)).
	// Zero means 0.95.
	Power float64
	// PStarGrid lists the candidate per-row-pair tails to co-tune over.
	// Empty means a log-spaced grid from 1e-16 to 1e-4.
	PStarGrid []float64
	// MaxM caps the search. Zero means 2000.
	MaxM int
}

func (c ClusterSearchConfig) withDefaults() ClusterSearchConfig {
	if c.TypeI == 0 {
		c.TypeI = 1e-10
	}
	if c.Power == 0 {
		c.Power = 0.95
	}
	if len(c.PStarGrid) == 0 {
		for e := -16.0; e <= -2.5; e += 0.25 {
			c.PStarGrid = append(c.PStarGrid, math.Pow(10, e))
		}
	}
	if c.MaxM == 0 {
		c.MaxM = 2000
	}
	return c
}

// ClusterBound is the result of the minimum-cluster search for one content
// length g.
type ClusterBound struct {
	// G is the content length in packets.
	G int
	// M is the minimum non-naturally-occurring cluster size (Table II's
	// "Minimum Size of m"); -1 if no size up to MaxM suffices.
	M int
	// D is the edge-count threshold achieving the bound.
	D int
	// PStar and P1, P2 document the co-tuned operating point.
	PStar, P1, P2 float64
}

// MinCluster returns the smallest cluster size m for which some (p*, d)
// pair controls both error kinds, for a common content of g packets.
func MinCluster(cfg ClusterSearchConfig, g int) (ClusterBound, error) {
	if err := cfg.Model.Validate(); err != nil {
		return ClusterBound{}, err
	}
	cfg = cfg.withDefaults()
	best := ClusterBound{G: g, M: -1}
	for _, pstar := range cfg.PStarGrid {
		p1, p2 := cfg.Model.EdgeProbabilities(pstar, g)
		if p2 <= p1 {
			continue
		}
		m, d := minClusterAt(cfg, p1, p2)
		if m > 0 && (best.M < 0 || m < best.M) {
			best.M, best.D, best.PStar, best.P1, best.P2 = m, d, pstar, p1, p2
		}
	}
	return best, nil
}

// minClusterAt finds the smallest m for fixed (p1, p2), or -1.
func minClusterAt(cfg ClusterSearchConfig, p1, p2 float64) (m, d int) {
	n := float64(cfg.Model.withDefaults().N)
	logTypeI := math.Log(cfg.TypeI)
	for m = 2; m <= cfg.MaxM; m++ {
		pairs := m * (m - 1) / 2
		logCnm := stats.LogChoose(n, float64(m))
		// Smallest d with C(n,m)·P[Binomial(pairs,p1) > d] ≤ TypeI; the
		// survival is monotone decreasing in d, so binary search in log
		// space (the products routinely reach e^{-800}).
		ok := func(d int) bool {
			return logCnm+stats.BinomLogSurvival(d, pairs, p1) <= logTypeI
		}
		if !ok(pairs) { // even an impossible edge count cannot control type I
			continue
		}
		lo, hi := -1, pairs
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if ok(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		if stats.BinomSurvival(hi, pairs, p2) >= cfg.Power {
			return m, hi
		}
	}
	return -1, 0
}

// NaturalClusterProbability evaluates equation (2) directly: the bound on
// the probability that some m-vertex subgraph of the null graph has more
// than d edges. Exposed for tests and the experiment harness.
func NaturalClusterProbability(model Model, m, d int, p1 float64) float64 {
	n := float64(model.withDefaults().N)
	lg := stats.LogChoose(n, float64(m)) + stats.BinomLogSurvival(d, m*(m-1)/2, p1)
	return math.Exp(lg)
}

// ValidateBound sanity-checks a ClusterBound against its defining
// inequalities; used by tests and by callers that tweak bounds manually.
func ValidateBound(cfg ClusterSearchConfig, b ClusterBound) error {
	cfg = cfg.withDefaults()
	if b.M <= 1 {
		return fmt.Errorf("unaligned: bound has m=%d", b.M)
	}
	if p := NaturalClusterProbability(cfg.Model, b.M, b.D, b.P1); p > cfg.TypeI*1.0000001 {
		return fmt.Errorf("unaligned: type-I %v exceeds %v", p, cfg.TypeI)
	}
	if pw := stats.BinomSurvival(b.D, b.M*(b.M-1)/2, b.P2); pw < cfg.Power {
		return fmt.Errorf("unaligned: power %v below %v", pw, cfg.Power)
	}
	return nil
}
