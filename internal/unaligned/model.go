package unaligned

import (
	"fmt"
	"math"
	"math/rand"

	"dcstream/internal/graph"
	"dcstream/internal/stats"
)

// Model captures the random-graph abstraction of the unaligned analysis: the
// matrix→graph construction makes the null graph Erdős–Rényi with a uniform
// edge probability p1, while vertex pairs that both saw the common content
// connect with a larger probability p2 that depends on the content length g.
// The paper's own Monte-Carlo evaluation (Figure 13, Tables I–III) operates
// at this level for the full 102,400-vertex scale; the bitmap-level pipeline
// in this package validates the model at reduced scale.
type Model struct {
	// N is the number of graph vertices (groups across all routers);
	// 102,400 in the paper's reference deployment.
	N int
	// ArrayBits is the row width (1,024).
	ArrayBits int
	// RowWeight is the typical number of ones per row; arrays are run to
	// half full, so ArrayBits/2. Zero means ArrayBits/2.
	RowWeight int
	// RowPairs is the number of row combinations compared per vertex pair
	// (k² = 100 for 10 arrays per group). Zero means 100.
	RowPairs int
	// SegmentSpan is the offset-matching modulus (the 536-byte segment).
	// Zero means 536.
	SegmentSpan int
	// Offsets is k, the number of sampling offsets per router. Zero means 10.
	Offsets int
}

// WithDefaults returns the model with all zero fields replaced by the
// paper's reference values; callers that read fields like RowPairs directly
// must go through this first.
func (m Model) WithDefaults() Model { return m.withDefaults() }

func (m Model) withDefaults() Model {
	if m.RowWeight == 0 {
		m.RowWeight = m.ArrayBits / 2
	}
	if m.RowPairs == 0 {
		m.RowPairs = 100
	}
	if m.SegmentSpan == 0 {
		m.SegmentSpan = 536
	}
	if m.Offsets == 0 {
		m.Offsets = 10
	}
	return m
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	m = m.withDefaults()
	if m.N <= 1 || m.ArrayBits <= 0 {
		return fmt.Errorf("unaligned: bad model dimensions %+v", m)
	}
	if m.RowWeight <= 0 || m.RowWeight > m.ArrayBits {
		return fmt.Errorf("unaligned: RowWeight %d outside (0,%d]", m.RowWeight, m.ArrayBits)
	}
	if m.SegmentSpan <= 0 || m.Offsets <= 0 || m.RowPairs <= 0 {
		return fmt.Errorf("unaligned: non-positive model parameter in %+v", m)
	}
	return nil
}

// MatchProbability returns the probability that two routers that both saw
// the content have at least one offset-congruent array pair: with k offsets
// each, the k² offset differences cover a random prefix shift with
// probability ≈ 1-exp(-k²/span) (§IV-A).
func (m Model) MatchProbability() float64 {
	m = m.withDefaults()
	k := float64(m.Offsets)
	return 1 - math.Exp(-k*k/float64(m.SegmentSpan))
}

// EffectiveSignal returns the expected number of distinct array indices the
// g content packets occupy — slightly under g because of hash collisions in
// an ArrayBits-wide array.
func (m Model) EffectiveSignal(g int) float64 {
	m = m.withDefaults()
	nb := float64(m.ArrayBits)
	return nb * (1 - math.Pow(1-1/nb, float64(g)))
}

// EdgeProbabilities returns (p1, p2) for a λ table built with the given
// per-row-pair tail p*: p1 is the background edge probability between any
// two vertices, and p2 the probability between two vertices that both saw a
// g-packet common content. p2 combines the offset-match probability with
// the chance that the matched rows' overlap — the g forced common ones plus
// the residual hypergeometric overlap — clears the λ threshold.
func (m Model) EdgeProbabilities(pstar float64, g int) (p1, p2 float64) {
	m = m.withDefaults()
	p1 = EdgeProbabilityForPStar(pstar, m.RowPairs)
	lambda := stats.HyperThreshold(m.ArrayBits, m.RowWeight, m.RowWeight, pstar)
	geff := int(m.EffectiveSignal(g) + 0.5)
	if geff > m.RowWeight {
		geff = m.RowWeight
	}
	// Residual overlap of the non-content portions of the two matched rows:
	// the g content bits are part of each row's weight, so the residual is
	// hypergeometric over the remaining positions and ones. (The paper's
	// Table II constants are consistent with a looser approximation that
	// keeps the full row weights; see EXPERIMENTS.md for the comparison.)
	pHit := stats.HyperSurvival(lambda-geff, m.ArrayBits-geff, m.RowWeight-geff, m.RowWeight-geff)
	pm := m.MatchProbability()
	p2 = pm*pHit + (1-pm*pHit)*p1
	return p1, p2
}

// SampleNull draws the null-hypothesis graph G(N, p1).
func (m Model) SampleNull(rng *rand.Rand, p1 float64) *graph.Graph {
	return graph.GNP(rng, m.withDefaults().N, p1)
}

// SamplePlanted draws a graph with n1 pattern vertices: background edges
// with probability p1 everywhere, plus edges among the pattern vertices with
// probability p2. It returns the graph and the pattern vertex set.
func (m Model) SamplePlanted(rng *rand.Rand, p1, p2 float64, n1 int) (*graph.Graph, []int) {
	mm := m.withDefaults()
	g := graph.GNP(rng, mm.N, p1)
	pattern := stats.SampleDistinct(rng, mm.N, n1)
	// Pattern pairs already connected by background keep their edge; the
	// planting only needs to top p1 up to p2.
	extra := (p2 - p1) / (1 - p1)
	if extra > 0 {
		graph.PlantDense(rng, g, pattern, extra)
	}
	return g, pattern
}

// PhaseTransition returns 1/N, the Erdős–Rényi giant-component threshold
// for this model's graph size.
func (m Model) PhaseTransition() float64 {
	return 1 / float64(m.withDefaults().N)
}

// PlantDenseForTest plants a dense subgraph over a random vertex subset;
// exported for fuzz-style tests in this package's test files and kept out
// of hot paths.
func PlantDenseForTest(rng *rand.Rand, g *graph.Graph, n1 int) []int {
	pattern := stats.SampleDistinct(rng, g.NumVertices(), n1)
	graph.PlantDense(rng, g, pattern, 0.25)
	return pattern
}
