package unaligned

import (
	"testing"

	"dcstream/internal/bitvec"
	"math/rand"

	"dcstream/internal/graph"
	"dcstream/internal/stats"
)

const (
	trTestBits   = 512
	trTestArrays = 2
)

// trDigest builds a digest with the given group count, rows ~half full.
func trDigest(rng *rand.Rand, router, groups int) *Digest {
	d := &Digest{RouterID: router, Rows: make([][]*bitvec.Vector, groups)}
	for g := range d.Rows {
		d.Rows[g] = make([]*bitvec.Vector, trTestArrays)
		for a := range d.Rows[g] {
			v := bitvec.New(trTestBits)
			v.FillRandomHalf(rng.Uint64)
			d.Rows[g][a] = v
		}
	}
	return d
}

// trPlantShared overwrites one row in each of two digests with the same
// bitmap, so that vertex pair is correlated far past any λ.
func trPlantShared(rng *rand.Rand, a, b *Digest, ga, gb int) {
	v := bitvec.New(trTestBits)
	v.FillRandomHalf(rng.Uint64)
	a.Rows[ga][0] = v
	b.Rows[gb][1] = v.Clone()
}

// trBatchGraph is the batch reference: Merge in member order, then BuildGraph
// under the given table.
func trBatchGraph(t *testing.T, digests []*Digest, table *LambdaTable) *graph.Graph {
	t.Helper()
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gm.BuildGraph(table)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// trIncGraph builds the graph from tracker evidence.
func trIncGraph(tr *Tracker, order []MemberRef, table *LambdaTable) *graph.Graph {
	ev := tr.Snapshot(order)
	g := graph.New(ev.NumVertices())
	for _, e := range ev.Edges(table) {
		g.AddEdge(int(e[0]), int(e[1]))
	}
	return g
}

func trCompareGraphs(t *testing.T, name string, got, want *graph.Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("%s: %d vertices, want %d", name, got.NumVertices(), want.NumVertices())
	}
	for u := 0; u < want.NumVertices(); u++ {
		for v := u + 1; v < want.NumVertices(); v++ {
			if got.HasEdge(u, v) != want.HasEdge(u, v) {
				t.Fatalf("%s: edge (%d,%d) incremental=%v batch=%v", name, u, v, got.HasEdge(u, v), want.HasEdge(u, v))
			}
		}
	}
}

// finalTables builds the ER and core λ tables the center would use for n
// vertices with dynamic defaults.
func finalTables(t *testing.T, n int) (*LambdaTable, *LambdaTable) {
	t.Helper()
	rowPairs := trTestArrays * trTestArrays
	er, err := NewLambdaTable(trTestBits, PStarForEdgeProbability(0.5/float64(n), rowPairs))
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewLambdaTable(trTestBits, PStarForEdgeProbability(8/float64(n), rowPairs))
	if err != nil {
		t.Fatal(err)
	}
	return er, core
}

func TestTrackerMatchesBatchSingleEpoch(t *testing.T) {
	rng := stats.NewRand(31)
	const routers = 12
	digests := make([]*Digest, routers)
	order := make([]MemberRef, routers)
	for r := range digests {
		digests[r] = trDigest(rng, r, 1+r%3)
		order[r] = MemberRef{Epoch: 1, Router: r}
	}
	// Correlate a few vertex pairs, including an intra-router group pair.
	trPlantShared(rng, digests[0], digests[5], 0, 1)
	trPlantShared(rng, digests[2], digests[2], 0, 1)
	trPlantShared(rng, digests[7], digests[11], 0, 0)

	tr := NewTracker(TrackerConfig{Reach: 1})
	for _, d := range digests {
		tr.Add(1, d)
	}
	if !tr.Snapshot(order).Usable() {
		t.Fatal("well-formed span flagged unusable")
	}
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	er, core := finalTables(t, gm.NumVertices())
	for _, tc := range []struct {
		name  string
		table *LambdaTable
	}{{"er", er}, {"core", core}} {
		want := trBatchGraph(t, digests, tc.table)
		got := trIncGraph(tr, order, tc.table)
		trCompareGraphs(t, tc.name, got, want)
		if want.NumEdges() == 0 {
			t.Fatalf("%s: reference graph has no edges, test is vacuous", tc.name)
		}
	}
}

func TestTrackerRetraction(t *testing.T) {
	rng := stats.NewRand(32)
	const routers = 8
	digests := make([]*Digest, routers)
	order := make([]MemberRef, routers)
	for r := range digests {
		digests[r] = trDigest(rng, r, 2)
		order[r] = MemberRef{Epoch: 4, Router: r}
	}
	trPlantShared(rng, digests[1], digests[6], 1, 0)

	tr := NewTracker(TrackerConfig{Reach: 1})
	for _, d := range digests {
		tr.Add(4, d)
	}
	// Replace router 3 with a fresh digest (same group count) and router 6
	// with one correlated to router 2 instead.
	repl3 := trDigest(rng, 3, 2)
	repl6 := trDigest(rng, 6, 2)
	trPlantShared(rng, digests[2], repl6, 0, 1)
	for _, rep := range []struct {
		r int
		d *Digest
	}{{3, repl3}, {6, repl6}} {
		tr.Remove(4, rep.r)
		tr.Add(4, rep.d)
		digests[rep.r] = rep.d
	}

	if !tr.Snapshot(order).Usable() {
		t.Fatal("span unusable after same-shape replacement")
	}
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	er, _ := finalTables(t, gm.NumVertices())
	trCompareGraphs(t, "after-retraction", trIncGraph(tr, order, er), trBatchGraph(t, digests, er))
}

func TestTrackerCrossEpoch(t *testing.T) {
	rng := stats.NewRand(33)
	tr := NewTracker(TrackerConfig{Reach: 2})
	var digests []*Digest
	var order []MemberRef
	for _, ep := range []int{1, 2} {
		for r := 0; r < 5; r++ {
			d := trDigest(rng, r, 2)
			tr.Add(ep, d)
			digests = append(digests, d)
			order = append(order, MemberRef{Epoch: ep, Router: r})
		}
	}
	// Correlate across the boundary: epoch 1 router 4 with epoch 2 router 0.
	trPlantShared(rng, digests[4], digests[5], 0, 1)
	// Planting mutated rows after Add, so rebuild those two members the way
	// the center would on replacement.
	for _, i := range []int{4, 5} {
		tr.Remove(order[i].Epoch, order[i].Router)
		tr.Add(order[i].Epoch, digests[i])
	}

	if !tr.Snapshot(order).Usable() {
		t.Fatal("cross-epoch span unusable")
	}
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	er, core := finalTables(t, gm.NumVertices())
	wantER := trBatchGraph(t, digests, er)
	trCompareGraphs(t, "cross-er", trIncGraph(tr, order, er), wantER)
	trCompareGraphs(t, "cross-core", trIncGraph(tr, order, core), trBatchGraph(t, digests, core))

	// The planted cross-epoch edge joins vertex 9 (epoch 1 router 4, group 0;
	// routers 0..4 with 2 groups each, so base of member 4 is 8) with vertex
	// 10 (epoch 2 router 0 group 1 is 10+1... assert via the reference).
	if wantER.NumEdges() == 0 {
		t.Fatal("no cross-epoch edge in reference graph")
	}

	// Retiring epoch 1 drops its members and every pair touching it, and the
	// byte ledger returns to exactly the epoch-2-only footprint.
	tr.DropEpoch(1)
	tr.DropEpoch(2)
	if tr.Bytes() != 0 {
		t.Fatalf("ledger leaks %d bytes after dropping all epochs", tr.Bytes())
	}
	if len(tr.pairs) != 0 || len(tr.members) != 0 {
		t.Fatalf("state leaks after dropping all epochs: %d members, %d pairs", len(tr.members), len(tr.pairs))
	}
}

func TestTrackerFallbackFlags(t *testing.T) {
	rng := stats.NewRand(34)

	// A malformed digest (empty group) poisons spans containing it.
	tr := NewTracker(TrackerConfig{Reach: 1})
	good := trDigest(rng, 0, 2)
	bad := &Digest{RouterID: 1, Rows: [][]*bitvec.Vector{{}}}
	tr.Add(1, good)
	tr.Add(1, bad)
	if tr.Snapshot([]MemberRef{{1, 0}, {1, 1}}).Usable() {
		t.Fatal("span with empty-group digest usable")
	}
	if !tr.Snapshot([]MemberRef{{1, 0}}).Usable() {
		t.Fatal("span excluding the bad digest unusable")
	}

	// A replacement with fewer groups breaks the vertex-count lower bound;
	// the whole epoch must fall back.
	tr2 := NewTracker(TrackerConfig{Reach: 1})
	tr2.Add(2, trDigest(rng, 0, 3))
	tr2.Add(2, trDigest(rng, 1, 2))
	tr2.Remove(2, 0)
	tr2.Add(2, trDigest(rng, 0, 2))
	if tr2.Snapshot([]MemberRef{{2, 0}, {2, 1}}).Usable() {
		t.Fatal("epoch that shrank below its vertex high-water mark still usable")
	}

	// Mixed widths across members poison the span.
	tr3 := NewTracker(TrackerConfig{Reach: 1})
	tr3.Add(3, trDigest(rng, 0, 2))
	narrow := &Digest{RouterID: 1, Rows: [][]*bitvec.Vector{{bitvec.New(64), bitvec.New(64)}}}
	tr3.Add(3, narrow)
	if tr3.Snapshot([]MemberRef{{3, 0}, {3, 1}}).Usable() {
		t.Fatal("mixed-width span usable")
	}
}
