package unaligned

import (
	"testing"

	"dcstream/internal/bitvec"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func testCfg() CollectorConfig {
	return CollectorConfig{
		Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
		SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
		HashSeed: 77,
	}
}

func TestCollectorConfigValidation(t *testing.T) {
	for _, mutate := range []func(*CollectorConfig){
		func(c *CollectorConfig) { c.Groups = 0 },
		func(c *CollectorConfig) { c.ArraysPerGroup = -1 },
		func(c *CollectorConfig) { c.ArrayBits = 0 },
		func(c *CollectorConfig) { c.SegmentSize = 0 },
		func(c *CollectorConfig) { c.FragmentLen = 200 },
		func(c *CollectorConfig) { c.MinPayload = -1 },
	} {
		cfg := testCfg()
		mutate(&cfg)
		if _, err := NewCollector(cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestCollectorOffsetsInRange(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		cfg := testCfg()
		cfg.OffsetSeed = seed
		c, err := NewCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(c.Offsets()) != cfg.ArraysPerGroup {
			t.Fatalf("%d offsets want %d", len(c.Offsets()), cfg.ArraysPerGroup)
		}
		for _, o := range c.Offsets() {
			if o < 0 || o > cfg.SegmentSize-cfg.FragmentLen {
				t.Fatalf("offset %d outside [0,%d]", o, cfg.SegmentSize-cfg.FragmentLen)
			}
		}
	}
}

func TestCollectorSkipsSmallPayloads(t *testing.T) {
	c, _ := NewCollector(testCfg())
	c.Update(packet.Packet{Flow: 1, Payload: make([]byte, 39)})
	if c.Packets() != 0 || c.Skipped() != 1 {
		t.Fatalf("packets=%d skipped=%d", c.Packets(), c.Skipped())
	}
	c.Update(packet.Packet{Flow: 1, Payload: make([]byte, 40)})
	if c.Packets() != 1 {
		t.Fatal("packet at MinPayload boundary dropped")
	}
}

func TestCollectorFlowSplitting(t *testing.T) {
	// All packets of one flow must land in exactly one group; packets of
	// many flows must spread across groups.
	cfg := testCfg()
	c, _ := NewCollector(cfg)
	rng := stats.NewRand(3)
	payload := make([]byte, 100)
	for i := 0; i < 50; i++ {
		rng.Read(payload)
		c.Update(packet.Packet{Flow: 42, Payload: append([]byte(nil), payload...)})
	}
	d := c.Digest(0)
	nonEmpty := 0
	for g := range d.Rows {
		ones := 0
		for _, r := range d.Rows[g] {
			ones += r.OnesCount()
		}
		if ones > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one flow touched %d groups, want 1", nonEmpty)
	}

	c.Reset()
	for i := 0; i < 400; i++ {
		rng.Read(payload)
		c.Update(packet.Packet{Flow: packet.FlowLabel(i), Payload: append([]byte(nil), payload...)})
	}
	d = c.Digest(0)
	nonEmpty = 0
	for g := range d.Rows {
		if d.Rows[g][0].OnesCount() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != cfg.Groups {
		t.Fatalf("%d/%d groups active under many flows", nonEmpty, cfg.Groups)
	}
}

func TestCollectorDigestAndReset(t *testing.T) {
	c, _ := NewCollector(testCfg())
	c.Update(packet.Packet{Flow: 1, Payload: make([]byte, 100)})
	d := c.Digest(7)
	if d.RouterID != 7 {
		t.Fatal("router id lost")
	}
	// Digest is a snapshot: mutating the collector must not change it.
	before := 0
	for _, g := range d.Rows {
		for _, r := range g {
			before += r.OnesCount()
		}
	}
	c.Reset()
	after := 0
	for _, g := range d.Rows {
		for _, r := range g {
			after += r.OnesCount()
		}
	}
	if before == 0 || before != after {
		t.Fatalf("digest not independent: before=%d after=%d", before, after)
	}
	if c.FillRatio() != 0 || c.Packets() != 0 {
		t.Fatal("Reset incomplete")
	}
}

// TestCollectorOffsetCongruence is the §IV-A mechanism end-to-end: two
// routers see the same content with different prefix lengths. An array pair
// (i at router 1, j at router 2) shares ≈g common ones exactly when
// o1[i] - l1 ≡ o2[j] - l2 within the valid offset span.
func TestCollectorOffsetCongruence(t *testing.T) {
	cfg := testCfg()
	cfg.Groups = 1 // force everything into one group for direct comparison
	rng := stats.NewRand(9)
	content := trafficgen.NewContent(rng, 60, cfg.SegmentSize)

	c1cfg, c2cfg := cfg, cfg
	c1cfg.OffsetSeed, c2cfg.OffsetSeed = 1001, 2002
	c1, _ := NewCollector(c1cfg)
	c2, _ := NewCollector(c2cfg)

	const l1, l2 = 13, 57
	prefix := make([]byte, cfg.SegmentSize)
	rng.Read(prefix)
	for _, p := range packet.Instance(5, content.Data, prefix, l1, cfg.SegmentSize) {
		c1.Update(p)
	}
	for _, p := range packet.Instance(6, content.Data, prefix, l2, cfg.SegmentSize) {
		c2.Update(p)
	}
	d1, d2 := c1.Digest(1), c2.Digest(2)

	mod := func(x int) int { return ((x % cfg.SegmentSize) + cfg.SegmentSize) % cfg.SegmentSize }
	for i, o1 := range c1.Offsets() {
		for j, o2 := range c2.Offsets() {
			// Congruence: both fragments read the same content-relative
			// bytes when (o1 - l1) ≡ (o2 - l2) mod segment size.
			congruent := mod(o1-l1-o2+l2) == 0
			overlap := bitvec.AndCount(d1.Rows[0][i], d2.Rows[0][j])
			// Incongruent arrays still share ≈ 60·60/512 ≈ 7 ones by chance;
			// 25 cleanly separates chance from the ≈60-one matched overlap.
			if congruent && overlap < 50 {
				t.Errorf("arrays (%d,%d) congruent (o1=%d,o2=%d) but overlap only %d", i, j, o1, o2, overlap)
			}
			if !congruent && overlap > 25 {
				t.Errorf("arrays (%d,%d) incongruent (o1=%d,o2=%d) but overlap %d", i, j, o1, o2, overlap)
			}
		}
	}
}

// TestCollectorMatchProbability measures the k² amplification across many
// router pairs against the 1-exp(-k²/span) prediction.
func TestCollectorMatchProbability(t *testing.T) {
	cfg := testCfg()
	cfg.Groups = 1
	rng := stats.NewRand(10)
	content := trafficgen.NewContent(rng, 60, cfg.SegmentSize)
	prefix := make([]byte, cfg.SegmentSize)
	rng.Read(prefix)

	const pairs = 120
	matches := 0
	for trial := 0; trial < pairs; trial++ {
		aCfg, bCfg := cfg, cfg
		aCfg.OffsetSeed = uint64(3000 + 2*trial)
		bCfg.OffsetSeed = uint64(3001 + 2*trial)
		a, _ := NewCollector(aCfg)
		b, _ := NewCollector(bCfg)
		la, lb := rng.Intn(cfg.SegmentSize), rng.Intn(cfg.SegmentSize)
		for _, p := range packet.Instance(1, content.Data, prefix, la, cfg.SegmentSize) {
			a.Update(p)
		}
		for _, p := range packet.Instance(2, content.Data, prefix, lb, cfg.SegmentSize) {
			b.Update(p)
		}
		da, db := a.Digest(0), b.Digest(1)
		best := 0
		for _, ra := range da.Rows[0] {
			for _, rb := range db.Rows[0] {
				if c := bitvec.AndCount(ra, rb); c > best {
					best = c
				}
			}
		}
		if best >= 40 { // a real match shares ≈60 ones; noise shares ≈0 here
			matches++
		}
	}
	// Model prediction with k=10 over a ~93-wide effective span: ≈0.63-0.66.
	rate := float64(matches) / pairs
	if rate < 0.45 || rate > 0.85 {
		t.Fatalf("match rate %v, predicted ≈0.65", rate)
	}
}
