package unaligned

import (
	"fmt"
	"sort"

	"dcstream/internal/graph"
)

// FindPatterns extracts multiple disjoint clusters from one induced graph
// (§II-D: one measurement epoch can contain several common contents; the
// paper's algorithm detects the largest and defers sub-cluster separation).
// It runs FindPattern, removes the found vertices, re-runs the ER test on
// the remaining induced subgraph, and repeats while the test still fires
// (or until maxClusters, 0 meaning no limit).
//
// The ER threshold applies to the remaining subgraph at each round, so the
// procedure stops exactly when what is left looks like a subcritical
// Erdős–Rényi graph again — the "remaining graph becomes more noisy" stop
// the paper describes.
func FindPatterns(g *graph.Graph, cfg PatternConfig, erThreshold, maxClusters int) ([][]int, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if erThreshold <= 0 {
		return nil, fmt.Errorf("unaligned: ER threshold must be positive, got %d", erThreshold)
	}
	// origID maps the working graph's vertex ids back to g's.
	work := g
	origID := make([]int, g.NumVertices())
	for i := range origID {
		origID[i] = i
	}
	var out [][]int
	for maxClusters == 0 || len(out) < maxClusters {
		if !ERTest(work, erThreshold).PatternDetected {
			break
		}
		found, err := FindPattern(work, cfg)
		if err != nil {
			return nil, err
		}
		if len(found) == 0 {
			break
		}
		cluster := make([]int, 0, len(found))
		inFound := make(map[int]bool, len(found))
		for _, v := range found {
			cluster = append(cluster, origID[v])
			inFound[v] = true
		}
		sort.Ints(cluster)
		out = append(out, cluster)

		// Remove the cluster and continue on the rest.
		keep := make([]int, 0, work.NumVertices()-len(found))
		for v := 0; v < work.NumVertices(); v++ {
			if !inFound[v] {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			break
		}
		sub, subOrig := work.Induced(keep)
		next := make([]int, len(subOrig))
		for i, v := range subOrig {
			next[i] = origID[v]
		}
		work, origID = sub, next
	}
	return out, nil
}
