package unaligned

import (
	"testing"

	"dcstream/internal/graph"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
)

// plantCluster adds a dense subgraph over a fresh vertex set and returns it.
func plantCluster(rng interface {
	Float64() float64
	Intn(int) int
}, g *graph.Graph, used map[int]bool, size int, p float64) []int {
	var verts []int
	for len(verts) < size {
		v := rng.Intn(g.NumVertices())
		if !used[v] {
			used[v] = true
			verts = append(verts, v)
		}
	}
	for i := 0; i < len(verts); i++ {
		for j := i + 1; j < len(verts); j++ {
			if rng.Float64() < p {
				g.AddEdge(verts[i], verts[j])
			}
		}
	}
	return verts
}

func TestFindPatternsTwoClusters(t *testing.T) {
	rng := stats.NewRand(70)
	const n = 20000
	g := graph.GNP(rng, n, 0.5/n)
	used := map[int]bool{}
	a := plantCluster(rng, g, used, 90, 0.25)
	b := plantCluster(rng, g, used, 60, 0.25)

	clusters, err := FindPatterns(g, PatternConfig{Beta: 30, D: 3}, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) < 2 {
		t.Fatalf("found %d clusters want >=2", len(clusters))
	}
	overlap := func(cluster, truth []int) int {
		set := map[int]bool{}
		for _, v := range truth {
			set[v] = true
		}
		c := 0
		for _, v := range cluster {
			if set[v] {
				c++
			}
		}
		return c
	}
	// The first cluster (largest component peeled first) should be mostly A,
	// the second mostly B — but order is not guaranteed, so match by best fit.
	gotA, gotB := false, false
	for _, cl := range clusters[:2] {
		if overlap(cl, a) > len(cl)*2/3 {
			gotA = true
		}
		if overlap(cl, b) > len(cl)*2/3 {
			gotB = true
		}
	}
	if !gotA || !gotB {
		t.Fatalf("clusters not separated: A=%v B=%v (sizes %d, %d)",
			gotA, gotB, len(clusters[0]), len(clusters[1]))
	}
	// Clusters must be disjoint.
	seen := map[int]bool{}
	for _, cl := range clusters {
		for _, v := range cl {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
		}
	}
}

func TestFindPatternsStopsOnNoise(t *testing.T) {
	rng := stats.NewRand(71)
	const n = 10000
	g := graph.GNP(rng, n, 0.5/n)
	clusters, err := FindPatterns(g, PatternConfig{Beta: 20, D: 3}, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Fatalf("noise graph yielded %d clusters", len(clusters))
	}
}

func TestFindPatternsRespectsLimit(t *testing.T) {
	rng := stats.NewRand(72)
	const n = 10000
	g := graph.GNP(rng, n, 0.5/n)
	used := map[int]bool{}
	plantCluster(rng, g, used, 80, 0.3)
	plantCluster(rng, g, used, 80, 0.3)
	clusters, err := FindPatterns(g, PatternConfig{Beta: 30, D: 3}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("limit ignored: %d clusters", len(clusters))
	}
}

func TestFindPatternsValidation(t *testing.T) {
	g := graph.New(10)
	if _, err := FindPatterns(g, PatternConfig{Beta: 0, D: 1}, 5, 0); err == nil {
		t.Fatal("bad pattern config accepted")
	}
	if _, err := FindPatterns(g, PatternConfig{Beta: 2, D: 1}, 0, 0); err == nil {
		t.Fatal("zero ER threshold accepted")
	}
}

func TestLargePayloadDualOffsets(t *testing.T) {
	cfg := CollectorConfig{
		Groups: 1, ArraysPerGroup: 5, ArrayBits: 4096,
		SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
		LargePayload: 200, HashSeed: 3, OffsetSeed: 5,
	}
	c, err := NewCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(6)
	small := make([]byte, 100)
	large := make([]byte, 250)
	rng.Read(small)
	rng.Read(large)

	c.Update(mkPacket(1, small))
	smallOnes := 0
	for _, r := range c.Digest(0).Rows[0] {
		smallOnes += r.OnesCount()
	}
	c.Reset()
	c.Update(mkPacket(1, large))
	largeOnes := 0
	for _, r := range c.Digest(0).Rows[0] {
		largeOnes += r.OnesCount()
	}
	// A small packet sets ≤1 bit per array; a large one up to 2 per array.
	if smallOnes > cfg.ArraysPerGroup {
		t.Fatalf("small packet set %d bits across %d arrays", smallOnes, cfg.ArraysPerGroup)
	}
	if largeOnes <= smallOnes || largeOnes > 2*cfg.ArraysPerGroup {
		t.Fatalf("large packet set %d bits (small set %d)", largeOnes, smallOnes)
	}
}

func TestLargePayloadValidation(t *testing.T) {
	cfg := testCfg()
	cfg.LargePayload = -1
	if _, err := NewCollector(cfg); err == nil {
		t.Fatal("negative LargePayload accepted")
	}
}

// mkPacket builds a packet without importing the packet package name into
// every call site.
func mkPacket(flow uint64, payload []byte) packet.Packet {
	return packet.Packet{Flow: packet.FlowLabel(flow), Payload: payload}
}
