package unaligned

import (
	"math"
	"runtime"
	"testing"

	"dcstream/internal/bitvec"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func TestLambdaTableBasics(t *testing.T) {
	lt, err := NewLambdaTable(1024, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if lt.N() != 1024 || lt.PStar() != 1e-7 {
		t.Fatal("accessors wrong")
	}
	l1 := lt.Threshold(512, 512)
	if l1 != stats.HyperThreshold(1024, 512, 512, 1e-7) {
		t.Fatal("threshold differs from direct computation")
	}
	// Symmetry and memoization.
	if lt.Threshold(300, 500) != lt.Threshold(500, 300) {
		t.Fatal("λ not symmetric")
	}
	// Heavier rows must need a larger threshold.
	if lt.Threshold(600, 600) <= lt.Threshold(400, 400) {
		t.Fatal("λ not monotone in row weights")
	}
	// Tail property: exceeding λ has probability ≤ p*, and λ is minimal.
	for _, w := range []struct{ i, j int }{{512, 512}, {300, 700}, {100, 100}} {
		l := lt.Threshold(w.i, w.j)
		if s := stats.HyperSurvival(l, 1024, w.i, w.j); s > 1e-7 {
			t.Fatalf("λ(%d,%d)=%d has tail %v", w.i, w.j, l, s)
		}
	}
}

func TestLambdaTableValidation(t *testing.T) {
	if _, err := NewLambdaTable(0, 0.5); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewLambdaTable(10, 0); err == nil {
		t.Fatal("pstar=0 accepted")
	}
	if _, err := NewLambdaTable(10, 1); err == nil {
		t.Fatal("pstar=1 accepted")
	}
}

func TestPStarConversions(t *testing.T) {
	for _, p1 := range []float64{1e-8, 1e-5, 0.01, 0.3} {
		ps := PStarForEdgeProbability(p1, 100)
		back := EdgeProbabilityForPStar(ps, 100)
		if math.Abs(back-p1)/p1 > 1e-6 {
			t.Fatalf("round trip %v -> %v -> %v", p1, ps, back)
		}
	}
	if PStarForEdgeProbability(0, 100) != 0 || PStarForEdgeProbability(0.5, 0) != 0 {
		t.Fatal("degenerate conversions should be 0")
	}
}

func TestMergeValidation(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	d := &Digest{RouterID: 0, Rows: [][]*bitvec.Vector{
		{bitvec.New(64), bitvec.New(64)},
		{bitvec.New(64), bitvec.New(128)}, // inconsistent width
	}}
	if _, err := Merge([]*Digest{d}); err == nil {
		t.Fatal("inconsistent widths accepted")
	}
	// Mixed array counts (different k) would skew the λ-table row-pair
	// count the ER test is calibrated for; Merge must reject them whether
	// the raggedness is within one router or across routers.
	ragged := &Digest{RouterID: 1, Rows: [][]*bitvec.Vector{
		{bitvec.New(64), bitvec.New(64)},
		{bitvec.New(64)}, // group 1 has k=1, group 0 has k=2
	}}
	if _, err := Merge([]*Digest{ragged}); err == nil {
		t.Fatal("mixed array counts within one digest accepted")
	}
	uniform2 := &Digest{RouterID: 2, Rows: [][]*bitvec.Vector{{bitvec.New(64), bitvec.New(64)}}}
	uniform3 := &Digest{RouterID: 3, Rows: [][]*bitvec.Vector{{bitvec.New(64), bitvec.New(64), bitvec.New(64)}}}
	if _, err := Merge([]*Digest{uniform2, uniform3}); err == nil {
		t.Fatal("mixed-k digests across routers accepted")
	}
	gm, err := Merge([]*Digest{uniform2, uniform2})
	if err != nil {
		t.Fatal(err)
	}
	if gm.ArraysPerGroup() != 2 {
		t.Fatalf("ArraysPerGroup=%d, want 2", gm.ArraysPerGroup())
	}
}

func TestMergeVertices(t *testing.T) {
	mk := func(router int, groups int) *Digest {
		d := &Digest{RouterID: router, Rows: make([][]*bitvec.Vector, groups)}
		for g := range d.Rows {
			d.Rows[g] = []*bitvec.Vector{bitvec.New(64)}
		}
		return d
	}
	gm, err := Merge([]*Digest{mk(10, 2), mk(20, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if gm.NumVertices() != 5 || gm.ArrayBits() != 64 {
		t.Fatalf("vertices=%d bits=%d", gm.NumVertices(), gm.ArrayBits())
	}
	if v := gm.Vertex(0); v.RouterID != 10 || v.Group != 0 {
		t.Fatalf("vertex 0 = %+v", v)
	}
	if v := gm.Vertex(4); v.RouterID != 20 || v.Group != 2 {
		t.Fatalf("vertex 4 = %+v", v)
	}
}

func TestBuildGraphNullEdgeRate(t *testing.T) {
	// Random half-full rows with a λ table targeting p1: the realized edge
	// count should be near p1·C(n,2).
	rng := stats.NewRand(11)
	const vertices = 60
	const bits = 512
	var digests []*Digest
	for r := 0; r < vertices; r++ {
		row := bitvec.New(bits)
		row.FillRandomHalf(rng.Uint64)
		row2 := bitvec.New(bits)
		row2.FillRandomHalf(rng.Uint64)
		digests = append(digests, &Digest{
			RouterID: r,
			Rows:     [][]*bitvec.Vector{{row, row2}},
		})
	}
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	const p1 = 0.05
	lt, _ := NewLambdaTable(bits, PStarForEdgeProbability(p1, 4))
	g, err := gm.BuildGraph(lt)
	if err != nil {
		t.Fatal(err)
	}
	pairs := vertices * (vertices - 1) / 2
	mean := p1 * float64(pairs)
	if got := float64(g.NumEdges()); got < mean*0.3 || got > mean*2.5 {
		t.Fatalf("null edges %v, expected ≈%v", got, mean)
	}
}

func TestBuildGraphWidthMismatch(t *testing.T) {
	gm, _ := Merge([]*Digest{{RouterID: 0, Rows: [][]*bitvec.Vector{{bitvec.New(64)}}}})
	lt, _ := NewLambdaTable(128, 1e-3)
	if _, err := gm.BuildGraph(lt); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if _, _, err := gm.BuildGraphSampled(lt, []int{0}); err == nil {
		t.Fatal("sampled width mismatch accepted")
	}
}

func TestBuildGraphSampled(t *testing.T) {
	rng := stats.NewRand(12)
	var digests []*Digest
	for r := 0; r < 30; r++ {
		row := bitvec.New(256)
		row.FillRandomHalf(rng.Uint64)
		digests = append(digests, &Digest{RouterID: r, Rows: [][]*bitvec.Vector{{row}}})
	}
	gm, _ := Merge(digests)
	lt, _ := NewLambdaTable(256, 1e-2)
	sample := []int{3, 7, 11, 20}
	g, orig, err := gm.BuildGraphSampled(lt, sample)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || len(orig) != 4 || orig[2] != 11 {
		t.Fatalf("sampled graph %d vertices, orig=%v", g.NumVertices(), orig)
	}
	if _, _, err := gm.BuildGraphSampled(lt, []int{99}); err == nil {
		t.Fatal("out-of-range sample accepted")
	}
}

func TestERTest(t *testing.T) {
	rng := stats.NewRand(13)
	model := Model{N: 5000, ArrayBits: 1024}
	p1 := 0.5 / 5000
	null := model.SampleNull(rng, p1)
	res := ERTest(null, 60)
	if res.PatternDetected {
		t.Fatalf("false positive: largest component %d", res.LargestComponent)
	}
	planted, _ := model.SamplePlanted(rng, p1, 0.2, 100)
	res = ERTest(planted, 60)
	if !res.PatternDetected {
		t.Fatalf("false negative: largest component %d", res.LargestComponent)
	}
	if res.Threshold != 60 {
		t.Fatal("threshold not recorded")
	}
}

func TestFindPatternRecovers(t *testing.T) {
	rng := stats.NewRand(14)
	model := Model{N: 20000, ArrayBits: 1024}
	const n1 = 120
	g, pattern := model.SamplePlanted(rng, 0.65e-5*5, 0.17, n1)
	found, err := FindPattern(g, PatternConfig{Beta: 60, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	inPattern := map[int]bool{}
	for _, v := range pattern {
		inPattern[v] = true
	}
	tp := 0
	for _, v := range found {
		if inPattern[v] {
			tp++
		}
	}
	fp := len(found) - tp
	if tp < n1/2 {
		t.Fatalf("recovered %d/%d pattern vertices", tp, n1)
	}
	if float64(fp) > 0.15*float64(len(found)) {
		t.Fatalf("%d false positives among %d found", fp, len(found))
	}
}

func TestFindPatternValidation(t *testing.T) {
	model := Model{N: 100, ArrayBits: 64}
	g := model.SampleNull(stats.NewRand(1), 0.01)
	if _, err := FindPattern(g, PatternConfig{Beta: 0, D: 1}); err == nil {
		t.Fatal("Beta=0 accepted")
	}
	if _, err := FindPattern(g, PatternConfig{Beta: 5, D: 0}); err == nil {
		t.Fatal("D=0 accepted")
	}
}

func TestModelBasics(t *testing.T) {
	m := Model{N: 102400, ArrayBits: 1024}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// k=10 offsets over a 536 span: 1-exp(-100/536) ≈ 0.170.
	if pm := m.MatchProbability(); math.Abs(pm-0.1703) > 0.002 {
		t.Fatalf("match probability %v want ≈0.17", pm)
	}
	// Effective signal is slightly below g and increasing.
	if s := m.EffectiveSignal(100); s < 90 || s >= 100 {
		t.Fatalf("effective signal %v for g=100", s)
	}
	if m.EffectiveSignal(200) <= m.EffectiveSignal(100) {
		t.Fatal("effective signal not increasing")
	}
	if pt := m.PhaseTransition(); math.Abs(pt-1.0/102400) > 1e-12 {
		t.Fatalf("phase transition %v", pt)
	}
	bad := Model{N: 1, ArrayBits: 1024}
	if bad.Validate() == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestEdgeProbabilitiesMonotoneInG(t *testing.T) {
	// With the fill that makes the paper's operating point exact (≈0.3),
	// longer content must raise p2 while p1 stays fixed.
	m := Model{N: 102400, ArrayBits: 1024, RowWeight: 307}
	pstar := PStarForEdgeProbability(0.65e-5, 100)
	prev := 0.0
	for _, g := range []int{40, 60, 80, 100, 120} {
		p1, p2 := m.EdgeProbabilities(pstar, g)
		if math.Abs(p1-0.65e-5)/0.65e-5 > 0.01 {
			t.Fatalf("p1 drifted to %v", p1)
		}
		if p2 < prev {
			t.Fatalf("p2 not monotone at g=%d: %v after %v", g, p2, prev)
		}
		prev = p2
	}
	// At the operating point, p2 approaches the match probability.
	_, p2 := m.EdgeProbabilities(pstar, 100)
	if p2 < 0.15 || p2 > 0.18 {
		t.Fatalf("p2=%v at g=100, want ≈0.17", p2)
	}
}

func TestMinClusterShape(t *testing.T) {
	model := Model{N: 102400, ArrayBits: 1024, RowWeight: 410}
	cfg := ClusterSearchConfig{Model: model, MaxM: 400}
	prev := 1 << 30
	for _, g := range []int{90, 110, 130, 150} {
		b, err := MinCluster(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		if b.M <= 1 {
			t.Fatalf("g=%d: no bound found", g)
		}
		if b.M > prev {
			t.Fatalf("minimum cluster size not decreasing: g=%d m=%d after %d", g, b.M, prev)
		}
		prev = b.M
		if err := ValidateBound(cfg, b); err != nil {
			t.Fatalf("g=%d: %v", g, err)
		}
	}
}

func TestMinClusterRejectsBadModel(t *testing.T) {
	if _, err := MinCluster(ClusterSearchConfig{Model: Model{N: 0, ArrayBits: 0}}, 100); err == nil {
		t.Fatal("bad model accepted")
	}
}

// TestEndToEndUnalignedPipeline drives the full bitmap-level system at
// reduced scale: 20 routers × 4 groups, unaligned content planted at 12
// routers, arrays run to ≈30% fill; the induced graph must pass the ER test
// and FindPattern must recover the content-carrying vertices.
func TestEndToEndUnalignedPipeline(t *testing.T) {
	cfg := testCfg() // 4 groups × 10 arrays × 512 bits, segment 100
	const routers = 20
	const carriers = 12
	rng := stats.NewRand(15)
	content := trafficgen.NewContent(rng, 60, cfg.SegmentSize)
	prefix := make([]byte, cfg.SegmentSize)
	rng.Read(prefix)

	var digests []*Digest
	carrierVertex := map[Vertex]bool{}
	for r := 0; r < routers; r++ {
		rcfg := cfg
		rcfg.OffsetSeed = uint64(100 + r)
		c, err := NewCollector(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		// Background to ≈30% fill: each packet sets ≤1 bit per array; with
		// 4 groups and 512-bit arrays, ≈183 packets per group suffice.
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 183 * cfg.Groups, SegmentSize: cfg.SegmentSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range bg {
			c.Update(p)
		}
		if r < carriers {
			flow := packet.FlowLabel(1 << 50)
			l := rng.Intn(cfg.SegmentSize)
			for _, p := range packet.Instance(flow, content.Data, prefix, l, cfg.SegmentSize) {
				c.Update(p)
			}
			carrierVertex[Vertex{RouterID: r, Group: c.GroupOf(flow)}] = true
		}
		digests = append(digests, c.Digest(r))
	}

	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	n := gm.NumVertices()
	if n != routers*cfg.Groups {
		t.Fatalf("%d vertices want %d", n, routers*cfg.Groups)
	}
	p1 := 0.5 / float64(n)
	lt, _ := NewLambdaTable(cfg.ArrayBits, PStarForEdgeProbability(p1, cfg.ArraysPerGroup*cfg.ArraysPerGroup))
	g, err := gm.BuildGraph(lt)
	if err != nil {
		t.Fatal(err)
	}
	res := ERTest(g, carriers/2)
	if !res.PatternDetected {
		t.Fatalf("ER test missed the pattern: largest component %d", res.LargestComponent)
	}

	found, err := FindPattern(g, PatternConfig{Beta: carriers / 2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	tp, fp := 0, 0
	for _, v := range found {
		if carrierVertex[gm.Vertex(v)] {
			tp++
		} else {
			fp++
		}
	}
	if tp < carriers/2 {
		t.Fatalf("recovered %d/%d carrier vertices (found %d total)", tp, carriers, len(found))
	}
	if fp > tp {
		t.Fatalf("too many false positives: %d tp, %d fp", tp, fp)
	}
}

func TestBuildGraphParallelMatchesSerial(t *testing.T) {
	rng := stats.NewRand(16)
	var digests []*Digest
	for r := 0; r < 40; r++ {
		rows := make([]*bitvec.Vector, 3)
		for a := range rows {
			rows[a] = bitvec.New(256)
			rows[a].FillRandomHalf(rng.Uint64)
		}
		digests = append(digests, &Digest{RouterID: r, Rows: [][]*bitvec.Vector{rows}})
	}
	gm, err := Merge(digests)
	if err != nil {
		t.Fatal(err)
	}
	lt, _ := NewLambdaTable(256, 5e-3)
	serial, err := gm.BuildGraph(lt)
	if err != nil {
		t.Fatal(err)
	}
	// Beyond small fixed counts, cover the clamp paths: 0 (GOMAXPROCS
	// default), negative (serial fallback), GOMAXPROCS itself, and a count
	// far above the vertex total.
	for _, workers := range []int{1, 2, 3, 8, 0, -4, runtime.GOMAXPROCS(0), 1 << 16} {
		par, err := gm.BuildGraphParallel(lt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.NumEdges() != serial.NumEdges() {
			t.Fatalf("workers=%d: %d edges vs serial %d", workers, par.NumEdges(), serial.NumEdges())
		}
		for u := 0; u < serial.NumVertices(); u++ {
			for _, v := range serial.Neighbors(u) {
				if !par.HasEdge(u, int(v)) {
					t.Fatalf("workers=%d: missing edge (%d,%d)", workers, u, v)
				}
			}
		}
	}
	lt2, _ := NewLambdaTable(128, 5e-3)
	if _, err := gm.BuildGraphParallel(lt2, 4); err == nil {
		t.Fatal("width mismatch accepted in parallel path")
	}
}

// TestQuickFindPatternInvariants fuzzes graph shapes: the result must be
// sorted, duplicate-free, within range, and contain the full first core.
func TestQuickFindPatternInvariants(t *testing.T) {
	rng := stats.NewRand(17)
	for trial := 0; trial < 15; trial++ {
		n := 50 + rng.Intn(500)
		model := Model{N: n, ArrayBits: 256}
		p1 := (0.5 + rng.Float64()*3) / float64(n)
		g := model.SampleNull(rng, p1)
		if rng.Intn(2) == 0 {
			n1 := 10 + rng.Intn(n/4)
			PlantDenseForTest(rng, g, n1)
		}
		beta := 4 + rng.Intn(20)
		found, err := FindPattern(g, PatternConfig{Beta: beta, D: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		prev := -1
		for _, v := range found {
			if v < 0 || v >= n {
				t.Fatalf("vertex %d out of range [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate vertex %d in result", v)
			}
			if v <= prev {
				t.Fatalf("result not sorted: %v", found)
			}
			seen[v] = true
			prev = v
		}
		if len(found) < beta && g.NumVertices() >= beta {
			t.Fatalf("result %d smaller than core size %d", len(found), beta)
		}
		core := map[int]bool{}
		for _, v := range g.Core(beta) {
			core[v] = true
		}
		for v := range core {
			if !seen[v] {
				t.Fatalf("first core vertex %d missing from result", v)
			}
		}
	}
}
