package unaligned

import (
	"fmt"
	"math"
	"sync"

	"dcstream/internal/stats"
)

// LambdaTable is the paper's Λ = {λ_{i,j}} threshold list (§IV-B): for two
// rows containing i and j ones out of N bits, their overlap X(i,j) under the
// null follows a hypergeometric distribution, and λ_{i,j} is the smallest
// threshold with P[X(i,j) > λ_{i,j}] ≤ p*. Using weight-dependent thresholds
// keeps the edge probability uniform across row pairs even though array
// fills differ, which is what makes the induced graph Erdős–Rényi.
//
// Entries are computed lazily and memoized; a table is safe for concurrent
// readers.
type LambdaTable struct {
	n     int
	pstar float64
	mu    sync.Mutex
	memo  map[uint32]int
}

// NewLambdaTable returns a table for rows of n bits with per-row-pair tail
// probability pstar.
func NewLambdaTable(n int, pstar float64) (*LambdaTable, error) {
	if n <= 0 {
		return nil, fmt.Errorf("unaligned: non-positive row width %d", n)
	}
	if pstar <= 0 || pstar >= 1 {
		return nil, fmt.Errorf("unaligned: pstar %v outside (0,1)", pstar)
	}
	return &LambdaTable{n: n, pstar: pstar, memo: make(map[uint32]int)}, nil
}

// N returns the row width the table was built for.
func (t *LambdaTable) N() int { return t.n }

// PStar returns the per-row-pair tail probability.
func (t *LambdaTable) PStar() float64 { return t.pstar }

// Threshold returns λ_{i,j} for rows with i and j ones. It panics if i or j
// is outside [0, N].
func (t *LambdaTable) Threshold(i, j int) int {
	if i < 0 || i > t.n || j < 0 || j > t.n {
		panic(fmt.Sprintf("unaligned: row weight (%d,%d) outside [0,%d]", i, j, t.n))
	}
	if i > j {
		i, j = j, i // X(i,j) is symmetric in the two weights
	}
	key := uint32(i)<<16 | uint32(j)
	t.mu.Lock()
	v, ok := t.memo[key]
	t.mu.Unlock()
	if ok {
		return v
	}
	v = stats.HyperThreshold(t.n, i, j, t.pstar)
	t.mu.Lock()
	t.memo[key] = v
	t.mu.Unlock()
	return v
}

// PStarForEdgeProbability converts a target per-vertex-pair edge probability
// p1 into the per-row-pair tail p*, given that each vertex pair compares
// rowPairs row combinations: p1 = 1-(1-p*)^rowPairs.
func PStarForEdgeProbability(p1 float64, rowPairs int) float64 {
	if rowPairs <= 0 || p1 <= 0 {
		return 0
	}
	// p* = 1-(1-p1)^{1/rowPairs}; for tiny p1 this is p1/rowPairs, which is
	// also the numerically stable branch.
	if p1 < 1e-6 {
		return p1 / float64(rowPairs)
	}
	return 1 - math.Pow(1-p1, 1/float64(rowPairs))
}

// EdgeProbabilityForPStar is the inverse conversion.
func EdgeProbabilityForPStar(pstar float64, rowPairs int) float64 {
	if rowPairs <= 0 || pstar <= 0 {
		return 0
	}
	if pstar*float64(rowPairs) < 1e-6 {
		return pstar * float64(rowPairs)
	}
	return 1 - math.Pow(1-pstar, float64(rowPairs))
}
