package journal

import (
	"errors"
	"testing"
)

// swapFsyncDir replaces the package fsync hook for the test's duration.
// Journal tests do not run in parallel, so the swap cannot race.
func swapFsyncDir(t *testing.T, fn func(string) error) {
	t.Helper()
	orig := fsyncDir
	fsyncDir = fn
	t.Cleanup(func() { fsyncDir = orig })
}

// TestCrashDirSyncPoints pins the directory-fsync call points: after Open
// (fresh active segment, truncations, sidecar creation), after a rotate
// (new segment name), after a purge (deletions), and after Close removes an
// empty active segment. Before the fix the journal never fsynced its
// directory at all — file contents were durable but the entries naming them
// were not, so a crash could lose a rotated segment or resurrect a purged
// one. This test fails against that version with 0 recorded syncs.
func TestCrashDirSyncPoints(t *testing.T) {
	dir := t.TempDir()
	realSync := fsyncDir
	var syncs int
	swapFsyncDir(t, func(d string) error {
		if d != dir {
			t.Errorf("dir sync aimed at %s, journal lives in %s", d, dir)
		}
		syncs++
		return realSync(d)
	})

	j, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("Open performed %d dir syncs, want 1 (covering the fresh active segment)", syncs)
	}

	if err := j.Append(alignedMsg(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := syncs; got != 1 {
		t.Fatalf("Append alone dir-synced (%d total); only entry mutations need it", got)
	}

	// EpochAnalyzed seals the active segment (one sync for the new segment's
	// entry) and immediately purges it — epoch 1 is analyzed (another sync
	// for the deletion).
	if err := j.EpochAnalyzed(1); err != nil {
		t.Fatal(err)
	}
	if syncs != 3 {
		t.Fatalf("EpochAnalyzed brought dir syncs to %d, want 3 (rotate + purge)", syncs)
	}

	if got := j.Stats().DirSyncs; got != syncs {
		t.Fatalf("Stats reports %d dir syncs, hook saw %d", got, syncs)
	}

	// Close removes the (empty) active segment: one final sync.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs != 4 {
		t.Fatalf("Close brought dir syncs to %d, want 4", syncs)
	}

	// Hard reopen: the purge must have stuck — nothing left to replay.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if got := collectReplay(t, j2); len(got) != 0 {
		t.Fatalf("reopen replayed %d frames from purged epochs, want 0", len(got))
	}
}

// TestCrashDirSyncFailureSurfaces injects fsync failures and checks every
// write-path entry point reports them instead of acknowledging frames whose
// directory entries may not survive a crash.
func TestCrashDirSyncFailureSurfaces(t *testing.T) {
	boom := errors.New("injected dir-sync failure")

	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(alignedMsg(1, 1)); err != nil {
		t.Fatal(err)
	}

	realSync := fsyncDir
	swapFsyncDir(t, func(string) error { return boom })

	if err := j.EpochAnalyzed(1); !errors.Is(err, boom) {
		t.Fatalf("EpochAnalyzed swallowed the dir-sync failure, returned %v", err)
	}

	// Open of a fresh journal must also refuse to proceed on a failed sync.
	if _, err := Open(t.TempDir(), Options{}); !errors.Is(err, boom) {
		t.Fatalf("Open swallowed the dir-sync failure, returned %v", err)
	}

	fsyncDir = realSync
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}
