// Package journal gives the analysis center a crash-safe ingest path: an
// append-only write-ahead log of every digest frame the center accepts, so a
// dcsd that dies between ingest and analysis (panic, OOM, kill -9) can replay
// the surviving frames through Center.Ingest on restart instead of silently
// discarding every buffered epoch. ReconnectingClient's bounded resend buffer
// cannot re-supply those windows — once a frame was written in full the
// collector considers it delivered — so durability has to live on the center
// side.
//
// The on-disk format reuses the transport wire encoding verbatim: a segment
// file (seg-NNNNNNNN.dcsj) is a concatenation of CRC-32C framed digest
// messages, exactly the bytes a collector put on the wire. Opening a journal
// scans every segment and truncates the torn tail a crash mid-append leaves
// behind (the CRC and length checks of the frame decoder decide where the
// valid prefix ends). A small ANALYZED sidecar records which epochs were
// already analyzed; Replay skips their frames so a restart re-analyzes only
// un-analyzed epochs. EpochAnalyzed rotates the active segment and deletes
// every sealed segment whose recorded epochs are all analyzed, so the journal
// directory stays proportional to the un-analyzed backlog, not to uptime.
//
// Disk faults do not kill the journal: an append, rotate, or fsync failure
// (ENOSPC, EIO) flips it to a Degraded state that absorbs the failure —
// appends are suspended and counted in UnjournaledFrames instead of written,
// so the ingest path keeps serving while crash durability is honestly
// suspended — and re-arming is retried on a capped exponential backoff.
// Mid-segment corruption found at recovery quarantines the damaged segment
// into a quarantine/ subdirectory and rescues every frame that still decodes
// on both sides of the corrupt gap, instead of losing everything after the
// torn point. All filesystem access goes through the FS interface so
// faultinject.FS can schedule these failures deterministically in tests.
//
// Duplicates are expected and harmless: a frame can be both delivered and
// journaled twice (collector resend after a reconnect) or replayed into a
// center that already holds it; the center's duplicate policy (DupKeepLast by
// default) absorbs them, which is what makes the at-least-once journal safe.
package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcstream/internal/metrics"
	"dcstream/internal/transport"
)

const (
	segPrefix = "seg-"
	segSuffix = ".dcsj"
	// analyzedName is the sidecar listing analyzed epochs, one decimal per
	// line. A torn last line (crash mid-mark) is ignored on load, which only
	// means one epoch is re-analyzed — never that one is lost.
	analyzedName = "ANALYZED"
	// quarantineDir is the subdirectory that receives segments with
	// mid-segment corruption: they are moved aside for forensics, replayed
	// with resynchronization, and never purged automatically.
	quarantineDir = "quarantine"
)

// ErrClosed reports an operation on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrDegraded reports an Append absorbed by degraded mode: the digest was NOT
// journaled (it is counted in UnjournaledFrames) because a disk fault has
// suspended appends. Ingest should proceed — the in-memory window still gets
// the digest — but its crash durability is gone until the journal re-arms.
var ErrDegraded = errors.New("journal: degraded, append suspended")

// Options tunes a journal. The zero value is usable.
type Options struct {
	// SyncEveryAppend fsyncs the active segment after each Append. Digest
	// frames arrive once per router per epoch, so the cost is negligible
	// next to the loss of an un-synced epoch; cmd/dcsd enables it by
	// default. Without it an OS crash (not a process crash) can lose the
	// tail of the active segment.
	SyncEveryAppend bool
	// RetryInterval is the base backoff between re-arm attempts after the
	// journal degrades; each failed attempt doubles the wait, capped at
	// 64x the base. Zero means 1 second.
	RetryInterval time.Duration
	// FS is the filesystem the journal runs on; nil means the real one.
	// Tests wrap it with faultinject.FS to schedule ENOSPC/EIO/short-write
	// faults deterministically.
	FS FS
}

func (o Options) withDefaults() Options {
	if o.RetryInterval == 0 {
		o.RetryInterval = time.Second
	}
	if o.FS == nil {
		o.FS = OSFS{}
	}
	return o
}

// Stats are the journal's lifetime counters, snapshotted by Stats().
type Stats struct {
	// FramesAppended counts frames written to the active segment.
	FramesAppended int
	// FramesReplayed and FramesSkipped count Replay outcomes: fed to the
	// callback vs dropped because their epoch was already analyzed.
	FramesReplayed, FramesSkipped int
	// TailsTruncated counts segments whose torn or corrupt tail was cut
	// back to the last well-formed frame at Open.
	TailsTruncated int
	// SegmentsPurged counts sealed segments deleted because every epoch
	// they contained had been analyzed.
	SegmentsPurged int
	// DirSyncs counts fsyncs of the journal directory itself — one after
	// every batch of segment create/delete operations and after the
	// ANALYZED sidecar is first created, so directory entries are as
	// durable as the file contents they point at.
	DirSyncs int
	// UnjournaledFrames counts digests that passed through ingest while the
	// journal could not durably record them: the append that triggered a
	// degradation and every append absorbed while degraded. This is the
	// replay-honesty ledger — after a crash, at most this many frames are
	// missing from the replayed state, and the operator knows it.
	UnjournaledFrames int
	// RearmAttempts and Rearms count degraded-mode recovery tries and
	// successes.
	RearmAttempts, Rearms int
	// SegmentsQuarantined counts segments moved to quarantine/ because
	// corruption was found mid-segment (decodable frames existed beyond the
	// corrupt gap) rather than at the tail.
	SegmentsQuarantined int
	// FramesRescued counts frames recovered from beyond a corrupt gap by
	// the resynchronizing scan of a quarantined segment.
	FramesRescued int
	// Degraded reports whether appends are currently suspended.
	Degraded bool
}

// counters holds the journal's lifetime counts as registry-grade atomics so
// RegisterMetrics can expose the live values without snapshotting under the
// journal lock.
type counters struct {
	framesAppended      metrics.Counter
	framesReplayed      metrics.Counter
	framesSkipped       metrics.Counter
	tailsTruncated      metrics.Counter
	segmentsPurged      metrics.Counter
	dirSyncs            metrics.Counter
	unjournaled         metrics.Counter
	rearmAttempts       metrics.Counter
	rearms              metrics.Counter
	segmentsQuarantined metrics.Counter
	framesRescued       metrics.Counter
	degraded            metrics.Gauge
}

// fsyncDir makes a batch of directory-entry mutations (segment creates and
// deletes, the ANALYZED sidecar's creation) durable: fsyncing a file
// persists its contents, not the directory entry naming it, so without this
// a crash can resurrect purged segments — re-replaying analyzed epochs — or
// lose a freshly rotated segment entirely, even with SyncEveryAppend on. A
// package variable so crash-simulation tests can observe and fail it; it is
// the OSFS implementation of FS.SyncDir.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// segment is one sealed (no longer written) on-disk segment.
type segment struct {
	seq    int
	path   string
	epochs map[int]bool
	// quarantined marks a segment living under quarantine/: it carried
	// mid-segment corruption, is replayed with resynchronization, and its
	// file is never auto-deleted (forensics beat disk hygiene for a
	// corruption artifact — operators clean quarantine/ by hand).
	quarantined bool
}

// Journal is an append-only digest log. All methods are safe for concurrent
// use; Append is called from the transport server's per-connection handler
// goroutines.
type Journal struct {
	dir string
	opt Options
	fs  FS

	mu           sync.Mutex
	active       File         // guarded by mu; nil while degraded with a broken segment
	activeSeq    int          // guarded by mu
	activeEpochs map[int]bool // guarded by mu
	// activeOffset is the byte offset of the last well-formed frame boundary
	// in the active segment — only bytes of fully written frames count, so a
	// failed append can reconcile the on-disk file back to this offset
	// instead of leaving a torn frame (or worse, assuming the write
	// happened and desynchronizing every frame after it).
	activeOffset int64        // guarded by mu
	sealed       []segment    // guarded by mu
	analyzed     map[int]bool // guarded by mu
	analyzedF    File         // guarded by mu
	closed       bool         // guarded by mu

	degraded      bool          // guarded by mu
	degradedCause error         // guarded by mu; first or latest fault
	nextRetry     time.Time     // guarded by mu; earliest next re-arm attempt
	retryWait     time.Duration // guarded by mu; current backoff step

	// ctr and fsync are atomic; they are read by scrapes and RegisterMetrics
	// gauges without taking mu.
	ctr   counters
	fsync metrics.Histogram
}

// Open opens (creating if needed) the journal in dir. Existing segments are
// scanned: torn tails are truncated, and segments with decodable frames
// beyond a corrupt gap are quarantined (moved under quarantine/ and replayed
// with resynchronization). Frames surviving either scan are available to
// Replay. A fresh segment is started for subsequent Appends, so recovery
// never appends into a file it also replays from.
func Open(dir string, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	j := &Journal{
		dir:          dir,
		opt:          opt,
		fs:           opt.FS,
		activeEpochs: make(map[int]bool),
		analyzed:     make(map[int]bool),
	}
	if err := j.fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// The journal is not shared yet, but the load helpers touch guarded
	// fields, so take the (uncontended) lock for construction and keep the
	// lock discipline mechanically checkable.
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.loadAnalyzedLocked(); err != nil {
		return nil, err
	}
	if err := j.loadSegmentsLocked(); err != nil {
		return nil, err
	}
	last := 0
	for _, s := range j.sealed {
		if s.seq > last {
			last = s.seq
		}
	}
	j.activeSeq = last + 1
	f, err := j.fs.OpenAppend(j.segPath(j.activeSeq))
	if err != nil {
		return nil, fmt.Errorf("journal: open active segment: %w", err)
	}
	j.active = f
	j.activeOffset = 0
	// One directory sync covers everything Open mutated: the ANALYZED
	// sidecar's creation, torn-tail truncations, frameless-segment removals,
	// quarantine moves, and the fresh active segment's entry. Without it a
	// crash right after Open can lose the active segment's name — every
	// synced append after that would be appending to an unreachable inode.
	if err := j.syncDirLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// syncDirLocked fsyncs the journal directory and counts it. Caller holds
// j.mu (or is constructing the journal).
func (j *Journal) syncDirLocked() error {
	if err := j.fs.SyncDir(j.dir); err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", j.dir, err)
	}
	j.ctr.dirSyncs.Inc()
	return nil
}

func (j *Journal) segPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// loadAnalyzedLocked reads the ANALYZED sidecar; unparsable lines (a torn
// tail) are ignored. Caller holds j.mu.
func (j *Journal) loadAnalyzedLocked() error {
	path := filepath.Join(j.dir, analyzedName)
	data, err := j.fs.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: read %s: %w", analyzedName, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if e, err := strconv.Atoi(line); err == nil {
			j.analyzed[e] = true
		}
	}
	f, err := j.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("journal: open %s: %w", analyzedName, err)
	}
	j.analyzedF = f
	return nil
}

// parseSegName extracts the sequence number from a segment file name, or
// (0, false) for foreign files.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// loadSegmentsLocked scans every existing segment — the journal directory
// proper plus any survivors already under quarantine/ — classifying each as
// clean, torn-tail (truncate back to the valid prefix), or mid-segment
// corrupt (decodable frames exist beyond the corrupt gap: move the file to
// quarantine/ and keep every frame the resynchronizing scan can rescue).
// Caller holds j.mu.
func (j *Journal) loadSegmentsLocked() error {
	entries, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		if n, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if err := j.loadSegmentLocked(seq, j.segPath(seq), false); err != nil {
			return err
		}
	}
	// Segments the pass above just moved into quarantine/ are already in
	// j.sealed; the survivor scan below must not load them a second time.
	loaded := make(map[int]bool, len(j.sealed))
	for _, s := range j.sealed {
		loaded[s.seq] = true
	}
	// Quarantined survivors from an earlier run: re-scan them (with resync)
	// so their un-analyzed frames stay replayable across multiple crashes.
	// A missing quarantine directory just means nothing was ever moved.
	qdir := filepath.Join(j.dir, quarantineDir)
	qentries, err := j.fs.ReadDir(qdir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("journal: %w", err)
	}
	var qseqs []int
	for _, e := range qentries {
		if n, ok := parseSegName(e.Name()); ok {
			qseqs = append(qseqs, n)
		}
	}
	sort.Ints(qseqs)
	for _, seq := range qseqs {
		if loaded[seq] {
			continue
		}
		if err := j.loadSegmentLocked(seq, filepath.Join(qdir, j.segName(seq)), true); err != nil {
			return err
		}
	}
	return nil
}

func (j *Journal) segName(seq int) string {
	return fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)
}

// loadSegmentLocked scans one segment file and files it into j.sealed.
// Caller holds j.mu.
func (j *Journal) loadSegmentLocked(seq int, path string, quarantined bool) error {
	data, err := j.fs.ReadFile(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	epochs := make(map[int]bool)
	collect := func(m transport.Message) error {
		if e, ok := epochOf(m); ok {
			epochs[e] = true
		}
		return nil
	}
	valid, torn, _ := scanFrames(bytes.NewReader(data), collect)
	rescued := 0
	if torn || quarantined {
		// Look past the corruption: frames that still decode (each one CRC
		// verified) prove the damage is mid-segment, not a torn tail.
		rescued, _ = resyncFrames(data[minInt64(valid+1, int64(len(data))):], collect)
	}
	switch {
	case quarantined:
		// Already quarantined by an earlier run; keep it replayable.
	case torn && rescued > 0:
		// Mid-segment corruption: a plain truncate would discard the
		// rescued frames along with the garbage. Move the whole file aside
		// and replay it with resynchronization.
		qpath := filepath.Join(j.dir, quarantineDir, j.segName(seq))
		if err := j.fs.MkdirAll(filepath.Join(j.dir, quarantineDir)); err != nil {
			return fmt.Errorf("journal: quarantine dir: %w", err)
		}
		if err := j.fs.Rename(path, qpath); err != nil {
			// The move failed (the disk may be the very thing that is
			// broken); fall back to the old lose-the-tail truncation so
			// recovery still converges.
			if terr := j.fs.Truncate(path, valid); terr != nil {
				return fmt.Errorf("journal: quarantine %s failed (%v) and truncate failed: %w", path, err, terr)
			}
			j.ctr.tailsTruncated.Inc()
			if valid == 0 {
				//dcslint:ignore errcrit best-effort cleanup of a frameless file; a survivor holds no replayable data and is re-tried next Open
				j.fs.Remove(path)
				return nil
			}
			j.sealed = append(j.sealed, segment{seq: seq, path: path, epochs: epochs})
			return nil
		}
		j.ctr.segmentsQuarantined.Inc()
		j.ctr.framesRescued.Add(int64(rescued))
		j.sealed = append(j.sealed, segment{seq: seq, path: qpath, epochs: epochs, quarantined: true})
		return nil
	case torn:
		if err := j.fs.Truncate(path, valid); err != nil {
			return fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
		}
		j.ctr.tailsTruncated.Inc()
	}
	if valid == 0 && rescued == 0 {
		if quarantined {
			// Nothing recoverable, but the artifact stays for forensics.
			return nil
		}
		// Nothing recoverable (an empty active segment from a clean
		// shutdown, or a tail torn at frame zero).
		//dcslint:ignore errcrit best-effort cleanup of a frameless file; a survivor holds no replayable data and is re-tried next Open
		j.fs.Remove(path)
		return nil
	}
	j.sealed = append(j.sealed, segment{seq: seq, path: path, epochs: epochs, quarantined: quarantined})
	return nil
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// epochOf extracts the measurement epoch a digest message is stamped with.
func epochOf(m transport.Message) (int, bool) {
	switch d := m.(type) {
	case transport.AlignedDigest:
		return d.Epoch, true
	case transport.UnalignedDigest:
		return d.Epoch, true
	}
	return 0, false
}

// countingReader tracks how many bytes the frame decoder consumed, so the
// scan knows the exact offset of the last well-formed frame boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingWriter tracks how many bytes actually reached the underlying file,
// so a failed append knows the exact on-disk damage: the frame encoder may
// have written the header before the payload write failed, or the file may
// have taken a short write, and reconciling the segment offset with reality
// is what keeps every frame after the failure decodable.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// scanFrames decodes consecutive transport frames from r, invoking fn on
// each. It returns the offset just past the last well-formed frame and
// whether the stream was torn — ended mid-frame or with bytes the decoder
// rejects (bad magic, bad CRC, implausible geometry). Framing cannot
// resynchronize blindly past corruption — that is resyncFrames's job, which
// hunts for the next CRC-verified frame — and a digest with a valid frame
// but corrupt payload would silently perturb the correlation statistics,
// which is exactly what the CRC exists to prevent. fn errors abort the scan
// and are returned verbatim.
func scanFrames(r io.Reader, fn func(transport.Message) error) (valid int64, torn bool, err error) {
	cr := &countingReader{r: r}
	for {
		m, rerr := transport.Read(cr)
		if rerr != nil {
			if rerr == io.EOF && cr.n == valid {
				return valid, false, nil // clean end at a frame boundary
			}
			return valid, true, nil
		}
		if fn != nil {
			if ferr := fn(m); ferr != nil {
				return valid, false, ferr
			}
		}
		valid = cr.n
	}
}

// frameMagic is the on-disk byte pattern opening every frame ("DCS1",
// little-endian), the needle the resynchronizing scan hunts for.
var frameMagic = []byte("DCS1")

// resyncFrames rescues decodable frames from data, which starts at (or
// somewhere inside) a corrupt region: it searches for the next frame-magic
// candidate, decodes consecutive frames from there, and on further
// corruption repeats the hunt. Every rescued frame passed its CRC-32C, so a
// false-positive magic inside garbage is rejected rather than delivered
// (the odds of random bytes passing the checksum are 2^-32 per candidate —
// rescue can lose frames, it cannot invent them). Returns how many frames fn
// accepted; fn errors abort the scan.
func resyncFrames(data []byte, fn func(transport.Message) error) (int, error) {
	rescued := 0
	off := 0
	for off < len(data) {
		idx := bytes.Index(data[off:], frameMagic)
		if idx < 0 {
			return rescued, nil
		}
		start := off + idx
		n := 0
		valid, _, err := scanFrames(bytes.NewReader(data[start:]), func(m transport.Message) error {
			n++
			if fn != nil {
				return fn(m)
			}
			return nil
		})
		rescued += n
		if err != nil {
			return rescued, err
		}
		if valid > 0 {
			off = start + int(valid)
		} else {
			off = start + 1 // false-positive magic; step past it
		}
	}
	return rescued, nil
}

// Append writes one digest frame to the active segment. Call it before (or
// concurrently with) Center.Ingest — the duplicate policy makes the ordering
// immaterial.
//
// Failures never propagate as fatal: a write, sync, or rotate failure flips
// the journal to Degraded — the frame is counted in UnjournaledFrames, the
// on-disk segment is reconciled back to the last whole-frame boundary, and
// Append returns ErrDegraded (wrapping the fault) for this and every
// subsequent frame until a backoff-timed re-arm succeeds. Callers keep
// ingesting; only crash durability is suspended, and the counter says by
// exactly how much.
func (j *Journal) Append(m transport.Message) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.degraded {
		if time.Now().After(j.nextRetry) {
			j.rearmLocked()
		}
		if j.degraded {
			j.ctr.unjournaled.Inc()
			return fmt.Errorf("%w: %w", ErrDegraded, j.degradedCause)
		}
	}
	cw := &countingWriter{w: j.active}
	if err := transport.Write(cw, m); err != nil {
		// Reconcile the on-disk offset with what actually happened: cw.n
		// bytes of a torn frame may follow the last good boundary. Cutting
		// them back keeps the segment's surviving prefix cleanly framed; if
		// even the truncate fails, Open-time recovery will do the same cut.
		if cw.n > 0 {
			if terr := j.fs.Truncate(j.segPath(j.activeSeq), j.activeOffset); terr == nil {
				j.ctr.tailsTruncated.Inc()
			}
		}
		j.degradeLocked(fmt.Errorf("append: %w", err))
		j.ctr.unjournaled.Inc()
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	j.activeOffset += cw.n
	if e, ok := epochOf(m); ok {
		j.activeEpochs[e] = true
	}
	j.ctr.framesAppended.Inc()
	// A successful durable append is the all-clear that resets the re-arm
	// backoff to its base for the next incident.
	j.retryWait = 0
	if j.opt.SyncEveryAppend {
		if err := j.syncActiveLocked(); err != nil {
			// The frame reached the file but its durability is unknown; an
			// OS crash could lose it, so it counts as unjournaled and the
			// fault degrades the journal like any other.
			j.degradeLocked(err)
			j.ctr.unjournaled.Inc()
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		}
	}
	return nil
}

// degradeLocked flips the journal into degraded mode (or refreshes the cause
// while already degraded) and schedules the next re-arm attempt on a capped
// exponential backoff. Caller holds j.mu.
func (j *Journal) degradeLocked(cause error) {
	j.degradedCause = cause
	if !j.degraded {
		j.degraded = true
		j.ctr.degraded.Set(1)
	}
	if j.retryWait == 0 {
		j.retryWait = j.opt.RetryInterval
	} else if j.retryWait < 64*j.opt.RetryInterval {
		j.retryWait *= 2
	}
	j.nextRetry = time.Now().Add(j.retryWait)
}

// rearmLocked attempts to leave degraded mode: the broken active segment is
// abandoned (its cleanly framed prefix stays sealed for replay), a fresh
// segment and sidecar handle are opened, and the directory is synced. Any
// failure keeps the journal degraded and pushes the backoff. Caller holds
// j.mu.
func (j *Journal) rearmLocked() {
	j.ctr.rearmAttempts.Inc()
	if j.active != nil {
		//dcslint:ignore errcrit degraded-mode teardown of an already-failed segment file; its cleanly framed prefix is sealed below and Open-time recovery re-truncates any torn tail a failed close leaves
		j.active.Close()
		j.active = nil
	}
	if len(j.activeEpochs) > 0 {
		j.sealed = append(j.sealed, segment{
			seq:    j.activeSeq,
			path:   j.segPath(j.activeSeq),
			epochs: j.activeEpochs,
		})
		j.activeEpochs = make(map[int]bool)
	}
	j.activeSeq++
	f, err := j.fs.OpenAppend(j.segPath(j.activeSeq))
	if err != nil {
		j.degradeLocked(fmt.Errorf("rearm: %w", err))
		return
	}
	// Reopen the sidecar too: the fault that degraded the journal may have
	// hit it (EpochAnalyzed's mark path), and a stale broken handle would
	// re-degrade on the first mark after an otherwise clean re-arm.
	sf, err := j.fs.OpenAppend(filepath.Join(j.dir, analyzedName))
	if err != nil {
		//dcslint:ignore errcrit the fresh segment is empty — no frame has been written to it — so closing it on the abort path cannot lose data
		f.Close()
		j.degradeLocked(fmt.Errorf("rearm sidecar: %w", err))
		return
	}
	if err := j.fs.SyncDir(j.dir); err != nil {
		//dcslint:ignore errcrit the fresh segment is empty — no frame has been written to it — so closing it on the abort path cannot lose data
		f.Close()
		//dcslint:ignore errcrit the reopened sidecar took no writes on this path; the ANALYZED contents it points at are already durable
		sf.Close()
		j.degradeLocked(fmt.Errorf("rearm: sync dir: %w", err))
		return
	}
	j.ctr.dirSyncs.Inc()
	if j.analyzedF != nil {
		//dcslint:ignore errcrit replacing a possibly-broken sidecar handle; every durable mark was already Synced at write time, so this close cannot lose one
		j.analyzedF.Close()
	}
	j.analyzedF = sf
	j.active = f
	j.activeOffset = 0
	j.degraded = false
	j.degradedCause = nil
	j.ctr.degraded.Set(0)
	j.ctr.rearms.Inc()
}

// TryRearm attempts to leave degraded mode right now, ignoring the backoff
// timer — the hook for an operator action or a daemon tick that knows the
// disk was just fixed. Reports whether the journal is healthy afterwards.
func (j *Journal) TryRearm() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false
	}
	if j.degraded {
		j.rearmLocked()
	}
	return !j.degraded
}

// Degraded reports whether appends are currently suspended by a disk fault.
func (j *Journal) Degraded() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degraded
}

// DegradedCause returns the fault that degraded the journal, or nil when
// healthy.
func (j *Journal) DegradedCause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.degradedCause
}

// syncActiveLocked fsyncs the active segment, feeding the latency histogram.
// Caller holds j.mu.
func (j *Journal) syncActiveLocked() error {
	start := time.Now()
	err := j.active.Sync()
	j.fsync.Observe(time.Since(start).Seconds())
	if err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Sync flushes the active segment to stable storage (for callers batching
// appends with SyncEveryAppend off). A failure degrades the journal like a
// failed append — by the time Sync fails the data may already be lost, and
// pretending otherwise is what degraded mode exists to avoid.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if j.degraded {
		return fmt.Errorf("%w: %w", ErrDegraded, j.degradedCause)
	}
	if err := j.syncActiveLocked(); err != nil {
		j.degradeLocked(err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	return nil
}

// rotateLocked seals the active segment and starts a new one. Caller holds
// j.mu.
func (j *Journal) rotateLocked() error {
	//dcslint:ignore errcrit appends are unbuffered write(2)s (sync per policy), and Open-time recovery truncates any tail a failed close tears
	j.active.Close()
	if len(j.activeEpochs) == 0 {
		//dcslint:ignore errcrit best-effort cleanup of an epochless segment; a survivor is removed at the next Open
		j.fs.Remove(j.segPath(j.activeSeq))
	} else {
		j.sealed = append(j.sealed, segment{
			seq:    j.activeSeq,
			path:   j.segPath(j.activeSeq),
			epochs: j.activeEpochs,
		})
	}
	j.activeEpochs = make(map[int]bool)
	j.activeSeq++
	f, err := j.fs.OpenAppend(j.segPath(j.activeSeq))
	if err != nil {
		j.active = nil
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.active = f
	j.activeOffset = 0
	// The new active segment's directory entry (and any epochless-segment
	// removal above) must be durable before appends land in it: SyncEveryAppend
	// fsyncs file contents, which cannot save a file whose name a crash
	// erased.
	return j.syncDirLocked()
}

// EpochAnalyzed durably marks an epoch as analyzed: its frames are skipped
// by future Replays, the active segment is rotated so later epochs accrue in
// a fresh file, and every sealed segment whose epochs are all analyzed is
// deleted. Call it after Center.Analyze succeeds for the epoch.
//
// A failed mark is rolled back (the epoch will be replayed and re-analyzed
// after a restart — the duplicate policy absorbs that) and the journal
// degrades; it never purges on a mark whose durability is unknown.
func (j *Journal) EpochAnalyzed(epoch int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if !j.analyzed[epoch] {
		j.analyzed[epoch] = true
		if _, err := fmt.Fprintf(j.analyzedF, "%d\n", epoch); err != nil {
			// The mark may be torn on disk; the loader ignores torn lines,
			// and rolling back the in-memory mark keeps purge honest.
			delete(j.analyzed, epoch)
			j.degradeLocked(fmt.Errorf("mark epoch %d analyzed: %w", epoch, err))
			return fmt.Errorf("%w: mark epoch %d: %w", ErrDegraded, epoch, err)
		}
		// The mark is what licenses deleting frames; it must be durable
		// before any purge below acts on it.
		if err := j.analyzedF.Sync(); err != nil {
			delete(j.analyzed, epoch)
			j.degradeLocked(fmt.Errorf("sync %s: %w", analyzedName, err))
			return fmt.Errorf("%w: sync %s: %w", ErrDegraded, analyzedName, err)
		}
	}
	if !j.degraded && len(j.activeEpochs) > 0 {
		if err := j.rotateLocked(); err != nil {
			j.degradeLocked(err)
			return fmt.Errorf("%w: %w", ErrDegraded, err)
		}
	}
	return j.purgeLocked()
}

// purgeLocked deletes sealed segments whose every epoch is analyzed, then
// fsyncs the directory so the deletions stick: an unlink that a crash rolls
// back resurrects the segment, and the next restart would re-replay epochs
// the ANALYZED sidecar may itself have lost the mark for. Quarantined
// segments are retired from the replay set but their files stay on disk —
// they are corruption evidence, not backlog. Caller holds j.mu.
func (j *Journal) purgeLocked() error {
	purged := 0
	kept := j.sealed[:0]
	for _, s := range j.sealed {
		done := true
		for e := range s.epochs {
			if !j.analyzed[e] {
				done = false
				break
			}
		}
		if done {
			if s.quarantined {
				continue // drop from the replay set; keep the artifact
			}
			if err := j.fs.Remove(s.path); err != nil && !os.IsNotExist(err) {
				kept = append(kept, s) // retry at the next purge
				continue
			}
			j.ctr.segmentsPurged.Inc()
			purged++
			continue
		}
		kept = append(kept, s)
	}
	// Zero the tail entries the in-place filter dropped so they do not pin
	// their epoch maps.
	for i := len(kept); i < len(j.sealed); i++ {
		j.sealed[i] = segment{}
	}
	j.sealed = kept
	if purged == 0 {
		return nil
	}
	if err := j.syncDirLocked(); err != nil {
		// The unlinks may not be durable; a crash can resurrect the purged
		// segments, whose epochs the durable ANALYZED sidecar will skip at
		// replay. Degrade so the operator sees the disk misbehaving.
		j.degradeLocked(err)
		return fmt.Errorf("%w: %w", ErrDegraded, err)
	}
	return nil
}

// Replay feeds every surviving frame of an un-analyzed epoch to fn, oldest
// segment first (within a segment, append order — which is ingest order).
// Quarantined segments are replayed with resynchronization: their cleanly
// framed prefix and every CRC-verified frame beyond the corrupt gap. Point
// fn at Center.Ingest and the center's windows are rebuilt exactly as a
// crashed process left them, duplicates absorbed by the duplicate policy.
// Call Replay once, after Open and before serving new traffic. fn errors
// abort the replay.
func (j *Journal) Replay(fn func(transport.Message) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segment(nil), j.sealed...)
	analyzed := make(map[int]bool, len(j.analyzed))
	for e := range j.analyzed {
		analyzed[e] = true
	}
	j.mu.Unlock()

	replayed, skipped := 0, 0
	deliver := func(m transport.Message) error {
		if e, ok := epochOf(m); ok && analyzed[e] {
			skipped++
			return nil
		}
		replayed++
		return fn(m)
	}
	for _, s := range segs {
		data, err := j.fs.ReadFile(s.path)
		if err != nil {
			return fmt.Errorf("journal: replay %s: %w", s.path, err)
		}
		valid, torn, err := scanFrames(bytes.NewReader(data), deliver)
		if err != nil {
			return err
		}
		if torn && s.quarantined {
			if _, err := resyncFrames(data[minInt64(valid+1, int64(len(data))):], deliver); err != nil {
				return err
			}
		}
	}
	j.ctr.framesReplayed.Add(int64(replayed))
	j.ctr.framesSkipped.Add(int64(skipped))
	return nil
}

// Segments returns how many on-disk segments hold un-purged frames
// (excluding the active segment).
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sealed)
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	return Stats{
		FramesAppended:      int(j.ctr.framesAppended.Load()),
		FramesReplayed:      int(j.ctr.framesReplayed.Load()),
		FramesSkipped:       int(j.ctr.framesSkipped.Load()),
		TailsTruncated:      int(j.ctr.tailsTruncated.Load()),
		SegmentsPurged:      int(j.ctr.segmentsPurged.Load()),
		DirSyncs:            int(j.ctr.dirSyncs.Load()),
		UnjournaledFrames:   int(j.ctr.unjournaled.Load()),
		RearmAttempts:       int(j.ctr.rearmAttempts.Load()),
		Rearms:              int(j.ctr.rearms.Load()),
		SegmentsQuarantined: int(j.ctr.segmentsQuarantined.Load()),
		FramesRescued:       int(j.ctr.framesRescued.Load()),
		Degraded:            j.ctr.degraded.Load() != 0,
	}
}

// RegisterMetrics exposes the journal on a metrics registry: lifetime
// counters, the per-fsync latency histogram, the degraded-state gauge, and a
// live-segments gauge (the un-purged backlog the next restart would replay).
func (j *Journal) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounter("dcs_journal_appends_total",
		"digest frames appended to the active segment", &j.ctr.framesAppended)
	r.RegisterCounter("dcs_journal_frames_replayed_total",
		"frames fed to the ingest callback by Replay", &j.ctr.framesReplayed)
	r.RegisterCounter("dcs_journal_frames_skipped_total",
		"replay frames skipped because their epoch was already analyzed", &j.ctr.framesSkipped)
	r.RegisterCounter("dcs_journal_tails_truncated_total",
		"segments whose torn tail was cut back at Open or after a failed append", &j.ctr.tailsTruncated)
	r.RegisterCounter("dcs_journal_segments_purged_total",
		"sealed segments deleted with every epoch analyzed", &j.ctr.segmentsPurged)
	r.RegisterCounter("dcs_journal_dir_syncs_total",
		"fsyncs of the journal directory (segment create/delete durability)", &j.ctr.dirSyncs)
	r.RegisterCounter("dcs_journal_unjournaled_total",
		"digests ingested while degraded mode suspended appends (crash-replay shortfall)", &j.ctr.unjournaled)
	r.RegisterCounter("dcs_journal_rearm_attempts_total",
		"degraded-mode recovery attempts", &j.ctr.rearmAttempts)
	r.RegisterCounter("dcs_journal_rearms_total",
		"successful degraded-mode recoveries", &j.ctr.rearms)
	r.RegisterCounter("dcs_journal_segments_quarantined_total",
		"segments moved to quarantine/ for mid-segment corruption", &j.ctr.segmentsQuarantined)
	r.RegisterCounter("dcs_journal_frames_rescued_total",
		"frames recovered beyond a corrupt gap by the resynchronizing scan", &j.ctr.framesRescued)
	r.RegisterGauge("dcs_journal_degraded",
		"1 while a disk fault has appends suspended, else 0", &j.ctr.degraded)
	r.RegisterHistogram("dcs_journal_fsync_seconds",
		"latency of active-segment fsyncs", &j.fsync)
	r.GaugeFunc("dcs_journal_live_segments",
		"sealed on-disk segments still holding un-analyzed epochs", func() float64 {
			return float64(j.Segments())
		})
}

// Close syncs and closes the journal. An empty active segment is removed so
// clean restarts do not accumulate zero-length files.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var firstErr error
	if j.active != nil {
		if err := j.active.Sync(); err != nil {
			firstErr = err
		}
		if err := j.active.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		if len(j.activeEpochs) == 0 {
			//dcslint:ignore errcrit best-effort cleanup of an epochless segment; a survivor is removed at the next Open
			j.fs.Remove(j.segPath(j.activeSeq))
			if err := j.syncDirLocked(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if j.analyzedF != nil {
		if err := j.analyzedF.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
