// Package journal gives the analysis center a crash-safe ingest path: an
// append-only write-ahead log of every digest frame the center accepts, so a
// dcsd that dies between ingest and analysis (panic, OOM, kill -9) can replay
// the surviving frames through Center.Ingest on restart instead of silently
// discarding every buffered epoch. ReconnectingClient's bounded resend buffer
// cannot re-supply those windows — once a frame was written in full the
// collector considers it delivered — so durability has to live on the center
// side.
//
// The on-disk format reuses the transport wire encoding verbatim: a segment
// file (seg-NNNNNNNN.dcsj) is a concatenation of CRC-32C framed digest
// messages, exactly the bytes a collector put on the wire. Opening a journal
// scans every segment and truncates the torn tail a crash mid-append leaves
// behind (the CRC and length checks of the frame decoder decide where the
// valid prefix ends). A small ANALYZED sidecar records which epochs were
// already analyzed; Replay skips their frames so a restart re-analyzes only
// un-analyzed epochs. EpochAnalyzed rotates the active segment and deletes
// every sealed segment whose recorded epochs are all analyzed, so the journal
// directory stays proportional to the un-analyzed backlog, not to uptime.
//
// Duplicates are expected and harmless: a frame can be both delivered and
// journaled twice (collector resend after a reconnect) or replayed into a
// center that already holds it; the center's duplicate policy (DupKeepLast by
// default) absorbs them, which is what makes the at-least-once journal safe.
package journal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dcstream/internal/metrics"
	"dcstream/internal/transport"
)

const (
	segPrefix = "seg-"
	segSuffix = ".dcsj"
	// analyzedName is the sidecar listing analyzed epochs, one decimal per
	// line. A torn last line (crash mid-mark) is ignored on load, which only
	// means one epoch is re-analyzed — never that one is lost.
	analyzedName = "ANALYZED"
)

// ErrClosed reports an operation on a closed journal.
var ErrClosed = errors.New("journal: closed")

// Options tunes a journal. The zero value is usable.
type Options struct {
	// SyncEveryAppend fsyncs the active segment after each Append. Digest
	// frames arrive once per router per epoch, so the cost is negligible
	// next to the loss of an un-synced epoch; cmd/dcsd enables it by
	// default. Without it an OS crash (not a process crash) can lose the
	// tail of the active segment.
	SyncEveryAppend bool
}

// Stats are the journal's lifetime counters, snapshotted by Stats().
type Stats struct {
	// FramesAppended counts frames written to the active segment.
	FramesAppended int
	// FramesReplayed and FramesSkipped count Replay outcomes: fed to the
	// callback vs dropped because their epoch was already analyzed.
	FramesReplayed, FramesSkipped int
	// TailsTruncated counts segments whose torn or corrupt tail was cut
	// back to the last well-formed frame at Open.
	TailsTruncated int
	// SegmentsPurged counts sealed segments deleted because every epoch
	// they contained had been analyzed.
	SegmentsPurged int
	// DirSyncs counts fsyncs of the journal directory itself — one after
	// every batch of segment create/delete operations and after the
	// ANALYZED sidecar is first created, so directory entries are as
	// durable as the file contents they point at.
	DirSyncs int
}

// counters holds the journal's lifetime counts as registry-grade atomics so
// RegisterMetrics can expose the live values without snapshotting under the
// journal lock.
type counters struct {
	framesAppended metrics.Counter
	framesReplayed metrics.Counter
	framesSkipped  metrics.Counter
	tailsTruncated metrics.Counter
	segmentsPurged metrics.Counter
	dirSyncs       metrics.Counter
}

// fsyncDir makes a batch of directory-entry mutations (segment creates and
// deletes, the ANALYZED sidecar's creation) durable: fsyncing a file
// persists its contents, not the directory entry naming it, so without this
// a crash can resurrect purged segments — re-replaying analyzed epochs — or
// lose a freshly rotated segment entirely, even with SyncEveryAppend on. A
// package variable so crash-simulation tests can observe and fail it.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// segment is one sealed (no longer written) on-disk segment.
type segment struct {
	seq    int
	path   string
	epochs map[int]bool
}

// Journal is an append-only digest log. All methods are safe for concurrent
// use; Append is called from the transport server's per-connection handler
// goroutines.
type Journal struct {
	dir string
	opt Options

	mu           sync.Mutex
	active       *os.File     // guarded by mu
	activeSeq    int          // guarded by mu
	activeEpochs map[int]bool // guarded by mu
	sealed       []segment    // guarded by mu
	analyzed     map[int]bool // guarded by mu
	analyzedF    *os.File     // guarded by mu
	closed       bool         // guarded by mu

	// ctr and fsync are atomic; they are read by scrapes and RegisterMetrics
	// gauges without taking mu.
	ctr   counters
	fsync metrics.Histogram
}

// Open opens (creating if needed) the journal in dir. Existing segments are
// scanned and their torn tails truncated; frames surviving the scan are
// available to Replay. A fresh segment is started for subsequent Appends, so
// recovery never appends into a file it also replays from.
func Open(dir string, opt Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:          dir,
		opt:          opt,
		activeEpochs: make(map[int]bool),
		analyzed:     make(map[int]bool),
	}
	// The journal is not shared yet, but the load helpers touch guarded
	// fields, so take the (uncontended) lock for construction and keep the
	// lock discipline mechanically checkable.
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.loadAnalyzedLocked(); err != nil {
		return nil, err
	}
	if err := j.loadSegmentsLocked(); err != nil {
		return nil, err
	}
	last := 0
	if n := len(j.sealed); n > 0 {
		last = j.sealed[n-1].seq
	}
	j.activeSeq = last + 1
	f, err := os.OpenFile(j.segPath(j.activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open active segment: %w", err)
	}
	j.active = f
	// One directory sync covers everything Open mutated: the ANALYZED
	// sidecar's creation, torn-tail truncations, frameless-segment removals,
	// and the fresh active segment's entry. Without it a crash right after
	// Open can lose the active segment's name — every synced append after
	// that would be appending to an unreachable inode.
	if err := j.syncDirLocked(); err != nil {
		return nil, err
	}
	return j, nil
}

// syncDirLocked fsyncs the journal directory and counts it. Caller holds
// j.mu (or is constructing the journal).
func (j *Journal) syncDirLocked() error {
	if err := fsyncDir(j.dir); err != nil {
		return fmt.Errorf("journal: sync dir %s: %w", j.dir, err)
	}
	j.ctr.dirSyncs.Inc()
	return nil
}

func (j *Journal) segPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// loadAnalyzedLocked reads the ANALYZED sidecar; unparsable lines (a torn
// tail) are ignored. Caller holds j.mu.
func (j *Journal) loadAnalyzedLocked() error {
	path := filepath.Join(j.dir, analyzedName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: read %s: %w", analyzedName, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if e, err := strconv.Atoi(line); err == nil {
			j.analyzed[e] = true
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: open %s: %w", analyzedName, err)
	}
	j.analyzedF = f
	return nil
}

// loadSegmentsLocked scans every existing segment, truncating torn tails
// and removing segments with no recoverable frames. Caller holds j.mu.
func (j *Journal) loadSegmentsLocked() error {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix))
		if err != nil || n <= 0 {
			continue // foreign file; leave it alone
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		path := j.segPath(seq)
		f, err := os.Open(path)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		epochs := make(map[int]bool)
		valid, torn, _ := scanFrames(f, func(m transport.Message) error {
			if e, ok := epochOf(m); ok {
				epochs[e] = true
			}
			return nil
		})
		//dcslint:ignore errcrit the segment was opened read-only for the scan; closing it cannot lose written data
		f.Close()
		if torn {
			if err := os.Truncate(path, valid); err != nil {
				return fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
			}
			j.ctr.tailsTruncated.Inc()
		}
		if valid == 0 {
			// Nothing recoverable (an empty active segment from a clean
			// shutdown, or a tail torn at frame zero).
			//dcslint:ignore errcrit best-effort cleanup of a frameless file; a survivor holds no replayable data and is re-tried next Open
			os.Remove(path)
			continue
		}
		j.sealed = append(j.sealed, segment{seq: seq, path: path, epochs: epochs})
	}
	return nil
}

// epochOf extracts the measurement epoch a digest message is stamped with.
func epochOf(m transport.Message) (int, bool) {
	switch d := m.(type) {
	case transport.AlignedDigest:
		return d.Epoch, true
	case transport.UnalignedDigest:
		return d.Epoch, true
	}
	return 0, false
}

// countingReader tracks how many bytes the frame decoder consumed, so the
// scan knows the exact offset of the last well-formed frame boundary.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// scanFrames decodes consecutive transport frames from r, invoking fn on
// each. It returns the offset just past the last well-formed frame and
// whether the stream was torn — ended mid-frame or with bytes the decoder
// rejects (bad magic, bad CRC, implausible geometry). A torn middle loses
// the segment's tail: framing cannot resynchronize past corruption, and a
// digest with a valid frame but corrupt payload would silently perturb the
// correlation statistics, which is exactly what the CRC exists to prevent.
// fn errors abort the scan and are returned verbatim.
func scanFrames(r io.Reader, fn func(transport.Message) error) (valid int64, torn bool, err error) {
	cr := &countingReader{r: r}
	for {
		m, rerr := transport.Read(cr)
		if rerr != nil {
			if rerr == io.EOF && cr.n == valid {
				return valid, false, nil // clean end at a frame boundary
			}
			return valid, true, nil
		}
		if fn != nil {
			if ferr := fn(m); ferr != nil {
				return valid, false, ferr
			}
		}
		valid = cr.n
	}
}

// Append writes one digest frame to the active segment. Call it before (or
// concurrently with) Center.Ingest — the duplicate policy makes the ordering
// immaterial. A failed append rotates to a fresh segment so one bad write
// cannot desynchronize the frames that follow it.
func (j *Journal) Append(m transport.Message) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := transport.Write(j.active, m); err != nil {
		// The segment may now end in a torn frame; recovery would truncate
		// it, taking any frames appended after it along. Seal it off.
		if rerr := j.rotateLocked(); rerr != nil {
			return fmt.Errorf("journal: append failed (%v) and rotate failed: %w", err, rerr)
		}
		return fmt.Errorf("journal: append: %w", err)
	}
	if e, ok := epochOf(m); ok {
		j.activeEpochs[e] = true
	}
	j.ctr.framesAppended.Inc()
	if j.opt.SyncEveryAppend {
		if err := j.syncActiveLocked(); err != nil {
			return err
		}
	}
	return nil
}

// syncActiveLocked fsyncs the active segment, feeding the latency histogram.
// Caller holds j.mu.
func (j *Journal) syncActiveLocked() error {
	start := time.Now()
	err := j.active.Sync()
	j.fsync.Observe(time.Since(start).Seconds())
	if err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Sync flushes the active segment to stable storage (for callers batching
// appends with SyncEveryAppend off).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncActiveLocked()
}

// rotateLocked seals the active segment and starts a new one. Caller holds
// j.mu.
func (j *Journal) rotateLocked() error {
	//dcslint:ignore errcrit appends are unbuffered write(2)s (sync per policy), and Open-time recovery truncates any tail a failed close tears
	j.active.Close()
	if len(j.activeEpochs) == 0 {
		//dcslint:ignore errcrit best-effort cleanup of an epochless segment; a survivor is removed at the next Open
		os.Remove(j.segPath(j.activeSeq))
	} else {
		j.sealed = append(j.sealed, segment{
			seq:    j.activeSeq,
			path:   j.segPath(j.activeSeq),
			epochs: j.activeEpochs,
		})
	}
	j.activeEpochs = make(map[int]bool)
	j.activeSeq++
	f, err := os.OpenFile(j.segPath(j.activeSeq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: rotate: %w", err)
	}
	j.active = f
	// The new active segment's directory entry (and any epochless-segment
	// removal above) must be durable before appends land in it: SyncEveryAppend
	// fsyncs file contents, which cannot save a file whose name a crash
	// erased.
	return j.syncDirLocked()
}

// EpochAnalyzed durably marks an epoch as analyzed: its frames are skipped
// by future Replays, the active segment is rotated so later epochs accrue in
// a fresh file, and every sealed segment whose epochs are all analyzed is
// deleted. Call it after Center.Analyze succeeds for the epoch.
func (j *Journal) EpochAnalyzed(epoch int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if !j.analyzed[epoch] {
		j.analyzed[epoch] = true
		if _, err := fmt.Fprintf(j.analyzedF, "%d\n", epoch); err != nil {
			return fmt.Errorf("journal: mark epoch %d analyzed: %w", epoch, err)
		}
		// The mark is what licenses deleting frames; it must be durable
		// before any purge below acts on it.
		if err := j.analyzedF.Sync(); err != nil {
			return fmt.Errorf("journal: sync %s: %w", analyzedName, err)
		}
	}
	if len(j.activeEpochs) > 0 {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return j.purgeLocked()
}

// purgeLocked deletes sealed segments whose every epoch is analyzed, then
// fsyncs the directory so the deletions stick: an unlink that a crash rolls
// back resurrects the segment, and the next restart would re-replay epochs
// the ANALYZED sidecar may itself have lost the mark for. Caller holds j.mu.
func (j *Journal) purgeLocked() error {
	purged := 0
	kept := j.sealed[:0]
	for _, s := range j.sealed {
		done := true
		for e := range s.epochs {
			if !j.analyzed[e] {
				done = false
				break
			}
		}
		if done {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				kept = append(kept, s) // retry at the next purge
				continue
			}
			j.ctr.segmentsPurged.Inc()
			purged++
			continue
		}
		kept = append(kept, s)
	}
	j.sealed = kept
	if purged == 0 {
		return nil
	}
	return j.syncDirLocked()
}

// Replay feeds every surviving frame of an un-analyzed epoch to fn, oldest
// segment first (within a segment, append order — which is ingest order).
// Point fn at Center.Ingest and the center's windows are rebuilt exactly as
// a crashed process left them, duplicates absorbed by the duplicate policy.
// Call Replay once, after Open and before serving new traffic. fn errors
// abort the replay.
func (j *Journal) Replay(fn func(transport.Message) error) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	segs := append([]segment(nil), j.sealed...)
	analyzed := make(map[int]bool, len(j.analyzed))
	for e := range j.analyzed {
		analyzed[e] = true
	}
	j.mu.Unlock()

	replayed, skipped := 0, 0
	for _, s := range segs {
		f, err := os.Open(s.path)
		if err != nil {
			return fmt.Errorf("journal: replay %s: %w", s.path, err)
		}
		_, _, err = scanFrames(f, func(m transport.Message) error {
			if e, ok := epochOf(m); ok && analyzed[e] {
				skipped++
				return nil
			}
			replayed++
			return fn(m)
		})
		//dcslint:ignore errcrit the segment was opened read-only for replay; closing it cannot lose written data
		f.Close()
		if err != nil {
			return err
		}
	}
	j.ctr.framesReplayed.Add(int64(replayed))
	j.ctr.framesSkipped.Add(int64(skipped))
	return nil
}

// Segments returns how many on-disk segments hold un-purged frames
// (excluding the active segment).
func (j *Journal) Segments() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.sealed)
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	return Stats{
		FramesAppended: int(j.ctr.framesAppended.Load()),
		FramesReplayed: int(j.ctr.framesReplayed.Load()),
		FramesSkipped:  int(j.ctr.framesSkipped.Load()),
		TailsTruncated: int(j.ctr.tailsTruncated.Load()),
		SegmentsPurged: int(j.ctr.segmentsPurged.Load()),
		DirSyncs:       int(j.ctr.dirSyncs.Load()),
	}
}

// RegisterMetrics exposes the journal on a metrics registry: lifetime
// counters, the per-fsync latency histogram, and a live-segments gauge (the
// un-purged backlog the next restart would replay).
func (j *Journal) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounter("dcs_journal_appends_total",
		"digest frames appended to the active segment", &j.ctr.framesAppended)
	r.RegisterCounter("dcs_journal_frames_replayed_total",
		"frames fed to the ingest callback by Replay", &j.ctr.framesReplayed)
	r.RegisterCounter("dcs_journal_frames_skipped_total",
		"replay frames skipped because their epoch was already analyzed", &j.ctr.framesSkipped)
	r.RegisterCounter("dcs_journal_tails_truncated_total",
		"segments whose torn tail was cut back at Open", &j.ctr.tailsTruncated)
	r.RegisterCounter("dcs_journal_segments_purged_total",
		"sealed segments deleted with every epoch analyzed", &j.ctr.segmentsPurged)
	r.RegisterCounter("dcs_journal_dir_syncs_total",
		"fsyncs of the journal directory (segment create/delete durability)", &j.ctr.dirSyncs)
	r.RegisterHistogram("dcs_journal_fsync_seconds",
		"latency of active-segment fsyncs", &j.fsync)
	r.GaugeFunc("dcs_journal_live_segments",
		"sealed on-disk segments still holding un-analyzed epochs", func() float64 {
			return float64(j.Segments())
		})
}

// Close syncs and closes the journal. An empty active segment is removed so
// clean restarts do not accumulate zero-length files.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var firstErr error
	if err := j.active.Sync(); err != nil {
		firstErr = err
	}
	if err := j.active.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if len(j.activeEpochs) == 0 {
		//dcslint:ignore errcrit best-effort cleanup of an epochless segment; a survivor is removed at the next Open
		os.Remove(j.segPath(j.activeSeq))
		if err := j.syncDirLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := j.analyzedF.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
