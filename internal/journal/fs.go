package journal

import (
	"io"
	"os"
)

// File is the journal's view of an open, writable file (a segment or the
// ANALYZED sidecar): appends, durability, and teardown — nothing else.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem the journal runs on. Production uses the real
// filesystem (OSFS); faultinject.FS wraps any FS with injectable failures —
// ENOSPC on append, EIO on fsync, short writes, failed renames — so the
// degraded-mode state machine is testable without actually filling a disk.
// Every path the journal touches goes through this interface; a fault the
// wrapper can see is a fault the degraded-mode tests can schedule.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]os.DirEntry, error)
	// ReadFile reads a whole file (segment scans, the ANALYZED sidecar).
	ReadFile(name string) ([]byte, error)
	// OpenAppend opens name for appending, creating it if needed.
	OpenAppend(name string) (File, error)
	// Remove unlinks name.
	Remove(name string) error
	// Rename moves oldname to newname (segment quarantine).
	Rename(oldname, newname string) error
	// Truncate cuts name to size bytes (torn-tail and torn-frame repair).
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making entry mutations (create,
	// unlink, rename) as durable as the file contents they point at.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error                 { return os.MkdirAll(dir, 0o755) }
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (OSFS) ReadFile(name string) ([]byte, error)      { return os.ReadFile(name) }
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
func (OSFS) Remove(name string) error               { return os.Remove(name) }
func (OSFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }
func (OSFS) SyncDir(dir string) error               { return fsyncDir(dir) }
