// Degraded-mode tests live outside the journal package: they script disk
// faults through fsfault.FS, which imports journal for the FS interface,
// so an in-package import would be a cycle.
package journal_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dcstream/internal/bitvec"
	"dcstream/internal/faultinject/fsfault"
	"dcstream/internal/journal"
	"dcstream/internal/transport"
)

func degMsg(router, epoch int) transport.AlignedDigest {
	v := bitvec.New(256)
	s := uint64(router*1000 + epoch)
	v.FillRandomHalf(func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	})
	return transport.AlignedDigest{RouterID: router, Epoch: epoch, Bitmap: v}
}

func replayAll(t *testing.T, j *journal.Journal) []transport.AlignedDigest {
	t.Helper()
	var got []transport.AlignedDigest
	if err := j.Replay(func(m transport.Message) error {
		got = append(got, m.(transport.AlignedDigest))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestDegradedAbsorbsAppendFaults is the core overload contract: a disk
// fault on append flips the journal to Degraded instead of propagating as
// fatal, every suspended append is counted (replay honesty), and an explicit
// re-arm restores service on a fresh segment without losing the pre-fault
// frames.
func TestDegradedAbsorbsAppendFaults(t *testing.T) {
	dir := t.TempDir()
	fs := fsfault.NewFS(nil)
	enospc := errors.New("no space left on device")
	// RetryInterval is huge so the backoff timer cannot fire mid-test; the
	// recovery below is driven explicitly through TryRearm.
	j, err := journal.Open(dir, journal.Options{FS: fs, RetryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(degMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(degMsg(1, 1)); err != nil {
		t.Fatal(err)
	}

	fs.FailNext(fsfault.FaultWrite, 1, enospc)
	if err := j.Append(degMsg(2, 1)); !errors.Is(err, journal.ErrDegraded) || !errors.Is(err, enospc) {
		t.Fatalf("append on full disk returned %v, want ErrDegraded wrapping the cause", err)
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after append fault")
	}
	// The ingest path keeps calling Append; each one is absorbed and counted.
	for i := 0; i < 3; i++ {
		if err := j.Append(degMsg(3+i, 1)); !errors.Is(err, journal.ErrDegraded) {
			t.Fatalf("absorbed append %d returned %v", i, err)
		}
	}
	if got := j.Stats().UnjournaledFrames; got != 4 {
		t.Fatalf("unjournaled frames = %d, want 4 (trigger + 3 absorbed)", got)
	}

	// Disk "fixed": re-arm restores appends on a fresh segment.
	if !j.TryRearm() {
		t.Fatal("TryRearm failed with no faults armed")
	}
	if j.Degraded() {
		t.Fatal("journal still degraded after successful re-arm")
	}
	if err := j.Append(degMsg(9, 2)); err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if s.Rearms != 1 || s.RearmAttempts < 1 {
		t.Fatalf("rearms=%d attempts=%d, want 1 rearm", s.Rearms, s.RearmAttempts)
	}

	// Crash and recover: the pre-fault and post-rearm frames replay; the
	// four unjournaled ones are honestly gone — exactly what the counter
	// promised.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := replayAll(t, j2)
	if len(got) != 3 {
		t.Fatalf("replayed %d frames, want 3 (2 pre-fault + 1 post-rearm)", len(got))
	}
	routers := map[int]bool{}
	for _, d := range got {
		routers[d.RouterID] = true
	}
	for _, r := range []int{0, 1, 9} {
		if !routers[r] {
			t.Fatalf("journaled frame from router %d missing after recovery (got %v)", r, routers)
		}
	}
}

// TestDegradedAutoRearmOnBackoff: with a short RetryInterval, Append itself
// re-arms once the backoff expires — no operator intervention needed.
func TestDegradedAutoRearmOnBackoff(t *testing.T) {
	fs := fsfault.NewFS(nil)
	j, err := journal.Open(t.TempDir(), journal.Options{FS: fs, RetryInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fs.FailNext(fsfault.FaultWrite, 1, errors.New("EIO"))
	if err := j.Append(degMsg(0, 1)); !errors.Is(err, journal.ErrDegraded) {
		t.Fatalf("append fault returned %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := j.Append(degMsg(1, 1)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never auto-rearmed within 5s at a 1ms base backoff")
		}
		time.Sleep(time.Millisecond)
	}
	if s := j.Stats(); s.Rearms != 1 || s.Degraded {
		t.Fatalf("stats after auto-rearm: %+v", s)
	}
}

// TestDegradedRearmFailureKeepsBackoff: a re-arm that itself hits the disk
// stays degraded and counts the attempt; recovery succeeds once the fault
// clears.
func TestDegradedRearmFailureKeepsBackoff(t *testing.T) {
	fs := fsfault.NewFS(nil)
	j, err := journal.Open(t.TempDir(), journal.Options{FS: fs, RetryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	fs.FailNext(fsfault.FaultWrite, 1, errors.New("ENOSPC"))
	if err := j.Append(degMsg(0, 1)); !errors.Is(err, journal.ErrDegraded) {
		t.Fatalf("append fault returned %v", err)
	}
	// The re-arm's fresh-segment open fails too: still degraded.
	fs.FailNext(fsfault.FaultOpen, 1, errors.New("ENOSPC"))
	if j.TryRearm() {
		t.Fatal("TryRearm claimed success while OpenAppend was failing")
	}
	if s := j.Stats(); s.RearmAttempts != 1 || s.Rearms != 0 {
		t.Fatalf("attempts=%d rearms=%d after failed re-arm", s.RearmAttempts, s.Rearms)
	}
	if !j.TryRearm() {
		t.Fatal("TryRearm failed after the fault cleared")
	}
	if err := j.Append(degMsg(1, 1)); err != nil {
		t.Fatal(err)
	}
}

// TestAppendShortWriteReconcilesOffset is the satellite regression: a failed
// append used to leave the in-memory offset advanced past the bytes actually
// written, so the torn half-frame stayed on disk and desynchronized the
// recovery scan. Now the segment is truncated back to the last whole-frame
// boundary at fault time, and a crash-reopen finds a cleanly framed file.
func TestAppendShortWriteReconcilesOffset(t *testing.T) {
	dir := t.TempDir()
	fs := fsfault.NewFS(nil)
	j, err := journal.Open(dir, journal.Options{FS: fs, RetryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(degMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	fs.ShortWriteNext(1)
	if err := j.Append(degMsg(1, 1)); !errors.Is(err, journal.ErrDegraded) {
		t.Fatalf("short write returned %v, want ErrDegraded", err)
	}
	if got := j.Stats().TailsTruncated; got != 1 {
		t.Fatalf("tails truncated = %d, want 1 (the in-place reconcile)", got)
	}
	if !j.TryRearm() {
		t.Fatal("re-arm failed")
	}
	if err := j.Append(degMsg(2, 1)); err != nil {
		t.Fatal(err)
	}

	// Crash-reopen: both journaled frames replay, and no recovery-time
	// truncation was needed — the reconcile already happened physically.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Stats().TailsTruncated; got != 0 {
		t.Fatalf("reopen truncated %d tails — failed append left a torn frame on disk", got)
	}
	got := replayAll(t, j2)
	if len(got) != 2 || got[0].RouterID != 0 || got[1].RouterID != 2 {
		ids := make([]int, len(got))
		for i, d := range got {
			ids[i] = d.RouterID
		}
		t.Fatalf("replayed routers %v, want [0 2]", ids)
	}
}

// TestMidSegmentCorruptionQuarantined: corruption in the middle of a segment
// no longer forfeits every frame after the torn point — the segment is moved
// to quarantine/ and the frames beyond the corrupt gap are rescued by the
// resynchronizing scan, across multiple crash-reopens.
func TestMidSegmentCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if err := j.Append(degMsg(r, 1+r)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash without Close, then corrupt the middle of the second frame.
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.dcsj"))
	if len(segs) != 1 {
		t.Fatalf("segments on disk: %v", segs)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	frameLen := len(data) / 4 // four identically sized aligned frames
	for i := frameLen + frameLen/2; i < frameLen+frameLen/2+8; i++ {
		data[i] ^= 0xFF
	}
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := j2.Stats()
	if s.SegmentsQuarantined != 1 || s.FramesRescued != 2 {
		t.Fatalf("quarantined=%d rescued=%d, want 1 segment and 2 frames", s.SegmentsQuarantined, s.FramesRescued)
	}
	got := replayAll(t, j2)
	if len(got) != 3 || got[0].RouterID != 0 || got[1].RouterID != 2 || got[2].RouterID != 3 {
		ids := make([]int, len(got))
		for i, d := range got {
			ids[i] = d.RouterID
		}
		t.Fatalf("replayed routers %v, want [0 2 3] (frame 1 corrupt, 2-3 rescued)", ids)
	}
	// The file was physically moved aside.
	if _, err := os.Stat(segs[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt segment still in the journal dir: %v", err)
	}
	qfiles, _ := filepath.Glob(filepath.Join(dir, "quarantine", "seg-*.dcsj"))
	if len(qfiles) != 1 {
		t.Fatalf("quarantine dir holds %v, want the moved segment", qfiles)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// A second crash before analysis: the quarantined survivors must still
	// replay — quarantine is a holding pen, not a black hole.
	j3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, j3); len(got) != 3 {
		t.Fatalf("second reopen replayed %d frames, want 3", len(got))
	}
	// Analyzing every surviving epoch retires the quarantined entry from the
	// replay set, but the artifact stays on disk for forensics.
	for _, e := range []int{1, 3, 4} {
		if err := j3.EpochAnalyzed(e); err != nil {
			t.Fatal(err)
		}
	}
	if n := j3.Segments(); n != 0 {
		t.Fatalf("sealed segments = %d after analyzing all epochs, want 0", n)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
	if qfiles, _ = filepath.Glob(filepath.Join(dir, "quarantine", "seg-*.dcsj")); len(qfiles) != 1 {
		t.Fatalf("quarantined artifact deleted (%v) — forensics evidence must survive purge", qfiles)
	}
	// And a third open replays nothing: the rescued epochs are durably
	// analyzed even though the quarantined file persists.
	j4, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if got := replayAll(t, j4); len(got) != 0 {
		t.Fatalf("analyzed quarantined epochs replayed again: %d frames", len(got))
	}
}

// TestEpochAnalyzedRollbackOnSidecarFault: a mark whose sidecar write fails
// is rolled back — the epoch replays after a crash instead of being purged
// on the strength of a mark that never reached the disk.
func TestEpochAnalyzedRollbackOnSidecarFault(t *testing.T) {
	dir := t.TempDir()
	fs := fsfault.NewFS(nil)
	j, err := journal.Open(dir, journal.Options{FS: fs, RetryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(degMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	fs.FailNext(fsfault.FaultWrite, 1, errors.New("EIO"))
	if err := j.EpochAnalyzed(1); !errors.Is(err, journal.ErrDegraded) {
		t.Fatalf("failed mark returned %v, want ErrDegraded", err)
	}
	// Crash now: the epoch must replay — the mark was rolled back.
	j2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := replayAll(t, j2); len(got) != 1 {
		t.Fatalf("replayed %d frames after rolled-back mark, want 1", len(got))
	}
	// Recovery path on the faulted journal: re-arm, mark again, and the mark
	// sticks this time.
	if !j.TryRearm() {
		t.Fatal("re-arm failed")
	}
	if err := j.EpochAnalyzed(1); err != nil {
		t.Fatal(err)
	}
	j3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if got := replayAll(t, j3); len(got) != 0 {
		t.Fatalf("replayed %d frames after durable mark, want 0", len(got))
	}
}
