package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dcstream/internal/bitvec"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

func testBitmap(seed uint64, bits int) *bitvec.Vector {
	v := bitvec.New(bits)
	s := seed
	v.FillRandomHalf(func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	})
	return v
}

func alignedMsg(router, epoch int) transport.AlignedDigest {
	return transport.AlignedDigest{
		RouterID: router, Epoch: epoch,
		Bitmap: testBitmap(uint64(router*1000+epoch), 256),
	}
}

func unalignedMsg(router, epoch int) transport.UnalignedDigest {
	d := &unaligned.Digest{RouterID: router, Rows: make([][]*bitvec.Vector, 2)}
	for g := range d.Rows {
		d.Rows[g] = []*bitvec.Vector{
			testBitmap(uint64(router*100+epoch*10+g), 128),
			testBitmap(uint64(router*100+epoch*10+g+5), 128),
		}
	}
	return transport.UnalignedDigest{Epoch: epoch, Digest: d}
}

func collectReplay(t *testing.T, j *Journal) []transport.Message {
	t.Helper()
	var got []transport.Message
	if err := j.Replay(func(m transport.Message) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAppendCrashReplay is the core crash contract: append frames, "crash"
// (drop the journal without Close), reopen, and every frame comes back in
// append order.
func TestAppendCrashReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []transport.Message{
		alignedMsg(0, 1), alignedMsg(1, 1), unalignedMsg(2, 1),
		alignedMsg(0, 2), unalignedMsg(1, 2),
	}
	for _, m := range want {
		if err := j.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process dies here.

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := collectReplay(t, j2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for i, m := range got {
		switch d := m.(type) {
		case transport.AlignedDigest:
			w, ok := want[i].(transport.AlignedDigest)
			if !ok || d.RouterID != w.RouterID || d.Epoch != w.Epoch || !bitvec.Equal(d.Bitmap, w.Bitmap) {
				t.Fatalf("frame %d mismatch: %+v", i, d)
			}
		case transport.UnalignedDigest:
			w, ok := want[i].(transport.UnalignedDigest)
			if !ok || d.Digest.RouterID != w.Digest.RouterID || d.Epoch != w.Epoch {
				t.Fatalf("frame %d mismatch: %+v", i, d)
			}
		}
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage (and a partial
// frame) after valid frames is cut off at Open, and only the valid prefix
// replays.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(alignedMsg(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(alignedMsg(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a valid frame prefix (cut mid-payload) after the good
	// frames, as an interrupted write would leave.
	var frame bytes.Buffer
	if err := transport.Write(&frame, alignedMsg(2, 1)); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != 1 {
		t.Fatalf("segments on disk: %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := frame.Bytes()[:frame.Len()/2]
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Stats().TailsTruncated; n != 1 {
		t.Fatalf("tails truncated = %d, want 1", n)
	}
	got := collectReplay(t, j2)
	if len(got) != 2 {
		t.Fatalf("replayed %d frames after torn tail, want 2", len(got))
	}
	// The truncation is physical: a third Open sees a clean segment.
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if n := j3.Stats().TailsTruncated; n != 0 {
		t.Fatalf("second open truncated again (%d) — truncation not persisted", n)
	}
}

// TestEpochAnalyzedRotatesAndPurges: marking epochs analyzed rotates the
// active segment, persists the mark across restarts, skips analyzed frames
// on replay, and deletes segments once all their epochs are analyzed.
func TestEpochAnalyzedRotatesAndPurges(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Segment A: epochs 1 and 2 interleaved.
	j.Append(alignedMsg(0, 1))
	j.Append(alignedMsg(0, 2))
	if err := j.EpochAnalyzed(1); err != nil { // rotates; A={1,2} not purgeable
		t.Fatal(err)
	}
	// Segment B: epoch 3 only.
	j.Append(alignedMsg(0, 3))
	if j.Segments() != 1 {
		t.Fatalf("sealed segments = %d, want 1", j.Segments())
	}

	// Crash and recover: epoch 1 must not replay, epochs 2 and 3 must.
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := collectReplay(t, j2)
	epochs := map[int]int{}
	for _, m := range got {
		e, _ := epochOf(m)
		epochs[e]++
	}
	if len(got) != 2 || epochs[2] != 1 || epochs[3] != 1 {
		t.Fatalf("replayed epochs %v, want one frame each for 2 and 3", epochs)
	}
	if s := j2.Stats(); s.FramesSkipped != 1 {
		t.Fatalf("frames skipped = %d, want 1 (the analyzed epoch)", s.FramesSkipped)
	}

	// Analyzing 2 purges segment A (both its epochs done); analyzing 3
	// purges B.
	if err := j2.EpochAnalyzed(2); err != nil {
		t.Fatal(err)
	}
	if err := j2.EpochAnalyzed(3); err != nil {
		t.Fatal(err)
	}
	if j2.Segments() != 0 {
		t.Fatalf("sealed segments = %d after full analysis, want 0", j2.Segments())
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != 0 {
		t.Fatalf("segment files left on disk after purge: %v", segs)
	}
}

// TestCleanRestartLeavesNoGarbage: repeated open/close cycles with no
// traffic must not accumulate empty segment files.
func TestCleanRestartLeavesNoGarbage(t *testing.T) {
	dir := t.TempDir()
	for i := 0; i < 5; i++ {
		j, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) != 0 {
		t.Fatalf("empty segments accumulated: %v", segs)
	}
}

// TestClosedJournalRefusesWrites: operations after Close fail loudly rather
// than writing into a closed file.
func TestClosedJournalRefusesWrites(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(alignedMsg(0, 1)); err != ErrClosed {
		t.Fatalf("append on closed journal: %v", err)
	}
	if err := j.EpochAnalyzed(1); err != ErrClosed {
		t.Fatalf("mark on closed journal: %v", err)
	}
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// FuzzSegmentScan feeds arbitrary bytes to the recovery pipeline — the
// prefix scanner and the resynchronizing rescue scan behind quarantine. The
// scanner must never panic, the reported valid prefix must lie inside the
// input and end on a frame boundary, and rescanning that prefix must find it
// whole (the truncation fixpoint — a second recovery pass never cuts
// further). The rescue scan over the post-corruption remainder must never
// panic either, must be deterministic, and on a clean input must have
// nothing to rescue.
func FuzzSegmentScan(f *testing.F) {
	var seed bytes.Buffer
	transport.Write(&seed, transport.AlignedDigest{RouterID: 1, Epoch: 2, Bitmap: testBitmap(7, 128)})
	whole := append([]byte(nil), seed.Bytes()...)
	transport.Write(&seed, transport.UnalignedDigest{Epoch: 3, Digest: unalignedMsg(4, 3).Digest})
	f.Add(seed.Bytes())
	f.Add(whole[:len(whole)/2])
	f.Add([]byte{})
	f.Add([]byte("DCS1 but not really a frame"))
	// Mid-segment corruption shapes (not just torn tails): decodable frames
	// on both sides of a corrupt gap, which the quarantine path must rescue.
	midFlip := append([]byte(nil), seed.Bytes()...)
	for i := len(whole) / 2; i < len(whole)/2+4 && i < len(midFlip); i++ {
		midFlip[i] ^= 0xFF // corrupt the first frame's payload; the second survives
	}
	f.Add(midFlip)
	gap := append([]byte(nil), whole...)
	gap = append(gap, []byte("garbage DCS1 garbage")...)
	gap = append(gap, whole...)
	f.Add(gap)
	truncated := append([]byte(nil), whole[:len(whole)-3]...)
	truncated = append(truncated, whole...)
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		count := 0
		valid, torn, err := scanFrames(bytes.NewReader(data), func(transport.Message) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("scan error with non-failing fn: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside input of %d bytes", valid, len(data))
		}
		if !torn && valid != int64(len(data)) && count == 0 && valid != 0 {
			t.Fatalf("clean scan stopped early: valid=%d len=%d", valid, len(data))
		}
		count2 := 0
		valid2, torn2, _ := scanFrames(bytes.NewReader(data[:valid]), func(transport.Message) error {
			count2++
			return nil
		})
		if torn2 || valid2 != valid || count2 != count {
			t.Fatalf("truncation not a fixpoint: valid %d→%d torn2=%v frames %d→%d",
				valid, valid2, torn2, count, count2)
		}
		// The rescue scan the quarantine path runs over everything past the
		// corruption point: no panics, deterministic, and every rescued
		// frame decodes (delivery happens only through transport.Read).
		rest := data[minInt64(valid+1, int64(len(data))):]
		rescued, err := resyncFrames(rest, func(transport.Message) error { return nil })
		if err != nil {
			t.Fatalf("resync error with non-failing fn: %v", err)
		}
		rescued2, _ := resyncFrames(rest, nil)
		if rescued2 != rescued {
			t.Fatalf("resync not deterministic: %d then %d frames", rescued, rescued2)
		}
		if !torn && rescued != 0 {
			t.Fatalf("clean stream but resync past its end rescued %d frames", rescued)
		}
	})
}
