package center

import (
	"reflect"
	"testing"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// streamStep is one event in a scripted center run: either a message to
// ingest or an analyze call (epoch -1 means AnalyzeLatestComplete).
type streamStep struct {
	msg     transport.Message
	analyze bool
	epoch   int
}

func msgStep(m transport.Message) streamStep { return streamStep{msg: m} }
func analyzeStep(epoch int) streamStep       { return streamStep{analyze: true, epoch: epoch} }

// streamOutcome is everything externally observable from a scripted run:
// every report and error in call order, the shed tombstones, and the final
// counter snapshot. Two centers that differ only in AnalysisMode must produce
// DeepEqual outcomes — that is the equivalence contract.
type streamOutcome struct {
	Reports []WindowReport
	Errors  []string
	Shed    []WindowReport
	Stats   Snapshot
}

func runStream(cfg Config, steps []streamStep) streamOutcome {
	c := New(cfg)
	var out streamOutcome
	for _, st := range steps {
		if !st.analyze {
			c.Ingest(st.msg)
			continue
		}
		var rep WindowReport
		var err error
		if st.epoch < 0 {
			rep, err = c.AnalyzeLatestComplete()
		} else {
			rep, err = c.Analyze(st.epoch)
		}
		out.Reports = append(out.Reports, rep)
		if err != nil {
			out.Errors = append(out.Errors, err.Error())
		} else {
			out.Errors = append(out.Errors, "")
		}
	}
	out.Shed = c.TakeShedReports()
	out.Stats = c.Stats().Snapshot()
	return out
}

// streamingScript builds one message/analyze script exercising every ingest
// policy the incremental state must honor: out-of-order epochs, DupKeepLast
// retraction (a resend with *different* content), same-content duplicates,
// late digests after close, explicit and latest-complete analyzes, and
// analyzes of already-closed epochs.
func streamingScript(t *testing.T) []streamStep {
	t.Helper()
	base := simulate.AlignedScenario{
		Seed:              5,
		Routers:           32,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 3},
		BackgroundPackets: 2500,
		SegmentSize:       536,
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1, Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, ContentPackets: 12},
		{Epoch: 2},
		{Epoch: 3, Carriers: []int{4, 5, 6, 7, 8, 9, 10, 11}, ContentPackets: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	ucfg := unaligned.CollectorConfig{
		Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
		SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
		HashSeed: 77,
	}
	uA, err := simulate.RunUnaligned(simulate.UnalignedScenario{
		Seed: 6, Routers: 16, Collector: ucfg,
		BackgroundPackets: 183 * 4, ContentPackets: 60,
		Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	uB, err := simulate.RunUnaligned(simulate.UnalignedScenario{
		Seed: 9, Routers: 16, Collector: ucfg,
		BackgroundPackets: 183 * 4, ContentPackets: 0,
	})
	if err != nil {
		t.Fatal(err)
	}

	var steps []streamStep
	// Epochs 1 and 2 interleaved router by router, newest epoch first —
	// worst-case arrival order for the windowing.
	for r := 0; r < base.Routers; r++ {
		steps = append(steps,
			msgStep(epochs[2].DigestMessages(2)[r]),
			msgStep(epochs[1].DigestMessages(1)[r]))
	}
	for _, m := range uA.DigestMessages(1) {
		steps = append(steps, msgStep(m))
	}
	for _, m := range uB.DigestMessages(2) {
		steps = append(steps, msgStep(m))
	}
	steps = append(steps,
		// Duplicate resends. Router 3's epoch-1 aligned digest and router 5's
		// epoch-1 unaligned digest are resent with *different* content
		// (epoch 2's), so DupKeepLast must retract the original contribution
		// from the incremental state, while DupKeepFirst must ignore the
		// resend entirely. Router 7 resends identical content — a retract-
		// and-re-add that must be a perfect no-op.
		msgStep(epochs[2].DigestMessages(1)[3]),
		msgStep(uB.DigestMessages(1)[5]),
		msgStep(epochs[1].DigestMessages(1)[7]),
		msgStep(uA.DigestMessages(1)[2]),
	)
	// Epoch 3 opens (evicting epoch 1 under a tight ring).
	for _, m := range epochs[3].DigestMessages(3) {
		steps = append(steps, msgStep(m))
	}
	steps = append(steps,
		analyzeStep(-1), // newest complete epoch
		// Late digests after the close above.
		msgStep(epochs[2].DigestMessages(2)[0]),
		msgStep(epochs[1].DigestMessages(1)[0]),
		analyzeStep(1),  // out-of-order explicit close (ErrNoWindow under a tight ring)
		analyzeStep(1),  // already closed: ErrNoWindow
		analyzeStep(3),  // forced close of the newest epoch
		analyzeStep(-1), // nothing left
	)
	return steps
}

// TestIncrementalMatchesBatch is the equivalence contract: for every config
// variant (duplicate policies, ring eviction, quorum gating) and every worker
// count, the incremental center's externally observable outcome — reports,
// errors, tombstones, counters — is DeepEqual to the batch reference's.
func TestIncrementalMatchesBatch(t *testing.T) {
	steps := streamingScript(t)
	variants := []struct {
		name string
		cfg  Config
	}{
		{"defaults", Config{SubsetSize: 256}},
		{"keepfirst", Config{SubsetSize: 256, Duplicates: DupKeepFirst}},
		{"tightring", Config{SubsetSize: 256, MaxEpochs: 2}},
		{"quorum", Config{SubsetSize: 256, MinRouters: 33, MaxWait: 1}},
	}
	for _, v := range variants {
		refCfg := v.cfg
		refCfg.Analysis = AnalysisBatch
		refCfg.Parallelism = 1
		ref := runStream(refCfg, steps)
		for _, workers := range []int{1, 4, 8} {
			for _, mode := range []AnalysisMode{AnalysisBatch, AnalysisIncremental} {
				cfg := v.cfg
				cfg.Analysis = mode
				cfg.Parallelism = workers
				got := runStream(cfg, steps)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s: mode %d workers %d diverged from batch/1 reference:\ngot  %+v\nwant %+v",
						v.name, mode, workers, got, ref)
				}
			}
		}
		if v.name == "defaults" {
			// Non-vacuity: the scripted content must actually be detected, and
			// the retraction paths must actually have fired.
			var rep1 *WindowReport
			for i := range ref.Reports {
				if ref.Errors[i] == "" && ref.Reports[i].Epoch == 1 {
					rep1 = &ref.Reports[i]
				}
			}
			if rep1 == nil {
				t.Fatal("defaults script never analyzed epoch 1")
			}
			if rep1.Aligned == nil || !rep1.Aligned.Detection.Found {
				t.Fatalf("epoch 1 aligned content not detected: %+v", rep1.Aligned)
			}
			if rep1.Unaligned == nil || !rep1.Unaligned.ER.PatternDetected {
				t.Fatalf("epoch 1 unaligned content not detected: %+v", rep1.Unaligned)
			}
			if ref.Stats.ReplacedDigests < 4 {
				t.Fatalf("script replaced only %d digests, retraction untested", ref.Stats.ReplacedDigests)
			}
			if ref.Stats.LateDigests == 0 {
				t.Fatal("script produced no late digests")
			}
		}
	}
}

// TestIncrementalFallbackMatchesBatch drives the incremental path onto its
// per-window batch fallbacks — mixed aligned widths, and an unaligned
// replacement that shrank a router's group count past what the tracker can
// retract exactly — and requires the outcome to still match batch, errors
// included.
func TestIncrementalFallbackMatchesBatch(t *testing.T) {
	mixedWidths := func(mode AnalysisMode) (WindowReport, string) {
		c := New(Config{Analysis: mode})
		wide := bitvec.New(512)
		s := uint64(99)
		wide.FillRandomHalf(func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s
		})
		c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(1)})
		c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: wide})
		rep, err := c.Analyze(1)
		if err == nil {
			return rep, ""
		}
		return rep, err.Error()
	}
	bRep, bErr := mixedWidths(AnalysisBatch)
	iRep, iErr := mixedWidths(AnalysisIncremental)
	if bErr == "" || bErr != iErr || !reflect.DeepEqual(bRep, iRep) {
		t.Fatalf("mixed-width outcomes diverged: batch (%q, %+v) vs incremental (%q, %+v)", bErr, bRep, iErr, iRep)
	}

	// An unaligned digest with `groups` groups of 2 arrays; group 0 carries
	// the shared content vector so cross-router edges exist.
	shared := smallBitmap(7)
	mkU := func(router, groups int, seed uint64) *unaligned.Digest {
		d := &unaligned.Digest{RouterID: router, Rows: make([][]*bitvec.Vector, groups)}
		for g := range d.Rows {
			a, b := smallBitmap(seed+uint64(g)*2), smallBitmap(seed+uint64(g)*2+1)
			if g == 0 {
				a, b = shared, shared
			}
			d.Rows[g] = []*bitvec.Vector{a, b}
		}
		return d
	}
	groupShrink := func(mode AnalysisMode) (WindowReport, error) {
		c := New(Config{Analysis: mode})
		c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: mkU(0, 3, 100)})
		c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: mkU(1, 3, 200)})
		// DupKeepLast replacement shrinks router 0 from 3 groups to 2: the
		// tracker's vertex high-water mark exceeds the live count, forcing the
		// window onto the batch fallback.
		c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: mkU(0, 2, 300)})
		return c.Analyze(1)
	}
	bRep2, bErr2 := groupShrink(AnalysisBatch)
	iRep2, iErr2 := groupShrink(AnalysisIncremental)
	if bErr2 != nil || iErr2 != nil {
		t.Fatalf("group-shrink analyze errored: batch %v incremental %v", bErr2, iErr2)
	}
	if !reflect.DeepEqual(bRep2, iRep2) {
		t.Fatalf("group-shrink outcomes diverged:\nbatch       %+v\nincremental %+v", bRep2, iRep2)
	}
	if iRep2.Unaligned == nil || iRep2.Unaligned.Vertices != 5 {
		t.Fatalf("group-shrink analysis saw %+v, want 5 vertices", iRep2.Unaligned)
	}
}

// TestSlidingWindowFindsStraddlingContent plants one common content across an
// epoch boundary: epoch 1's carriers are routers 0-6, epoch 2's are routers
// 8-14, and neither epoch alone has enough carriers to cross the component
// threshold. Classic per-epoch analysis misses it in both epochs; a
// WindowSlide=2 center joins the two halves inside the [1,2] span and detects
// it — in both analysis modes, identically.
func TestSlidingWindowFindsStraddlingContent(t *testing.T) {
	base := simulate.UnalignedScenario{
		Seed:    11,
		Routers: 16,
		Collector: unaligned.CollectorConfig{
			Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
			SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
			HashSeed: 7,
		},
		BackgroundPackets: 183 * 4,
		ContentPackets:    60,
	}
	scA := base
	scA.Carriers = []int{0, 1, 2, 3, 4, 5, 6}
	scB := base
	scB.Carriers = []int{8, 9, 10, 11, 12, 13, 14}
	// Same Seed means RunUnaligned draws the same content stream for both
	// scenarios — the two epochs really do carry the same content, held by
	// disjoint router sets.
	resA, err := simulate.RunUnaligned(scA)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := simulate.RunUnaligned(scB)
	if err != nil {
		t.Fatal(err)
	}
	ingest := func(c *Center) {
		for _, m := range resA.DigestMessages(1) {
			c.Ingest(m)
		}
		for _, m := range resB.DigestMessages(2) {
			c.Ingest(m)
		}
	}

	// Per-epoch baseline: each half is below threshold on its own.
	plain := New(Config{})
	ingest(plain)
	for _, e := range []int{1, 2} {
		rep, err := plain.Analyze(e)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Unaligned == nil {
			t.Fatalf("epoch %d missing unaligned analysis", e)
		}
		if rep.Unaligned.ER.PatternDetected {
			t.Fatalf("epoch %d detected the half-content alone (component %d >= %d): sliding test is vacuous",
				e, rep.Unaligned.ER.LargestComponent, rep.Unaligned.ER.Threshold)
		}
	}

	analyzeSliding := func(mode AnalysisMode) []WindowReport {
		c := New(Config{WindowSlide: 2, Analysis: mode})
		ingest(c)
		var reps []WindowReport
		for _, e := range []int{1, 2} {
			rep, err := c.Analyze(e)
			if err != nil {
				t.Fatalf("sliding mode %d Analyze(%d): %v", mode, e, err)
			}
			reps = append(reps, rep)
		}
		return reps
	}
	inc := analyzeSliding(AnalysisIncremental)
	batch := analyzeSliding(AnalysisBatch)
	if !reflect.DeepEqual(inc, batch) {
		t.Fatalf("sliding outcomes diverged:\nincremental %+v\nbatch       %+v", inc, batch)
	}

	span := inc[1]
	if span.SpanStart != 1 || !reflect.DeepEqual(span.SpanEpochs, []int{1, 2}) {
		t.Fatalf("span [1,2] not assembled: start %d epochs %v", span.SpanStart, span.SpanEpochs)
	}
	if !reflect.DeepEqual(span.RetiredEpochs, []int{1}) {
		t.Fatalf("span retired %v, want just epoch 1 (epoch 2 lives on in the next span)", span.RetiredEpochs)
	}
	if span.Unaligned == nil || !span.Unaligned.ER.PatternDetected {
		t.Fatalf("straddling content not detected by the sliding span: %+v", span.Unaligned)
	}
	// The implicated routers must straddle the boundary: some from each half.
	lo, hi := false, false
	for _, r := range span.Unaligned.Routers {
		if r <= 6 {
			lo = true
		}
		if r >= 8 {
			hi = true
		}
	}
	if !lo || !hi {
		t.Fatalf("pattern routers %v do not span both epochs' carriers", span.Unaligned.Routers)
	}
	// And the first span (epoch 1 alone) must still miss it.
	if inc[0].Unaligned != nil && inc[0].Unaligned.ER.PatternDetected {
		t.Fatal("span [1] detected the half-content alone")
	}
}

// TestBudgetCountsAccumulatorBytes is the memory-ledger regression test for
// incremental mode: the aligned accumulator and the tracker evidence are
// charged against MemoryBudgetBytes, shedding releases them, and analysis
// drains the ledger to exactly zero — buffered + shed = ingested throughout.
func TestBudgetCountsAccumulatorBytes(t *testing.T) {
	const width = 1024
	wideBitmap := func(seed uint64) *bitvec.Vector {
		v := bitvec.New(width)
		s := seed
		v.FillRandomHalf(func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s
		})
		return v
	}
	epochMsgs := func(e int) []transport.Message {
		msgs := make([]transport.Message, 0, 4)
		for r := 0; r < 4; r++ {
			msgs = append(msgs, transport.AlignedDigest{
				RouterID: r, Epoch: e, Bitmap: wideBitmap(uint64(e*100 + r)),
			})
		}
		return msgs
	}
	footprint := func(mode AnalysisMode) int64 {
		c := New(Config{Analysis: mode, MaxEpochs: 8})
		for _, m := range epochMsgs(1) {
			c.Ingest(m)
		}
		return c.BufferedBytes()
	}
	incOne := footprint(AnalysisIncremental)
	batchOne := footprint(AnalysisBatch)
	if incOne <= batchOne {
		t.Fatalf("incremental footprint %d not above digest-only footprint %d: accumulator bytes unaccounted",
			incOne, batchOne)
	}

	// A budget that holds one epoch's accumulator but not two: epoch 2's
	// arrival must shed epoch 1 whole — digests *and* accumulator — leaving
	// exactly one epoch's footprint resident.
	budget := incOne + incOne/2
	c := New(Config{MaxEpochs: 8, MemoryBudgetBytes: budget})
	for _, m := range epochMsgs(1) {
		c.Ingest(m)
	}
	for _, m := range epochMsgs(2) {
		c.Ingest(m)
	}
	snap := c.Stats().Snapshot()
	if snap.ShedEpochs != 1 || snap.ShedDigests != 4 {
		t.Fatalf("shed %d epochs / %d digests, want 1/4", snap.ShedEpochs, snap.ShedDigests)
	}
	if got := c.BufferedBytes(); got > budget {
		t.Fatalf("buffered %d exceeds budget %d after shedding", got, budget)
	}
	if got := c.BufferedBytes(); got != incOne {
		t.Fatalf("buffered %d after shed, want exactly one epoch's footprint %d: shed epoch's state not fully released",
			got, incOne)
	}
	a, u := c.Pending()
	if int64(a+u)+snap.ShedDigests != snap.DigestsIngested {
		t.Fatalf("ledger broken: buffered %d + shed %d != ingested %d", a+u, snap.ShedDigests, snap.DigestsIngested)
	}
	reps := c.TakeShedReports()
	if len(reps) != 1 || !reps[0].Shed || reps[0].Epoch != 1 || reps[0].ShedDigests != 4 {
		t.Fatalf("shed tombstones %+v, want one for epoch 1 with 4 digests", reps)
	}
	if _, err := c.Analyze(2); err != nil {
		t.Fatal(err)
	}
	if got := c.BufferedBytes(); got != 0 {
		t.Fatalf("buffered %d after the last epoch analyzed, want 0: accumulator bytes leaked", got)
	}

	// The unaligned tracker's members and pair evidence are charged and
	// released the same way. Correlated digests (a shared group vector)
	// guarantee the evidence is non-empty.
	shared := smallBitmap(42)
	mkU := func(router int, seed uint64) transport.Message {
		d := &unaligned.Digest{RouterID: router, Rows: [][]*bitvec.Vector{
			{shared, shared},
			{smallBitmap(seed), smallBitmap(seed + 1)},
		}}
		return transport.UnalignedDigest{Epoch: 1, Digest: d}
	}
	ci := New(Config{MaxEpochs: 8})
	cb := New(Config{Analysis: AnalysisBatch, MaxEpochs: 8})
	for r := 0; r < 4; r++ {
		ci.Ingest(mkU(r, uint64(500+10*r)))
		cb.Ingest(mkU(r, uint64(500+10*r)))
	}
	if ib, bb := ci.BufferedBytes(), cb.BufferedBytes(); ib <= bb {
		t.Fatalf("incremental unaligned footprint %d not above digest-only %d: tracker bytes unaccounted", ib, bb)
	}
	if _, err := ci.Analyze(1); err != nil {
		t.Fatal(err)
	}
	if got := ci.BufferedBytes(); got != 0 {
		t.Fatalf("buffered %d after unaligned analyze, want 0: tracker bytes leaked", got)
	}
}
