package center

import "testing"

// TestBetterReportOrder pins the duplicate-resolution total order every
// merge path shares: analyzed beats shed, complete beats degraded, more
// routers beats fewer, fewer rejections beats more, and exact ties keep the
// incumbent (never reorder).
func TestBetterReportOrder(t *testing.T) {
	clean := WindowReport{Epoch: 7, Routers: 4}
	cases := []struct {
		name string
		a, b WindowReport
		want bool
	}{
		{"AnalyzedBeatsShed", clean, WindowReport{Epoch: 7, Routers: 4, Degraded: true, Shed: true}, true},
		{"ShedLosesToAnalyzed", WindowReport{Epoch: 7, Routers: 4, Degraded: true, Shed: true}, clean, false},
		{"CompleteBeatsDegraded", clean, WindowReport{Epoch: 7, Routers: 4, Degraded: true}, true},
		{"DegradedShedStillBeatsShedWithFewerRouters",
			WindowReport{Epoch: 7, Routers: 5, Degraded: true, Shed: true},
			WindowReport{Epoch: 7, Routers: 2, Degraded: true, Shed: true}, true},
		{"MoreRoutersWins", WindowReport{Epoch: 7, Routers: 5}, clean, true},
		{"FewerRoutersLoses", WindowReport{Epoch: 7, Routers: 3}, clean, false},
		{"FewerRejectionsWins", clean, WindowReport{Epoch: 7, Routers: 4, RejectedDigests: 2}, true},
		{"ExactTieKeepsIncumbent", clean, clean, false},
		{"DegradedOutranksRouterCount",
			WindowReport{Epoch: 7, Routers: 2},
			WindowReport{Epoch: 7, Routers: 9, Degraded: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := BetterReport(tc.a, tc.b); got != tc.want {
				t.Fatalf("BetterReport(%+v, %+v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}
