package center

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/faultinject"
	"dcstream/internal/journal"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
)

// TestCrashRecoveryThroughChaosProxy is the kill-and-restart acceptance
// scenario: two epochs of digests reach the center through a lossy,
// corrupting, reordering proxy and are journaled as they arrive; the center
// then "crashes" (server closed, center and journal dropped without a drain
// or clean close). A restart replays the journal into a fresh center, which
// must produce the same verdicts — same pattern, same implicated routers —
// as an uninterrupted run fed directly.
func TestCrashRecoveryThroughChaosProxy(t *testing.T) {
	const fleet = 16
	carriers := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	base := simulate.AlignedScenario{
		Seed:              23,
		Routers:           fleet,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 9},
		BackgroundPackets: 1000,
		SegmentSize:       536,
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1, Carriers: carriers, ContentPackets: 12},
		{Epoch: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: an uninterrupted center fed directly.
	truth := map[int]WindowReport{}
	{
		c := New(Config{SubsetSize: 256})
		for _, e := range []int{1, 2} {
			for _, m := range epochs[e].DigestMessages(e) {
				c.Ingest(m)
			}
		}
		for _, e := range []int{1, 2} {
			rep, err := c.Analyze(e)
			if err != nil {
				t.Fatal(err)
			}
			truth[e] = rep
		}
	}
	if truth[1].Aligned == nil || !truth[1].Aligned.Detection.Found {
		t.Fatal("ground-truth run found no pattern; scenario parameters are off")
	}

	// The live path: chaos proxy -> server -> journal + center.
	dir := t.TempDir()
	jr, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	live := New(Config{SubsetSize: 256})
	var mu sync.Mutex
	seen := map[[2]int]bool{}
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		if err := jr.Append(m); err != nil {
			t.Errorf("journal append: %v", err)
			return
		}
		live.Ingest(m)
		if d, ok := m.(transport.AlignedDigest); ok {
			mu.Lock()
			seen[[2]int{d.RouterID, d.Epoch}] = true
			mu.Unlock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faultinject.New(srv.Addr(), faultinject.Config{
		Seed:      99,
		Drop:      0.02,
		Duplicate: 0.05,
		Reorder:   0.05,
		Truncate:  0.01,
		BitFlip:   0.02,
		Delay:     0.2,
		ChunkSize: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	client := transport.NewReconnectingClient(proxy.Addr(), transport.ReconnectConfig{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	})
	defer client.Close()

	// The proxy corrupts and drops whole frames, and the client has no
	// acks, so delivery needs an application-level retry loop: resend
	// whatever the center has not recorded yet until everything landed.
	// (This is exactly why the center keeps DupKeepLast as its default —
	// the retries double-deliver constantly.)
	deadline := time.Now().Add(30 * time.Second)
	for {
		missing := 0
		for _, e := range []int{1, 2} {
			for _, m := range epochs[e].DigestMessages(e) {
				mu.Lock()
				ok := seen[[2]int{m.RouterID, m.Epoch}]
				mu.Unlock()
				if !ok {
					missing++
					client.Send(m)
				}
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d digests never made it through the chaos proxy", missing)
		}
		client.Flush(time.Second)
		time.Sleep(50 * time.Millisecond)
	}

	// Crash: the server stops accepting, and the center and journal are
	// abandoned mid-flight — no drain, no Close, no fsync of the tail.
	srv.Close()
	_ = live // the in-RAM windows die with the process

	// Restart: reopen the journal, replay into a fresh center, analyze.
	jr2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered := New(Config{SubsetSize: 256})
	if err := jr2.Replay(func(m transport.Message) error {
		recovered.Ingest(m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := jr2.Stats(); s.FramesReplayed < fleet*2 {
		t.Fatalf("replayed only %d frames, want at least %d", s.FramesReplayed, fleet*2)
	}
	for _, e := range []int{1, 2} {
		rep, err := recovered.Analyze(e)
		if err != nil {
			t.Fatalf("epoch %d after recovery: %v", e, err)
		}
		want := truth[e]
		if (rep.Aligned == nil) != (want.Aligned == nil) {
			t.Fatalf("epoch %d: recovered aligned=%v, truth=%v", e, rep.Aligned, want.Aligned)
		}
		if rep.Aligned.Detection.Found != want.Aligned.Detection.Found {
			t.Fatalf("epoch %d: recovered found=%v, truth found=%v",
				e, rep.Aligned.Detection.Found, want.Aligned.Detection.Found)
		}
		if !reflect.DeepEqual(rep.Aligned.RouterIDs, want.Aligned.RouterIDs) {
			t.Fatalf("epoch %d: recovered implicated %v, truth %v",
				e, rep.Aligned.RouterIDs, want.Aligned.RouterIDs)
		}
	}

	// Marking epoch 1 analyzed means a further restart replays only epoch
	// 2 — analyzed windows never come back.
	if err := jr2.EpochAnalyzed(1); err != nil {
		t.Fatal(err)
	}
	if err := jr2.Close(); err != nil {
		t.Fatal(err)
	}
	jr3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	if err := jr3.Replay(func(m transport.Message) error {
		if d, ok := m.(transport.AlignedDigest); !ok || d.Epoch != 2 {
			return fmt.Errorf("analyzed epoch replayed: %#v", m)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
