package center

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// newTestUnaligned builds a tiny well-formed unaligned digest for ingest
// bookkeeping tests (its contents never reach an analysis).
func newTestUnaligned(router int) *unaligned.Digest {
	d := &unaligned.Digest{RouterID: router, Rows: make([][]*bitvec.Vector, 2)}
	for g := range d.Rows {
		d.Rows[g] = []*bitvec.Vector{bitvec.New(64), bitvec.New(64)}
	}
	return d
}

func smallBitmap(seed uint64) *bitvec.Vector {
	v := bitvec.New(256)
	s := seed
	v.FillRandomHalf(func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	})
	return v
}

func TestEpochsKeptSeparate(t *testing.T) {
	// Epoch 1 carries a common content, epoch 2 is pure background, and
	// every router re-reports for epoch 2 — the headline bug was epoch-2
	// bitmaps overwriting epoch-1 bitmaps for the same router ids.
	base := simulate.AlignedScenario{
		Seed:              5,
		Routers:           32,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 3},
		BackgroundPackets: 2500,
		SegmentSize:       536,
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1, Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, ContentPackets: 12},
		{Epoch: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{SubsetSize: 256})
	// Interleave the two epochs' digests router by router, epoch 2 first —
	// worst-case arrival order.
	for r := 0; r < base.Routers; r++ {
		c.Ingest(epochs[2].DigestMessages(2)[r])
		c.Ingest(epochs[1].DigestMessages(1)[r])
	}

	rep1, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Epoch != 1 || rep1.Aligned == nil || !rep1.Aligned.Detection.Found {
		t.Fatalf("epoch 1 pattern lost to cross-epoch contamination: %+v", rep1.Aligned)
	}
	rep2, err := c.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Aligned == nil {
		t.Fatal("epoch 2 window missing")
	}
	if rep2.Aligned.Detection.Found {
		t.Fatalf("pure-background epoch 2 detected a pattern: %+v", rep2.Aligned)
	}
	if rep1.Aligned.Routers != 32 || rep2.Aligned.Routers != 32 {
		t.Fatalf("router counts %d/%d, want 32/32", rep1.Aligned.Routers, rep2.Aligned.Routers)
	}
}

func TestDuplicatePolicy(t *testing.T) {
	first, second := smallBitmap(1), smallBitmap(2)

	c := New(Config{}) // DupKeepLast
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: first})
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: second})
	if n := c.Stats().DuplicateDigests.Load(); n != 1 {
		t.Fatalf("duplicate counter %d", n)
	}
	if a, _ := c.Pending(); a != 1 {
		t.Fatalf("duplicate multiplied pending count: %d", a)
	}

	kf := New(Config{Duplicates: DupKeepFirst})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: first})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: second})
	if n := kf.Stats().DuplicateDigests.Load(); n != 1 {
		t.Fatalf("keep-first duplicate counter %d", n)
	}

	// Unaligned duplicates are tracked per router too.
	u := New(Config{})
	mk := func() transport.UnalignedDigest {
		return transport.UnalignedDigest{Epoch: 3, Digest: newTestUnaligned(9)}
	}
	u.Ingest(mk())
	u.Ingest(mk())
	if n := u.Stats().DuplicateDigests.Load(); n != 1 {
		t.Fatalf("unaligned duplicate counter %d", n)
	}
	if _, ua := u.Pending(); ua != 1 {
		t.Fatalf("unaligned duplicate multiplied pending: %d", ua)
	}
}

func TestLateDigestsDropped(t *testing.T) {
	c := New(Config{})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 5, Bitmap: smallBitmap(1)})
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 5, Bitmap: smallBitmap(2)})
	if _, err := c.Analyze(5); err != nil {
		t.Fatal(err)
	}
	// The window is gone: a straggler for epoch 5 (or anything older) is
	// late, not a new window.
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 5, Bitmap: smallBitmap(3)})
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 4, Bitmap: smallBitmap(4)})
	if n := c.Stats().LateDigests.Load(); n != 2 {
		t.Fatalf("late counter %d, want 2", n)
	}
	if len(c.Epochs()) != 0 {
		t.Fatalf("late digests reopened windows: %v", c.Epochs())
	}
	if _, err := c.Analyze(5); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("re-analysis of analyzed epoch: %v", err)
	}
}

func TestEpochRingEviction(t *testing.T) {
	c := New(Config{MaxEpochs: 2})
	for e := 1; e <= 3; e++ {
		c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
	}
	// Epoch 3 evicted epoch 1.
	got := c.Epochs()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("retained epochs %v, want [2 3]", got)
	}
	s := c.Stats().Snapshot()
	if s.EpochsEvicted != 1 || s.DroppedDigests != 1 {
		t.Fatalf("eviction counters: %+v", s)
	}
	// A newcomer older than the whole full ring is late.
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(9)})
	if n := c.Stats().LateDigests.Load(); n != 1 {
		t.Fatalf("old-epoch newcomer not counted late: %d", n)
	}
}

func TestAnalyzeLatestComplete(t *testing.T) {
	c := New(Config{})
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("empty center: %v", err)
	}
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(1)})
	// Only the newest epoch exists — nothing is complete yet.
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("newest epoch analyzed while possibly filling: %v", err)
	}
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 2, Bitmap: smallBitmap(2)})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 3, Bitmap: smallBitmap(3)})
	// Epochs 1 and 2 are both complete; latest-complete is 2.
	rep, err := c.AnalyzeLatestComplete()
	if err != nil || rep.Epoch != 2 {
		t.Fatalf("latest complete = %d (%v), want 2", rep.Epoch, err)
	}
	rep, err = c.AnalyzeLatestComplete()
	if err != nil || rep.Epoch != 1 {
		t.Fatalf("next complete = %d (%v), want 1", rep.Epoch, err)
	}
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("epoch 3 (newest) analyzed early: %v", err)
	}
}

// TestIngestAnalyzeRace hammers Ingest from many goroutines across several
// epochs while Analyze and the read-side accessors run concurrently; run
// with -race this is the concurrency safety net for the ingest path.
func TestIngestAnalyzeRace(t *testing.T) {
	c := New(Config{MaxEpochs: 8})
	const (
		writers = 8
		epochs  = 6
		perG    = 50
	)
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				e := 1 + (w+i)%epochs
				c.Ingest(transport.AlignedDigest{RouterID: w, Epoch: e, Bitmap: smallBitmap(uint64(w*1000 + i))})
				c.Ingest(transport.UnalignedDigest{Epoch: e, Digest: newTestUnaligned(w)})
			}
		}(w)
	}
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			c.Pending()
			c.Epochs()
			c.EpochDigests()
			c.AnalyzeLatestComplete()
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	// Every message ended exactly one way at ingest: accepted as a new
	// window entry, a keep-last replacement, or late. Dropped/evicted
	// digests were accepted first, so the ledger must balance exactly.
	s := c.Stats().Snapshot()
	total := int64(writers * perG * 2)
	if s.DigestsIngested+s.ReplacedDigests+s.LateDigests != total {
		t.Fatalf("digest accounting hole: ingested=%d replaced=%d late=%d dup=%d dropped=%d total=%d",
			s.DigestsIngested, s.ReplacedDigests, s.LateDigests, s.DuplicateDigests, s.DroppedDigests, total)
	}
	// Replacements are exactly the keep-last duplicates.
	if s.ReplacedDigests != s.DuplicateDigests {
		t.Fatalf("keep-last replaced=%d != duplicates=%d", s.ReplacedDigests, s.DuplicateDigests)
	}
}

// TestCorruptedFrameLeavesWindowIntact is the acceptance scenario: a frame
// corrupted mid-stream costs only the offending connection; digests already
// ingested stay in their windows and later collectors keep landing.
func TestCorruptedFrameLeavesWindowIntact(t *testing.T) {
	res, err := simulate.RunAligned(simulate.AlignedScenario{
		Seed:              9,
		Routers:           24,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 3},
		BackgroundPackets: 2500,
		SegmentSize:       536,
		ContentPackets:    12,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := res.DigestMessages(1)

	c := New(Config{SubsetSize: 256})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		c.Ingest(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// First half of the fleet delivers over one connection, then the same
	// connection turns to garbage mid-stream.
	evil, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	for _, m := range msgs[:12] {
		if err := transport.Write(evil, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := evil.Write([]byte("garbage garbage garbage garbage!")); err != nil {
		t.Fatal(err)
	}
	// The server must cut this connection.
	evil.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := evil.Read(one[:]); err == nil {
		t.Fatal("corrupted connection survived")
	}

	// The rest of the fleet arrives on fresh connections.
	for _, m := range msgs[12:] {
		cl, err := transport.Dial(srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Send(m); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a, _ := c.Pending(); a == 24 {
			break
		}
		if time.Now().After(deadline) {
			a, _ := c.Pending()
			t.Fatalf("only %d/24 digests survived the corruption", a)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := srv.Stats().BadFrames.Load(); n != 1 {
		t.Fatalf("bad frame counter %d, want 1", n)
	}

	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aligned == nil || !rep.Aligned.Detection.Found {
		t.Fatal("window lost to a single corrupted frame")
	}
}

// TestInterleavedEpochsOverOneConnection is the acceptance scenario: two
// epochs' digests alternate over a single TCP connection and are analyzed
// separately.
func TestInterleavedEpochsOverOneConnection(t *testing.T) {
	base := simulate.AlignedScenario{
		Seed:              11,
		Routers:           24,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 3},
		BackgroundPackets: 2500,
		SegmentSize:       536,
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1, Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, ContentPackets: 12},
		{Epoch: 2},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{SubsetSize: 256})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		c.Ingest(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := transport.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	m1, m2 := epochs[1].DigestMessages(1), epochs[2].DigestMessages(2)
	for r := 0; r < base.Routers; r++ {
		if err := cl.Send(m2[r]); err != nil {
			t.Fatal(err)
		}
		if err := cl.Send(m1[r]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if a, _ := c.Pending(); a == 2*base.Routers {
			break
		}
		if time.Now().After(deadline) {
			a, _ := c.Pending()
			t.Fatalf("only %d/%d digests ingested", a, 2*base.Routers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rep1, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := c.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Aligned == nil || !rep1.Aligned.Detection.Found {
		t.Fatal("epoch 1 pattern not detected after interleaving")
	}
	if rep2.Aligned == nil || rep2.Aligned.Detection.Found {
		t.Fatalf("epoch 2 contaminated: %+v", rep2.Aligned)
	}
}

// TestReconnectingCollectorAcrossCenterRestart is the acceptance scenario:
// a collector on a ReconnectingClient delivers both epochs even though the
// center process restarts between them.
func TestReconnectingCollectorAcrossCenterRestart(t *testing.T) {
	base := simulate.AlignedScenario{
		Seed:              13,
		Routers:           24,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 3},
		BackgroundPackets: 2500,
		SegmentSize:       536,
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1, Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, ContentPackets: 12},
		{Epoch: 2, Carriers: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, ContentPackets: 12},
	})
	if err != nil {
		t.Fatal(err)
	}

	// One Center outlives its transport incarnations, as dcsd's would not —
	// what matters is that every digest reaches *a* center ingest path.
	c := New(Config{SubsetSize: 256})
	handler := func(m transport.Message, _ net.Addr) { c.Ingest(m) }
	srv, err := transport.Serve("127.0.0.1:0", handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	client := transport.NewReconnectingClient(addr, transport.ReconnectConfig{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	defer client.Close()

	for _, m := range epochs[1].DigestMessages(1) {
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if left := client.Flush(10 * time.Second); left != 0 {
		t.Fatalf("%d epoch-1 digests stuck", left)
	}
	waitPending := func(want int) {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if a, _ := c.Pending(); a >= want {
				return
			}
			if time.Now().After(deadline) {
				a, _ := c.Pending()
				t.Fatalf("pending %d, want %d", a, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitPending(base.Routers)

	// Forced restart between epochs.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	for _, m := range epochs[2].DigestMessages(2) {
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	srv2, err := transport.Serve(addr, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if left := client.Flush(10 * time.Second); left != 0 {
		t.Fatalf("%d epoch-2 digests undelivered after restart", left)
	}
	waitPending(2 * base.Routers)

	for e := 1; e <= 2; e++ {
		rep, err := c.Analyze(e)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Aligned == nil || !rep.Aligned.Detection.Found {
			t.Fatalf("epoch %d pattern lost across center restart", e)
		}
		if rep.Aligned.Routers != base.Routers {
			t.Fatalf("epoch %d has %d routers, want %d", e, rep.Aligned.Routers, base.Routers)
		}
	}
	if n := client.Stats().Reconnects.Load(); n < 1 {
		t.Fatalf("reconnects = %d, want >= 1", n)
	}
}
