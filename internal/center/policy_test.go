package center

import (
	"sync"
	"testing"

	"dcstream/internal/transport"
)

// TestDupKeepFirstKeepsFirstDigest verifies the policy by identity, not just
// by counters: after a duplicate, the window must still hold the first
// digest under DupKeepFirst and the second under DupKeepLast.
func TestDupKeepFirstKeepsFirstDigest(t *testing.T) {
	first, second := smallBitmap(1), smallBitmap(2)

	kf := New(Config{Duplicates: DupKeepFirst})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: first})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: second})
	kf.mu.Lock()
	got := kf.windows[1].aligned[7]
	kf.mu.Unlock()
	if got != first {
		t.Fatal("DupKeepFirst replaced the first digest")
	}

	kl := New(Config{}) // DupKeepLast
	kl.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: first})
	kl.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: second})
	kl.mu.Lock()
	got = kl.windows[1].aligned[7]
	kl.mu.Unlock()
	if got != second {
		t.Fatal("DupKeepLast kept the stale digest")
	}

	// Same contract for the unaligned slot.
	ufirst, usecond := newTestUnaligned(9), newTestUnaligned(9)
	ukf := New(Config{Duplicates: DupKeepFirst})
	ukf.Ingest(transport.UnalignedDigest{Epoch: 3, Digest: ufirst})
	ukf.Ingest(transport.UnalignedDigest{Epoch: 3, Digest: usecond})
	ukf.mu.Lock()
	w := ukf.windows[3]
	kept := w.unaligned[w.unalignedIdx[9]]
	ukf.mu.Unlock()
	if kept != ufirst {
		t.Fatal("DupKeepFirst replaced the first unaligned digest")
	}
	if a, u := ukf.Pending(); a != 0 || u != 1 {
		t.Fatalf("pending %d/%d after unaligned duplicate, want 0/1", a, u)
	}
}

// TestEvictionRaceAndLedger hammers a two-epoch ring from concurrent
// writers with ever-increasing epochs (an eviction storm) and checks the
// ledger invariant the Stats doc promises: every message seen is either
// ingested or late — dropped digests were ingested first, so they don't
// enter the equation. Run under -race this also exercises windowFor's
// eviction path for data races.
func TestEvictionRaceAndLedger(t *testing.T) {
	const (
		writers    = 8
		perWriter  = 200
		totalSends = writers * perWriter
	)
	c := New(Config{MaxEpochs: 2})
	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(router int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Epochs climb globally but interleave across writers, so
				// late arrivals and evictions both happen constantly.
				c.Ingest(transport.AlignedDigest{
					RouterID: router,
					Epoch:    i * 3,
					Bitmap:   smallBitmap(uint64(router*1000 + i)),
				})
			}
		}(wtr)
	}
	wg.Wait()

	s := c.Stats().Snapshot()
	if s.DigestsIngested+s.ReplacedDigests+s.LateDigests != totalSends {
		t.Fatalf("ledger broken: ingested %d + replaced %d + late %d != %d seen",
			s.DigestsIngested, s.ReplacedDigests, s.LateDigests, totalSends)
	}
	if s.EpochsEvicted == 0 {
		t.Fatal("eviction storm evicted nothing — the test lost its point")
	}
	if got := len(c.Epochs()); got > 2 {
		t.Fatalf("ring holds %d epochs, cap is 2", got)
	}
	if s.DroppedDigests == 0 {
		t.Fatal("evictions dropped no digests")
	}
}
