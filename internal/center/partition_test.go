package center

import (
	"errors"
	"testing"

	"dcstream/internal/transport"
)

// TestOwnsEpochFilterCountsMisrouted: a digest whose epoch fails the
// OwnsEpoch partition predicate is counted misrouted and dropped whole — no
// window opens, and the router registry never learns about the sender, so
// shard quorum reasons only about traffic actually routed here.
func TestOwnsEpochFilterCountsMisrouted(t *testing.T) {
	c := New(Config{OwnsEpoch: func(e int) bool { return e%2 == 0 }})
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 3, Bitmap: smallBitmap(1)})
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 4, Bitmap: smallBitmap(2)})
	s := c.Stats().Snapshot()
	if s.MisroutedDigests != 1 || s.DigestsIngested != 1 {
		t.Fatalf("misrouted=%d ingested=%d, want 1/1", s.MisroutedDigests, s.DigestsIngested)
	}
	if got := c.Epochs(); len(got) != 1 || got[0] != 4 {
		t.Fatalf("buffered epochs %v, want [4] (misrouted epoch must not open a window)", got)
	}
	if rs := c.Routers(); len(rs) != 1 || rs[0].RouterID != 2 {
		t.Fatalf("router registry %+v, want only router 2 (misrouted sender never registered)", rs)
	}
}

// TestOwnsSpanGatesAnalysis: Analyze refuses a non-owned span with
// ErrNotOwned, and AnalyzeLatestComplete only ever emits owned spans — the
// non-owned epochs this shard buffers as context are another shard's to
// report.
func TestOwnsSpanGatesAnalysis(t *testing.T) {
	c := New(Config{OwnsSpan: func(e int) bool { return e == 2 }})
	for epoch := 1; epoch <= 3; epoch++ {
		for r := 0; r < 2; r++ {
			c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: epoch, Bitmap: smallBitmap(uint64(epoch*10 + r))})
		}
	}
	if _, err := c.Analyze(1); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("Analyze of non-owned span: %v, want ErrNotOwned", err)
	}
	rep, err := c.AnalyzeLatestComplete()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("AnalyzeLatestComplete emitted epoch %d, want owned epoch 2 (epoch 1 skipped)", rep.Epoch)
	}
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("second AnalyzeLatestComplete: %v, want ErrNoCompleteEpoch (1 and 3 not owned / newest)", err)
	}
}

// TestVictimOrderPinnedAcrossEvictionAndShed is the satellite-3 table test:
// with epoch 1 quorum-held and epoch 2 a plain shed candidate, ring eviction
// and the ShedOldest budget path must pick the SAME victim — the oldest
// non-held epoch — and the per-epoch ledger (buffered + shed/dropped =
// ingested) must balance either way. Before the victim choice was unified,
// eviction spared the held window while shedding took it, so the two paths
// disagreed about which epoch survived the same pressure.
func TestVictimOrderPinnedAcrossEvictionAndShed(t *testing.T) {
	// seed puts routers 0,1 into epoch 1 (below the quorum of 3, with live
	// router 2 missing → held) and routers 0,1,2 into epoch 2 (at quorum).
	seed := func(c *Center) {
		for r := 0; r < 2; r++ {
			c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: smallBitmap(uint64(10 + r))})
		}
		for r := 0; r < 3; r++ {
			c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 2, Bitmap: smallBitmap(uint64(20 + r))})
		}
	}

	t.Run("Eviction", func(t *testing.T) {
		c := New(Config{Analysis: AnalysisBatch, MaxEpochs: 2, MinRouters: 3, MaxWait: 4})
		seed(c)
		if q := c.Quorum(1); !q.Hold {
			t.Fatalf("epoch 1 not held: %+v (test premise broken)", q)
		}
		c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 3, Bitmap: smallBitmap(30)})
		if got := c.Epochs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Fatalf("buffered %v, want [1 3]: eviction must take the oldest NON-HELD epoch (2), not the held 1", got)
		}
		s := c.Stats().Snapshot()
		if s.EpochsEvicted != 1 || s.DroppedDigests != 3 {
			t.Fatalf("evicted=%d dropped=%d, want 1 epoch / 3 digests", s.EpochsEvicted, s.DroppedDigests)
		}
		a, u := c.Pending()
		if int64(a+u)+s.DroppedDigests != s.DigestsIngested {
			t.Fatalf("ledger broken: buffered %d + dropped %d != ingested %d", a+u, s.DroppedDigests, s.DigestsIngested)
		}
		// The mid-ring victim is tombstoned: a straggler cannot reopen it.
		c.Ingest(transport.AlignedDigest{RouterID: 9, Epoch: 2, Bitmap: smallBitmap(99)})
		if got := c.Stats().Snapshot().LateDigests; got != 1 {
			t.Fatalf("straggler into evicted epoch: late=%d, want 1", got)
		}
	})

	t.Run("Shed", func(t *testing.T) {
		budget := digestCost() * 5 // holds the 5 seeded digests, not a 6th
		c := New(Config{Analysis: AnalysisBatch, MaxEpochs: 8, MinRouters: 3, MaxWait: 4,
			MemoryBudgetBytes: budget, Shedding: ShedOldest})
		seed(c)
		if q := c.Quorum(1); !q.Hold {
			t.Fatalf("epoch 1 not held: %+v (test premise broken)", q)
		}
		c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 3, Bitmap: smallBitmap(30)})
		if got := c.Epochs(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
			t.Fatalf("buffered %v, want [1 3]: shedding must take the oldest NON-HELD epoch (2), same victim as eviction", got)
		}
		s := c.Stats().Snapshot()
		if s.ShedEpochs != 1 || s.ShedDigests != 3 {
			t.Fatalf("shed epochs=%d digests=%d, want 1/3", s.ShedEpochs, s.ShedDigests)
		}
		a, u := c.Pending()
		if int64(a+u)+s.ShedDigests != s.DigestsIngested {
			t.Fatalf("ledger broken: buffered %d + shed %d != ingested %d", a+u, s.ShedDigests, s.DigestsIngested)
		}
		reps := c.TakeShedReports()
		if len(reps) != 1 || reps[0].Epoch != 2 || !reps[0].Shed || reps[0].ShedDigests != 3 {
			t.Fatalf("shed tombstones %+v, want one honest report for epoch 2", reps)
		}
	})

	t.Run("AllHeld", func(t *testing.T) {
		// When every candidate is held, memory pressure still wins: the
		// overall oldest goes, because a refused shed would OOM.
		budget := digestCost() * 2
		c := New(Config{Analysis: AnalysisBatch, MaxEpochs: 8, MinRouters: 3, MaxWait: 8,
			MemoryBudgetBytes: budget, Shedding: ShedOldest})
		for r := 0; r < 2; r++ {
			c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: smallBitmap(uint64(10 + r))})
		}
		// Router 2 reports only into epoch 2, making it live and missing from
		// epoch 1 → epoch 1 held; its own epoch 2 is below quorum with 0 and 1
		// missing → also held.
		c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 2, Bitmap: smallBitmap(22)})
		c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 3, Bitmap: smallBitmap(30)})
		s := c.Stats().Snapshot()
		if s.ShedEpochs == 0 {
			t.Fatal("nothing shed with every epoch held: budget must outrank the quorum gate")
		}
		if got := c.Epochs(); got[0] == 1 {
			t.Fatalf("buffered %v: with all candidates held the overall oldest (1) must go first", got)
		}
	})
}
