package center

import (
	"sort"

	"dcstream/internal/bitvec"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// ShedPolicy picks what the center sacrifices when the memory budget over
// buffered epoch windows is exhausted.
type ShedPolicy int

const (
	// ShedOldest drops whole old epochs to admit new digests — the fleet
	// has moved on, and a recent epoch's verdict is worth more than a stale
	// one's. The default.
	ShedOldest ShedPolicy = iota
	// RejectNew refuses the incoming digest instead, preserving every
	// buffered epoch intact — right when old epochs are about to close and
	// their completeness matters more than fresh arrivals.
	RejectNew
)

// Byte-accounting overheads. The budget tracks retained heap, not wire
// bytes: a digest's cost is its bitmap payload plus the map/slice/struct
// bookkeeping that keeps it live. The constants are deliberate round
// over-estimates — a budget that admits slightly less than the heap could
// hold is safe; one that admits more is an OOM.
const (
	vecOverheadBytes   = 48 // Vector struct + slice header + allocator slack
	entryOverheadBytes = 64 // map entry / index bookkeeping per digest
)

func vecBytes(v *bitvec.Vector) int64 {
	if v == nil {
		return 0
	}
	return int64(len(v.Words()))*8 + vecOverheadBytes
}

func unalignedBytes(d *unaligned.Digest) int64 {
	if d == nil {
		return 0
	}
	sz := int64(entryOverheadBytes)
	for _, group := range d.Rows {
		sz += 24 // group slice header
		for _, v := range group {
			sz += vecBytes(v)
		}
	}
	return sz
}

// retainedBytes estimates the heap a digest message pins while buffered.
func retainedBytes(m transport.Message) int64 {
	switch d := m.(type) {
	case transport.AlignedDigest:
		return vecBytes(d.Bitmap) + entryOverheadBytes
	case transport.UnalignedDigest:
		return unalignedBytes(d.Digest)
	}
	return 0
}

// BufferedBytes reports the byte-accounted size of every buffered epoch
// window — retained digests plus, in incremental mode, the aligned
// accumulators and unaligned tracker evidence — the number the memory
// budget constrains.
func (c *Center) BufferedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bufferedBytes
}

// SetMaxEpochs changes the epoch-ring bound at runtime (config reload).
// Values below 1 clamp to 1 — a ring of zero width would make every digest
// late, and a negative bound would turn the eviction loop into a spin.
// Shrinking does not evict immediately; the next Ingest that needs room
// evicts down to the new bound.
func (c *Center) SetMaxEpochs(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.MaxEpochs = n
}

// admitLocked decides whether a digest needing `need` more buffered bytes
// fits the memory budget, shedding old epochs first when the policy allows.
// It never sheds `epoch` itself — the window the digest is being filed into.
// A false return means the digest must be rejected (the budget is exhausted
// and nothing sheddable remains, or the policy is RejectNew). Caller holds
// c.mu.
func (c *Center) admitLocked(epoch int, need int64) bool {
	if c.cfg.MemoryBudgetBytes <= 0 || need <= 0 {
		return true
	}
	if c.bufferedBytes+need <= c.cfg.MemoryBudgetBytes {
		return true
	}
	if c.cfg.Shedding == RejectNew {
		return false
	}
	for c.bufferedBytes+need > c.cfg.MemoryBudgetBytes {
		// victimLocked pins the same victim ordering ring eviction uses —
		// non-held epochs go before quorum-held ones, but memory pressure
		// still breaks a hold when nothing else remains: refusing would
		// either OOM or silently starve newer epochs, and a shed window is
		// honestly reported while a wedged center reports nothing.
		victim := c.victimLocked(epoch)
		if victim < 0 {
			return false
		}
		c.shedLocked(victim)
	}
	return true
}

// shedLocked drops one whole buffered epoch for memory pressure and files
// its tombstone report. The epoch is closed exactly as an eviction closes
// it (floor raise or mid-ring tombstone — a late digest can never silently
// reopen it), but unlike an eviction it leaves a WindowReport behind:
// Degraded and Shed, with ShedDigests saying how many digests died with it.
// Callers of Analyze and TakeShedReports see the loss instead of inferring
// it from a counter delta. Caller holds c.mu.
func (c *Center) shedLocked(victim int) {
	w := c.windows[victim]
	rep := WindowReport{
		Epoch:         victim,
		Routers:       len(w.reporters()),
		Degraded:      true,
		Shed:          true,
		ShedDigests:   w.digests(),
		SpanStart:     victim,
		RetiredEpochs: []int{victim},
	}
	// releaseLocked returns the window's digest bytes *and* its incremental
	// state — the aligned accumulator and the tracker evidence touching the
	// epoch — so shedding actually frees what the budget charged.
	c.releaseLocked(victim, w)
	anyOlder := false
	for e := range c.windows {
		if e < victim {
			anyOlder = true
			break
		}
	}
	if !anyOlder {
		c.raiseFloor(victim)
	} else {
		c.evicted[victim] = true
	}
	c.cfg.Stats.ShedDigests.Add(int64(rep.ShedDigests))
	c.cfg.Stats.ShedEpochs.Add(1)
	if c.shedReports == nil {
		c.shedReports = make(map[int]WindowReport)
	}
	c.shedReports[victim] = rep
}

// TakeShedReports drains the tombstone reports of epochs shed since the
// last call, oldest first. cmd/dcsd forwards them to the -events stream and
// retires their journal frames; a report handed out here will no longer be
// returned by Analyze.
func (c *Center) TakeShedReports() []WindowReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.shedReports) == 0 {
		return nil
	}
	out := make([]WindowReport, 0, len(c.shedReports))
	for _, rep := range c.shedReports {
		out = append(out, rep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Epoch < out[j].Epoch })
	c.shedReports = nil
	return out
}
