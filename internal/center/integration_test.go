package center

import (
	"net"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
)

// TestCenterOverTCP wires the center to a real transport server — the full
// dcsd data path — and pushes an epoch of digests through sockets.
func TestCenterOverTCP(t *testing.T) {
	res, err := simulate.RunAligned(simulate.AlignedScenario{
		Seed:    9,
		Routers: 24,
		Collector: aligned.CollectorConfig{
			Bits: 1 << 13, HashSeed: 3,
		},
		BackgroundPackets: 2500,
		SegmentSize:       536,
		ContentPackets:    12,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{SubsetSize: 256})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		c.Ingest(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for r, d := range res.Digests {
		client, err := transport.Dial(srv.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Send(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: d}); err != nil {
			t.Fatal(err)
		}
		client.Close()
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		if a, _ := c.Pending(); a == 24 {
			break
		}
		if time.Now().After(deadline) {
			a, _ := c.Pending()
			t.Fatalf("only %d/24 digests ingested", a)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aligned == nil || !rep.Aligned.Detection.Found {
		t.Fatal("pattern lost across the socket path")
	}
	hit := 0
	for _, r := range rep.Aligned.RouterIDs {
		if r < 10 {
			hit++
		}
	}
	if hit < 9 {
		t.Fatalf("only %d/10 carriers identified after TCP transit: %v", hit, rep.Aligned.RouterIDs)
	}
}
