package center

import (
	"errors"
	"net"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/faultinject"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
)

// TestQuorumHoldsEpochOpen walks the quorum state machine directly: a
// below-quorum epoch is held while a known-live router is missing, released
// once the fleet moves MaxWait epochs past it, and reported Degraded with
// the absentee named.
func TestQuorumHoldsEpochOpen(t *testing.T) {
	c := New(Config{SubsetSize: 256, MinRouters: 3, MaxWait: 2})
	send := func(router, epoch int) {
		c.Ingest(transport.AlignedDigest{RouterID: router, Epoch: epoch,
			Bitmap: smallBitmap(uint64(router*100 + epoch))})
	}
	// Epoch 1: the full fleet of three reports. Epochs 2 and 3: router 2
	// has gone dark.
	for r := 0; r < 3; r++ {
		send(r, 1)
	}
	for _, e := range []int{2, 3} {
		send(0, e)
		send(1, e)
	}

	if q := c.Quorum(1); q.Hold || q.Reported != 3 || len(q.Missing) != 0 {
		t.Fatalf("epoch 1 at quorum misreported: %+v", q)
	}
	q := c.Quorum(2)
	if !q.Hold || q.Reported != 2 {
		t.Fatalf("epoch 2 below quorum not held: %+v", q)
	}
	if len(q.Missing) != 1 || q.Missing[0] != 2 {
		t.Fatalf("epoch 2 missing routers %v, want [2]", q.Missing)
	}

	// The registry knows all three routers and router 2's last epoch.
	routers := c.Routers()
	if len(routers) != 3 || routers[2].RouterID != 2 || routers[2].LastEpoch != 1 {
		t.Fatalf("router registry %+v", routers)
	}

	// Draining analyzes epoch 1 (complete, at quorum) but must not touch
	// the held epoch 2.
	rep, err := c.AnalyzeLatestComplete()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Degraded {
		t.Fatalf("first drain got epoch %d (degraded=%v), want healthy epoch 1", rep.Epoch, rep.Degraded)
	}
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("held epoch 2 was analyzed early: %v", err)
	}

	// Epoch 4 arrives from the live routers: the fleet is now MaxWait=2
	// epochs past epoch 2, so its hold expires and it closes degraded.
	send(0, 4)
	send(1, 4)
	if q := c.Quorum(2); q.Hold {
		t.Fatalf("epoch 2 still held after MaxWait exhausted: %+v", q)
	}
	rep, err = c.AnalyzeLatestComplete()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 || !rep.Degraded {
		t.Fatalf("drain after MaxWait got epoch %d (degraded=%v), want degraded epoch 2", rep.Epoch, rep.Degraded)
	}
	if len(rep.MissingRouters) != 1 || rep.MissingRouters[0] != 2 {
		t.Fatalf("degraded report missing routers %v, want [2]", rep.MissingRouters)
	}
	if n := c.Stats().DegradedEpochs.Load(); n != 1 {
		t.Fatalf("degraded counter %d, want 1", n)
	}

	// An explicit Analyze is an operator override: it closes a held epoch
	// immediately, still marked degraded.
	if q := c.Quorum(3); !q.Hold {
		t.Fatalf("epoch 3 should still be held: %+v", q)
	}
	rep, err = c.Analyze(3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || len(rep.MissingRouters) != 1 || rep.MissingRouters[0] != 2 {
		t.Fatalf("explicit analyze of held epoch: %+v", rep)
	}
}

// waitEpochCount polls until the center has buffered want digests for epoch.
func waitEpochCount(t *testing.T, c *Center, epoch, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if n := c.EpochDigests()[epoch]; n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("epoch %d: only %d/%d digests arrived", epoch, c.EpochDigests()[epoch], want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPartitionedRouterDegradedVerdict is the acceptance scenario: one
// router of eight is hard-partitioned (its digests blackholed by the chaos
// proxy) during an epoch that carries a common content. The epoch must be
// held until MaxWait expires, then analyzed with Degraded=true, the
// partitioned router named missing, and the pattern still found among the
// seven observed routers — never a silent full-fleet verdict.
func TestPartitionedRouterDegradedVerdict(t *testing.T) {
	const (
		fleet       = 8
		partitioned = 3
	)
	base := simulate.AlignedScenario{
		Seed:    11,
		Routers: fleet,
		// Light enough background that a 5-carrier pattern clears the
		// significance bound of a 7-row matrix (the bound conditions on
		// the observed density and row count).
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 7},
		BackgroundPackets: 600,
		SegmentSize:       536,
	}
	carriers := []int{0, 1, 2, 4, 5} // content avoids the partitioned router
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1},
		{Epoch: 2, Carriers: carriers, ContentPackets: 16},
		{Epoch: 3},
		{Epoch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := New(Config{SubsetSize: 256, MinRouters: fleet, MaxWait: 2, MaxEpochs: 8})
	srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) { c.Ingest(m) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Router 3 reaches the center through the chaos proxy; everyone else
	// has a clean path.
	proxy, err := faultinject.New(srv.Addr(), faultinject.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	cut := transport.NewReconnectingClient(proxy.Addr(), transport.ReconnectConfig{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	defer cut.Close()
	direct, err := transport.Dial(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()

	// Epoch 1: the full fleet reports (registers router 3 as known).
	for _, m := range epochs[1].DigestMessagesExcept(1, partitioned) {
		if err := direct.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := cut.Send(epochs[1].DigestMessages(1)[partitioned]); err != nil {
		t.Fatal(err)
	}
	if left := cut.Flush(5 * time.Second); left != 0 {
		t.Fatalf("router %d epoch-1 digest stuck: %d pending", partitioned, left)
	}
	waitEpochCount(t, c, 1, fleet, 5*time.Second)

	// The link partitions. Epochs 2-4 arrive only from the other seven;
	// router 3 keeps transmitting into the void.
	proxy.Partition()
	for _, e := range []int{2, 3, 4} {
		for _, m := range epochs[e].DigestMessagesExcept(e, partitioned) {
			if err := direct.Send(m); err != nil {
				t.Fatal(err)
			}
		}
		cut.Send(epochs[e].DigestMessages(e)[partitioned])
		waitEpochCount(t, c, e, fleet-1, 5*time.Second)
	}

	// Drain: epoch 2 is two epochs behind maxSeen=4, so its hold has
	// expired; epochs 3 (held) and 4 (newest) must stay open.
	rep, err := c.AnalyzeLatestComplete()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Fatalf("drained epoch %d first, want 2", rep.Epoch)
	}
	if !rep.Degraded {
		t.Fatal("partitioned epoch analyzed without Degraded marker")
	}
	if len(rep.MissingRouters) != 1 || rep.MissingRouters[0] != partitioned {
		t.Fatalf("missing routers %v, want [%d]", rep.MissingRouters, partitioned)
	}
	if rep.Aligned == nil || rep.Aligned.Routers != fleet-1 {
		t.Fatalf("aligned analysis saw %+v, want %d routers", rep.Aligned, fleet-1)
	}
	if !rep.Aligned.Detection.Found {
		t.Fatal("common content lost in the degraded window")
	}
	for _, id := range rep.Aligned.RouterIDs {
		if id == partitioned {
			t.Fatalf("partitioned router %d implicated without a digest: %v", partitioned, rep.Aligned.RouterIDs)
		}
	}

	// Epoch 1 (full fleet, no content) closes healthy.
	rep, err = c.AnalyzeLatestComplete()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 1 || rep.Degraded || rep.Aligned == nil || rep.Aligned.Detection.Found {
		t.Fatalf("epoch 1 report wrong: %+v", rep)
	}

	// Epoch 3 is still inside its MaxWait hold; the drain must refuse it
	// rather than close it below quorum early.
	if _, err := c.AnalyzeLatestComplete(); !errors.Is(err, ErrNoCompleteEpoch) {
		t.Fatalf("held epoch closed early: %v", err)
	}
	if q := c.Quorum(3); !q.Hold || q.Missing[0] != partitioned {
		t.Fatalf("epoch 3 quorum state %+v", q)
	}
}
