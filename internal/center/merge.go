package center

// BetterReport reports whether a should win over b when two WindowReports
// claim the same epoch — a shard re-pushing after a journal replay, a
// tombstone racing the real analysis, or two coordinator generations seeing
// one span. The order is a deliberate total preference over report quality,
// pinned here so every merge path (the shard coordinator, any future
// aggregator) resolves duplicates identically:
//
//  1. an analyzed report beats a shed tombstone (the tombstone carries no
//     outcome at all);
//  2. a non-degraded report beats a degraded one (it closed with the full
//     picture);
//  3. more reporting routers beats fewer (a later, more complete close);
//  4. fewer rejected digests beats more (less of the window was refused);
//  5. otherwise the incumbent stands — ties never reorder, so feeding
//     reports in arrival order is deterministic.
//
// BetterReport(a, b) strictly false for equal reports, so callers keep the
// first arrival on a tie.
func BetterReport(a, b WindowReport) bool {
	if a.Shed != b.Shed {
		return !a.Shed
	}
	if a.Degraded != b.Degraded {
		return !a.Degraded
	}
	if a.Routers != b.Routers {
		return a.Routers > b.Routers
	}
	if a.RejectedDigests != b.RejectedDigests {
		return a.RejectedDigests < b.RejectedDigests
	}
	return false
}
