package center

import (
	"errors"
	"sort"
	"testing"

	"dcstream/internal/aligned"
	"dcstream/internal/simulate"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

func TestCenterIgnoresSparseWindows(t *testing.T) {
	c := New(Config{})
	if _, err := c.Analyze(1); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("empty center analyzed: %v", err)
	}
	// One digest of each kind is not analyzable either.
	col, _ := aligned.NewCollector(aligned.CollectorConfig{Bits: 64, HashSeed: 1})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: col.Digest()})
	if a, u := c.Pending(); a != 1 || u != 0 {
		t.Fatalf("pending %d,%d", a, u)
	}
	rep, err := c.Analyze(1)
	if err != nil || rep.Aligned != nil {
		t.Fatalf("single-router window analyzed: %+v, %v", rep, err)
	}
	// Analyze drops the window.
	if a, _ := c.Pending(); a != 0 {
		t.Fatal("window not dropped")
	}
}

func TestCenterAlignedWindow(t *testing.T) {
	res, err := simulate.RunAligned(simulate.AlignedScenario{
		Seed:    5,
		Routers: 32,
		Collector: aligned.CollectorConfig{
			Bits: 1 << 13, HashSeed: 3,
		},
		BackgroundPackets: 2500,
		SegmentSize:       536,
		ContentPackets:    12,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{SubsetSize: 256})
	for r, d := range res.Digests {
		c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: d})
	}
	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aligned == nil || !rep.Aligned.Detection.Found {
		t.Fatalf("aligned window not detected: %+v", rep.Aligned)
	}
	if rep.Aligned.Routers != 32 {
		t.Fatalf("router count %d", rep.Aligned.Routers)
	}
	hit := 0
	for _, r := range rep.Aligned.RouterIDs {
		if r < 12 {
			hit++
		}
	}
	if hit < 10 {
		t.Fatalf("only %d/12 carriers identified", hit)
	}
}

func TestCenterRejectsMixedWidths(t *testing.T) {
	c := New(Config{})
	a, _ := aligned.NewCollector(aligned.CollectorConfig{Bits: 64, HashSeed: 1})
	b, _ := aligned.NewCollector(aligned.CollectorConfig{Bits: 128, HashSeed: 1})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: a.Digest()})
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: b.Digest()})
	if _, err := c.Analyze(1); err == nil {
		t.Fatal("mixed widths accepted")
	}
}

func TestCenterUnalignedWindow(t *testing.T) {
	cfg := unaligned.CollectorConfig{
		Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
		SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
		HashSeed: 77,
	}
	res, err := simulate.RunUnaligned(simulate.UnalignedScenario{
		Seed:              6,
		Routers:           20,
		Collector:         cfg,
		BackgroundPackets: 183 * 4,
		ContentPackets:    60,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{
		TargetP1:           0.25 / float64(20*4),
		ComponentThreshold: 10,
		Beta:               7,
		D:                  2,
		Parallelism:        2, // exercise the parallel correlation path
	})
	for _, d := range res.Digests {
		c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: d})
	}
	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unaligned == nil || !rep.Unaligned.ER.PatternDetected {
		t.Fatalf("unaligned window not detected: %+v", rep.Unaligned)
	}
	if rep.Unaligned.Vertices != 80 {
		t.Fatalf("vertex count %d", rep.Unaligned.Vertices)
	}
	truth := map[int]bool{}
	for _, v := range res.CarrierVertices {
		truth[v.RouterID] = true
	}
	hit := 0
	for _, r := range rep.Unaligned.Routers {
		if truth[r] {
			hit++
		}
	}
	if hit < 7 {
		sort.Ints(rep.Unaligned.Routers)
		t.Fatalf("only %d/14 carrier routers identified: %v", hit, rep.Unaligned.Routers)
	}
}

func TestCenterMixedWindow(t *testing.T) {
	// Aligned and unaligned digests in one window are analyzed
	// independently.
	c := New(Config{SubsetSize: 64, ComponentThreshold: 50})
	rng := stats.NewRand(7)
	for r := 0; r < 4; r++ {
		ac, _ := aligned.NewCollector(aligned.CollectorConfig{Bits: 1 << 10, HashSeed: 2})
		bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 300, SegmentSize: 64})
		for _, p := range bg {
			ac.Update(p)
		}
		c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: ac.Digest()})

		uc, _ := unaligned.NewCollector(unaligned.CollectorConfig{
			Groups: 2, ArraysPerGroup: 4, ArrayBits: 256,
			SegmentSize: 64, FragmentLen: 8, MinPayload: 30,
			HashSeed: 2, OffsetSeed: uint64(r),
		})
		for _, p := range bg {
			uc.Update(p)
		}
		c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: uc.Digest(r)})
	}
	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Aligned == nil || rep.Unaligned == nil {
		t.Fatal("mixed window did not produce both outcomes")
	}
	if rep.Aligned.Detection.Found || rep.Unaligned.ER.PatternDetected {
		t.Fatal("pure background produced a detection")
	}
}
