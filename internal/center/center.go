// Package center implements the analysis-center role of Figure 2 as a
// reusable library: accumulate digests for a window, then analyze whatever
// arrived — the aligned ASID detector over stacked bitmaps, the unaligned
// ER test plus core finder over merged array banks, or both. cmd/dcsd wraps
// this in a TCP daemon; tests and embedders drive it directly.
package center

import (
	"fmt"
	"sort"
	"sync"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// Config tunes the per-window analysis.
type Config struct {
	// SubsetSize is the aligned detector's n′. Zero means 512.
	SubsetSize int
	// TargetP1 is the unaligned ER-test edge probability; zero means 0.5/n
	// with n the observed vertex count.
	TargetP1 float64
	// CoreP1 is the unaligned core-graph edge probability; zero means 8/n.
	CoreP1 float64
	// ComponentThreshold is the ER decision boundary; zero means 12.
	ComponentThreshold int
	// Beta and D tune the core finder; zeros mean 8 and 2.
	Beta, D int
	// Workers parallelizes the unaligned correlation pass; zero means 1.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.SubsetSize == 0 {
		c.SubsetSize = 512
	}
	if c.ComponentThreshold == 0 {
		c.ComponentThreshold = 12
	}
	if c.Beta == 0 {
		c.Beta = 8
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// AlignedOutcome is the aligned-case analysis of one window.
type AlignedOutcome struct {
	// Routers is how many digests entered the analysis.
	Routers int
	// Detection is the detector's verdict. Its Rows field indexes matrix
	// rows; RouterIDs below is the same list translated to router ids.
	Detection aligned.Detection
	// RouterIDs are the implicated routers, sorted ascending.
	RouterIDs []int
}

// UnalignedOutcome is the unaligned-case analysis of one window.
type UnalignedOutcome struct {
	// Vertices is the merged graph size.
	Vertices int
	// ER is the statistical test verdict.
	ER unaligned.ERTestResult
	// PatternVertices and Routers identify the carriers when ER fired.
	PatternVertices []unaligned.Vertex
	Routers         []int
}

// WindowReport is everything one window produced. Nil members mean that
// digest kind did not arrive (or arrived from fewer than two routers).
type WindowReport struct {
	Aligned   *AlignedOutcome
	Unaligned *UnalignedOutcome
}

// Center accumulates digests and analyzes on demand. Ingest is safe for
// concurrent use (the transport server calls it from per-connection
// goroutines); Analyze atomically swaps the window.
type Center struct {
	cfg Config

	mu        sync.Mutex
	aligned   map[int]*bitvec.Vector
	unaligned []*unaligned.Digest
}

// New builds a center.
func New(cfg Config) *Center {
	return &Center{cfg: cfg.withDefaults(), aligned: make(map[int]*bitvec.Vector)}
}

// Ingest accepts one decoded digest message. Unknown message types are
// ignored (forward compatibility with future digest kinds).
func (c *Center) Ingest(m transport.Message) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch d := m.(type) {
	case transport.AlignedDigest:
		c.aligned[d.RouterID] = d.Bitmap
	case transport.UnalignedDigest:
		c.unaligned = append(c.unaligned, d.Digest)
	}
}

// Pending returns how many digests of each kind await analysis.
func (c *Center) Pending() (alignedCount, unalignedCount int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.aligned), len(c.unaligned)
}

// Analyze closes the current window, analyzes it, and starts a fresh one.
func (c *Center) Analyze() (WindowReport, error) {
	c.mu.Lock()
	alignedDigests := c.aligned
	unalignedDigests := c.unaligned
	c.aligned = make(map[int]*bitvec.Vector)
	c.unaligned = nil
	c.mu.Unlock()

	var rep WindowReport
	if len(alignedDigests) >= 2 {
		out, err := c.analyzeAligned(alignedDigests)
		if err != nil {
			return rep, err
		}
		rep.Aligned = out
	}
	if len(unalignedDigests) >= 2 {
		out, err := c.analyzeUnaligned(unalignedDigests)
		if err != nil {
			return rep, err
		}
		rep.Unaligned = out
	}
	return rep, nil
}

func (c *Center) analyzeAligned(digests map[int]*bitvec.Vector) (*AlignedOutcome, error) {
	// Fix a deterministic row order so Detection.Rows can be translated
	// back to router ids (map iteration order is random).
	ids := make([]int, 0, len(digests))
	for id := range digests {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	vecs := make([]*bitvec.Vector, len(ids))
	width := digests[ids[0]].Len()
	for i, id := range ids {
		v := digests[id]
		if v.Len() != width {
			return nil, fmt.Errorf("center: mixed aligned digest widths %d and %d", width, v.Len())
		}
		vecs[i] = v
	}
	subset := c.cfg.SubsetSize
	if subset > width {
		subset = width
	}
	det, err := aligned.Detect(aligned.FromDigests(vecs), aligned.RefinedConfig(subset))
	if err != nil {
		return nil, err
	}
	out := &AlignedOutcome{Routers: len(digests), Detection: det}
	for _, row := range det.Rows {
		out.RouterIDs = append(out.RouterIDs, ids[row])
	}
	sort.Ints(out.RouterIDs)
	return out, nil
}

func (c *Center) analyzeUnaligned(digests []*unaligned.Digest) (*UnalignedOutcome, error) {
	gm, err := unaligned.Merge(digests)
	if err != nil {
		return nil, err
	}
	n := gm.NumVertices()
	rows := len(digests[0].Rows[0])
	rowPairs := rows * rows

	p1 := c.cfg.TargetP1
	if p1 == 0 {
		p1 = 0.5 / float64(n)
	}
	lt, err := unaligned.NewLambdaTable(gm.ArrayBits(), unaligned.PStarForEdgeProbability(p1, rowPairs))
	if err != nil {
		return nil, err
	}
	g, err := gm.BuildGraphParallel(lt, c.cfg.Workers)
	if err != nil {
		return nil, err
	}
	out := &UnalignedOutcome{
		Vertices: n,
		ER:       unaligned.ERTest(g, c.cfg.ComponentThreshold),
	}
	if !out.ER.PatternDetected {
		return out, nil
	}

	coreP1 := c.cfg.CoreP1
	if coreP1 == 0 {
		coreP1 = 8 / float64(n)
	}
	coreTable, err := unaligned.NewLambdaTable(gm.ArrayBits(), unaligned.PStarForEdgeProbability(coreP1, rowPairs))
	if err != nil {
		return nil, err
	}
	cg, err := gm.BuildGraphParallel(coreTable, c.cfg.Workers)
	if err != nil {
		return nil, err
	}
	found, err := unaligned.FindPattern(cg, unaligned.PatternConfig{Beta: c.cfg.Beta, D: c.cfg.D})
	if err != nil {
		return nil, err
	}
	routerSeen := map[int]bool{}
	for _, v := range found {
		vert := gm.Vertex(v)
		out.PatternVertices = append(out.PatternVertices, vert)
		if !routerSeen[vert.RouterID] {
			routerSeen[vert.RouterID] = true
			out.Routers = append(out.Routers, vert.RouterID)
		}
	}
	return out, nil
}
