// Package center implements the analysis-center role of Figure 2 as a
// reusable library: accumulate digests per measurement epoch, then analyze a
// closed epoch — the aligned ASID detector over stacked bitmaps, the
// unaligned ER test plus core finder over merged array banks, or both.
// cmd/dcsd wraps this in a TCP daemon; tests and embedders drive it
// directly.
//
// Windowing is epoch-correct: digests are keyed by the Epoch field their
// collector stamped, never by arrival time, so a slow collector's epoch-3
// bitmap is analyzed with the other routers' epoch-3 bitmaps even when it
// arrives after everyone's epoch-4 digests (§V-B.1 — correlating bitmaps
// across epochs degrades detection). A bounded ring of recent epochs absorbs
// reordering; digests for epochs that already left the ring are counted late
// and dropped, and duplicates (a collector resending after a reconnect) are
// counted and resolved by policy instead of silently overwriting another
// epoch's state.
package center

import (
	"errors"
	"sort"
	"sync"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/metrics"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// DuplicatePolicy resolves two digests from one router for one epoch.
type DuplicatePolicy int

const (
	// DupKeepLast replaces the earlier digest — right for collectors that
	// resend the same digest after a reconnect (the default).
	DupKeepLast DuplicatePolicy = iota
	// DupKeepFirst drops the later digest.
	DupKeepFirst
)

// ErrNoWindow reports an Analyze call for an epoch the center holds no
// digests for (never seen, already analyzed, or evicted).
var ErrNoWindow = errors.New("center: no such epoch window")

// ErrNoCompleteEpoch reports that every buffered digest belongs to the
// newest epoch seen so far, which may still be filling.
var ErrNoCompleteEpoch = errors.New("center: no complete epoch buffered")

// ErrNotOwned reports an Analyze call for a span this center does not own
// under its OwnsSpan partition predicate: the span's verdict is another
// shard's to emit, and this center holds the epoch's digests only as
// sliding-window context.
var ErrNotOwned = errors.New("center: span not owned by this shard")

// Config tunes the per-window analysis and the epoch ring.
type Config struct {
	// SubsetSize is the aligned detector's n′. Zero means 512.
	SubsetSize int
	// TargetP1 is the unaligned ER-test edge probability; zero means 0.5/n
	// with n the observed vertex count.
	TargetP1 float64
	// CoreP1 is the unaligned core-graph edge probability; zero means 8/n.
	CoreP1 float64
	// ComponentThreshold is the ER decision boundary; zero means 12.
	ComponentThreshold int
	// Beta and D tune the core finder; zeros mean 8 and 2.
	Beta, D int
	// Parallelism is the worker count handed to every parallel analysis
	// stage: the unaligned correlation passes and the aligned detector's
	// level scan. Zero means GOMAXPROCS; negative means serial. Results are
	// bit-identical at every setting — the knob trades wall clock only.
	Parallelism int
	// Analysis picks how analysis inputs are produced: AnalysisIncremental
	// (the zero value) maintains them as digests arrive, so Analyze is a
	// cheap finalize; AnalysisBatch rebuilds everything from the buffered
	// digests at analyze time — the reference implementation. Reports are
	// bit-identical either way.
	Analysis AnalysisMode
	// WindowSlide, when >= 2, turns on overlapping sliding-window analysis:
	// Analyze(e) covers the span of epochs [e-WindowSlide+1, e], consecutive
	// spans overlap by WindowSlide-1 epochs, and an epoch's state is retired
	// only once it has left every future span — so common content split
	// across an epoch boundary still meets itself inside some span. Spans
	// close oldest-first; AnalyzeLatestComplete emits them in order. Zero or
	// one means classic non-overlapping per-epoch analysis. MaxEpochs is
	// clamped to at least WindowSlide+1 so a span is never truncated by ring
	// eviction while the next epoch fills.
	WindowSlide int
	// MaxEpochs bounds how many distinct epochs are buffered at once (the
	// reorder window). Zero means 4. When a digest opens an epoch beyond
	// the bound, the oldest buffered epoch is evicted unanalyzed and its
	// digests counted dropped.
	MaxEpochs int
	// Duplicates picks the resolution for a router resending within one
	// epoch. The zero value is DupKeepLast.
	Duplicates DuplicatePolicy
	// MemoryBudgetBytes, when positive, bounds the byte-accounted size of
	// all buffered epoch windows (retained bitmap payloads plus bookkeeping
	// estimates). A digest that would exceed the budget triggers the
	// Shedding policy instead of growing the heap without limit. Zero
	// disables the budget: only MaxEpochs bounds the ring.
	MemoryBudgetBytes int64
	// Shedding picks what gives way when MemoryBudgetBytes is exhausted:
	// ShedOldest (the zero value) drops whole old epochs — tombstoned and
	// reported Degraded+Shed, never silently — while RejectNew refuses the
	// incoming digest and preserves the buffered epochs.
	Shedding ShedPolicy
	// MinRouters, when positive, is the quorum: AnalyzeLatestComplete and
	// ring eviction hold an epoch open while fewer than MinRouters distinct
	// routers have reported into it and a known-live router is still
	// absent. An epoch closed below quorum is marked Degraded with the
	// absentees in MissingRouters, and the unaligned component threshold is
	// rescaled for the observed router count m′ (the aligned detector's
	// significance bound already conditions on the observed matrix height).
	// Zero disables quorum gating: every epoch closes exactly as before.
	MinRouters int
	// MaxWait bounds a quorum hold in epochs: once the fleet has advanced
	// MaxWait epochs past a held window (maxSeen-epoch >= MaxWait) the
	// window closes anyway, so a dead router cannot wedge the ring. It is
	// also the liveness horizon — a router counts as live for epoch e when
	// it has reported into epoch e-MaxWait or newer. Zero means 2.
	MaxWait int
	// OwnsEpoch, when non-nil, is the shard partition predicate over ingest:
	// a digest whose epoch fails it is counted MisroutedDigests and dropped
	// before it touches any window — in a sharded deployment the coordinator
	// routes each epoch's digests to the shards whose spans need them, so a
	// failing digest here is a routing bug, not data this shard should
	// absorb. Nil accepts every epoch (the single-center deployment).
	OwnsEpoch func(epoch int) bool
	// OwnsSpan, when non-nil, restricts which spans this center may close
	// and report: AnalyzeLatestComplete skips epochs failing it, and Analyze
	// returns ErrNotOwned for them. In sliding mode a shard buffers context
	// epochs for spans owned elsewhere (OwnsEpoch admits them); OwnsSpan is
	// what keeps it from also emitting those spans' verdicts, which would
	// duplicate another shard's report. Nil owns every span.
	OwnsSpan func(epoch int) bool
	// Stats, when non-nil, receives the center's counters; several centers
	// may share one. Nil allocates a private Stats.
	Stats *Stats
}

func (c Config) withDefaults() Config {
	if c.SubsetSize == 0 {
		c.SubsetSize = 512
	}
	if c.ComponentThreshold == 0 {
		c.ComponentThreshold = 12
	}
	if c.Beta == 0 {
		c.Beta = 8
	}
	if c.D == 0 {
		c.D = 2
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 4
	}
	if c.MaxEpochs < 1 {
		// A non-positive bound would make the eviction loop index an empty
		// ring; clamp like SetMaxEpochs does.
		c.MaxEpochs = 1
	}
	if c.MaxWait == 0 {
		c.MaxWait = 2
	}
	if c.WindowSlide < 1 {
		c.WindowSlide = 1
	}
	if c.WindowSlide > 1 && c.MaxEpochs < c.WindowSlide+1 {
		c.MaxEpochs = c.WindowSlide + 1
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	c.Stats.IngestToAnalyzeSeconds.SetBuckets(centerLatencyBuckets)
	c.Stats.FinalizeSeconds.SetBuckets(centerLatencyBuckets)
	return c
}

// AlignedOutcome is the aligned-case analysis of one window.
type AlignedOutcome struct {
	// Routers is how many digests entered the analysis.
	Routers int
	// Detection is the detector's verdict. Its Rows field indexes matrix
	// rows; RouterIDs below is the same list translated to router ids.
	Detection aligned.Detection
	// RouterIDs are the implicated routers, sorted ascending.
	RouterIDs []int
}

// UnalignedOutcome is the unaligned-case analysis of one window.
type UnalignedOutcome struct {
	// Vertices is the merged graph size.
	Vertices int
	// ER is the statistical test verdict.
	ER unaligned.ERTestResult
	// PatternVertices and Routers identify the carriers when ER fired.
	PatternVertices []unaligned.Vertex
	Routers         []int
}

// WindowReport is everything one epoch window produced. Nil members mean
// that digest kind did not arrive (or arrived from fewer than two routers).
type WindowReport struct {
	// Epoch is the measurement epoch the report covers.
	Epoch int
	// Routers is how many distinct routers reported into the window (the
	// observed m′, either digest kind counting).
	Routers int
	// Degraded reports that the window closed without the full picture:
	// below the MinRouters quorum, shed for memory pressure, or analyzed
	// after rejecting digests under a RejectNew budget. MissingRouters
	// names the known-live routers that never reported into the window,
	// sorted ascending (quorum gating only).
	Degraded       bool
	MissingRouters []int
	// Shed reports the window was dropped whole for memory pressure and
	// never analyzed: ShedDigests is how many buffered digests died with
	// it, and Aligned/Unaligned stay nil. A shed epoch is tombstoned — late
	// digests cannot reopen it — and this report is its only trace, so the
	// ledger stays explicit: every ingested digest is analyzed, dropped by
	// eviction, or shed, never silently lost.
	Shed        bool
	ShedDigests int
	// RejectedDigests counts digests refused from this window by a
	// RejectNew memory budget while it was buffering (the window analyzed,
	// but incomplete).
	RejectedDigests int
	// SpanStart and SpanEpochs describe the analysis span: it covers epochs
	// [SpanStart, Epoch], and SpanEpochs lists the ones that held data.
	// RetiredEpochs lists the epochs whose buffered state was released with
	// this report — in sliding mode an epoch is retired only once it has
	// left every future span, so retirement trails Epoch by WindowSlide-1;
	// crash-recovery journals can forget an epoch's frames when it appears
	// here. Outside sliding mode all three reduce to the report's own epoch.
	SpanStart     int
	SpanEpochs    []int
	RetiredEpochs []int
	Aligned       *AlignedOutcome
	Unaligned     *UnalignedOutcome
}

// window is one epoch's accumulating state.
type window struct {
	aligned map[int]*bitvec.Vector
	// unaligned keeps one digest per router (unalignedIdx maps router id to
	// its slot) so a resent digest can be resolved by policy.
	unaligned    []*unaligned.Digest
	unalignedIdx map[int]int
	// opened is when the window's first digest arrived; analyzeWindow
	// observes the ingest→analyze latency against it. Wall time only feeds
	// the histogram, never an analysis result, so determinism is untouched.
	opened time.Time
	// bytes is the window's byte-accounted retained size (retainedBytes of
	// every stored digest); the center's bufferedBytes is the sum over all
	// windows.
	bytes int64
	// rejected counts digests a RejectNew memory budget refused from this
	// window; the window's eventual report carries it and marks Degraded.
	rejected int
	// acc incrementally maintains this window's aligned detection state —
	// the column-major matrix and per-column popcounts — as digests arrive;
	// nil in AnalysisBatch mode. Mutated only under the center's mu. Its
	// accounted bytes ride in the center's bufferedBytes ledger (not in
	// w.bytes, which stays the retained digest payload).
	acc *aligned.Accumulator
}

func (c *Center) newWindowLocked() *window {
	w := &window{
		aligned:      make(map[int]*bitvec.Vector),
		unalignedIdx: make(map[int]int),
		opened:       time.Now(),
	}
	if c.cfg.Analysis == AnalysisIncremental {
		w.acc = aligned.NewAccumulator()
	}
	return w
}

func (w *window) digests() int { return len(w.aligned) + len(w.unaligned) }

// reporters is the set of distinct routers that reported either digest kind
// into this window.
func (w *window) reporters() map[int]bool {
	out := make(map[int]bool, len(w.aligned)+len(w.unalignedIdx))
	for id := range w.aligned {
		out[id] = true
	}
	for id := range w.unalignedIdx {
		out[id] = true
	}
	return out
}

// Center accumulates digests keyed by epoch and analyzes closed epochs on
// demand. Ingest is safe for concurrent use (the transport server calls it
// from per-connection goroutines); Analyze atomically detaches one epoch's
// window, so analysis never races later ingest.
type Center struct {
	cfg Config

	mu      sync.Mutex
	windows map[int]*window // guarded by mu
	// maxSeen is the newest epoch ever ingested; an epoch is "complete"
	// once a strictly newer one has been seen (the collectors moved on).
	maxSeen    int  // guarded by mu
	sawAny     bool // guarded by mu
	floor      int  // guarded by mu; epochs <= floor are closed (analyzed or evicted)
	floorValid bool // guarded by mu
	// evicted tombstones epochs evicted from the middle of the ring while an
	// older window was quorum-held: the floor cannot rise past the held
	// window, so without a tombstone a late digest for the evicted epoch
	// would silently reopen it as a fresh, near-empty window that later
	// analyzes degraded. Tombstones at or below the floor are pruned when it
	// rises, so the set stays bounded by the ring width. guarded by mu
	evicted map[int]bool
	// lastSeen is the router registry: the newest epoch each router has
	// ever stamped on a digest (late and duplicate digests count — the
	// router is alive even when its data is unusable). Quorum liveness is
	// derived from it.
	lastSeen map[int]int // guarded by mu
	// bufferedBytes is the byte-accounted size of every buffered window —
	// what Config.MemoryBudgetBytes constrains. guarded by mu
	bufferedBytes int64
	// shedReports holds the tombstone report of each epoch shed for memory
	// pressure, until Analyze or TakeShedReports hands it out. guarded by mu
	shedReports map[int]WindowReport
	// tracker maintains the unaligned pairwise correlation evidence
	// incrementally across all buffered epochs; nil in AnalysisBatch mode.
	// Its accounted bytes ride in bufferedBytes. guarded by mu
	tracker *unaligned.Tracker
	// spanClosed is the newest epoch whose sliding span has been emitted;
	// spans ending at or below it are foreclosed (sliding mode only).
	spanClosed      int  // guarded by mu
	spanClosedValid bool // guarded by mu

	// lambdaTables caches λ threshold tables across analyzes. A table's
	// entries are lazily memoized pure functions of (bits, p*), and in
	// steady state every epoch reuses the same handful of geometries — a
	// fresh table per Analyze would re-pay the hypergeometric tail search
	// for every distinct weight pair on every finalize, which dominates
	// the finalize cost once everything else is incremental.
	tableMu      sync.Mutex
	lambdaTables map[lambdaKey]*unaligned.LambdaTable
}

// lambdaKey identifies a λ table by geometry and tail probability.
type lambdaKey struct {
	bits  int
	pstar float64
}

// lambdaTable returns the cached λ table for (bits, pstar), building it on
// first use. Tables are safe for concurrent readers and their memoized
// thresholds are deterministic, so sharing across analyzes cannot change
// any result — only skip recomputing it.
func (c *Center) lambdaTable(bits int, pstar float64) (*unaligned.LambdaTable, error) {
	key := lambdaKey{bits: bits, pstar: pstar}
	c.tableMu.Lock()
	defer c.tableMu.Unlock()
	if t, ok := c.lambdaTables[key]; ok {
		return t, nil
	}
	t, err := unaligned.NewLambdaTable(bits, pstar)
	if err != nil {
		return nil, err
	}
	c.lambdaTables[key] = t
	return t, nil
}

// New builds a center.
func New(cfg Config) *Center {
	c := &Center{
		cfg:          cfg.withDefaults(),
		windows:      make(map[int]*window),
		evicted:      make(map[int]bool),
		lastSeen:     make(map[int]int),
		lambdaTables: make(map[lambdaKey]*unaligned.LambdaTable),
	}
	if c.cfg.Analysis == AnalysisIncremental {
		c.tracker = unaligned.NewTracker(unaligned.TrackerConfig{
			TargetP1: c.cfg.TargetP1,
			CoreP1:   c.cfg.CoreP1,
			Reach:    c.cfg.WindowSlide,
		})
	}
	return c
}

// Stats returns the center's counters (the shared Stats when one was passed
// in Config).
func (c *Center) Stats() *Stats { return c.cfg.Stats }

// RegisterMetrics exposes the center on a metrics registry: every Stats
// counter plus live gauges over the ring — buffered epochs, epochs the
// quorum gate currently holds open, and the registered router count. The
// gauges are computed at scrape time under the center's lock (scrapes are
// cold; ingest never takes the registry's locks).
func (c *Center) RegisterMetrics(r *metrics.Registry) {
	c.cfg.Stats.Register(r)
	r.GaugeFunc("dcs_center_buffered_epochs",
		"epoch windows currently buffered in the reorder ring", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.windows))
		})
	r.GaugeFunc("dcs_center_quorum_held_epochs",
		"buffered epochs the quorum gate is holding open for missing live routers", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			held := 0
			for e := range c.windows {
				if c.quorumLocked(e).Hold {
					held++
				}
			}
			return float64(held)
		})
	r.GaugeFunc("dcs_center_buffered_bytes",
		"byte-accounted size of all buffered epoch windows (what -mem-budget constrains)", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.bufferedBytes)
		})
	r.GaugeFunc("dcs_center_routers",
		"distinct routers that have ever reported a digest", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.lastSeen))
		})
}

// Ingest accepts one decoded digest message and files it under the epoch
// stamped on it. Unknown message types are ignored (forward compatibility
// with future digest kinds). Digests for epochs that were already analyzed
// or evicted are counted late and dropped.
func (c *Center) Ingest(m transport.Message) {
	var epoch, router int
	switch d := m.(type) {
	case transport.AlignedDigest:
		epoch, router = d.Epoch, d.RouterID
	case transport.UnalignedDigest:
		epoch, router = d.Epoch, d.Digest.RouterID
	default:
		c.cfg.Stats.UnknownMessages.Add(1)
		return
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.OwnsEpoch != nil && !c.cfg.OwnsEpoch(epoch) {
		// Misrouted past the shard partition: counted and dropped whole, with
		// no registry side effects — this shard's quorum must reason only
		// about the traffic the coordinator actually routes to it.
		c.cfg.Stats.MisroutedDigests.Add(1)
		return
	}
	if last, ok := c.lastSeen[router]; !ok || epoch > last {
		c.lastSeen[router] = epoch
	}
	w := c.windowFor(epoch)
	if w == nil {
		c.cfg.Stats.LateDigests.Add(1)
		return
	}
	// A DupKeepLast replacement mutates the window without growing it, so it
	// counts in ReplacedDigests, not DigestsIngested — otherwise eviction's
	// DroppedDigests (which drains the window's actual digest count) could
	// never balance the ingest ledger.
	//
	// Admission runs before storage: a digest the memory budget refuses is
	// counted RejectedDigests (its ledger) and the window marked, never
	// half-stored. Replacements are admitted by their size *delta* — a
	// same-width resend costs nothing. In incremental mode the aligned
	// admission also covers the accumulator's exact structural growth; the
	// unaligned tracker's evidence growth is content-dependent, so it is
	// enforced after the fact instead (enforceBudgetLocked).
	sz := retainedBytes(m)
	switch d := m.(type) {
	case transport.AlignedDigest:
		if _, dup := w.aligned[d.RouterID]; dup {
			c.cfg.Stats.DuplicateDigests.Add(1)
			if c.cfg.Duplicates == DupKeepFirst {
				return
			}
			old := w.aligned[d.RouterID]
			delta := sz - vecBytes(old) - entryOverheadBytes
			if w.acc != nil {
				delta += w.acc.EstimateAdd(d.RouterID, d.Bitmap)
			}
			if !c.admitLocked(epoch, delta) {
				c.rejectLocked(w)
				return
			}
			w.aligned[d.RouterID] = d.Bitmap
			if w.acc != nil {
				// A DupKeepLast replacement must retract the digest it
				// displaces before the new one lands, or the replaced bits
				// would stay OR-ed into the column state forever.
				w.acc.Remove(d.RouterID, old)
				c.bufferedBytes += w.acc.Add(d.RouterID, d.Bitmap)
			}
			w.bytes += sz - vecBytes(old) - entryOverheadBytes
			c.bufferedBytes += sz - vecBytes(old) - entryOverheadBytes
			c.cfg.Stats.ReplacedDigests.Add(1)
			return
		}
		need := sz
		if w.acc != nil {
			need += w.acc.EstimateAdd(d.RouterID, d.Bitmap)
		}
		if !c.admitLocked(epoch, need) {
			c.rejectLocked(w)
			return
		}
		w.aligned[d.RouterID] = d.Bitmap
		if w.acc != nil {
			c.bufferedBytes += w.acc.Add(d.RouterID, d.Bitmap)
		}
	case transport.UnalignedDigest:
		if i, dup := w.unalignedIdx[d.Digest.RouterID]; dup {
			c.cfg.Stats.DuplicateDigests.Add(1)
			if c.cfg.Duplicates == DupKeepFirst {
				return
			}
			delta := sz - unalignedBytes(w.unaligned[i])
			if !c.admitLocked(epoch, delta) {
				c.rejectLocked(w)
				return
			}
			w.unaligned[i] = d.Digest
			w.bytes += delta
			c.bufferedBytes += delta
			if c.tracker != nil {
				c.bufferedBytes += c.tracker.Remove(epoch, d.Digest.RouterID)
				c.bufferedBytes += c.tracker.Add(epoch, d.Digest)
				c.enforceBudgetLocked(epoch)
			}
			c.cfg.Stats.ReplacedDigests.Add(1)
			return
		}
		if !c.admitLocked(epoch, sz) {
			c.rejectLocked(w)
			return
		}
		w.unalignedIdx[d.Digest.RouterID] = len(w.unaligned)
		w.unaligned = append(w.unaligned, d.Digest)
		w.bytes += sz
		c.bufferedBytes += sz
		if c.tracker != nil {
			c.bufferedBytes += c.tracker.Add(epoch, d.Digest)
			c.enforceBudgetLocked(epoch)
		}
		c.cfg.Stats.DigestsIngested.Add(1)
		return
	}
	w.bytes += sz
	c.bufferedBytes += sz
	c.cfg.Stats.DigestsIngested.Add(1)
}

// rejectLocked records a budget rejection against the window the digest was
// headed for: the refusal is the digest's whole ledger, and the window will
// analyze Degraded with the count on its report. Caller holds c.mu.
func (c *Center) rejectLocked(w *window) {
	w.rejected++
	c.cfg.Stats.RejectedDigests.Add(1)
}

// windowFor returns the window for epoch, opening (and possibly evicting)
// as needed, or nil when the epoch is already closed. Caller holds c.mu.
func (c *Center) windowFor(epoch int) *window {
	if !c.sawAny || epoch > c.maxSeen {
		c.maxSeen = epoch
		c.sawAny = true
	}
	if w, ok := c.windows[epoch]; ok {
		return w
	}
	if c.evicted[epoch] {
		// Evicted from the middle of the ring while an older window was
		// held: the floor never rose past it, but reopening it would build a
		// fresh near-empty window the center later analyzes as a bogus
		// degraded epoch. The straggler is late, exactly as if the floor had
		// covered it.
		return nil
	}
	if c.floorValid && epoch <= c.floor {
		return nil
	}
	for len(c.windows) >= c.cfg.MaxEpochs {
		if len(c.windows) == 0 {
			// MaxEpochs can shrink at runtime (SetMaxEpochs clamps it to
			// >= 1, but belt and braces): with nothing buffered there is
			// nothing to evict, and indexing an empty ring below would
			// panic — or spin, if the bound ever went non-positive.
			break
		}
		oldest := -1
		for e := range c.windows {
			if oldest < 0 || e < oldest {
				oldest = e
			}
		}
		if oldest >= epoch {
			// The newcomer is older than everything buffered and the ring
			// is full: it is effectively late.
			return nil
		}
		victim := c.victimLocked(epoch)
		c.cfg.Stats.DroppedDigests.Add(int64(c.windows[victim].digests()))
		c.cfg.Stats.EpochsEvicted.Add(1)
		c.releaseLocked(victim, c.windows[victim])
		if victim == oldest {
			// Only raising past the oldest keeps held mid-ring windows
			// reachable; a floor above them would silently close them.
			c.raiseFloor(victim)
		} else {
			// A mid-ring victim stays above the floor, so tombstone it:
			// without this a late digest for the evicted epoch would reopen
			// it as a fresh empty window.
			c.evicted[victim] = true
		}
	}
	w := c.newWindowLocked()
	c.windows[epoch] = w
	return w
}

// victimLocked picks which buffered epoch gives way under pressure. Ring
// eviction (windowFor) and memory shedding (admitLocked,
// enforceBudgetLocked) all share this one ordering, so an epoch that is
// simultaneously a quorum hold and a shed candidate can never be chosen by
// one path and spared by the other — which is what keeps the per-epoch
// ledger (buffered + shed + dropped = ingested) coherent. The pinned rule:
// the oldest epoch the quorum gate is not holding open goes first; only when
// every candidate is held does the overall oldest go — memory pressure still
// outranks the gate (a refused shed would OOM or starve newer epochs, and a
// shed window is at least honestly reported), but it spends non-held windows
// before breaking a hold, and MaxWait bounds how long the all-held case can
// last. exclude shields one epoch (the window the triggering digest is being
// filed into — shedding it would charge the digest to a window that no
// longer exists). Returns -1 when nothing is eligible. Caller holds c.mu.
func (c *Center) victimLocked(exclude int) int {
	oldest, victim := -1, -1
	for e := range c.windows {
		if e == exclude {
			continue
		}
		if oldest < 0 || e < oldest {
			oldest = e
		}
		if !c.quorumLocked(e).Hold && (victim < 0 || e < victim) {
			victim = e
		}
	}
	if victim < 0 {
		victim = oldest
	}
	return victim
}

// raiseFloor closes every epoch up to e and prunes tombstones the new floor
// subsumes (a floor check short-circuits before the tombstone lookup would
// match them). Caller holds c.mu.
func (c *Center) raiseFloor(e int) {
	if !c.floorValid || e > c.floor {
		c.floor, c.floorValid = e, true
		for t := range c.evicted {
			if t <= c.floor {
				delete(c.evicted, t)
			}
		}
	}
}

// RouterStatus is one registry entry: a router and the newest epoch it has
// stamped on any digest (late or duplicate digests count — they still prove
// the router is alive).
type RouterStatus struct {
	RouterID  int
	LastEpoch int
}

// Routers lists every router that has ever reported, sorted by id.
func (c *Center) Routers() []RouterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RouterStatus, 0, len(c.lastSeen))
	for id, last := range c.lastSeen {
		out = append(out, RouterStatus{RouterID: id, LastEpoch: last})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RouterID < out[j].RouterID })
	return out
}

// QuorumState describes how far one epoch's window is from quorum.
type QuorumState struct {
	// Epoch is the window asked about.
	Epoch int
	// Reported is how many distinct routers have reported into the window.
	Reported int
	// Missing names the known-live routers (reported into epoch-MaxWait or
	// newer) absent from the window, sorted ascending.
	Missing []int
	// Hold is true when quiescence-driven closing and ring eviction should
	// keep the window open: below quorum, a live router still absent, and
	// the fleet not yet MaxWait epochs past this one.
	Hold bool
}

// Quorum reports the quorum state of one epoch. Hold is always false when
// quorum gating is off (MinRouters == 0) — today's behaviour.
func (c *Center) Quorum(epoch int) QuorumState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quorumLocked(epoch)
}

// quorumLocked computes QuorumState for epoch; the window may be absent
// (Reported 0). Caller holds c.mu.
func (c *Center) quorumLocked(epoch int) QuorumState {
	st := QuorumState{Epoch: epoch}
	var reporters map[int]bool
	if w, ok := c.windows[epoch]; ok {
		reporters = w.reporters()
	}
	st.Reported = len(reporters)
	if c.cfg.MinRouters <= 0 {
		return st
	}
	horizon := epoch - c.cfg.MaxWait
	for id, last := range c.lastSeen {
		if last >= horizon && !reporters[id] {
			st.Missing = append(st.Missing, id)
		}
	}
	sort.Ints(st.Missing)
	st.Hold = st.Reported < c.cfg.MinRouters && len(st.Missing) > 0 &&
		c.maxSeen-epoch < c.cfg.MaxWait
	return st
}

// windowMeta is the quorum context captured (under c.mu) at the moment a
// window detaches for analysis, so the report reflects the registry as it
// stood when the epoch closed.
type windowMeta struct {
	missing  []int
	degraded bool
	fleet    int // registered routers (observed fleet size m)
	observed int // distinct routers in this window (m′)
}

// metaLocked computes windowMeta for a window about to close. Caller holds
// c.mu.
func (c *Center) metaLocked(epoch int, w *window) windowMeta {
	rep := w.reporters()
	m := windowMeta{fleet: len(c.lastSeen), observed: len(rep)}
	if c.cfg.MinRouters <= 0 {
		return m
	}
	horizon := epoch - c.cfg.MaxWait
	for id, last := range c.lastSeen {
		if last >= horizon && !rep[id] {
			m.missing = append(m.missing, id)
		}
	}
	sort.Ints(m.missing)
	m.degraded = m.observed < c.cfg.MinRouters
	return m
}

// Pending returns how many digests of each kind await analysis, summed over
// all buffered epochs.
func (c *Center) Pending() (alignedCount, unalignedCount int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.windows {
		alignedCount += len(w.aligned)
		unalignedCount += len(w.unaligned)
	}
	return alignedCount, unalignedCount
}

// Epochs lists the buffered epochs, oldest first.
func (c *Center) Epochs() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int, 0, len(c.windows))
	for e := range c.windows {
		out = append(out, e)
	}
	sort.Ints(out)
	return out
}

// EpochDigests returns the digest count buffered for each epoch — the
// quiescence signal cmd/dcsd uses to close an idle epoch.
func (c *Center) EpochDigests() map[int]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[int]int, len(c.windows))
	for e, w := range c.windows {
		out[e] = w.digests()
	}
	return out
}

// Analyze closes the span ending at the given epoch, analyzes it, and
// retires every window that has left all future spans (outside sliding mode:
// exactly this window); later digests for retired epochs count as late.
// ErrNoWindow when the center holds nothing for the epoch, or when a newer
// sliding span already foreclosed this one.
func (c *Center) Analyze(epoch int) (WindowReport, error) {
	c.mu.Lock()
	if rep, shed := c.shedReports[epoch]; shed {
		// The epoch was shed for memory pressure before anyone analyzed it:
		// hand out its tombstone report (Degraded, Shed, digest count) —
		// honest about the loss, never ErrNoWindow as if it had been
		// analyzed and forgotten. Each report is handed out once.
		delete(c.shedReports, epoch)
		c.mu.Unlock()
		return rep, nil
	}
	if c.cfg.OwnsSpan != nil && !c.cfg.OwnsSpan(epoch) {
		c.mu.Unlock()
		return WindowReport{Epoch: epoch}, ErrNotOwned
	}
	snap, err := c.closeSpanLocked(epoch)
	c.mu.Unlock()
	if err != nil {
		return WindowReport{Epoch: epoch}, err
	}
	return c.analyzeSpan(snap)
}

// AnalyzeLatestComplete analyzes the newest epoch that is complete — i.e.
// strictly older than the newest epoch any collector has reported, so no
// well-behaved collector is still filling it — and, when quorum gating is
// on, not held open waiting for known-live routers (Quorum). A held epoch
// becomes analyzable once quorum arrives or the fleet moves MaxWait epochs
// past it; it then closes with Degraded/MissingRouters set on the report.
// ErrNoCompleteEpoch when every buffered epoch is newest or held.
// In sliding mode the pick flips to the *oldest* eligible epoch instead:
// spans close in order, every epoch's span is emitted, and boundary content
// is never skipped over by a newer arrival.
func (c *Center) AnalyzeLatestComplete() (WindowReport, error) {
	c.mu.Lock()
	sliding := c.cfg.WindowSlide > 1
	best, found := 0, false
	for e := range c.windows {
		if e >= c.maxSeen || c.quorumLocked(e).Hold {
			continue
		}
		if c.cfg.OwnsSpan != nil && !c.cfg.OwnsSpan(e) {
			continue
		}
		if sliding && c.spanClosedValid && e <= c.spanClosed {
			continue
		}
		if !found || (sliding && e < best) || (!sliding && e > best) {
			best, found = e, true
		}
	}
	if !found {
		c.mu.Unlock()
		return WindowReport{}, ErrNoCompleteEpoch
	}
	snap, err := c.closeSpanLocked(best)
	c.mu.Unlock()
	if err != nil {
		return WindowReport{Epoch: best}, err
	}
	return c.analyzeSpan(snap)
}

// scaledThreshold shrinks an ER component threshold tuned for fleet routers
// down to the observed router count: the expected pattern component grows
// linearly in the number of reporting routers (each carrier contributes its
// group vertices), so a window missing routers must clear a proportionally
// smaller bar or the partition itself would mask the pattern. Floor of 2 —
// below that a single chance edge would fire the test.
func scaledThreshold(configured, observed, fleet int) int {
	t := (configured*observed + fleet - 1) / fleet
	if t < 2 {
		t = 2
	}
	return t
}

func (c *Center) analyzeUnaligned(digests []*unaligned.Digest, meta windowMeta) (*UnalignedOutcome, error) {
	gm, err := unaligned.Merge(digests)
	if err != nil {
		return nil, err
	}
	n := gm.NumVertices()
	// Merge guarantees a uniform array count, so k² is well-defined.
	rows := gm.ArraysPerGroup()
	rowPairs := rows * rows

	p1 := c.cfg.TargetP1
	if p1 == 0 {
		p1 = 0.5 / float64(n)
	}
	lt, err := c.lambdaTable(gm.ArrayBits(), unaligned.PStarForEdgeProbability(p1, rowPairs))
	if err != nil {
		return nil, err
	}
	g, err := gm.BuildGraphParallel(lt, c.cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	threshold := c.cfg.ComponentThreshold
	if c.cfg.MinRouters > 0 && meta.fleet > 0 && len(digests) < meta.fleet {
		threshold = scaledThreshold(threshold, len(digests), meta.fleet)
	}
	out := &UnalignedOutcome{
		Vertices: n,
		ER:       unaligned.ERTest(g, threshold),
	}
	if !out.ER.PatternDetected {
		return out, nil
	}

	coreP1 := c.cfg.CoreP1
	if coreP1 == 0 {
		coreP1 = 8 / float64(n)
	}
	coreTable, err := c.lambdaTable(gm.ArrayBits(), unaligned.PStarForEdgeProbability(coreP1, rowPairs))
	if err != nil {
		return nil, err
	}
	cg, err := gm.BuildGraphParallel(coreTable, c.cfg.Parallelism)
	if err != nil {
		return nil, err
	}
	found, err := unaligned.FindPattern(cg, unaligned.PatternConfig{Beta: c.cfg.Beta, D: c.cfg.D})
	if err != nil {
		return nil, err
	}
	routerSeen := map[int]bool{}
	for _, v := range found {
		vert := gm.Vertex(v)
		out.PatternVertices = append(out.PatternVertices, vert)
		if !routerSeen[vert.RouterID] {
			routerSeen[vert.RouterID] = true
			out.Routers = append(out.Routers, vert.RouterID)
		}
	}
	return out, nil
}
