package center

import (
	"errors"
	"testing"

	"dcstream/internal/transport"
)

// digestCost is the byte-accounted price of one smallBitmap aligned digest,
// computed the same way admission computes it so budgets in these tests can
// be expressed in digests.
func digestCost() int64 {
	return retainedBytes(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(1)})
}

// TestShedOldestUnderBudget: with a budget of ~one epoch's digests and the
// default ShedOldest policy, filling newer epochs sheds the oldest whole —
// tombstoned, counted, and reported — while the newest epoch stays complete
// and the byte ledger balances.
func TestShedOldestUnderBudget(t *testing.T) {
	const perEpoch = 4
	budget := digestCost() * (perEpoch + 1) // room for one epoch, not two
	// Batch mode: these tests express budgets in digest bytes; the
	// incremental accumulator's footprint has its own regression test
	// (TestBudgetCountsAccumulatorBytes).
	c := New(Config{Analysis: AnalysisBatch, MemoryBudgetBytes: budget, Shedding: ShedOldest, MaxEpochs: 8})
	for epoch := 1; epoch <= 3; epoch++ {
		for r := 0; r < perEpoch; r++ {
			c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: epoch, Bitmap: smallBitmap(uint64(epoch*10 + r))})
		}
	}
	s := c.Stats().Snapshot()
	if s.ShedEpochs != 2 || s.ShedDigests != 2*perEpoch {
		t.Fatalf("shed epochs=%d digests=%d, want 2 epochs / %d digests", s.ShedEpochs, s.ShedDigests, 2*perEpoch)
	}
	if s.RejectedDigests != 0 {
		t.Fatalf("ShedOldest rejected %d digests with sheddable epochs available", s.RejectedDigests)
	}
	if got := c.BufferedBytes(); got > budget {
		t.Fatalf("buffered %d bytes over the %d budget", got, budget)
	}
	// Ledger: everything ingested is buffered or shed; nothing vanished.
	if s.DigestsIngested != 3*perEpoch {
		t.Fatalf("ingested %d, want %d (admission happens before the ingested ledger)", s.DigestsIngested, 3*perEpoch)
	}
	a, u := c.Pending()
	if int64(a+u)+s.ShedDigests != s.DigestsIngested {
		t.Fatalf("ledger broken: buffered %d + shed %d != ingested %d", a+u, s.ShedDigests, s.DigestsIngested)
	}

	// The tombstone reports name the shed epochs, oldest first, with honest
	// digest counts and the Degraded+Shed marking.
	reps := c.TakeShedReports()
	if len(reps) != 2 || reps[0].Epoch != 1 || reps[1].Epoch != 2 {
		t.Fatalf("shed reports %+v, want epochs 1 and 2", reps)
	}
	for _, rep := range reps {
		if !rep.Shed || !rep.Degraded || rep.ShedDigests != perEpoch || rep.Routers != perEpoch {
			t.Fatalf("shed report %+v lacks Shed/Degraded/counts", rep)
		}
		if rep.Aligned != nil || rep.Unaligned != nil {
			t.Fatalf("shed report %+v carries an analysis for digests that were dropped", rep)
		}
	}
	if again := c.TakeShedReports(); len(again) != 0 {
		t.Fatalf("TakeShedReports not drained: %+v", again)
	}

	// Shed epochs are tombstoned: a straggler for epoch 1 is late, never a
	// silent reopen.
	c.Ingest(transport.AlignedDigest{RouterID: 9, Epoch: 1, Bitmap: smallBitmap(99)})
	if got := c.Stats().Snapshot().LateDigests; got != 1 {
		t.Fatalf("straggler into a shed epoch: late=%d, want 1", got)
	}
	// The surviving epoch analyzes complete and un-degraded.
	rep, err := c.Analyze(3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed || rep.Degraded || rep.Routers != perEpoch {
		t.Fatalf("survivor epoch report %+v, want complete and clean", rep)
	}
}

// TestAnalyzeShedEpochReturnsTombstone: Analyze on a shed epoch hands out
// the tombstone report (once) instead of ErrNoWindow — the caller learns the
// epoch was sacrificed, not that it never existed.
func TestAnalyzeShedEpochReturnsTombstone(t *testing.T) {
	budget := digestCost() * 2
	c := New(Config{Analysis: AnalysisBatch, MemoryBudgetBytes: budget, MaxEpochs: 8})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(1)})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 2, Bitmap: smallBitmap(2)})
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 2, Bitmap: smallBitmap(3)})
	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatalf("Analyze(shed epoch) = %v, want its tombstone report", err)
	}
	if !rep.Shed || !rep.Degraded || rep.ShedDigests != 1 {
		t.Fatalf("tombstone report %+v", rep)
	}
	if _, err := c.Analyze(1); !errors.Is(err, ErrNoWindow) {
		t.Fatalf("second Analyze of a handed-out tombstone = %v, want ErrNoWindow", err)
	}
	if reps := c.TakeShedReports(); len(reps) != 0 {
		t.Fatalf("Analyze left the tombstone behind: %+v", reps)
	}
}

// TestRejectNewUnderBudget: the RejectNew policy refuses incoming digests at
// the budget line, preserves every buffered epoch, and marks the affected
// window's report Degraded with the rejection count.
func TestRejectNewUnderBudget(t *testing.T) {
	budget := digestCost() * 3
	c := New(Config{Analysis: AnalysisBatch, MemoryBudgetBytes: budget, Shedding: RejectNew, MaxEpochs: 8})
	for r := 0; r < 3; r++ {
		c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: smallBitmap(uint64(r))})
	}
	// Over budget: both a new digest for epoch 1 and one opening epoch 2
	// are refused; nothing buffered is touched.
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: smallBitmap(7)})
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 2, Bitmap: smallBitmap(8)})
	s := c.Stats().Snapshot()
	if s.RejectedDigests != 2 || s.ShedEpochs != 0 || s.DigestsIngested != 3 {
		t.Fatalf("rejected=%d shed=%d ingested=%d, want 2/0/3", s.RejectedDigests, s.ShedEpochs, s.DigestsIngested)
	}
	// A same-size DupKeepLast resend costs no new bytes and is still
	// admitted at the budget line.
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: smallBitmap(100)})
	if s := c.Stats().Snapshot(); s.ReplacedDigests != 1 {
		t.Fatalf("zero-delta replacement refused under RejectNew: %+v", s)
	}

	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded || rep.RejectedDigests != 1 || rep.Routers != 3 {
		t.Fatalf("report %+v, want Degraded with RejectedDigests=1 over 3 routers", rep)
	}
	// Epoch 2 remembers it refused a digest: even after the budget frees up
	// and it fills normally, its report stays Degraded with the rejection
	// on the books — the analysis ran on an incomplete window.
	c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 2, Bitmap: smallBitmap(9)})
	rep2, err := c.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.Degraded || rep2.RejectedDigests != 1 || rep2.Routers != 1 {
		t.Fatalf("epoch 2 report %+v, want Degraded with its 1 rejection remembered", rep2)
	}
}

// TestEvictionLoopBoundaries is the satellite regression table: the ring
// bound at its edge values (0 and negative clamp to a working ring of 1,
// exactly 1 works) and shrinking MaxEpochs at runtime while the quorum gate
// holds windows open — the eviction loop must converge in every case, never
// spin or index an empty ring.
func TestEvictionLoopBoundaries(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T)
	}{
		{"configured zero defaults", func(t *testing.T) {
			c := New(Config{})
			for e := 1; e <= 10; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			if got := len(c.Epochs()); got != 4 {
				t.Fatalf("default ring holds %d epochs, want 4", got)
			}
		}},
		{"set zero clamps to one", func(t *testing.T) {
			c := New(Config{})
			c.SetMaxEpochs(0)
			for e := 1; e <= 5; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			if got := c.Epochs(); len(got) != 1 || got[0] != 5 {
				t.Fatalf("ring after clamp-to-1: %v, want just epoch 5", got)
			}
		}},
		{"set negative clamps to one", func(t *testing.T) {
			c := New(Config{})
			c.SetMaxEpochs(-3)
			for e := 1; e <= 5; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			if got := c.Epochs(); len(got) != 1 || got[0] != 5 {
				t.Fatalf("ring after clamp: %v, want just epoch 5", got)
			}
		}},
		{"configured negative clamps to one", func(t *testing.T) {
			c := New(Config{MaxEpochs: -1})
			for e := 1; e <= 5; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			if got := c.Epochs(); len(got) != 1 || got[0] != 5 {
				t.Fatalf("ring with negative config: %v, want just epoch 5", got)
			}
		}},
		{"exactly one", func(t *testing.T) {
			c := New(Config{MaxEpochs: 1})
			for e := 1; e <= 3; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			s := c.Stats().Snapshot()
			if got := c.Epochs(); len(got) != 1 || got[0] != 3 || s.EpochsEvicted != 2 {
				t.Fatalf("ring of one: epochs %v, evicted %d", got, s.EpochsEvicted)
			}
		}},
		{"shrink while quorum-held", func(t *testing.T) {
			// Quorum (MinRouters 3, one reporter each) holds every window;
			// shrinking the ring to 1 and ingesting a new epoch must evict
			// the held windows down to the bound and terminate.
			c := New(Config{MaxEpochs: 4, MinRouters: 3, MaxWait: 10})
			for r := 0; r < 3; r++ { // register a fleet so windows are held
				c.Ingest(transport.AlignedDigest{RouterID: r, Epoch: 1, Bitmap: smallBitmap(uint64(r))})
			}
			for e := 2; e <= 4; e++ {
				c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: e, Bitmap: smallBitmap(uint64(e))})
			}
			if got := len(c.Epochs()); got != 4 {
				t.Fatalf("precondition: %d buffered epochs, want 4", got)
			}
			c.SetMaxEpochs(1)
			c.Ingest(transport.AlignedDigest{RouterID: 0, Epoch: 5, Bitmap: smallBitmap(5)})
			if got := c.Epochs(); len(got) != 1 || got[0] != 5 {
				t.Fatalf("ring after shrink-while-held: %v, want just epoch 5", got)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, tc.run)
	}
}
