package center

import "dcstream/internal/metrics"

// Stats counts ingest-path events with atomic counters so per-connection
// handler goroutines can bump them locklessly and cmd/dcsd can report them
// live. The fields are registry-grade metrics (their Add/Load API matches
// sync/atomic's), so Register can expose the same values on /metrics without
// a second set of books: the scrape and the -stats log can never disagree.
// A Stats must not be copied after first use; the zero value is ready.
type Stats struct {
	// DigestsIngested counts digests accepted into some epoch window as a
	// new (router, epoch, kind) entry. A DupKeepLast replacement mutates a
	// window but adds no digest to it, so it counts in ReplacedDigests
	// instead — DroppedDigests at eviction time drains exactly what
	// DigestsIngested filled.
	DigestsIngested metrics.Counter
	// LateDigests counts digests dropped because their epoch was already
	// analyzed or evicted — the collector fell behind the reorder window.
	LateDigests metrics.Counter
	// DuplicateDigests counts second-or-later digests from one router for
	// one epoch, whatever the resolution policy did with them.
	DuplicateDigests metrics.Counter
	// ReplacedDigests counts DupKeepLast resolutions that overwrote an
	// earlier digest in place (a subset of DuplicateDigests; always 0 under
	// DupKeepFirst). Every message ends in exactly one ledger: ingested,
	// late, replaced, or discarded-by-KeepFirst (DuplicateDigests minus
	// ReplacedDigests).
	ReplacedDigests metrics.Counter
	// DroppedDigests counts digests lost when their epoch was evicted
	// unanalyzed to make room in the ring.
	DroppedDigests metrics.Counter
	// ShedDigests counts digests lost when their epoch was shed whole for
	// memory pressure (MemoryBudgetBytes + ShedOldest); ShedEpochs counts
	// the windows. Every shed epoch also leaves a tombstone WindowReport —
	// the counters and the reports tell the same story.
	ShedDigests metrics.Counter
	ShedEpochs  metrics.Counter
	// RejectedDigests counts digests refused at admission by a RejectNew
	// memory budget — their entire ledger; they were never stored.
	RejectedDigests metrics.Counter
	// UnknownMessages counts wire messages of a kind this center does not
	// understand (forward compatibility: ignored, not fatal).
	UnknownMessages metrics.Counter
	// MisroutedDigests counts digests dropped because their epoch fails the
	// OwnsEpoch partition predicate — digests a shard coordinator should
	// never have routed here. Always 0 outside sharded deployments; any
	// other value is a routing bug or a misconfigured client.
	MisroutedDigests metrics.Counter
	// EpochsAnalyzed and EpochsEvicted count window lifecycle endings.
	EpochsAnalyzed metrics.Counter
	EpochsEvicted  metrics.Counter
	// DegradedEpochs counts windows analyzed below the MinRouters quorum
	// (a subset of EpochsAnalyzed; always 0 with quorum gating off).
	DegradedEpochs metrics.Counter
	// IngestToAnalyzeSeconds is the latency from a window's first ingested
	// digest to the completion of its analysis — the operator's view of how
	// far behind the fleet the center is running.
	IngestToAnalyzeSeconds metrics.Histogram
	// FinalizeSeconds is the wall time Analyze spends producing a report
	// once the span snapshot detaches — the cost the incremental path
	// drives down from a full rebuild to a replay of maintained state.
	FinalizeSeconds metrics.Histogram
}

// centerLatencyBuckets replaces metrics.DefBuckets on the center's latency
// histograms. The defaults start at 0.5ms and stop at 10s — too coarse at
// both ends here: an incremental finalize lands in tens of microseconds
// (everything below 0.5ms collapsed into one bucket, so p50 and p99 were
// indistinguishable), while a quorum-held window can take minutes from
// first digest to analysis (saturating +Inf). Roughly log-spaced,
// 10µs..60s, ~4 buckets per decade.
var centerLatencyBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Register exposes every counter (and the ingest→analyze histogram) on r
// under dcs_center_* names. The fields stay the single source of truth:
// registration attaches them, it does not copy them, so `dcsd -stats` and a
// /metrics scrape always print the same numbers.
func (s *Stats) Register(r *metrics.Registry) {
	r.RegisterCounter("dcs_center_digests_ingested_total",
		"digests accepted into an epoch window as a new (router, epoch, kind) entry", &s.DigestsIngested)
	r.RegisterCounter("dcs_center_digests_late_total",
		"digests dropped because their epoch was already analyzed or evicted", &s.LateDigests)
	r.RegisterCounter("dcs_center_digests_duplicate_total",
		"second-or-later digests from one router for one epoch, any policy", &s.DuplicateDigests)
	r.RegisterCounter("dcs_center_digests_replaced_total",
		"DupKeepLast duplicates that overwrote an earlier digest in place", &s.ReplacedDigests)
	r.RegisterCounter("dcs_center_digests_dropped_total",
		"digests lost when their epoch was evicted unanalyzed", &s.DroppedDigests)
	r.RegisterCounter("dcs_center_shed_digests_total",
		"digests lost with epochs shed whole for memory pressure", &s.ShedDigests)
	r.RegisterCounter("dcs_center_shed_epochs_total",
		"epoch windows shed whole for memory pressure", &s.ShedEpochs)
	r.RegisterCounter("dcs_center_shed_rejected_total",
		"digests refused at admission by a RejectNew memory budget", &s.RejectedDigests)
	r.RegisterCounter("dcs_center_messages_unknown_total",
		"wire messages of an unknown kind (ignored)", &s.UnknownMessages)
	r.RegisterCounter("dcs_center_digests_misrouted_total",
		"digests dropped because their epoch fails the shard partition predicate", &s.MisroutedDigests)
	r.RegisterCounter("dcs_center_epochs_analyzed_total",
		"epoch windows closed by analysis", &s.EpochsAnalyzed)
	r.RegisterCounter("dcs_center_epochs_evicted_total",
		"epoch windows evicted unanalyzed to make ring room", &s.EpochsEvicted)
	r.RegisterCounter("dcs_center_epochs_degraded_total",
		"epoch windows analyzed below the MinRouters quorum", &s.DegradedEpochs)
	r.RegisterHistogram("dcs_center_ingest_to_analyze_seconds",
		"latency from a window's first digest to its analysis completing", &s.IngestToAnalyzeSeconds)
	r.RegisterHistogram("dcs_center_finalize_seconds",
		"wall time from span detach to report, the analyze-path cost", &s.FinalizeSeconds)
}

// Snapshot is a plain-int copy of Stats, safe to compare and print.
type Snapshot struct {
	DigestsIngested, LateDigests, DuplicateDigests, ReplacedDigests int64
	DroppedDigests, UnknownMessages, MisroutedDigests               int64
	ShedDigests, ShedEpochs, RejectedDigests                        int64
	EpochsAnalyzed, EpochsEvicted, DegradedEpochs                   int64
}

// Snapshot reads every counter once (not a single atomic cut; fine for
// monitoring).
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		DigestsIngested:  s.DigestsIngested.Load(),
		LateDigests:      s.LateDigests.Load(),
		DuplicateDigests: s.DuplicateDigests.Load(),
		ReplacedDigests:  s.ReplacedDigests.Load(),
		DroppedDigests:   s.DroppedDigests.Load(),
		UnknownMessages:  s.UnknownMessages.Load(),
		MisroutedDigests: s.MisroutedDigests.Load(),
		ShedDigests:      s.ShedDigests.Load(),
		ShedEpochs:       s.ShedEpochs.Load(),
		RejectedDigests:  s.RejectedDigests.Load(),
		EpochsAnalyzed:   s.EpochsAnalyzed.Load(),
		EpochsEvicted:    s.EpochsEvicted.Load(),
		DegradedEpochs:   s.DegradedEpochs.Load(),
	}
}
