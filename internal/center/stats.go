package center

import "sync/atomic"

// Stats counts ingest-path events with atomic counters so per-connection
// handler goroutines can bump them locklessly and cmd/dcsd can report them
// live. A Stats must not be copied after first use; the zero value is ready.
type Stats struct {
	// DigestsIngested counts digests accepted into some epoch window
	// (duplicates resolved by DupKeepLast count again — each acceptance
	// mutated a window).
	DigestsIngested atomic.Int64
	// LateDigests counts digests dropped because their epoch was already
	// analyzed or evicted — the collector fell behind the reorder window.
	LateDigests atomic.Int64
	// DuplicateDigests counts second-or-later digests from one router for
	// one epoch, whatever the resolution policy did with them.
	DuplicateDigests atomic.Int64
	// DroppedDigests counts digests lost when their epoch was evicted
	// unanalyzed to make room in the ring.
	DroppedDigests atomic.Int64
	// UnknownMessages counts wire messages of a kind this center does not
	// understand (forward compatibility: ignored, not fatal).
	UnknownMessages atomic.Int64
	// EpochsAnalyzed and EpochsEvicted count window lifecycle endings.
	EpochsAnalyzed atomic.Int64
	EpochsEvicted  atomic.Int64
	// DegradedEpochs counts windows analyzed below the MinRouters quorum
	// (a subset of EpochsAnalyzed; always 0 with quorum gating off).
	DegradedEpochs atomic.Int64
}

// Snapshot is a plain-int copy of Stats, safe to compare and print.
type Snapshot struct {
	DigestsIngested, LateDigests, DuplicateDigests int64
	DroppedDigests, UnknownMessages                int64
	EpochsAnalyzed, EpochsEvicted, DegradedEpochs  int64
}

// Snapshot reads every counter once (not a single atomic cut; fine for
// monitoring).
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		DigestsIngested:  s.DigestsIngested.Load(),
		LateDigests:      s.LateDigests.Load(),
		DuplicateDigests: s.DuplicateDigests.Load(),
		DroppedDigests:   s.DroppedDigests.Load(),
		UnknownMessages:  s.UnknownMessages.Load(),
		EpochsAnalyzed:   s.EpochsAnalyzed.Load(),
		EpochsEvicted:    s.EpochsEvicted.Load(),
		DegradedEpochs:   s.DegradedEpochs.Load(),
	}
}
