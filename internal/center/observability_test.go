package center

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dcstream/internal/metrics"
	"dcstream/internal/transport"
)

// TestEvictionTombstoneBlocksReopen is the regression test for the silent
// window-reopen bug: evicting an epoch from the middle of the ring (possible
// only when the quorum gate holds an older epoch, so the floor cannot rise)
// used to leave the epoch reopenable — a late digest would build a fresh
// near-empty window that the center later analyzed as a bogus degraded
// epoch, counted as ingested rather than late. With the tombstone the
// straggler is late, and the held older window stays reachable.
func TestEvictionTombstoneBlocksReopen(t *testing.T) {
	c := New(Config{MaxEpochs: 2, MinRouters: 2, MaxWait: 10})

	// Epoch 1: only router 1 → held open awaiting router 2.
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: smallBitmap(1)})
	// Epoch 2: both routers → closable, so it is the preferred victim.
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 2, Bitmap: smallBitmap(2)})
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 2, Bitmap: smallBitmap(3)})
	// Epoch 3 fills the ring past MaxEpochs: epoch 2 is evicted mid-ring
	// (epoch 1, though older, is held by quorum).
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 3, Bitmap: smallBitmap(4)})

	s := c.Stats().Snapshot()
	if s.EpochsEvicted != 1 || s.DroppedDigests != 2 {
		t.Fatalf("setup: evicted=%d dropped=%d, want the 2-digest epoch 2 evicted", s.EpochsEvicted, s.DroppedDigests)
	}
	if es := c.Epochs(); len(es) != 2 || es[0] != 1 || es[1] != 3 {
		t.Fatalf("setup: buffered epochs %v, want [1 3]", es)
	}

	// The straggler for the evicted epoch must be late, not a reopen.
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 2, Bitmap: smallBitmap(5)})
	s = c.Stats().Snapshot()
	if s.LateDigests != 1 {
		t.Fatalf("straggler for evicted epoch 2 counted as late=%d, want 1", s.LateDigests)
	}
	if s.DigestsIngested != 4 {
		t.Fatalf("straggler was ingested (ingested=%d, want 4) — epoch 2 reopened", s.DigestsIngested)
	}
	if es := c.Epochs(); len(es) != 2 || es[0] != 1 || es[1] != 3 {
		t.Fatalf("buffered epochs %v after straggler, want [1 3] (no reopened window)", es)
	}

	// The held epoch below the tombstone must still accept its quorum.
	c.Ingest(transport.AlignedDigest{RouterID: 2, Epoch: 1, Bitmap: smallBitmap(6)})
	if s = c.Stats().Snapshot(); s.DigestsIngested != 5 || s.LateDigests != 1 {
		t.Fatalf("held epoch 1 rejected router 2: ingested=%d late=%d", s.DigestsIngested, s.LateDigests)
	}
	rep, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded || rep.Routers != 2 {
		t.Fatalf("epoch 1 analyzed %+v, want both routers and no degradation", rep)
	}

	// Once the floor rises past the tombstone it must be pruned, not leak.
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 4, Bitmap: smallBitmap(7)})
	c.Ingest(transport.AlignedDigest{RouterID: 1, Epoch: 5, Bitmap: smallBitmap(8)})
	c.mu.Lock()
	floor, floorValid, tombs := c.floor, c.floorValid, len(c.evicted)
	c.mu.Unlock()
	if !floorValid || floor < 2 {
		t.Fatalf("floor %d (valid=%v) never rose past the tombstoned epoch", floor, floorValid)
	}
	if tombs != 0 {
		t.Fatalf("%d tombstones survive a floor that subsumes them", tombs)
	}
}

// TestDupKeepLastCounterLedger is the regression test for the duplicate
// double-count: a DupKeepLast replacement used to increment DigestsIngested
// again, so a window holding one digest looked like two and eviction's
// DroppedDigests could never reconcile the ledger.
func TestDupKeepLastCounterLedger(t *testing.T) {
	c := New(Config{MaxEpochs: 1}) // DupKeepLast is the default
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: smallBitmap(1)})
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: smallBitmap(2)})
	c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: newTestUnaligned(7)})
	c.Ingest(transport.UnalignedDigest{Epoch: 1, Digest: newTestUnaligned(7)})

	s := c.Stats().Snapshot()
	if s.DigestsIngested != 2 || s.DuplicateDigests != 2 || s.ReplacedDigests != 2 {
		t.Fatalf("KeepLast counters ingested=%d dup=%d replaced=%d, want 2/2/2",
			s.DigestsIngested, s.DuplicateDigests, s.ReplacedDigests)
	}
	c.mu.Lock()
	held := c.windows[1].digests()
	c.mu.Unlock()
	if held != int(s.DigestsIngested) {
		t.Fatalf("window holds %d digests but ingested says %d", held, s.DigestsIngested)
	}

	// Evicting the window must drain exactly what DigestsIngested filled.
	c.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 2, Bitmap: smallBitmap(3)})
	s = c.Stats().Snapshot()
	if s.DroppedDigests != 2 {
		t.Fatalf("eviction dropped %d digests from a 2-digest window", s.DroppedDigests)
	}
	const sends = 5
	if s.DigestsIngested+s.ReplacedDigests+s.LateDigests != sends {
		t.Fatalf("ledger broken: ingested %d + replaced %d + late %d != %d sent",
			s.DigestsIngested, s.ReplacedDigests, s.LateDigests, sends)
	}

	// KeepFirst discards instead of replacing: ReplacedDigests stays zero.
	kf := New(Config{Duplicates: DupKeepFirst})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: smallBitmap(1)})
	kf.Ingest(transport.AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: smallBitmap(2)})
	s = kf.Stats().Snapshot()
	if s.DigestsIngested != 1 || s.DuplicateDigests != 1 || s.ReplacedDigests != 0 {
		t.Fatalf("KeepFirst counters ingested=%d dup=%d replaced=%d, want 1/1/0",
			s.DigestsIngested, s.DuplicateDigests, s.ReplacedDigests)
	}
}

// TestMetricsScrapeUnderChaosIngest runs a live /metrics endpoint against a
// center under concurrent ingest-and-analyze churn: every scrape must parse,
// counters must be monotone across scrapes, and the final exposition must
// equal the Stats snapshot. Run under -race this also proves scrapes never
// tear the ingest hot path.
func TestMetricsScrapeUnderChaosIngest(t *testing.T) {
	c := New(Config{MaxEpochs: 2})
	reg := metrics.NewRegistry()
	c.RegisterMetrics(reg)
	ts := httptest.NewServer(reg.Handler())
	defer ts.Close()

	const writers, perWriter = 4, 250
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(router int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Ingest(transport.AlignedDigest{
					RouterID: router,
					Epoch:    i,
					Bitmap:   smallBitmap(uint64(router*1000 + i)),
				})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			//dcslint:ignore errcrit chaos churn: ErrNoCompleteEpoch is the expected idle case and analysis errors are the scraped counters' job to expose
			c.AnalyzeLatestComplete()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	monotone := []string{
		"dcs_center_digests_ingested_total",
		"dcs_center_digests_late_total",
		"dcs_center_digests_duplicate_total",
		"dcs_center_digests_dropped_total",
		"dcs_center_epochs_analyzed_total",
		"dcs_center_epochs_evicted_total",
	}
	scrape := func() map[string]float64 {
		t.Helper()
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		samples, perr := metrics.ParseText(resp.Body)
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if perr != nil {
			t.Fatalf("mid-chaos scrape does not parse: %v", perr)
		}
		return samples
	}

	prev := map[string]float64{}
	scrapes := 0
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		samples := scrape()
		scrapes++
		for _, name := range monotone {
			if samples[name] < prev[name] {
				t.Fatalf("scrape %d: %s went backwards (%v -> %v)", scrapes, name, prev[name], samples[name])
			}
		}
		prev = samples
	}
	if scrapes < 2 {
		t.Fatalf("only %d scrapes completed; the test never observed the chaos", scrapes)
	}

	final := scrape()
	s := c.Stats().Snapshot()
	for name, want := range map[string]int64{
		"dcs_center_digests_ingested_total":  s.DigestsIngested,
		"dcs_center_digests_late_total":      s.LateDigests,
		"dcs_center_digests_duplicate_total": s.DuplicateDigests,
		"dcs_center_digests_replaced_total":  s.ReplacedDigests,
		"dcs_center_digests_dropped_total":   s.DroppedDigests,
		"dcs_center_epochs_analyzed_total":   s.EpochsAnalyzed,
		"dcs_center_epochs_evicted_total":    s.EpochsEvicted,
	} {
		if final[name] != float64(want) {
			t.Fatalf("final exposition %s = %v, snapshot says %d", name, final[name], want)
		}
	}
}
