package center

import (
	"errors"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/faultinject/fsfault"
	"dcstream/internal/journal"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
)

// TestChaosOverloadDegradedNeverWrong is the overload acceptance scenario:
// the center takes a digest flood that busts its memory budget, a disk that
// fills mid-run under the journal, and a garbage-spraying sender — all at
// once — and must degrade honestly on every axis without ever being wrong:
//
//   - every epoch still buffered at the end analyzes to a verdict
//     bit-identical to an unloaded center fed the same digests,
//   - epochs sacrificed to the budget are explicit tombstones, never partial
//     verdicts, and the digest ledger balances exactly
//     (ingested = analyzed + shed),
//   - the journal degrades instead of failing ingest, counts what it could
//     not record, and re-arms once the disk recovers,
//   - the sprayer is quarantined and its traffic dropped on the books.
func TestChaosOverloadDegradedNeverWrong(t *testing.T) {
	const fleet = 8
	base := simulate.AlignedScenario{
		Seed:              23,
		Routers:           fleet,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 7},
		BackgroundPackets: 400,
		SegmentSize:       536,
	}
	carriers := []int{0, 2, 3, 5, 6, 7}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1},
		{Epoch: 2},
		{Epoch: 3},
		{Epoch: 4, Carriers: carriers, ContentPackets: 20},
		{Epoch: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	allEpochs := []int{1, 2, 3, 4, 5}

	// Unloaded reference: same digests, no budget, no faults. Its verdicts
	// are the ground truth the overloaded center must reproduce exactly for
	// whatever it admits.
	baseline := map[int]WindowReport{}
	ref := New(Config{SubsetSize: 256, MaxEpochs: 8})
	for _, e := range allEpochs {
		for _, m := range epochs[e].DigestMessages(e) {
			ref.Ingest(m)
		}
	}
	for _, e := range allEpochs {
		rep, err := ref.Analyze(e)
		if err != nil {
			t.Fatal(err)
		}
		baseline[e] = rep
	}
	if !baseline[4].Aligned.Detection.Found {
		t.Fatal("reference run finds no pattern in the content epoch; scenario is broken")
	}

	// The overloaded center: one 8192-bit digest costs 1136 accounted bytes,
	// one epoch 8*1136 — a budget of 2.5 epochs forces ShedOldest to
	// sacrifice epochs 1-3 as 4 and 5 fill.
	perDigest := retainedBytes(epochs[1].DigestMessages(1)[0])
	budget := perDigest * fleet * 5 / 2
	// Batch mode so the digest-denominated budget arithmetic above holds;
	// the incremental state's budget accounting is covered separately.
	c := New(Config{Analysis: AnalysisBatch, SubsetSize: 256, MaxEpochs: 8, MemoryBudgetBytes: budget, Shedding: ShedOldest})

	// Journal on a faulty disk: the first ENOSPC arrives mid-run, and the
	// 1ms retry interval lets the journal re-arm while traffic continues.
	fs := fsfault.NewFS(nil)
	jr, err := journal.Open(t.TempDir(), journal.Options{FS: fs, RetryInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	var mu sync.Mutex
	delivered := map[int]int{} // epoch -> digests the handler saw
	srv, err := transport.ServeUDPConfig("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		//dcslint:ignore errcrit degraded-mode chaos: append failures are the scenario; the gap is asserted via UnjournaledFrames below
		jr.Append(m)
		if d, ok := m.(transport.AlignedDigest); ok {
			mu.Lock()
			delivered[d.Epoch]++
			mu.Unlock()
		}
		c.Ingest(m)
	}, transport.UDPServerConfig{Gate: transport.GateConfig{MaxStrikes: 5, Cooldown: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := transport.DialUDP(srv.Addr(), transport.UDPClientConfig{SenderID: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	sent := 0
	for _, e := range allEpochs {
		if e == 3 {
			// Disk full mid-run, while ingest continues.
			fs.FailNext(fsfault.FaultWrite, 1, errors.New("no space left on device"))
		}
		for _, m := range epochs[e].DigestMessages(e) {
			if err := client.Send(m); err != nil {
				t.Fatal(err)
			}
			if err := client.Flush(); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}

	// Loopback UDP with a deep kernel buffer: everything sent arrives.
	deadline := time.Now().Add(10 * time.Second)
	total := func() int {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, v := range delivered {
			n += v
		}
		return n
	}
	for total() != sent {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d digests; loopback should be lossless", total(), sent)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Garbage sender: malformed datagrams strike until quarantine; then a
	// well-formed probe digest for a bogus epoch must be dropped, not
	// ingested. (The gate keys by host, so on loopback the sprayer's
	// sentence covers every 127.0.0.1 sender — which is exactly why the
	// legit traffic was delivered first.)
	spray, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer spray.Close()
	for i := 0; i < 10; i++ {
		if _, err := spray.Write([]byte("not a dcs datagram at all")); err != nil {
			t.Fatal(err)
		}
	}
	for srv.Stats().SendersQuarantined.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("sprayer never quarantined; stats %+v", srv.Stats().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := client.Send(transport.AlignedDigest{RouterID: 1, Epoch: 99, Bitmap: epochs[1].Digests[0]}); err != nil {
		t.Fatal(err)
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}
	for srv.Stats().QuarantineDrops.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe datagram from the quarantined host neither dropped nor counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	if delivered[99] != 0 {
		mu.Unlock()
		t.Fatal("digest from a quarantined sender reached the handler")
	}
	mu.Unlock()

	// Journal honesty: it degraded on the injected ENOSPC, absorbed the gap
	// in UnjournaledFrames, and is re-armable now that the disk works.
	if !jr.Degraded() {
		if jr.Stats().Rearms == 0 {
			t.Fatal("journal neither degraded-and-rearmed nor still degraded: the disk fault never landed")
		}
	} else if !jr.TryRearm() {
		t.Fatalf("journal cannot re-arm on a healthy disk: %v", jr.DegradedCause())
	}
	js := jr.Stats()
	if js.UnjournaledFrames == 0 {
		t.Fatal("ENOSPC mid-run left UnjournaledFrames at zero")
	}

	// Budget honesty: old epochs were shed whole, as tombstones, and the
	// ledger balances exactly — ingested = still-buffered + shed.
	s := c.Stats().Snapshot()
	if s.ShedEpochs == 0 {
		t.Fatalf("budget %d never forced a shed across %d digests", budget, sent)
	}
	if s.DigestsIngested != int64(sent) {
		t.Fatalf("ingested %d of %d delivered digests", s.DigestsIngested, sent)
	}
	a, u := c.Pending()
	if int64(a+u)+s.ShedDigests != s.DigestsIngested {
		t.Fatalf("ledger broken: buffered %d + shed %d != ingested %d", a+u, s.ShedDigests, s.DigestsIngested)
	}
	shed := map[int]bool{}
	for _, rep := range c.TakeShedReports() {
		if !rep.Shed || !rep.Degraded || rep.Aligned != nil {
			t.Fatalf("shed tombstone %+v carries an analysis or lacks its flags", rep)
		}
		if rep.ShedDigests != fleet {
			t.Fatalf("epoch %d tombstone says %d digests, want %d", rep.Epoch, rep.ShedDigests, fleet)
		}
		shed[rep.Epoch] = true
	}
	if int64(len(shed)) != s.ShedEpochs {
		t.Fatalf("%d tombstones for %d shed epochs", len(shed), s.ShedEpochs)
	}
	if shed[4] || shed[5] {
		t.Fatalf("ShedOldest sacrificed a newest epoch: %v", shed)
	}

	// Never wrong: every admitted epoch's verdict is bit-identical to the
	// unloaded run's — overload may shrink coverage, never perturb results.
	checked := 0
	for _, e := range allEpochs {
		if shed[e] {
			continue
		}
		rep, err := c.Analyze(e)
		if err != nil {
			t.Fatalf("admitted epoch %d: %v", e, err)
		}
		if !reflect.DeepEqual(rep.Aligned, baseline[e].Aligned) {
			t.Fatalf("epoch %d verdict diverged under load:\n  loaded:   %+v\n  baseline: %+v", e, rep.Aligned, baseline[e].Aligned)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("every epoch was shed; nothing verified the never-wrong property")
	}
	if !shed[4] && !baseline[4].Aligned.Detection.Found {
		t.Fatal("content epoch survived but lost its pattern")
	}
}
