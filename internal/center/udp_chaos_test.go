package center

import (
	"net"
	"sync"
	"testing"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/faultinject"
	"dcstream/internal/simulate"
	"dcstream/internal/transport"
)

// TestChaosUDPLossDegradedNeverWrong is the UDP acceptance scenario: a
// twelve-router fleet ships one datagram per digest through a proxy that
// drops over a fifth of them and duplicates, reorders, truncates, and
// bit-flips others. The required end state is degraded-never-wrong:
//
//   - every digest that reaches the center decodes to exactly the bitmap the
//     router sent (per-frame CRC turns corruption into loss, never into a
//     perturbed digest),
//   - the content epoch closes Degraded with an honest sub-fleet row count,
//   - the detection implicates only true carriers whose digests arrived —
//     loss shrinks the verdict, it never invents routers.
func TestChaosUDPLossDegradedNeverWrong(t *testing.T) {
	const fleet = 12
	base := simulate.AlignedScenario{
		Seed:              11,
		Routers:           fleet,
		Collector:         aligned.CollectorConfig{Bits: 1 << 13, HashSeed: 7},
		BackgroundPackets: 600,
		SegmentSize:       536,
	}
	carriers := []int{0, 1, 2, 4, 5, 6, 8, 10}
	isCarrier := map[int]bool{}
	for _, r := range carriers {
		isCarrier[r] = true
	}
	epochs, err := simulate.RunAlignedEpochs(base, []simulate.EpochSpec{
		{Epoch: 1},
		{Epoch: 2, Carriers: carriers, ContentPackets: 24},
		{Epoch: 3},
		{Epoch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	// The handler records what was actually delivered (before Ingest eats
	// it) so the wire's honesty can be checked against the originals.
	c := New(Config{SubsetSize: 256, MinRouters: fleet, MaxWait: 2, MaxEpochs: 8})
	var mu sync.Mutex
	delivered := map[[2]int]*bitvec.Vector{} // (router, epoch) -> bitmap
	srv, err := transport.ServeUDP("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		if d, ok := m.(transport.AlignedDigest); ok {
			mu.Lock()
			delivered[[2]int{d.RouterID, d.Epoch}] = d.Bitmap
			mu.Unlock()
		}
		c.Ingest(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy, err := faultinject.NewUDP(srv.Addr(), faultinject.Config{
		Seed:      4,
		Drop:      0.3,
		Duplicate: 0.15,
		Reorder:   0.2,
		Truncate:  0.08,
		BitFlip:   0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// One batching client per router, each with its own sender id and an
	// explicit flush per digest: exactly one datagram per digest, so the
	// proxy's per-datagram fault schedule is a per-digest fault schedule.
	clients := make([]*transport.BatchingUDPClient, fleet)
	for r := 0; r < fleet; r++ {
		clients[r], err = transport.DialUDP(proxy.Addr(), transport.UDPClientConfig{
			SenderID:      uint32(r + 1),
			FlushInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer clients[r].Close()
	}
	sent := int64(0)
	for _, e := range []int{1, 2, 3, 4} {
		for r, m := range epochs[e].DigestMessages(e) {
			if err := clients[r].Send(m); err != nil {
				t.Fatal(err)
			}
			if err := clients[r].Flush(); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}

	// Quiesce: the proxy has handled every sent datagram, and the server
	// has classified (accepted or rejected) everything the proxy emitted.
	deadline := time.Now().Add(10 * time.Second)
	settled := func() bool {
		if proxy.Received() != sent {
			return false
		}
		s := srv.Stats().Snapshot()
		return s.DatagramsIn+s.DatagramsRejected == proxy.Forwarded()
	}
	for !settled() {
		if time.Now().After(deadline) {
			s := srv.Stats().Snapshot()
			t.Fatalf("pipeline never quiesced: proxy received %d/%d, forwarded %d, server %+v",
				proxy.Received(), sent, proxy.Forwarded(), s)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The chaos must have materialized: this is a loss test, not a smoke
	// test. The acceptance bar is at least 20% of datagrams gone.
	if frac := float64(proxy.Dropped()) / float64(sent); frac < 0.20 {
		t.Fatalf("only %.0f%% of datagrams dropped; the scenario under-stresses the path", frac*100)
	}

	// Wire honesty: everything delivered is bit-identical to what its
	// router sent. Truncation and bit flips may only shrink delivery
	// (BadFrames), never alter a digest.
	mu.Lock()
	for key, got := range delivered {
		want := epochs[key[1]].DigestMessages(key[1])[key[0]]
		if !bitvec.Equal(got, want.Bitmap) {
			t.Fatalf("router %d epoch %d digest corrupted in flight", key[0], key[1])
		}
	}
	arrived2 := map[int]bool{}
	for key := range delivered {
		if key[1] == 2 {
			arrived2[key[0]] = true
		}
	}
	mu.Unlock()
	if len(arrived2) == fleet {
		t.Fatalf("all %d epoch-2 digests survived 30%% drop — seed no longer exercises loss", fleet)
	}

	// The content epoch closes under operator override (its quorum hold is
	// beside the point here) and must be flagged degraded with an honest
	// row count: duplicates collapsed, missing routers missing.
	rep, err := c.Analyze(2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded {
		t.Fatalf("epoch 2 closed with %d/%d routers but no Degraded flag", len(arrived2), fleet)
	}
	if rep.Aligned == nil || rep.Aligned.Routers != len(arrived2) {
		t.Fatalf("analysis rows %+v, want %d (one per delivered router, duplicates collapsed)",
			rep.Aligned, len(arrived2))
	}
	for _, id := range rep.MissingRouters {
		if arrived2[id] {
			t.Fatalf("router %d reported missing but its digest arrived", id)
		}
	}

	// Never wrong: the pattern is still found, and only genuine carriers
	// whose digests arrived are implicated.
	if !rep.Aligned.Detection.Found {
		t.Fatalf("common content lost: %d/%d carriers' digests arrived yet nothing found",
			countCarriers(arrived2, isCarrier), len(carriers))
	}
	for _, id := range rep.Aligned.RouterIDs {
		if !isCarrier[id] {
			t.Fatalf("non-carrier router %d implicated: %v", id, rep.Aligned.RouterIDs)
		}
		if !arrived2[id] {
			t.Fatalf("router %d implicated without a delivered digest: %v", id, rep.Aligned.RouterIDs)
		}
	}

	// The transport's own books saw the chaos: sequence gaps were counted
	// and the corrupted frames were rejected, not delivered.
	s := srv.Stats().Snapshot()
	if s.DatagramsLost == 0 {
		t.Fatal("30% datagram drop left DatagramsLost at zero")
	}
	if s.DatagramsLate == 0 {
		t.Fatal("duplication+reordering left DatagramsLate at zero")
	}
}

func countCarriers(arrived map[int]bool, isCarrier map[int]bool) int {
	n := 0
	for r := range arrived {
		if isCarrier[r] {
			n++
		}
	}
	return n
}
