package center

import (
	"fmt"
	"sort"
	"time"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/graph"
	"dcstream/internal/unaligned"
)

// AnalysisMode picks how a window's analysis inputs are produced.
type AnalysisMode int

const (
	// AnalysisIncremental (the zero value) maintains the analysis state as
	// digests arrive — the aligned column matrix and popcounts in an
	// accumulator, the unaligned pairwise correlation evidence in a tracker —
	// so Analyze is a cheap finalize over already-built state.
	AnalysisIncremental AnalysisMode = iota
	// AnalysisBatch rebuilds everything from the buffered digests at analyze
	// time: the reference implementation the incremental path must match
	// bit for bit. The incremental path itself falls back to it per window
	// when its state cannot reproduce the batch result (mixed widths,
	// malformed digests, a replacement that shrank a digest's group count).
	AnalysisBatch
)

// rowID names one aligned matrix row of a span analysis: the epoch and
// router whose bitmap fills it. Reference row order is epoch ascending,
// router ascending within the epoch — for a single-epoch span exactly the
// sorted-router order the batch path has always used.
type rowID struct{ epoch, router int }

// spanSnapshot is everything one analysis span needs, captured under c.mu at
// the moment the span closes, so the (possibly expensive) finalize runs
// without the lock and never races later ingest. Exactly one of
// alignedMatrix/alignedVecs is set when aligned digests are present, and at
// most one of unalignedEv/unalignedDigests: the incremental input when the
// maintained state is usable, the batch input otherwise.
type spanSnapshot struct {
	epoch    int   // closing epoch (the report's Epoch)
	start    int   // first epoch of the span: epoch-WindowSlide+1
	epochs   []int // span epochs that held data, ascending
	retired  []int // epochs whose windows were released with this span
	meta     windowMeta
	routers  int // distinct reporters across the span
	rejected int
	opened   time.Time // earliest first-digest arrival among span windows

	alignedIDs     []rowID // reference row order
	alignedMatrix  *aligned.Matrix
	alignedWeights []int
	alignedRank    []int // slot-concatenation index -> reference row
	alignedVecs    []*bitvec.Vector

	unalignedCount   int
	unalignedEv      *unaligned.SpanEvidence
	unalignedDigests []*unaligned.Digest
}

// closeSpanLocked closes the span ending at epoch: snapshots the analysis
// inputs, retires every window that can no longer appear in a future span,
// and raises the floor so late digests cannot reopen them. In single-epoch
// mode (WindowSlide <= 1) exactly this window closes — an older buffered
// epoch keeps its own Analyze, as it always has. Caller holds c.mu.
func (c *Center) closeSpanLocked(epoch int) (*spanSnapshot, error) {
	w, ok := c.windows[epoch]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoWindow, epoch)
	}
	slide := c.cfg.WindowSlide
	if slide > 1 && c.spanClosedValid && epoch <= c.spanClosed {
		// A newer span already closed; spans end in order, so this one is
		// foreclosed even though its closing window still buffers digests
		// for the spans ahead of it.
		return nil, fmt.Errorf("%w: %d", ErrNoWindow, epoch)
	}
	s := &spanSnapshot{epoch: epoch, start: epoch - slide + 1, meta: c.metaLocked(epoch, w)}
	reporters := map[int]bool{}
	for e := s.start; e <= epoch; e++ {
		sw, ok := c.windows[e]
		if !ok {
			continue
		}
		s.epochs = append(s.epochs, e)
		s.rejected += sw.rejected
		if s.opened.IsZero() || sw.opened.Before(s.opened) {
			s.opened = sw.opened
		}
		for id := range sw.reporters() {
			reporters[id] = true
		}
	}
	s.routers = len(reporters)
	c.snapshotAlignedLocked(s)
	c.snapshotUnalignedLocked(s)

	if slide <= 1 {
		c.releaseLocked(epoch, w)
		c.raiseFloor(epoch)
		s.retired = []int{epoch}
		return s, nil
	}
	for e := range c.windows {
		if e <= s.start {
			s.retired = append(s.retired, e)
		}
	}
	sort.Ints(s.retired)
	for _, e := range s.retired {
		c.releaseLocked(e, c.windows[e])
	}
	c.raiseFloor(s.start)
	c.spanClosed, c.spanClosedValid = epoch, true
	return s, nil
}

// snapshotAlignedLocked captures the span's aligned input. The incremental
// matrix is usable when every span accumulator is clean and they agree on
// width; otherwise the batch transposition runs on the buffered bitmaps,
// which also reproduces the batch path's mixed-width error. Caller holds
// c.mu.
func (c *Center) snapshotAlignedLocked(s *spanSnapshot) {
	type accEpoch struct {
		epoch int
		acc   *aligned.Accumulator
	}
	total, width := 0, 0
	usable := c.cfg.Analysis == AnalysisIncremental
	var accs []accEpoch
	for _, e := range s.epochs {
		sw := c.windows[e]
		total += len(sw.aligned)
		if !usable || len(sw.aligned) == 0 {
			continue
		}
		if sw.acc == nil || sw.acc.Mixed() {
			usable = false
			continue
		}
		if width == 0 {
			width = sw.acc.Width()
		}
		if sw.acc.Width() != width {
			usable = false
			continue
		}
		accs = append(accs, accEpoch{e, sw.acc})
	}
	if total < 2 {
		return
	}
	if !usable {
		// Batch input: slice-header copies only; stored bitmaps are
		// immutable (a replacement swaps the pointer).
		for _, e := range s.epochs {
			sw := c.windows[e]
			ids := make([]int, 0, len(sw.aligned))
			for id := range sw.aligned {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			for _, id := range ids {
				s.alignedIDs = append(s.alignedIDs, rowID{epoch: e, router: id})
				s.alignedVecs = append(s.alignedVecs, sw.aligned[id])
			}
		}
		return
	}
	// The accumulators hold rows in arrival ("slot") order; build the
	// reference ids and the slot→reference rank so the detection's Rows can
	// be translated afterwards (everything else in a Detection is invariant
	// under row permutation).
	refBase := 0
	for _, ae := range accs {
		slotRouters := ae.acc.SlotRouters()
		sorted := append([]int(nil), slotRouters...)
		sort.Ints(sorted)
		pos := make(map[int]int, len(sorted))
		for i, r := range sorted {
			pos[r] = i
			s.alignedIDs = append(s.alignedIDs, rowID{epoch: ae.epoch, router: r})
		}
		for _, r := range slotRouters {
			s.alignedRank = append(s.alignedRank, refBase+pos[r])
		}
		refBase += len(sorted)
	}
	if len(accs) == 1 && c.cfg.WindowSlide <= 1 {
		// The lone window is retired with this span, so the detector can run
		// on the accumulator's storage directly — zero copies on the hot
		// single-epoch path.
		s.alignedMatrix, s.alignedWeights = accs[0].acc.Matrix()
		return
	}
	cols := bitvec.NewArena(width, total)
	weights := make([]int, width)
	at := 0
	for _, ae := range accs {
		ae.acc.BlitInto(cols, at)
		ae.acc.AddWeightsInto(weights)
		at += ae.acc.Rows()
	}
	s.alignedMatrix = aligned.ColumnMatrix(total, cols)
	s.alignedWeights = weights
}

// snapshotUnalignedLocked captures the span's unaligned input: the tracker's
// evidence when it can reproduce the batch result, the buffered digests
// otherwise. Member order is epoch ascending, arrival order within the epoch
// — the order the batch path has always merged in. Caller holds c.mu.
func (c *Center) snapshotUnalignedLocked(s *spanSnapshot) {
	for _, e := range s.epochs {
		s.unalignedCount += len(c.windows[e].unaligned)
	}
	if s.unalignedCount < 2 {
		return
	}
	if c.tracker != nil {
		order := make([]unaligned.MemberRef, 0, s.unalignedCount)
		for _, e := range s.epochs {
			for _, d := range c.windows[e].unaligned {
				order = append(order, unaligned.MemberRef{Epoch: e, Router: d.RouterID})
			}
		}
		if ev := c.tracker.Snapshot(order); ev.Usable() {
			s.unalignedEv = ev
			return
		}
	}
	s.unalignedDigests = make([]*unaligned.Digest, 0, s.unalignedCount)
	for _, e := range s.epochs {
		s.unalignedDigests = append(s.unalignedDigests, c.windows[e].unaligned...)
	}
}

// analyzeSpan finalizes one detached span snapshot into its WindowReport.
// Runs without c.mu.
func (c *Center) analyzeSpan(s *spanSnapshot) (WindowReport, error) {
	start := time.Now()
	rep := WindowReport{
		Epoch:           s.epoch,
		Routers:         s.routers,
		Degraded:        s.meta.degraded || s.rejected > 0,
		MissingRouters:  s.meta.missing,
		RejectedDigests: s.rejected,
		SpanStart:       s.start,
		SpanEpochs:      s.epochs,
		RetiredEpochs:   s.retired,
	}
	if len(s.alignedIDs) >= 2 {
		var out *AlignedOutcome
		var err error
		if s.alignedMatrix != nil {
			out, err = c.analyzeAlignedMatrix(s.alignedIDs, s.alignedMatrix, s.alignedWeights, s.alignedRank)
		} else {
			out, err = c.analyzeAlignedRows(s.alignedIDs, s.alignedVecs)
		}
		if err != nil {
			return rep, err
		}
		rep.Aligned = out
	}
	if s.unalignedCount >= 2 {
		var out *UnalignedOutcome
		var err error
		if s.unalignedEv != nil {
			out, err = c.analyzeUnalignedEv(s.unalignedEv, s.unalignedCount, s.meta)
		} else {
			out, err = c.analyzeUnaligned(s.unalignedDigests, s.meta)
		}
		if err != nil {
			return rep, err
		}
		rep.Unaligned = out
	}
	c.cfg.Stats.EpochsAnalyzed.Add(1)
	if s.meta.degraded {
		c.cfg.Stats.DegradedEpochs.Add(1)
	}
	c.cfg.Stats.IngestToAnalyzeSeconds.Observe(time.Since(s.opened).Seconds())
	c.cfg.Stats.FinalizeSeconds.Observe(time.Since(start).Seconds())
	return rep, nil
}

// alignedConfig is the detector configuration for a matrix of the given
// width (the subset size cannot exceed the column count).
func (c *Center) alignedConfig(width int) aligned.DetectorConfig {
	subset := c.cfg.SubsetSize
	if subset > width {
		subset = width
	}
	acfg := aligned.RefinedConfig(subset)
	acfg.Workers = c.cfg.Parallelism
	return acfg
}

// alignedOutcome translates a detection's rows to router ids through the
// reference row order.
func alignedOutcome(ids []rowID, det aligned.Detection) *AlignedOutcome {
	out := &AlignedOutcome{Routers: len(ids), Detection: det}
	seen := map[int]bool{}
	for _, row := range det.Rows {
		if r := ids[row].router; !seen[r] {
			seen[r] = true
			out.RouterIDs = append(out.RouterIDs, r)
		}
	}
	sort.Ints(out.RouterIDs)
	return out
}

// analyzeAlignedRows is the batch aligned path: transpose the bitmaps (given
// in reference row order) and run the detector. No m′ rescaling is needed:
// aligned.Detect computes the non-natural-occurrence significance bound from
// the matrix it is given, so a degraded window's m′ rows already condition
// the verdict.
func (c *Center) analyzeAlignedRows(ids []rowID, vecs []*bitvec.Vector) (*AlignedOutcome, error) {
	width := vecs[0].Len()
	for _, v := range vecs {
		if v.Len() != width {
			return nil, fmt.Errorf("center: mixed aligned digest widths %d and %d", width, v.Len())
		}
	}
	det, err := aligned.Detect(aligned.FromDigests(vecs), c.alignedConfig(width))
	if err != nil {
		return nil, err
	}
	return alignedOutcome(ids, det), nil
}

// analyzeAlignedMatrix is the incremental aligned path: the matrix and
// column weights were maintained at ingest time, so finalize is the level
// scan alone. The detection's rows come back in slot space and are remapped
// to the reference order — after which the outcome is bit-identical to the
// batch path's.
func (c *Center) analyzeAlignedMatrix(ids []rowID, m *aligned.Matrix, weights, rank []int) (*AlignedOutcome, error) {
	det, err := aligned.DetectWithWeights(m, weights, c.alignedConfig(m.Cols()))
	if err != nil {
		return nil, err
	}
	aligned.RemapRows(&det, rank)
	return alignedOutcome(ids, det), nil
}

// analyzeUnalignedEv is the incremental unaligned path: replay the tracked
// pairwise evidence against the final λ tables instead of re-running the
// O(vertices²·k²) correlation passes. The λ-prune at ingest time kept a
// superset of every edge these tables admit (λ is monotone in p*, and the
// span's final vertex count can only have grown past the bound the prune
// used), so the replayed graphs — and everything computed from them — are
// bit-identical to the batch path's.
func (c *Center) analyzeUnalignedEv(ev *unaligned.SpanEvidence, digests int, meta windowMeta) (*UnalignedOutcome, error) {
	n := ev.NumVertices()
	rowPairs := ev.Arrays() * ev.Arrays()

	p1 := c.cfg.TargetP1
	if p1 == 0 {
		p1 = 0.5 / float64(n)
	}
	lt, err := c.lambdaTable(ev.Bits(), unaligned.PStarForEdgeProbability(p1, rowPairs))
	if err != nil {
		return nil, err
	}
	g := graph.New(n)
	for _, e := range ev.Edges(lt) {
		g.AddEdge(int(e[0]), int(e[1]))
	}
	threshold := c.cfg.ComponentThreshold
	if c.cfg.MinRouters > 0 && meta.fleet > 0 && digests < meta.fleet {
		threshold = scaledThreshold(threshold, digests, meta.fleet)
	}
	out := &UnalignedOutcome{
		Vertices: n,
		ER:       unaligned.ERTest(g, threshold),
	}
	if !out.ER.PatternDetected {
		return out, nil
	}

	coreP1 := c.cfg.CoreP1
	if coreP1 == 0 {
		coreP1 = 8 / float64(n)
	}
	coreTable, err := c.lambdaTable(ev.Bits(), unaligned.PStarForEdgeProbability(coreP1, rowPairs))
	if err != nil {
		return nil, err
	}
	cg := graph.New(n)
	for _, e := range ev.Edges(coreTable) {
		cg.AddEdge(int(e[0]), int(e[1]))
	}
	found, err := unaligned.FindPattern(cg, unaligned.PatternConfig{Beta: c.cfg.Beta, D: c.cfg.D})
	if err != nil {
		return nil, err
	}
	routerSeen := map[int]bool{}
	for _, v := range found {
		vert := ev.Vertex(v)
		out.PatternVertices = append(out.PatternVertices, vert)
		if !routerSeen[vert.RouterID] {
			routerSeen[vert.RouterID] = true
			out.Routers = append(out.Routers, vert.RouterID)
		}
	}
	return out, nil
}

// releaseLocked drops one epoch's buffered state and returns every
// accounted byte to the ledger: the retained digests, the window's aligned
// accumulator, and the tracker members and pair evidence touching the epoch.
// Caller holds c.mu.
func (c *Center) releaseLocked(epoch int, w *window) {
	delete(c.windows, epoch)
	c.bufferedBytes -= w.bytes
	if w.acc != nil {
		c.bufferedBytes -= w.acc.Bytes()
	}
	if c.tracker != nil {
		c.bufferedBytes += c.tracker.DropEpoch(epoch)
	}
}

// enforceBudgetLocked re-checks the memory budget after tracker growth.
// Unaligned admission cannot pre-estimate the correlation evidence a digest
// will produce (it depends on content), so under ShedOldest the budget is
// enforced after the fact: shed old epochs until the ledger fits, never the
// epoch just written. Under RejectNew a transient evidence overage stands —
// the very next admission sees the ledger over budget and refuses, so the
// overshoot is bounded by one digest's evidence. Caller holds c.mu.
func (c *Center) enforceBudgetLocked(epoch int) {
	if c.cfg.MemoryBudgetBytes <= 0 || c.cfg.Shedding != ShedOldest {
		return
	}
	for c.bufferedBytes > c.cfg.MemoryBudgetBytes {
		victim := c.victimLocked(epoch)
		if victim < 0 {
			return
		}
		c.shedLocked(victim)
	}
}
