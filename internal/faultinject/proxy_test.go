package faultinject

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer records everything it reads per connection.
type echoServer struct {
	ln net.Listener
	mu sync.Mutex
	b  bytes.Buffer
}

func startEcho(t *testing.T) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					n, err := c.Read(buf)
					if n > 0 {
						s.mu.Lock()
						s.b.Write(buf[:n])
						s.mu.Unlock()
					}
					if err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	return s
}

func (s *echoServer) received() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.b.Bytes()...)
}

// TestCleanPassThrough: with every fault probability zero the proxy is a
// faithful pipe.
func TestCleanPassThrough(t *testing.T) {
	srv := startEcho(t)
	defer srv.ln.Close()
	p, err := New(srv.ln.Addr().String(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("digest-bytes-"), 500) // several chunks
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := srv.received(); bytes.Equal(got, msg) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d bytes, want %d identical bytes", len(srv.received()), len(msg))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPartitionBlackholesAndHeals: Partition cuts live connections and
// swallows new ones without forwarding; Heal restores forwarding for fresh
// dials.
func TestPartitionBlackholesAndHeals(t *testing.T) {
	srv := startEcho(t)
	defer srv.ln.Close()
	p, err := New(srv.ln.Addr().String(), Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	p.Partition()
	// The pre-partition connection dies: a read must return an error once
	// the proxy cuts it.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("pre-partition connection still alive after Partition")
	}
	conn.Close()

	// A new connection during the partition is accepted but black-holed.
	dark, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("partitioned proxy refused dial (want accept+blackhole): %v", err)
	}
	if _, err := dark.Write([]byte("lost forever")); err != nil {
		t.Fatalf("write into blackhole failed: %v", err)
	}
	time.Sleep(100 * time.Millisecond)
	if got := srv.received(); len(got) != 0 {
		t.Fatalf("blackholed bytes reached the server: %q", got)
	}

	p.Heal()
	// Heal cut the blackholed connection too.
	dark.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := dark.Read(make([]byte, 1)); err == nil || err == io.EOF {
		// EOF also proves the proxy closed it; both are acceptable.
		_ = err
	}
	dark.Close()

	fresh, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Write([]byte("back on the air")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if bytes.Contains(srv.received(), []byte("back on the air")) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("post-heal bytes never reached the server")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
