package faultinject

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"dcstream/internal/stats"
)

// UDPProxy is the datagram counterpart of Proxy: it listens on its own
// loopback port, relays every datagram to the target, and applies the same
// Config fault mix per datagram instead of per stream chunk. Datagram
// boundaries are preserved — UDP loss, duplication, and reordering happen to
// whole packets in the real world, and the transport's per-datagram sequence
// accounting is exactly what the tests want to exercise. Truncate shortens a
// datagram to half its bytes (a mid-packet corruption the prefilter or frame
// CRC must catch) rather than cutting a connection, and BitFlip flips one
// bit of the relayed copy.
//
// The fault schedule is deterministic per (Seed, datagram index), so a
// failing chaos test replays the identical loss pattern.
type UDPProxy struct {
	cfg    Config
	conn   *net.UDPConn
	target *net.UDPAddr

	mu          sync.Mutex
	rng         *rand.Rand // guarded by mu
	partitioned bool       // guarded by mu
	received    int64      // guarded by mu
	dropped     int64      // guarded by mu
	forwarded   int64      // guarded by mu
	closed      bool       // guarded by mu

	wg sync.WaitGroup
}

// NewUDP starts a datagram proxy on a fresh loopback port relaying to
// target.
func NewUDP(target string, cfg Config) (*UDPProxy, error) {
	ta, err := net.ResolveUDPAddr("udp", target)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	p := &UDPProxy{
		cfg:    cfg.withDefaults(),
		conn:   conn,
		target: ta,
		rng:    stats.NewRand(cfg.Seed),
	}
	p.wg.Add(1)
	go p.relay()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *UDPProxy) Addr() string { return p.conn.LocalAddr().String() }

// Received reports how many datagrams clients handed the proxy. Once all
// sends are done and Received has caught up, Forwarded and Dropped are
// final: the relay handles each datagram synchronously.
func (p *UDPProxy) Received() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.received
}

// Dropped reports how many datagrams the proxy discarded (Drop faults plus
// everything swallowed during a partition).
func (p *UDPProxy) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Forwarded reports how many datagrams reached the target, duplicates
// included.
func (p *UDPProxy) Forwarded() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.forwarded
}

// Partition blackholes the link: every datagram is swallowed (and counted
// dropped) until Heal. The sender sees nothing — exactly like UDP across a
// dead route.
func (p *UDPProxy) Partition() { p.setPartition(true) }

// Heal ends a partition.
func (p *UDPProxy) Heal() { p.setPartition(false) }

func (p *UDPProxy) setPartition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	p.mu.Unlock()
}

// Close stops the proxy.
func (p *UDPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.conn.Close()
	p.wg.Wait()
	return err
}

func (p *UDPProxy) relay() {
	defer p.wg.Done()
	buf := make([]byte, 65536)
	var held []byte // datagram deferred by Reorder
	emit := func(dg []byte) {
		// A failed relay write is indistinguishable from the packet loss
		// this proxy exists to inject.
		_, _ = p.conn.WriteToUDP(dg, p.target)
		p.mu.Lock()
		p.forwarded++
		p.mu.Unlock()
	}
	flushHeld := func() {
		if held != nil {
			emit(held)
			held = nil
		}
	}
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		dg := append([]byte(nil), buf[:n]...)
		p.mu.Lock()
		p.received++
		rng := p.rng
		dark := p.partitioned
		p.mu.Unlock()
		if dark {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			continue
		}
		if p.cfg.Delay > 0 && rng.Float64() < p.cfg.Delay {
			time.Sleep(time.Duration(rng.Intn(int(p.cfg.MaxDelay))))
		}
		switch {
		case p.cfg.Drop > 0 && rng.Float64() < p.cfg.Drop:
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
		case p.cfg.Truncate > 0 && rng.Float64() < p.cfg.Truncate:
			flushHeld()
			emit(dg[:n/2])
		default:
			if p.cfg.BitFlip > 0 && rng.Float64() < p.cfg.BitFlip {
				i := rng.Intn(len(dg))
				dg[i] ^= 1 << uint(rng.Intn(8))
			}
			if p.cfg.Reorder > 0 && held == nil && rng.Float64() < p.cfg.Reorder {
				held = dg
				continue
			}
			emit(dg)
			flushHeld()
			if p.cfg.Duplicate > 0 && rng.Float64() < p.cfg.Duplicate {
				emit(dg)
			}
		}
	}
}
