package fsfault

import (
	"errors"
	"os"
	"sync"

	"dcstream/internal/journal"
)

// FSFault identifies one class of filesystem operation an FS can be told to
// fail. Faults are scheduled by operation class rather than by path: the
// journal's degraded-mode contract is about *what kind* of syscall failed
// (append vs fsync vs rename), and a test that wants a specific file can
// arm the fault right before the call that touches it.
type FSFault int

const (
	// FaultWrite fails File.Write on open segment/sidecar handles (ENOSPC).
	FaultWrite FSFault = iota
	// FaultSync fails File.Sync (EIO at the worst possible moment: the data
	// may or may not have reached the platter).
	FaultSync
	// FaultOpen fails FS.OpenAppend (segment rotation, re-arm probes).
	FaultOpen
	// FaultRename fails FS.Rename (segment quarantine moves).
	FaultRename
	// FaultTruncate fails FS.Truncate (torn-tail repair).
	FaultTruncate
	// FaultSyncDir fails FS.SyncDir (directory-entry durability).
	FaultSyncDir
	numFSFaults
)

// FS wraps a journal.FS with injectable failures, so degraded-mode state
// machines are testable without filling a real disk. The zero value is not
// usable; use NewFS. All methods are safe for concurrent use.
//
// Two knobs per fault class, composable:
//
//   - FailNext(fault, n, err): the next n operations of that class return
//     err (then the counter is spent and operations succeed again) — the
//     "disk filled up, then the operator freed space" script.
//   - ShortWriteNext(n): the next n File.Writes write only half their bytes
//     to the underlying file before returning an error — the torn-frame
//     case the journal's offset reconciliation exists for.
//
// Operations performed before the corresponding arm call are untouched, so
// a test can let Open succeed normally and then script faults against the
// running journal.
type FS struct {
	inner journal.FS

	mu    sync.Mutex
	fail  [numFSFaults]int   // guarded by mu; remaining failures per class
	errs  [numFSFaults]error // guarded by mu; error to return per class
	short int                // guarded by mu; remaining short writes
	ops   [numFSFaults]int   // guarded by mu; operations seen per class
}

// NewFS wraps inner (nil means the real filesystem) with no faults armed.
func NewFS(inner journal.FS) *FS {
	if inner == nil {
		inner = journal.OSFS{}
	}
	return &FS{inner: inner}
}

// FailNext arms the next n operations of the given class to return err.
// n <= 0 disarms the class.
func (f *FS) FailNext(fault FSFault, n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n <= 0 {
		f.fail[fault], f.errs[fault] = 0, nil
		return
	}
	f.fail[fault], f.errs[fault] = n, err
}

// ShortWriteNext arms the next n File.Writes to write only half their bytes
// before failing — a torn frame on disk plus an error in hand, the exact
// shape of a mid-write ENOSPC.
func (f *FS) ShortWriteNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.short = n
}

// Ops reports how many operations of the class have been attempted (armed
// faults included), for tests asserting the journal actually retried.
func (f *FS) Ops(fault FSFault) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops[fault]
}

// take consumes one armed failure of the class, returning the scripted
// error or nil.
func (f *FS) take(fault FSFault) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops[fault]++
	if f.fail[fault] > 0 {
		f.fail[fault]--
		return f.errs[fault]
	}
	return nil
}

// takeShort consumes one armed short write, reporting whether this write
// should tear.
func (f *FS) takeShort() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.short > 0 {
		f.short--
		return true
	}
	return false
}

func (f *FS) MkdirAll(dir string) error                 { return f.inner.MkdirAll(dir) }
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) { return f.inner.ReadDir(dir) }
func (f *FS) ReadFile(name string) ([]byte, error)      { return f.inner.ReadFile(name) }

func (f *FS) OpenAppend(name string) (journal.File, error) {
	if err := f.take(FaultOpen); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

func (f *FS) Rename(oldname, newname string) error {
	if err := f.take(FaultRename); err != nil {
		return &os.LinkError{Op: "rename", Old: oldname, New: newname, Err: err}
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FS) Truncate(name string, size int64) error {
	if err := f.take(FaultTruncate); err != nil {
		return &os.PathError{Op: "truncate", Path: name, Err: err}
	}
	return f.inner.Truncate(name, size)
}

func (f *FS) SyncDir(dir string) error {
	if err := f.take(FaultSyncDir); err != nil {
		return &os.PathError{Op: "fsync", Path: dir, Err: err}
	}
	return f.inner.SyncDir(dir)
}

// faultFile routes a File's write/sync calls back through the owning FS's
// fault schedule.
type faultFile struct {
	fs    *FS
	name  string
	inner journal.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.takeShort() {
		// Half the bytes land before the "disk" fails: the torn-frame shape
		// offset reconciliation must repair.
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &os.PathError{Op: "write", Path: f.name, Err: errShortWrite}
	}
	if err := f.fs.take(FaultWrite); err != nil {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: err}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.fs.take(FaultSync); err != nil {
		return &os.PathError{Op: "sync", Path: f.name, Err: err}
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

// errShortWrite is distinct from io.ErrShortWrite so tests can tell an
// injected tear from a genuine one.
var errShortWrite = errors.New("faultinject: injected short write")
