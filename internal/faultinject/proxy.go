// Package faultinject provides a TCP chaos proxy for exercising the digest
// transport under the failures a real collector→center path suffers: lost
// and duplicated segments, delay, reordering, truncated writes, flipped
// bits, and hard partitions. Tests put a Proxy between a ReconnectingClient
// and a transport.Server and assert the end-to-end guarantees — CRC framing
// rejects every corrupted digest, reconnection re-delivers across resets,
// the journal survives a crash, and the quorum gate keeps a partitioned
// router's epoch from closing with a confident verdict.
//
// Every probabilistic decision comes from a deterministic RNG derived from
// Config.Seed and the connection's accept sequence number, so a failing
// chaos test replays the same fault schedule per (seed, connection, chunk
// index). The chunk boundaries themselves depend on kernel read timing, so
// runs are reproducible in distribution rather than byte-for-byte — tests
// must assert invariants, not exact byte traces.
package faultinject

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"dcstream/internal/stats"
)

// Config tunes the fault mix. All probabilities are per forwarded chunk
// (client→server direction only; the return direction is a plain copy) and
// independent, so one chunk can be both delayed and bit-flipped. The zero
// value forwards everything untouched.
type Config struct {
	// Seed feeds the per-connection RNGs; two proxies with the same seed
	// apply the same fault schedule to their n-th connections.
	Seed uint64
	// Drop discards the chunk entirely.
	Drop float64
	// Duplicate writes the chunk twice back to back.
	Duplicate float64
	// Reorder holds the chunk back and emits it after the following one.
	Reorder float64
	// Truncate forwards only the first half of the chunk, then drops the
	// connection mid-frame (a torn write).
	Truncate float64
	// BitFlip inverts one random bit of the chunk before forwarding.
	BitFlip float64
	// Delay sleeps up to MaxDelay before forwarding the chunk.
	Delay float64
	// MaxDelay bounds a Delay sleep. Zero means 2ms.
	MaxDelay time.Duration
	// ChunkSize is the forwarding read size. Zero means 1024 — small
	// enough that a multi-KB digest frame spans several chunks, so faults
	// land mid-frame as well as on frame boundaries.
	ChunkSize int
}

func (c Config) withDefaults() Config {
	if c.MaxDelay == 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 1024
	}
	return c
}

// Proxy is a chaos TCP proxy: it accepts on its own address and forwards
// each connection to the target, mangling the client→server stream per
// Config. Partition switches it to a blackhole that accepts connections and
// silently discards everything — the far side sees an open, dead link, not
// a refused dial.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener

	mu          sync.Mutex
	partitioned bool                  // guarded by mu
	conns       map[net.Conn]struct{} // guarded by mu
	seq         uint64                // guarded by mu
	closed      bool                  // guarded by mu

	wg sync.WaitGroup
}

// New starts a proxy on a fresh loopback port forwarding to target.
func New(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		cfg:    cfg.withDefaults(),
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partition hard-partitions the link: every open connection is cut and new
// connections are accepted but blackholed (bytes read and discarded, nothing
// forwarded), like a routing failure beyond the first hop. Heal undoes it.
func (p *Proxy) Partition() { p.setPartition(true) }

// Heal ends a partition. Existing blackholed connections are cut so a
// reconnecting client re-dials onto a forwarding connection immediately.
func (p *Proxy) Heal() { p.setPartition(false) }

func (p *Proxy) setPartition(on bool) {
	p.mu.Lock()
	p.partitioned = on
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

// Close stops the proxy and cuts every connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		dark := p.partitioned
		seq := p.seq
		p.seq++
		p.mu.Unlock()
		p.wg.Add(1)
		go p.serve(conn, seq, dark)
	}
}

// forget closes conn and removes it from the registry.
func (p *Proxy) forget(conn net.Conn) {
	conn.Close()
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn, seq uint64, dark bool) {
	defer p.wg.Done()
	defer p.forget(client)
	if dark {
		// Blackhole: keep the connection open, consume and discard. The
		// client's writes "succeed" into a void until the monitor or a
		// Heal-triggered close tells it otherwise.
		io.Copy(io.Discard, client)
		return
	}
	server, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		return
	}
	p.mu.Lock()
	alive := !p.closed && !p.partitioned
	if alive {
		p.conns[server] = struct{}{}
	}
	p.mu.Unlock()
	if !alive {
		server.Close()
		return
	}
	defer p.forget(server)

	done := make(chan struct{})
	go func() {
		// Return direction: the center never talks, but FIN/RST must
		// propagate so the client's connection monitor fires.
		io.Copy(client, server)
		client.Close()
		close(done)
	}()
	p.mangle(client, server, stats.NewRand(p.cfg.Seed^(seq*0x9e3779b97f4a7c15+1)))
	server.Close()
	<-done
}

// mangle forwards src→dst chunk by chunk, applying the configured fault mix.
func (p *Proxy) mangle(src io.Reader, dst net.Conn, rng *rand.Rand) {
	buf := make([]byte, p.cfg.ChunkSize)
	var held []byte // chunk deferred by Reorder
	flushHeld := func() bool {
		if held == nil {
			return true
		}
		_, err := dst.Write(held)
		held = nil
		return err == nil
	}
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := append([]byte(nil), buf[:n]...)
			if p.cfg.Delay > 0 && rng.Float64() < p.cfg.Delay {
				time.Sleep(time.Duration(rng.Intn(int(p.cfg.MaxDelay))))
			}
			switch {
			case p.cfg.Drop > 0 && rng.Float64() < p.cfg.Drop:
				// Lost on the wire.
			case p.cfg.Truncate > 0 && rng.Float64() < p.cfg.Truncate:
				// Torn write: half the chunk, then cut the connection so
				// the tear is observable instead of silently healed by
				// the next chunk.
				flushHeld()
				dst.Write(chunk[:n/2])
				return
			default:
				if p.cfg.BitFlip > 0 && rng.Float64() < p.cfg.BitFlip {
					i := rng.Intn(len(chunk))
					chunk[i] ^= 1 << uint(rng.Intn(8))
				}
				if p.cfg.Reorder > 0 && held == nil && rng.Float64() < p.cfg.Reorder {
					held = chunk
					break
				}
				if _, werr := dst.Write(chunk); werr != nil {
					return
				}
				if !flushHeld() {
					return
				}
				if p.cfg.Duplicate > 0 && rng.Float64() < p.cfg.Duplicate {
					if _, werr := dst.Write(chunk); werr != nil {
						return
					}
				}
			}
		}
		if err != nil {
			flushHeld()
			return
		}
	}
}
