// Package simulate wires the synthetic traffic generator to fleets of
// collection modules, playing the role of the network in Figure 2: many
// routers each observe background traffic, some of them additionally carry
// an instance of a common content, and every router emits its per-epoch
// digest. The experiment harness, the examples, and the end-to-end tests
// all drive the system through these scenario runners.
package simulate

import (
	"fmt"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/hashing"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// AlignedScenario describes one aligned-case epoch across a router fleet.
type AlignedScenario struct {
	// Seed drives all randomness (traffic, prefixes, flow choice).
	Seed uint64
	// Routers is the fleet size (matrix rows).
	Routers int
	// Collector configures every router's bitmap module (HashSeed shared).
	Collector aligned.CollectorConfig
	// BackgroundPackets is the per-router background packet count.
	BackgroundPackets int
	// SegmentSize is the payload size of background and content packets.
	SegmentSize int
	// ContentPackets, when positive, plants a common content of that many
	// segments at the Carriers.
	ContentPackets int
	// Carriers lists the routers that see one aligned instance each.
	Carriers []int
}

// Validate reports whether the scenario is runnable.
func (sc AlignedScenario) Validate() error {
	if sc.Routers <= 0 {
		return fmt.Errorf("simulate: need at least one router")
	}
	if err := sc.Collector.Validate(); err != nil {
		return err
	}
	if sc.BackgroundPackets < 0 || sc.ContentPackets < 0 {
		return fmt.Errorf("simulate: negative packet count")
	}
	if sc.SegmentSize <= 0 {
		return fmt.Errorf("simulate: segment size must be positive")
	}
	for _, c := range sc.Carriers {
		if c < 0 || c >= sc.Routers {
			return fmt.Errorf("simulate: carrier %d outside router range [0,%d)", c, sc.Routers)
		}
	}
	return nil
}

// AlignedResult is the outcome of an aligned scenario run.
type AlignedResult struct {
	// Digests holds one bitmap per router, index = router id.
	Digests []*bitvec.Vector
	// Matrix is the stacked analysis matrix.
	Matrix *aligned.Matrix
	// ContentColumns are the bitmap indices of the planted content's
	// packets (ground truth for evaluating detection), nil without content.
	ContentColumns []int
}

// RunAligned executes the scenario.
func RunAligned(sc AlignedScenario) (*AlignedResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(sc.Seed)
	var content trafficgen.Content
	var instance []packet.Packet
	if sc.ContentPackets > 0 {
		content = trafficgen.NewContent(rng, sc.ContentPackets, sc.SegmentSize)
	}
	carrier := make(map[int]bool, len(sc.Carriers))
	for _, c := range sc.Carriers {
		carrier[c] = true
	}

	res := &AlignedResult{Digests: make([]*bitvec.Vector, sc.Routers)}
	for r := 0; r < sc.Routers; r++ {
		col, err := aligned.NewCollector(sc.Collector)
		if err != nil {
			return nil, err
		}
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: sc.BackgroundPackets, SegmentSize: sc.SegmentSize,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range bg {
			col.Update(p)
		}
		if carrier[r] && sc.ContentPackets > 0 {
			instance = content.PlantAligned(packet.FlowLabel(1<<40|uint64(r)), sc.SegmentSize)
			for _, p := range instance {
				col.Update(p)
			}
		}
		res.Digests[r] = col.Digest()
	}
	res.Matrix = aligned.FromDigests(res.Digests)

	if sc.ContentPackets > 0 && len(sc.Carriers) > 0 {
		// Ground truth: the content packets' hash indices under the shared
		// collector hash.
		h := hashing.New(sc.Collector.HashSeed)
		seen := map[int]bool{}
		for _, p := range content.PlantAligned(0, sc.SegmentSize) {
			data := p.Payload
			if sc.Collector.PrefixLen > 0 && sc.Collector.PrefixLen < len(data) {
				data = data[:sc.Collector.PrefixLen]
			}
			idx := h.Index(data, sc.Collector.Bits)
			if !seen[idx] {
				seen[idx] = true
				res.ContentColumns = append(res.ContentColumns, idx)
			}
		}
	}
	return res, nil
}

// DigestMessages stamps the result's digests with a measurement epoch for
// the transport leg: one wire message per router, ready for Client.Send or
// Center.Ingest.
func (r *AlignedResult) DigestMessages(epoch int) []transport.AlignedDigest {
	out := make([]transport.AlignedDigest, len(r.Digests))
	for router, d := range r.Digests {
		out[router] = transport.AlignedDigest{RouterID: router, Epoch: epoch, Bitmap: d}
	}
	return out
}

// DigestMessagesExcept is DigestMessages minus the given routers — the
// partition workload, where a cut-off router's digest never escapes its side
// of the partition. Router order is preserved; the returned slice is no
// longer indexable by router id.
func (r *AlignedResult) DigestMessagesExcept(epoch int, skip ...int) []transport.AlignedDigest {
	drop := make(map[int]bool, len(skip))
	for _, s := range skip {
		drop[s] = true
	}
	out := make([]transport.AlignedDigest, 0, len(r.Digests))
	for router, d := range r.Digests {
		if drop[router] {
			continue
		}
		out = append(out, transport.AlignedDigest{RouterID: router, Epoch: epoch, Bitmap: d})
	}
	return out
}

// EpochSpec describes one epoch of a multi-epoch aligned run: which routers
// carry a common content this epoch and how long it is (0 = pure background
// epoch).
type EpochSpec struct {
	Epoch          int
	Carriers       []int
	ContentPackets int
}

// RunAlignedEpochs plays the base scenario once per spec, deriving a fresh
// traffic seed per epoch (so background differs epoch to epoch, as it would
// on a real link) while the fleet and collector configuration stay fixed.
// The returned map is keyed by EpochSpec.Epoch. This is the workload for
// exercising epoch-windowed ingest: several epochs' digests from the same
// routers, safe to interleave over one connection.
func RunAlignedEpochs(base AlignedScenario, specs []EpochSpec) (map[int]*AlignedResult, error) {
	out := make(map[int]*AlignedResult, len(specs))
	for _, spec := range specs {
		sc := base
		sc.Seed = base.Seed ^ (uint64(spec.Epoch+1) * 0x9e3779b97f4a7c15)
		sc.Carriers = spec.Carriers
		sc.ContentPackets = spec.ContentPackets
		if _, dup := out[spec.Epoch]; dup {
			return nil, fmt.Errorf("simulate: epoch %d specified twice", spec.Epoch)
		}
		res, err := RunAligned(sc)
		if err != nil {
			return nil, fmt.Errorf("simulate: epoch %d: %w", spec.Epoch, err)
		}
		out[spec.Epoch] = res
	}
	return out, nil
}

// UnalignedScenario describes one unaligned-case epoch across a fleet.
type UnalignedScenario struct {
	Seed    uint64
	Routers int
	// Collector configures every router's module; each router gets its own
	// OffsetSeed derived from Seed and its id, as the paper prescribes.
	Collector unaligned.CollectorConfig
	// BackgroundPackets is the per-router background packet count.
	BackgroundPackets int
	// BackgroundFlows and ZipfS, when set, draw background flows from a
	// Zipf popularity distribution (the bursty §V-B.4 regime). Zero keeps
	// one flow per packet (the even-split Monte-Carlo assumption).
	BackgroundFlows int
	ZipfS           float64
	// ContentPackets, when positive, plants an unaligned common content.
	ContentPackets int
	// Carriers lists routers seeing one unaligned instance each (random
	// prefix length per instance).
	Carriers []int
}

// Validate reports whether the scenario is runnable.
func (sc UnalignedScenario) Validate() error {
	if sc.Routers <= 0 {
		return fmt.Errorf("simulate: need at least one router")
	}
	if err := sc.Collector.Validate(); err != nil {
		return err
	}
	if sc.BackgroundPackets < 0 || sc.ContentPackets < 0 {
		return fmt.Errorf("simulate: negative packet count")
	}
	for _, c := range sc.Carriers {
		if c < 0 || c >= sc.Routers {
			return fmt.Errorf("simulate: carrier %d outside router range [0,%d)", c, sc.Routers)
		}
	}
	return nil
}

// UnalignedResult is the outcome of an unaligned scenario run.
type UnalignedResult struct {
	// Digests holds one digest per router, index = router id.
	Digests []*unaligned.Digest
	// CarrierVertices are the (router, group) vertices that actually carry
	// the planted content — ground truth for detector evaluation.
	CarrierVertices []unaligned.Vertex
	// PrefixLens records the prefix length drawn for each carrier, aligned
	// with CarrierVertices.
	PrefixLens []int
}

// DigestMessages stamps the result's digests with a measurement epoch for
// the transport leg (one wire message per router).
func (r *UnalignedResult) DigestMessages(epoch int) []transport.UnalignedDigest {
	out := make([]transport.UnalignedDigest, len(r.Digests))
	for router, d := range r.Digests {
		out[router] = transport.UnalignedDigest{Epoch: epoch, Digest: d}
	}
	return out
}

// RunUnaligned executes the scenario.
func RunUnaligned(sc UnalignedScenario) (*UnalignedResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRand(sc.Seed)
	var content trafficgen.Content
	if sc.ContentPackets > 0 {
		content = trafficgen.NewContent(rng, sc.ContentPackets, sc.Collector.SegmentSize)
	}
	prefix := make([]byte, sc.Collector.SegmentSize)
	rng.Read(prefix)
	carrier := make(map[int]bool, len(sc.Carriers))
	for _, c := range sc.Carriers {
		carrier[c] = true
	}

	res := &UnalignedResult{Digests: make([]*unaligned.Digest, sc.Routers)}
	for r := 0; r < sc.Routers; r++ {
		cfg := sc.Collector
		cfg.OffsetSeed = sc.Seed ^ (uint64(r+1) * 0x9e3779b97f4a7c15)
		col, err := unaligned.NewCollector(cfg)
		if err != nil {
			return nil, err
		}
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: sc.BackgroundPackets, SegmentSize: cfg.SegmentSize,
			Flows: sc.BackgroundFlows, ZipfS: sc.ZipfS,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range bg {
			col.Update(p)
		}
		if carrier[r] && sc.ContentPackets > 0 {
			flow := packet.FlowLabel(1<<50 | uint64(r))
			l := rng.Intn(cfg.SegmentSize)
			for _, p := range packet.Instance(flow, content.Data, prefix, l, cfg.SegmentSize) {
				col.Update(p)
			}
			res.CarrierVertices = append(res.CarrierVertices, unaligned.Vertex{
				RouterID: r,
				Group:    col.GroupOf(flow),
			})
			res.PrefixLens = append(res.PrefixLens, l)
		}
		res.Digests[r] = col.Digest(r)
	}
	return res, nil
}
