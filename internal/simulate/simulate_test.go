package simulate

import (
	"testing"

	"dcstream/internal/aligned"
	"dcstream/internal/unaligned"
)

func alignedScenario() AlignedScenario {
	return AlignedScenario{
		Seed:    1,
		Routers: 32,
		Collector: aligned.CollectorConfig{
			Bits: 1 << 13, HashSeed: 3,
		},
		BackgroundPackets: 2500,
		SegmentSize:       536,
		ContentPackets:    12,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13},
	}
}

func TestAlignedScenarioValidation(t *testing.T) {
	sc := alignedScenario()
	sc.Routers = 0
	if _, err := RunAligned(sc); err == nil {
		t.Fatal("zero routers accepted")
	}
	sc = alignedScenario()
	sc.Carriers = []int{99}
	if _, err := RunAligned(sc); err == nil {
		t.Fatal("out-of-range carrier accepted")
	}
	sc = alignedScenario()
	sc.SegmentSize = 0
	if _, err := RunAligned(sc); err == nil {
		t.Fatal("zero segment size accepted")
	}
}

func TestRunAlignedGroundTruth(t *testing.T) {
	sc := alignedScenario()
	res, err := RunAligned(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Digests) != sc.Routers || res.Matrix.Rows() != sc.Routers {
		t.Fatal("shape mismatch")
	}
	if len(res.ContentColumns) == 0 || len(res.ContentColumns) > sc.ContentPackets {
		t.Fatalf("%d content columns for %d packets", len(res.ContentColumns), sc.ContentPackets)
	}
	// Every carrier's digest must contain every content column.
	for _, r := range sc.Carriers {
		for _, col := range res.ContentColumns {
			if !res.Matrix.Test(r, col) {
				t.Fatalf("carrier %d missing content column %d", r, col)
			}
		}
	}
	// The content columns therefore have weight >= number of carriers.
	for _, col := range res.ContentColumns {
		if w := res.Matrix.Col(col).OnesCount(); w < len(sc.Carriers) {
			t.Fatalf("content column %d weight %d < %d carriers", col, w, len(sc.Carriers))
		}
	}
	// And the planted pattern is detectable end to end.
	det, err := aligned.Detect(res.Matrix, aligned.RefinedConfig(256))
	if err != nil {
		t.Fatal(err)
	}
	if !det.Found {
		t.Fatal("scenario's planted pattern not detectable")
	}
}

func TestRunAlignedDeterministic(t *testing.T) {
	a, err := RunAligned(alignedScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAligned(alignedScenario())
	if err != nil {
		t.Fatal(err)
	}
	for r := range a.Digests {
		if a.Digests[r].OnesCount() != b.Digests[r].OnesCount() {
			t.Fatal("same seed produced different digests")
		}
	}
}

func unalignedScenario() UnalignedScenario {
	return UnalignedScenario{
		Seed:    2,
		Routers: 16,
		Collector: unaligned.CollectorConfig{
			Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
			SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
			HashSeed: 7,
		},
		BackgroundPackets: 183 * 4,
		ContentPackets:    60,
		Carriers:          []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
	}
}

func TestUnalignedScenarioValidation(t *testing.T) {
	sc := unalignedScenario()
	sc.Carriers = []int{-1}
	if _, err := RunUnaligned(sc); err == nil {
		t.Fatal("negative carrier accepted")
	}
	sc = unalignedScenario()
	sc.Collector.ArrayBits = 0
	if _, err := RunUnaligned(sc); err == nil {
		t.Fatal("bad collector accepted")
	}
}

func TestRunUnalignedGroundTruth(t *testing.T) {
	sc := unalignedScenario()
	res, err := RunUnaligned(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Digests) != sc.Routers {
		t.Fatal("digest count mismatch")
	}
	if len(res.CarrierVertices) != len(sc.Carriers) {
		t.Fatalf("%d carrier vertices for %d carriers", len(res.CarrierVertices), len(sc.Carriers))
	}
	for i, v := range res.CarrierVertices {
		if v.RouterID != sc.Carriers[i] {
			t.Fatalf("carrier vertex %d has router %d want %d", i, v.RouterID, sc.Carriers[i])
		}
		if v.Group < 0 || v.Group >= sc.Collector.Groups {
			t.Fatalf("carrier group %d out of range", v.Group)
		}
		if l := res.PrefixLens[i]; l < 0 || l >= sc.Collector.SegmentSize {
			t.Fatalf("prefix length %d out of range", l)
		}
		// The carrier vertex's arrays must actually contain the content's
		// ones: mean fill of that group strictly above background-only groups
		// would be flaky to assert per-row; instead require the digest to
		// have sampled at least the background+content packet volume.
	}
	// Bursty variant runs too.
	sc.BackgroundFlows = 500
	sc.ZipfS = 1.3
	if _, err := RunUnaligned(sc); err != nil {
		t.Fatal(err)
	}
}
