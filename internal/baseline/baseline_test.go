package baseline

import (
	"testing"

	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func TestRawAggregatorExactCounts(t *testing.T) {
	agg := NewRawAggregator(1)
	shared := []byte("common payload")
	agg.Observe(0, packet.Packet{Payload: shared})
	agg.Observe(1, packet.Packet{Payload: shared})
	agg.Observe(1, packet.Packet{Payload: shared}) // same router twice
	agg.Observe(2, packet.Packet{Payload: []byte("unique")})
	agg.Observe(3, packet.Packet{}) // empty payload ignored

	common := agg.CommonPayloads(2)
	if len(common) != 1 {
		t.Fatalf("want 1 common payload, got %d", len(common))
	}
	if common[0].Routers != 2 || common[0].Packets != 3 {
		t.Fatalf("common = %+v", common[0])
	}
	if got := agg.CommonPayloads(1); len(got) != 2 {
		t.Fatalf("minRouters=1 should list both payloads, got %d", len(got))
	}
	wantBytes := int64(len(shared)*3 + len("unique"))
	if agg.BytesShipped() != wantBytes {
		t.Fatalf("shipped %d bytes want %d", agg.BytesShipped(), wantBytes)
	}
}

func TestRawAggregatorOrdering(t *testing.T) {
	agg := NewRawAggregator(2)
	for r := 0; r < 5; r++ {
		agg.Observe(r, packet.Packet{Payload: []byte("wide")})
	}
	for r := 0; r < 3; r++ {
		agg.Observe(r, packet.Packet{Payload: []byte("narrow")})
	}
	common := agg.CommonPayloads(2)
	if len(common) != 2 || common[0].Routers != 5 || common[1].Routers != 3 {
		t.Fatalf("ordering wrong: %+v", common)
	}
}

func TestLocalDetectorThreshold(t *testing.T) {
	d := NewLocalDetector(3, 3)
	p := []byte("worm segment")
	d.Observe(packet.Packet{Payload: p})
	d.Observe(packet.Packet{Payload: p})
	if len(d.Alarms()) != 0 {
		t.Fatal("alarm below threshold")
	}
	d.Observe(packet.Packet{Payload: p})
	alarms := d.Alarms()
	if len(alarms) != 1 || alarms[0] != d.Fingerprint(p) {
		t.Fatalf("alarms = %v", alarms)
	}
	if d.Count(d.Fingerprint(p)) != 3 {
		t.Fatal("count wrong")
	}
}

// TestLocalMissesDistributedContent reproduces the paper's motivating claim:
// content that crosses many links once-or-twice each is invisible to any
// single-vantage detector but trivially visible to (exact) aggregation.
func TestLocalMissesDistributedContent(t *testing.T) {
	const routers = 40
	rng := stats.NewRand(4)
	content := trafficgen.NewContent(rng, 1, 536) // one packet of content
	inst := content.PlantAligned(9, 536)

	agg := NewRawAggregator(7)
	locals := make([]*LocalDetector, routers)
	for r := range locals {
		locals[r] = NewLocalDetector(7, 3)
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 200, SegmentSize: 536})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range bg {
			locals[r].Observe(p)
			agg.Observe(r, p)
		}
		// The common content crosses each router exactly once.
		locals[r].Observe(inst[0])
		agg.Observe(r, inst[0])
	}
	for r, d := range locals {
		if len(d.Alarms()) != 0 {
			t.Fatalf("router %d raised a local alarm on once-seen content", r)
		}
	}
	common := agg.CommonPayloads(routers)
	if len(common) != 1 || common[0].Routers != routers {
		t.Fatalf("aggregation should see the content at all %d routers: %+v", routers, common)
	}
}

func TestLocalDetectorDegenerateThreshold(t *testing.T) {
	d := NewLocalDetector(1, 0) // clamped to 1
	d.Observe(packet.Packet{Payload: []byte("x")})
	if len(d.Alarms()) != 1 {
		t.Fatal("threshold clamp failed")
	}
}
