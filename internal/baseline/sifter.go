package baseline

import (
	"sort"

	"dcstream/internal/packet"
	"dcstream/internal/rabin"
)

// SifterConfig parameterizes an EarlyBird-style content sifter [Singh et
// al., OSDI'04] — the single-vantage-point comparison system of the paper's
// related work (§VI). It samples Rabin substring fingerprints of payloads
// into a content-prevalence table and alarms when a fingerprint is both
// prevalent (repeats locally) and dispersed (crosses many distinct source
// and destination addresses).
type SifterConfig struct {
	// Window is the substring length fingerprinted (EarlyBird uses 40).
	// Zero means 40.
	Window int
	// SampleShift value-samples fingerprints: only those whose low
	// SampleShift bits are zero are tracked (EarlyBird samples 1/64,
	// shift 6). Zero means 6; negative disables sampling.
	SampleShift int
	// Prevalence is the repetition-count threshold. Zero means 3.
	Prevalence int
	// Dispersion is the distinct source AND destination threshold.
	// Zero means 3.
	Dispersion int
}

func (c SifterConfig) withDefaults() SifterConfig {
	if c.Window == 0 {
		c.Window = 40
	}
	if c.SampleShift == 0 {
		c.SampleShift = 6
	}
	if c.SampleShift < 0 {
		c.SampleShift = 0
	}
	if c.Prevalence == 0 {
		c.Prevalence = 3
	}
	if c.Dispersion == 0 {
		c.Dispersion = 3
	}
	return c
}

type sifterEntry struct {
	count int
	srcs  map[uint16]struct{}
	dsts  map[uint16]struct{}
}

// Sifter is one vantage point's content-sifting state.
type Sifter struct {
	cfg     SifterConfig
	table   *rabin.Table
	entries map[uint64]*sifterEntry
	mask    uint64
}

// NewSifter builds a sifter.
func NewSifter(cfg SifterConfig) (*Sifter, error) {
	cfg = cfg.withDefaults()
	tab, err := rabin.NewTable(cfg.Window)
	if err != nil {
		return nil, err
	}
	return &Sifter{
		cfg:     cfg,
		table:   tab,
		entries: make(map[uint64]*sifterEntry),
		mask:    (1 << uint(cfg.SampleShift)) - 1,
	}, nil
}

// srcDst unpacks the synthetic addresses from a packet.Tuple flow label.
func srcDst(f packet.FlowLabel) (src, dst uint16) {
	return uint16(f >> 48), uint16(f >> 32)
}

// Observe runs the roller over one payload, updating the prevalence table
// for every value-sampled substring fingerprint.
func (s *Sifter) Observe(p packet.Packet) {
	if len(p.Payload) < s.cfg.Window {
		return
	}
	src, dst := srcDst(p.Flow)
	r := s.table.NewRoller()
	seen := make(map[uint64]struct{}) // count each substring once per packet
	for _, b := range p.Payload {
		fp, ok := r.Roll(b)
		if !ok || fp&s.mask != 0 {
			continue
		}
		if _, dup := seen[fp]; dup {
			continue
		}
		seen[fp] = struct{}{}
		e, ok := s.entries[fp]
		if !ok {
			e = &sifterEntry{srcs: map[uint16]struct{}{}, dsts: map[uint16]struct{}{}}
			s.entries[fp] = e
		}
		e.count++
		e.srcs[src] = struct{}{}
		e.dsts[dst] = struct{}{}
	}
}

// SifterAlarm reports one suspicious content signature.
type SifterAlarm struct {
	Fingerprint  uint64
	Prevalence   int
	Sources      int
	Destinations int
}

// Alarms returns the fingerprints crossing both thresholds, most prevalent
// first.
func (s *Sifter) Alarms() []SifterAlarm {
	var out []SifterAlarm
	for fp, e := range s.entries {
		if e.count >= s.cfg.Prevalence &&
			len(e.srcs) >= s.cfg.Dispersion && len(e.dsts) >= s.cfg.Dispersion {
			out = append(out, SifterAlarm{
				Fingerprint:  fp,
				Prevalence:   e.count,
				Sources:      len(e.srcs),
				Destinations: len(e.dsts),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prevalence != out[j].Prevalence {
			return out[i].Prevalence > out[j].Prevalence
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// TableSize returns the number of tracked fingerprints (memory proxy).
func (s *Sifter) TableSize() int { return len(s.entries) }
