// Package baseline implements the two comparison points the paper argues
// against:
//
//   - RawAggregator — the centralized "raw aggregation" gold standard: ship
//     every payload to one place and count exactly. Perfect accuracy, but
//     the shipped-byte accounting shows why it cannot scale (§II-B: 1000
//     OC-192 links would need another 10 Tbps of backhaul).
//   - LocalDetector — an EarlyBird-style single-vantage-point content
//     prevalence table [Singh et al., OSDI'04]. It flags payloads that
//     repeat often *locally*, and therefore misses content spread thinly
//     across many links — the paper's core motivation for DCS.
package baseline

import (
	"sort"

	"dcstream/internal/hashing"
	"dcstream/internal/packet"
)

// RawAggregator receives the raw traffic of every router and answers
// common-content queries exactly.
type RawAggregator struct {
	hash    hashing.Hash64
	routers map[uint64]map[int]struct{} // payload fingerprint → routers seen at
	counts  map[uint64]int              // payload fingerprint → total packets
	shipped int64
}

// NewRawAggregator returns an empty aggregator; seed selects the payload
// fingerprint function.
func NewRawAggregator(seed uint64) *RawAggregator {
	return &RawAggregator{
		hash:    hashing.New(seed),
		routers: make(map[uint64]map[int]struct{}),
		counts:  make(map[uint64]int),
	}
}

// Observe registers one packet from one router, accounting for the payload
// bytes that raw aggregation would have shipped to the center.
func (r *RawAggregator) Observe(routerID int, p packet.Packet) {
	if len(p.Payload) == 0 {
		return
	}
	r.shipped += int64(len(p.Payload))
	fp := r.hash.Sum(p.Payload)
	set, ok := r.routers[fp]
	if !ok {
		set = make(map[int]struct{})
		r.routers[fp] = set
	}
	set[routerID] = struct{}{}
	r.counts[fp]++
}

// BytesShipped returns the total payload bytes a raw-aggregation deployment
// would have moved to the analysis center.
func (r *RawAggregator) BytesShipped() int64 { return r.shipped }

// Common is one exactly-counted common payload.
type Common struct {
	Fingerprint uint64
	Routers     int
	Packets     int
}

// CommonPayloads returns every payload seen at minRouters or more distinct
// routers, heaviest first (by router count, then packet count).
func (r *RawAggregator) CommonPayloads(minRouters int) []Common {
	var out []Common
	for fp, set := range r.routers {
		if len(set) >= minRouters {
			out = append(out, Common{Fingerprint: fp, Routers: len(set), Packets: r.counts[fp]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Routers != out[j].Routers {
			return out[i].Routers > out[j].Routers
		}
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}

// LocalDetector is the single-vantage-point prevalence baseline: it sees one
// router's traffic only.
type LocalDetector struct {
	hash      hashing.Hash64
	counts    map[uint64]int
	threshold int
}

// NewLocalDetector returns a detector that alarms on payloads repeating at
// least threshold times locally.
func NewLocalDetector(seed uint64, threshold int) *LocalDetector {
	if threshold < 1 {
		threshold = 1
	}
	return &LocalDetector{
		hash:      hashing.New(seed),
		counts:    make(map[uint64]int),
		threshold: threshold,
	}
}

// Observe registers one local packet.
func (d *LocalDetector) Observe(p packet.Packet) {
	if len(p.Payload) == 0 {
		return
	}
	d.counts[d.hash.Sum(p.Payload)]++
}

// Alarms returns the fingerprints whose local repetition reached the
// threshold, in no particular order.
func (d *LocalDetector) Alarms() []uint64 {
	var out []uint64
	for fp, c := range d.counts {
		if c >= d.threshold {
			out = append(out, fp)
		}
	}
	return out
}

// Count returns the local repetition count of a payload fingerprint.
func (d *LocalDetector) Count(fp uint64) int { return d.counts[fp] }

// Fingerprint exposes the detector's payload fingerprint for tests and
// cross-referencing with RawAggregator output.
func (d *LocalDetector) Fingerprint(payload []byte) uint64 { return d.hash.Sum(payload) }
