package baseline

import (
	"testing"

	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func TestSifterValidation(t *testing.T) {
	if _, err := NewSifter(SifterConfig{Window: -1}); err == nil {
		t.Fatal("negative window accepted")
	}
	s, err := NewSifter(SifterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Window != 40 || s.cfg.Prevalence != 3 {
		t.Fatalf("defaults wrong: %+v", s.cfg)
	}
}

func TestSifterCatchesLocalWorm(t *testing.T) {
	// A worm spraying from many sources to many destinations *through one
	// link* is exactly what EarlyBird catches: high prevalence AND high
	// dispersion. This is the regime where the single-vantage baseline
	// works — contrast with TestSifterMissesDistributedContent.
	s, err := NewSifter(SifterConfig{Window: 16, SampleShift: 2, Prevalence: 5, Dispersion: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(1)
	worm := trafficgen.NewContent(rng, 2, 536)
	// Background chatter.
	bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 300, SegmentSize: 536})
	for _, p := range bg {
		s.Observe(p)
	}
	// Eight infections cross this link, each with a distinct (src, dst).
	for i := 0; i < 8; i++ {
		flow := packet.Tuple(uint16(100+i), uint16(200+i), 25, uint16(4000+i))
		for _, p := range worm.PlantAligned(flow, 536) {
			s.Observe(p)
		}
	}
	alarms := s.Alarms()
	if len(alarms) == 0 {
		t.Fatal("local worm spray raised no alarm")
	}
	top := alarms[0]
	if top.Prevalence < 8 || top.Sources < 5 || top.Destinations < 5 {
		t.Fatalf("top alarm too weak: %+v", top)
	}
}

func TestSifterSuppressesLowDispersion(t *testing.T) {
	// The same bytes repeating between ONE source and ONE destination
	// (retransmissions, a busy single flow) must not alarm: prevalence is
	// high but dispersion is 1 — EarlyBird's false-positive suppression.
	s, _ := NewSifter(SifterConfig{Window: 16, SampleShift: 2, Prevalence: 5, Dispersion: 5})
	rng := stats.NewRand(2)
	hot := trafficgen.NewContent(rng, 2, 536)
	flow := packet.Tuple(1, 2, 80, 5000)
	for i := 0; i < 20; i++ {
		for _, p := range hot.PlantAligned(flow, 536) {
			s.Observe(p)
		}
	}
	if alarms := s.Alarms(); len(alarms) != 0 {
		t.Fatalf("single-flow repetition alarmed: %+v", alarms)
	}
}

func TestSifterMissesDistributedContent(t *testing.T) {
	// One instance per link: prevalence 1 at every vantage point, below any
	// useful threshold — the paper's case for distributed detection.
	rng := stats.NewRand(3)
	content := trafficgen.NewContent(rng, 2, 536)
	for link := 0; link < 10; link++ {
		s, _ := NewSifter(SifterConfig{Window: 16, SampleShift: 2, Prevalence: 3, Dispersion: 2})
		bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 200, SegmentSize: 536})
		for _, p := range bg {
			s.Observe(p)
		}
		flow := packet.Tuple(uint16(link), uint16(50+link), 25, 4000)
		for _, p := range content.PlantAligned(flow, 536) {
			s.Observe(p)
		}
		if alarms := s.Alarms(); len(alarms) != 0 {
			t.Fatalf("link %d alarmed on a once-seen content: %+v", link, alarms)
		}
	}
}

func TestSifterSkipsShortPayloads(t *testing.T) {
	s, _ := NewSifter(SifterConfig{Window: 40})
	s.Observe(packet.Packet{Flow: 1, Payload: make([]byte, 39)})
	if s.TableSize() != 0 {
		t.Fatal("short payload populated the table")
	}
}

func TestSifterValueSampling(t *testing.T) {
	// With shift s the table tracks ≈ 2^-s of substrings: compare table
	// sizes at shifts 0 and 4 over identical traffic.
	rng := stats.NewRand(4)
	bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 100, SegmentSize: 256})
	dense, _ := NewSifter(SifterConfig{Window: 16, SampleShift: -1})
	sparse, _ := NewSifter(SifterConfig{Window: 16, SampleShift: 4})
	for _, p := range bg {
		dense.Observe(p)
		sparse.Observe(p)
	}
	ratio := float64(sparse.TableSize()) / float64(dense.TableSize())
	if ratio < 0.02 || ratio > 0.15 {
		t.Fatalf("sampling ratio %v, want ≈1/16", ratio)
	}
}
