// Package hashing provides the seeded uniform hash family the collection
// modules use to map packet-payload fragments and flow labels to bitmap
// indices. The paper assumes fast hardware hash functions [Ramakrishna et
// al.]; here a software FNV-1a core with a SplitMix-style avalanche
// finalizer stands in. Only uniformity and seed-independence matter for the
// algorithms, and both are asserted by the package tests.
package hashing

import "math/bits"

// Hash64 is a seeded streaming hash over byte slices. Distinct seeds give
// effectively independent hash functions, which the unaligned collector
// relies on (one function per offset array) to keep collisions across
// arrays uncorrelated.
type Hash64 struct {
	seed uint64
}

// New returns the hash function with the given seed.
func New(seed uint64) Hash64 { return Hash64{seed: seed} }

const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Sum returns the 64-bit hash of data under this function.
func (h Hash64) Sum(data []byte) uint64 {
	x := fnvOffset ^ (h.seed * 0x9e3779b97f4a7c15)
	for _, b := range data {
		x ^= uint64(b)
		x *= fnvPrime
	}
	return finalize(x ^ h.seed)
}

// SumUint64 hashes a single 64-bit value (e.g. a flow label) under this
// function, avoiding byte-slice allocation on the per-packet hot path.
func (h Hash64) SumUint64(v uint64) uint64 {
	x := uint64(fnvOffset) ^ (h.seed * 0x9e3779b97f4a7c15)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= fnvPrime
		v >>= 8
	}
	return finalize(x ^ h.seed)
}

// Index returns Sum(data) reduced to [0, n). n must be positive.
func (h Hash64) Index(data []byte, n int) int {
	if n <= 0 {
		panic("hashing: non-positive range")
	}
	return int(reduce(h.Sum(data), uint64(n)))
}

// IndexUint64 returns SumUint64(v) reduced to [0, n). n must be positive.
func (h Hash64) IndexUint64(v uint64, n int) int {
	if n <= 0 {
		panic("hashing: non-positive range")
	}
	return int(reduce(h.SumUint64(v), uint64(n)))
}

// finalize applies a strong avalanche so that low-entropy inputs (short
// fragments, sequential flow labels) still spread across the whole range.
func finalize(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// reduce maps a 64-bit hash to [0, n) using the multiply-shift trick, which
// is unbiased to within 2^-64 and avoids the modulo's bias and cost.
func reduce(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}
