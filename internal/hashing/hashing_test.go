package hashing

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"dcstream/internal/stats"
)

func TestDeterminism(t *testing.T) {
	h := New(42)
	a := h.Sum([]byte("hello"))
	b := h.Sum([]byte("hello"))
	if a != b {
		t.Fatal("same input, same seed must hash equal")
	}
	if h.Sum([]byte("hellp")) == a {
		t.Fatal("single byte change collided (astronomically unlikely)")
	}
	if New(43).Sum([]byte("hello")) == a {
		t.Fatal("different seed collided (astronomically unlikely)")
	}
}

func TestSumUint64MatchesBytes(t *testing.T) {
	h := New(7)
	f := func(v uint64) bool {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		return h.SumUint64(v) == h.Sum(buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRange(t *testing.T) {
	h := New(1)
	for _, n := range []int{1, 2, 3, 1024, 4 << 20} {
		for i := 0; i < 200; i++ {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], uint64(i))
			idx := h.Index(buf[:], n)
			if idx < 0 || idx >= n {
				t.Fatalf("Index out of range: %d for n=%d", idx, n)
			}
			if got := h.IndexUint64(uint64(i), n); got != idx {
				t.Fatalf("IndexUint64 mismatch: %d vs %d", got, idx)
			}
		}
	}
}

func TestIndexPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=0")
		}
	}()
	New(1).Index([]byte("x"), 0)
}

// TestUniformity bins hashes of structured inputs (sequential integers and
// random payload fragments) into 64 buckets and runs a chi-square check.
// Critical value for 63 degrees of freedom at alpha=0.001 is 103.4; we use a
// slightly looser 110 to keep the test non-flaky while still catching real
// bias (a biased hash typically scores in the thousands).
func TestUniformity(t *testing.T) {
	const bins = 64
	check := func(name string, counts []int, total int) {
		expected := float64(total) / bins
		chi := 0.0
		for _, c := range counts {
			d := float64(c) - expected
			chi += d * d / expected
		}
		if chi > 110 {
			t.Fatalf("%s: chi-square %.1f over %d bins (biased hash)", name, chi, bins)
		}
	}

	h := New(999)
	seq := make([]int, bins)
	const n = 64000
	for i := 0; i < n; i++ {
		seq[h.IndexUint64(uint64(i), bins)]++
	}
	check("sequential flow labels", seq, n)

	rng := stats.NewRand(5)
	frag := make([]byte, 16)
	rnd := make([]int, bins)
	for i := 0; i < n; i++ {
		rng.Read(frag)
		rnd[h.Index(frag, bins)]++
	}
	check("random fragments", rnd, n)
}

// TestSeedIndependence verifies that two differently-seeded functions give
// statistically unrelated indices: their joint distribution over a 8x8 grid
// should be uniform.
func TestSeedIndependence(t *testing.T) {
	h1, h2 := New(101), New(202)
	const side = 8
	grid := make([]int, side*side)
	const n = 64000
	for i := 0; i < n; i++ {
		a := h1.IndexUint64(uint64(i), side)
		b := h2.IndexUint64(uint64(i), side)
		grid[a*side+b]++
	}
	expected := float64(n) / (side * side)
	chi := 0.0
	for _, c := range grid {
		d := float64(c) - expected
		chi += d * d / expected
	}
	// 63 dof, same critical region as above.
	if chi > 110 {
		t.Fatalf("joint chi-square %.1f: seeds are correlated", chi)
	}
}

func BenchmarkSumFragment16(b *testing.B) {
	h := New(3)
	frag := make([]byte, 16)
	b.SetBytes(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Sum(frag)
	}
}

func BenchmarkIndexUint64(b *testing.B) {
	h := New(3)
	for i := 0; i < b.N; i++ {
		h.IndexUint64(uint64(i), 1<<17)
	}
}
