package bitvec

import "testing"

// lcg is a tiny deterministic word source for the property tests.
func lcg(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return s
	}
}

func TestNewArenaIsolation(t *testing.T) {
	cols := NewArena(5, 130)
	if len(cols) != 5 {
		t.Fatalf("arena size %d", len(cols))
	}
	for i, c := range cols {
		if c.Len() != 130 {
			t.Fatalf("col %d length %d", i, c.Len())
		}
	}
	// Saturate one column; its neighbors must stay empty even in the words
	// adjacent inside the shared backing array.
	for i := 0; i < 130; i++ {
		cols[2].Set(i)
	}
	for i, c := range cols {
		want := 0
		if i == 2 {
			want = 130
		}
		if c.OnesCount() != want {
			t.Fatalf("col %d weight %d, want %d", i, c.OnesCount(), want)
		}
	}
	if v := NewArena(0, 64); len(v) != 0 {
		t.Fatalf("empty arena not empty")
	}
}

func TestShrinkSharesStorage(t *testing.T) {
	v := New(200)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(99)
	s := v.Shrink(100)
	if s.Len() != 100 || s.OnesCount() != 4 {
		t.Fatalf("shrink view len=%d weight=%d", s.Len(), s.OnesCount())
	}
	// Writes through the parent are visible in the view: shared storage, not
	// a copy.
	v.Set(50)
	if !s.Test(50) {
		t.Fatal("shrink view is a copy, want a shared-storage view")
	}
	if got := New(64).Shrink(0).Len(); got != 0 {
		t.Fatalf("zero shrink len %d", got)
	}
}

func TestShrinkPanicsOnDroppedBit(t *testing.T) {
	for _, bit := range []int{100, 127, 128, 199} {
		v := New(200)
		v.Set(bit)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("shrink to 100 dropped set bit %d silently", bit)
				}
			}()
			v.Shrink(100)
		}()
	}
}

func TestBlitMatchesNaive(t *testing.T) {
	word := lcg(7)
	cases := []struct{ at, nbits, srcLen, dstLen int }{
		{0, 64, 64, 64},     // full word, aligned
		{0, 37, 64, 64},     // partial word, aligned
		{64, 128, 128, 256}, // word-aligned offset
		{17, 100, 128, 256}, // unaligned offset, partial tail
		{63, 65, 65, 256},   // crosses every word boundary
		{5, 0, 64, 64},      // empty blit is a no-op
		{200, 56, 60, 256},  // lands exactly at the destination end
	}
	for _, tc := range cases {
		src := New(tc.srcLen)
		src.FillRandomHalf(word)
		dst := New(tc.dstLen)
		dst.FillRandomHalf(word)
		// Zero the target range first (Blit ORs), then compare against the
		// naive per-bit copy on an identical starting point.
		for i := tc.at; i < tc.at+tc.nbits; i++ {
			dst.Clear(i)
		}
		want := dst.Clone()
		for i := 0; i < tc.nbits; i++ {
			if src.Test(i) {
				want.Set(tc.at + i)
			}
		}
		Blit(dst, tc.at, src, tc.nbits)
		if !Equal(dst, want) {
			t.Fatalf("blit at=%d nbits=%d diverged from naive copy", tc.at, tc.nbits)
		}
	}
}

func TestBlitRangePanics(t *testing.T) {
	src, dst := New(64), New(64)
	for _, f := range []func(){
		func() { Blit(dst, 0, src, 65) },
		func() { Blit(dst, 1, src, 64) },
		func() { Blit(dst, -1, src, 8) },
		func() { Blit(dst, 0, src, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range blit did not panic")
				}
			}()
			f()
		}()
	}
}
