package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
)

// naiveAndCount is the reference single-word loop the unrolled kernels must
// agree with.
func naiveAndCount(a, b *Vector) int {
	c := 0
	for i := range a.words {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

func naiveOnesCount(v *Vector) int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// kernelLengths covers the unroll boundaries: empty, sub-word, exact word
// multiples, exact 4-word blocks, and every tail residue class, plus a long
// vector.
var kernelLengths = []int{0, 1, 63, 64, 65, 127, 128, 191, 192, 255, 256, 257, 300, 319, 320, 321, 448, 512, 513, 4096, 4099}

func TestKernelsAgreeWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range kernelLengths {
		for trial := 0; trial < 8; trial++ {
			a, b := New(n), New(n)
			a.FillRandomHalf(rng.Uint64)
			b.FillRandomHalf(rng.Uint64)
			want := naiveAndCount(a, b)
			if got := AndCount(a, b); got != want {
				t.Fatalf("n=%d: AndCount=%d naive=%d", n, got, want)
			}
			if got := a.OnesCount(); got != naiveOnesCount(a) {
				t.Fatalf("n=%d: OnesCount=%d naive=%d", n, got, naiveOnesCount(a))
			}
			dst := New(n)
			if got := AndInto(dst, a, b); got != want {
				t.Fatalf("n=%d: AndInto count=%d want %d", n, got, want)
			}
			and := New(n)
			and.And(a, b)
			if !Equal(dst, and) {
				t.Fatalf("n=%d: AndInto result differs from And", n)
			}
		}
	}
}

func TestAndCountAtLeast(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range kernelLengths {
		for trial := 0; trial < 8; trial++ {
			a, b := New(n), New(n)
			a.FillRandomHalf(rng.Uint64)
			b.FillRandomHalf(rng.Uint64)
			count := naiveAndCount(a, b)
			// The decision must match an exact count at every threshold
			// around the true value and at the degenerate ends.
			for _, thr := range []int{-1, 0, 1, count - 1, count, count + 1, n, n + 1} {
				want := count >= thr || thr <= 0
				if got := AndCountAtLeast(a, b, thr); got != want {
					t.Fatalf("n=%d count=%d t=%d: got %v want %v", n, count, thr, got, want)
				}
			}
		}
	}
}

func TestAndCountAtLeastEarlyHit(t *testing.T) {
	// All the overlap sits in the first block: the kernel must report true
	// regardless of what the (never-visited) rest of the vector holds.
	a := New(4096)
	b := New(4096)
	for i := 0; i < 64; i++ {
		a.Set(i)
		b.Set(i)
	}
	if !AndCountAtLeast(a, b, 64) {
		t.Fatal("threshold equal to early overlap not detected")
	}
	if AndCountAtLeast(a, b, 65) {
		t.Fatal("threshold above total overlap reported reached")
	}
}

func TestFillRandomSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 1 << 15
	// Marginal sanity at several sparse densities: the realized weight must
	// sit within a generous binomial band, and the tail word must stay clean.
	for _, p := range []float64{0.001, 0.01, 0.05, 0.099} {
		v := New(n + 13) // force a ragged tail word
		v.FillRandom(p, rng.Float64)
		mean := p * float64(n+13)
		if w := float64(v.OnesCount()); w < mean/3-10 || w > mean*3+10 {
			t.Fatalf("p=%v: weight %v, expected ≈%v", p, w, mean)
		}
		words := v.Words()
		if tail := words[len(words)-1] >> uint((n+13)%64); tail != 0 {
			t.Fatalf("p=%v: tail bits %b beyond Len", p, tail)
		}
	}
	// Determinism: the same uniform stream yields the same vector.
	mk := func() *Vector {
		r := rand.New(rand.NewSource(99))
		v := New(5000)
		v.FillRandom(0.02, r.Float64)
		return v
	}
	if !Equal(mk(), mk()) {
		t.Fatal("sparse fill not deterministic for a fixed stream")
	}
	// A refill must reset prior contents (the skip path writes sparsely).
	v := New(1000)
	v.FillRandom(0.5, rng.Float64)
	v.FillRandom(0.01, rng.Float64)
	if v.OnesCount() > 100 {
		t.Fatalf("sparse refill kept stale dense bits: weight %d", v.OnesCount())
	}
}

func TestFillRandomSparseDegenerateUniform(t *testing.T) {
	// uniform() == 0 forever means every gap inverts to the minimal skip;
	// the fill must still terminate and set every bit (geometric inversion
	// of u=0 is gap 0).
	v := New(300)
	v.FillRandom(0.05, func() float64 { return 0 })
	if v.OnesCount() != 300 {
		t.Fatalf("degenerate stream: weight %d want 300", v.OnesCount())
	}
	// A stream pinned near 1 yields huge skips: no bits, no hang, no panic.
	v.FillRandom(0.05, func() float64 { return 0.999999999999 })
	if v.OnesCount() > 2 {
		t.Fatalf("near-one stream: weight %d", v.OnesCount())
	}
}

func benchPair(n int) (*Vector, *Vector) {
	rng := rand.New(rand.NewSource(3))
	x, y := New(n), New(n)
	x.FillRandomHalf(rng.Uint64)
	y.FillRandomHalf(rng.Uint64)
	return x, y
}

func BenchmarkOnesCount1024(b *testing.B) {
	x, _ := benchPair(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.OnesCount()
	}
}

func BenchmarkAndCount8192(b *testing.B) {
	x, y := benchPair(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

// Hit: the threshold is crossed within the first block, the common case for
// correlated rows whose shared content fills the early words.
func BenchmarkAndCountAtLeastHit(b *testing.B) {
	x, y := benchPair(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCountAtLeast(x, y, 32)
	}
}

// Miss: the threshold is never reached, so the kernel scans every word —
// the worst case must not be slower than plain AndCount by more than the
// per-block compare.
func BenchmarkAndCountAtLeastMiss(b *testing.B) {
	x, y := benchPair(8192)
	t := AndCount(x, y) + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCountAtLeast(x, y, t)
	}
}

func BenchmarkFillRandomSparse(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.FillRandom(0.01, rng.Float64)
	}
}

func BenchmarkFillRandomDense(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v := New(1 << 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.FillRandom(0.3, rng.Float64)
	}
}
