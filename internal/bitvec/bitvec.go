// Package bitvec provides dense fixed-length bit vectors optimized for the
// bulk bitwise operations at the heart of the DCS detection algorithms:
// AND-products of matrix columns (aligned case) and overlap counting between
// digest arrays (unaligned case).
//
// A Vector is a sequence of n bits stored in 64-bit words. The zero value is
// an empty vector; use New to allocate one of a given length. All operations
// that combine two vectors require equal lengths and panic otherwise —
// mismatched lengths are always a programming error in this codebase, never
// an input condition.
package bitvec

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length bit vector. Bits beyond Len() in the final word
// are always zero; every mutating operation maintains this invariant so that
// popcounts never see garbage.
type Vector struct {
	words []uint64
	n     int
}

// New returns a zeroed vector of n bits. n must be non-negative.
func New(n int) *Vector {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vector{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns an n-bit vector with exactly the given bit positions
// set. Indices out of range panic.
func FromIndices(n int, idx []int) *Vector {
	v := New(n)
	for _, i := range idx {
		v.Set(i)
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Words exposes the backing words for read-only scans (e.g. serialization).
// The final word's high bits beyond Len are zero.
func (v *Vector) Words() []uint64 { return v.words }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is 1.
func (v *Vector) Test(i int) bool {
	v.check(i)
	return v.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Reset zeroes every bit, keeping the allocation.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := make([]uint64, len(v.words))
	copy(w, v.words)
	return &Vector{words: w, n: v.n}
}

// OnesCount returns the number of set bits (the paper's "weight"). The loop
// is unrolled four words at a time: popcount chains have no cross-iteration
// dependency, so the wider body keeps the ALUs busy and halves loop overhead
// on the multi-kiloword vectors the unaligned analysis scans.
func (v *Vector) OnesCount() int {
	w := v.words
	c := 0
	i := 0
	for ; i+4 <= len(w); i += 4 {
		c += bits.OnesCount64(w[i]) +
			bits.OnesCount64(w[i+1]) +
			bits.OnesCount64(w[i+2]) +
			bits.OnesCount64(w[i+3])
	}
	for ; i < len(w); i++ {
		c += bits.OnesCount64(w[i])
	}
	return c
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d vs %d", v.n, o.n))
	}
}

// And stores the bitwise AND of a and b into v (v may alias either operand).
func (v *Vector) And(a, b *Vector) {
	a.sameLen(b)
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or stores the bitwise OR of a and b into v (v may alias either operand).
func (v *Vector) Or(a, b *Vector) {
	a.sameLen(b)
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// AndCount returns the popcount of a AND b without materializing the result.
// This is the hot path of the unaligned analysis (pairwise row correlation);
// like OnesCount it runs four words per iteration.
func AndCount(a, b *Vector) int {
	a.sameLen(b)
	aw := a.words
	bw := b.words[:len(aw)]
	c := 0
	i := 0
	for ; i+4 <= len(aw); i += 4 {
		c += bits.OnesCount64(aw[i]&bw[i]) +
			bits.OnesCount64(aw[i+1]&bw[i+1]) +
			bits.OnesCount64(aw[i+2]&bw[i+2]) +
			bits.OnesCount64(aw[i+3]&bw[i+3])
	}
	for ; i < len(aw); i++ {
		c += bits.OnesCount64(aw[i] & bw[i])
	}
	return c
}

// AndCountAtLeast reports whether popcount(a AND b) >= t, giving up on the
// exact count: it checks the running total after every unrolled block and
// returns as soon as the threshold is crossed. The unaligned correlation
// pass only ever compares the overlap against a λ threshold, so on
// correlated row pairs — where the common content concentrates ones early —
// this exits after a fraction of the words. t <= 0 is trivially true.
func AndCountAtLeast(a, b *Vector, t int) bool {
	a.sameLen(b)
	if t <= 0 {
		return true
	}
	aw := a.words
	bw := b.words[:len(aw)]
	c := 0
	i := 0
	for ; i+4 <= len(aw); i += 4 {
		c += bits.OnesCount64(aw[i]&bw[i]) +
			bits.OnesCount64(aw[i+1]&bw[i+1]) +
			bits.OnesCount64(aw[i+2]&bw[i+2]) +
			bits.OnesCount64(aw[i+3]&bw[i+3])
		if c >= t {
			return true
		}
	}
	for ; i < len(aw); i++ {
		c += bits.OnesCount64(aw[i] & bw[i])
	}
	return c >= t
}

// AndInto computes dst = a AND b and returns dst's popcount in one pass,
// which the aligned product iteration uses to score hopefuls while building
// them. Unrolled like AndCount.
func AndInto(dst, a, b *Vector) int {
	a.sameLen(b)
	dst.sameLen(a)
	aw := a.words
	bw := b.words[:len(aw)]
	dw := dst.words[:len(aw)]
	c := 0
	i := 0
	for ; i+4 <= len(aw); i += 4 {
		w0 := aw[i] & bw[i]
		w1 := aw[i+1] & bw[i+1]
		w2 := aw[i+2] & bw[i+2]
		w3 := aw[i+3] & bw[i+3]
		dw[i], dw[i+1], dw[i+2], dw[i+3] = w0, w1, w2, w3
		c += bits.OnesCount64(w0) + bits.OnesCount64(w1) +
			bits.OnesCount64(w2) + bits.OnesCount64(w3)
	}
	for ; i < len(aw); i++ {
		w := aw[i] & bw[i]
		dw[i] = w
		c += bits.OnesCount64(w)
	}
	return c
}

// Equal reports whether a and b have identical length and bits.
func Equal(a, b *Vector) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.OnesCount())
	for wi, w := range v.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+tz)
			w &= w - 1
		}
	}
	return out
}

// sparseFillCutoff is the density below which FillRandom switches from the
// per-bit Bernoulli loop to geometric gap skipping. At p = 0.1 the skip path
// draws ~0.1 uniforms per bit instead of 1; above it the constant factor of
// the log evaluation stops paying for itself.
const sparseFillCutoff = 0.1

// FillRandom sets each bit to 1 independently with probability p, using the
// caller-supplied uniform source (a func returning uniform float64 in [0,1)).
// Used by Monte-Carlo matrix generation.
//
// For p below sparseFillCutoff the fill jumps directly between set bits by
// sampling the geometric gap distribution (one uniform per *set* bit instead
// of one per bit), so sparse fills cost O(p·n) draws. The marginal law of
// every bit is unchanged, but the mapping from the uniform stream to bit
// positions differs from the dense path — callers sharing one seeded source
// across calls get a different (still deterministic) vector than the per-bit
// loop would produce.
func (v *Vector) FillRandom(p float64, uniform func() float64) {
	v.Reset()
	if p <= 0 {
		return
	}
	if p >= 1 {
		for i := range v.words {
			v.words[i] = ^uint64(0)
		}
		v.maskTail()
		return
	}
	if p < sparseFillCutoff {
		// Geometric skipping: the gap before the next set bit is
		// floor(log(1-u)/log(1-p)) zeros, by inversion of the geometric CDF.
		logq := math.Log1p(-p) // log(1-p) < 0
		i := -1
		for {
			f := math.Log1p(-uniform()) / logq
			if f >= float64(v.n) { // jump past the end from any position
				return
			}
			i += int(f) + 1
			if i >= v.n {
				return
			}
			v.words[i/wordBits] |= 1 << uint(i%wordBits)
		}
	}
	for i := 0; i < v.n; i++ {
		if uniform() < p {
			v.words[i/wordBits] |= 1 << uint(i%wordBits)
		}
	}
}

// FillRandomHalf sets each bit to an independent fair coin flip using a
// 64-bit word source directly; ~64x faster than FillRandom(0.5, ...) and the
// common case for the paper's half-full bitmaps.
func (v *Vector) FillRandomHalf(word func() uint64) {
	for i := range v.words {
		v.words[i] = word()
	}
	v.maskTail()
}

func (v *Vector) maskTail() {
	if rem := v.n % wordBits; rem != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(rem)) - 1
	}
}

// String renders the vector as a 0/1 string, least index first, capped with
// an ellipsis for long vectors (debug aid).
func (v *Vector) String() string {
	const maxRender = 128
	var sb strings.Builder
	n := v.n
	trunc := false
	if n > maxRender {
		n, trunc = maxRender, true
	}
	for i := 0; i < n; i++ {
		if v.Test(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&sb, "… (%d bits, weight %d)", v.n, v.OnesCount())
	}
	return sb.String()
}
