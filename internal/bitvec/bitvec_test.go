package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len=%d want %d", v.Len(), n)
		}
		if v.OnesCount() != 0 {
			t.Fatalf("new vector of %d bits has weight %d", n, v.OnesCount())
		}
	}
}

func TestSetTestClear(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		if v.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := v.OnesCount(); got != 7 {
		t.Fatalf("weight=%d want 7", got)
	}
	v.Clear(64)
	if v.Test(64) || v.OnesCount() != 6 {
		t.Fatalf("Clear(64) failed: weight=%d", v.OnesCount())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Set(10) },
		func() { v.Set(-1) },
		func() { v.Test(10) },
		func() { v.Clear(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	AndCount(a, b)
}

func TestFromIndicesAndIndices(t *testing.T) {
	idx := []int{3, 64, 65, 199}
	v := FromIndices(200, idx)
	got := v.Indices()
	if len(got) != len(idx) {
		t.Fatalf("Indices len=%d want %d", len(got), len(idx))
	}
	for i := range idx {
		if got[i] != idx[i] {
			t.Fatalf("Indices[%d]=%d want %d", i, got[i], idx[i])
		}
	}
}

func TestAndOrAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		ar, br := make([]bool, n), make([]bool, n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ar[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				br[i] = true
			}
		}
		and, or := New(n), New(n)
		and.And(a, b)
		or.Or(a, b)
		wantAnd, wantOr := 0, 0
		for i := 0; i < n; i++ {
			ea, eo := ar[i] && br[i], ar[i] || br[i]
			if and.Test(i) != ea || or.Test(i) != eo {
				t.Fatalf("n=%d bit %d: and=%v want %v, or=%v want %v", n, i, and.Test(i), ea, or.Test(i), eo)
			}
			if ea {
				wantAnd++
			}
			if eo {
				wantOr++
			}
		}
		if AndCount(a, b) != wantAnd {
			t.Fatalf("AndCount=%d want %d", AndCount(a, b), wantAnd)
		}
		dst := New(n)
		if c := AndInto(dst, a, b); c != wantAnd || !Equal(dst, and) {
			t.Fatalf("AndInto count=%d want %d, equal=%v", c, wantAnd, Equal(dst, and))
		}
		if or.OnesCount() != wantOr {
			t.Fatalf("or weight=%d want %d", or.OnesCount(), wantOr)
		}
	}
}

func TestAndAliasing(t *testing.T) {
	a := FromIndices(100, []int{1, 5, 99})
	b := FromIndices(100, []int{5, 99})
	a.And(a, b)
	if got := a.Indices(); len(got) != 2 || got[0] != 5 || got[1] != 99 {
		t.Fatalf("aliased And wrong: %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(70, []int{0, 69})
	c := a.Clone()
	c.Set(33)
	if a.Test(33) {
		t.Fatal("Clone shares storage with original")
	}
	if !Equal(a, FromIndices(70, []int{0, 69})) {
		t.Fatal("original mutated")
	}
}

func TestFillRandomHalfTailMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := New(100)
	v.FillRandomHalf(rng.Uint64)
	// Bits [100,128) must be zero so OnesCount is honest.
	if w := v.Words()[1] >> 36; w != 0 {
		t.Fatalf("tail bits not masked: %x", w)
	}
	if c := v.OnesCount(); c < 20 || c > 80 {
		t.Fatalf("suspicious half-fill weight %d/100", c)
	}
}

func TestFillRandomExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := New(77)
	v.FillRandom(0, rng.Float64)
	if v.OnesCount() != 0 {
		t.Fatal("p=0 should leave empty vector")
	}
	v.FillRandom(1, rng.Float64)
	if v.OnesCount() != 77 {
		t.Fatalf("p=1 weight=%d want 77", v.OnesCount())
	}
	// The word-fill fast path must keep the tail invariant: no bits set
	// beyond Len in the final word.
	words := v.Words()
	if tail := words[len(words)-1] >> (77 % 64); tail != 0 {
		t.Fatalf("p=1 fill left tail bits %b beyond Len", tail)
	}
	// p above 1 takes the same fast path.
	v.FillRandom(2.5, rng.Float64)
	if v.OnesCount() != 77 {
		t.Fatalf("p>1 weight=%d want 77", v.OnesCount())
	}
	// Refill resets previous contents.
	v.FillRandom(0, rng.Float64)
	if v.OnesCount() != 0 {
		t.Fatal("FillRandom did not reset")
	}
}

func TestResetKeepsLength(t *testing.T) {
	v := FromIndices(129, []int{0, 64, 128})
	v.Reset()
	if v.OnesCount() != 0 || v.Len() != 129 {
		t.Fatalf("Reset: weight=%d len=%d", v.OnesCount(), v.Len())
	}
}

// Property: for any index sets A, B within range, weight(A AND B) = |A ∩ B|
// and weight(A OR B) = |A ∪ B|.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(aIdx, bIdx []uint16) bool {
		const n = 1 << 16
		am, bm := map[int]bool{}, map[int]bool{}
		a, b := New(n), New(n)
		for _, i := range aIdx {
			a.Set(int(i))
			am[int(i)] = true
		}
		for _, i := range bIdx {
			b.Set(int(i))
			bm[int(i)] = true
		}
		inter, union := 0, len(am)
		for i := range bm {
			if am[i] {
				inter++
			} else {
				union++
			}
		}
		or := New(n)
		or.Or(a, b)
		return AndCount(a, b) == inter && or.OnesCount() == union &&
			a.OnesCount() == len(am) && b.OnesCount() == len(bm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Indices is the exact inverse of FromIndices for sorted unique input.
func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		v := New(n)
		uniq := map[int]bool{}
		for _, i := range raw {
			v.Set(int(i))
			uniq[int(i)] = true
		}
		idx := v.Indices()
		if len(idx) != len(uniq) {
			return false
		}
		for k, i := range idx {
			if !uniq[i] {
				return false
			}
			if k > 0 && idx[k-1] >= i {
				return false // must be strictly ascending
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount1024(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := New(1024), New(1024)
	x.FillRandomHalf(rng.Uint64)
	y.FillRandomHalf(rng.Uint64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndCount(x, y)
	}
}

func BenchmarkAndInto4M(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := New(1000), New(1000)
	x.FillRandomHalf(rng.Uint64)
	y.FillRandomHalf(rng.Uint64)
	dst := New(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AndInto(dst, x, y)
	}
}
