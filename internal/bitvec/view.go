package bitvec

import "fmt"

// NewArena returns count zeroed vectors of n bits each, all backed by one
// flat word array. The incremental aligned accumulator keeps thousands of
// short column vectors alive per window; carving them from a single
// allocation keeps them cache-adjacent and cuts the allocator traffic of
// per-column make calls. Each vector's word slice is capacity-clamped so no
// operation on one column can bleed into its neighbor.
func NewArena(count, n int) []*Vector {
	if count < 0 || n < 0 {
		panic("bitvec: negative arena dimensions")
	}
	wpv := (n + wordBits - 1) / wordBits
	buf := make([]uint64, count*wpv)
	vecs := make([]Vector, count)
	out := make([]*Vector, count)
	for i := range vecs {
		vecs[i] = Vector{words: buf[i*wpv : (i+1)*wpv : (i+1)*wpv], n: n}
		out[i] = &vecs[i]
	}
	return out
}

// Shrink returns a view of the first n bits of v sharing v's storage: writes
// through either alias are visible in both. It panics if any bit at position
// >= n is set — a truncation that would silently drop ones is always a
// programming error here (the accumulator only shrinks capacity padding,
// which is zero by invariant). The returned view keeps the tail-bits-zero
// invariant because the dropped region was verified zero.
func (v *Vector) Shrink(n int) *Vector {
	if n < 0 || n > v.n {
		panic(fmt.Sprintf("bitvec: shrink to %d outside [0,%d]", n, v.n))
	}
	nw := (n + wordBits - 1) / wordBits
	for i := nw; i < len(v.words); i++ {
		if v.words[i] != 0 {
			panic(fmt.Sprintf("bitvec: shrink to %d drops set bit in word %d", n, i))
		}
	}
	if rem := n % wordBits; rem != 0 && nw > 0 {
		if v.words[nw-1]>>uint(rem) != 0 {
			panic(fmt.Sprintf("bitvec: shrink to %d drops set bit at >= %d", n, n))
		}
	}
	return &Vector{words: v.words[:nw:nw], n: n}
}

// Blit ORs the first nbits of src into dst starting at bit position at; dst
// bits outside [at, at+nbits) are untouched. Word-shift based, so stitching a
// sliding-window span matrix out of per-epoch columns costs O(words) instead
// of O(bits) per column even when epoch row counts are not multiples of 64.
func Blit(dst *Vector, at int, src *Vector, nbits int) {
	if nbits < 0 || nbits > src.n {
		panic(fmt.Sprintf("bitvec: blit %d bits from %d-bit source", nbits, src.n))
	}
	if at < 0 || at+nbits > dst.n {
		panic(fmt.Sprintf("bitvec: blit [%d,%d) outside %d-bit destination", at, at+nbits, dst.n))
	}
	if nbits == 0 {
		return
	}
	words := (nbits + wordBits - 1) / wordBits
	base, off := at/wordBits, uint(at%wordBits)
	for i := 0; i < words; i++ {
		w := src.words[i]
		if i == words-1 {
			if rem := nbits % wordBits; rem != 0 {
				w &= (1 << uint(rem)) - 1
			}
		}
		dst.words[base+i] |= w << off
		if off != 0 {
			if hi := w >> (wordBits - off); hi != 0 {
				dst.words[base+i+1] |= hi
			}
		}
	}
}
