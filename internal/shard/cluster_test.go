package shard

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"dcstream/internal/bitvec"
	"dcstream/internal/center"
	"dcstream/internal/stats"
	"dcstream/internal/transport"
	"dcstream/internal/unaligned"
)

// buildShardWorkload draws a deterministic digest stream carrying both digest
// kinds for every router in every epoch, with a shared content vector planted
// in some routers' unaligned digests so the analysis has real evidence to
// agree on. Modeled on the streaming experiment's workload builder, sized for
// tests.
func buildShardWorkload(seed uint64, routers, epochs int) []transport.Message {
	const bits = 1 << 10
	const arrayBits = 512
	const groups, arrays = 2, 3
	rng := stats.NewRand(seed)
	fill := func(v *bitvec.Vector, n, space int) {
		for i := 0; i < n; i++ {
			v.Set(rng.Intn(space))
		}
	}
	shared := bitvec.New(arrayBits)
	fill(shared, arrayBits/3, arrayBits)

	var msgs []transport.Message
	for e := 1; e <= epochs; e++ {
		for r := 0; r < routers; r++ {
			bm := bitvec.New(bits)
			fill(bm, bits/4, bits)
			msgs = append(msgs, transport.AlignedDigest{RouterID: r, Epoch: e, Bitmap: bm})
			d := &unaligned.Digest{RouterID: r, Rows: make([][]*bitvec.Vector, groups)}
			for g := range d.Rows {
				d.Rows[g] = make([]*bitvec.Vector, arrays)
				for a := range d.Rows[g] {
					v := bitvec.New(arrayBits)
					fill(v, arrayBits/8, arrayBits)
					if g == 0 && r%3 == 0 {
						v.Or(v, shared)
					}
					d.Rows[g][a] = v
				}
			}
			msgs = append(msgs, transport.UnalignedDigest{Epoch: e, Digest: d})
		}
	}
	return msgs
}

// referenceReports runs the plain, un-sharded center over the same message
// stream with the same drain procedure and returns its reports sorted by
// epoch — the ground truth every cluster configuration must reproduce.
func referenceReports(t *testing.T, cfg center.Config, msgs []transport.Message) []center.WindowReport {
	t.Helper()
	c := center.New(cfg)
	for _, m := range msgs {
		c.Ingest(m)
	}
	reps, err := Drain(c)
	if err != nil {
		t.Fatalf("reference drain: %v", err)
	}
	sortReports(reps)
	return reps
}

func sortReports(reps []center.WindowReport) {
	sort.Slice(reps, func(i, j int) bool { return reps[i].Epoch < reps[j].Epoch })
}

// runCluster routes the stream through a fresh cluster and returns the merged
// verdict stream.
func runCluster(t *testing.T, cfg ClusterConfig, msgs []transport.Message) []MergedReport {
	t.Helper()
	cl, err := NewCluster(cfg)
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("closing cluster: %v", err)
		}
	}()
	for _, m := range msgs {
		cl.Route(m)
	}
	if err := cl.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	merged, err := cl.AnalyzeAll(10 * time.Second)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return merged
}

// mergedToReports strips the merge metadata, asserting along the way that the
// stream is strictly epoch-ascending and nothing was synthesized.
func mergedToReports(t *testing.T, merged []MergedReport, part Partition) []center.WindowReport {
	t.Helper()
	reps := make([]center.WindowReport, 0, len(merged))
	for i, m := range merged {
		if m.Synthesized {
			t.Fatalf("healthy cluster synthesized a report: %+v", m)
		}
		if i > 0 && merged[i-1].Report.Epoch >= m.Report.Epoch {
			t.Fatalf("merge order broken: epoch %d after %d", m.Report.Epoch, merged[i-1].Report.Epoch)
		}
		if want := part.Owner(m.Report.Epoch); m.Shard != want {
			t.Fatalf("epoch %d reported by shard %d, owner is %d", m.Report.Epoch, m.Shard, want)
		}
		reps = append(reps, m.Report)
	}
	return reps
}

// TestShardClusterOneShardBitIdentical is the equivalence contract: a 1-shard
// cluster — real TCP scatter, real JSON report gather — produces WindowReports
// bit-identical to a single un-sharded center over the same seeded stream, in
// classic and sliding modes, at several analysis worker counts.
func TestShardClusterOneShardBitIdentical(t *testing.T) {
	msgs := buildShardWorkload(41, 6, 10)
	for _, slide := range []int{0, 3} {
		for _, workers := range []int{-1, 2, 4} {
			t.Run(fmt.Sprintf("slide%d_workers%d", slide, workers), func(t *testing.T) {
				cfg := center.Config{SubsetSize: 64, MaxEpochs: 16, Parallelism: workers, WindowSlide: slide}
				want := referenceReports(t, cfg, msgs)
				merged := runCluster(t, ClusterConfig{Shards: 1, Center: cfg}, msgs)
				got := mergedToReports(t, merged, Partition{Shards: 1, Slide: slide})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("1-shard cluster diverged from single center:\n got %+v\nwant %+v", got, want)
				}
			})
		}
	}
}

// TestShardClusterScatterGatherBitIdentical: because the partition unit is the
// whole span, scattering across 2 and 4 shards changes which process computes
// each verdict but not the verdict itself — the merged stream matches the
// single-center reference on every verdict field. The one field normalized
// out is RetiredEpochs: it logs which buffered epochs the reporting center
// freed when the span closed, and a shard that owns only every Nth span
// batches its retirement differently than a center closing all of them —
// local buffer housekeeping, not analysis output (the 1-shard test above
// compares it verbatim).
func TestShardClusterScatterGatherBitIdentical(t *testing.T) {
	msgs := buildShardWorkload(43, 6, 10)
	clearRetired := func(reps []center.WindowReport) []center.WindowReport {
		out := append([]center.WindowReport(nil), reps...)
		for i := range out {
			out[i].RetiredEpochs = nil
		}
		return out
	}
	for _, slide := range []int{0, 3} {
		cfg := center.Config{SubsetSize: 64, MaxEpochs: 16, Parallelism: 2, WindowSlide: slide}
		want := clearRetired(referenceReports(t, cfg, msgs))
		for _, shards := range []int{2, 4} {
			t.Run(fmt.Sprintf("slide%d_shards%d", slide, shards), func(t *testing.T) {
				merged := runCluster(t, ClusterConfig{Shards: shards, Center: cfg}, msgs)
				got := clearRetired(mergedToReports(t, merged, Partition{Shards: shards, Slide: slide}))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%d-shard cluster diverged from single center:\n got %+v\nwant %+v", shards, got, want)
				}
			})
		}
	}
}

// TestShardClusterKillOneShardChaos: a shard killed mid-stream degrades the
// merged verdict but never falsifies it. Its owned epochs come back as
// synthesized Degraded tombstones naming every router that fed them missing,
// every surviving shard's report passes through bit-identical to the
// reference, order stays total, and the health ledger pins the corpse.
func TestShardClusterKillOneShardChaos(t *testing.T) {
	const routers, epochs, shards = 6, 12, 3
	const killAfter = 8
	msgs := buildShardWorkload(47, routers, epochs)
	cfg := center.Config{SubsetSize: 64, MaxEpochs: 16, Parallelism: 2}
	ref := referenceReports(t, cfg, msgs)
	byEpoch := make(map[int]center.WindowReport, len(ref))
	for _, r := range ref {
		byEpoch[r.Epoch] = r
	}

	cl, err := NewCluster(ClusterConfig{Shards: shards, Center: cfg})
	if err != nil {
		t.Fatalf("starting cluster: %v", err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Errorf("closing cluster: %v", err)
		}
	}()
	part := cl.Coordinator().Partition()
	const dead = 1

	for _, m := range msgs {
		var epoch int
		switch d := m.(type) {
		case transport.AlignedDigest:
			epoch = d.Epoch
		case transport.UnalignedDigest:
			epoch = d.Epoch
		}
		if epoch == killAfter+1 {
			// Everything through killAfter has been routed; let the doomed
			// shard absorb it, then crash it mid-stream.
			if err := cl.Quiesce(10 * time.Second); err != nil {
				t.Fatalf("quiesce before kill: %v", err)
			}
			cl.KillShard(dead)
		}
		cl.Route(m)
	}
	if err := cl.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("quiesce: %v", err)
	}
	merged, err := cl.AnalyzeAll(10 * time.Second)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}

	if len(merged) != epochs {
		t.Fatalf("merged %d reports, want %d — a dead shard must degrade epochs, not drop them", len(merged), epochs)
	}
	allRouters := make([]int, routers)
	for r := range allRouters {
		allRouters[r] = r
	}
	synth := 0
	for i, m := range merged {
		if m.Report.Epoch != i+1 {
			t.Fatalf("merge order broken at %d: %+v", i, m)
		}
		if part.Owner(m.Report.Epoch) == dead {
			synth++
			if !m.Synthesized || !m.Report.Degraded {
				t.Fatalf("dead-owned epoch %d not synthesized degraded: %+v", m.Report.Epoch, m)
			}
			if !reflect.DeepEqual(m.Report.MissingRouters, allRouters) {
				t.Fatalf("epoch %d missing routers %v, want %v", m.Report.Epoch, m.Report.MissingRouters, allRouters)
			}
			if m.Report.Aligned != nil || m.Report.Unaligned != nil {
				t.Fatalf("synthesized report fabricated analysis: %+v", m.Report)
			}
		} else {
			if m.Synthesized {
				t.Fatalf("live-owned epoch %d synthesized: %+v", m.Report.Epoch, m)
			}
			if !reflect.DeepEqual(m.Report, byEpoch[m.Report.Epoch]) {
				t.Fatalf("surviving shard's epoch %d diverged from reference:\n got %+v\nwant %+v",
					m.Report.Epoch, m.Report, byEpoch[m.Report.Epoch])
			}
		}
	}
	if synth == 0 {
		t.Fatalf("dead shard owned no epochs in 1..%d; workload too small for the partition", epochs)
	}
	h := cl.Coordinator().Healths()[dead]
	if !h.Dead || h.DegradedCause != "dead" {
		t.Fatalf("dead shard health %+v, want Dead with cause %q", h, "dead")
	}
	if s := cl.Coordinator().Stats(); s.Synthesized != int64(synth) {
		t.Fatalf("stats count %d synthesized, merge emitted %d", s.Synthesized, synth)
	}
}
