package shard

import "testing"

// TestPartitionDeterministicAndCovering: the owner assignment is a pure
// function of (epoch, shard count), lands in range, and spreads spans over
// every shard rather than clumping.
func TestPartitionDeterministicAndCovering(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5} {
		p := Partition{Shards: n}
		counts := make([]int, n)
		for e := 0; e < 1000; e++ {
			o := p.Owner(e)
			if o < 0 || o >= n {
				t.Fatalf("Owner(%d) = %d out of range for %d shards", e, o, n)
			}
			if again := p.Owner(e); again != o {
				t.Fatalf("Owner(%d) not deterministic: %d then %d", e, o, again)
			}
			counts[o]++
		}
		for s, c := range counts {
			// splitmix64 avalanche: expect ~1000/n per shard; any shard below
			// a quarter of its fair share means the hash is clumping.
			if c < 1000/(4*n) {
				t.Fatalf("%d shards: shard %d owns only %d of 1000 epochs", n, s, c)
			}
		}
	}
	// One shard owns everything — the degenerate deployment the equivalence
	// contract rides on.
	p := Partition{Shards: 1, Slide: 4}
	for e := -5; e < 100; e++ {
		if p.Owner(e) != 0 {
			t.Fatalf("1-shard Owner(%d) = %d, want 0", e, p.Owner(e))
		}
		if got := p.ShardsFor(e); len(got) != 1 || got[0] != 0 {
			t.Fatalf("1-shard ShardsFor(%d) = %v, want [0]", e, got)
		}
	}
}

// TestPartitionFanoutMatchesOwnership pins the three views against each
// other: ShardsFor(e) is exactly the sorted set of owners of spans ending in
// [e, e+Slide-1], OwnsEpoch accepts exactly membership in ShardsFor, and
// OwnsSpan accepts exactly ownership.
func TestPartitionFanoutMatchesOwnership(t *testing.T) {
	for _, slide := range []int{1, 2, 4} {
		p := Partition{Shards: 4, Slide: slide}
		owns := make([]func(int) bool, p.Shards)
		spans := make([]func(int) bool, p.Shards)
		for i := 0; i < p.Shards; i++ {
			owns[i] = p.OwnsEpoch(i)
			spans[i] = p.OwnsSpan(i)
		}
		for e := 0; e < 200; e++ {
			want := map[int]bool{}
			for end := e; end < e+slide; end++ {
				want[p.Owner(end)] = true
			}
			got := p.ShardsFor(e)
			if len(got) != len(want) {
				t.Fatalf("slide %d: ShardsFor(%d) = %v, want owners %v", slide, e, got, want)
			}
			for i, s := range got {
				if !want[s] {
					t.Fatalf("slide %d: ShardsFor(%d) = %v includes non-owner %d", slide, e, got, s)
				}
				if i > 0 && got[i-1] >= s {
					t.Fatalf("slide %d: ShardsFor(%d) = %v not sorted/deduped", slide, e, got)
				}
			}
			for i := 0; i < p.Shards; i++ {
				if owns[i](e) != want[i] {
					t.Fatalf("slide %d: OwnsEpoch(%d)(%d) = %v, want %v", slide, i, e, owns[i](e), want[i])
				}
				if spans[i](e) != (p.Owner(e) == i) {
					t.Fatalf("slide %d: OwnsSpan(%d)(%d) disagrees with Owner", slide, i, e)
				}
			}
		}
	}
}
