package shard

import (
	"reflect"
	"testing"
	"time"

	"dcstream/internal/center"
	"dcstream/internal/transport"
)

// TestShardJournalReplayMidSpanCrash: a shard cluster in sliding mode crashes
// mid-span — every shard killed with its journal left exactly as the crash
// left it — then a new cluster reopens the same per-shard journal
// directories, replays before serving, and finishes the stream. The merged
// span reports must come out bit-identical to an uninterrupted run, including
// the spans that straddle the crash point.
func TestShardJournalReplayMidSpanCrash(t *testing.T) {
	const routers, epochs, shards = 5, 10, 2
	const crashAfter = 7 // epochs 1..7 land before the crash; spans 8..10 straddle it
	msgs := buildShardWorkload(53, routers, epochs)
	splitAt := 0
	for i, m := range msgs {
		if d, ok := m.(transport.AlignedDigest); ok && d.Epoch == crashAfter+1 {
			splitAt = i
			break
		}
	}
	if splitAt == 0 {
		t.Fatal("workload never reached the crash epoch")
	}
	cfg := center.Config{SubsetSize: 64, MaxEpochs: 16, Parallelism: 2, WindowSlide: 3}
	part := Partition{Shards: shards, Slide: 3}

	// Uninterrupted run: one cluster, journal on (same config as the crash
	// run, so the only variable is the crash), whole stream, one drain.
	control := runCluster(t, ClusterConfig{
		Shards: shards, Center: cfg, JournalDir: t.TempDir(), JournalSync: true,
	}, msgs)
	want := mergedToReports(t, control, part)

	// Crash run, life one: ingest the prefix, then kill every shard with no
	// drain — reports unpushed, spans open, journals un-closed mid-span.
	dir := t.TempDir()
	cl, err := NewCluster(ClusterConfig{Shards: shards, Center: cfg, JournalDir: dir, JournalSync: true})
	if err != nil {
		t.Fatalf("starting first life: %v", err)
	}
	for _, m := range msgs[:splitAt] {
		cl.Route(m)
	}
	if err := cl.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("quiesce before crash: %v", err)
	}
	for i := 0; i < shards; i++ {
		cl.KillShard(i)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("closing crashed cluster: %v", err)
	}

	// Life two: same journal directories. Replay runs before the servers
	// accept a byte — the same replay-before-listen rule dcsd follows — then
	// the rest of the stream arrives over the wire.
	cl2, err := NewCluster(ClusterConfig{Shards: shards, Center: cfg, JournalDir: dir, JournalSync: true})
	if err != nil {
		t.Fatalf("starting second life: %v", err)
	}
	defer func() {
		if err := cl2.Close(); err != nil {
			t.Errorf("closing second life: %v", err)
		}
	}()
	for _, m := range msgs[splitAt:] {
		cl2.Route(m)
	}
	if err := cl2.Quiesce(10 * time.Second); err != nil {
		t.Fatalf("quiesce after replay: %v", err)
	}
	merged, err := cl2.AnalyzeAll(10 * time.Second)
	if err != nil {
		t.Fatalf("analyze after replay: %v", err)
	}
	got := make([]center.WindowReport, 0, len(merged))
	for i, m := range merged {
		if m.Synthesized {
			t.Fatalf("replayed cluster synthesized a report: %+v", m)
		}
		if i > 0 && merged[i-1].Report.Epoch >= m.Report.Epoch {
			t.Fatalf("merge order broken after replay: %+v", merged)
		}
		got = append(got, m.Report)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed run diverged from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
}
