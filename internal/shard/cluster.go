package shard

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dcstream/internal/center"
	"dcstream/internal/journal"
	"dcstream/internal/transport"
)

// ClusterConfig configures an in-process shard cluster: N shard centers
// behind real TCP transports plus a coordinator wired to all of them. Tests
// and the dcsbench shards experiment use it to exercise the whole
// scatter/gather path — framing, JSON envelopes, per-shard journals —
// without N OS processes.
type ClusterConfig struct {
	// Shards is the shard count; values below 1 behave as 1.
	Shards int
	// Center is the per-shard center configuration. The cluster installs
	// each shard's OwnsEpoch/OwnsSpan partition predicates and gives every
	// shard a private Stats; everything else applies verbatim to all
	// shards, so a 1-shard cluster runs exactly the single-center config.
	Center center.Config
	// JournalDir, when non-empty, gives each shard a crash journal in
	// <JournalDir>/shard-<i>. A journal already holding frames is replayed
	// into the shard's center before the cluster starts serving — the same
	// replay-before-listen rule cmd/dcsd follows.
	JournalDir string
	// JournalSync enables fsync-per-append on the shard journals.
	JournalSync bool
}

// clusterShard is one shard's in-process incarnation.
type clusterShard struct {
	index  int
	center *center.Center
	srv    *transport.Server
	jr     *journal.Journal // nil without JournalDir
	push   *transport.Client
	// processed counts digests the shard's ingest handler has fully filed —
	// the exact quiescence ledger Quiesce compares against the
	// coordinator's routed counts.
	processed atomic.Int64
	// appendErrs counts journal appends that failed (the journal is then
	// degraded and says so in every report envelope).
	appendErrs atomic.Int64
	alive      bool // protected by Cluster.mu, which owns every shard's flag
}

// Cluster is a running in-process shard deployment.
type Cluster struct {
	part   Partition
	co     *Coordinator
	sink   *transport.Server // coordinator's report listener
	shards []*clusterShard

	mu sync.Mutex // guards the shards' alive flags
}

// NewCluster builds and starts a cluster: per-shard centers and TCP
// servers, a coordinator report sink, and a coordinator holding one TCP
// client per shard. Call Close when done.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	slide := cfg.Center.WindowSlide
	cl := &Cluster{part: Partition{Shards: cfg.Shards, Slide: slide}.withDefaults()}

	// The report sink must exist before the coordinator, and the
	// coordinator before the shards can push to it; the sink handler only
	// touches co through the pointer, which is set before Serve can deliver
	// (the shards have not dialed yet).
	var co *Coordinator
	sink, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
		if r, ok := m.(transport.Report); ok {
			co.Gather(r)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("shard: starting report sink: %w", err)
	}
	cl.sink = sink

	senders := make([]Sender, cfg.Shards)
	fail := func(err error) (*Cluster, error) {
		closeErr := cl.Close()
		_ = closeErr // the constructor error is the one worth reporting
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &clusterShard{index: i, alive: true}
		ccfg := cfg.Center
		ccfg.Stats = nil // each shard keeps its own books
		ccfg.OwnsEpoch = cl.part.OwnsEpoch(i)
		ccfg.OwnsSpan = cl.part.OwnsSpan(i)
		sh.center = center.New(ccfg)
		if cfg.JournalDir != "" {
			jr, err := journal.Open(filepath.Join(cfg.JournalDir, fmt.Sprintf("shard-%d", i)),
				journal.Options{SyncEveryAppend: cfg.JournalSync})
			if err != nil {
				return fail(fmt.Errorf("shard %d: opening journal: %w", i, err))
			}
			sh.jr = jr
			if err := jr.Replay(func(m transport.Message) error {
				sh.center.Ingest(m)
				return nil
			}); err != nil {
				return fail(fmt.Errorf("shard %d: replaying journal: %w", i, err))
			}
		}
		srv, err := transport.Serve("127.0.0.1:0", func(m transport.Message, _ net.Addr) {
			if sh.jr != nil {
				if err := sh.jr.Append(m); err != nil {
					// The journal degrades itself and the shard's report
					// envelopes carry JournalDegraded; the counter keeps the
					// harness's own ledger honest.
					sh.appendErrs.Add(1)
				}
			}
			sh.center.Ingest(m)
			sh.processed.Add(1)
		})
		if err != nil {
			return fail(fmt.Errorf("shard %d: starting server: %w", i, err))
		}
		sh.srv = srv
		push, err := transport.Dial(sink.Addr(), 5*time.Second)
		if err != nil {
			return fail(fmt.Errorf("shard %d: dialing report sink: %w", i, err))
		}
		sh.push = push
		sender, err := transport.Dial(srv.Addr(), 5*time.Second)
		if err != nil {
			return fail(fmt.Errorf("shard %d: dialing shard server: %w", i, err))
		}
		senders[i] = sender
		cl.shards = append(cl.shards, sh)
	}
	co = NewCoordinator(cl.part, senders)
	cl.co = co
	return cl, nil
}

// Coordinator exposes the cluster's coordinator (health ledger, merge,
// metrics registration).
func (cl *Cluster) Coordinator() *Coordinator { return cl.co }

// ShardCenter exposes shard i's center for test assertions.
func (cl *Cluster) ShardCenter(i int) *center.Center { return cl.shards[i].center }

// ShardJournalDegraded reports whether shard i's journal has degraded (or
// any harness-observed append failed).
func (cl *Cluster) ShardJournalDegraded(i int) bool {
	sh := cl.shards[i]
	return (sh.jr != nil && sh.jr.Degraded()) || sh.appendErrs.Load() > 0
}

// Route scatters one digest through the coordinator, exactly as the
// coordinator-mode dcsd handler would.
func (cl *Cluster) Route(m transport.Message) { cl.co.Route(m) }

func (cl *Cluster) aliveShard(i int) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.shards[i].alive
}

// KillShard simulates a shard crash: its server and report connection close
// mid-flight (no clean drain, journal left as the crash left it) and the
// coordinator is told the shard is dead. Idempotent.
func (cl *Cluster) KillShard(i int) {
	cl.mu.Lock()
	sh := cl.shards[i]
	wasAlive := sh.alive
	sh.alive = false
	cl.mu.Unlock()
	if !wasAlive {
		return
	}
	// Crash semantics: connections drop, nothing flushes. Close errors are
	// the expected debris of tearing down live sockets — observed, then
	// deliberately not propagated.
	if err := sh.srv.Close(); err != nil {
		_ = err // simulated crash; the socket dying messily is the point
	}
	if err := sh.push.Close(); err != nil {
		_ = err // simulated crash; the socket dying messily is the point
	}
	cl.co.MarkDead(i)
}

// Quiesce waits until every live shard has processed everything the
// coordinator managed to send it (routed minus send errors) — exact on
// loopback TCP, no sleeps in the success path.
func (cl *Cluster) Quiesce(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		healths := cl.co.Healths()
		settled := true
		for _, sh := range cl.shards {
			if !cl.aliveShard(sh.index) {
				continue
			}
			h := healths[sh.index]
			if sh.processed.Load() < h.Routed-h.SendErrors {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("shard: quiesce timeout: shards still processing routed digests")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// heldEpochs counts the buffered epochs a center's quorum gate currently
// holds open — the HeldEpochs field of the shard's report envelopes.
func heldEpochs(c *center.Center) int {
	n := 0
	for _, e := range c.Epochs() {
		if c.Quorum(e).Hold {
			n++
		}
	}
	return n
}

// Drain produces every report a center still owes: shed tombstones first,
// then the ordered AnalyzeLatestComplete stream, then a direct Analyze of
// whatever remains buffered (the newest epoch, spans the quiescence rule
// never saw a newer epoch for). Spans owned by other shards and spans
// already foreclosed are skipped silently — they are not this center's to
// report. Exported because the equivalence contract is only meaningful when
// the sharded run and the single-center reference drain through the same
// procedure; the bit-identity tests and the shards experiment both use it.
func Drain(c *center.Center) ([]center.WindowReport, error) {
	reps := c.TakeShedReports()
	for {
		rep, err := c.AnalyzeLatestComplete()
		if errors.Is(err, center.ErrNoCompleteEpoch) {
			break
		}
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	remaining := c.Epochs()
	sort.Ints(remaining)
	for _, e := range remaining {
		rep, err := c.Analyze(e)
		if errors.Is(err, center.ErrNotOwned) || errors.Is(err, center.ErrNoWindow) {
			continue
		}
		if err != nil {
			return nil, err
		}
		reps = append(reps, rep)
	}
	reps = append(reps, c.TakeShedReports()...)
	return reps, nil
}

// AnalyzeAll drains every live shard in parallel — each pushes its reports
// to the coordinator over the real report wire — waits until the
// coordinator has gathered everything pushed, expires whatever nothing will
// ever report (ExpireStale(0): evicted epochs, dead shards' spans), and
// returns the merged verdict stream, epoch-ascending.
func (cl *Cluster) AnalyzeAll(timeout time.Duration) ([]MergedReport, error) {
	baseline := int64(0)
	for _, h := range cl.co.Healths() {
		baseline += h.Reports
	}
	baseline += cl.co.Stats().BadReports

	var pushed atomic.Int64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	record := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for _, sh := range cl.shards {
		if !cl.aliveShard(sh.index) {
			continue
		}
		wg.Add(1)
		go func(sh *clusterShard) {
			defer wg.Done()
			reps, err := Drain(sh.center)
			if err != nil {
				record(fmt.Errorf("shard %d: %w", sh.index, err))
				return
			}
			for _, rep := range reps {
				frame, err := EncodeReport(Envelope{
					Shard:           sh.index,
					JournalDegraded: sh.jr != nil && sh.jr.Degraded(),
					HeldEpochs:      heldEpochs(sh.center),
					Report:          rep,
				})
				if err != nil {
					record(fmt.Errorf("shard %d: %w", sh.index, err))
					return
				}
				if err := sh.push.Send(frame); err != nil {
					record(fmt.Errorf("shard %d: pushing report: %w", sh.index, err))
					return
				}
				pushed.Add(1)
			}
		}(sh)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	deadline := time.Now().Add(timeout)
	for {
		gathered := cl.co.Stats().BadReports
		for _, h := range cl.co.Healths() {
			gathered += h.Reports
		}
		if gathered >= baseline+pushed.Load() {
			break
		}
		if time.Now().After(deadline) {
			return nil, errors.New("shard: gather timeout: coordinator missing pushed reports")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cl.co.ExpireStale(0)
	return cl.co.TakeMerged(), nil
}

// Close tears the cluster down: shard servers, report connections,
// journals, the coordinator's shard clients, and the report sink. The first
// error wins; teardown continues past it.
func (cl *Cluster) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, sh := range cl.shards {
		if cl.aliveShard(sh.index) {
			keep(sh.srv.Close())
			keep(sh.push.Close())
		}
		if sh.jr != nil {
			keep(sh.jr.Close())
		}
	}
	if cl.co != nil {
		for _, s := range cl.co.shards {
			if c, ok := s.(*transport.Client); ok {
				keep(c.Close())
			}
		}
	}
	if cl.sink != nil {
		keep(cl.sink.Close())
	}
	return first
}
