package shard

import (
	"encoding/json"
	"fmt"

	"dcstream/internal/center"
	"dcstream/internal/transport"
)

// Envelope is what a shard pushes upstream for every report it produces:
// the analyzed (or shed-tombstone) WindowReport plus the shard-health facts
// the coordinator's ledger tracks. It rides the transport's Report frame as
// JSON — the control-plane path is cold (one frame per analyzed span, versus
// thousands of digest frames), so a self-describing encoding beats a
// hand-rolled binary one, and Go's JSON round-trips every WindowReport field
// exactly: float64 via shortest-representation, nil versus empty slices via
// null versus [] — which is what lets the coordinator's merged output stay
// bit-identical to the shard's original report.
type Envelope struct {
	// Shard is the sender's shard index; the coordinator files the report
	// under this shard's health ledger entry and rejects out-of-range values.
	Shard int `json:"shard"`
	// JournalDegraded reports the shard's journal has entered degraded mode
	// (writes failing, recovery not possible); the coordinator surfaces it
	// as the shard's degraded cause.
	JournalDegraded bool `json:"journal_degraded,omitempty"`
	// HeldEpochs is how many buffered epochs the shard's quorum gate was
	// holding open when the report was produced — the coordinator's view of
	// quorum state per shard.
	HeldEpochs int `json:"held_epochs,omitempty"`
	// Report is the shard's verdict, verbatim.
	Report center.WindowReport `json:"report"`
}

// EncodeReport frames an envelope for the wire.
func EncodeReport(env Envelope) (transport.Report, error) {
	b, err := json.Marshal(env)
	if err != nil {
		return transport.Report{}, fmt.Errorf("shard: encoding report envelope: %w", err)
	}
	return transport.Report{Payload: b}, nil
}

// DecodeReport recovers an envelope from a received Report frame.
func DecodeReport(m transport.Report) (Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(m.Payload, &env); err != nil {
		return Envelope{}, fmt.Errorf("shard: decoding report envelope: %w", err)
	}
	return env, nil
}
