package shard

import (
	"errors"
	"reflect"
	"testing"

	"dcstream/internal/center"
	"dcstream/internal/transport"
)

// fakeSender records every message routed to one shard and can refuse sends.
type fakeSender struct {
	sent []transport.Message
	err  error
}

func (f *fakeSender) Send(m transport.Message) error {
	if f.err != nil {
		return f.err
	}
	f.sent = append(f.sent, m)
	return nil
}

func fakeSenders(n int) ([]Sender, []*fakeSender) {
	fs := make([]*fakeSender, n)
	ss := make([]Sender, n)
	for i := range fs {
		fs[i] = &fakeSender{}
		ss[i] = fs[i]
	}
	return ss, fs
}

func mkAligned(epoch, router int) transport.AlignedDigest {
	return transport.AlignedDigest{RouterID: router, Epoch: epoch}
}

func mkReport(t *testing.T, shard int, rep center.WindowReport) transport.Report {
	t.Helper()
	m, err := EncodeReport(Envelope{Shard: shard, Report: rep})
	if err != nil {
		t.Fatalf("encoding report: %v", err)
	}
	return m
}

// TestCoordinatorRouteFansOutBySpan: every digest reaches exactly the shards
// whose spans need it, the pending ledger files the epoch under its owner,
// and refused sends land in the owner's health row — never in the merge.
func TestCoordinatorRouteFansOutBySpan(t *testing.T) {
	part := Partition{Shards: 3, Slide: 2}
	ss, fs := fakeSenders(3)
	co := NewCoordinator(part, ss)

	for e := 1; e <= 6; e++ {
		co.Route(mkAligned(e, 40+e))
	}
	want := make([]int, 3)
	for e := 1; e <= 6; e++ {
		for _, s := range part.ShardsFor(e) {
			want[s]++
		}
	}
	hs := co.Healths()
	for i := range fs {
		if len(fs[i].sent) != want[i] {
			t.Fatalf("shard %d received %d messages, want %d", i, len(fs[i].sent), want[i])
		}
		if hs[i].Routed != int64(want[i]) || hs[i].SendErrors != 0 {
			t.Fatalf("shard %d health = %+v, want Routed %d", i, hs[i], want[i])
		}
		if want[i] > 0 && (!hs[i].HasRouted || hs[i].LastRoutedEpoch < 1) {
			t.Fatalf("shard %d missing last-routed epoch: %+v", i, hs[i])
		}
	}

	// A refusing transport degrades the shard's health row, nothing else.
	fs[1].err = errors.New("refused")
	before := co.Healths()[1].Routed
	for e := 1; e <= 6; e++ {
		co.Route(mkAligned(e, 50+e))
	}
	h1 := co.Healths()[1]
	if h1.SendErrors != h1.Routed-before {
		t.Fatalf("send errors %d, want %d", h1.SendErrors, h1.Routed-before)
	}
	if h1.DegradedCause != "send-errors" {
		t.Fatalf("degraded cause %q, want send-errors", h1.DegradedCause)
	}
	if co.Stats().Synthesized != 0 {
		t.Fatalf("send errors must not synthesize reports")
	}
}

// TestCoordinatorMergeShardOrderTotal: reports emerge in strictly ascending
// epoch order no matter the gather order, and the merge blocks at the oldest
// epoch whose live owner still owes a report — newer verdicts never overtake.
func TestCoordinatorMergeShardOrderTotal(t *testing.T) {
	part := Partition{Shards: 2}
	ss, _ := fakeSenders(2)
	co := NewCoordinator(part, ss)

	for e := 1; e <= 4; e++ {
		co.Route(mkAligned(e, 9))
	}
	// Gather 2, 4, 1 — hold back 3.
	for _, e := range []int{2, 4, 1} {
		co.Gather(mkReport(t, part.Owner(e), center.WindowReport{Epoch: e, Routers: 1}))
	}
	got := co.TakeMerged()
	if len(got) != 2 || got[0].Report.Epoch != 1 || got[1].Report.Epoch != 2 {
		t.Fatalf("merged %+v, want epochs [1 2] and a block at 3", got)
	}
	for _, m := range got {
		if m.Synthesized {
			t.Fatalf("live merge synthesized %+v", m)
		}
		if m.Shard != part.Owner(m.Report.Epoch) {
			t.Fatalf("epoch %d attributed to shard %d, owner is %d", m.Report.Epoch, m.Shard, part.Owner(m.Report.Epoch))
		}
	}
	if more := co.TakeMerged(); len(more) != 0 {
		t.Fatalf("second drain emitted %+v while 3 still owed", more)
	}
	co.Gather(mkReport(t, part.Owner(3), center.WindowReport{Epoch: 3, Routers: 1}))
	got = co.TakeMerged()
	if len(got) != 2 || got[0].Report.Epoch != 3 || got[1].Report.Epoch != 4 {
		t.Fatalf("after gathering 3, merged %+v, want [3 4]", got)
	}
	if s := co.Stats(); s.Merged != 4 || s.Synthesized != 0 {
		t.Fatalf("stats %+v, want 4 merged, 0 synthesized", s)
	}
}

// TestCoordinatorDeadShardSynthesizesDegraded: killing a shard synthesizes
// Degraded tombstones for exactly its owned epochs — MissingRouters naming
// the routers that fed them — while every surviving shard's report passes
// through verbatim. Degraded, never wrong.
func TestCoordinatorDeadShardSynthesizesDegraded(t *testing.T) {
	part := Partition{Shards: 2}
	ss, _ := fakeSenders(2)
	co := NewCoordinator(part, ss)

	const epochs = 8
	for e := 1; e <= epochs; e++ {
		co.Route(mkAligned(e, 7))
		co.Route(mkAligned(e, 100+e))
	}
	dead := part.Owner(4)
	live := 1 - dead
	for e := 1; e <= epochs; e++ {
		if part.Owner(e) == live {
			co.Gather(mkReport(t, live, center.WindowReport{Epoch: e, Routers: 2}))
		}
	}
	co.MarkDead(dead)

	got := co.TakeMerged()
	if len(got) != epochs {
		t.Fatalf("merged %d reports, want %d", len(got), epochs)
	}
	for i, m := range got {
		if m.Report.Epoch != i+1 {
			t.Fatalf("merged order broken at %d: %+v", i, m)
		}
		if part.Owner(m.Report.Epoch) == dead {
			if !m.Synthesized || !m.Report.Degraded {
				t.Fatalf("dead-owned epoch %d not synthesized degraded: %+v", m.Report.Epoch, m)
			}
			wantMissing := []int{7, 100 + m.Report.Epoch}
			if !reflect.DeepEqual(m.Report.MissingRouters, wantMissing) {
				t.Fatalf("epoch %d missing routers %v, want %v", m.Report.Epoch, m.Report.MissingRouters, wantMissing)
			}
			if m.Report.Aligned != nil || m.Report.Unaligned != nil {
				t.Fatalf("synthesized report carries analysis: %+v", m.Report)
			}
		} else {
			if m.Synthesized || m.Report.Degraded || m.Report.Routers != 2 {
				t.Fatalf("live epoch %d not verbatim: %+v", m.Report.Epoch, m)
			}
		}
	}
	h := co.Healths()[dead]
	if !h.Dead || h.DegradedCause != "dead" {
		t.Fatalf("dead shard health %+v, want Dead with cause dead", h)
	}
}

// TestCoordinatorExpireStaleHorizon: only pending epochs the fleet clock has
// advanced at least horizon past expire; gathered epochs never expire; and
// horizon 0 is the shutdown drain that gives up on everything un-gathered.
func TestCoordinatorExpireStaleHorizon(t *testing.T) {
	part := Partition{Shards: 2}
	ss, _ := fakeSenders(2)
	co := NewCoordinator(part, ss)

	for _, e := range []int{5, 8, 9, 10} {
		co.Route(mkAligned(e, 3))
	}
	co.Gather(mkReport(t, part.Owner(8), center.WindowReport{Epoch: 8}))
	if n := co.ExpireStale(3); n != 1 {
		t.Fatalf("ExpireStale(3) expired %d epochs, want 1 (epoch 5)", n)
	}
	if n := co.ExpireStale(3); n != 0 {
		t.Fatalf("ExpireStale(3) again expired %d, want 0", n)
	}
	got := co.TakeMerged()
	// 5 synthesizes (expired), 8 emits verbatim, 9 blocks the walk.
	if len(got) != 2 || !got[0].Synthesized || got[0].Report.Epoch != 5 ||
		got[1].Synthesized || got[1].Report.Epoch != 8 {
		t.Fatalf("merged %+v, want synthesized 5 then verbatim 8", got)
	}
	if n := co.ExpireStale(0); n != 2 {
		t.Fatalf("shutdown drain expired %d, want 2 (epochs 9, 10)", n)
	}
	got = co.TakeMerged()
	if len(got) != 2 || !got[0].Synthesized || !got[1].Synthesized ||
		got[0].Report.Epoch != 9 || got[1].Report.Epoch != 10 {
		t.Fatalf("after shutdown drain, merged %+v, want synthesized [9 10]", got)
	}
}

// TestCoordinatorDuplicateAndBadReports: undecodable frames and out-of-range
// shard ids count bad; second reports for one epoch resolve by
// center.BetterReport and count duplicate; reports and digests below the
// merge watermark count duplicate and late rather than reopening history.
func TestCoordinatorDuplicateAndBadReports(t *testing.T) {
	part := Partition{Shards: 2}
	ss, _ := fakeSenders(2)
	co := NewCoordinator(part, ss)

	co.Gather(transport.Report{Payload: []byte("not json")})
	co.Gather(mkReport(t, 5, center.WindowReport{Epoch: 1}))
	co.Gather(mkReport(t, -1, center.WindowReport{Epoch: 1}))
	if s := co.Stats(); s.BadReports != 3 {
		t.Fatalf("bad reports %d, want 3", s.BadReports)
	}

	co.Route(mkAligned(1, 2))
	owner := part.Owner(1)
	// Shed tombstone first, full verdict second: the better report wins.
	co.Gather(mkReport(t, owner, center.WindowReport{Epoch: 1, Shed: true, ShedDigests: 4}))
	co.Gather(mkReport(t, owner, center.WindowReport{Epoch: 1, Routers: 3}))
	// Then a worse one again: the incumbent stands.
	co.Gather(mkReport(t, owner, center.WindowReport{Epoch: 1, Routers: 1, Degraded: true}))
	got := co.TakeMerged()
	if len(got) != 1 || got[0].Report.Shed || got[0].Report.Routers != 3 {
		t.Fatalf("merged %+v, want the full 3-router verdict", got)
	}
	if s := co.Stats(); s.DuplicateReports != 2 {
		t.Fatalf("duplicate reports %d, want 2", s.DuplicateReports)
	}

	// Epoch 1 is emitted: a replayed report and a straggler digest for it
	// count duplicate and late, and the merge stays drained.
	co.Gather(mkReport(t, owner, center.WindowReport{Epoch: 1, Routers: 9}))
	co.Route(mkAligned(1, 2))
	if s := co.Stats(); s.DuplicateReports != 3 || s.LateDigests != 1 {
		t.Fatalf("stats %+v, want 3 duplicates and 1 late digest", s)
	}
	if more := co.TakeMerged(); len(more) != 0 {
		t.Fatalf("watermarked epoch re-emitted: %+v", more)
	}

	// Unknown message kinds are counted, not routed.
	co.Route(nil)
	if s := co.Stats(); s.UnknownMessages != 1 {
		t.Fatalf("unknown messages %d, want 1", s.UnknownMessages)
	}
}
