// Package shard splits the analysis-center tier across N processes and
// merges their verdicts back into one stream. Each shard runs an unmodified
// center.Center — journal, quorum gate, shedding, and streaming accumulators
// all unchanged — over a deterministic slice of the digest space, while a
// thin coordinator scatters ingest across the shards and gathers their
// WindowReports into one epoch-ordered verdict sequence.
//
// The partition unit is the epoch (the span, in sliding mode), and
// deliberately nothing finer: the aligned detector combines column evidence
// matrix-wide and the unaligned graph builds edges between every vertex
// pair, including pairs from different hash groups, so any partition that
// splits one analysis window's digests across shards would change the
// verdict. Partitioning whole spans keeps every intra-window computation on
// one shard, which is what makes a 1-shard deployment bit-identical to a
// single un-sharded center — the equivalence contract the tests pin.
package shard

// Partition is the deterministic assignment of analysis spans to shards.
// Every participant — coordinator, shards, replay tooling — derives the
// same assignment from the same two integers; nothing about it is
// negotiated at runtime.
type Partition struct {
	// Shards is the shard count N. Values below 1 behave as 1.
	Shards int
	// Slide is the centers' WindowSlide. With sliding windows the span
	// ending at epoch e needs epochs [e-Slide+1, e] as context, so one
	// epoch's digests fan out to every shard owning a span it participates
	// in. Values below 1 behave as 1 (classic per-epoch analysis).
	Slide int
}

func (p Partition) withDefaults() Partition {
	if p.Shards < 1 {
		p.Shards = 1
	}
	if p.Slide < 1 {
		p.Slide = 1
	}
	return p
}

// mix is the splitmix64 finalizer: a full-avalanche bijection over uint64,
// so consecutive epochs land on unrelated shards and every shard sees an
// even 1/N of the spans regardless of how the epoch counter advances.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the shard that owns the span ending at epoch: the one shard
// that buffers the span whole, closes it, and reports its verdict.
func (p Partition) Owner(epoch int) int {
	p = p.withDefaults()
	return int(mix(uint64(int64(epoch))) % uint64(p.Shards))
}

// ShardsFor lists every shard that needs epoch's digests: the owners of the
// spans the epoch participates in — those ending in [epoch, epoch+Slide-1].
// Deduplicated, ascending. With Slide <= 1 this is exactly {Owner(epoch)}.
func (p Partition) ShardsFor(epoch int) []int {
	p = p.withDefaults()
	if p.Slide <= 1 {
		return []int{p.Owner(epoch)}
	}
	seen := make(map[int]bool, p.Slide)
	out := make([]int, 0, p.Slide)
	for end := epoch; end < epoch+p.Slide; end++ {
		s := p.Owner(end)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	// Sort the handful of shard ids without pulling in package sort: Slide
	// is single digits in practice.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// OwnsEpoch returns the center Config.OwnsEpoch predicate for shard i: the
// epochs whose digests the coordinator routes to it — every epoch feeding a
// span it owns.
func (p Partition) OwnsEpoch(i int) func(epoch int) bool {
	q := p.withDefaults()
	return func(epoch int) bool {
		for end := epoch; end < epoch+q.Slide; end++ {
			if q.Owner(end) == i {
				return true
			}
		}
		return false
	}
}

// OwnsSpan returns the center Config.OwnsSpan predicate for shard i: the
// spans it alone closes and reports. In sliding mode this is strictly
// narrower than OwnsEpoch — the shard buffers neighbouring epochs as span
// context but must not emit their spans' verdicts.
func (p Partition) OwnsSpan(i int) func(epoch int) bool {
	q := p.withDefaults()
	return func(epoch int) bool { return q.Owner(epoch) == i }
}
