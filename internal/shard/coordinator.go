package shard

import (
	"sort"
	"sync"

	"dcstream/internal/center"
	"dcstream/internal/metrics"
	"dcstream/internal/transport"
)

// Sender is the outbound half of a transport client — satisfied by
// transport.Client, transport.ReconnectingClient, and
// transport.BatchingUDPClient — so the coordinator scatters over whichever
// transport the deployment dials with.
type Sender interface {
	Send(m transport.Message) error
}

// MergedReport is one entry of the coordinator's merged verdict stream.
type MergedReport struct {
	// Shard produced the report — or, when Synthesized, owned the span that
	// never reported.
	Shard int
	// Synthesized marks a report the coordinator fabricated for a span whose
	// owner died or went silent: Degraded, no analysis, the routed routers
	// listed missing. Degraded-never-wrong — the gap is reported, never
	// skipped and never guessed at.
	Synthesized bool
	// Report is the shard's verdict verbatim (bit-identical to what the
	// shard produced), or the synthetic tombstone.
	Report center.WindowReport
}

// Health is one shard's row in the coordinator's health ledger.
type Health struct {
	// Shard is the row's shard index.
	Shard int
	// Dead marks a shard the operator (or a chaos test) declared gone;
	// its unreported spans synthesize immediately.
	Dead bool
	// Routed counts digest sends attempted to this shard; SendErrors counts
	// the ones the transport refused. Routed minus SendErrors is what the
	// shard should have received.
	Routed, SendErrors int64
	// Reports counts report envelopes gathered from this shard; Expired
	// counts its pending spans given up on by ExpireStale.
	Reports, Expired int64
	// LastRoutedEpoch / LastReportEpoch are the newest epoch routed to and
	// reported by the shard (valid when the Has flag is set) — together the
	// "last-seen epoch" the ledger tracks from both directions.
	LastRoutedEpoch int
	HasRouted       bool
	LastReportEpoch int
	HasReport       bool
	// DegradedCause is "" for a healthy shard, else the first applicable of
	// "dead", "journal-degraded", "expired-spans", "send-errors".
	DegradedCause string
	// HeldEpochs is the shard's own quorum-held count from its latest
	// report envelope.
	HeldEpochs int
}

// healthState is the mutable ledger row behind a Health. All fields are
// guarded by the coordinator's mu.
type healthState struct {
	dead            bool
	routed          int64
	sendErrors      int64
	reports         int64
	expired         int64
	lastRoutedEpoch int
	hasRouted       bool
	lastReportEpoch int
	hasReport       bool
	journalDegraded bool
	heldEpochs      int
}

func (h *healthState) degradedCause() string {
	switch {
	case h.dead:
		return "dead"
	case h.journalDegraded:
		return "journal-degraded"
	case h.expired > 0:
		return "expired-spans"
	case h.sendErrors > 0:
		return "send-errors"
	}
	return ""
}

// pendingEpoch records one routed-but-unresolved epoch: which shard owes
// its report and which routers fed it (the MissingRouters of a synthetic
// tombstone, should the owner never answer).
type pendingEpoch struct {
	owner   int
	routers map[int]bool
	digests int
	expired bool
}

// gatheredReport is a report received and not yet emitted.
type gatheredReport struct {
	shard  int
	report center.WindowReport
}

// Stats is a plain-int snapshot of the coordinator's own counters.
type Stats struct {
	// UnknownMessages counts routed messages of no known kind (dropped).
	UnknownMessages int64
	// LateDigests counts digests for epochs the merge already emitted —
	// forwarded nowhere, the shards would only count them late themselves.
	LateDigests int64
	// BadReports counts report frames that failed to decode or named an
	// out-of-range shard; DuplicateReports counts second-or-later reports
	// for one epoch (resolved by center.BetterReport, never emitted twice).
	BadReports, DuplicateReports int64
	// Merged counts reports emitted by TakeMerged; Synthesized counts the
	// subset fabricated for dead or expired owners.
	Merged, Synthesized int64
}

// Coordinator scatters digests across shards by the partition and gathers
// their reports back into one epoch-ascending verdict stream. It is safe
// for concurrent use: transport handler goroutines call Route and Gather
// while a drain loop calls TakeMerged.
//
// The merge preserves the existing single-center total order — reports
// emerge in strictly ascending epoch order, exactly as one center's
// oldest-first drain produces them — by blocking at the oldest routed epoch
// whose live owner has not reported yet. Dead (MarkDead) and expired
// (ExpireStale) owners do not block: their spans synthesize as Degraded
// tombstones naming the routed routers missing, so a lost shard degrades
// the merged stream but never reorders, drops, or falsifies it.
type Coordinator struct {
	part   Partition
	shards []Sender // immutable after New; the senders synchronize themselves

	mu       sync.Mutex
	health   []healthState          // guarded by mu
	pending  map[int]*pendingEpoch  // guarded by mu
	gathered map[int]gatheredReport // guarded by mu
	// emitted is the merge watermark: epochs at or below it are resolved,
	// and late reports for them count duplicate. guarded by mu
	emitted      int  // guarded by mu
	emittedValid bool // guarded by mu
	// maxRouted is the newest epoch ever routed — the fleet clock
	// ExpireStale measures staleness against. guarded by mu
	maxRouted      int  // guarded by mu
	maxRoutedValid bool // guarded by mu
	stats          Stats // guarded by mu
}

// NewCoordinator builds a coordinator scattering over the given senders,
// one per shard. The partition's Shards must equal len(senders); the
// partition is truth, so the senders slice is clamped against it by panic —
// a mismatched deployment must fail at startup, not misroute quietly.
func NewCoordinator(part Partition, senders []Sender) *Coordinator {
	part = part.withDefaults()
	if len(senders) != part.Shards {
		panic("shard: sender count does not match partition shard count")
	}
	return &Coordinator{
		part:     part,
		shards:   senders,
		health:   make([]healthState, part.Shards),
		pending:  make(map[int]*pendingEpoch),
		gathered: make(map[int]gatheredReport),
	}
}

// Partition returns the partition the coordinator routes by.
func (co *Coordinator) Partition() Partition { return co.part }

// Route scatters one ingest message to every shard whose spans need it and
// records the epoch in the pending ledger under its owner. Report frames
// are forwarded to Gather so a single transport handler can feed the
// coordinator everything it receives. Send errors are counted per shard,
// never fatal: a missing report is handled by the merge, not the router.
func (co *Coordinator) Route(m transport.Message) {
	var epoch, router int
	switch d := m.(type) {
	case transport.AlignedDigest:
		epoch, router = d.Epoch, d.RouterID
	case transport.UnalignedDigest:
		epoch, router = d.Epoch, d.Digest.RouterID
	case transport.Report:
		co.Gather(d)
		return
	default:
		co.mu.Lock()
		co.stats.UnknownMessages++
		co.mu.Unlock()
		return
	}
	targets := co.part.ShardsFor(epoch)
	co.mu.Lock()
	if !co.maxRoutedValid || epoch > co.maxRouted {
		co.maxRouted, co.maxRoutedValid = epoch, true
	}
	if co.emittedValid && epoch <= co.emitted {
		// The merge already resolved this epoch; the owning shard would only
		// count the digest late. Drop it here and say so.
		co.stats.LateDigests++
		co.mu.Unlock()
		return
	}
	pe := co.pending[epoch]
	if pe == nil {
		pe = &pendingEpoch{owner: co.part.Owner(epoch), routers: make(map[int]bool)}
		co.pending[epoch] = pe
	}
	pe.routers[router] = true
	pe.digests++
	for _, t := range targets {
		co.health[t].routed++
		if !co.health[t].hasRouted || epoch > co.health[t].lastRoutedEpoch {
			co.health[t].lastRoutedEpoch, co.health[t].hasRouted = epoch, true
		}
	}
	co.mu.Unlock()
	// Send outside the lock: a backpressured shard connection must not stall
	// routing state for the others.
	for _, t := range targets {
		if err := co.shards[t].Send(m); err != nil {
			co.mu.Lock()
			co.health[t].sendErrors++
			co.mu.Unlock()
		}
	}
}

// Gather files one report envelope from a shard: health ledger first, then
// the merge buffer, with duplicates for one epoch resolved by
// center.BetterReport and epochs below the merge watermark counted
// duplicate outright (a shard re-pushing after journal replay).
func (co *Coordinator) Gather(m transport.Report) {
	env, err := DecodeReport(m)
	co.mu.Lock()
	defer co.mu.Unlock()
	if err != nil || env.Shard < 0 || env.Shard >= len(co.health) {
		co.stats.BadReports++
		return
	}
	h := &co.health[env.Shard]
	h.reports++
	h.journalDegraded = h.journalDegraded || env.JournalDegraded
	h.heldEpochs = env.HeldEpochs
	e := env.Report.Epoch
	if !h.hasReport || e > h.lastReportEpoch {
		h.lastReportEpoch, h.hasReport = e, true
	}
	if co.emittedValid && e <= co.emitted {
		co.stats.DuplicateReports++
		return
	}
	if g, ok := co.gathered[e]; ok {
		co.stats.DuplicateReports++
		if !center.BetterReport(env.Report, g.report) {
			return
		}
	}
	co.gathered[e] = gatheredReport{shard: env.Shard, report: env.Report}
}

// MarkDead declares a shard gone: its pending spans synthesize on the next
// TakeMerged instead of blocking the merge, and its health row reports
// cause "dead". Out-of-range indices are ignored.
func (co *Coordinator) MarkDead(i int) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if i >= 0 && i < len(co.health) {
		co.health[i].dead = true
	}
}

// ExpireStale gives up on pending epochs the fleet has advanced at least
// horizon epochs past without their owner reporting — the same
// epoch-driven liveness rule as the centers' quorum MaxWait, so a silent
// shard cannot wedge the merge while wall clocks stay out of the verdict
// path entirely. Horizon 0 expires every un-gathered pending epoch (the
// shutdown drain). Returns how many epochs it expired.
func (co *Coordinator) ExpireStale(horizon int) int {
	if horizon < 0 {
		horizon = 0
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if !co.maxRoutedValid {
		return 0
	}
	n := 0
	for e, pe := range co.pending {
		if pe.expired {
			continue
		}
		if _, ok := co.gathered[e]; ok {
			continue
		}
		if co.maxRouted-e >= horizon {
			pe.expired = true
			co.health[pe.owner].expired++
			n++
		}
	}
	return n
}

// TakeMerged drains every report that can be emitted while preserving the
// total order: epochs ascending, each emitted exactly once. A gathered
// report is emitted verbatim; a pending epoch whose owner is dead or
// expired synthesizes a Degraded tombstone; the first pending epoch with a
// live, still-owing owner stops the walk — nothing newer may overtake it.
func (co *Coordinator) TakeMerged() []MergedReport {
	co.mu.Lock()
	defer co.mu.Unlock()
	epochs := make([]int, 0, len(co.pending)+len(co.gathered))
	seen := make(map[int]bool, len(co.pending)+len(co.gathered))
	for e := range co.pending {
		if !seen[e] {
			seen[e] = true
			epochs = append(epochs, e)
		}
	}
	for e := range co.gathered {
		if !seen[e] {
			seen[e] = true
			epochs = append(epochs, e)
		}
	}
	sort.Ints(epochs)
	var out []MergedReport
	for _, e := range epochs {
		if g, ok := co.gathered[e]; ok {
			out = append(out, MergedReport{Shard: g.shard, Report: g.report})
			delete(co.gathered, e)
			delete(co.pending, e)
			co.emitted, co.emittedValid = e, true
			co.stats.Merged++
			continue
		}
		pe := co.pending[e]
		if !co.health[pe.owner].dead && !pe.expired {
			break
		}
		out = append(out, MergedReport{Shard: pe.owner, Synthesized: true, Report: co.synthLocked(e, pe)})
		delete(co.pending, e)
		co.emitted, co.emittedValid = e, true
		co.stats.Merged++
		co.stats.Synthesized++
	}
	return out
}

// synthLocked fabricates the Degraded tombstone for a span whose owner
// never reported: no analysis, every routed router listed missing. Caller
// holds co.mu.
func (co *Coordinator) synthLocked(epoch int, pe *pendingEpoch) center.WindowReport {
	missing := make([]int, 0, len(pe.routers))
	for r := range pe.routers {
		missing = append(missing, r)
	}
	sort.Ints(missing)
	return center.WindowReport{
		Epoch:          epoch,
		Degraded:       true,
		MissingRouters: missing,
		SpanStart:      epoch - co.part.Slide + 1,
	}
}

// Healths returns the per-shard health ledger, one row per shard.
func (co *Coordinator) Healths() []Health {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]Health, len(co.health))
	for i := range co.health {
		h := &co.health[i]
		out[i] = Health{
			Shard:           i,
			Dead:            h.dead,
			Routed:          h.routed,
			SendErrors:      h.sendErrors,
			Reports:         h.reports,
			Expired:         h.expired,
			LastRoutedEpoch: h.lastRoutedEpoch,
			HasRouted:       h.hasRouted,
			LastReportEpoch: h.lastReportEpoch,
			HasReport:       h.hasReport,
			DegradedCause:   h.degradedCause(),
			HeldEpochs:      h.heldEpochs,
		}
	}
	return out
}

// Stats returns a snapshot of the coordinator's counters.
func (co *Coordinator) Stats() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}

// RegisterMetrics exposes the coordinator under the dcs_shard_* namespace:
// fleet-wide aggregates plus per-shard instance rows (the registry has no
// labels, so instances live in the name — dcs_shard_0_reports_total). All
// values are computed at scrape time under the coordinator's lock; scrapes
// are cold, routing never takes registry locks.
func (co *Coordinator) RegisterMetrics(r *metrics.Registry) {
	sum := func(f func(*healthState) float64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			t := 0.0
			for i := range co.health {
				t += f(&co.health[i])
			}
			return t
		}
	}
	r.GaugeFunc("dcs_shard_routed_total",
		"digest sends attempted across all shards", sum(func(h *healthState) float64 { return float64(h.routed) }))
	r.GaugeFunc("dcs_shard_send_errors_total",
		"digest sends refused by shard transports", sum(func(h *healthState) float64 { return float64(h.sendErrors) }))
	r.GaugeFunc("dcs_shard_reports_total",
		"report envelopes gathered from all shards", sum(func(h *healthState) float64 { return float64(h.reports) }))
	r.GaugeFunc("dcs_shard_expired_total",
		"pending spans expired across all shards", sum(func(h *healthState) float64 { return float64(h.expired) }))
	r.GaugeFunc("dcs_shard_dead",
		"shards currently marked dead", sum(func(h *healthState) float64 {
			if h.dead {
				return 1
			}
			return 0
		}))
	stat := func(f func(*Stats) int64) func() float64 {
		return func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return float64(f(&co.stats))
		}
	}
	r.GaugeFunc("dcs_shard_merged_total",
		"reports emitted by the merge, synthesized included", stat(func(s *Stats) int64 { return s.Merged }))
	r.GaugeFunc("dcs_shard_synthesized_total",
		"degraded tombstones fabricated for dead or expired owners", stat(func(s *Stats) int64 { return s.Synthesized }))
	r.GaugeFunc("dcs_shard_reports_bad_total",
		"report frames that failed to decode or named a bad shard", stat(func(s *Stats) int64 { return s.BadReports }))
	r.GaugeFunc("dcs_shard_reports_duplicate_total",
		"second-or-later reports for one epoch", stat(func(s *Stats) int64 { return s.DuplicateReports }))
	r.GaugeFunc("dcs_shard_pending_epochs",
		"routed epochs awaiting their owner's report", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return float64(len(co.pending))
		})
	r.GaugeFunc("dcs_shard_gathered_epochs",
		"reports gathered and awaiting merge order", func() float64 {
			co.mu.Lock()
			defer co.mu.Unlock()
			return float64(len(co.gathered))
		})
	for i := 0; i < co.part.Shards; i++ {
		// The closures index co.health only after taking the lock; the slice
		// itself is fixed at construction, so the index stays valid.
		pin := func(f func(h *healthState) float64) func() float64 {
			return func() float64 {
				co.mu.Lock()
				defer co.mu.Unlock()
				return f(&co.health[i])
			}
		}
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "routed_total"),
			"digest sends attempted to this shard", pin(func(h *healthState) float64 { return float64(h.routed) }))
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "send_errors_total"),
			"digest sends refused by this shard's transport", pin(func(h *healthState) float64 { return float64(h.sendErrors) }))
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "reports_total"),
			"report envelopes gathered from this shard", pin(func(h *healthState) float64 { return float64(h.reports) }))
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "expired_total"),
			"pending spans of this shard expired by the merge", pin(func(h *healthState) float64 { return float64(h.expired) }))
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "dead"),
			"1 when this shard is marked dead", pin(func(h *healthState) float64 {
				if h.dead {
					return 1
				}
				return 0
			}))
		r.GaugeFunc(metrics.InstanceName("dcs_shard", i, "held_epochs"),
			"quorum-held epochs the shard last reported", pin(func(h *healthState) float64 { return float64(h.heldEpochs) }))
	}
}
