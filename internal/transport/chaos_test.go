package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"dcstream/internal/bitvec"
	"dcstream/internal/faultinject"
)

// TestChaosProxyEventualDeliveryAndIntegrity drives a ReconnectingClient
// through a proxy that flips bits, truncates, drops, duplicates, reorders,
// and delays. Two properties must hold at the server: (1) with sender-side
// retries every digest eventually arrives, and (2) no digest ever arrives
// corrupted — a flipped bit anywhere in a frame must be caught by the CRC
// and cost the connection, never silently change a bitmap.
func TestChaosProxyEventualDeliveryAndIntegrity(t *testing.T) {
	const routers = 30

	var mu sync.Mutex
	first := map[int]*bitvec.Vector{} // first-seen bitmap per router
	corrupt := 0
	srv, err := Serve("127.0.0.1:0", func(m Message, _ net.Addr) {
		d, ok := m.(AlignedDigest)
		if !ok {
			return
		}
		mu.Lock()
		if prev, seen := first[d.RouterID]; seen {
			if !bitvec.Equal(prev, d.Bitmap) {
				corrupt++ // a corrupted frame survived the CRC
			}
		} else {
			first[d.RouterID] = d.Bitmap
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	proxy, err := faultinject.New(srv.Addr(), faultinject.Config{
		Seed:      7,
		Drop:      0.03,
		Duplicate: 0.05,
		Reorder:   0.05,
		Truncate:  0.02,
		BitFlip:   0.03,
		Delay:     0.2,
		ChunkSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client := NewReconnectingClient(proxy.Addr(), ReconnectConfig{
		InitialBackoff: 5 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
	})
	defer client.Close()

	// Deterministic payloads so any mutation is detectable against the
	// sender's copy.
	msgs := make([]AlignedDigest, routers)
	for r := range msgs {
		msgs[r] = AlignedDigest{RouterID: r, Epoch: 1, Bitmap: randomVector(uint64(r+1), 2048)}
	}
	delivered := func(r int) bool {
		mu.Lock()
		defer mu.Unlock()
		return first[r] != nil
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		missing := 0
		for r, m := range msgs {
			if !delivered(r) {
				missing++
				client.Send(m)
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d digests never delivered through chaos", missing)
		}
		client.Flush(time.Second)
		time.Sleep(25 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	if corrupt != 0 {
		t.Fatalf("%d corrupted digests slipped past the CRC", corrupt)
	}
	for r, m := range msgs {
		if !bitvec.Equal(first[r], m.Bitmap) {
			t.Fatalf("router %d digest mutated in flight", r)
		}
	}
	if n := srv.Stats().BadFrames.Load(); n == 0 {
		t.Logf("note: chaos produced no bad frames this run (faults landed between frames)")
	}
}
