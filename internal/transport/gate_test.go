package transport

import (
	"net"
	"testing"
	"time"
)

// testGate builds a gate on a scripted clock the test advances by hand, so
// cool-downs and token refills run in zero wall time.
func testGate(t *testing.T, cfg GateConfig) (*senderGate, *time.Time) {
	t.Helper()
	g := newSenderGate(cfg, new(Stats))
	if g == nil {
		t.Fatalf("gate with config %+v unexpectedly disabled", cfg)
	}
	clock := time.Unix(1000, 0)
	g.now = func() time.Time { return clock }
	return g, &clock
}

func TestGateDisabledIsNil(t *testing.T) {
	if g := newSenderGate(GateConfig{}, new(Stats)); g != nil {
		t.Fatalf("zero GateConfig built a live gate: %+v", g.cfg)
	}
	// And the nil gate admits everything without panicking.
	var g *senderGate
	if !g.admit("a") || g.blocked("a") || g.strike("a") || g.Quarantined() != nil {
		t.Fatal("nil gate is not a transparent pass-through")
	}
}

// TestGateRateLimitQuarantines: a sender that burns its burst and keeps
// sending is quarantined; a paced sender never is.
func TestGateRateLimitQuarantines(t *testing.T) {
	g, clock := testGate(t, GateConfig{Rate: 10, Burst: 5, Cooldown: time.Minute})
	for i := 0; i < 5; i++ {
		if !g.admit("flood") {
			t.Fatalf("admit %d refused inside the burst", i)
		}
	}
	if g.admit("flood") {
		t.Fatal("6th instantaneous admit allowed past a burst of 5")
	}
	if got := g.stats.SendersQuarantined.Load(); got != 1 {
		t.Fatalf("SendersQuarantined=%d, want 1", got)
	}
	if !g.blocked("flood") || g.admit("flood") {
		t.Fatal("flooding sender not quarantined")
	}
	// Three refusals so far: the over-burst admit, blocked, and the retry.
	if got := g.stats.QuarantineDrops.Load(); got != 3 {
		t.Fatalf("QuarantineDrops=%d, want 3", got)
	}

	// A paced sender (one unit per 100ms at Rate 10) sails through.
	for i := 0; i < 50; i++ {
		*clock = clock.Add(100 * time.Millisecond)
		if !g.admit("paced") {
			t.Fatalf("paced sender refused at admit %d", i)
		}
	}
	if got := g.stats.SendersQuarantined.Load(); got != 1 {
		t.Fatalf("paced sender quarantined: SendersQuarantined=%d", got)
	}
}

// TestGateStrikesQuarantine: MaxStrikes malformed units put the sender in
// quarantine even with rate limiting off.
func TestGateStrikesQuarantine(t *testing.T) {
	g, _ := testGate(t, GateConfig{MaxStrikes: 3, Cooldown: time.Minute})
	if g.strike("bad") || g.strike("bad") {
		t.Fatal("quarantined before MaxStrikes")
	}
	if !g.strike("bad") {
		t.Fatal("MaxStrikes-th strike did not quarantine")
	}
	if !g.blocked("bad") {
		t.Fatal("struck-out sender not blocked")
	}
	// With no Rate configured, a sender in good standing is never refused.
	if !g.admit("good") || g.blocked("good") {
		t.Fatal("clean sender refused by a strikes-only gate")
	}
	if got := g.stats.Strikes.Load(); got != 3 {
		t.Fatalf("Strikes=%d, want 3", got)
	}
}

// TestGateParole: after the cool-down the sender is released with strikes
// forgiven and bucket refilled — and can earn a fresh sentence.
func TestGateParole(t *testing.T) {
	g, clock := testGate(t, GateConfig{Rate: 10, Burst: 2, MaxStrikes: 2, Cooldown: time.Minute})
	g.strike("r1")
	g.strike("r1")
	if !g.blocked("r1") {
		t.Fatal("not quarantined after MaxStrikes")
	}
	*clock = clock.Add(59 * time.Second)
	if !g.blocked("r1") {
		t.Fatal("paroled before the cool-down elapsed")
	}
	*clock = clock.Add(2 * time.Second)
	if g.blocked("r1") || !g.admit("r1") {
		t.Fatal("not paroled after the cool-down")
	}
	if got := g.stats.Paroles.Load(); got != 1 {
		t.Fatalf("Paroles=%d, want 1", got)
	}
	if got := g.stats.QuarantinedSenders.Load(); got != 0 {
		t.Fatalf("QuarantinedSenders gauge=%d after parole, want 0", got)
	}
	// Strikes were forgiven: one new strike does not re-quarantine...
	if g.strike("r1") {
		t.Fatal("single post-parole strike re-quarantined (strikes not reset)")
	}
	// ...but a full set does, counting a second sentence.
	if !g.strike("r1") {
		t.Fatal("repeat offender not re-quarantined")
	}
	if got := g.stats.SendersQuarantined.Load(); got != 2 {
		t.Fatalf("SendersQuarantined=%d, want 2 sentences", got)
	}
}

// TestGateSendersIndependent: one sender's quarantine never affects another.
func TestGateSendersIndependent(t *testing.T) {
	g, _ := testGate(t, GateConfig{Rate: 1, Burst: 1, MaxStrikes: 1, Cooldown: time.Minute})
	g.strike("evil")
	if !g.blocked("evil") {
		t.Fatal("striker not quarantined at MaxStrikes=1")
	}
	if !g.admit("innocent") {
		t.Fatal("bystander refused")
	}
	q := g.Quarantined()
	if len(q) != 1 || q[0] != "evil" {
		t.Fatalf("Quarantined()=%v, want [evil]", q)
	}
}

func TestSenderKey(t *testing.T) {
	tcp := &net.TCPAddr{IP: net.ParseIP("10.1.2.3"), Port: 4444}
	udp := &net.UDPAddr{IP: net.ParseIP("10.1.2.3"), Port: 5555}
	if k1, k2 := senderKey(tcp), senderKey(udp); k1 != "10.1.2.3" || k1 != k2 {
		t.Fatalf("senderKey: tcp=%q udp=%q, want both 10.1.2.3 (port-independent)", k1, k2)
	}
	if k := senderKey(nil); k != "" {
		t.Fatalf("senderKey(nil)=%q", k)
	}
}

// TestServerGateQuarantinesGarbageSender drives the wired-up TCP path: a
// sender spraying malformed frames is quarantined after MaxStrikes and its
// reconnects are refused, while a clean collector keeps delivering.
func TestServerGateQuarantinesGarbageSender(t *testing.T) {
	var got int
	srv, err := ServeConfig("127.0.0.1:0", func(m Message, from net.Addr) { got++ },
		ServerConfig{Gate: GateConfig{MaxStrikes: 2, Cooldown: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	spray := func() {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte("DCS1garbagegarbagegarbage")); err != nil {
			return // already refused — fine
		}
		// Wait for the server to kill the connection (bad frame).
		buf := make([]byte, 1)
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		conn.Read(buf)
	}
	spray()
	spray() // second strike: quarantined

	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.Stats().SendersQuarantined.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sender never quarantined; stats %+v", srv.Stats().Snapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}
	q := srv.QuarantinedSenders()
	if len(q) != 1 || q[0] != "127.0.0.1" {
		t.Fatalf("QuarantinedSenders()=%v", q)
	}
	// 127.0.0.1 is quarantined, and on loopback that is also our clean
	// client — its frames must now be refused, proving the accept/admit
	// checks actually fire. (Per-host keying is the point: distinct hosts
	// stay unaffected, per TestGateSendersIndependent.)
	c, err := Dial(srv.Addr(), time.Second)
	if err == nil {
		defer c.Close()
		c.Send(AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 256)})
		time.Sleep(50 * time.Millisecond)
	}
	if got != 0 {
		t.Fatalf("quarantined host delivered %d frames", got)
	}
	if srv.Stats().QuarantineDrops.Load() == 0 {
		t.Fatal("no quarantine drops counted for the refused connection")
	}
}

// TestUDPServerGateRateLimit drives the wired-up UDP path: a flooding sender
// is quarantined mid-burst and its later datagrams dropped, all visible in
// the stats.
func TestUDPServerGateRateLimit(t *testing.T) {
	var got int
	srv, err := ServeUDPConfig("127.0.0.1:0", func(m Message, from net.Addr) { got++ },
		UDPServerConfig{Gate: GateConfig{Rate: 1, Burst: 3, Cooldown: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialUDP(srv.Addr(), UDPClientConfig{SenderID: 1, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if err := c.Send(AlignedDigest{RouterID: 1, Epoch: i + 1, Bitmap: randomVector(uint64(i+1), 256)}); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil { // one datagram per digest
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := srv.Stats().Snapshot()
		// Burst of 3 admitted, the rest refused (UDP is lossy, so only the
		// quarantine sentence itself is a hard expectation).
		if s.SendersQuarantined == 1 && s.DatagramsIn <= 3 && s.QuarantineDrops > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flooder never quarantined; stats %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got > 3 {
		t.Fatalf("%d frames delivered past a burst of 3", got)
	}
}
