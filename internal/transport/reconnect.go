package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ErrBufferFull reports a ReconnectingClient whose resend buffer is at
// capacity; the message was dropped on the collector side.
var ErrBufferFull = errors.New("transport: reconnect buffer full")

// ErrClientClosed reports a Send on a closed ReconnectingClient.
var ErrClientClosed = errors.New("transport: client closed")

// ReconnectConfig tunes a ReconnectingClient. The zero value is usable.
type ReconnectConfig struct {
	// DialTimeout bounds each connection attempt. Zero means 2 seconds.
	DialTimeout time.Duration
	// WriteTimeout bounds each frame write. Zero means 10 seconds;
	// negative disables the deadline.
	WriteTimeout time.Duration
	// InitialBackoff is the delay after the first failed dial; every
	// consecutive failure doubles it up to MaxBackoff, and any success
	// resets it. Zeros mean 50ms and 5s.
	InitialBackoff, MaxBackoff time.Duration
	// Buffer is the maximum number of undelivered messages held while the
	// center is unreachable. Zero means 1024. Digests are small (KBs), so a
	// deep buffer rides out a long center restart cheaply.
	Buffer int
	// Stats, when non-nil, receives the client's counters.
	Stats *Stats
}

func (c ReconnectConfig) withDefaults() ReconnectConfig {
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.InitialBackoff == 0 {
		c.InitialBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Buffer == 0 {
		c.Buffer = 1024
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	return c
}

// ReconnectingClient is a collector-side client that survives analysis-center
// restarts: Send enqueues, a background sender dials with capped exponential
// backoff, and a message leaves the buffer only after its frame was written
// in full — a write cut short by a dying connection is retried on the next
// one. The protocol is one-way, so a reader goroutine watches each
// connection for the center's FIN/RST and marks it dead immediately instead
// of letting the next Send discover it a message too late.
//
// Delivery is at-least-once from the client's perspective: a frame fully
// handed to the kernel just as the center dies can still be lost (there are
// no application-level acks), but a center outage of any length between
// epochs loses nothing while the buffer has room.
type ReconnectingClient struct {
	addr string
	cfg  ReconnectConfig

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message // guarded by mu
	closed bool      // guarded by mu
	// abandoned is how many enqueued messages Close threw away; a Flush
	// racing (or following) Close reports them instead of claiming
	// delivery. guarded by mu
	abandoned int

	closedCh chan struct{}
	done     chan struct{}
	// wakeCh kicks the sender out of a backoff sleep early (Flush posts to
	// it); buffered so a kick with no sleeper is remembered, not lost.
	wakeCh chan struct{}
}

// NewReconnectingClient starts a client for the given center address. It
// never dials eagerly, so a collector may start before its center.
func NewReconnectingClient(addr string, cfg ReconnectConfig) *ReconnectingClient {
	c := &ReconnectingClient{
		addr:     addr,
		cfg:      cfg.withDefaults(),
		closedCh: make(chan struct{}),
		done:     make(chan struct{}),
		wakeCh:   make(chan struct{}, 1),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// Stats returns the client's counters.
func (c *ReconnectingClient) Stats() *Stats { return c.cfg.Stats }

// Send enqueues one message for delivery. It never blocks on the network:
// the only errors are a full buffer (message dropped, counted) or a closed
// client.
func (c *ReconnectingClient) Send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if len(c.queue) >= c.cfg.Buffer {
		c.cfg.Stats.DroppedSends.Add(1)
		return fmt.Errorf("%w (%d messages)", ErrBufferFull, len(c.queue))
	}
	c.queue = append(c.queue, m)
	c.cond.Broadcast()
	return nil
}

// Pending returns the number of undelivered messages.
func (c *ReconnectingClient) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Flush blocks until every enqueued message has been written to the center,
// the client is closed, or the timeout elapses; it returns the number of
// messages not delivered. A sender mid-backoff is woken immediately, so a
// center that just came back is retried now rather than after the remaining
// backoff sleep.
//
// A zero return means every message enqueued before the call was written.
// If Close ran (before or during the Flush), the messages Close abandoned
// are counted in the return value — a concurrent Close empties the queue,
// but that is abandonment, not delivery, and Flush never reports it as
// success. The wait is condition-driven: Flush parks on the queue's
// condition variable and wakes on every pop-to-empty, Close, or timeout,
// never polling.
func (c *ReconnectingClient) Flush(timeout time.Duration) int {
	c.kick()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	done := make(chan struct{})
	defer close(done)
	expired := false
	go func() {
		select {
		case <-timer.C:
			c.mu.Lock()
			expired = true
			c.mu.Unlock()
			c.cond.Broadcast()
		case <-done:
		}
	}()
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 && !c.closed && !expired {
		c.cond.Wait()
	}
	return c.abandoned + len(c.queue)
}

// kick wakes a sender sleeping out a backoff; a no-op when none is.
func (c *ReconnectingClient) kick() {
	select {
	case c.wakeCh <- struct{}{}:
	default:
	}
}

// Close stops the sender and reports how many enqueued messages were never
// delivered (also counted in Stats.AbandonedOnClose); call Flush first when
// delivery matters. Closing an already-closed client returns 0, nil.
func (c *ReconnectingClient) Close() (abandoned int, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, nil
	}
	c.closed = true
	abandoned = len(c.queue)
	c.abandoned = abandoned
	c.queue = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	if abandoned > 0 {
		c.cfg.Stats.AbandonedOnClose.Add(int64(abandoned))
	}
	close(c.closedCh)
	<-c.done
	return abandoned, nil
}

// head blocks until a message is available and returns it without removing
// it; ok is false once the client is closed.
func (c *ReconnectingClient) head() (m Message, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) == 0 && !c.closed {
		c.cond.Wait()
	}
	if c.closed {
		return nil, false
	}
	return c.queue[0], true
}

// pop removes the head after a successful write (or a permanent encoding
// rejection) and wakes Flush waiters once the queue drains.
func (c *ReconnectingClient) pop() {
	c.mu.Lock()
	if len(c.queue) > 0 {
		c.queue = c.queue[1:]
	}
	if len(c.queue) == 0 {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// sleep waits for d, a Flush kick, or until the client closes; it reports
// whether the client is still open.
func (c *ReconnectingClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.wakeCh:
		return true
	case <-c.closedCh:
		return false
	}
}

func (c *ReconnectingClient) run() {
	defer close(c.done)
	var conn net.Conn
	var connDead chan struct{}
	defer func() {
		if conn != nil {
			//dcslint:ignore errcrit sender teardown; undelivered frames stay queued and are counted by Close, not lost here
			conn.Close()
		}
	}()
	backoff := c.cfg.InitialBackoff
	everConnected := false
	headAttempted := false // head already written (possibly partially) on a dead conn?
	for {
		m, ok := c.head()
		if !ok {
			return
		}
		// A connection the monitor declared dead is useless even if a
		// write into its kernel buffer would "succeed".
		if conn != nil {
			select {
			case <-connDead:
				//dcslint:ignore errcrit the monitor already declared this connection dead; the head message stays queued for the next one
				conn.Close()
				conn = nil
			default:
			}
		}
		if conn == nil {
			// Drain a stale Flush kick posted while no sender was sleeping:
			// this dial attempt satisfies its intent, so it must not also
			// cut short the backoff sleep if the dial fails — a remembered
			// token would otherwise degrade capped backoff into a near-hot
			// dial loop under repeated Flush calls. Only kicks posted after
			// this point (i.e. while the sender actually sleeps) wake it.
			select {
			case <-c.wakeCh:
			default:
			}
			c.cfg.Stats.DialAttempts.Add(1)
			nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
			if err != nil {
				if !c.sleep(backoff) {
					return
				}
				backoff *= 2
				if backoff > c.cfg.MaxBackoff {
					backoff = c.cfg.MaxBackoff
				}
				continue
			}
			conn = nc
			connDead = make(chan struct{})
			go monitorConn(nc, connDead)
			if everConnected {
				c.cfg.Stats.Reconnects.Add(1)
			}
			everConnected = true
			backoff = c.cfg.InitialBackoff
			if headAttempted {
				c.cfg.Stats.Resends.Add(1)
			}
		}
		if c.cfg.WriteTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout)); err != nil {
				// Arming the deadline failed, so the fd is already dead:
				// writing undeadlined could block forever. Retry the head on
				// a fresh connection exactly like a failed write.
				//dcslint:ignore errcrit closing a connection that just failed SetWriteDeadline; the head message stays queued
				conn.Close()
				conn = nil
				continue
			}
		}
		headAttempted = true
		if err := Write(conn, m); err != nil {
			if !errors.Is(err, errStreamWrite) {
				// Encoding rejection: no bytes hit the wire and no retry can
				// ever succeed, so drop the message instead of redialing
				// forever on an unserializable head.
				headAttempted = false
				c.cfg.Stats.DroppedSends.Add(1)
				c.pop()
				continue
			}
			//dcslint:ignore errcrit the write already failed and is being retried; the close error adds nothing
			conn.Close()
			conn = nil
			continue // head stays queued; retried on the next connection
		}
		headAttempted = false
		c.cfg.Stats.FramesOut.Add(1)
		c.pop()
	}
}

// monitorConn watches a one-way connection for the peer closing it. The
// center never sends data, so any read completion means the connection is
// finished; closing dead lets the sender notice before its next write.
func monitorConn(conn net.Conn, dead chan struct{}) {
	var buf [1]byte
	conn.Read(buf[:])
	close(dead)
}
