package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Datagram layout (little-endian):
//
//	magic    uint32  'D','C','S','U'
//	version  uint8   1
//	flags    uint8   reserved, must be zero
//	count    uint16  frames in this datagram (>= 1)
//	sender   uint32  collector-chosen sender id
//	seq      uint64  per-sender datagram sequence number, starting at 1
//	frames   count x frame (byte-identical to the TCP stream frames,
//	         including the per-frame CRC-32C)
//
// Batching many digest frames into one datagram amortizes the per-packet
// syscall and header cost that dominates the TCP path at high fan-in; the
// per-frame CRC is reused unchanged so a bit flipped in flight still fails
// loudly per digest instead of perturbing correlation statistics. The
// sequence number lets the receiver estimate loss and spot reordered or
// duplicated datagrams; duplicated frames are delivered anyway — the
// center's duplicate accounting already resolves them, and the quorum gate
// already analyzes degraded-never-wrong when loss leaves routers absent.
const (
	udpMagic     = 0x55534344 // "DCSU"
	udpVersion   = 1
	udpHeaderLen = 20

	// maxDatagram is the UDP payload ceiling (65535 minus IP and UDP
	// headers); the codec never emits, and the prefilter never accepts,
	// anything larger.
	maxDatagram = 65507

	// maxDatagramFrames bounds the declared frame count. The true ceiling
	// is maxDatagram/headerLen (a frame costs at least its 13-byte header),
	// so anything above this is garbage the prefilter rejects for free.
	maxDatagramFrames = maxDatagram / headerLen
)

// DatagramHeader is the decoded per-datagram envelope.
type DatagramHeader struct {
	// Sender identifies the sending collector; the receiver keys its
	// sequence accounting by it. Independent of the RouterID inside each
	// digest (one sender may forward for many routers).
	Sender uint32
	// Seq is the sender's datagram sequence number, starting at 1. Gaps
	// mean loss; repeats mean duplication or reordering.
	Seq uint64
	// Count is how many frames the datagram declares.
	Count int
}

// putDatagramHeader writes h into the first udpHeaderLen bytes of buf.
func putDatagramHeader(buf []byte, h DatagramHeader) {
	binary.LittleEndian.PutUint32(buf[0:], udpMagic)
	buf[4] = udpVersion
	buf[5] = 0
	binary.LittleEndian.PutUint16(buf[6:], uint16(h.Count))
	binary.LittleEndian.PutUint32(buf[8:], h.Sender)
	binary.LittleEndian.PutUint64(buf[12:], h.Seq)
}

// prefilterDatagram is the cheap acceptance gate: magic, version, declared
// frame count, and minimum length are checked with nothing but index
// arithmetic, so port scans and stray traffic are rejected before a single
// byte is allocated or hashed.
func prefilterDatagram(buf []byte) bool {
	if len(buf) < udpHeaderLen || len(buf) > maxDatagram {
		return false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != udpMagic || buf[4] != udpVersion || buf[5] != 0 {
		return false
	}
	count := int(binary.LittleEndian.Uint16(buf[6:]))
	if count == 0 || count > maxDatagramFrames {
		return false
	}
	// Every declared frame costs at least its header; a shorter datagram is
	// lying about its count.
	return len(buf)-udpHeaderLen >= count*headerLen
}

// parseDatagramHeader decodes the envelope of a datagram that already
// passed prefilterDatagram.
func parseDatagramHeader(buf []byte) DatagramHeader {
	return DatagramHeader{
		Sender: binary.LittleEndian.Uint32(buf[8:]),
		Seq:    binary.LittleEndian.Uint64(buf[12:]),
		Count:  int(binary.LittleEndian.Uint16(buf[6:])),
	}
}

// appendFrame encodes m as one frame appended to buf — the in-memory
// counterpart of Write, used to pack several frames into one datagram.
// Malformed digests are rejected before any bytes are appended. Aligned
// digests (the per-packet hot path: one tiny frame per digest, hundreds per
// datagram) are serialized straight into buf with no intermediate payload
// allocation; the header is back-patched once the payload length and CRC are
// known.
func appendFrame(buf []byte, m Message) ([]byte, error) {
	start := len(buf)
	var hdr [headerLen]byte
	switch d := m.(type) {
	case AlignedDigest:
		if d.Bitmap == nil {
			return buf, fmt.Errorf("transport: aligned digest for router %d has nil bitmap", d.RouterID)
		}
		var fixed [8]byte
		binary.LittleEndian.PutUint32(fixed[0:], uint32(d.RouterID))
		binary.LittleEndian.PutUint32(fixed[4:], uint32(d.Epoch))
		buf = append(buf, hdr[:]...)
		buf = append(buf, fixed[:]...)
		buf = putVector(buf, d.Bitmap)
		payload := buf[start+headerLen:]
		binary.LittleEndian.PutUint32(buf[start:], magic)
		buf[start+4] = typeAligned
		binary.LittleEndian.PutUint32(buf[start+5:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+9:], crc32.Checksum(payload, castagnoli))
		return buf, nil
	case UnalignedDigest:
		payload, err := encodeUnaligned(d)
		if err != nil {
			return buf, err
		}
		binary.LittleEndian.PutUint32(hdr[0:], magic)
		hdr[4] = typeUnaligned
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[9:], crc32.Checksum(payload, castagnoli))
		buf = append(buf, hdr[:]...)
		return append(buf, payload...), nil
	case Report:
		if len(d.Payload) > maxFrame {
			return buf, fmt.Errorf("transport: report payload of %d bytes exceeds the %d-byte frame limit", len(d.Payload), maxFrame)
		}
		binary.LittleEndian.PutUint32(hdr[0:], magic)
		hdr[4] = typeReport
		binary.LittleEndian.PutUint32(hdr[5:], uint32(len(d.Payload)))
		binary.LittleEndian.PutUint32(hdr[9:], crc32.Checksum(d.Payload, castagnoli))
		buf = append(buf, hdr[:]...)
		return append(buf, d.Payload...), nil
	default:
		return buf, fmt.Errorf("transport: unknown message type %T", m)
	}
}

// frameWireLen is how many datagram bytes m will occupy once framed, or an
// error for digests Write itself would reject.
func frameWireLen(m Message) (int, error) {
	switch d := m.(type) {
	case AlignedDigest:
		if d.Bitmap == nil {
			return 0, fmt.Errorf("transport: aligned digest for router %d has nil bitmap", d.RouterID)
		}
		return headerLen + 8 + 4 + len(d.Bitmap.Words())*8, nil
	case UnalignedDigest:
		if d.Digest == nil {
			return 0, fmt.Errorf("transport: unaligned digest message has nil digest")
		}
		n := headerLen + 16
		for _, group := range d.Digest.Rows {
			for _, row := range group {
				if row == nil {
					return 0, fmt.Errorf("transport: unaligned digest from router %d has nil array", d.Digest.RouterID)
				}
				n += 4 + len(row.Words())*8
			}
		}
		return n, nil
	case Report:
		return headerLen + len(d.Payload), nil
	default:
		return 0, fmt.Errorf("transport: unknown message type %T", m)
	}
}

// readFrame decodes one frame at the start of buf and returns the message
// and the remaining bytes — the in-memory counterpart of Read for frames
// already sitting in a received datagram.
func readFrame(buf []byte) (Message, []byte, error) {
	if len(buf) < headerLen {
		return nil, nil, fmt.Errorf("%w: truncated frame header", ErrBadFrame)
	}
	if binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	length := binary.LittleEndian.Uint32(buf[5:])
	if length > maxFrame {
		return nil, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrBadFrame, length)
	}
	if uint32(len(buf)-headerLen) < length {
		return nil, nil, fmt.Errorf("%w: truncated frame payload", ErrBadFrame)
	}
	payload := buf[headerLen : headerLen+int(length)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(buf[9:]); got != want {
		return nil, nil, fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrBadFrame, got, want)
	}
	rest := buf[headerLen+int(length):]
	switch buf[4] {
	case typeAligned:
		m, err := decodeAligned(payload)
		return m, rest, err
	case typeUnaligned:
		m, err := decodeUnaligned(payload)
		return m, rest, err
	case typeReport:
		// The payload aliases the receive buffer, which the read loop reuses
		// for the next datagram; a report is retained past this frame walk, so
		// it must own its bytes.
		return Report{Payload: append([]byte(nil), payload...)}, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, buf[4])
	}
}

// decodeDatagram walks a prefiltered datagram's frames, calling emit for
// each decoded message in order. It returns the envelope, how many frames
// decoded cleanly, and the first frame error (frames before the error were
// already emitted — good digests are never discarded because a later frame
// in the same datagram was corrupt; frames after it are unreachable because
// the stream offset is lost).
func decodeDatagram(buf []byte, emit func(Message)) (DatagramHeader, int, error) {
	h := parseDatagramHeader(buf)
	rest := buf[udpHeaderLen:]
	for i := 0; i < h.Count; i++ {
		m, r, err := readFrame(rest)
		if err != nil {
			return h, i, fmt.Errorf("frame %d/%d: %w", i+1, h.Count, err)
		}
		emit(m)
		rest = r
	}
	if len(rest) != 0 {
		return h, h.Count, fmt.Errorf("%w: %d trailing bytes after %d frames", ErrBadFrame, len(rest), h.Count)
	}
	return h, h.Count, nil
}
