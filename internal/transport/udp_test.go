package transport

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"dcstream/internal/bitvec"
	"dcstream/internal/unaligned"
)

// collectUDP starts a UDPServer that records every delivered message.
func collectUDP(t *testing.T, cfg UDPServerConfig) (*UDPServer, func() []Message) {
	t.Helper()
	var mu sync.Mutex
	var msgs []Message
	srv, err := ServeUDPConfig("127.0.0.1:0", func(m Message, _ net.Addr) {
		mu.Lock()
		msgs = append(msgs, m)
		mu.Unlock()
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, func() []Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]Message(nil), msgs...)
	}
}

// waitFor polls until cond holds or the deadline passes. UDP delivery on
// loopback is reliable in practice but asynchronous, so tests wait rather
// than sleep.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestUDPRoundTripBatchesFrames(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{
		SenderID:         7,
		MaxDatagramBytes: 60000,
		FlushInterval:    -1, // explicit flush only: the whole burst must batch
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 40
	want := make([]*bitvec.Vector, n)
	for i := 0; i < n; i++ {
		want[i] = randomVector(uint64(i+1), 512)
		if err := c.Send(AlignedDigest{RouterID: i, Epoch: 3, Bitmap: want[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(got()) == n })

	for _, m := range got() {
		d, ok := m.(AlignedDigest)
		if !ok {
			t.Fatalf("delivered %T", m)
		}
		if d.Epoch != 3 || !bitvec.Equal(d.Bitmap, want[d.RouterID]) {
			t.Fatalf("router %d bitmap corrupted in flight", d.RouterID)
		}
	}

	// The entire burst fits one datagram at this budget: batching must have
	// produced exactly one send, not n.
	cs, ss := c.Stats().Snapshot(), srv.Stats().Snapshot()
	if cs.DatagramsOut != 1 || cs.FramesOut != n {
		t.Fatalf("client sent %d datagrams / %d frames, want 1 / %d", cs.DatagramsOut, cs.FramesOut, n)
	}
	if ss.DatagramsIn != 1 || ss.FramesIn != n || ss.DatagramsRejected != 0 {
		t.Fatalf("server stats %+v, want one datagram with %d frames", ss, n)
	}
}

func TestUDPUnalignedRoundTrip(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{MaxDatagramBytes: 60000, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	dg := &unaligned.Digest{RouterID: 5, Rows: make([][]*bitvec.Vector, 3)}
	seed := uint64(100)
	for g := range dg.Rows {
		dg.Rows[g] = make([]*bitvec.Vector, 4)
		for a := range dg.Rows[g] {
			seed++
			dg.Rows[g][a] = randomVector(seed, 1024)
		}
	}
	if err := c.Send(UnalignedDigest{Epoch: 9, Digest: dg}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(got()) == 1 })
	m := got()[0].(UnalignedDigest)
	if m.Epoch != 9 || m.Digest.RouterID != 5 {
		t.Fatal("header mismatch")
	}
	for g := range dg.Rows {
		for a := range dg.Rows[g] {
			if !bitvec.Equal(m.Digest.Rows[g][a], dg.Rows[g][a]) {
				t.Fatalf("row (%d,%d) mismatch", g, a)
			}
		}
	}
}

// TestUDPSendSplitsAtBudget proves a frame that would overflow the datagram
// budget flushes the buffered frames first instead of building an oversized
// datagram.
func TestUDPSendSplitsAtBudget(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{MaxDatagramBytes: 400, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Each frame is 13+8+4+16*8 = 153 bytes; two fit a 400-byte budget with
	// the 20-byte header, three do not.
	for i := 0; i < 6; i++ {
		if err := c.Send(AlignedDigest{RouterID: i, Epoch: 1, Bitmap: randomVector(uint64(i+1), 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(got()) == 6 })
	if out := c.Stats().Snapshot().DatagramsOut; out != 3 {
		t.Fatalf("sent %d datagrams, want 3 (two 153-byte frames per 400-byte budget)", out)
	}
	if lost := srv.Stats().Snapshot().DatagramsLost; lost != 0 {
		t.Fatalf("loopback delivery counted %d lost datagrams", lost)
	}
}

func TestUDPOversizedFrameRejected(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{MaxDatagramBytes: 256, FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Send(AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 1<<15)})
	if err == nil || !strings.Contains(err.Error(), "datagram budget") {
		t.Fatalf("oversized frame: %v", err)
	}
	// The rejection must not have staged partial bytes: a following small
	// frame still round-trips alone.
	if err := c.Send(AlignedDigest{RouterID: 2, Epoch: 1, Bitmap: randomVector(2, 64)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(got()) == 1 })
	if d := got()[0].(AlignedDigest); d.RouterID != 2 {
		t.Fatalf("delivered router %d, want 2", d.RouterID)
	}
}

// TestUDPPrefilterRejectsGarbage throws non-protocol datagrams at the server
// and checks they are counted rejected without reaching the handler — the
// cheap gate port scans and stray traffic hit.
func TestUDPPrefilterRejectsGarbage(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	short := []byte{1, 2, 3}
	badMagic := make([]byte, udpHeaderLen+headerLen)
	putDatagramHeader(badMagic, DatagramHeader{Count: 1, Seq: 1})
	badMagic[0] = 'X'
	badVersion := make([]byte, udpHeaderLen+headerLen)
	putDatagramHeader(badVersion, DatagramHeader{Count: 1, Seq: 1})
	badVersion[4] = 99
	zeroCount := make([]byte, udpHeaderLen+headerLen)
	putDatagramHeader(zeroCount, DatagramHeader{Count: 0, Seq: 1})
	lyingCount := make([]byte, udpHeaderLen+headerLen)
	putDatagramHeader(lyingCount, DatagramHeader{Count: 9, Seq: 1}) // 9 frames cannot fit one header's worth of bytes

	for _, p := range [][]byte{short, badMagic, badVersion, zeroCount, lyingCount} {
		if _, err := conn.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().Snapshot().DatagramsRejected == 5 })
	s := srv.Stats().Snapshot()
	if s.DatagramsIn != 0 || s.FramesIn != 0 || len(got()) != 0 {
		t.Fatalf("garbage reached past the prefilter: %+v, %d messages delivered", s, len(got()))
	}
}

// TestUDPCorruptFrameCountedBad flips payload bytes inside an otherwise valid
// datagram: earlier clean frames must still be delivered, the corrupt one
// counted in BadFrames.
func TestUDPCorruptFrameCountedBad(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	buf := make([]byte, udpHeaderLen)
	putDatagramHeader(buf, DatagramHeader{Sender: 1, Seq: 1, Count: 2})
	buf, err = appendFrame(buf, AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 256)})
	if err != nil {
		t.Fatal(err)
	}
	cut := len(buf)
	buf, err = appendFrame(buf, AlignedDigest{RouterID: 2, Epoch: 1, Bitmap: randomVector(2, 256)})
	if err != nil {
		t.Fatal(err)
	}
	buf[cut+headerLen] ^= 0xFF // corrupt the second frame's payload
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().Snapshot().BadFrames == 1 })
	s := srv.Stats().Snapshot()
	if s.DatagramsIn != 1 || s.FramesIn != 1 {
		t.Fatalf("stats %+v, want 1 datagram in, 1 clean frame", s)
	}
	msgs := got()
	if len(msgs) != 1 || msgs[0].(AlignedDigest).RouterID != 1 {
		t.Fatalf("delivered %d messages, want only the clean first frame", len(msgs))
	}
}

// TestUDPSequenceAccounting hand-crafts datagrams with gappy and repeated
// sequence numbers and checks the lost/late ledgers.
func TestUDPSequenceAccounting(t *testing.T) {
	srv, _ := collectUDP(t, UDPServerConfig{})
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	send := func(sender uint32, seq uint64) {
		t.Helper()
		buf := make([]byte, udpHeaderLen)
		putDatagramHeader(buf, DatagramHeader{Sender: sender, Seq: seq, Count: 1})
		buf, err := appendFrame(buf, AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(seq, 64)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}

	send(1, 1) // clean start
	send(1, 4) // 2 and 3 lost
	send(1, 3) // one of them shows up late
	send(1, 4) // duplicate
	send(2, 3) // second sender first heard at 3: leading 1 and 2 lost
	waitFor(t, 2*time.Second, func() bool { return srv.Stats().Snapshot().DatagramsIn == 5 })
	s := srv.Stats().Snapshot()
	if s.DatagramsLost != 4 || s.DatagramsLate != 2 {
		t.Fatalf("lost=%d late=%d, want lost=4 (2,3 from sender 1; 1,2 from sender 2) late=2", s.DatagramsLost, s.DatagramsLate)
	}
	// Late and duplicated frames are still delivered; the center's duplicate
	// accounting is the place that resolves them.
	if s.FramesIn != 5 {
		t.Fatalf("FramesIn=%d, want 5 (late and duplicate frames delivered)", s.FramesIn)
	}
}

// TestUDPPeerMapBoundedUnderSenderChurn floods the server with datagrams
// from distinct forged sender ids — the unbounded-map leak scenario — and
// proves the sequence-accounting map stays within MaxPeers with every
// eviction counted.
func TestUDPPeerMapBoundedUnderSenderChurn(t *testing.T) {
	const maxPeers = 16
	srv, _ := collectUDP(t, UDPServerConfig{MaxPeers: maxPeers})
	conn, err := net.Dial("udp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const churn = 200
	for i := 0; i < churn; i++ {
		buf := make([]byte, udpHeaderLen)
		putDatagramHeader(buf, DatagramHeader{Sender: uint32(i + 1), Seq: 1, Count: 1})
		buf, err := appendFrame(buf, AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(uint64(i+1), 64)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return srv.Stats().Snapshot().DatagramsIn == churn })

	if n := srv.trackedPeers(); n > maxPeers {
		t.Fatalf("peers map holds %d entries after %d-sender churn, want <= %d", n, churn, maxPeers)
	}
	s := srv.Stats().Snapshot()
	if want := int64(churn - maxPeers); s.PeerEvictions != want {
		t.Fatalf("PeerEvictions=%d, want %d (every entry past the cap evicted and counted)", s.PeerEvictions, want)
	}
}

// TestUDPPeerEvictionPolicy drives accountSeq directly with a scripted clock
// to pin the eviction order: entries idle past the quarantine cooldown are
// all swept first; when nothing is idle, exactly the least-recently-seen
// entry goes.
func TestUDPPeerEvictionPolicy(t *testing.T) {
	srv, _ := collectUDP(t, UDPServerConfig{MaxPeers: 3})
	clock := time.Unix(1000, 0)
	srv.now = func() time.Time { return clock }

	seen := func(sender uint32) { srv.accountSeq(DatagramHeader{Sender: sender, Seq: 1, Count: 1}) }
	seen(1)
	clock = clock.Add(time.Second)
	seen(2)
	clock = clock.Add(time.Second)
	seen(3)

	// Nothing is idle past the 30s cooldown yet, so admitting sender 4 must
	// evict only the least-recently-seen entry: sender 1.
	clock = clock.Add(time.Second)
	seen(4)
	if n := srv.trackedPeers(); n != 3 {
		t.Fatalf("tracked %d peers, want 3", n)
	}
	srv.mu.Lock()
	_, oneAlive := srv.peers[1]
	_, twoAlive := srv.peers[2]
	srv.mu.Unlock()
	if oneAlive || !twoAlive {
		t.Fatalf("LRU eviction took the wrong victim: sender1 alive=%v sender2 alive=%v", oneAlive, twoAlive)
	}
	if got := srv.Stats().Snapshot().PeerEvictions; got != 1 {
		t.Fatalf("PeerEvictions=%d after LRU eviction, want 1", got)
	}

	// Let 2 and 3 go idle past the 30s cooldown while 4 stays fresh, then
	// admit sender 5: both idle entries are swept in one pass.
	clock = clock.Add(30 * time.Second)
	seen(4)
	clock = clock.Add(time.Second)
	seen(5)
	srv.mu.Lock()
	_, fourAlive := srv.peers[4]
	_, fiveAlive := srv.peers[5]
	n := len(srv.peers)
	srv.mu.Unlock()
	if !fourAlive || !fiveAlive || n != 2 {
		t.Fatalf("after idle sweep: %d peers, sender4 alive=%v sender5 alive=%v; want 2/true/true", n, fourAlive, fiveAlive)
	}
	if got := srv.Stats().Snapshot().PeerEvictions; got != 3 {
		t.Fatalf("PeerEvictions=%d after idle sweep, want 3 (1 LRU + 2 idle)", got)
	}
}

// TestUDPSenderRestartResetsMark pins the restart heuristic at the
// accounting layer with a scripted clock: a small sequence number far below
// the high-water mark after a quiet gap resets the mark instead of branding
// the whole renumbered stream late — and the guards (no quiet gap, young
// stream, detection disabled) all still count late.
func TestUDPSenderRestartResetsMark(t *testing.T) {
	srv, _ := collectUDP(t, UDPServerConfig{})
	clock := time.Unix(2000, 0)
	srv.now = func() time.Time { return clock }

	seen := func(sender uint32, seq uint64) { srv.accountSeq(DatagramHeader{Sender: sender, Seq: seq, Count: 1}) }
	stats := func() Snapshot { return srv.Stats().Snapshot() }

	// Ramp sender 1 well past restartSeqMax.
	for seq := uint64(1); seq <= 200; seq++ {
		seen(1, seq)
	}
	// A reordered duplicate with no quiet gap is late, not a restart.
	seen(1, 3)
	if s := stats(); s.DatagramsLate != 1 || s.SenderRestarts != 0 {
		t.Fatalf("reorder without gap: late=%d restarts=%d, want 1/0", s.DatagramsLate, s.SenderRestarts)
	}
	// The same small seq after a quiet gap is a restart: mark resets, the
	// renumbered stream counts fresh, leading losses chalked up like a first
	// contact (seq 3 ⇒ 1 and 2 lost).
	lostBefore := stats().DatagramsLost
	clock = clock.Add(2 * time.Second)
	seen(1, 3)
	seen(1, 4)
	seen(1, 5)
	if s := stats(); s.SenderRestarts != 1 || s.DatagramsLate != 1 {
		t.Fatalf("after restart: restarts=%d late=%d, want 1/1 (post-restart stream not late)", s.SenderRestarts, s.DatagramsLate)
	}
	if s := stats(); s.DatagramsLost != lostBefore+2 {
		t.Fatalf("restart leading losses: lost=%d, want %d", s.DatagramsLost, lostBefore+2)
	}

	// A young stream (mark within restartSeqMax of the arrival) never reads
	// as a restart, however long the gap: reordering is the likelier story.
	seen(2, 40)
	clock = clock.Add(time.Minute)
	seen(2, 2)
	if s := stats(); s.SenderRestarts != 1 || s.DatagramsLate != 2 {
		t.Fatalf("young stream: restarts=%d late=%d, want 1/2", s.SenderRestarts, s.DatagramsLate)
	}
}

// TestUDPClientRestartMidEpochKeepsLateHonest is the end-to-end regression:
// a dcsnode-style client crashes mid-epoch and a replacement with the same
// sender id renumbers from seq 1. DatagramsLate must stay honest instead of
// branding the entire post-restart stream late.
func TestUDPClientRestartMidEpochKeepsLateHonest(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{RestartQuiet: 5 * time.Millisecond})

	dial := func() *BatchingUDPClient {
		t.Helper()
		c, err := DialUDP(srv.Addr(), UDPClientConfig{SenderID: 9, FlushInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	push := func(c *BatchingUDPClient, router, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := c.Send(AlignedDigest{RouterID: router, Epoch: 1, Bitmap: randomVector(uint64(router*1000+i), 64)}); err != nil {
				t.Fatal(err)
			}
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First incarnation sends 80 one-frame datagrams (past restartSeqMax),
	// then "crashes" without a clean shutdown.
	c1 := dial()
	push(c1, 1, 80)
	waitFor(t, 5*time.Second, func() bool { return len(got()) == 80 })
	c1.Close()

	// The replacement process comes up after a quiet gap and renumbers from 1.
	time.Sleep(50 * time.Millisecond)
	c2 := dial()
	defer c2.Close()
	push(c2, 2, 40)
	waitFor(t, 5*time.Second, func() bool { return len(got()) == 120 })

	s := srv.Stats().Snapshot()
	if s.SenderRestarts != 1 {
		t.Fatalf("SenderRestarts=%d, want 1", s.SenderRestarts)
	}
	if s.DatagramsLate != 0 {
		t.Fatalf("DatagramsLate=%d after restart, want 0 (post-restart stream miscounted as late)", s.DatagramsLate)
	}
}

// TestUDPFlushTimer proves a lone buffered frame does not sit forever when
// the send rate is too low to fill a datagram.
func TestUDPFlushTimer(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{FlushInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send(AlignedDigest{RouterID: 3, Epoch: 2, Bitmap: randomVector(9, 128)}); err != nil {
		t.Fatal(err)
	}
	// No explicit Flush: the timer must emit it.
	waitFor(t, 2*time.Second, func() bool { return len(got()) == 1 })
}

func TestUDPCloseFlushesAndSticks(t *testing.T) {
	srv, got := collectUDP(t, UDPServerConfig{})
	c, err := DialUDP(srv.Addr(), UDPClientConfig{FlushInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(AlignedDigest{RouterID: 8, Epoch: 1, Bitmap: randomVector(3, 128)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return len(got()) == 1 })
	if err := c.Send(AlignedDigest{RouterID: 9, Epoch: 1, Bitmap: randomVector(4, 128)}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
