// Package transport implements the "ship digests to the analysis center"
// leg of the DCS architecture (Figure 2): a compact binary wire format for
// the aligned and unaligned digests and a TCP server/client pair. A digest
// is three orders of magnitude smaller than the traffic it summarizes, so a
// single analysis center can terminate thousands of collector connections.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"dcstream/internal/bitvec"
	"dcstream/internal/unaligned"
)

// Frame layout (little-endian):
//
//	magic   uint32  'D','C','S','1'
//	type    uint8   message kind
//	length  uint32  payload byte count
//	crc     uint32  CRC-32C (Castagnoli) of the payload
//	payload [length]byte
//
// The checksum guards the analysis center against digest corruption in
// flight: a flipped bit in a bitmap would otherwise silently perturb the
// correlation statistics rather than fail loudly.
const (
	magic = 0x31534344 // "DCS1"

	headerLen = 13

	typeAligned   = 1
	typeUnaligned = 2
	typeReport    = 3

	// maxFrame bounds a frame's payload so a corrupt or hostile peer
	// cannot make the center allocate unbounded memory. The largest
	// legitimate digest (a 4M-bit aligned bitmap) is 512 KiB.
	maxFrame = 64 << 20

	// maxGeometryDim bounds each unaligned geometry dimension (groups,
	// arrays per group) individually; maxGeometryVectors bounds their
	// product, computed in uint64 so no hostile pair of dimensions can
	// wrap past the guard.
	maxGeometryDim     = 1 << 20
	maxGeometryVectors = 1 << 24
)

// ErrBadFrame reports a malformed or oversized frame.
var ErrBadFrame = errors.New("transport: malformed frame")

// errStreamWrite marks a frame write that failed after bytes may have hit
// the connection — as opposed to an encoding rejection, which never touches
// it. Client.Send uses the distinction to decide whether the byte stream is
// still frame-aligned.
var errStreamWrite = errors.New("transport: stream write failed")

// Message is a value that can travel over the digest channel.
type Message interface{ isMessage() }

// AlignedDigest carries one router's aligned-case epoch bitmap.
type AlignedDigest struct {
	RouterID int
	Epoch    int
	Bitmap   *bitvec.Vector
}

func (AlignedDigest) isMessage() {}

// UnalignedDigest carries one router's unaligned-case array bank.
type UnalignedDigest struct {
	Epoch  int
	Digest *unaligned.Digest
}

func (UnalignedDigest) isMessage() {}

// Report carries an opaque control-plane payload upstream: a shard's
// analyzed WindowReport, encoded by internal/shard, pushed from a shard
// center to its coordinator over the same framed channel the digests ride.
// The transport does not interpret the payload — keeping the codec free of a
// center dependency — it only frames and checksums it like any digest.
// Centers that do not expect reports count them as unknown messages and
// drop them (forward compatibility), so a misdirected report is harmless.
type Report struct {
	Payload []byte
}

func (Report) isMessage() {}

// Write encodes a message as one frame on w. Malformed digests (nil
// bitmaps, ragged unaligned geometry) are rejected before any bytes hit the
// wire — a half-written frame would desynchronize the whole stream.
func Write(w io.Writer, m Message) error {
	var kind byte
	var payload []byte
	var err error
	switch d := m.(type) {
	case AlignedDigest:
		kind = typeAligned
		payload, err = encodeAligned(d)
	case UnalignedDigest:
		kind = typeUnaligned
		payload, err = encodeUnaligned(d)
	case Report:
		kind = typeReport
		if len(d.Payload) > maxFrame {
			return fmt.Errorf("transport: report payload of %d bytes exceeds the %d-byte frame limit", len(d.Payload), maxFrame)
		}
		payload = d.Payload
	default:
		return fmt.Errorf("transport: unknown message type %T", m)
	}
	if err != nil {
		return err
	}
	hdr := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	hdr[4] = kind
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[9:], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("%w: header: %w", errStreamWrite, err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("%w: payload: %w", errStreamWrite, err)
	}
	return nil
}

// castagnoli is the CRC-32C table shared by Write and Read.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Read decodes the next frame from r. io.EOF is returned unwrapped when the
// stream ends cleanly at a frame boundary.
func Read(r io.Reader) (Message, error) {
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("transport: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	length := binary.LittleEndian.Uint32(hdr[5:])
	if length > maxFrame {
		return nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", ErrBadFrame, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("transport: read payload: %w", err)
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[9:]); got != want {
		return nil, fmt.Errorf("%w: payload checksum %08x, header says %08x", ErrBadFrame, got, want)
	}
	switch hdr[4] {
	case typeAligned:
		return decodeAligned(payload)
	case typeUnaligned:
		return decodeUnaligned(payload)
	case typeReport:
		return Report{Payload: payload}, nil
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, hdr[4])
	}
}

func putVector(buf []byte, v *bitvec.Vector) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(v.Len()))
	buf = append(buf, tmp[:4]...)
	for _, w := range v.Words() {
		binary.LittleEndian.PutUint64(tmp[:], w)
		buf = append(buf, tmp[:]...)
	}
	return buf
}

func getVector(buf []byte) (*bitvec.Vector, []byte, error) {
	if len(buf) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated vector header", ErrBadFrame)
	}
	bits := int(binary.LittleEndian.Uint32(buf))
	buf = buf[4:]
	if bits < 0 || bits > maxFrame*8 {
		return nil, nil, fmt.Errorf("%w: vector of %d bits", ErrBadFrame, bits)
	}
	words := (bits + 63) / 64
	if len(buf) < words*8 {
		return nil, nil, fmt.Errorf("%w: truncated vector body", ErrBadFrame)
	}
	v := bitvec.New(bits)
	dst := v.Words()
	for i := 0; i < words; i++ {
		dst[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	buf = buf[words*8:]
	// Reject set bits beyond Len: they would corrupt weight computations.
	if rem := bits % 64; rem != 0 && words > 0 && dst[words-1]>>uint(rem) != 0 {
		return nil, nil, fmt.Errorf("%w: tail bits set beyond vector length", ErrBadFrame)
	}
	return v, buf, nil
}

func encodeAligned(d AlignedDigest) ([]byte, error) {
	if d.Bitmap == nil {
		return nil, fmt.Errorf("transport: aligned digest for router %d has nil bitmap", d.RouterID)
	}
	buf := make([]byte, 8, 12+len(d.Bitmap.Words())*8)
	binary.LittleEndian.PutUint32(buf[0:], uint32(d.RouterID))
	binary.LittleEndian.PutUint32(buf[4:], uint32(d.Epoch))
	return putVector(buf, d.Bitmap), nil
}

func decodeAligned(buf []byte) (Message, error) {
	if len(buf) < 8 {
		return nil, fmt.Errorf("%w: truncated aligned digest", ErrBadFrame)
	}
	d := AlignedDigest{
		RouterID: int(int32(binary.LittleEndian.Uint32(buf[0:]))),
		Epoch:    int(int32(binary.LittleEndian.Uint32(buf[4:]))),
	}
	v, rest, err := getVector(buf[8:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in aligned digest", ErrBadFrame)
	}
	d.Bitmap = v
	return d, nil
}

func encodeUnaligned(d UnalignedDigest) ([]byte, error) {
	if d.Digest == nil {
		return nil, fmt.Errorf("transport: unaligned digest message has nil digest")
	}
	// The frame header states one array count for the whole digest, so a
	// ragged Rows slice would serialize more (or fewer) vectors than the
	// decoder reads and misparse every later byte. Validate rectangular
	// geometry up front.
	arrays := 0
	if len(d.Digest.Rows) > 0 {
		arrays = len(d.Digest.Rows[0])
	}
	for g, group := range d.Digest.Rows {
		if len(group) != arrays {
			return nil, fmt.Errorf("transport: ragged unaligned digest from router %d: group %d has %d arrays, group 0 has %d",
				d.Digest.RouterID, g, len(group), arrays)
		}
		for a, row := range group {
			if row == nil {
				return nil, fmt.Errorf("transport: unaligned digest from router %d: nil array (%d,%d)",
					d.Digest.RouterID, g, a)
			}
		}
	}
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:], uint32(d.Digest.RouterID))
	binary.LittleEndian.PutUint32(buf[4:], uint32(d.Epoch))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(d.Digest.Rows)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(arrays))
	for _, group := range d.Digest.Rows {
		for _, row := range group {
			buf = putVector(buf, row)
		}
	}
	return buf, nil
}

func decodeUnaligned(buf []byte) (Message, error) {
	if len(buf) < 16 {
		return nil, fmt.Errorf("%w: truncated unaligned digest", ErrBadFrame)
	}
	routerID := int(int32(binary.LittleEndian.Uint32(buf[0:])))
	epoch := int(int32(binary.LittleEndian.Uint32(buf[4:])))
	// Geometry hardening: each dimension is bounded on its own and the
	// product is taken in uint64. The decoded counts come off the wire as
	// uint32, so an int conversion is never negative on 64-bit and a product
	// like 0xFFFFFFFF x 0xFFFFFFFF wraps int64 past any guard — a 16-byte
	// hostile frame could otherwise drive the rows allocation below into
	// gigabytes before a single payload byte is checked.
	g64 := uint64(binary.LittleEndian.Uint32(buf[8:]))
	a64 := uint64(binary.LittleEndian.Uint32(buf[12:]))
	if g64 > maxGeometryDim || a64 > maxGeometryDim || g64*a64 > maxGeometryVectors {
		return nil, fmt.Errorf("%w: implausible geometry %dx%d", ErrBadFrame, g64, a64)
	}
	buf = buf[16:]
	// Every vector costs at least its 4-byte length prefix, so a payload
	// shorter than that is lying about its geometry; reject it before
	// allocating any per-group storage.
	if uint64(len(buf)) < g64*a64*4 {
		return nil, fmt.Errorf("%w: geometry %dx%d exceeds %d payload bytes", ErrBadFrame, g64, a64, len(buf))
	}
	groups, arrays := int(g64), int(a64)
	dg := &unaligned.Digest{RouterID: routerID, Rows: make([][]*bitvec.Vector, groups)}
	for g := 0; g < groups; g++ {
		dg.Rows[g] = make([]*bitvec.Vector, arrays)
		for a := 0; a < arrays; a++ {
			v, rest, err := getVector(buf)
			if err != nil {
				return nil, err
			}
			dg.Rows[g][a] = v
			buf = rest
		}
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes in unaligned digest", ErrBadFrame)
	}
	return UnalignedDigest{Epoch: epoch, Digest: dg}, nil
}
