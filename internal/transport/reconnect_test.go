package transport

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// collectServer starts a server that records every aligned digest's
// (RouterID, Epoch) pair.
type collectServer struct {
	mu   sync.Mutex
	got  map[[2]int]bool
	srv  *Server
	addr string
}

func startCollect(t *testing.T, addr string, cfg ServerConfig) *collectServer {
	t.Helper()
	cs := &collectServer{got: map[[2]int]bool{}}
	srv, err := ServeConfig(addr, func(m Message, _ net.Addr) {
		if d, ok := m.(AlignedDigest); ok {
			cs.mu.Lock()
			cs.got[[2]int{d.RouterID, d.Epoch}] = true
			cs.mu.Unlock()
		}
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cs.srv, cs.addr = srv, srv.Addr()
	return cs
}

func (cs *collectServer) count() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.got)
}

func (cs *collectServer) waitFor(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for cs.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d digests arrived", cs.count(), n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReconnectingClientDeliversAcrossRestart is the acceptance scenario: a
// collector keeps sending while its center is down for a restart; every
// digest still arrives once the center is back on the same address.
func TestReconnectingClientDeliversAcrossRestart(t *testing.T) {
	cs := startCollect(t, "127.0.0.1:0", ServerConfig{})
	addr := cs.addr

	client := NewReconnectingClient(addr, ReconnectConfig{
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	defer client.Close()

	// Epoch 1 lands on the first server incarnation.
	for r := 0; r < 4; r++ {
		if err := client.Send(AlignedDigest{RouterID: r, Epoch: 1, Bitmap: randomVector(uint64(r), 256)}); err != nil {
			t.Fatal(err)
		}
	}
	if left := client.Flush(5 * time.Second); left != 0 {
		t.Fatalf("%d digests stuck before restart", left)
	}
	cs.waitFor(t, 4, 5*time.Second)

	// Forced center restart. The pause lets the client's connection
	// monitor observe the FIN so no epoch-2 frame is written into a dead
	// socket.
	if err := cs.srv.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	// Epoch 2 is sent entirely while the center is down: it buffers.
	for r := 0; r < 4; r++ {
		if err := client.Send(AlignedDigest{RouterID: r, Epoch: 2, Bitmap: randomVector(uint64(10+r), 256)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := client.Flush(300 * time.Millisecond); n == 0 {
		t.Fatal("digests claimed delivered while center was down")
	}

	// Center restarts on the same address; the buffered epoch drains.
	cs2 := startCollect(t, addr, ServerConfig{})
	defer cs2.srv.Close()
	if left := client.Flush(10 * time.Second); left != 0 {
		t.Fatalf("%d digests undelivered after restart", left)
	}
	cs2.waitFor(t, 4, 5*time.Second)
	for r := 0; r < 4; r++ {
		cs2.mu.Lock()
		ok := cs2.got[[2]int{r, 2}]
		cs2.mu.Unlock()
		if !ok {
			t.Fatalf("router %d epoch 2 digest lost across restart", r)
		}
	}
	if n := client.Stats().Reconnects.Load(); n < 1 {
		t.Fatalf("reconnect counter %d, want >= 1", n)
	}
}

func TestReconnectingClientBufferFull(t *testing.T) {
	// No server listening: everything buffers until the cap.
	client := NewReconnectingClient("127.0.0.1:1", ReconnectConfig{
		Buffer:         2,
		DialTimeout:    50 * time.Millisecond,
		InitialBackoff: 10 * time.Millisecond,
	})
	defer client.Close()
	var fullErr error
	for i := 0; i < 10 && fullErr == nil; i++ {
		fullErr = client.Send(AlignedDigest{RouterID: i, Epoch: 1, Bitmap: randomVector(1, 64)})
	}
	if !errors.Is(fullErr, ErrBufferFull) {
		t.Fatalf("want ErrBufferFull, got %v", fullErr)
	}
	if n := client.Stats().DroppedSends.Load(); n < 1 {
		t.Fatalf("dropped counter %d", n)
	}
}

func TestReconnectingClientClose(t *testing.T) {
	client := NewReconnectingClient("127.0.0.1:1", ReconnectConfig{
		DialTimeout:    50 * time.Millisecond,
		InitialBackoff: 10 * time.Millisecond,
	})
	client.Send(AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: randomVector(1, 64)})
	abandoned, err := client.Close()
	if err != nil {
		t.Fatal(err)
	}
	if abandoned != 1 {
		t.Fatalf("Close reported %d abandoned messages, want 1", abandoned)
	}
	if err := client.Send(AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 64)}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("send on closed client: %v", err)
	}
	if n := client.Stats().AbandonedOnClose.Load(); n != 1 {
		t.Fatalf("pending message not counted abandoned: %d", n)
	}
	if n := client.Stats().DroppedSends.Load(); n != 0 {
		t.Fatalf("abandoned message leaked into DroppedSends: %d", n)
	}
	// Close is idempotent and reports nothing the second time.
	if abandoned, err := client.Close(); err != nil || abandoned != 0 {
		t.Fatalf("second Close = (%d, %v), want (0, nil)", abandoned, err)
	}
}

// TestFlushWakesBackoffImmediately: a sender deep in a backoff sleep must
// retry as soon as Flush is called, not after the rest of the sleep — the
// backoff here is far longer than the Flush timeout, so delivery within it
// proves the wake-up happened.
func TestFlushWakesBackoffImmediately(t *testing.T) {
	// Learn a free port, then leave it closed so the first dials fail and
	// the backoff climbs to its 30s cap.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	client := NewReconnectingClient(addr, ReconnectConfig{
		DialTimeout:    100 * time.Millisecond,
		InitialBackoff: 30 * time.Second,
		MaxBackoff:     30 * time.Second,
	})
	defer client.Close()
	if err := client.Send(AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: randomVector(1, 64)}); err != nil {
		t.Fatal(err)
	}
	// Let the sender fail its dial and enter the 30s backoff.
	time.Sleep(300 * time.Millisecond)

	cs := startCollect(t, addr, ServerConfig{})
	defer cs.srv.Close()
	start := time.Now()
	if left := client.Flush(5 * time.Second); left != 0 {
		t.Fatalf("%d messages still pending after Flush with center up", left)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("flush took %v — backoff sleep was not interrupted", took)
	}
	cs.waitFor(t, 1, 2*time.Second)
}

// TestBackoffSurvivesKickStorm is the stale-kick regression test: Flush
// calls that land while the sender is NOT sleeping (here: idle in head()
// with an empty queue) leave a remembered wake token behind. That token must
// be consumed by the next dial attempt, not spent cutting short the backoff
// sleep after that dial fails — or a periodic Flush degrades capped
// exponential backoff into a hot dial loop against a down center.
func TestBackoffSurvivesKickStorm(t *testing.T) {
	client := NewReconnectingClient("127.0.0.1:1", ReconnectConfig{
		DialTimeout:    50 * time.Millisecond,
		InitialBackoff: 10 * time.Second,
		MaxBackoff:     10 * time.Second,
	})
	defer client.Close()

	// Storm of flushes before anything is queued: each returns immediately
	// (nothing pending) but posts a kick; the buffered channel retains one.
	for i := 0; i < 50; i++ {
		client.Flush(0)
	}
	if err := client.Send(AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: randomVector(1, 64)}); err != nil {
		t.Fatal(err)
	}
	// The sender dials once (refused), then must sit out the full 10s
	// backoff: the stale token may not buy it a second attempt.
	deadline := time.Now().Add(2 * time.Second)
	for client.Stats().DialAttempts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sender never attempted a dial")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(700 * time.Millisecond)
	if n := client.Stats().DialAttempts.Load(); n != 1 {
		t.Fatalf("%d dial attempts within the 10s backoff window, want 1 — a stale Flush kick cut the sleep short", n)
	}
}

// TestFlushReportsAbandonedOnClose: a Flush blocked on an unreachable center
// must wake promptly when Close runs and report the abandoned messages as
// undelivered — the old implementation busy-polled and, worse, returned 0
// because Close had emptied the queue it was counting.
func TestFlushReportsAbandonedOnClose(t *testing.T) {
	client := NewReconnectingClient("127.0.0.1:1", ReconnectConfig{
		DialTimeout:    50 * time.Millisecond,
		InitialBackoff: 10 * time.Second,
		MaxBackoff:     10 * time.Second,
	})
	const n = 5
	for i := 0; i < n; i++ {
		if err := client.Send(AlignedDigest{RouterID: i, Epoch: 1, Bitmap: randomVector(uint64(i+1), 64)}); err != nil {
			t.Fatal(err)
		}
	}
	res := make(chan int, 1)
	go func() { res <- client.Flush(10 * time.Second) }()
	time.Sleep(50 * time.Millisecond)
	abandoned, err := client.Close()
	if err != nil || abandoned != n {
		t.Fatalf("Close = (%d, %v), want (%d, nil)", abandoned, err, n)
	}
	select {
	case left := <-res:
		if left != n {
			t.Fatalf("Flush reported %d undelivered, want %d — Close's abandonment must not read as delivery", left, n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Flush still blocked 2s after Close — the wait never woke")
	}
	// A Flush issued after Close reports the same abandonment immediately.
	if left := client.Flush(0); left != n {
		t.Fatalf("post-Close Flush = %d, want %d", left, n)
	}
}

// scriptedConn is a net.Conn whose Write fails from a chosen call number on;
// the embedded nil net.Conn panics on anything a test should not touch.
type scriptedConn struct {
	net.Conn
	writes   int
	failFrom int // fail writes numbered >= failFrom; 0 means never
}

func (c *scriptedConn) Write(p []byte) (int, error) {
	c.writes++
	if c.failFrom > 0 && c.writes >= c.failFrom {
		return 0, errors.New("synthetic connection failure")
	}
	return len(p), nil
}

// TestSendStickyAfterWriteFailure is the fail-fast regression test: a frame
// cut short mid-payload leaves the byte stream desynchronized, so every
// later Send must refuse with ErrClientBroken instead of writing frames the
// center will misparse.
func TestSendStickyAfterWriteFailure(t *testing.T) {
	// Write #1 (header) succeeds, write #2 (payload) dies: the wire now
	// holds a headless partial frame.
	c := &Client{conn: &scriptedConn{failFrom: 2}, stats: new(Stats)}
	d := AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 256)}
	err := c.Send(d)
	if err == nil || errors.Is(err, ErrClientBroken) {
		t.Fatalf("first failure should surface the raw write error, got %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Send(d); !errors.Is(err, ErrClientBroken) {
			t.Fatalf("Send after mid-payload failure: %v, want ErrClientBroken", err)
		}
	}
	if n := c.Stats().FramesOut.Load(); n != 0 {
		t.Fatalf("broken client counted %d frames out", n)
	}

	// An encoding rejection never touches the wire, so it must NOT latch:
	// the stream is still aligned and the next valid digest goes through.
	c2 := &Client{conn: &scriptedConn{}, stats: new(Stats)}
	if err := c2.Send(AlignedDigest{RouterID: 2}); err == nil || errors.Is(err, ErrClientBroken) {
		t.Fatalf("nil bitmap: %v", err)
	}
	if err := c2.Send(d); err != nil {
		t.Fatalf("encoding rejection latched the client: %v", err)
	}
}

// TestServerReapsIdleConnections: a collector that dials and goes silent is
// disconnected by the read deadline instead of holding a goroutine forever.
func TestServerReapsIdleConnections(t *testing.T) {
	srv, err := ServeConfig("127.0.0.1:0", func(Message, net.Addr) {},
		ServerConfig{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server should close us; a blocking read observes it.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	var buf [1]byte
	if _, err := conn.Read(buf[:]); err == nil {
		t.Fatal("server never closed the idle connection")
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().ConnsReaped.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reap not counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBadFrameClosesOnlyOffender: one collector sends garbage mid-stream;
// its connection dies and is counted, while another collector's digests
// keep flowing on the same server.
func TestBadFrameClosesOnlyOffender(t *testing.T) {
	cs := startCollect(t, "127.0.0.1:0", ServerConfig{})
	defer cs.srv.Close()

	good, err := Dial(cs.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if err := good.Send(AlignedDigest{RouterID: 0, Epoch: 1, Bitmap: randomVector(1, 256)}); err != nil {
		t.Fatal(err)
	}

	bad, err := net.Dial("tcp", cs.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	// A valid frame, then garbage: the server must take the first frame
	// and kill the connection on the second.
	if err := Write(bad, AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(2, 256)}); err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Write([]byte("this is not a DCS1 frame........")); err != nil {
		t.Fatal(err)
	}
	// Server closes the offender; observe the FIN.
	bad.SetReadDeadline(time.Now().Add(5 * time.Second))
	var one [1]byte
	if _, err := bad.Read(one[:]); err == nil {
		t.Fatal("server kept the corrupted connection open")
	}
	if n := cs.srv.Stats().BadFrames.Load(); n != 1 {
		t.Fatalf("bad frame counter %d, want 1", n)
	}

	// The good collector is unaffected.
	if err := good.Send(AlignedDigest{RouterID: 2, Epoch: 1, Bitmap: randomVector(3, 256)}); err != nil {
		t.Fatalf("good connection broken by someone else's bad frame: %v", err)
	}
	cs.waitFor(t, 3, 5*time.Second)
	if n := cs.srv.Stats().FramesIn.Load(); n != 3 {
		t.Fatalf("frames in = %d, want 3", n)
	}
}
