package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Handler consumes one decoded digest message at the analysis center.
// Handlers may be called concurrently, one goroutine per collector
// connection.
type Handler func(m Message, from net.Addr)

// ServerConfig tunes the analysis-center listener. The zero value is usable.
type ServerConfig struct {
	// ReadTimeout is the per-frame read deadline. A collector that goes
	// silent for longer than this is reaped so dead connections cannot
	// accumulate at a center terminating thousands of them. Zero means
	// 2 minutes; negative disables the deadline.
	ReadTimeout time.Duration
	// Stats, when non-nil, receives the server's counters. Several servers
	// may share one Stats.
	Stats *Stats
	// Gate, when enabled (Rate or MaxStrikes set), rate-limits and
	// quarantines misbehaving senders by remote host. The zero value keeps
	// the server gateless.
	Gate GateConfig
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 2 * time.Minute
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	return c
}

// Server is the analysis center's digest sink: it accepts collector
// connections and feeds every decoded frame to the handler.
type Server struct {
	ln      net.Listener
	handler Handler
	cfg     ServerConfig
	gate    *senderGate // nil when the gate is disabled

	mu     sync.Mutex
	conns  map[net.Conn]struct{} // guarded by mu
	closed bool                  // guarded by mu
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0" to pick a free port)
// with default robustness settings.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeConfig(addr, handler, ServerConfig{})
}

// ServeConfig is Serve with explicit deadlines and stats.
func ServeConfig(addr string, handler Handler, cfg ServerConfig) (*Server, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, cfg: cfg.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.gate = newSenderGate(s.cfg.Gate, s.cfg.Stats)
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns the server's counters (the shared Stats when one was passed
// in ServerConfig).
func (s *Server) Stats() *Stats { return s.cfg.Stats }

// QuarantinedSenders lists sender hosts currently quarantined by the
// admission gate (nil with the gate disabled).
func (s *Server) QuarantinedSenders() []string { return s.gate.Quarantined() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			//dcslint:ignore errcrit best-effort teardown of a connection the closed server never served; nothing was written
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		if s.gate.blocked(senderKey(conn.RemoteAddr())) {
			// A quarantined collector does not even get to hold a
			// connection open; the refusal is counted as a quarantine drop.
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			//dcslint:ignore errcrit refusing a quarantined sender; nothing was read or written on this connection
			conn.Close()
			continue
		}
		s.cfg.Stats.ConnsAccepted.Add(1)
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn drains one collector connection. A malformed frame (ErrBadFrame,
// including CRC failures) or a read-deadline expiry closes only this
// connection — the center keeps serving every other collector, and the
// failure is visible in Stats rather than silent.
func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	accepted := time.Now()
	sender := senderKey(conn.RemoteAddr())
	defer func() {
		//dcslint:ignore errcrit read-side teardown; the center never writes to collectors, so a close error cannot lose data
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.cfg.Stats.ConnLifetimeSeconds.Observe(time.Since(accepted).Seconds())
	}()
	for {
		if s.cfg.ReadTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout)); err != nil {
				// The connection is already dead (closed fd); reap it like a
				// deadline expiry instead of reading from it undeadlined.
				s.cfg.Stats.ConnsReaped.Add(1)
				return
			}
		}
		m, err := Read(conn)
		if err != nil {
			switch {
			case errors.Is(err, ErrBadFrame):
				s.cfg.Stats.BadFrames.Add(1)
				s.gate.strike(sender)
			case errors.Is(err, os.ErrDeadlineExceeded):
				s.cfg.Stats.ConnsReaped.Add(1)
			}
			return // EOF, frame error, deadline, or connection closed
		}
		if !s.gate.admit(sender) {
			// Over the rate limit (or already quarantined): the frame is
			// dropped and the connection closed — the collector's retry path
			// meets the accept-time quarantine check until parole.
			return
		}
		s.cfg.Stats.FramesIn.Add(1)
		s.handler(m, conn.RemoteAddr())
	}
}

// Close stops accepting, closes all connections, and waits for the handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		//dcslint:ignore errcrit shutdown fan-out; per-connection close errors are unactionable and serveConn re-closes defensively
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// ErrClientBroken reports a Send on a Client whose connection already
// failed a write. The wrapped error is the original failure.
var ErrClientBroken = errors.New("transport: client broken by earlier write failure")

// Client is a collector's connection to the analysis center. It fails fast:
// a write error leaves the client broken — the first failure is latched and
// every later Send returns ErrClientBroken wrapping it, because a frame cut
// short mid-payload desynchronizes the byte stream and every subsequent
// frame would arrive at the center as a bad frame. Use ReconnectingClient
// for a collector that must ride out center restarts.
type Client struct {
	mu           sync.Mutex
	conn         net.Conn      // guarded by mu
	writeTimeout time.Duration // guarded by mu
	err          error         // guarded by mu; first write failure, sticky
	stats        *Stats
}

// Dial connects to an analysis center with the given timeout (zero means
// 5 seconds).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, writeTimeout: 10 * time.Second, stats: new(Stats)}, nil
}

// SetWriteTimeout bounds every subsequent Send (zero or negative disables
// the deadline; the default is 10 seconds).
func (c *Client) SetWriteTimeout(d time.Duration) {
	c.mu.Lock()
	c.writeTimeout = d
	c.mu.Unlock()
}

// Send ships one digest message; safe for concurrent use. A stalled or dead
// center fails the write within the write timeout instead of blocking the
// collector forever. After any write failure the client is broken: the
// connection may hold a partial frame, so later Sends fail with
// ErrClientBroken instead of appending into a desynchronized stream.
func (c *Client) Send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return fmt.Errorf("%w: %w", ErrClientBroken, c.err)
	}
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			// The fd is already dead; no bytes were written, but nothing can
			// be written safely either.
			c.err = err
			return fmt.Errorf("transport: arm write deadline: %w", err)
		}
	}
	if err := Write(c.conn, m); err != nil {
		// Write validates the digest before any bytes hit the wire, so an
		// encoding rejection leaves the stream aligned — only an actual
		// stream write failure (possible partial frame) breaks the client.
		if errors.Is(err, errStreamWrite) {
			c.err = err
		}
		return err
	}
	c.stats.FramesOut.Add(1)
	return nil
}

// Stats returns the client's counters.
func (c *Client) Stats() *Stats { return c.stats }

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
