package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler consumes one decoded digest message at the analysis center.
// Handlers may be called concurrently, one goroutine per collector
// connection.
type Handler func(m Message, from net.Addr)

// Server is the analysis center's digest sink: it accepts collector
// connections and feeds every decoded frame to the handler.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0" to pick a free port).
func Serve(addr string, handler Handler) (*Server, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		m, err := Read(conn)
		if err != nil {
			return // EOF, frame error, or connection closed
		}
		s.handler(m, conn.RemoteAddr())
	}
}

// Close stops accepting, closes all connections, and waits for the handler
// goroutines to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Client is a collector's connection to the analysis center.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to an analysis center with the given timeout (zero means
// 5 seconds).
func Dial(addr string, timeout time.Duration) (*Client, error) {
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Send ships one digest message; safe for concurrent use.
func (c *Client) Send(m Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Write(c.conn, m)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
