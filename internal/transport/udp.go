package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPServerConfig tunes the analysis-center datagram sink. The zero value is
// usable.
type UDPServerConfig struct {
	// ReadBuffer is the kernel receive buffer size requested for the socket
	// (best effort — the kernel may clamp it). A deep buffer is what absorbs
	// a fleet of collectors flushing at an epoch boundary; the default is
	// 4 MiB. Negative leaves the kernel default untouched.
	ReadBuffer int
	// Stats, when non-nil, receives the server's counters. Several servers
	// may share one Stats.
	Stats *Stats
	// Gate, when enabled (Rate or MaxStrikes set), rate-limits and
	// quarantines misbehaving senders by remote host — the same gate the
	// TCP server runs, with datagrams as the unit. The zero value keeps
	// the server gateless.
	Gate GateConfig
	// MaxPeers bounds the per-sender sequence-accounting map. Sender ids
	// live in the datagram envelope, which a sprayer can forge past the
	// host-keyed gate, so without a bound the map is a remote memory leak:
	// one entry per distinct id, forever. At the cap, entries idle longer
	// than the gate's quarantine cooldown are expired first; if none are,
	// the least-recently-seen entry is evicted. Evictions are counted in
	// Stats.PeerEvictions. Zero means 65536 (the gate's own tracking cap).
	MaxPeers int
	// RestartQuiet is the minimum silence from a sender before a sequence
	// number far below its high-water mark is read as a collector restart
	// (seq renumbers from 1) rather than reordering, resetting the mark
	// instead of miscounting the whole post-restart stream as late. Zero
	// means 1 second; negative disables restart detection.
	RestartQuiet time.Duration
}

func (c UDPServerConfig) withDefaults() UDPServerConfig {
	if c.ReadBuffer == 0 {
		c.ReadBuffer = 4 << 20
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	if c.MaxPeers <= 0 {
		c.MaxPeers = maxTrackedSenders
	}
	if c.RestartQuiet == 0 {
		c.RestartQuiet = time.Second
	}
	return c
}

// batchReceiver abstracts the receive syscall so the read loop is written
// once against a batch: the stdlib implementation fills one datagram per
// call, and a recvmmsg-style implementation can fill many without the
// decode path changing.
type batchReceiver interface {
	// recv reads up to len(bufs) datagrams, each bufs[i] sized maxDatagram.
	// It records datagram lengths in lens and senders in addrs, returning
	// how many entries it filled. An error means the socket is closed.
	recv(bufs [][]byte, lens []int, addrs []net.Addr) (int, error)
}

// singleReceiver is the portable stdlib receiver: one ReadFromUDP per recv.
type singleReceiver struct{ conn *net.UDPConn }

func (r singleReceiver) recv(bufs [][]byte, lens []int, addrs []net.Addr) (int, error) {
	n, addr, err := r.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	addrs[0] = addr
	return 1, nil
}

// UDPServer is the analysis center's datagram sink: the lossy, cheap
// counterpart of Server. Every datagram passing the prefilter has its frames
// decoded and fed to the handler; sequence numbers per sender feed the loss
// and reordering counters so operators can see how degraded the ingest is,
// while the center's quorum gate keeps the verdicts honest under that loss.
type UDPServer struct {
	conn    *net.UDPConn
	rx      batchReceiver
	handler Handler
	cfg     UDPServerConfig
	gate    *senderGate // nil when the gate is disabled
	// peerTTL is the idle horizon after which a peer entry may be expired
	// under cap pressure — tied to the gate's quarantine cooldown so a
	// sender's sequence standing outlives any sentence it is serving.
	peerTTL time.Duration
	// now is the sequence accountant's clock, swappable so tests can script
	// restarts and expiry instead of sleeping through them.
	now func() time.Time

	mu    sync.Mutex
	peers map[uint32]*peerSeq // sequence accounting per sender; guarded by mu

	wg sync.WaitGroup
}

// peerSeq is one sender's sequence-accounting state.
type peerSeq struct {
	// seq is the highest sequence number seen from the sender.
	seq uint64
	// last is when the sender's previous datagram arrived; restart detection
	// and cap eviction both key off it.
	last time.Time
}

// restartSeqMax bounds how far into a renumbered stream a restart can still
// be recognized: a freshly restarted collector's first surviving datagram has
// a small sequence number (1 plus any leading losses), while a reordered
// datagram from the old stream carries a number near the high-water mark. The
// mark must also be at least this far above the arrival, so the two regimes
// cannot overlap on a young stream.
const restartSeqMax = 64

// ServeUDP starts a datagram server on addr (e.g. "127.0.0.1:0" to pick a
// free port) with default settings.
func ServeUDP(addr string, handler Handler) (*UDPServer, error) {
	return ServeUDPConfig(addr, handler, UDPServerConfig{})
}

// ServeUDPConfig is ServeUDP with explicit buffer sizing and stats.
func ServeUDPConfig(addr string, handler Handler, cfg UDPServerConfig) (*UDPServer, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	cfg = cfg.withDefaults()
	if cfg.ReadBuffer > 0 {
		//dcslint:ignore errcrit best-effort socket tuning; a refused or clamped buffer degrades burst absorption, not correctness, and loss stays visible in DatagramsLost
		_ = conn.SetReadBuffer(cfg.ReadBuffer)
	}
	s := &UDPServer{
		conn:    conn,
		rx:      singleReceiver{conn: conn},
		handler: handler,
		cfg:     cfg,
		gate:    newSenderGate(cfg.Gate, cfg.Stats),
		peerTTL: cfg.Gate.withDefaults().Cooldown,
		now:     time.Now,
		peers:   make(map[uint32]*peerSeq),
	}
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// Stats returns the server's counters (the shared Stats when one was passed
// in UDPServerConfig).
func (s *UDPServer) Stats() *Stats { return s.cfg.Stats }

// QuarantinedSenders lists sender hosts currently quarantined by the
// admission gate (nil with the gate disabled).
func (s *UDPServer) QuarantinedSenders() []string { return s.gate.Quarantined() }

func (s *UDPServer) readLoop() {
	defer s.wg.Done()
	// One backing allocation reused for the socket's whole life: the batch
	// geometry matches what a recvmmsg receiver wants, and the stdlib
	// receiver simply fills one slot per call.
	const batch = 32
	backing := make([]byte, batch*maxDatagram)
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = backing[i*maxDatagram : (i+1)*maxDatagram]
	}
	lens := make([]int, batch)
	addrs := make([]net.Addr, batch)
	for {
		n, err := s.rx.recv(bufs, lens, addrs)
		if err != nil {
			return // socket closed
		}
		for i := 0; i < n; i++ {
			s.handleDatagram(bufs[i][:lens[i]], addrs[i])
		}
	}
}

// handleDatagram runs one received datagram through prefilter, sequence
// accounting, and frame decode. Frames that decode cleanly are delivered
// even when a later frame in the same datagram is corrupt.
func (s *UDPServer) handleDatagram(buf []byte, from net.Addr) {
	sender := senderKey(from)
	if !prefilterDatagram(buf) {
		s.cfg.Stats.DatagramsRejected.Add(1)
		// Garbage counts against the sender even when quarantined — a
		// sprayer that keeps spraying keeps its standing bad, and honest
		// stray traffic never reaches MaxStrikes.
		s.gate.strike(sender)
		return
	}
	if !s.gate.admit(sender) {
		// Quarantined or over the rate limit: the datagram is dropped
		// before decode, counted in QuarantineDrops.
		return
	}
	s.cfg.Stats.DatagramsIn.Add(1)
	s.accountSeq(parseDatagramHeader(buf))
	_, decoded, err := decodeDatagram(buf, func(m Message) {
		s.cfg.Stats.FramesIn.Add(1)
		s.handler(m, from)
	})
	s.cfg.Stats.FramesPerDatagram.Observe(float64(decoded))
	if err != nil {
		s.cfg.Stats.BadFrames.Add(1)
		s.gate.strike(sender)
	}
}

// accountSeq updates the per-sender sequence high-water mark: gaps above it
// count as lost datagrams, arrivals at or below it as late (reordered or
// duplicated). Senders number from 1, so a first contact at seq N also
// reveals N-1 leading losses.
//
// Two exceptions keep the counters honest at scale. A restarted collector
// renumbers from 1; without detection its entire post-restart stream would
// count late against the dead process's mark, so a small sequence number
// arriving far below the mark after RestartQuiet of silence resets the mark
// (counted in SenderRestarts) instead. And the map itself is bounded by
// MaxPeers — sender ids are attacker-forgeable envelope bytes — with idle
// entries expired first and the least-recently-seen evicted otherwise
// (counted in PeerEvictions).
func (s *UDPServer) accountSeq(h DatagramHeader) {
	now := s.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.peers[h.Sender]
	if !ok {
		if len(s.peers) >= s.cfg.MaxPeers {
			s.evictPeersLocked(now)
		}
		s.peers[h.Sender] = &peerSeq{seq: h.Seq, last: now}
		if h.Seq > 1 {
			s.cfg.Stats.DatagramsLost.Add(int64(h.Seq - 1))
		}
		return
	}
	if h.Seq > p.seq {
		if h.Seq > p.seq+1 {
			s.cfg.Stats.DatagramsLost.Add(int64(h.Seq - p.seq - 1))
		}
		p.seq, p.last = h.Seq, now
		return
	}
	if s.cfg.RestartQuiet > 0 && h.Seq <= restartSeqMax && p.seq >= h.Seq+restartSeqMax &&
		now.Sub(p.last) >= s.cfg.RestartQuiet {
		// The collector restarted: its process died (the quiet gap) and came
		// back numbering from 1. Reset the mark to the new stream; the
		// renumbered datagram is a fresh first contact, not a late one, and
		// its leading gap means post-restart losses just like a first contact.
		s.cfg.Stats.SenderRestarts.Add(1)
		if h.Seq > 1 {
			s.cfg.Stats.DatagramsLost.Add(int64(h.Seq - 1))
		}
		p.seq, p.last = h.Seq, now
		return
	}
	p.last = now
	s.cfg.Stats.DatagramsLate.Add(1)
}

// evictPeersLocked makes room in the peers map: every entry idle past the
// TTL (the gate's quarantine cooldown) is expired; when nothing is idle the
// single least-recently-seen entry goes. An evicted sender that returns is a
// first contact again — its leading-loss estimate restarts, which the Lost
// counter's "estimate, not ledger" contract allows. Caller holds s.mu.
func (s *UDPServer) evictPeersLocked(now time.Time) {
	removed := int64(0)
	var lruKey uint32
	var lruAt time.Time
	found := false
	for k, p := range s.peers {
		if s.peerTTL > 0 && now.Sub(p.last) >= s.peerTTL {
			delete(s.peers, k)
			removed++
			continue
		}
		if !found || p.last.Before(lruAt) {
			lruKey, lruAt, found = k, p.last, true
		}
	}
	if removed == 0 && found {
		delete(s.peers, lruKey)
		removed = 1
	}
	s.cfg.Stats.PeerEvictions.Add(removed)
}

// trackedPeers reports how many senders currently have sequence-accounting
// state (bounded by MaxPeers).
func (s *UDPServer) trackedPeers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.peers)
}

// Close stops the read loop and waits for in-flight handlers to drain.
func (s *UDPServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// UDPClientConfig tunes a BatchingUDPClient. The zero value is usable
// (sender id 0 is legal, just indistinct).
type UDPClientConfig struct {
	// SenderID identifies this collector in every datagram header; the
	// server keys loss accounting by it, so give each collector a distinct
	// id.
	SenderID uint32
	// MaxDatagramBytes caps each datagram, header included. Zero means 1400
	// (safe under common path MTUs — a fragmented datagram is lost whole if
	// any fragment drops); values above 65507 are clamped to it. Raise it
	// toward the ceiling on loopback or jumbo-frame fabrics to batch harder.
	MaxDatagramBytes int
	// FlushInterval bounds how long a frame may sit buffered before the
	// datagram is sent anyway. Zero means 2ms; negative disables the timer
	// (explicit Flush only).
	FlushInterval time.Duration
	// Stats, when non-nil, receives the client's counters.
	Stats *Stats
}

func (c UDPClientConfig) withDefaults() UDPClientConfig {
	if c.MaxDatagramBytes == 0 {
		c.MaxDatagramBytes = 1400
	}
	if c.MaxDatagramBytes > maxDatagram {
		c.MaxDatagramBytes = maxDatagram
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	return c
}

// BatchingUDPClient packs digest frames into datagrams: Send appends to the
// current datagram and a full buffer (or the flush timer, or an explicit
// Flush) emits it as a single write — one syscall for many digests, which is
// the entire point of the UDP path. Delivery is fire-and-forget: transmit
// failures are counted in DroppedSends, never returned from Send, because a
// lossy transport that also demanded per-message error handling would have
// the worst properties of both paths. Callers that cannot tolerate loss use
// TCP.
type BatchingUDPClient struct {
	conn net.Conn
	cfg  UDPClientConfig

	mu     sync.Mutex
	buf    []byte // current datagram: header already laid down; guarded by mu
	frames int    // frames in buf; guarded by mu
	seq    uint64 // datagrams emitted; guarded by mu
	closed bool   // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// DialUDP creates a batching client for the given server address. No
// handshake happens — UDP "dialing" only fixes the destination — so the
// server may start later; datagrams sent before it binds are simply lost,
// like any others.
func DialUDP(addr string, cfg UDPClientConfig) (*BatchingUDPClient, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxDatagramBytes < udpHeaderLen+headerLen {
		return nil, fmt.Errorf("transport: datagram budget %d cannot hold any frame", cfg.MaxDatagramBytes)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %s: %w", addr, err)
	}
	c := &BatchingUDPClient{
		conn: conn,
		cfg:  cfg,
		buf:  make([]byte, udpHeaderLen, cfg.MaxDatagramBytes),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	putDatagramHeader(c.buf, DatagramHeader{Sender: cfg.SenderID})
	if cfg.FlushInterval > 0 {
		go c.flushLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

// Stats returns the client's counters.
func (c *BatchingUDPClient) Stats() *Stats { return c.cfg.Stats }

// Send appends one digest frame to the current datagram, emitting the
// datagram first if the frame would not fit. Errors report only local
// conditions — a malformed digest, a frame too large for the datagram
// budget (use TCP for digests that big), or a closed client; transmit
// failures surface in Stats.DroppedSends, not here.
func (c *BatchingUDPClient) Send(m Message) error {
	n, err := frameWireLen(m)
	if err != nil {
		return err
	}
	if udpHeaderLen+n > c.cfg.MaxDatagramBytes {
		return fmt.Errorf("transport: %d-byte frame exceeds the %d-byte datagram budget; raise MaxDatagramBytes or use the TCP path",
			n, c.cfg.MaxDatagramBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if len(c.buf)+n > c.cfg.MaxDatagramBytes {
		c.flushLocked()
	}
	buf, err := appendFrame(c.buf, m)
	if err != nil {
		return err
	}
	c.buf = buf
	c.frames++
	return nil
}

// Pending returns the number of frames buffered in the current datagram.
func (c *BatchingUDPClient) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// Flush emits the current datagram now; a no-op when nothing is buffered.
func (c *BatchingUDPClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.flushLocked()
	return nil
}

// flushLocked patches the count and sequence number into the staged header
// and hands the datagram to the kernel in one write. The buffer is reset
// either way: on a transmit failure the frames are dropped and counted,
// exactly like an in-flight datagram the network ate.
func (c *BatchingUDPClient) flushLocked() {
	if c.frames == 0 {
		return
	}
	c.seq++
	binary.LittleEndian.PutUint16(c.buf[6:], uint16(c.frames))
	binary.LittleEndian.PutUint64(c.buf[12:], c.seq)
	frames := c.frames
	_, err := c.conn.Write(c.buf)
	c.buf = c.buf[:udpHeaderLen]
	c.frames = 0
	if err != nil {
		c.cfg.Stats.DroppedSends.Add(int64(frames))
		return
	}
	c.cfg.Stats.DatagramsOut.Add(1)
	c.cfg.Stats.FramesOut.Add(int64(frames))
}

// flushLoop bounds buffered-frame latency when the caller's send rate is too
// low to fill datagrams.
func (c *BatchingUDPClient) flushLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.tickFlush()
		case <-c.stop:
			return
		}
	}
}

func (c *BatchingUDPClient) tickFlush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.flushLocked()
	}
}

// Close flushes any buffered frames and closes the socket. Closing an
// already-closed client returns nil.
func (c *BatchingUDPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.flushLocked()
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	return c.conn.Close()
}
