package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// UDPServerConfig tunes the analysis-center datagram sink. The zero value is
// usable.
type UDPServerConfig struct {
	// ReadBuffer is the kernel receive buffer size requested for the socket
	// (best effort — the kernel may clamp it). A deep buffer is what absorbs
	// a fleet of collectors flushing at an epoch boundary; the default is
	// 4 MiB. Negative leaves the kernel default untouched.
	ReadBuffer int
	// Stats, when non-nil, receives the server's counters. Several servers
	// may share one Stats.
	Stats *Stats
	// Gate, when enabled (Rate or MaxStrikes set), rate-limits and
	// quarantines misbehaving senders by remote host — the same gate the
	// TCP server runs, with datagrams as the unit. The zero value keeps
	// the server gateless.
	Gate GateConfig
}

func (c UDPServerConfig) withDefaults() UDPServerConfig {
	if c.ReadBuffer == 0 {
		c.ReadBuffer = 4 << 20
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	return c
}

// batchReceiver abstracts the receive syscall so the read loop is written
// once against a batch: the stdlib implementation fills one datagram per
// call, and a recvmmsg-style implementation can fill many without the
// decode path changing.
type batchReceiver interface {
	// recv reads up to len(bufs) datagrams, each bufs[i] sized maxDatagram.
	// It records datagram lengths in lens and senders in addrs, returning
	// how many entries it filled. An error means the socket is closed.
	recv(bufs [][]byte, lens []int, addrs []net.Addr) (int, error)
}

// singleReceiver is the portable stdlib receiver: one ReadFromUDP per recv.
type singleReceiver struct{ conn *net.UDPConn }

func (r singleReceiver) recv(bufs [][]byte, lens []int, addrs []net.Addr) (int, error) {
	n, addr, err := r.conn.ReadFromUDP(bufs[0])
	if err != nil {
		return 0, err
	}
	lens[0] = n
	addrs[0] = addr
	return 1, nil
}

// UDPServer is the analysis center's datagram sink: the lossy, cheap
// counterpart of Server. Every datagram passing the prefilter has its frames
// decoded and fed to the handler; sequence numbers per sender feed the loss
// and reordering counters so operators can see how degraded the ingest is,
// while the center's quorum gate keeps the verdicts honest under that loss.
type UDPServer struct {
	conn    *net.UDPConn
	rx      batchReceiver
	handler Handler
	cfg     UDPServerConfig
	gate    *senderGate // nil when the gate is disabled

	mu    sync.Mutex
	peers map[uint32]uint64 // highest seq seen per sender; guarded by mu

	wg sync.WaitGroup
}

// ServeUDP starts a datagram server on addr (e.g. "127.0.0.1:0" to pick a
// free port) with default settings.
func ServeUDP(addr string, handler Handler) (*UDPServer, error) {
	return ServeUDPConfig(addr, handler, UDPServerConfig{})
}

// ServeUDPConfig is ServeUDP with explicit buffer sizing and stats.
func ServeUDPConfig(addr string, handler Handler, cfg UDPServerConfig) (*UDPServer, error) {
	if handler == nil {
		return nil, errors.New("transport: nil handler")
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	cfg = cfg.withDefaults()
	if cfg.ReadBuffer > 0 {
		//dcslint:ignore errcrit best-effort socket tuning; a refused or clamped buffer degrades burst absorption, not correctness, and loss stays visible in DatagramsLost
		_ = conn.SetReadBuffer(cfg.ReadBuffer)
	}
	s := &UDPServer{
		conn:    conn,
		rx:      singleReceiver{conn: conn},
		handler: handler,
		cfg:     cfg,
		gate:    newSenderGate(cfg.Gate, cfg.Stats),
		peers:   make(map[uint32]uint64),
	}
	s.wg.Add(1)
	go s.readLoop()
	return s, nil
}

// Addr returns the server's bound address.
func (s *UDPServer) Addr() string { return s.conn.LocalAddr().String() }

// Stats returns the server's counters (the shared Stats when one was passed
// in UDPServerConfig).
func (s *UDPServer) Stats() *Stats { return s.cfg.Stats }

// QuarantinedSenders lists sender hosts currently quarantined by the
// admission gate (nil with the gate disabled).
func (s *UDPServer) QuarantinedSenders() []string { return s.gate.Quarantined() }

func (s *UDPServer) readLoop() {
	defer s.wg.Done()
	// One backing allocation reused for the socket's whole life: the batch
	// geometry matches what a recvmmsg receiver wants, and the stdlib
	// receiver simply fills one slot per call.
	const batch = 32
	backing := make([]byte, batch*maxDatagram)
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = backing[i*maxDatagram : (i+1)*maxDatagram]
	}
	lens := make([]int, batch)
	addrs := make([]net.Addr, batch)
	for {
		n, err := s.rx.recv(bufs, lens, addrs)
		if err != nil {
			return // socket closed
		}
		for i := 0; i < n; i++ {
			s.handleDatagram(bufs[i][:lens[i]], addrs[i])
		}
	}
}

// handleDatagram runs one received datagram through prefilter, sequence
// accounting, and frame decode. Frames that decode cleanly are delivered
// even when a later frame in the same datagram is corrupt.
func (s *UDPServer) handleDatagram(buf []byte, from net.Addr) {
	sender := senderKey(from)
	if !prefilterDatagram(buf) {
		s.cfg.Stats.DatagramsRejected.Add(1)
		// Garbage counts against the sender even when quarantined — a
		// sprayer that keeps spraying keeps its standing bad, and honest
		// stray traffic never reaches MaxStrikes.
		s.gate.strike(sender)
		return
	}
	if !s.gate.admit(sender) {
		// Quarantined or over the rate limit: the datagram is dropped
		// before decode, counted in QuarantineDrops.
		return
	}
	s.cfg.Stats.DatagramsIn.Add(1)
	s.accountSeq(parseDatagramHeader(buf))
	_, decoded, err := decodeDatagram(buf, func(m Message) {
		s.cfg.Stats.FramesIn.Add(1)
		s.handler(m, from)
	})
	s.cfg.Stats.FramesPerDatagram.Observe(float64(decoded))
	if err != nil {
		s.cfg.Stats.BadFrames.Add(1)
		s.gate.strike(sender)
	}
}

// accountSeq updates the per-sender sequence high-water mark: gaps above it
// count as lost datagrams, arrivals at or below it as late (reordered or
// duplicated). Senders number from 1, so a first contact at seq N also
// reveals N-1 leading losses.
func (s *UDPServer) accountSeq(h DatagramHeader) {
	s.mu.Lock()
	last := s.peers[h.Sender]
	if h.Seq > last {
		if h.Seq > last+1 {
			s.cfg.Stats.DatagramsLost.Add(int64(h.Seq - last - 1))
		}
		s.peers[h.Sender] = h.Seq
	} else {
		s.cfg.Stats.DatagramsLate.Add(1)
	}
	s.mu.Unlock()
}

// Close stops the read loop and waits for in-flight handlers to drain.
func (s *UDPServer) Close() error {
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// UDPClientConfig tunes a BatchingUDPClient. The zero value is usable
// (sender id 0 is legal, just indistinct).
type UDPClientConfig struct {
	// SenderID identifies this collector in every datagram header; the
	// server keys loss accounting by it, so give each collector a distinct
	// id.
	SenderID uint32
	// MaxDatagramBytes caps each datagram, header included. Zero means 1400
	// (safe under common path MTUs — a fragmented datagram is lost whole if
	// any fragment drops); values above 65507 are clamped to it. Raise it
	// toward the ceiling on loopback or jumbo-frame fabrics to batch harder.
	MaxDatagramBytes int
	// FlushInterval bounds how long a frame may sit buffered before the
	// datagram is sent anyway. Zero means 2ms; negative disables the timer
	// (explicit Flush only).
	FlushInterval time.Duration
	// Stats, when non-nil, receives the client's counters.
	Stats *Stats
}

func (c UDPClientConfig) withDefaults() UDPClientConfig {
	if c.MaxDatagramBytes == 0 {
		c.MaxDatagramBytes = 1400
	}
	if c.MaxDatagramBytes > maxDatagram {
		c.MaxDatagramBytes = maxDatagram
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.Stats == nil {
		c.Stats = new(Stats)
	}
	return c
}

// BatchingUDPClient packs digest frames into datagrams: Send appends to the
// current datagram and a full buffer (or the flush timer, or an explicit
// Flush) emits it as a single write — one syscall for many digests, which is
// the entire point of the UDP path. Delivery is fire-and-forget: transmit
// failures are counted in DroppedSends, never returned from Send, because a
// lossy transport that also demanded per-message error handling would have
// the worst properties of both paths. Callers that cannot tolerate loss use
// TCP.
type BatchingUDPClient struct {
	conn net.Conn
	cfg  UDPClientConfig

	mu     sync.Mutex
	buf    []byte // current datagram: header already laid down; guarded by mu
	frames int    // frames in buf; guarded by mu
	seq    uint64 // datagrams emitted; guarded by mu
	closed bool   // guarded by mu

	stop chan struct{}
	done chan struct{}
}

// DialUDP creates a batching client for the given server address. No
// handshake happens — UDP "dialing" only fixes the destination — so the
// server may start later; datagrams sent before it binds are simply lost,
// like any others.
func DialUDP(addr string, cfg UDPClientConfig) (*BatchingUDPClient, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxDatagramBytes < udpHeaderLen+headerLen {
		return nil, fmt.Errorf("transport: datagram budget %d cannot hold any frame", cfg.MaxDatagramBytes)
	}
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %s: %w", addr, err)
	}
	c := &BatchingUDPClient{
		conn: conn,
		cfg:  cfg,
		buf:  make([]byte, udpHeaderLen, cfg.MaxDatagramBytes),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	putDatagramHeader(c.buf, DatagramHeader{Sender: cfg.SenderID})
	if cfg.FlushInterval > 0 {
		go c.flushLoop()
	} else {
		close(c.done)
	}
	return c, nil
}

// Stats returns the client's counters.
func (c *BatchingUDPClient) Stats() *Stats { return c.cfg.Stats }

// Send appends one digest frame to the current datagram, emitting the
// datagram first if the frame would not fit. Errors report only local
// conditions — a malformed digest, a frame too large for the datagram
// budget (use TCP for digests that big), or a closed client; transmit
// failures surface in Stats.DroppedSends, not here.
func (c *BatchingUDPClient) Send(m Message) error {
	n, err := frameWireLen(m)
	if err != nil {
		return err
	}
	if udpHeaderLen+n > c.cfg.MaxDatagramBytes {
		return fmt.Errorf("transport: %d-byte frame exceeds the %d-byte datagram budget; raise MaxDatagramBytes or use the TCP path",
			n, c.cfg.MaxDatagramBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	if len(c.buf)+n > c.cfg.MaxDatagramBytes {
		c.flushLocked()
	}
	buf, err := appendFrame(c.buf, m)
	if err != nil {
		return err
	}
	c.buf = buf
	c.frames++
	return nil
}

// Pending returns the number of frames buffered in the current datagram.
func (c *BatchingUDPClient) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// Flush emits the current datagram now; a no-op when nothing is buffered.
func (c *BatchingUDPClient) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClientClosed
	}
	c.flushLocked()
	return nil
}

// flushLocked patches the count and sequence number into the staged header
// and hands the datagram to the kernel in one write. The buffer is reset
// either way: on a transmit failure the frames are dropped and counted,
// exactly like an in-flight datagram the network ate.
func (c *BatchingUDPClient) flushLocked() {
	if c.frames == 0 {
		return
	}
	c.seq++
	binary.LittleEndian.PutUint16(c.buf[6:], uint16(c.frames))
	binary.LittleEndian.PutUint64(c.buf[12:], c.seq)
	frames := c.frames
	_, err := c.conn.Write(c.buf)
	c.buf = c.buf[:udpHeaderLen]
	c.frames = 0
	if err != nil {
		c.cfg.Stats.DroppedSends.Add(int64(frames))
		return
	}
	c.cfg.Stats.DatagramsOut.Add(1)
	c.cfg.Stats.FramesOut.Add(int64(frames))
}

// flushLoop bounds buffered-frame latency when the caller's send rate is too
// low to fill datagrams.
func (c *BatchingUDPClient) flushLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.tickFlush()
		case <-c.stop:
			return
		}
	}
}

func (c *BatchingUDPClient) tickFlush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.flushLocked()
	}
}

// Close flushes any buffered frames and closes the socket. Closing an
// already-closed client returns nil.
func (c *BatchingUDPClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.flushLocked()
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	<-c.done
	return c.conn.Close()
}
