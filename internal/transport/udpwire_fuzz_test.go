package transport

import (
	"math/rand"
	"testing"
)

// buildDatagram packs msgs into one well-formed datagram for seeding.
func buildDatagram(t testing.TB, h DatagramHeader, msgs ...Message) []byte {
	t.Helper()
	buf := make([]byte, udpHeaderLen)
	h.Count = len(msgs)
	putDatagramHeader(buf, h)
	var err error
	for _, m := range msgs {
		if buf, err = appendFrame(buf, m); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// FuzzReadDatagram feeds arbitrary bytes through the datagram pipeline the
// UDP server runs per packet: prefilter, then frame-by-frame decode. The
// invariants are the codec's load-bearing promises — no panic on any input,
// no message emitted past the first bad frame, every emitted message
// re-encodable, and the prefilter never rejecting what decode would accept.
func FuzzReadDatagram(f *testing.F) {
	rng := rand.New(rand.NewSource(31))
	one := buildDatagram(f, DatagramHeader{Sender: 1, Seq: 1},
		AlignedDigest{RouterID: 2, Epoch: 5, Bitmap: randomVector(3, 256)})
	f.Add(one)
	f.Add(buildDatagram(f, DatagramHeader{Sender: 9, Seq: 44},
		AlignedDigest{RouterID: 1, Epoch: 1, Bitmap: randomVector(1, 64)},
		UnalignedDigest{Epoch: 2, Digest: randomUnaligned(rng, 4, 2, 3, 128)},
		AlignedDigest{RouterID: 7, Epoch: 1, Bitmap: randomVector(2, 512)}))
	// Corrupt tail: valid first frame, garbage second.
	bad := append(append([]byte{}, one...), "not a frame"...)
	putDatagramHeader(bad[:udpHeaderLen], DatagramHeader{Sender: 1, Seq: 2, Count: 2})
	f.Add(bad)
	// A frame claiming the hostile overflow geometry, wrapped in a datagram.
	hostile := make([]byte, udpHeaderLen)
	putDatagramHeader(hostile, DatagramHeader{Sender: 3, Seq: 1, Count: 1})
	f.Add(append(hostile, hostileGeometryFrame(0xFFFFFFFF, 0xFFFFFFFF)...))
	f.Add([]byte{})
	f.Add([]byte{'D', 'C', 'S', 'U', 1, 0, 1, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if !prefilterDatagram(data) {
			// The prefilter may only reject datagrams decode would also
			// refuse; check it is not throwing away valid traffic.
			if len(data) >= udpHeaderLen && len(data) <= maxDatagram {
				if _, _, err := decodeDatagram(data, func(Message) {}); err == nil &&
					parseDatagramHeader(data).Count > 0 && isUDPHeader(data) {
					t.Fatal("prefilter rejected a datagram that decodes cleanly")
				}
			}
			return
		}
		h := parseDatagramHeader(data)
		emitted := 0
		_, decoded, err := decodeDatagram(data, func(m Message) {
			emitted++
			if encErr := reencode(m); encErr != nil {
				t.Fatalf("decoded message fails re-encode: %v", encErr)
			}
		})
		if decoded != emitted {
			t.Fatalf("decoded count %d != emitted %d", decoded, emitted)
		}
		if err == nil && decoded != h.Count {
			t.Fatalf("clean decode of %d frames, header declared %d", decoded, h.Count)
		}
	})
}

// isUDPHeader reports whether data opens with the exact magic+version the
// prefilter demands (used only to scope the fuzz cross-check).
func isUDPHeader(data []byte) bool {
	return len(data) >= udpHeaderLen &&
		data[0] == 'D' && data[1] == 'C' && data[2] == 'S' && data[3] == 'U' &&
		data[4] == udpVersion && data[5] == 0
}

// reencode checks a decoded message still satisfies appendFrame's
// invariants.
func reencode(m Message) error {
	_, err := appendFrame(nil, m)
	return err
}
