package transport

import (
	"net"
	"sync"
	"time"
)

// GateConfig tunes the per-sender admission gate both servers can run in
// front of their decode paths: a token-bucket rate limit and a
// malformed-traffic strike counter, with quarantine as the shared penalty
// box. One flooding or garbage-spraying router must not starve the fleet —
// the gate throttles and isolates per sender, never globally. The zero
// value disables the gate entirely.
type GateConfig struct {
	// Rate is the sustained admission rate per sender in units per second —
	// frames for the TCP server, datagrams for the UDP server. A sender
	// that exhausts its bucket is quarantined (a flood is an offense, not a
	// backpressure signal — well-behaved collectors pace themselves or use
	// TCP). Zero disables rate limiting.
	Rate float64
	// Burst is the bucket depth (instantaneous headroom above Rate). Zero
	// means max(Rate, 1) — one second of traffic.
	Burst int
	// MaxStrikes quarantines a sender after this many malformed frames or
	// rejected datagrams: honest CRC corruption is rare and random, a
	// garbage sprayer is neither. Zero disables strike counting.
	MaxStrikes int
	// Cooldown is how long a quarantined sender stays blocked; afterwards
	// it is paroled automatically (strikes forgiven, bucket refilled) — a
	// rebooted-and-fixed router must not need operator intervention to
	// rejoin the fleet. Zero means 30 seconds.
	Cooldown time.Duration
}

func (g GateConfig) enabled() bool { return g.Rate > 0 || g.MaxStrikes > 0 }

func (g GateConfig) withDefaults() GateConfig {
	if g.Burst <= 0 {
		g.Burst = int(g.Rate)
		if g.Burst < 1 {
			g.Burst = 1
		}
	}
	if g.Cooldown == 0 {
		g.Cooldown = 30 * time.Second
	}
	return g
}

// maxTrackedSenders bounds the gate's per-sender state map. At the cap,
// unknown senders are admitted untracked (fail open): the gate is a defense
// against misbehaving senders, and letting an attacker with a million source
// addresses OOM the center via its own defense would be worse than letting
// the spray through to the prefilter.
const maxTrackedSenders = 1 << 16

// senderState is one sender's standing with the gate.
type senderState struct {
	tokens  float64
	last    time.Time
	strikes int
	// quarantinedUntil is zero while the sender is in good standing.
	quarantinedUntil time.Time
}

// senderGate enforces GateConfig per sender key (the remote host for TCP
// connections and UDP datagrams alike — header fields can be forged by the
// very traffic the gate exists to stop). All methods are safe for concurrent
// use and nil-safe: a nil gate admits everything, so the servers' hot paths
// stay branch-cheap when the feature is off.
type senderGate struct {
	cfg   GateConfig
	stats *Stats
	// now is the gate's clock, swappable so tests can script cool-downs
	// instead of sleeping through them.
	now func() time.Time

	mu      sync.Mutex
	senders map[string]*senderState // guarded by mu
}

func newSenderGate(cfg GateConfig, stats *Stats) *senderGate {
	if !cfg.enabled() {
		return nil
	}
	return &senderGate{
		cfg:     cfg.withDefaults(),
		stats:   stats,
		now:     time.Now,
		senders: make(map[string]*senderState),
	}
}

// senderKey reduces a remote address to the gate's sender identity: the
// host, so a collector keeps its standing across reconnects and ephemeral
// source ports.
func senderKey(addr net.Addr) string {
	if addr == nil {
		return ""
	}
	if host, _, err := net.SplitHostPort(addr.String()); err == nil {
		return host
	}
	return addr.String()
}

// stateLocked finds or creates the sender's state, applying parole if its
// quarantine expired. Returns nil at the tracking cap for unknown senders
// (admit untracked). Caller holds g.mu.
func (g *senderGate) stateLocked(key string) *senderState {
	st, ok := g.senders[key]
	if !ok {
		if len(g.senders) >= maxTrackedSenders {
			return nil
		}
		st = &senderState{tokens: float64(g.cfg.Burst), last: g.now()}
		g.senders[key] = st
		return st
	}
	if !st.quarantinedUntil.IsZero() && g.now().After(st.quarantinedUntil) {
		// Auto-parole: the cool-down served its sentence. Strikes reset and
		// the bucket refills — a paroled sender starts clean, and a repeat
		// offender just earns the next quarantine.
		st.quarantinedUntil = time.Time{}
		st.strikes = 0
		st.tokens = float64(g.cfg.Burst)
		st.last = g.now()
		g.stats.Paroles.Add(1)
		g.stats.QuarantinedSenders.Add(-1)
	}
	return st
}

// quarantineLocked puts the sender in the penalty box (idempotent within one
// sentence). Caller holds g.mu.
func (g *senderGate) quarantineLocked(st *senderState) {
	if !st.quarantinedUntil.IsZero() {
		return
	}
	st.quarantinedUntil = g.now().Add(g.cfg.Cooldown)
	g.stats.SendersQuarantined.Add(1)
	g.stats.QuarantinedSenders.Add(1)
}

// admit charges one unit (frame or datagram) against the sender's bucket.
// False means the unit must be dropped: the sender is quarantined — either
// already, or right now for exhausting its bucket. Every refusal counts in
// QuarantineDrops.
func (g *senderGate) admit(key string) bool {
	if g == nil {
		return true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(key)
	if st == nil {
		return true // tracking cap: fail open
	}
	if !st.quarantinedUntil.IsZero() {
		g.stats.QuarantineDrops.Add(1)
		return false
	}
	if g.cfg.Rate <= 0 {
		return true
	}
	now := g.now()
	st.tokens += now.Sub(st.last).Seconds() * g.cfg.Rate
	if max := float64(g.cfg.Burst); st.tokens > max {
		st.tokens = max
	}
	st.last = now
	if st.tokens < 1 {
		g.quarantineLocked(st)
		g.stats.QuarantineDrops.Add(1)
		return false
	}
	st.tokens--
	return true
}

// strike records one malformed unit from the sender; MaxStrikes of them earn
// quarantine. Returns true when this strike tripped it.
func (g *senderGate) strike(key string) bool {
	if g == nil || g.cfg.MaxStrikes <= 0 {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(key)
	if st == nil {
		return false
	}
	g.stats.Strikes.Add(1)
	if !st.quarantinedUntil.IsZero() {
		return false
	}
	st.strikes++
	if st.strikes >= g.cfg.MaxStrikes {
		g.quarantineLocked(st)
		return true
	}
	return false
}

// blocked reports whether the sender is currently quarantined, counting the
// probe as a drop when it is (the caller is about to refuse a connection or
// datagram). Admission without charging a token — the TCP accept path uses
// it so a quarantined collector cannot even hold a connection open.
func (g *senderGate) blocked(key string) bool {
	if g == nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stateLocked(key)
	if st == nil || st.quarantinedUntil.IsZero() {
		return false
	}
	g.stats.QuarantineDrops.Add(1)
	return true
}

// Quarantined lists the currently quarantined sender keys, sorted order not
// guaranteed — the /healthz payload's raw material.
func (g *senderGate) Quarantined() []string {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	now := g.now()
	for key, st := range g.senders {
		if !st.quarantinedUntil.IsZero() && now.Before(st.quarantinedUntil) {
			out = append(out, key)
		}
	}
	return out
}
