package transport

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"dcstream/internal/bitvec"
	"dcstream/internal/stats"
	"dcstream/internal/unaligned"
)

func randomVector(seed uint64, bits int) *bitvec.Vector {
	rng := stats.NewRand(seed)
	v := bitvec.New(bits)
	v.FillRandomHalf(rng.Uint64)
	return v
}

func TestAlignedRoundTrip(t *testing.T) {
	for _, bits := range []int{1, 63, 64, 65, 1000, 1 << 17} {
		d := AlignedDigest{RouterID: 42, Epoch: 7, Bitmap: randomVector(uint64(bits), bits)}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		m, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := m.(AlignedDigest)
		if !ok {
			t.Fatalf("decoded %T", m)
		}
		if got.RouterID != 42 || got.Epoch != 7 || !bitvec.Equal(got.Bitmap, d.Bitmap) {
			t.Fatalf("round trip mismatch at %d bits", bits)
		}
	}
}

func TestUnalignedRoundTrip(t *testing.T) {
	dg := &unaligned.Digest{RouterID: 3, Rows: make([][]*bitvec.Vector, 4)}
	seed := uint64(0)
	for g := range dg.Rows {
		dg.Rows[g] = make([]*bitvec.Vector, 10)
		for a := range dg.Rows[g] {
			seed++
			dg.Rows[g][a] = randomVector(seed, 1024)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, UnalignedDigest{Epoch: 11, Digest: dg}); err != nil {
		t.Fatal(err)
	}
	m, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := m.(UnalignedDigest)
	if got.Epoch != 11 || got.Digest.RouterID != 3 {
		t.Fatal("header mismatch")
	}
	for g := range dg.Rows {
		for a := range dg.Rows[g] {
			if !bitvec.Equal(got.Digest.Rows[g][a], dg.Rows[g][a]) {
				t.Fatalf("row (%d,%d) mismatch", g, a)
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	// Bad magic.
	if _, err := Read(bytes.NewReader([]byte{9, 9, 9, 9, 1, 0, 0, 0, 0, 0, 0, 0, 0})); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: %v", err)
	}
	// Oversized frame.
	var buf bytes.Buffer
	Write(&buf, AlignedDigest{Bitmap: bitvec.New(8)})
	b := buf.Bytes()
	b[5], b[6], b[7], b[8] = 0xff, 0xff, 0xff, 0x7f // length field
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversize: %v", err)
	}
	// Unknown type.
	buf.Reset()
	Write(&buf, AlignedDigest{Bitmap: bitvec.New(8)})
	b = buf.Bytes()
	b[4] = 99
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown type: %v", err)
	}
	// Truncated payload.
	buf.Reset()
	Write(&buf, AlignedDigest{Bitmap: randomVector(1, 256)})
	b = buf.Bytes()[:20]
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Tail bits set beyond vector length must be rejected: corrupting the
	// payload now trips the checksum first, which is also ErrBadFrame.
	buf.Reset()
	Write(&buf, AlignedDigest{Bitmap: bitvec.New(4)})
	b = buf.Bytes()
	b[len(b)-1] = 0xf0 // bits 4..7 of a 4-bit vector
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("tail bits: %v", err)
	}
}

func TestReadDetectsBitFlip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, AlignedDigest{RouterID: 1, Bitmap: randomVector(5, 4096)}); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)/2] ^= 0x10 // one flipped bit mid-payload
	if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bit flip not caught: %v", err)
	}
}

func TestTailBitsRejectedEvenWithValidChecksum(t *testing.T) {
	// A peer that *deliberately* sends tail garbage with a matching
	// checksum must still be rejected by the vector decoder.
	dg := AlignedDigest{RouterID: 1, Bitmap: bitvec.New(4)}
	payload, err := encodeAligned(dg)
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-1] = 0xf0
	var buf bytes.Buffer
	hdr := make([]byte, headerLen)
	binaryPut(hdr, payload)
	buf.Write(hdr)
	buf.Write(payload)
	if _, err := Read(&buf); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("valid-checksum tail garbage accepted: %v", err)
	}
}

func TestReadCleanEOF(t *testing.T) {
	if _, err := Read(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestMultipleFramesOneStream(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 5; i++ {
		if err := Write(&buf, AlignedDigest{RouterID: i, Bitmap: randomVector(uint64(i), 128)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		m, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.(AlignedDigest).RouterID != i {
			t.Fatalf("frame %d out of order", i)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("want EOF after last frame, got %v", err)
	}
}

func TestServerClientEndToEnd(t *testing.T) {
	var mu sync.Mutex
	received := map[int]*bitvec.Vector{}
	srv, err := Serve("127.0.0.1:0", func(m Message, _ net.Addr) {
		d := m.(AlignedDigest)
		mu.Lock()
		received[d.RouterID] = d.Bitmap
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const routers = 8
	sent := make([]*bitvec.Vector, routers)
	var wg sync.WaitGroup
	for r := 0; r < routers; r++ {
		sent[r] = randomVector(uint64(100+r), 4096)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				t.Errorf("router %d dial: %v", r, err)
				return
			}
			defer c.Close()
			if err := c.Send(AlignedDigest{RouterID: r, Epoch: 1, Bitmap: sent[r]}); err != nil {
				t.Errorf("router %d send: %v", r, err)
			}
		}(r)
	}
	wg.Wait()

	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n == routers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d digests arrived", n, routers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for r := 0; r < routers; r++ {
		if !bitvec.Equal(received[r], sent[r]) {
			t.Fatalf("router %d digest corrupted in flight", r)
		}
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", func(Message, net.Addr) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if _, err := Dial("127.0.0.1:1", 50*time.Millisecond); err == nil {
		t.Fatal("dial to dead port succeeded")
	}
}

// binaryPut fills a frame header for hand-crafted test frames.
func binaryPut(hdr, payload []byte) {
	hdr[0], hdr[1], hdr[2], hdr[3] = 'D', 'C', 'S', '1'
	hdr[4] = typeAligned
	hdr[5] = byte(len(payload))
	hdr[6], hdr[7], hdr[8] = byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24)
	crc := crc32.Checksum(payload, castagnoli)
	hdr[9], hdr[10], hdr[11], hdr[12] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
}
