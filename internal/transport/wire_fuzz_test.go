package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"dcstream/internal/bitvec"
	"dcstream/internal/unaligned"
)

// encodeFrame renders one message to bytes for corruption experiments.
func encodeFrame(t *testing.T, m Message) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func randomUnaligned(rng *rand.Rand, router, groups, arrays, bits int) *unaligned.Digest {
	d := &unaligned.Digest{RouterID: router, Rows: make([][]*bitvec.Vector, groups)}
	for g := range d.Rows {
		d.Rows[g] = make([]*bitvec.Vector, arrays)
		for a := range d.Rows[g] {
			v := bitvec.New(bits)
			v.FillRandomHalf(rng.Uint64)
			d.Rows[g][a] = v
		}
	}
	return d
}

// TestQuickAlignedRoundTrip drives the aligned codec with random router ids,
// epochs, and bitmap shapes.
func TestQuickAlignedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(router, epoch int32, bitsRaw uint16) bool {
		bits := int(bitsRaw)%4096 + 1
		v := bitvec.New(bits)
		v.FillRandomHalf(rng.Uint64)
		in := AlignedDigest{RouterID: int(router), Epoch: int(epoch), Bitmap: v}
		m, err := Read(bytes.NewReader(encodeFrame(t, in)))
		if err != nil {
			return false
		}
		out, ok := m.(AlignedDigest)
		return ok && out.RouterID == in.RouterID && out.Epoch == in.Epoch && bitvec.Equal(out.Bitmap, in.Bitmap)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnalignedRoundTrip drives the unaligned codec with random
// geometry (always rectangular — ragged digests are rejected at Write).
func TestQuickUnalignedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	f := func(router int32, epoch int32, gRaw, aRaw, bRaw uint8) bool {
		groups, arrays, bits := int(gRaw)%5+1, int(aRaw)%5+1, (int(bRaw)%8+1)*64
		in := UnalignedDigest{Epoch: int(epoch), Digest: randomUnaligned(rng, int(router), groups, arrays, bits)}
		m, err := Read(bytes.NewReader(encodeFrame(t, in)))
		if err != nil {
			return false
		}
		out, ok := m.(UnalignedDigest)
		if !ok || out.Epoch != in.Epoch || out.Digest.RouterID != in.Digest.RouterID {
			return false
		}
		if len(out.Digest.Rows) != groups {
			return false
		}
		for g := range in.Digest.Rows {
			if len(out.Digest.Rows[g]) != arrays {
				return false
			}
			for a := range in.Digest.Rows[g] {
				if !bitvec.Equal(out.Digest.Rows[g][a], in.Digest.Rows[g][a]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteRejectsRaggedUnaligned is the headline wire bugfix: a digest
// whose groups disagree on array count must fail loudly at Write instead of
// serializing a frame that misparses on decode.
func TestWriteRejectsRaggedUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := randomUnaligned(rng, 7, 3, 4, 128)
	d.Rows[1] = d.Rows[1][:2] // ragged: group 1 has 2 arrays, others 4
	var buf bytes.Buffer
	if err := Write(&buf, UnalignedDigest{Epoch: 1, Digest: d}); err == nil {
		t.Fatal("ragged digest serialized")
	}
	if buf.Len() != 0 {
		t.Fatalf("ragged digest wrote %d bytes before failing", buf.Len())
	}
	// Nil rows are rejected too.
	d2 := randomUnaligned(rng, 7, 2, 2, 128)
	d2.Rows[0][1] = nil
	if err := Write(&buf, UnalignedDigest{Digest: d2}); err == nil {
		t.Fatal("nil array serialized")
	}
	// And nil digests/bitmaps.
	if err := Write(&buf, UnalignedDigest{}); err == nil {
		t.Fatal("nil digest serialized")
	}
	if err := Write(&buf, AlignedDigest{RouterID: 1}); err == nil {
		t.Fatal("nil bitmap serialized")
	}
}

// TestCorruptionMatrix flips, truncates, and rewrites every region of valid
// frames and requires Read to fail cleanly (no panic, no silent success).
func TestCorruptionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	frames := [][]byte{
		encodeFrame(t, AlignedDigest{RouterID: 3, Epoch: 9, Bitmap: randomVector(1, 512)}),
		encodeFrame(t, UnalignedDigest{Epoch: 2, Digest: randomUnaligned(rng, 1, 2, 3, 128)}),
	}
	for fi, frame := range frames {
		// Truncations at every prefix length (header and payload).
		for cut := 0; cut < len(frame); cut++ {
			_, err := Read(bytes.NewReader(frame[:cut]))
			if err == nil {
				t.Fatalf("frame %d truncated at %d accepted", fi, cut)
			}
			if cut == 0 && err != io.EOF {
				t.Fatalf("empty stream: want io.EOF, got %v", err)
			}
		}
		// Single-bit flips across the whole frame. Whatever the flip hits
		// (magic, type, length, CRC, payload), Read must reject or — only
		// if it flipped nothing semantic — return identical bytes; with
		// CRC-32C over the payload and a fixed magic, every flip must fail.
		for i := 0; i < len(frame)*8; i += 7 {
			b := append([]byte(nil), frame...)
			b[i/8] ^= 1 << (i % 8)
			if m, err := Read(bytes.NewReader(b)); err == nil {
				// A flip in the length field can only "succeed" by reading
				// beyond the buffer, which ReadFull turns into an error —
				// so any success here is a real codec hole.
				t.Fatalf("frame %d bit %d flipped but decoded %T", fi, i, m)
			}
		}
	}
}

// TestBadGeometryRejected hand-crafts unaligned frames with implausible
// group/array counts.
func TestBadGeometryRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	frame := encodeFrame(t, UnalignedDigest{Epoch: 1, Digest: randomUnaligned(rng, 1, 2, 2, 64)})
	// Payload starts at headerLen; geometry words at offsets 8 and 12.
	for _, mutate := range []func(p []byte){
		func(p []byte) { p[8], p[9], p[10], p[11] = 0xff, 0xff, 0xff, 0x0f },   // absurd group count
		func(p []byte) { p[12], p[13], p[14], p[15] = 0xff, 0xff, 0xff, 0x0f }, // absurd array count
		func(p []byte) { p[8] = 200 },                                          // more groups than vectors present
	} {
		b := append([]byte(nil), frame...)
		payload := b[headerLen:]
		mutate(payload)
		rewriteChecksum(b)
		if _, err := Read(bytes.NewReader(b)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("bad geometry: %v", err)
		}
	}
}

// hostileGeometryFrame builds the 16-byte-payload unaligned frame that used
// to panic the decoder: groups and arrays both 0xFFFFFFFF, whose product
// wraps int64 to a negative number and slipped past the old single-product
// guard into a make() of 2^32-1 group slots.
func hostileGeometryFrame(groups, arrays uint32) []byte {
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint32(payload[0:], 1) // router
	binary.LittleEndian.PutUint32(payload[4:], 1) // epoch
	binary.LittleEndian.PutUint32(payload[8:], groups)
	binary.LittleEndian.PutUint32(payload[12:], arrays)
	frame := make([]byte, headerLen, headerLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], magic)
	frame[4] = typeUnaligned
	binary.LittleEndian.PutUint32(frame[5:], uint32(len(payload)))
	frame = append(frame, payload...)
	rewriteChecksum(frame)
	return frame
}

// TestGeometryOverflowRejected is the decoder-hardening regression test: a
// hostile frame whose dimensions multiply past int64 must be rejected as
// ErrBadFrame, not drive a gigabyte allocation or a makeslice panic.
func TestGeometryOverflowRejected(t *testing.T) {
	for _, dims := range [][2]uint32{
		{0xFFFFFFFF, 0xFFFFFFFF}, // product wraps int64 negative
		{0x10000, 0x10000},       // product 2^32: positive but wraps uint32 to 0
		{1 << 21, 1},             // single dimension over the per-dim bound
		{1, 1 << 21},
		{1 << 13, 1 << 13}, // dims in bound, product over the vector bound
	} {
		frame := hostileGeometryFrame(dims[0], dims[1])
		m, err := Read(bytes.NewReader(frame))
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("geometry %dx%d: got (%v, %v), want ErrBadFrame", dims[0], dims[1], m, err)
		}
	}
	// A plausible geometry with too few payload bytes for even the vector
	// length prefixes is rejected before any per-group allocation.
	frame := hostileGeometryFrame(1<<10, 1<<10)
	if _, err := Read(bytes.NewReader(frame)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("undersized payload: %v", err)
	}
}

// rewriteChecksum fixes up a frame's CRC after deliberate payload edits so
// the test exercises the decoder, not the checksum.
func rewriteChecksum(frame []byte) {
	crc := crc32.Checksum(frame[headerLen:], castagnoli)
	binary.LittleEndian.PutUint32(frame[9:], crc)
}

// FuzzReadFrame feeds arbitrary bytes to the frame decoder; the engine
// grows the corpus from the seeded valid frames. Read must never panic or
// allocate unboundedly, only return a message or an error.
func FuzzReadFrame(f *testing.F) {
	rng := rand.New(rand.NewSource(29))
	var buf bytes.Buffer
	Write(&buf, AlignedDigest{RouterID: 2, Epoch: 5, Bitmap: randomVector(3, 256)})
	f.Add(buf.Bytes())
	buf.Reset()
	Write(&buf, UnalignedDigest{Epoch: 1, Digest: randomUnaligned(rng, 4, 2, 3, 128)})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{'D', 'C', 'S', '1', 1, 0, 0, 0, 0, 0, 0, 0, 0})
	// The geometry-overflow frame that once drove a makeslice panic.
	f.Add(hostileGeometryFrame(0xFFFFFFFF, 0xFFFFFFFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			m, err := Read(r)
			if err != nil {
				return
			}
			// Decoded messages must re-encode cleanly: decode output always
			// satisfies the invariants Write checks.
			if err := Write(io.Discard, m); err != nil {
				t.Fatalf("decoded message fails re-encode: %v", err)
			}
		}
	})
}
