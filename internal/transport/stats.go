package transport

import "dcstream/internal/metrics"

// Stats counts transport-level events with atomic counters so the server's
// per-connection goroutines and a ReconnectingClient's sender can bump them
// without locks, and cmd/dcsd can snapshot them while traffic flows. The
// fields are registry-grade metrics (their Add/Load API matches
// sync/atomic's), so Register can expose the same values on /metrics without
// a second set of books.
//
// A Stats value must not be copied after first use. The zero value is ready.
type Stats struct {
	// FramesIn counts frames decoded successfully (server side).
	FramesIn metrics.Counter
	// FramesOut counts frames written successfully (client side).
	FramesOut metrics.Counter
	// BadFrames counts frames rejected as malformed or checksum-failed
	// (ErrBadFrame); each one costs the offending connection its life but
	// leaves every other collector connected.
	BadFrames metrics.Counter
	// ConnsAccepted counts collector connections accepted.
	ConnsAccepted metrics.Counter
	// ConnsReaped counts connections closed by the server's read deadline
	// (dead or stalled collectors).
	ConnsReaped metrics.Counter
	// Reconnects counts successful re-dials by ReconnectingClient after the
	// initial connection (0 while the first dial is still pending).
	Reconnects metrics.Counter
	// Resends counts frames that had to be written again on a fresh
	// connection after a mid-write failure.
	Resends metrics.Counter
	// DroppedSends counts messages refused by a full ReconnectingClient
	// buffer — digests lost on the collector side, never sent.
	DroppedSends metrics.Counter
	// AbandonedOnClose counts messages still undelivered when Close ran —
	// the caller chose to stop before Flush emptied the buffer.
	AbandonedOnClose metrics.Counter
	// DialAttempts counts ReconnectingClient connection attempts, failed or
	// not. Against a healthy center this tracks Reconnects+1; a rate far
	// above the configured backoff ceiling is the signature of something
	// defeating the backoff.
	DialAttempts metrics.Counter
	// ConnLifetimeSeconds observes how long each server-side collector
	// connection lived, accept to close. Short lifetimes under load are the
	// signature of a flapping collector or an over-aggressive ReadTimeout.
	ConnLifetimeSeconds metrics.Histogram

	// DatagramsOut counts datagrams a BatchingUDPClient handed to the
	// kernel; each carries one or more digest frames (see FramesOut).
	DatagramsOut metrics.Counter
	// DatagramsIn counts datagrams a UDPServer accepted past the prefilter
	// and header decode.
	DatagramsIn metrics.Counter
	// DatagramsRejected counts datagrams the cheap magic+length prefilter
	// (or header decode) refused before any allocation — port scans, stray
	// traffic, truncated garbage.
	DatagramsRejected metrics.Counter
	// DatagramsLost counts sequence-number gaps observed per sender: each
	// missing seq is one datagram (and all its frames) presumed dropped in
	// flight. A datagram that later arrives out of order is counted in
	// DatagramsLate but not subtracted here — the counter is a loss
	// estimate for monitoring, not a ledger.
	DatagramsLost metrics.Counter
	// DatagramsLate counts datagrams arriving with a sequence number at or
	// below the sender's highest seen — reordered or duplicated in flight.
	// Their frames are still delivered; the center's duplicate accounting
	// resolves them.
	DatagramsLate metrics.Counter
	// FramesPerDatagram observes how many digest frames each accepted
	// datagram carried — the batching efficacy of the UDP path.
	FramesPerDatagram metrics.Histogram
	// PeerEvictions counts per-sender sequence-accounting entries dropped
	// to keep the peers map within its MaxPeers bound — idle entries expired
	// past the quarantine cooldown, or the least-recently-seen entry when
	// nothing is idle.
	PeerEvictions metrics.Counter
	// SenderRestarts counts sequence marks reset after a detected collector
	// restart (seq renumbered from 1 after a quiet gap). Without the reset,
	// the whole post-restart stream would count as late.
	SenderRestarts metrics.Counter

	// SendersQuarantined counts quarantine sentences handed out by the
	// admission gate (a repeat offender counts once per sentence);
	// QuarantinedSenders is the number currently serving one.
	SendersQuarantined metrics.Counter
	QuarantinedSenders metrics.Gauge
	// QuarantineDrops counts frames, datagrams, and connection attempts
	// refused because their sender was quarantined (including the unit that
	// earned the sentence).
	QuarantineDrops metrics.Counter
	// Strikes counts malformed units the gate charged against tracked
	// senders — each one also appears in BadFrames or DatagramsRejected,
	// which keep counting whether or not a gate is running.
	Strikes metrics.Counter
	// Paroles counts quarantined senders released after their cool-down.
	Paroles metrics.Counter
}

// Register exposes every counter (and the connection-lifetime histogram) on
// r, each name prefixed with ns (empty means "dcs_transport"). The fields
// stay the single source of truth: registration attaches them, it does not
// copy them. Pass distinct namespaces to register several Stats — say a
// server's and a client's — on one registry.
func (s *Stats) Register(r *metrics.Registry, ns string) {
	if ns == "" {
		ns = "dcs_transport"
	}
	r.RegisterCounter(ns+"_frames_in_total",
		"frames decoded successfully (server side)", &s.FramesIn)
	r.RegisterCounter(ns+"_frames_out_total",
		"frames written successfully (client side)", &s.FramesOut)
	r.RegisterCounter(ns+"_frames_bad_total",
		"frames rejected as malformed or checksum-failed", &s.BadFrames)
	r.RegisterCounter(ns+"_conns_accepted_total",
		"collector connections accepted", &s.ConnsAccepted)
	r.RegisterCounter(ns+"_conns_reaped_total",
		"connections closed by the server's read deadline", &s.ConnsReaped)
	r.RegisterCounter(ns+"_reconnects_total",
		"successful re-dials after the initial connection", &s.Reconnects)
	r.RegisterCounter(ns+"_resends_total",
		"frames rewritten on a fresh connection after a mid-write failure", &s.Resends)
	r.RegisterCounter(ns+"_sends_dropped_total",
		"messages refused by a full reconnect buffer", &s.DroppedSends)
	r.RegisterCounter(ns+"_abandoned_on_close_total",
		"messages still undelivered when Close ran", &s.AbandonedOnClose)
	r.RegisterCounter(ns+"_dial_attempts_total",
		"reconnecting-client connection attempts, failed or not", &s.DialAttempts)
	r.RegisterHistogram(ns+"_conn_lifetime_seconds",
		"server-side collector connection lifetimes, accept to close", &s.ConnLifetimeSeconds)
	r.RegisterCounter(ns+"_datagrams_out_total",
		"datagrams handed to the kernel by the batching UDP client", &s.DatagramsOut)
	r.RegisterCounter(ns+"_datagrams_in_total",
		"datagrams accepted past the UDP prefilter and header decode", &s.DatagramsIn)
	r.RegisterCounter(ns+"_datagrams_rejected_total",
		"datagrams refused by the magic+length prefilter before allocation", &s.DatagramsRejected)
	r.RegisterCounter(ns+"_datagrams_lost_total",
		"datagrams presumed dropped in flight (per-sender sequence gaps)", &s.DatagramsLost)
	r.RegisterCounter(ns+"_datagrams_late_total",
		"datagrams arriving reordered or duplicated (seq at or below highest seen)", &s.DatagramsLate)
	r.RegisterHistogram(ns+"_frames_per_datagram",
		"digest frames carried per accepted datagram", &s.FramesPerDatagram)
	r.RegisterCounter(ns+"_peer_evictions_total",
		"per-sender sequence entries evicted to bound the peers map", &s.PeerEvictions)
	r.RegisterCounter(ns+"_sender_restarts_total",
		"sequence marks reset after a detected collector restart", &s.SenderRestarts)
	r.RegisterCounter(ns+"_quarantined_senders_total",
		"quarantine sentences handed out by the admission gate", &s.SendersQuarantined)
	r.RegisterGauge(ns+"_quarantined_senders",
		"senders currently serving a quarantine sentence", &s.QuarantinedSenders)
	r.RegisterCounter(ns+"_quarantined_drops_total",
		"frames, datagrams, and connections refused from quarantined senders", &s.QuarantineDrops)
	r.RegisterCounter(ns+"_quarantine_strikes_total",
		"malformed units charged against tracked senders by the gate", &s.Strikes)
	r.RegisterCounter(ns+"_quarantine_paroles_total",
		"quarantined senders released after their cool-down", &s.Paroles)
}

// Snapshot is a plain-int copy of Stats, safe to compare and print.
type Snapshot struct {
	FramesIn, FramesOut, BadFrames                      int64
	ConnsAccepted, ConnsReaped                          int64
	Reconnects, Resends, DroppedSends, AbandonedOnClose int64
	DialAttempts                                        int64
	DatagramsOut, DatagramsIn, DatagramsRejected        int64
	DatagramsLost, DatagramsLate                        int64
	PeerEvictions, SenderRestarts                       int64
	SendersQuarantined, QuarantinedSenders              int64
	QuarantineDrops, Strikes, Paroles                   int64
}

// Snapshot reads every counter once. Counters advance independently, so the
// snapshot is not a single atomic cut — fine for monitoring.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		FramesIn:           s.FramesIn.Load(),
		FramesOut:          s.FramesOut.Load(),
		BadFrames:          s.BadFrames.Load(),
		ConnsAccepted:      s.ConnsAccepted.Load(),
		ConnsReaped:        s.ConnsReaped.Load(),
		Reconnects:         s.Reconnects.Load(),
		Resends:            s.Resends.Load(),
		DroppedSends:       s.DroppedSends.Load(),
		AbandonedOnClose:   s.AbandonedOnClose.Load(),
		DialAttempts:       s.DialAttempts.Load(),
		DatagramsOut:       s.DatagramsOut.Load(),
		DatagramsIn:        s.DatagramsIn.Load(),
		DatagramsRejected:  s.DatagramsRejected.Load(),
		DatagramsLost:      s.DatagramsLost.Load(),
		DatagramsLate:      s.DatagramsLate.Load(),
		PeerEvictions:      s.PeerEvictions.Load(),
		SenderRestarts:     s.SenderRestarts.Load(),
		SendersQuarantined: s.SendersQuarantined.Load(),
		QuarantinedSenders: s.QuarantinedSenders.Load(),
		QuarantineDrops:    s.QuarantineDrops.Load(),
		Strikes:            s.Strikes.Load(),
		Paroles:            s.Paroles.Load(),
	}
}
