package transport

import "sync/atomic"

// Stats counts transport-level events with atomic counters so the server's
// per-connection goroutines and a ReconnectingClient's sender can bump them
// without locks, and cmd/dcsd can snapshot them while traffic flows.
//
// A Stats value must not be copied after first use. The zero value is ready.
type Stats struct {
	// FramesIn counts frames decoded successfully (server side).
	FramesIn atomic.Int64
	// FramesOut counts frames written successfully (client side).
	FramesOut atomic.Int64
	// BadFrames counts frames rejected as malformed or checksum-failed
	// (ErrBadFrame); each one costs the offending connection its life but
	// leaves every other collector connected.
	BadFrames atomic.Int64
	// ConnsAccepted counts collector connections accepted.
	ConnsAccepted atomic.Int64
	// ConnsReaped counts connections closed by the server's read deadline
	// (dead or stalled collectors).
	ConnsReaped atomic.Int64
	// Reconnects counts successful re-dials by ReconnectingClient after the
	// initial connection (0 while the first dial is still pending).
	Reconnects atomic.Int64
	// Resends counts frames that had to be written again on a fresh
	// connection after a mid-write failure.
	Resends atomic.Int64
	// DroppedSends counts messages refused by a full ReconnectingClient
	// buffer — digests lost on the collector side, never sent.
	DroppedSends atomic.Int64
	// AbandonedOnClose counts messages still undelivered when Close ran —
	// the caller chose to stop before Flush emptied the buffer.
	AbandonedOnClose atomic.Int64
}

// Snapshot is a plain-int copy of Stats, safe to compare and print.
type Snapshot struct {
	FramesIn, FramesOut, BadFrames                      int64
	ConnsAccepted, ConnsReaped                          int64
	Reconnects, Resends, DroppedSends, AbandonedOnClose int64
}

// Snapshot reads every counter once. Counters advance independently, so the
// snapshot is not a single atomic cut — fine for monitoring.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		FramesIn:         s.FramesIn.Load(),
		FramesOut:        s.FramesOut.Load(),
		BadFrames:        s.BadFrames.Load(),
		ConnsAccepted:    s.ConnsAccepted.Load(),
		ConnsReaped:      s.ConnsReaped.Load(),
		Reconnects:       s.Reconnects.Load(),
		Resends:          s.Resends.Load(),
		DroppedSends:     s.DroppedSends.Load(),
		AbandonedOnClose: s.AbandonedOnClose.Load(),
	}
}
