package core

import "testing"

func TestMonitorValidation(t *testing.T) {
	for _, cfg := range []MonitorConfig{
		{Window: 0, MinHits: 1, SampleEvery: 1},
		{Window: 3, MinHits: 0, SampleEvery: 1},
		{Window: 3, MinHits: 4, SampleEvery: 1},
		{Window: 3, MinHits: 1, SampleEvery: 0},
	} {
		if _, err := NewMonitor(cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestMonitorAlarmWindow(t *testing.T) {
	m, err := NewMonitor(MonitorConfig{Window: 3, MinHits: 2, SampleEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Record(true) {
		t.Fatal("alarm after 1 hit with MinHits=2")
	}
	if !m.Record(true) {
		t.Fatal("no alarm after 2 hits in window")
	}
	// Misses push the hits out of the window.
	m.Record(false)
	if !m.Alarm() {
		t.Fatal("alarm should persist while 2 hits remain in window")
	}
	m.Record(false)
	if m.Alarm() {
		t.Fatal("alarm should clear once hits leave the window")
	}
	st := m.Stats()
	if st.Epochs != 4 || st.Analyzed != 4 || st.Detections != 2 || st.WindowHits != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMonitorCatchesIntermittentPattern(t *testing.T) {
	// A pattern detected in 1 of every 3 epochs (per-epoch FN = 2/3) is
	// still caught within a 6-epoch window at MinHits=2 — the paper's
	// "caught in the following seconds" argument.
	m, _ := NewMonitor(MonitorConfig{Window: 6, MinHits: 2, SampleEvery: 1})
	alarmed := false
	for e := 0; e < 12; e++ {
		if m.Record(e%3 == 0) {
			alarmed = true
		}
	}
	if !alarmed {
		t.Fatal("intermittent pattern never raised the alarm")
	}
}

func TestMonitorSampling(t *testing.T) {
	m, _ := NewMonitor(MonitorConfig{Window: 4, MinHits: 1, SampleEvery: 3})
	analyzed := 0
	for e := 0; e < 9; e++ {
		if m.ShouldAnalyze() {
			analyzed++
			m.Record(false)
		} else {
			m.RecordSkipped()
		}
	}
	if analyzed != 3 {
		t.Fatalf("analyzed %d of 9 epochs with SampleEvery=3", analyzed)
	}
	st := m.Stats()
	if st.Epochs != 9 || st.Analyzed != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestMonitorReset(t *testing.T) {
	m, _ := NewMonitor(MonitorConfig{Window: 2, MinHits: 1, SampleEvery: 1})
	m.Record(true)
	m.Reset()
	if m.Alarm() || m.Stats().Epochs != 0 {
		t.Fatal("Reset incomplete")
	}
}
