package core

import (
	"testing"

	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
	"dcstream/internal/unaligned"
)

func TestNewAlignedValidation(t *testing.T) {
	if _, err := NewAligned(AlignedConfig{Routers: 1, BitmapBits: 64}); err == nil {
		t.Fatal("single-router system accepted")
	}
	if _, err := NewAligned(AlignedConfig{Routers: 4, BitmapBits: 0}); err == nil {
		t.Fatal("zero-width bitmap accepted")
	}
}

func TestAlignedSystemEndToEnd(t *testing.T) {
	const routers = 48
	const bits = 1 << 13
	sys, err := NewAligned(AlignedConfig{Routers: routers, BitmapBits: bits, HashSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Routers() != routers {
		t.Fatalf("Routers()=%d", sys.Routers())
	}
	rng := stats.NewRand(6)
	content := trafficgen.NewContent(rng, 14, 536)
	for r := 0; r < routers; r++ {
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 2500, SegmentSize: 536,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range bg {
			sys.Router(r).Update(p)
		}
		if r < 20 { // 20 of 48 routers carry the content
			for _, p := range content.PlantAligned(packet.FlowLabel(r), 536) {
				sys.Router(r).Update(p)
			}
		}
	}
	rep, err := sys.EndEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detection.Found {
		t.Fatal("planted 20x14 content not detected")
	}
	carriers := 0
	for _, r := range rep.Detection.Rows {
		if r < 20 {
			carriers++
		}
	}
	if carriers < 18 {
		t.Fatalf("only %d/20 carrier routers identified", carriers)
	}
	if rep.DigestBytes != int64(routers*bits/8) {
		t.Fatalf("digest accounting %d bytes, want %d", rep.DigestBytes, routers*bits/8)
	}
	// Collectors reset for the next epoch.
	if sys.Router(0).Packets() != 0 {
		t.Fatal("collector not reset after EndEpoch")
	}
}

func TestAlignedSystemNoContent(t *testing.T) {
	sys, err := NewAligned(AlignedConfig{Routers: 24, BitmapBits: 1 << 12, HashSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(10)
	for r := 0; r < 24; r++ {
		bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 1300, SegmentSize: 536})
		for _, p := range bg {
			sys.Router(r).Update(p)
		}
	}
	rep, err := sys.EndEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detection.Found {
		t.Fatalf("false positive on pure background: rows=%v", rep.Detection.Rows)
	}
}

func unalignedTestConfig() UnalignedConfig {
	return UnalignedConfig{
		Routers: 20,
		Collector: unaligned.CollectorConfig{
			Groups: 4, ArraysPerGroup: 10, ArrayBits: 512,
			SegmentSize: 100, FragmentLen: 8, MinPayload: 40,
			HashSeed: 77,
		},
		Seed: 21,
	}
}

func TestNewUnalignedValidation(t *testing.T) {
	cfg := unalignedTestConfig()
	cfg.Routers = 1
	if _, err := NewUnaligned(cfg); err == nil {
		t.Fatal("single-router system accepted")
	}
	cfg = unalignedTestConfig()
	cfg.Collector.Groups = 0
	if _, err := NewUnaligned(cfg); err == nil {
		t.Fatal("bad collector config accepted")
	}
}

func TestUnalignedSystemEndToEnd(t *testing.T) {
	cfg := unalignedTestConfig()
	sys, err := NewUnaligned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.ComponentThreshold() <= 0 {
		t.Fatal("component threshold not calibrated")
	}
	rng := stats.NewRand(22)
	content := trafficgen.NewContent(rng, 60, cfg.Collector.SegmentSize)
	prefix := make([]byte, cfg.Collector.SegmentSize)
	rng.Read(prefix)

	const carriers = 14
	carrierRouter := map[int]bool{}
	for r := 0; r < cfg.Routers; r++ {
		bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 183 * cfg.Collector.Groups, SegmentSize: cfg.Collector.SegmentSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range bg {
			sys.Router(r).Update(p)
		}
		if r < carriers {
			carrierRouter[r] = true
			l := rng.Intn(cfg.Collector.SegmentSize)
			for _, p := range packet.Instance(packet.FlowLabel(1<<50|uint64(r)), content.Data, prefix, l, cfg.Collector.SegmentSize) {
				sys.Router(r).Update(p)
			}
		}
	}
	rep, err := sys.EndEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ER.PatternDetected {
		t.Fatalf("ER test negative: largest component %d < %d",
			rep.ER.LargestComponent, rep.ER.Threshold)
	}
	tp := 0
	for _, r := range rep.RouterIDs {
		if carrierRouter[r] {
			tp++
		}
	}
	if tp < carriers/2 {
		t.Fatalf("identified %d/%d carrier routers (got %v)", tp, carriers, rep.RouterIDs)
	}
	if rep.DigestBytes == 0 {
		t.Fatal("digest accounting missing")
	}
	if sys.Router(0).Packets() != 0 {
		t.Fatal("collector not reset after EndEpoch")
	}
}

func TestUnalignedSystemNullEpoch(t *testing.T) {
	cfg := unalignedTestConfig()
	cfg.Seed = 99
	sys, err := NewUnaligned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(100)
	for r := 0; r < cfg.Routers; r++ {
		bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{
			Packets: 183 * cfg.Collector.Groups, SegmentSize: cfg.Collector.SegmentSize,
		})
		for _, p := range bg {
			sys.Router(r).Update(p)
		}
	}
	rep, err := sys.EndEpoch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ER.PatternDetected {
		t.Fatalf("false positive: largest component %d >= %d",
			rep.ER.LargestComponent, rep.ER.Threshold)
	}
	if len(rep.Vertices) != 0 || len(rep.RouterIDs) != 0 {
		t.Fatal("core finder ran despite negative ER test")
	}
}

func TestCalibrateComponentThreshold(t *testing.T) {
	th := CalibrateComponentThreshold(1, 5000, 0.5/5000, 10)
	if th < 4 || th > 200 {
		t.Fatalf("implausible threshold %d for subcritical G(5000, 1e-4)", th)
	}
}

func TestAlignedSystemMultipleEpochs(t *testing.T) {
	// The same system must serve consecutive epochs independently: content
	// present only in epoch 2 must be detected only there.
	sys, err := NewAligned(AlignedConfig{Routers: 24, BitmapBits: 1 << 12, HashSeed: 13})
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRand(14)
	content := trafficgen.NewContent(rng, 12, 536)
	feed := func(plant bool) AlignedReport {
		for r := 0; r < 24; r++ {
			bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 1300, SegmentSize: 536})
			for _, p := range bg {
				sys.Router(r).Update(p)
			}
			if plant && r < 12 {
				for _, p := range content.PlantAligned(packet.FlowLabel(r), 536) {
					sys.Router(r).Update(p)
				}
			}
		}
		rep, err := sys.EndEpoch()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := feed(false); rep.Detection.Found {
		t.Fatal("epoch 1 (no content) detected a pattern")
	}
	if rep := feed(true); !rep.Detection.Found {
		t.Fatal("epoch 2 (planted) missed the pattern")
	}
	if rep := feed(false); rep.Detection.Found {
		t.Fatal("epoch 3 (no content) detected a stale pattern — reset leak")
	}
}
