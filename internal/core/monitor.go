package core

import "fmt"

// MonitorConfig configures cross-epoch alarm persistence. The paper notes
// that per-epoch false negatives are tolerable because "such detection is
// performed every second — even if the pattern is missed in one second, it
// may be caught in the following seconds" (§V-B.1), and that sampling a
// fraction of the measurement epochs is a legitimate way to shed analysis
// load (§IV-D, fifth possibility). Monitor implements both.
type MonitorConfig struct {
	// Window is the sliding window length in analyzed epochs.
	Window int
	// MinHits raises the alarm when at least this many of the last Window
	// analyzed epochs detected a pattern. 1 alarms on any detection;
	// higher values suppress isolated per-epoch false positives.
	MinHits int
	// SampleEvery analyzes only every k-th epoch (1 = every epoch) —
	// §IV-D's epoch sampling. Skipped epochs cost nothing and do not enter
	// the window.
	SampleEvery int
}

// Validate reports whether the configuration is usable.
func (c MonitorConfig) Validate() error {
	if c.Window <= 0 {
		return fmt.Errorf("core: monitor window must be positive, got %d", c.Window)
	}
	if c.MinHits <= 0 || c.MinHits > c.Window {
		return fmt.Errorf("core: MinHits %d outside [1,%d]", c.MinHits, c.Window)
	}
	if c.SampleEvery <= 0 {
		return fmt.Errorf("core: SampleEvery must be positive, got %d", c.SampleEvery)
	}
	return nil
}

// Monitor tracks per-epoch detection outcomes and raises a persistent alarm.
// It is driven by the caller's epoch loop:
//
//	for each epoch {
//	    if mon.ShouldAnalyze() {
//	        rep, _ := sys.EndEpoch()
//	        mon.Record(rep.ER.PatternDetected)
//	    } else {
//	        mon.RecordSkipped() // collectors just reset, no analysis
//	    }
//	    if mon.Alarm() { ... }
//	}
type Monitor struct {
	cfg      MonitorConfig
	window   []bool
	epochs   int
	analyzed int
	hits     int
	total    int
}

// NewMonitor builds a monitor.
func NewMonitor(cfg MonitorConfig) (*Monitor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Monitor{cfg: cfg}, nil
}

// ShouldAnalyze reports whether the upcoming epoch falls on the sampling
// grid. The first epoch is always analyzed.
func (m *Monitor) ShouldAnalyze() bool {
	return m.epochs%m.cfg.SampleEvery == 0
}

// RecordSkipped advances the epoch counter for an unanalyzed epoch.
func (m *Monitor) RecordSkipped() { m.epochs++ }

// Record adds one analyzed epoch's detection outcome and returns the alarm
// state after it.
func (m *Monitor) Record(detected bool) bool {
	m.epochs++
	m.analyzed++
	if detected {
		m.total++
	}
	m.window = append(m.window, detected)
	if detected {
		m.hits++
	}
	if len(m.window) > m.cfg.Window {
		if m.window[0] {
			m.hits--
		}
		m.window = m.window[1:]
	}
	return m.Alarm()
}

// Alarm reports whether the sliding window currently meets MinHits.
func (m *Monitor) Alarm() bool { return m.hits >= m.cfg.MinHits }

// Stats summarizes the monitor's history.
type MonitorStats struct {
	// Epochs counts every epoch seen (analyzed or skipped).
	Epochs int
	// Analyzed counts epochs that went through the analysis module.
	Analyzed int
	// Detections counts analyzed epochs that reported a pattern.
	Detections int
	// WindowHits is the current number of positive epochs in the window.
	WindowHits int
}

// Stats returns the current counters.
func (m *Monitor) Stats() MonitorStats {
	return MonitorStats{
		Epochs:     m.epochs,
		Analyzed:   m.analyzed,
		Detections: m.total,
		WindowHits: m.hits,
	}
}

// Reset clears the window and counters.
func (m *Monitor) Reset() {
	m.window = m.window[:0]
	m.epochs, m.analyzed, m.hits, m.total = 0, 0, 0, 0
}
