// Package core is the public face of the DCS (Distributed Collaborative
// Streaming) library: it assembles the per-link collection modules and the
// central analysis module into ready-to-run systems for both of the paper's
// cases. A typical use:
//
//	sys, _ := core.NewAligned(core.AlignedConfig{Routers: 64, BitmapBits: 1 << 16})
//	for r, pkts := range trafficPerRouter {
//	    for _, p := range pkts {
//	        sys.Router(r).Update(p)
//	    }
//	}
//	report, _ := sys.EndEpoch()
//	if report.Detection.Found { ... }
//
// The examples/ directory shows complete scenarios for both cases and for
// shipping digests over TCP.
package core

import (
	"fmt"
	"math"
	"sort"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/stats"
	"dcstream/internal/unaligned"
)

// AlignedConfig assembles an aligned-case DCS system.
type AlignedConfig struct {
	// Routers is the number of monitored links.
	Routers int
	// BitmapBits is each router's bitmap width n. The paper sizes this to
	// hold one epoch at half fill (4M bits for OC-48); smaller deployments
	// scale it down with their epoch packet count.
	BitmapBits int
	// HashSeed must be shared across the deployment.
	HashSeed uint64
	// PrefixLen optionally hashes only each payload's first bytes.
	PrefixLen int
	// Detector overrides the analysis configuration. The zero value picks
	// the refined detector with SubsetSize ≈ max(64, 4·√n) capped at 4000,
	// mirroring the paper's 4000-of-4M choice.
	Detector aligned.DetectorConfig
}

// AlignedReport is the analysis outcome of one epoch.
type AlignedReport struct {
	// Detection is the raw detector output (found flag, routers, columns,
	// weight-loss trace).
	Detection aligned.Detection
	// DigestBytes is the total digest volume shipped this epoch, for
	// comparing against raw aggregation.
	DigestBytes int64
}

// AlignedSystem owns one collector per router plus the analysis module.
type AlignedSystem struct {
	cfg        AlignedConfig
	collectors []*aligned.Collector
}

// NewAligned builds an aligned-case system.
func NewAligned(cfg AlignedConfig) (*AlignedSystem, error) {
	if cfg.Routers <= 1 {
		return nil, fmt.Errorf("core: need at least 2 routers, got %d", cfg.Routers)
	}
	if cfg.Detector.SubsetSize == 0 {
		ss := int(4 * math.Sqrt(float64(cfg.BitmapBits)))
		if ss < 64 {
			ss = 64
		}
		if ss > 4000 {
			ss = 4000
		}
		cfg.Detector = aligned.RefinedConfig(ss)
	}
	sys := &AlignedSystem{cfg: cfg}
	for r := 0; r < cfg.Routers; r++ {
		c, err := aligned.NewCollector(aligned.CollectorConfig{
			Bits: cfg.BitmapBits, HashSeed: cfg.HashSeed, PrefixLen: cfg.PrefixLen,
		})
		if err != nil {
			return nil, err
		}
		sys.collectors = append(sys.collectors, c)
	}
	return sys, nil
}

// Router returns router r's collection module.
func (s *AlignedSystem) Router(r int) *aligned.Collector { return s.collectors[r] }

// Routers returns the fleet size.
func (s *AlignedSystem) Routers() int { return len(s.collectors) }

// EndEpoch gathers every router's digest, runs the ASID detector, resets the
// collectors for the next epoch, and reports.
func (s *AlignedSystem) EndEpoch() (AlignedReport, error) {
	digests := make([]*bitvec.Vector, len(s.collectors))
	var shipped int64
	for r, c := range s.collectors {
		digests[r] = c.Digest()
		shipped += int64(len(digests[r].Words()) * 8)
		c.Reset()
	}
	det, err := aligned.Detect(aligned.FromDigests(digests), s.cfg.Detector)
	if err != nil {
		return AlignedReport{}, err
	}
	return AlignedReport{Detection: det, DigestBytes: shipped}, nil
}

// UnalignedConfig assembles an unaligned-case DCS system.
type UnalignedConfig struct {
	// Routers is the number of monitored links.
	Routers int
	// Collector configures every router's streaming module; OffsetSeed is
	// overridden per router (each router draws its own offsets, §IV-A).
	Collector unaligned.CollectorConfig
	// TargetP1 is the background edge probability for the Erdős–Rényi
	// test graph; zero means 0.5/n (safely below the 1/n transition).
	TargetP1 float64
	// ComponentThreshold is the ER-test decision boundary on the largest
	// connected component. Zero calibrates it from null-model Monte-Carlo
	// at construction time.
	ComponentThreshold int
	// Pattern configures the core finder; zero values pick
	// Beta = max(8, n/64) and D = 3.
	Pattern unaligned.PatternConfig
	// CoreP1 is the (higher) edge probability used for the core-finding
	// graph G′ (the paper uses 0.8e-4 at n=102,400, well above 1/n);
	// zero means 8/n.
	CoreP1 float64
	// Seed drives threshold calibration and per-router offset seeds.
	Seed uint64
	// Workers parallelizes the pairwise-correlation pass (§IV-D's third
	// complexity remedy). Zero means GOMAXPROCS, negative means serial;
	// results are identical at every setting.
	Workers int
}

// UnalignedReport is the analysis outcome of one epoch.
type UnalignedReport struct {
	// ER is the statistical test outcome ("is there common content?").
	ER unaligned.ERTestResult
	// Vertices identifies the (router, group) slots that the core finder
	// believes carry the content; empty when the ER test is negative.
	Vertices []unaligned.Vertex
	// RouterIDs is the deduplicated router list derived from Vertices.
	RouterIDs []int
	// DigestBytes is the digest volume shipped this epoch.
	DigestBytes int64
}

// UnalignedSystem owns one collector per router plus the analysis module.
type UnalignedSystem struct {
	cfg        UnalignedConfig
	collectors []*unaligned.Collector
	testTable  *unaligned.LambdaTable
	coreTable  *unaligned.LambdaTable
	threshold  int
}

// NewUnaligned builds an unaligned-case system and calibrates the ER-test
// component threshold against the null model if none was given.
func NewUnaligned(cfg UnalignedConfig) (*UnalignedSystem, error) {
	if cfg.Routers <= 1 {
		return nil, fmt.Errorf("core: need at least 2 routers, got %d", cfg.Routers)
	}
	if err := cfg.Collector.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Routers * cfg.Collector.Groups
	if cfg.TargetP1 == 0 {
		cfg.TargetP1 = 0.5 / float64(n)
	}
	if cfg.CoreP1 == 0 {
		cfg.CoreP1 = 8 / float64(n)
	}
	if cfg.Pattern.Beta == 0 {
		cfg.Pattern.Beta = n / 64
		if cfg.Pattern.Beta < 8 {
			cfg.Pattern.Beta = 8
		}
	}
	if cfg.Pattern.D == 0 {
		cfg.Pattern.D = 3
	}

	rowPairs := cfg.Collector.ArraysPerGroup * cfg.Collector.ArraysPerGroup
	testTable, err := unaligned.NewLambdaTable(cfg.Collector.ArrayBits,
		unaligned.PStarForEdgeProbability(cfg.TargetP1, rowPairs))
	if err != nil {
		return nil, err
	}
	coreTable, err := unaligned.NewLambdaTable(cfg.Collector.ArrayBits,
		unaligned.PStarForEdgeProbability(cfg.CoreP1, rowPairs))
	if err != nil {
		return nil, err
	}

	sys := &UnalignedSystem{cfg: cfg, testTable: testTable, coreTable: coreTable}
	for r := 0; r < cfg.Routers; r++ {
		c := cfg.Collector
		c.OffsetSeed = cfg.Seed ^ (uint64(r+1) * 0x9e3779b97f4a7c15)
		col, err := unaligned.NewCollector(c)
		if err != nil {
			return nil, err
		}
		sys.collectors = append(sys.collectors, col)
	}

	sys.threshold = cfg.ComponentThreshold
	if sys.threshold == 0 {
		sys.threshold = CalibrateComponentThreshold(cfg.Seed, n, cfg.TargetP1, 20)
	}
	return sys, nil
}

// CalibrateComponentThreshold Monte-Carlos the null model G(n, p1) and
// returns a decision boundary with headroom above the largest component ever
// observed (trials runs). Exposed so operators can pre-compute thresholds.
func CalibrateComponentThreshold(seed uint64, n int, p1 float64, trials int) int {
	rng := stats.NewRand(seed ^ 0xc0ffee)
	model := unaligned.Model{N: n, ArrayBits: 1024}
	max := 0
	for t := 0; t < trials; t++ {
		if lc := model.SampleNull(rng, p1).LargestComponent(); lc > max {
			max = lc
		}
	}
	// Headroom: half again the worst null observation plus slack. At paper
	// scale (n=102,400, p1=0.65e-5) this lands near the paper's threshold
	// of 100; at the reduced scales of tests and examples it stays tight
	// enough for patterns of a dozen vertices.
	return max + max/2 + 2
}

// Router returns router r's collection module.
func (s *UnalignedSystem) Router(r int) *unaligned.Collector { return s.collectors[r] }

// Routers returns the fleet size.
func (s *UnalignedSystem) Routers() int { return len(s.collectors) }

// ComponentThreshold returns the ER-test decision boundary in use.
func (s *UnalignedSystem) ComponentThreshold() int { return s.threshold }

// EndEpoch gathers digests, runs the ER statistical test and — when it
// fires — the greedy core finder, resets the collectors, and reports.
func (s *UnalignedSystem) EndEpoch() (UnalignedReport, error) {
	digests := make([]*unaligned.Digest, len(s.collectors))
	var shipped int64
	for r, c := range s.collectors {
		digests[r] = c.Digest(r)
		for _, g := range digests[r].Rows {
			for _, row := range g {
				shipped += int64(len(row.Words()) * 8)
			}
		}
		c.Reset()
	}
	gm, err := unaligned.Merge(digests)
	if err != nil {
		return UnalignedReport{}, err
	}
	testGraph, err := gm.BuildGraphParallel(s.testTable, s.cfg.Workers)
	if err != nil {
		return UnalignedReport{}, err
	}
	rep := UnalignedReport{
		ER:          unaligned.ERTest(testGraph, s.threshold),
		DigestBytes: shipped,
	}
	if !rep.ER.PatternDetected {
		return rep, nil
	}
	coreGraph, err := gm.BuildGraphParallel(s.coreTable, s.cfg.Workers)
	if err != nil {
		return UnalignedReport{}, err
	}
	found, err := unaligned.FindPattern(coreGraph, s.cfg.Pattern)
	if err != nil {
		return UnalignedReport{}, err
	}
	routerSeen := map[int]bool{}
	for _, v := range found {
		vert := gm.Vertex(v)
		rep.Vertices = append(rep.Vertices, vert)
		if !routerSeen[vert.RouterID] {
			routerSeen[vert.RouterID] = true
			rep.RouterIDs = append(rep.RouterIDs, vert.RouterID)
		}
	}
	sort.Ints(rep.RouterIDs)
	return rep, nil
}
