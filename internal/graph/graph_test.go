package graph

import (
	"sort"
	"testing"

	"dcstream/internal/stats"
)

func TestAddEdgeSimpleGraphInvariants(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, reversed
	g.AddEdge(0, 1) // duplicate
	g.AddEdge(2, 2) // self-loop
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges=%d want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.HasEdge(2, 2) || g.Degree(2) != 0 {
		t.Fatal("self-loop was stored")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong after dedupe")
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).AddEdge(0, 3)
}

func TestComponentSizes(t *testing.T) {
	// Two triangles, one path of 2, three isolated vertices: sizes 3,3,2,1,1,1.
	g := New(11)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	g.AddEdge(6, 7)
	sizes := g.ComponentSizes()
	sort.Ints(sizes)
	want := []int{1, 1, 1, 2, 3, 3}
	if len(sizes) != len(want) {
		t.Fatalf("components %v", sizes)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("components %v want %v", sizes, want)
		}
	}
	if g.LargestComponent() != 3 {
		t.Fatalf("LargestComponent=%d", g.LargestComponent())
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	if New(0).LargestComponent() != 0 {
		t.Fatal("empty graph largest component should be 0")
	}
	if New(4).LargestComponent() != 1 {
		t.Fatal("edgeless graph largest component should be 1")
	}
}

// inducedDegree computes v's degree within the vertex set `alive`.
func inducedDegree(g *Graph, v int, alive map[int]bool) int {
	d := 0
	for _, w := range g.Neighbors(v) {
		if alive[int(w)] {
			d++
		}
	}
	return d
}

// TestPeelOrderIsMinDegreeGreedy checks the defining invariant of the greedy
// deletion sequence on random graphs: at every step, the deleted vertex has
// minimum degree in the remaining induced subgraph. This holds regardless of
// tie-breaking, so it validates the bucket implementation exactly.
func TestPeelOrderIsMinDegreeGreedy(t *testing.T) {
	rng := stats.NewRand(17)
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(60)
		g := GNP(rng, n, 3.0/float64(n))
		order := g.PeelOrder()
		if len(order) != n {
			t.Fatalf("order length %d want %d", len(order), n)
		}
		alive := map[int]bool{}
		for v := 0; v < n; v++ {
			alive[v] = true
		}
		for _, v32 := range order {
			v := int(v32)
			if !alive[v] {
				t.Fatalf("vertex %d deleted twice", v)
			}
			dv := inducedDegree(g, v, alive)
			for w := range alive {
				if dw := inducedDegree(g, w, alive); dw < dv {
					t.Fatalf("deleted %d (deg %d) but %d has deg %d", v, dv, w, dw)
				}
			}
			delete(alive, v)
		}
	}
}

func TestCoreFindsPlantedClique(t *testing.T) {
	rng := stats.NewRand(23)
	const n = 400
	g := GNP(rng, n, 1.0/n)
	clique := stats.SampleDistinct(rng, n, 12)
	PlantDense(rng, g, clique, 1.0) // full clique
	core := g.Core(12)
	want := map[int]bool{}
	for _, v := range clique {
		want[v] = true
	}
	hits := 0
	for _, v := range core {
		if want[v] {
			hits++
		}
	}
	if hits != 12 {
		t.Fatalf("core recovered %d/12 clique vertices: %v", hits, core)
	}
}

func TestCoreEdgeCases(t *testing.T) {
	g := New(5)
	if got := g.Core(0); got != nil {
		t.Fatalf("Core(0)=%v want nil", got)
	}
	if got := g.Core(99); len(got) != 5 {
		t.Fatalf("Core(99) should return all vertices, got %d", len(got))
	}
	if got := g.Core(2); len(got) != 2 {
		t.Fatalf("Core(2) len=%d", len(got))
	}
}

func TestCountEdgesInto(t *testing.T) {
	// Star: center 0 connected to 1..4. Set {1,2}: center has 2, leaves in
	// the set have 0 (their only edge goes to 0, not into the set).
	g := New(5)
	for v := 1; v < 5; v++ {
		g.AddEdge(0, v)
	}
	counts := g.CountEdgesInto([]int{1, 2})
	want := []int{2, 0, 0, 0, 0}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts=%v want %v", counts, want)
		}
	}
}

func TestInduced(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(4, 5)
	h, orig := g.Induced([]int{0, 1, 3})
	if h.NumVertices() != 3 || h.NumEdges() != 2 {
		t.Fatalf("induced V=%d E=%d want 3,2", h.NumVertices(), h.NumEdges())
	}
	// Edges 0-1 and 3-0 survive under the mapping.
	find := func(o int) int {
		for i, v := range orig {
			if v == o {
				return i
			}
		}
		t.Fatalf("orig %d missing", o)
		return -1
	}
	if !h.HasEdge(find(0), find(1)) || !h.HasEdge(find(0), find(3)) {
		t.Fatal("induced edges wrong")
	}
	if h.HasEdge(find(1), find(3)) {
		t.Fatal("phantom edge in induced subgraph")
	}
}

func TestInducedDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(3).Induced([]int{1, 1})
}

func TestGNPEdgeCount(t *testing.T) {
	rng := stats.NewRand(31)
	const n = 2000
	p := 2.0 / n
	g := GNP(rng, n, p)
	mean := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if got < mean*0.85 || got > mean*1.15 {
		t.Fatalf("GNP edges %v, expected ≈%v", got, mean)
	}
	// p<=0 and p>=1 extremes.
	if GNP(rng, 50, 0).NumEdges() != 0 {
		t.Fatal("GNP p=0 has edges")
	}
	if GNP(rng, 10, 1).NumEdges() != 45 {
		t.Fatal("GNP p=1 not complete")
	}
}

// TestERPhaseTransition reproduces the theorem the detection test leans on:
// below 1/n the largest component is O(log n); above it a giant component
// emerges. This is the paper's §IV-B foundation.
func TestERPhaseTransition(t *testing.T) {
	rng := stats.NewRand(37)
	const n = 20000
	sub := GNP(rng, n, 0.5/n).LargestComponent()
	super := GNP(rng, n, 2.0/n).LargestComponent()
	if sub > 60 { // ~O(log n) with generous slack
		t.Fatalf("subcritical largest component %d, expected small", sub)
	}
	if super < n/10 { // giant component is Θ(n)
		t.Fatalf("supercritical largest component %d, expected giant", super)
	}
}

func TestPlantDenseRaisesConnectivity(t *testing.T) {
	rng := stats.NewRand(41)
	const n = 5000
	g := GNP(rng, n, 0.5/n)
	before := g.LargestComponent()
	verts := stats.SampleDistinct(rng, n, 100)
	PlantDense(rng, g, verts, 0.3)
	after := g.LargestComponent()
	if after < 90 || after <= before {
		t.Fatalf("planting did not create large component: before=%d after=%d", before, after)
	}
}

func BenchmarkPeelOrder(b *testing.B) {
	rng := stats.NewRand(5)
	g := GNP(rng, 100000, 2.0/100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PeelOrder()
	}
}

func BenchmarkComponents(b *testing.B) {
	rng := stats.NewRand(5)
	g := GNP(rng, 100000, 1.5/100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LargestComponent()
	}
}
