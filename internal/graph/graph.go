// Package graph implements the random-graph machinery of the unaligned
// analysis (§IV-B): simple undirected graphs, connected components for the
// Erdős–Rényi phase-transition test, the greedy min-degree peeling that the
// paper proves stochastically optimal for core finding, and samplers for
// G(n,p) plus planted dense subgraphs used by the Monte-Carlo experiments.
package graph

import (
	"container/heap"
	"fmt"
	"math/rand"

	"dcstream/internal/stats"
)

// Graph is a simple undirected graph on vertices 0..n-1. Use New and
// AddEdge to build one; AddEdge ignores self-loops and duplicate edges so
// the graph always stays simple, matching the paper's construction.
type Graph struct {
	adj   [][]int32
	edges int
	seen  map[uint64]struct{}
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{adj: make([][]int32, n), seen: make(map[uint64]struct{})}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of (undirected) edges.
func (g *Graph) NumEdges() int { return g.edges }

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicates are
// ignored (the induced graphs must be simple). Out-of-range vertices panic.
func (g *Graph) AddEdge(u, v int) {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj)))
	}
	if u == v {
		return
	}
	k := edgeKey(u, v)
	if _, dup := g.seen[k]; dup {
		return
	}
	g.seen[k] = struct{}{}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
}

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.seen[edgeKey(u, v)]
	return ok
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns v's adjacency list (shared storage; do not mutate).
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// ComponentSizes returns the size of every connected component, unordered,
// computed with a union-find in near-linear time.
func (g *Graph) ComponentSizes() []int {
	n := len(g.adj)
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, v := range g.adj[u] {
			if int32(u) < v {
				ru, rv := find(int32(u)), find(v)
				if ru != rv {
					if size[ru] < size[rv] {
						ru, rv = rv, ru
					}
					parent[rv] = ru
					size[ru] += size[rv]
				}
			}
		}
	}
	var out []int
	for i := 0; i < n; i++ {
		if find(int32(i)) == int32(i) {
			out = append(out, int(size[i]))
		}
	}
	return out
}

// LargestComponent returns the size of the largest connected component — the
// Erdős–Rényi test statistic. An empty graph returns 0.
func (g *Graph) LargestComponent() int {
	max := 0
	for _, s := range g.ComponentSizes() {
		if s > max {
			max = s
		}
	}
	return max
}

// PeelOrder returns the deletion sequence of the greedy min-degree
// algorithm (Figure 10's FindCore loop): at every step the vertex with the
// smallest degree in the remaining induced subgraph is deleted, ties broken
// by vertex id. A lazy binary heap keeps this O((V+E) log V), which is
// plenty for the sparse graphs the unaligned analysis induces.
func (g *Graph) PeelOrder() []int32 {
	n := len(g.adj)
	deg := make([]int32, n)
	h := make(peelHeap, 0, n)
	for v := range g.adj {
		deg[v] = int32(len(g.adj[v]))
		h = append(h, peelEntry{deg: deg[v], v: int32(v)})
	}
	heap.Init(&h)
	deleted := make([]bool, n)
	out := make([]int32, 0, n)
	for len(out) < n {
		e := heap.Pop(&h).(peelEntry)
		if deleted[e.v] || e.deg != deg[e.v] {
			continue // stale entry superseded by a later decrement
		}
		deleted[e.v] = true
		out = append(out, e.v)
		for _, u := range g.adj[e.v] {
			if deleted[u] {
				continue
			}
			deg[u]--
			heap.Push(&h, peelEntry{deg: deg[u], v: u})
		}
	}
	return out
}

type peelEntry struct {
	deg int32
	v   int32
}

type peelHeap []peelEntry

func (h peelHeap) Len() int { return len(h) }
func (h peelHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v
}
func (h peelHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *peelHeap) Push(x interface{}) { *h = append(*h, x.(peelEntry)) }
func (h *peelHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Core returns the vertex set that survives greedy min-degree peeling until
// exactly beta vertices remain (Figure 10's FindCore). If beta >= n the full
// vertex set is returned; beta <= 0 returns nil.
func (g *Graph) Core(beta int) []int {
	n := len(g.adj)
	if beta <= 0 {
		return nil
	}
	if beta > n {
		beta = n
	}
	order := g.PeelOrder()
	core := make([]int, 0, beta)
	for _, v := range order[n-beta:] {
		core = append(core, int(v))
	}
	return core
}

// CountEdgesInto returns, for each vertex, how many of its neighbors lie in
// the given set. Used by the core-expansion step (step 3 of §IV-B).
func (g *Graph) CountEdgesInto(set []int) []int {
	in := make([]bool, len(g.adj))
	for _, v := range set {
		in[v] = true
	}
	counts := make([]int, len(g.adj))
	for u := range g.adj {
		c := 0
		for _, w := range g.adj[u] {
			if in[w] {
				c++
			}
		}
		counts[u] = c
	}
	return counts
}

// Induced returns the subgraph induced by keep, plus the mapping from new
// vertex ids to original ids (newID -> origID).
func (g *Graph) Induced(keep []int) (*Graph, []int) {
	idx := make(map[int]int, len(keep))
	orig := make([]int, len(keep))
	for i, v := range keep {
		if v < 0 || v >= len(g.adj) {
			panic(fmt.Sprintf("graph: induced vertex %d out of range", v))
		}
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in induced set", v))
		}
		idx[v] = i
		orig[i] = v
	}
	h := New(len(keep))
	for i, v := range keep {
		for _, w := range g.adj[v] {
			if j, ok := idx[int(w)]; ok && i < j {
				h.AddEdge(i, j)
			}
		}
	}
	return h, orig
}

// GNP samples an Erdős–Rényi random graph G(n, p): each of the C(n,2)
// possible edges present independently with probability p. For the sparse
// regimes this project uses (p near 1/n), it draws the edge count from
// Binomial(C(n,2), p) and then that many distinct uniform pairs, avoiding
// the quadratic scan.
func GNP(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	if n < 2 || p <= 0 {
		return g
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				g.AddEdge(u, v)
			}
		}
		return g
	}
	pairs := int64(n) * int64(n-1) / 2
	m := stats.Binomial(rng, pairs, p)
	for int64(g.NumEdges()) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		g.AddEdge(u, v) // duplicates and self-loops are ignored; retry
	}
	return g
}

// PlantDense adds, among the given vertices, each missing pair as an edge
// independently with probability p — the "preferential attachment" planted
// subgraph of the alternative hypothesis.
func PlantDense(rng *rand.Rand, g *Graph, vertices []int, p float64) {
	for i := 0; i < len(vertices); i++ {
		for j := i + 1; j < len(vertices); j++ {
			if rng.Float64() < p {
				g.AddEdge(vertices[i], vertices[j])
			}
		}
	}
}
