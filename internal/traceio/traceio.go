// Package traceio reads and writes the simple binary packet-trace format
// used by cmd/dcstrace, standing in for the pcap-style traces the paper's
// stress test consumed. A trace is a stream of records:
//
//	flow    uint64 little-endian
//	length  uint32 little-endian
//	payload [length]byte
//
// The reader is streaming (io.Reader based) so multi-gigabyte traces replay
// without buffering; the writer is the exact inverse.
package traceio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dcstream/internal/packet"
)

// maxPayload bounds one record so corrupt input cannot force unbounded
// allocation. Jumbo frames top out far below this.
const maxPayload = 1 << 20

// ErrCorrupt reports a structurally invalid trace.
var ErrCorrupt = errors.New("traceio: corrupt trace")

// Writer emits packets in trace format.
type Writer struct {
	w   *bufio.Writer
	n   int
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// Write appends one packet record.
func (t *Writer) Write(p packet.Packet) error {
	if t.err != nil {
		return t.err
	}
	if len(p.Payload) > maxPayload {
		t.err = fmt.Errorf("traceio: payload of %d bytes exceeds limit", len(p.Payload))
		return t.err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(p.Flow))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(p.Payload)))
	if _, err := t.w.Write(hdr[:]); err != nil {
		t.err = err
		return err
	}
	if _, err := t.w.Write(p.Payload); err != nil {
		t.err = err
		return err
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() int { return t.n }

// Flush drains the buffer; call before closing the underlying file.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader replays packets from trace format.
type Reader struct {
	r *bufio.Reader
	n int
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Read returns the next packet, or io.EOF at a clean end of trace. The
// returned payload is freshly allocated and safe to retain.
func (t *Reader) Read() (packet.Packet, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		if err == io.EOF {
			return packet.Packet{}, io.EOF
		}
		return packet.Packet{}, fmt.Errorf("%w: truncated header after %d records", ErrCorrupt, t.n)
	}
	length := binary.LittleEndian.Uint32(hdr[8:])
	if length > maxPayload {
		return packet.Packet{}, fmt.Errorf("%w: record %d claims %d payload bytes", ErrCorrupt, t.n, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(t.r, payload); err != nil {
		return packet.Packet{}, fmt.Errorf("%w: truncated payload in record %d", ErrCorrupt, t.n)
	}
	t.n++
	return packet.Packet{
		Flow:    packet.FlowLabel(binary.LittleEndian.Uint64(hdr[0:])),
		Payload: payload,
	}, nil
}

// Count returns the number of records read so far.
func (t *Reader) Count() int { return t.n }

// ForEach replays the whole trace through fn, stopping on the first error
// from fn or a corrupt record. A clean EOF returns nil.
func (t *Reader) ForEach(fn func(packet.Packet) error) error {
	for {
		p, err := t.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(p); err != nil {
			return err
		}
	}
}
