package traceio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"dcstream/internal/aligned"
	"dcstream/internal/bitvec"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func TestRoundTrip(t *testing.T) {
	rng := stats.NewRand(1)
	pkts, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{
		Packets: 200, SegmentSize: 64, Flows: 30, ZipfS: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range pkts {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 200 {
		t.Fatalf("writer count %d", w.Count())
	}

	r := NewReader(&buf)
	for i, want := range pkts {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Flow != want.Flow || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if r.Count() != 200 {
		t.Fatalf("reader count %d", r.Count())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(flow uint64, payload []byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		in := packet.Packet{Flow: packet.FlowLabel(flow), Payload: payload}
		if w.Write(in) != nil || w.Flush() != nil {
			return false
		}
		out, err := NewReader(&buf).Read()
		return err == nil && out.Flow == in.Flow && bytes.Equal(out.Payload, in.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRejectsCorrupt(t *testing.T) {
	// Truncated header.
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Read(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated header: %v", err)
	}
	// Oversized length field.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(packet.Packet{Flow: 1, Payload: []byte("xy")})
	w.Flush()
	b := buf.Bytes()
	b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := NewReader(bytes.NewReader(b)).Read(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize: %v", err)
	}
	// Truncated payload.
	buf.Reset()
	w = NewWriter(&buf)
	w.Write(packet.Packet{Flow: 1, Payload: make([]byte, 100)})
	w.Flush()
	if _, err := NewReader(bytes.NewReader(buf.Bytes()[:50])).Read(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestWriterRejectsOversizedPayload(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	err := w.Write(packet.Packet{Payload: make([]byte, maxPayload+1)})
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
	// Writer is latched after an error.
	if w.Write(packet.Packet{Payload: []byte("x")}) == nil {
		t.Fatal("writer not latched after error")
	}
}

func TestForEach(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Write(packet.Packet{Flow: packet.FlowLabel(i), Payload: []byte{byte(i)}})
	}
	w.Flush()
	var flows []packet.FlowLabel
	err := NewReader(&buf).ForEach(func(p packet.Packet) error {
		flows = append(flows, p.Flow)
		return nil
	})
	if err != nil || len(flows) != 10 || flows[9] != 9 {
		t.Fatalf("ForEach: err=%v flows=%v", err, flows)
	}
	// Early stop on callback error.
	buf.Reset()
	w = NewWriter(&buf)
	for i := 0; i < 10; i++ {
		w.Write(packet.Packet{Flow: packet.FlowLabel(i), Payload: []byte{byte(i)}})
	}
	w.Flush()
	stop := errors.New("stop")
	count := 0
	err = NewReader(&buf).ForEach(func(p packet.Packet) error {
		count++
		if count == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || count != 3 {
		t.Fatalf("early stop: err=%v count=%d", err, count)
	}
}

// TestTraceDrivesCollector closes the loop: a trace with planted content
// replayed into a collector must register the content's bits, identically
// to feeding the packets directly.
func TestTraceDrivesCollector(t *testing.T) {
	rng := stats.NewRand(2)
	content := trafficgen.NewContent(rng, 10, 64)
	bg, _ := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: 100, SegmentSize: 64})
	all := trafficgen.Mix(rng, bg, content.PlantAligned(5, 64))

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range all {
		w.Write(p)
	}
	w.Flush()

	// Two identical collectors: one fed directly, one from the trace.
	direct, err := aligned.NewCollector(aligned.CollectorConfig{Bits: 1 << 12, HashSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := aligned.NewCollector(aligned.CollectorConfig{Bits: 1 << 12, HashSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range all {
		direct.Update(p)
	}
	if err := NewReader(&buf).ForEach(func(p packet.Packet) error {
		replayed.Update(p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bitvec.Equal(direct.Digest(), replayed.Digest()) {
		t.Fatal("trace replay diverged from direct feed")
	}
}
