package traceio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"dcstream/internal/packet"
)

// hostileTraceRecord builds a 12-byte record header claiming length payload
// bytes, followed by however much of it the attacker bothered to send —
// wiretaint's hostile-geometry class: the length field is wire-controlled and
// the reader must bound it before allocating.
func hostileTraceRecord(flow uint64, length uint32, supplied int) []byte {
	buf := make([]byte, 12+supplied)
	binary.LittleEndian.PutUint64(buf[0:], flow)
	binary.LittleEndian.PutUint32(buf[8:], length)
	return buf
}

// FuzzTraceRead feeds arbitrary bytes through the trace replay pipeline
// cmd/dcsreplay runs per file. Invariants: no panic and no unbounded
// allocation on any input (the maxPayload guard is the wiretaint sanitizer
// for this decoder), a corrupt record surfaces as ErrCorrupt rather than a
// silent short trace, and every record read back survives a write/read
// round-trip bit-identically.
func FuzzTraceRead(f *testing.F) {
	// A well-formed two-record trace.
	var good bytes.Buffer
	w := NewWriter(&good)
	for _, p := range []packet.Packet{
		{Flow: 7, Payload: []byte("alpha")},
		{Flow: 1 << 40, Payload: bytes.Repeat([]byte{0xAB}, 256)},
	} {
		if err := w.Write(p); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	// Hostile geometry: length fields the reader must refuse before
	// allocating — the all-ones claim, just past the cap, and the cap
	// itself with a truncated body.
	f.Add(hostileTraceRecord(1, 0xFFFFFFFF, 0))
	f.Add(hostileTraceRecord(2, maxPayload+1, 64))
	f.Add(hostileTraceRecord(3, maxPayload, 16))
	// Truncated header and empty input (clean EOF).
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		records := 0
		for {
			p, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("non-corrupt error from in-memory trace: %v", err)
				}
				break
			}
			records++
			if len(p.Payload) > maxPayload {
				t.Fatalf("record %d: reader returned %d payload bytes past the cap", records, len(p.Payload))
			}
			// Round-trip: what was read must re-serialize to bytes that
			// read back identically.
			var rt bytes.Buffer
			rw := NewWriter(&rt)
			if err := rw.Write(p); err != nil {
				t.Fatalf("record %d fails re-write: %v", records, err)
			}
			if err := rw.Flush(); err != nil {
				t.Fatal(err)
			}
			p2, err := NewReader(bytes.NewReader(rt.Bytes())).Read()
			if err != nil {
				t.Fatalf("record %d fails re-read: %v", records, err)
			}
			if p2.Flow != p.Flow || !bytes.Equal(p2.Payload, p.Payload) {
				t.Fatalf("record %d round-trip mismatch", records)
			}
		}
		if r.Count() != records {
			t.Fatalf("reader counted %d records, caller saw %d", r.Count(), records)
		}
	})
}
