package aligned

import "testing"

// Paper-scale dimensions for the Figure 12 computations.
const (
	paperRows   = 1000
	paperCols   = 4 << 20
	paperSubset = 4000
)

func TestNonNaturalMinBPaperPoints(t *testing.T) {
	// Figure 12 (lower curve): a=28 → b≈21, a=70 → b≈10. The paper does not
	// state its ε; with ε=0.05 the curve passes through the quoted points,
	// and nearby ε only shifts b by ±2.
	const eps = 0.05
	b28 := NonNaturalMinB(paperRows, paperCols, 28, eps)
	if b28 < 19 || b28 > 24 {
		t.Fatalf("a=28: minB=%d want ≈21", b28)
	}
	b70 := NonNaturalMinB(paperRows, paperCols, 70, eps)
	if b70 < 8 || b70 > 12 {
		t.Fatalf("a=70: minB=%d want ≈10", b70)
	}
}

func TestNonNaturalMinBMonotone(t *testing.T) {
	prev := 1 << 30
	for a := 10; a <= 200; a += 10 {
		b := NonNaturalMinB(paperRows, paperCols, a, 1e-3)
		if b < 0 {
			t.Fatalf("a=%d: no bound found", a)
		}
		if b > prev {
			t.Fatalf("minB not monotone: a=%d gives %d after %d", a, b, prev)
		}
		prev = b
	}
}

func TestNonNaturalMinBDegenerate(t *testing.T) {
	if NonNaturalMinB(100, 1000, 0, 1e-3) != -1 {
		t.Fatal("a=0 should be undetectable")
	}
	if NonNaturalMinB(100, 1000, 101, 1e-3) != -1 {
		t.Fatal("a>rows should be undetectable")
	}
	// A single row never stands out in a half-full matrix of this width.
	if got := NonNaturalMinB(1000, 4<<20, 1, 1e-6); got != -1 {
		t.Fatalf("a=1 should be undetectable, got b=%d", got)
	}
}

func TestWeightCutoffPaperValue(t *testing.T) {
	// §V-A.2: with threshold 550 about 2900 of 4M columns (fraction
	// 0.725 of the 4000-column S₁) are noise. Our cutoff search should land
	// at ≈550.
	cfg := DetectableConfig{Rows: paperRows, Cols: paperCols, SubsetSize: paperSubset}
	cut := cfg.WeightCutoff()
	if cut < 545 || cut > 556 {
		t.Fatalf("weight cutoff %d, want ≈550", cut)
	}
}

func TestDetectableMinBPaperShape(t *testing.T) {
	cfg := DetectableConfig{Rows: paperRows, Cols: paperCols, SubsetSize: paperSubset}
	// Figure 12 (upper curve): a=25 → b≈3029, a=70 → b≈99, and the target
	// point 100×30 detectable. Our construction uses the minimal
	// non-natural core length l (the paper uses a slightly larger l), so
	// our thresholds sit at the same order of magnitude, slightly below.
	b25 := DetectableMinB(cfg, 25)
	if b25 < 800 || b25 > 5000 {
		t.Fatalf("a=25: detectable b=%d want O(3000)", b25)
	}
	b70 := DetectableMinB(cfg, 70)
	if b70 < 20 || b70 > 160 {
		t.Fatalf("a=70: detectable b=%d want O(100)", b70)
	}
	b100 := DetectableMinB(cfg, 100)
	if b100 < 5 || b100 > 40 {
		t.Fatalf("a=100: detectable b=%d want ≤30", b100)
	}
	// The detectable threshold always dominates the non-natural one.
	for _, a := range []int{25, 40, 70, 100} {
		nn := NonNaturalMinB(paperRows, paperCols, a, 1e-3)
		db := DetectableMinB(cfg, a)
		if db < nn {
			t.Fatalf("a=%d: detectable %d below non-natural %d", a, db, nn)
		}
	}
}

func TestDetectionProbabilityPaperTarget(t *testing.T) {
	// The paper's headline: a 100×30 pattern is detected with probability
	// ≈0.988 or better.
	cfg := DetectableConfig{Rows: paperRows, Cols: paperCols, SubsetSize: paperSubset}
	p := DetectionProbability(cfg, 100, 30)
	if p < 0.988 {
		t.Fatalf("P[detect 100x30] = %v, want >= 0.988", p)
	}
	// Shrinking the pattern must reduce the probability.
	if q := DetectionProbability(cfg, 100, 10); q >= p {
		t.Fatalf("smaller pattern not harder to detect: %v vs %v", q, p)
	}
	if q := DetectionProbability(cfg, 40, 30); q >= p {
		t.Fatalf("fewer routers not harder to detect: %v vs %v", q, p)
	}
}

func TestDetectableConfigValidation(t *testing.T) {
	bad := []DetectableConfig{
		{Rows: 0, Cols: 10, SubsetSize: 5},
		{Rows: 10, Cols: 10, SubsetSize: 20},
		{Rows: 10, Cols: 100, SubsetSize: 5, Delta: 2},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
		if DetectableMinB(cfg, 10) != -1 {
			t.Fatalf("DetectableMinB accepted bad config %+v", cfg)
		}
	}
}
