package aligned

import (
	"reflect"
	"sort"
	"testing"

	"dcstream/internal/bitvec"
	"dcstream/internal/stats"
)

// accDigests builds one random half-full digest per router, with a planted
// common content across carriers when contentCols is non-empty.
func accDigests(seed uint64, routers, bits int, carriers, contentCols []int) map[int]*bitvec.Vector {
	rng := stats.NewRand(seed)
	out := make(map[int]*bitvec.Vector, routers)
	for r := 0; r < routers; r++ {
		v := bitvec.New(bits)
		v.FillRandomHalf(rng.Uint64)
		out[r] = v
	}
	for _, r := range carriers {
		for _, j := range contentCols {
			out[r].Set(j)
		}
	}
	return out
}

// accReference builds the batch-path matrix (rows in sorted-router order) and
// the slot→batch-row rank table for an arrival order.
func accReference(digests map[int]*bitvec.Vector, arrival []int) (*Matrix, []int) {
	ids := make([]int, 0, len(digests))
	for id := range digests {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	rowOf := make(map[int]int, len(ids))
	vecs := make([]*bitvec.Vector, len(ids))
	for i, id := range ids {
		rowOf[id] = i
		vecs[i] = digests[id]
	}
	rank := make([]int, len(arrival))
	for slot, id := range arrival {
		rank[slot] = rowOf[id]
	}
	return FromDigests(vecs), rank
}

func TestAccumulatorMatchesBatchDetection(t *testing.T) {
	const routers, bits = 40, 1024
	contentCols := []int{3, 99, 512, 700, 701, 888, 1000, 17, 260, 431}
	// More than half the fleet carries the content, so content columns rise
	// clear of the binomial noise band and the greedy screening keeps them.
	carriers := make([]int, 0, 28)
	for r := 0; r < routers; r++ {
		if r%3 != 0 || r < 12 {
			carriers = append(carriers, r)
		}
	}
	for _, planted := range []bool{true, false} {
		cols := contentCols
		if !planted {
			cols = nil
		}
		digests := accDigests(77, routers, bits, carriers, cols)

		// Scrambled arrival order, nothing like sorted-router order.
		arrival := make([]int, 0, routers)
		for r := routers - 1; r >= 0; r -= 2 {
			arrival = append(arrival, r)
		}
		for r := 0; r < routers; r += 2 {
			arrival = append(arrival, r)
		}
		acc := NewAccumulator()
		for _, r := range arrival {
			acc.Add(r, digests[r])
		}

		ref, rank := accReference(digests, arrival)
		cfg := RefinedConfig(256)
		cfg.Workers = 3
		want, err := Detect(ref, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, weights := acc.Matrix()
		got, err := DetectWithWeights(m, weights, cfg)
		if err != nil {
			t.Fatal(err)
		}
		RemapRows(&got, rank)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("planted=%v: incremental detection diverged\n got %+v\nwant %+v", planted, got, want)
		}
		if planted != want.Found {
			t.Fatalf("planted=%v but batch Found=%v (test scenario broken)", planted, want.Found)
		}
	}
}

func TestAccumulatorRetraction(t *testing.T) {
	const routers, bits = 20, 512
	digests := accDigests(5, routers, bits, nil, nil)
	replacements := accDigests(6, routers, bits, nil, nil)

	arrival := make([]int, routers)
	for r := range arrival {
		arrival[r] = r
	}
	acc := NewAccumulator()
	for _, r := range arrival {
		acc.Add(r, digests[r])
	}
	// Replace a few routers (DupKeepLast): retract the old digest, apply the
	// new one. The matrix must equal the batch matrix over the final digests.
	final := make(map[int]*bitvec.Vector, routers)
	for r, d := range digests {
		final[r] = d
	}
	for _, r := range []int{0, 7, 19} {
		acc.Remove(r, digests[r])
		acc.Add(r, replacements[r])
		final[r] = replacements[r]
	}

	m, weights := acc.Matrix()
	ref, rank := accReference(final, arrival)
	for slot := range arrival {
		for j := 0; j < bits; j++ {
			if m.Test(slot, j) != ref.Test(rank[slot], j) {
				t.Fatalf("slot %d col %d: incremental bit %v, batch %v", slot, j, m.Test(slot, j), ref.Test(rank[slot], j))
			}
		}
	}
	if !reflect.DeepEqual(weights, ref.ColumnWeights()) {
		t.Fatal("maintained weights diverged from recomputed column weights after retraction")
	}
}

func TestAccumulatorBytesLedger(t *testing.T) {
	const routers, bits = 150, 256 // crosses the 64- and 128-slot growth points
	digests := accDigests(9, routers, bits, nil, nil)
	acc := NewAccumulator()
	var sum int64
	for r := 0; r < routers; r++ {
		est := acc.EstimateAdd(r, digests[r])
		delta := acc.Add(r, digests[r])
		if est != delta {
			t.Fatalf("router %d: EstimateAdd %d but Add moved %d bytes", r, est, delta)
		}
		sum += delta
	}
	if acc.Bytes() != sum {
		t.Fatalf("Bytes %d != sum of deltas %d", acc.Bytes(), sum)
	}
	if acc.Bytes() <= 0 {
		t.Fatal("accumulator claims zero footprint")
	}
	// Re-adding an existing router with the same width must not grow the
	// structural footprint.
	if est := acc.EstimateAdd(3, digests[3]); est != 0 {
		t.Fatalf("replacement add estimated %d bytes of growth", est)
	}
}

func TestAccumulatorMixedWidth(t *testing.T) {
	acc := NewAccumulator()
	acc.Add(1, bitvec.New(128))
	if acc.Mixed() {
		t.Fatal("mixed before any conflict")
	}
	if delta := acc.Add(2, bitvec.New(64)); delta != 0 {
		t.Fatalf("conflicting-width add moved %d bytes", delta)
	}
	if !acc.Mixed() {
		t.Fatal("width conflict not flagged")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Matrix() on mixed accumulator did not panic")
			}
		}()
		acc.Matrix()
	}()
}

func TestAccumulatorSpanBlit(t *testing.T) {
	const bits = 384
	d1 := accDigests(11, 5, bits, nil, nil)
	d2 := accDigests(12, 3, bits, nil, nil)
	a1, a2 := NewAccumulator(), NewAccumulator()
	var rows []*bitvec.Vector
	for r := 0; r < 5; r++ {
		a1.Add(r, d1[r])
		rows = append(rows, d1[r])
	}
	for r := 0; r < 3; r++ {
		a2.Add(r, d2[r])
		rows = append(rows, d2[r])
	}

	span := bitvec.NewArena(bits, a1.Rows()+a2.Rows())
	a1.BlitInto(span, 0)
	a2.BlitInto(span, a1.Rows())
	weights := make([]int, bits)
	a1.AddWeightsInto(weights)
	a2.AddWeightsInto(weights)

	ref := FromDigests(rows)
	for j := 0; j < bits; j++ {
		if !bitvec.Equal(span[j], ref.Col(j)) {
			t.Fatalf("span column %d diverged from batch transposition", j)
		}
	}
	if !reflect.DeepEqual(weights, ref.ColumnWeights()) {
		t.Fatal("summed span weights diverged")
	}
}
