package aligned

import (
	"testing"

	"dcstream/internal/stats"
)

func containsAll(haystack, needles []int) int {
	set := map[int]bool{}
	for _, v := range haystack {
		set[v] = true
	}
	hit := 0
	for _, v := range needles {
		if set[v] {
			hit++
		}
	}
	return hit
}

func TestDetectorConfigValidation(t *testing.T) {
	m := NewMatrix(4, 8)
	for _, cfg := range []DetectorConfig{
		{SubsetSize: 0},
		{SubsetSize: 1},
		{SubsetSize: 4, Gamma: -1},
		{SubsetSize: 4, Epsilon: 2},
	} {
		if _, err := Detect(m, cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestDetectNoPattern(t *testing.T) {
	rng := stats.NewRand(50)
	misses := 0
	for trial := 0; trial < 5; trial++ {
		m := RandomMatrix(rng, 100, 1024)
		det, err := Detect(m, RefinedConfig(256))
		if err != nil {
			t.Fatal(err)
		}
		if det.Found {
			misses++
		}
		if len(det.WeightTrace) < 3 {
			t.Fatalf("trace too short: %v", det.WeightTrace)
		}
	}
	if misses > 0 {
		t.Fatalf("%d/5 false positives on pure noise", misses)
	}
}

func TestDetectPlantedPattern(t *testing.T) {
	rng := stats.NewRand(51)
	found := 0
	for trial := 0; trial < 5; trial++ {
		m := RandomMatrix(rng, 100, 1024)
		rows, cols := m.PlantPattern(rng, 20, 12)
		det, err := Detect(m, RefinedConfig(256))
		if err != nil {
			t.Fatal(err)
		}
		if !det.Found {
			continue
		}
		found++
		// Detected rows must cover the pattern rows with at most a couple of
		// noise rows absorbed (each noise row survives b′ products w.p. 2^-b′).
		if hit := containsAll(det.Rows, rows); hit < 18 {
			t.Fatalf("trial %d: only %d/20 pattern rows recovered", trial, hit)
		}
		if len(det.Rows) > 25 {
			t.Fatalf("trial %d: %d rows reported for a 20-row pattern", trial, len(det.Rows))
		}
		// Core expansion must pull in essentially all pattern columns.
		if hit := containsAll(det.Cols, cols); hit < 10 {
			t.Fatalf("trial %d: only %d/12 pattern columns recovered", trial, hit)
		}
		if len(det.Cols) > 20 {
			t.Fatalf("trial %d: %d columns reported for a 12-column pattern", trial, len(det.Cols))
		}
	}
	if found < 4 {
		t.Fatalf("pattern detected in only %d/5 trials", found)
	}
}

func TestDetectNaiveEqualsRefinedOnSmallMatrix(t *testing.T) {
	// With SubsetSize = n the refined algorithm degenerates to the naive
	// one; both must find the same planted pattern.
	rng := stats.NewRand(52)
	m := RandomMatrix(rng, 60, 300)
	rows, _ := m.PlantPattern(rng, 15, 10)
	naive, err := Detect(m, NaiveConfig(m.Cols()))
	if err != nil {
		t.Fatal(err)
	}
	refined, err := Detect(m, RefinedConfig(128))
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Found || !refined.Found {
		t.Fatalf("naive found=%v refined found=%v", naive.Found, refined.Found)
	}
	if containsAll(naive.Rows, rows) < 14 || containsAll(refined.Rows, rows) < 14 {
		t.Fatal("row recovery differs from pattern")
	}
}

func TestWeightTraceShape(t *testing.T) {
	// Figure 7's shape: initial ≈halving, plateau near the pattern's row
	// count, then a second dive. Verified on a planted instance with
	// FullTrace so the post-detection dive is recorded.
	rng := stats.NewRand(53)
	m := RandomMatrix(rng, 128, 2048)
	_, _ = m.PlantPattern(rng, 30, 14)
	cfg := RefinedConfig(512)
	cfg.FullTrace = true
	cfg.MaxIterations = 20
	det, err := Detect(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Found {
		t.Fatal("planted pattern not found")
	}
	tr := det.WeightTrace
	if len(tr) < det.Iterations+1 {
		t.Fatalf("trace %v shorter than iterations %d", tr, det.Iterations)
	}
	// Plateau: at the detected iteration the weight is ≈30 (the pattern
	// rows), well above the pure-noise expectation 128·2^-b′.
	plateau := tr[det.Iterations-1]
	if plateau < 25 || plateau > 40 {
		t.Fatalf("plateau weight %d, want ≈30 (trace %v)", plateau, tr)
	}
	// Early decay: second product should be far below the first.
	if float64(tr[1]) > 0.75*float64(tr[0]) {
		t.Fatalf("no initial decay: %v", tr)
	}
	// Dive after the plateau.
	if det.Iterations < len(tr) {
		if float64(tr[det.Iterations]) > 0.8*float64(plateau) {
			t.Fatalf("no dive after plateau: %v (iterations=%d)", tr, det.Iterations)
		}
	}
}

func TestDetectOnVirtualSample(t *testing.T) {
	// Paper-scale shape at reduced size: sample the heaviest 512 columns of
	// a virtual 200×262144 matrix with a planted 40×25 pattern.
	rng := stats.NewRand(54)
	vs, err := SampleHeavyColumns(rng, VirtualConfig{
		Rows: 200, Cols: 1 << 18, SubsetSize: 512,
		PatternRows: 40, PatternCols: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs.Matrix.Cols() != 512 {
		t.Fatalf("sampled %d columns want 512", vs.Matrix.Cols())
	}
	det, err := Detect(vs.Matrix, RefinedConfig(512))
	if err != nil {
		t.Fatal(err)
	}
	if !det.Found {
		t.Fatalf("planted 40x25 not found; %d pattern cols survived screening",
			len(vs.PatternColsInS1))
	}
	if hit := containsAll(det.Rows, vs.PatternRowSet); hit < 36 {
		t.Fatalf("only %d/40 pattern rows recovered", hit)
	}
}

func TestVirtualSampleStatistics(t *testing.T) {
	rng := stats.NewRand(55)
	cfg := VirtualConfig{Rows: 100, Cols: 1 << 16, SubsetSize: 300}
	vs, err := SampleHeavyColumns(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All sampled columns must be above the theoretical cutoff region:
	// the 300th heaviest of 65536 Binomial(100, 1/2) draws sits near the
	// quantile with tail 300/65536 ≈ 0.0046, i.e. weight ≈ 63.
	w := vs.Matrix.ColumnWeights()
	minW := w[0]
	for _, v := range w {
		if v < minW {
			minW = v
		}
	}
	if minW < 58 || minW > 68 {
		t.Fatalf("lightest sampled column %d, want ≈63", minW)
	}
	if len(vs.PatternColsInS1) != 0 || vs.PatternRowSet != nil {
		t.Fatal("pure-noise sample reports a pattern")
	}
}

func TestVirtualConfigValidation(t *testing.T) {
	rng := stats.NewRand(56)
	for _, cfg := range []VirtualConfig{
		{Rows: 0, Cols: 10, SubsetSize: 5},
		{Rows: 10, Cols: 10, SubsetSize: 20},
		{Rows: 10, Cols: 100, SubsetSize: 5, PatternRows: 3}, // cols missing
		{Rows: 10, Cols: 100, SubsetSize: 5, PatternRows: 11, PatternCols: 2},
	} {
		if _, err := SampleHeavyColumns(rng, cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestSignificant(t *testing.T) {
	// A 1x1 all-ones "pattern" is everywhere; a 50x50 block in a small
	// matrix is essentially impossible by chance.
	if Significant(100, 100, 1, 1, 1e-3) {
		t.Fatal("1x1 flagged significant")
	}
	if !Significant(100, 100, 50, 50, 1e-3) {
		t.Fatal("50x50 in 100x100 not significant")
	}
	if Significant(100, 100, 0, 5, 1e-3) || Significant(100, 100, 5, 0, 1e-3) {
		t.Fatal("degenerate pattern flagged significant")
	}
}

// TestQuickDetectionInvariants fuzzes matrix shapes and patterns, checking
// the structural invariants every Detection must satisfy regardless of
// whether a pattern is found: the weight trace never increases (an AND can
// only lose ones, and each level's best is bounded by the previous best),
// all reported indices are in range, and the core is a subset of the
// expanded column set.
func TestQuickDetectionInvariants(t *testing.T) {
	rng := stats.NewRand(90)
	for trial := 0; trial < 12; trial++ {
		rows := 20 + rng.Intn(100)
		cols := 64 + rng.Intn(512)
		m := RandomMatrix(rng, rows, cols)
		if rng.Intn(2) == 0 {
			a := 2 + rng.Intn(rows/2)
			b := 2 + rng.Intn(16)
			m.PlantPattern(rng, a, b)
		}
		subset := 32 + rng.Intn(cols)
		det, err := Detect(m, RefinedConfig(subset))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(det.WeightTrace); i++ {
			if det.WeightTrace[i] > det.WeightTrace[i-1] {
				t.Fatalf("trace increased at %d: %v", i, det.WeightTrace)
			}
		}
		if !det.Found {
			if len(det.Rows) != 0 || len(det.Cols) != 0 {
				t.Fatal("not-found detection carries rows/cols")
			}
			continue
		}
		coreSet := map[int]bool{}
		for _, j := range det.CoreCols {
			if j < 0 || j >= cols {
				t.Fatalf("core column %d out of range", j)
			}
			coreSet[j] = true
		}
		colSet := map[int]bool{}
		for _, j := range det.Cols {
			if j < 0 || j >= cols {
				t.Fatalf("column %d out of range", j)
			}
			colSet[j] = true
		}
		for j := range coreSet {
			if !colSet[j] {
				t.Fatalf("core column %d missing from expanded set", j)
			}
		}
		for _, r := range det.Rows {
			if r < 0 || r >= rows {
				t.Fatalf("row %d out of range", r)
			}
		}
		if det.Iterations < 1 || det.Iterations > len(det.WeightTrace) {
			t.Fatalf("iterations %d vs trace length %d", det.Iterations, len(det.WeightTrace))
		}
		// Every reported row must actually be 1 in every core column — the
		// detection is an all-1 submatrix by construction.
		for _, j := range det.CoreCols {
			for _, r := range det.Rows {
				if !m.Test(r, j) {
					t.Fatalf("reported submatrix has a zero at (%d,%d)", r, j)
				}
			}
		}
	}
}
