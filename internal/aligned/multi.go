package aligned

import "sort"

// DetectAll finds multiple disjoint patterns in one matrix (§II-D: "this
// cluster can contain either single common item or multiple common items...
// techniques to separate out sub-clusters... can be used on top of our
// algorithm"). It runs Detect repeatedly, zeroing each found pattern's
// columns before the next round, until no further non-naturally-occurring
// pattern exists or maxPatterns is reached (0 means no limit).
//
// Column zeroing is done on a working copy; the input matrix is not
// modified. Patterns are returned in discovery order (heaviest first by
// construction of the greedy search).
func DetectAll(m *Matrix, cfg DetectorConfig, maxPatterns int) ([]Detection, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Work on a copy: column vectors are shared storage.
	work := NewMatrix(m.Rows(), m.Cols())
	for j := 0; j < m.Cols(); j++ {
		work.cols[j] = m.cols[j].Clone()
	}
	var out []Detection
	for maxPatterns == 0 || len(out) < maxPatterns {
		det, err := Detect(work, cfg)
		if err != nil {
			return nil, err
		}
		if !det.Found {
			break
		}
		out = append(out, det)
		// Remove the found pattern so the next round sees only what's left.
		for _, j := range det.Cols {
			work.cols[j].Reset()
		}
	}
	return out, nil
}

// SeparateClusters groups a detection's columns by their row support: two
// columns belong to the same cluster when their supports over the detected
// rows are identical. When one detection actually merged two different
// common contents seen by different router subsets, this splits them apart
// (the "maturely developed" sub-cluster separation the paper defers to).
func SeparateClusters(m *Matrix, det Detection) [][]int {
	if !det.Found || len(det.Cols) == 0 {
		return nil
	}
	rowSet := det.Rows
	byKey := make(map[string][]int)
	var keys []string
	for _, j := range det.Cols {
		col := m.Col(j)
		key := make([]byte, len(rowSet))
		for i, r := range rowSet {
			if col.Test(r) {
				key[i] = 1
			}
		}
		k := string(key)
		if _, ok := byKey[k]; !ok {
			keys = append(keys, k)
		}
		byKey[k] = append(byKey[k], j)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		cols := byKey[k]
		sort.Ints(cols)
		out = append(out, cols)
	}
	// Largest cluster first.
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) > len(out[j]) })
	return out
}
