package aligned

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dcstream/internal/stats"
)

// VirtualConfig describes a paper-scale random matrix (e.g. 1000×4M) that is
// never materialized. Because the refined detector only ever reads the
// SubsetSize heaviest columns, it suffices to sample those columns exactly:
// the count of noise columns at each weight w follows Binomial(Cols, pmf(w))
// (Poissonized here — Cols is in the millions and the per-weight
// probabilities are tiny, so the approximation error is far below
// Monte-Carlo noise), and a noise column of weight w is a uniform w-subset
// of rows. Planted pattern columns carry the fixed pattern rows plus fair
// coins elsewhere. This reproduces the full-generation experiment of §V-A
// in milliseconds instead of gigabytes.
type VirtualConfig struct {
	// Rows and Cols are the virtual matrix dimensions m×n.
	Rows, Cols int
	// SubsetSize is how many heaviest columns to sample (the detector's n′).
	SubsetSize int
	// PatternRows and PatternCols plant an a×b all-1 pattern; both zero
	// means a pure-noise matrix.
	PatternRows, PatternCols int
}

// Validate reports whether the configuration is usable.
func (c VirtualConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 || c.SubsetSize <= 0 {
		return fmt.Errorf("aligned: non-positive virtual dimension in %+v", c)
	}
	if c.SubsetSize > c.Cols {
		return fmt.Errorf("aligned: SubsetSize %d exceeds Cols %d", c.SubsetSize, c.Cols)
	}
	if (c.PatternRows == 0) != (c.PatternCols == 0) {
		return fmt.Errorf("aligned: pattern dimensions must both be set or both zero")
	}
	if c.PatternRows < 0 || c.PatternRows > c.Rows || c.PatternCols < 0 || c.PatternCols > c.Cols {
		return fmt.Errorf("aligned: pattern %dx%d does not fit %dx%d",
			c.PatternRows, c.PatternCols, c.Rows, c.Cols)
	}
	return nil
}

// VirtualSample is the materialized S₁ of a virtual matrix.
type VirtualSample struct {
	// Matrix holds the SubsetSize heaviest columns (order unspecified).
	Matrix *Matrix
	// PatternRowSet lists the planted pattern's rows (nil without pattern).
	PatternRowSet []int
	// PatternColsInS1 lists which columns of Matrix belong to the planted
	// pattern — the paper's l, the number of pattern columns that survive
	// screening (15 in Figure 7's example instance).
	PatternColsInS1 []int
}

type virtualCand struct {
	weight  int
	pattern bool
	tie     uint64
}

// SampleHeavyColumns draws the SubsetSize heaviest columns of the virtual
// matrix, exactly distributed as if all Cols columns had been generated and
// screened.
func SampleHeavyColumns(rng *rand.Rand, cfg VirtualConfig) (*VirtualSample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m, n := cfg.Rows, cfg.Cols
	a, b := cfg.PatternRows, cfg.PatternCols

	// Choose a weight floor low enough that the expected number of noise
	// columns above it comfortably exceeds SubsetSize, then Poisson-sample
	// the per-weight counts from the floor up to m.
	var cands []virtualCand
	floor := stats.BinomUpperQuantile(m, 0.5, 2*float64(cfg.SubsetSize+b)/float64(n))
	for {
		cands = cands[:0]
		for w := floor + 1; w <= m; w++ {
			lambda := float64(n-b) * math.Exp(stats.BinomLogPMF(w, m, 0.5))
			if lambda <= 0 {
				continue
			}
			cnt := stats.Poisson(rng, lambda)
			for i := 0; i < cnt; i++ {
				cands = append(cands, virtualCand{weight: w, tie: rng.Uint64()})
			}
		}
		if len(cands) >= cfg.SubsetSize || floor < 0 {
			break
		}
		floor -= 8 // extremely unlikely; widen and resample
	}

	// Pattern columns compete for S₁ on their sampled weights.
	for i := 0; i < b; i++ {
		w := a + int(stats.Binomial(rng, int64(m-a), 0.5))
		cands = append(cands, virtualCand{weight: w, pattern: true, tie: rng.Uint64()})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].weight != cands[j].weight {
			return cands[i].weight > cands[j].weight
		}
		return cands[i].tie < cands[j].tie // uniform tie-break at the cutoff
	})
	if len(cands) > cfg.SubsetSize {
		cands = cands[:cfg.SubsetSize]
	}

	out := &VirtualSample{Matrix: NewMatrix(m, len(cands))}
	var patternRows []int
	if a > 0 {
		patternRows = stats.SampleDistinct(rng, m, a)
		out.PatternRowSet = patternRows
	}
	inPattern := make([]bool, m)
	for _, r := range patternRows {
		inPattern[r] = true
	}
	// Row ids outside the pattern, for sampling a pattern column's noise part.
	others := make([]int, 0, m-a)
	for r := 0; r < m; r++ {
		if !inPattern[r] {
			others = append(others, r)
		}
	}
	for j, c := range cands {
		col := out.Matrix.Col(j)
		if c.pattern {
			for _, r := range patternRows {
				col.Set(r)
			}
			extra := c.weight - a
			if extra > 0 {
				for _, k := range stats.SampleDistinct(rng, len(others), extra) {
					col.Set(others[k])
				}
			}
			out.PatternColsInS1 = append(out.PatternColsInS1, j)
			continue
		}
		for _, r := range stats.SampleDistinct(rng, m, c.weight) {
			col.Set(r)
		}
	}
	return out, nil
}
