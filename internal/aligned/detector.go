package aligned

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"dcstream/internal/bitvec"
	"dcstream/internal/stats"
)

// DetectorConfig tunes the greedy ASID detectors of §III-B. The zero value
// is not valid; use NaiveConfig or RefinedConfig for the paper's two
// variants, then adjust fields as needed.
type DetectorConfig struct {
	// SubsetSize is n′, the number of heaviest columns forming S₁ in which
	// the core is searched. The naive algorithm uses all n columns; the
	// refined algorithm uses n′ ≈ O(√n) per Theorem 2 (4,000 for n = 4M).
	SubsetSize int
	// Hopefuls is the size of the priority list of heaviest b′-products
	// kept between iterations (the paper keeps O(n) of them). Zero means
	// SubsetSize.
	Hopefuls int
	// MaxIterations bounds the product order b′ (the paper's
	// num_iterations, ≈ b + c). Zero means 64.
	MaxIterations int
	// Gamma is the core-expansion slack γ: a column joins the pattern if
	// it shares at least weight(core)−γ ones with the core (§III-B lines
	// 10–14; "setting γ to 2 or 3 will work very well").
	Gamma int
	// Epsilon is the non-naturally-occurring threshold ε (§III-C). Zero
	// means 1e-3.
	Epsilon float64
	// FlatFactor and DiveFactor implement the termination procedure: the
	// weight-loss curve is "flat" when w_b ≥ FlatFactor·w_{b-1} and the
	// second exponential dive has begun when w_b ≤ DiveFactor·w_{b-1}.
	// Zeros mean 0.80 and 0.65.
	FlatFactor, DiveFactor float64
	// FullTrace makes Detect keep iterating to MaxIterations even after a
	// pattern is detected, so the complete weight-loss curve (Figure 7) is
	// recorded. Detection results are unaffected.
	FullTrace bool
	// Workers is the number of goroutines scanning candidate extensions at
	// each level. Zero means GOMAXPROCS; negative means serial. The result
	// is bit-identical at every worker count: each worker keeps a bounded
	// top-k heap over a strided slice of the hopefuls and the merge resolves
	// ties under the total order (weight desc, hopeful asc, column asc).
	Workers int
}

// NaiveConfig returns the naive O(n² log n) detector configuration for a
// matrix with n columns: search the whole matrix.
func NaiveConfig(n int) DetectorConfig {
	return DetectorConfig{SubsetSize: n, Gamma: 2}
}

// RefinedConfig returns the refined O(n log n) detector configuration:
// search only the subsetSize heaviest columns (Theorem 2 sizes this so the
// pattern's trace inside S₁ stays non-naturally-occurring).
func RefinedConfig(subsetSize int) DetectorConfig {
	return DetectorConfig{SubsetSize: subsetSize, Gamma: 2}
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Hopefuls == 0 {
		c.Hopefuls = c.SubsetSize
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 64
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1e-3
	}
	if c.FlatFactor == 0 {
		c.FlatFactor = 0.80
	}
	if c.DiveFactor == 0 {
		c.DiveFactor = 0.65
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c DetectorConfig) Validate() error {
	if c.SubsetSize <= 1 {
		return fmt.Errorf("aligned: SubsetSize must exceed 1, got %d", c.SubsetSize)
	}
	if c.Hopefuls < 0 || c.MaxIterations < 0 || c.Gamma < 0 {
		return fmt.Errorf("aligned: negative tuning parameter")
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("aligned: Epsilon %v outside [0,1]", c.Epsilon)
	}
	return nil
}

// Detection is the outcome of running an ASID detector on a matrix.
type Detection struct {
	// Found reports whether a non-naturally-occurring pattern was found.
	Found bool
	// Rows are the routers identified as having seen the common content
	// (the 1-positions of the winning product vector).
	Rows []int
	// CoreCols are the original column indices forming the detected core.
	CoreCols []int
	// Cols is the full identified pattern: the core plus every other
	// column sharing ≥ weight(core)−γ ones with it.
	Cols []int
	// Iterations is the product order b′ at which detection concluded
	// (the plateau end — Figure 7's "right number of iterations").
	Iterations int
	// WeightTrace[i] is the weight of the heaviest (i+1)-product; index 0
	// is the heaviest single column. This is Figure 7's curve.
	WeightTrace []int
}

// product is one entry of the hopeful list: an AND of |members| columns.
type product struct {
	vec     *bitvec.Vector
	weight  int
	members []int32 // positions within the sorted S₁ ordering, ascending
	// owned marks vectors allocated by extend, which return to the free
	// list when their level is dropped. Level-1 products borrow the matrix
	// columns themselves and must never be recycled.
	owned bool
}

func (p *product) maxMember() int32 { return p.members[len(p.members)-1] }

// candidate scores a prospective extension of hopeful hi by column cj.
type candidate struct {
	hi, cj int32
	weight int32
}

// better is the strict total order deciding which candidates survive a full
// top-k list: heavier first, then lower hopeful index, then lower column
// index. No two candidates share (hi, cj), so the order has no ties and the
// kept set is a pure function of the matrix — the same at any worker count.
func (c candidate) better(o candidate) bool {
	if c.weight != o.weight {
		return c.weight > o.weight
	}
	if c.hi != o.hi {
		return c.hi < o.hi
	}
	return c.cj < o.cj
}

// candHeap is a bounded top-k heap whose root is the *worst* kept candidate
// under the better order, so Pop evicts deterministically on weight ties.
type candHeap []candidate

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[j].better(h[i]) }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// vecPool recycles the product vectors of dropped hopeful levels. Every
// vector in the aligned search has the same length (the matrix row count)
// and AndInto overwrites every word, so recycled vectors need no reset.
// extend builds products serially after the parallel scan, so the pool is
// only ever touched from one goroutine.
type vecPool struct {
	free []*bitvec.Vector
	n    int
}

func (vp *vecPool) get() *bitvec.Vector {
	if k := len(vp.free); k > 0 {
		v := vp.free[k-1]
		vp.free = vp.free[:k-1]
		return v
	}
	return bitvec.New(vp.n)
}

// recycle returns a level's owned vectors to the pool. Callers must not do
// this before the next level is built: its AndInto reads these vectors.
func (vp *vecPool) recycle(level []*product) {
	for _, p := range level {
		if p.owned {
			vp.free = append(vp.free, p.vec)
		}
	}
}

// logNaturalOccurrence generalizes the paper's equation (1) bound to
// arbitrary bit density: log( C(rows,a)·C(cols,b)·p^{ab} ), the expected
// number of naturally occurring a×b all-1 submatrices in a rows×cols random
// matrix whose entries are 1 with probability p.
func logNaturalOccurrence(rows, cols, a, b int, p float64) float64 {
	return stats.LogChoose(float64(rows), float64(a)) +
		stats.LogChoose(float64(cols), float64(b)) +
		float64(a)*float64(b)*math.Log(p)
}

// Significant reports whether an a×b pattern is non-naturally-occurring at
// level eps in a rows×cols half-full matrix (equation (1) verbatim).
func Significant(rows, cols, a, b int, eps float64) bool {
	if a <= 0 || b <= 0 {
		return false
	}
	return logNaturalOccurrence(rows, cols, a, b, 0.5) <= math.Log(eps)
}

// Detect runs the greedy ASID detector (Figures 5/6) on the matrix.
func Detect(m *Matrix, cfg DetectorConfig) (Detection, error) {
	return DetectWithWeights(m, m.ColumnWeights(), cfg)
}

// DetectWithWeights is Detect with the column weights supplied by the caller.
// The incremental accumulator maintains exact per-column popcounts as digests
// arrive, so finalize skips the full O(n·m/64) popcount sweep; the weights
// must equal m.ColumnWeights() or the screening order (and hence the result)
// is undefined.
func DetectWithWeights(m *Matrix, weights []int, cfg DetectorConfig) (Detection, error) {
	if err := cfg.Validate(); err != nil {
		return Detection{}, err
	}
	if len(weights) != m.Cols() {
		return Detection{}, fmt.Errorf("aligned: %d column weights for %d columns", len(weights), m.Cols())
	}
	cfg = cfg.withDefaults()
	n := m.Cols()
	if cfg.SubsetSize > n {
		cfg.SubsetSize = n
	}
	if cfg.Hopefuls > cfg.SubsetSize {
		cfg.Hopefuls = cfg.SubsetSize
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}

	// S₁: the SubsetSize heaviest columns ("screening by weight"),
	// descending by weight with index tie-break for determinism. Only the
	// top n′ are needed, so screening is a bounded-heap selection —
	// O(n log n′) instead of a full O(n log n) sort, which matters every
	// finalize once the weights themselves are maintained incrementally.
	s1 := topColumns(weights, cfg.SubsetSize)

	// Level 1: every column of S₁ is a 1-product.
	hopefuls := make([]*product, len(s1))
	for pos, j := range s1 {
		hopefuls[pos] = &product{
			vec:     m.Col(j),
			weight:  weights[j],
			members: []int32{int32(pos)},
		}
	}
	trace := []int{hopefuls[0].weight}

	s1Weights := make([]int, len(s1))
	sumW := 0
	for pos, j := range s1 {
		s1Weights[pos] = weights[j]
		sumW += weights[j]
	}
	// The S₁ columns are the *heaviest* of the matrix, so their bit density
	// exceeds one half; equation (1) must use the conditioned density or the
	// screening bias masquerades as signal on small instances.
	density := float64(sumW) / float64(len(s1)*m.Rows())
	if density <= 0 || density >= 1 {
		density = 0.5
	}
	logEps := math.Log(cfg.Epsilon)
	score := func(p *product) float64 {
		if p.weight == 0 {
			return math.Inf(1)
		}
		return logNaturalOccurrence(m.Rows(), cfg.SubsetSize, p.weight, len(p.members), density)
	}

	// Track the most significant (least naturally occurring) product across
	// all levels; the weight-loss plateau ends exactly where this score is
	// minimized, which is the paper's "right number of iterations".
	best := cloneProduct(hopefuls[0])
	bestScore := score(best)
	prevW := hopefuls[0].weight
	flatSeen := false
	pool := &vecPool{n: m.Rows()}

	for level := 2; level <= cfg.MaxIterations; level++ {
		next := extend(m, s1, s1Weights, hopefuls, cfg.Hopefuls, workers, pool)
		if len(next) == 0 {
			break
		}
		// The new level is fully materialized, so the old level's owned
		// vectors (best is a clone, nothing else escapes) can be reused.
		pool.recycle(hopefuls)
		hopefuls = next
		w := hopefuls[0].weight
		trace = append(trace, w)

		if s := score(hopefuls[0]); s < bestScore {
			bestScore = s
			best = cloneProduct(hopefuls[0])
		}
		// Termination procedure (§III-B): once the curve has flattened and
		// then takes its second exponential dive, the plateau end is behind
		// us; stop early if it was significant (FullTrace keeps going to
		// record the complete Figure 7 curve).
		if flatSeen && float64(w) <= cfg.DiveFactor*float64(prevW) {
			if bestScore <= logEps && !cfg.FullTrace {
				break
			}
			flatSeen = false
		}
		if float64(w) >= cfg.FlatFactor*float64(prevW) {
			flatSeen = true
		}
		prevW = w
		if w == 0 {
			break
		}
	}

	det := Detection{WeightTrace: trace}
	if bestScore > logEps {
		return det, nil
	}
	concluded := best
	det.Found = true
	det.Iterations = len(concluded.members)
	det.Rows = concluded.vec.Indices()
	det.CoreCols = make([]int, 0, len(concluded.members))
	for _, pos := range concluded.members {
		det.CoreCols = append(det.CoreCols, s1[pos])
	}
	sort.Ints(det.CoreCols)

	// Expansion (lines 10–14 of Figure 6): any column sharing at least
	// weight(core)−γ ones with the core vector joins the pattern.
	inCore := make(map[int]bool, len(det.CoreCols))
	for _, j := range det.CoreCols {
		inCore[j] = true
	}
	thresh := concluded.weight - cfg.Gamma
	if thresh < 1 {
		thresh = 1
	}
	det.Cols = append(det.Cols, det.CoreCols...)
	for j := 0; j < n; j++ {
		if inCore[j] {
			continue
		}
		if bitvec.AndCount(concluded.vec, m.Col(j)) >= thresh {
			det.Cols = append(det.Cols, j)
		}
	}
	sort.Ints(det.Cols)
	return det, nil
}

// topColumns selects the k heaviest column indices, descending by weight with
// ascending-index tie-break — exactly the prefix the full deterministic sort
// would produce. A size-k min-heap (rooted at the *worst* retained column)
// scans the weights once; columns beat the root under the same total order
// the sort used, so the selection is bit-identical to order[:k].
func topColumns(weights []int, k int) []int {
	better := func(a, b int) bool { // does column a outrank column b?
		if weights[a] != weights[b] {
			return weights[a] > weights[b]
		}
		return a < b
	}
	heap := make([]int, 0, k)
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			worst := i
			if l < len(heap) && better(heap[worst], heap[l]) {
				worst = l
			}
			if r < len(heap) && better(heap[worst], heap[r]) {
				worst = r
			}
			if worst == i {
				return
			}
			heap[i], heap[worst] = heap[worst], heap[i]
			i = worst
		}
	}
	for j := 0; j < len(weights); j++ {
		if len(heap) < k {
			heap = append(heap, j)
			for i := len(heap) - 1; i > 0; {
				parent := (i - 1) / 2
				if !better(heap[parent], heap[i]) {
					break
				}
				heap[i], heap[parent] = heap[parent], heap[i]
				i = parent
			}
			continue
		}
		if better(j, heap[0]) {
			heap[0] = j
			siftDown(0)
		}
	}
	sort.Slice(heap, func(i, j int) bool { return better(heap[i], heap[j]) })
	return heap
}

func cloneProduct(p *product) *product {
	return &product{
		vec:     p.vec.Clone(),
		weight:  p.weight,
		members: append([]int32(nil), p.members...),
	}
}

// extend generates the next level of hopefuls: the k heaviest (b′+1)-products
// v·w with v a current hopeful and w a column of S₁ beyond v's largest
// member (each column set is enumerated exactly once, in ascending member
// order). Hopefuls and S₁ are weight-sorted, so the scan prunes with the
// bound weight(v·w) ≤ min(weight(v), weight(w)).
//
// With workers > 1 the candidate scan fans out over strided slices of the
// hopefuls, each worker keeping its own bounded top-k heap. A strided slice
// of a weight-descending list is itself weight-descending, so every pruning
// rule stays valid per worker, and the union of per-worker top-k sets is a
// superset of the global top-k — merging, sorting under the candidate total
// order, and truncating therefore yields exactly the serial result.
func extend(m *Matrix, s1 []int, s1Weights []int, hopefuls []*product, k, workers int, pool *vecPool) []*product {
	if workers > len(hopefuls) {
		workers = len(hopefuls)
	}
	var cands []candidate
	if workers <= 1 {
		cands = scanCandidates(m, s1, s1Weights, hopefuls, k, 0, 1)
	} else {
		parts := make([][]candidate, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				parts[w] = scanCandidates(m, s1, s1Weights, hopefuls, k, w, workers)
			}(w)
		}
		wg.Wait()
		for _, p := range parts {
			cands = append(cands, p...)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].better(cands[j]) })
	if len(cands) > k {
		cands = cands[:k]
	}
	// Build the surviving products serially, in final order (heaviest first,
	// ties already resolved by the total order), reusing pooled vectors.
	next := make([]*product, len(cands))
	for i, c := range cands {
		p := hopefuls[c.hi]
		vec := pool.get()
		weight := bitvec.AndInto(vec, p.vec, m.Col(s1[c.cj]))
		members := make([]int32, len(p.members)+1)
		copy(members, p.members)
		members[len(p.members)] = c.cj
		next[i] = &product{vec: vec, weight: weight, members: members, owned: true}
	}
	return next
}

// scanCandidates scores the extensions of hopefuls[offset], [offset+stride],
// ... and returns the top-k among them under the candidate total order. The
// weight-only comparisons against the heap floor are exact despite ties:
// enumeration visits (hi, cj) in strictly ascending order, so a newcomer
// whose weight merely equals the floor is always worse under the total order
// than every incumbent and may be skipped outright.
func scanCandidates(m *Matrix, s1 []int, s1Weights []int, hopefuls []*product, k, offset, stride int) []candidate {
	h := make(candHeap, 0, k+1)
	heapMin := func() int32 {
		if len(h) < k {
			return -1
		}
		return h[0].weight
	}
	for hi := offset; hi < len(hopefuls); hi += stride {
		p := hopefuls[hi]
		if int32(p.weight) <= heapMin() {
			break // later hopefuls are lighter still
		}
		for pos := int(p.maxMember()) + 1; pos < len(s1); pos++ {
			// Columns are weight-sorted descending; once the bound falls to
			// the heap floor nothing further in this row can qualify.
			if len(h) == k {
				bound := s1Weights[pos]
				if p.weight < bound {
					bound = p.weight
				}
				if int32(bound) <= heapMin() {
					break
				}
			}
			w := int32(bitvec.AndCount(p.vec, m.Col(s1[pos])))
			if w <= heapMin() {
				continue
			}
			heap.Push(&h, candidate{hi: int32(hi), cj: int32(pos), weight: w})
			if len(h) > k {
				heap.Pop(&h)
			}
		}
	}
	return h
}
