package aligned

import (
	"fmt"

	"dcstream/internal/stats"
)

// Theorem2Inputs parameterizes the S₁-sizing computation of Theorem 2: how
// many heaviest columns the refined detector must screen so that, with high
// probability, enough of an a×b pattern's columns survive screening for the
// core search to find a non-naturally-occurring sub-pattern.
type Theorem2Inputs struct {
	// Rows and Cols are the matrix dimensions m×n.
	Rows, Cols int
	// PatternA and PatternB are the pattern dimensions a×b.
	PatternA, PatternB int
	// Eps1 is the per-column tail for the weight threshold w. Zero = 1e-3.
	Eps1 float64
	// Eps2 bounds the probability that more than s noise columns exceed w.
	// Zero = 1e-3.
	Eps2 float64
	// Eps4 bounds the probability that fewer than L pattern columns exceed
	// w. Zero = 1e-2.
	Eps4 float64
}

func (in Theorem2Inputs) withDefaults() Theorem2Inputs {
	if in.Eps1 == 0 {
		in.Eps1 = 1e-3
	}
	if in.Eps2 == 0 {
		in.Eps2 = 1e-3
	}
	if in.Eps4 == 0 {
		in.Eps4 = 1e-2
	}
	return in
}

// Validate reports whether the inputs are usable.
func (in Theorem2Inputs) Validate() error {
	in = in.withDefaults()
	if in.Rows <= 0 || in.Cols <= 0 {
		return fmt.Errorf("aligned: non-positive matrix dimension")
	}
	if in.PatternA <= 0 || in.PatternA > in.Rows || in.PatternB <= 0 || in.PatternB > in.Cols {
		return fmt.Errorf("aligned: pattern %dx%d does not fit %dx%d",
			in.PatternA, in.PatternB, in.Rows, in.Cols)
	}
	for _, e := range []float64{in.Eps1, in.Eps2, in.Eps4} {
		if e <= 0 || e >= 1 {
			return fmt.Errorf("aligned: epsilon %v outside (0,1)", e)
		}
	}
	return nil
}

// Theorem2Result is the computed sizing.
type Theorem2Result struct {
	// W is the weight threshold: a noise column exceeds it with
	// probability ≤ Eps1.
	W int
	// S bounds the noise columns above W: more than S occur with
	// probability ≤ Eps2.
	S int
	// SubsetSize is n′ = S + b, Theorem 2's prescription for |S₁|.
	SubsetSize int
	// Eps3 is the probability that one pattern column exceeds W (the
	// pattern column's survival probability).
	Eps3 float64
	// L is the guaranteed pattern presence: with probability at least
	// Confidence, S₁ contains at least L pattern columns. Zero means even
	// one surviving column cannot be guaranteed at the requested Eps4.
	L int
	// Confidence = 1 − Eps2 − Eps4 (Theorem 2's bound).
	Confidence float64
}

// Theorem2 computes the refined detector's screening sizes. The paper's
// statement has the Eps4 tail written on the wrong side (binocdf(l, b, ε3) =
// 1−ε4 would bound the pattern's survivors from *above*); the meaningful
// direction, implemented here, is the largest L with
// P[fewer than L of b pattern columns exceed W] ≤ Eps4.
func Theorem2(in Theorem2Inputs) (Theorem2Result, error) {
	if err := in.Validate(); err != nil {
		return Theorem2Result{}, err
	}
	in = in.withDefaults()
	var r Theorem2Result
	// w: noise columns are Binomial(m, 1/2).
	r.W = stats.BinomUpperQuantile(in.Rows, 0.5, in.Eps1)
	// s: the count of noise columns above w is ~Binomial(n, tail(w)); use
	// the realized tail rather than Eps1 itself (the discrete quantile
	// overshoots the nominal tail).
	tail := stats.BinomSurvival(r.W, in.Rows, 0.5)
	r.S = stats.BinomUpperQuantile(in.Cols, tail, in.Eps2)
	r.SubsetSize = r.S + in.PatternB
	// ε3: a pattern column has a forced ones plus fair coins elsewhere.
	r.Eps3 = stats.BinomSurvival(r.W-in.PatternA, in.Rows-in.PatternA, 0.5)
	// L: largest l with P[Binomial(b, ε3) < l] ≤ Eps4.
	l := 0
	for l < in.PatternB && stats.BinomCDF(l, in.PatternB, r.Eps3) <= in.Eps4 {
		l++
	}
	r.L = l
	r.Confidence = 1 - in.Eps2 - in.Eps4
	return r, nil
}
