package aligned

import (
	"fmt"

	"dcstream/internal/stats"
)

// NonNaturalMinB returns, for a pattern seen by a routers in a rows×cols
// half-full matrix, the minimum number of packets b for the a×b pattern to
// be non-naturally-occurring at level eps (equation (1), Figure 12's lower
// curve). It returns -1 if no b up to cols/2 achieves significance (the
// signal of a rows is too weak at any length).
func NonNaturalMinB(rows, cols, a int, eps float64) int {
	if a <= 0 || a > rows {
		return -1
	}
	for b := 1; b <= cols/2; b++ {
		if Significant(rows, cols, a, b, eps) {
			return b
		}
	}
	return -1
}

// DetectableConfig parameterizes the detectable-threshold estimate of
// §V-A.2: how large a pattern must be for the *refined* detector — which
// only searches the SubsetSize heaviest columns — to find it with
// probability at least 1−Delta.
type DetectableConfig struct {
	// Rows and Cols are the full matrix dimensions m×n.
	Rows, Cols int
	// SubsetSize is the refined detector's n′.
	SubsetSize int
	// NoiseFill is the target fraction of S₁ occupied by noise columns
	// when choosing the weight cutoff; the paper's example uses 550 as the
	// cutoff for m=1000, leaving ≈2900 noise columns in a 4000-column S₁
	// (fraction ≈0.725). Zero means 0.725.
	NoiseFill float64
	// Eps is the non-natural threshold applied within the S₁ submatrix.
	// Zero means 1e-3.
	Eps float64
	// Delta is the tolerated miss probability. Zero means 0.05 (Figure
	// 12's "detected with at least 95% probability" curve).
	Delta float64
}

func (c DetectableConfig) withDefaults() DetectableConfig {
	if c.NoiseFill == 0 {
		c.NoiseFill = 0.725
	}
	if c.Eps == 0 {
		c.Eps = 1e-3
	}
	if c.Delta == 0 {
		c.Delta = 0.05
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c DetectableConfig) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 || c.SubsetSize <= 0 {
		return fmt.Errorf("aligned: non-positive dimension in %+v", c)
	}
	if c.SubsetSize > c.Cols {
		return fmt.Errorf("aligned: SubsetSize %d exceeds Cols %d", c.SubsetSize, c.Cols)
	}
	if c.NoiseFill < 0 || c.NoiseFill > 1 || c.Delta < 0 || c.Delta > 1 {
		return fmt.Errorf("aligned: NoiseFill/Delta outside [0,1] in %+v", c)
	}
	return nil
}

// WeightCutoff returns the column-weight screening threshold: the smallest
// W such that the expected number of noise columns heavier than W is at
// most NoiseFill·SubsetSize. Columns above it compete for S₁ membership.
func (c DetectableConfig) WeightCutoff() int {
	c = c.withDefaults()
	target := c.NoiseFill * float64(c.SubsetSize) / float64(c.Cols)
	return stats.BinomUpperQuantile(c.Rows, 0.5, target)
}

// DetectableMinB returns the minimum pattern length b (in packets) such
// that an a×b pattern survives the refined detector's screening with
// probability at least 1−Delta (Figure 12's upper curve): at least l of the
// b pattern columns must exceed the weight cutoff, where l is the smallest
// non-naturally-occurring length within the S₁ submatrix. Returns -1 when
// a's signal cannot reach significance at any length.
func DetectableMinB(c DetectableConfig, a int) int {
	if err := c.Validate(); err != nil {
		return -1
	}
	c = c.withDefaults()
	if a <= 0 || a > c.Rows {
		return -1
	}
	l := NonNaturalMinB(c.Rows, c.SubsetSize, a, c.Eps)
	if l < 0 {
		return -1
	}
	cut := c.WeightCutoff()
	// A pattern column has a forced 1's in the pattern rows plus fair coins
	// elsewhere, so it clears the cutoff with this probability:
	pSurv := stats.BinomSurvival(cut-a, c.Rows-a, 0.5)
	if pSurv <= 0 {
		return -1
	}
	// Smallest b with P[Binomial(b, pSurv) >= l] >= 1-Delta. The survival
	// probability is monotone in b, so binary search.
	lo, hi := l-1, l
	for stats.BinomSurvival(l-1, hi, pSurv) < 1-c.Delta {
		lo = hi
		hi *= 2
		if hi > 1<<26 {
			return -1
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if stats.BinomSurvival(l-1, mid, pSurv) >= 1-c.Delta {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// DetectionProbability returns the probability that an a×b pattern survives
// screening (at least l pattern columns clear the weight cutoff) — the
// quantity the paper evaluates as ≈0.988 for the 100×30 target.
func DetectionProbability(c DetectableConfig, a, b int) float64 {
	if err := c.Validate(); err != nil {
		return 0
	}
	c = c.withDefaults()
	l := NonNaturalMinB(c.Rows, c.SubsetSize, a, c.Eps)
	if l < 0 {
		return 0
	}
	cut := c.WeightCutoff()
	pSurv := stats.BinomSurvival(cut-a, c.Rows-a, 0.5)
	return stats.BinomSurvival(l-1, b, pSurv)
}
