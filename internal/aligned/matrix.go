package aligned

import (
	"fmt"
	"math/rand"

	"dcstream/internal/bitvec"
	"dcstream/internal/stats"
)

// Matrix is the m×n 0-1 matrix the analysis center assembles by stacking m
// router digests of n bits each (§III-B). It is stored column-major: each
// column is an m-bit vector over routers, because the detection algorithms
// work entirely on column AND-products.
type Matrix struct {
	rows int
	cols []*bitvec.Vector
}

// NewMatrix returns an all-zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols < 0 {
		panic(fmt.Sprintf("aligned: invalid matrix shape %dx%d", rows, cols))
	}
	m := &Matrix{rows: rows, cols: make([]*bitvec.Vector, cols)}
	for j := range m.cols {
		m.cols[j] = bitvec.New(rows)
	}
	return m
}

// Rows returns the number of rows (routers).
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns (bitmap width).
func (m *Matrix) Cols() int { return len(m.cols) }

// Col returns column j as an m-bit vector (shared storage; treat read-only).
func (m *Matrix) Col(j int) *bitvec.Vector { return m.cols[j] }

// Set sets entry (row i, column j) to 1.
func (m *Matrix) Set(i, j int) { m.cols[j].Set(i) }

// Test reports entry (i, j).
func (m *Matrix) Test(i, j int) bool { return m.cols[j].Test(i) }

// FromDigests transposes m router digests (each an n-bit row) into the
// column-major matrix used for detection. All digests must share one width.
func FromDigests(digests []*bitvec.Vector) *Matrix {
	if len(digests) == 0 {
		panic("aligned: FromDigests needs at least one digest")
	}
	n := digests[0].Len()
	for i, d := range digests {
		if d.Len() != n {
			panic(fmt.Sprintf("aligned: digest %d width %d, want %d", i, d.Len(), n))
		}
	}
	m := NewMatrix(len(digests), n)
	for i, d := range digests {
		for _, j := range d.Indices() {
			m.Set(i, j)
		}
	}
	return m
}

// ColumnMatrix wraps pre-built column vectors as a matrix without copying:
// the incremental accumulator maintains columns across a whole window and
// hands them to the detector at finalize time. Every column must be rows bits
// long; the matrix shares the columns' storage, so callers must not mutate
// them while a detection runs.
func ColumnMatrix(rows int, cols []*bitvec.Vector) *Matrix {
	if rows <= 0 {
		panic(fmt.Sprintf("aligned: invalid matrix shape %dx%d", rows, len(cols)))
	}
	for j, c := range cols {
		if c.Len() != rows {
			panic(fmt.Sprintf("aligned: column %d length %d, want %d", j, c.Len(), rows))
		}
	}
	return &Matrix{rows: rows, cols: cols}
}

// RandomMatrix fills an m×n matrix with independent fair coin flips — the
// Monte-Carlo null model of §V-A (half 1's, half 0's).
func RandomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for _, c := range m.cols {
		c.FillRandomHalf(rng.Uint64)
	}
	return m
}

// PlantPattern sets an a×b all-1 submatrix at a uniformly random choice of
// a rows and b columns (the paper's pattern injection) and returns the
// chosen rows and columns, each sorted ascending by construction order of
// SampleDistinct (no particular order guaranteed).
func (m *Matrix) PlantPattern(rng *rand.Rand, a, b int) (rows, cols []int) {
	if a <= 0 || a > m.rows || b <= 0 || b > len(m.cols) {
		panic(fmt.Sprintf("aligned: pattern %dx%d does not fit %dx%d", a, b, m.rows, len(m.cols)))
	}
	rows = stats.SampleDistinct(rng, m.rows, a)
	cols = stats.SampleDistinct(rng, len(m.cols), b)
	for _, j := range cols {
		for _, i := range rows {
			m.cols[j].Set(i)
		}
	}
	return rows, cols
}

// ColumnWeights returns the weight (number of 1's) of every column.
func (m *Matrix) ColumnWeights() []int {
	w := make([]int, len(m.cols))
	for j, c := range m.cols {
		w[j] = c.OnesCount()
	}
	return w
}
