package aligned

import (
	"testing"

	"dcstream/internal/stats"
)

func TestTheorem2Validation(t *testing.T) {
	for _, in := range []Theorem2Inputs{
		{Rows: 0, Cols: 10, PatternA: 1, PatternB: 1},
		{Rows: 10, Cols: 10, PatternA: 11, PatternB: 1},
		{Rows: 10, Cols: 10, PatternA: 1, PatternB: 11},
		{Rows: 10, Cols: 10, PatternA: 1, PatternB: 1, Eps1: 2},
	} {
		if _, err := Theorem2(in); err == nil {
			t.Fatalf("inputs %+v should be rejected", in)
		}
	}
}

func TestTheorem2PaperScale(t *testing.T) {
	// The paper's Figure 7 instance: 1000×4M with a 100×30 pattern and
	// n' = 4000, of which ≈15 are pattern columns. Theorem 2 should
	// prescribe an n' in the low thousands ("when n is in the range of
	// millions, n' only needs to be in the range of thousands") and an L
	// near the observed 15.
	r, err := Theorem2(Theorem2Inputs{
		Rows: 1000, Cols: 4 << 20, PatternA: 100, PatternB: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.SubsetSize < 500 || r.SubsetSize > 20000 {
		t.Fatalf("n'=%d, expected thousands", r.SubsetSize)
	}
	if r.W < 540 || r.W > 580 {
		t.Fatalf("w=%d, expected ≈550-560", r.W)
	}
	if r.L < 5 || r.L > 25 {
		t.Fatalf("L=%d, expected near the paper's 15", r.L)
	}
	if r.Eps3 < 0.2 || r.Eps3 > 0.8 {
		t.Fatalf("eps3=%v, expected ≈0.5 for a=100 at w≈550", r.Eps3)
	}
	if r.Confidence < 0.97 {
		t.Fatalf("confidence %v", r.Confidence)
	}
}

// TestTheorem2GuaranteeHolds Monte-Carlos the theorem's statement: among
// the SubsetSize heaviest columns of a random matrix with a planted
// pattern, at least L pattern columns appear with frequency at least
// Confidence.
func TestTheorem2GuaranteeHolds(t *testing.T) {
	in := Theorem2Inputs{Rows: 200, Cols: 1 << 16, PatternA: 40, PatternB: 25}
	r, err := Theorem2(in)
	if err != nil {
		t.Fatal(err)
	}
	if r.L == 0 {
		t.Fatalf("theorem gives vacuous L for %+v", in)
	}
	rng := stats.NewRand(80)
	const trials = 40
	ok := 0
	for i := 0; i < trials; i++ {
		vs, err := SampleHeavyColumns(rng, VirtualConfig{
			Rows: in.Rows, Cols: in.Cols, SubsetSize: r.SubsetSize,
			PatternRows: in.PatternA, PatternCols: in.PatternB,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(vs.PatternColsInS1) >= r.L {
			ok++
		}
	}
	freq := float64(ok) / trials
	// Allow Monte-Carlo slack below the analytic confidence.
	if freq < r.Confidence-0.15 {
		t.Fatalf("guarantee held in %v of trials, theorem promises %v (L=%d, n'=%d)",
			freq, r.Confidence, r.L, r.SubsetSize)
	}
}

func TestTheorem2MonotoneInPattern(t *testing.T) {
	// A stronger pattern (larger a) must survive screening at least as
	// well: L non-decreasing in a for fixed b.
	prev := -1
	for _, a := range []int{40, 60, 80, 100} {
		r, err := Theorem2(Theorem2Inputs{Rows: 1000, Cols: 1 << 20, PatternA: a, PatternB: 30})
		if err != nil {
			t.Fatal(err)
		}
		if r.L < prev {
			t.Fatalf("L decreased at a=%d: %d after %d", a, r.L, prev)
		}
		prev = r.L
	}
}
