package aligned

import (
	"reflect"
	"runtime"
	"testing"

	"dcstream/internal/stats"
)

// TestDetectWorkerIndependent asserts the determinism contract of the
// parallel extension scan: Detect is a pure function of (matrix, config
// minus Workers), byte-identical at every worker count. Run under -race
// this also exercises the per-worker heap fan-out for data races.
func TestDetectWorkerIndependent(t *testing.T) {
	for _, planted := range []bool{false, true} {
		rng := stats.NewRand(41)
		m := RandomMatrix(rng, 96, 512)
		if planted {
			m.PlantPattern(rng, 24, 12)
		}
		var base Detection
		counts := []int{1, 2, 3, runtime.GOMAXPROCS(0), 0, -1, 1 << 20}
		for i, w := range counts {
			cfg := RefinedConfig(128)
			cfg.Workers = w
			cfg.FullTrace = true
			det, err := Detect(m, cfg)
			if err != nil {
				t.Fatalf("planted=%v workers=%d: %v", planted, w, err)
			}
			if i == 0 {
				base = det
				continue
			}
			if !reflect.DeepEqual(det, base) {
				t.Fatalf("planted=%v workers=%d: detection diverged from workers=%d\n got %+v\nwant %+v",
					planted, w, counts[0], det, base)
			}
		}
	}
}
