// Package aligned implements the paper's design for the aligned case
// (§III): the hashed-bitmap online streaming module that each router runs,
// the All-1 Submatrix IDentification (ASID) greedy detectors — the naive
// O(n² log n) variant and the refined O(n log n) variant with the
// weight-screening "core" search and the weight-loss termination procedure —
// and the non-naturally-occurring / detectable threshold computations of
// §III-C and §V-A.
package aligned

import (
	"fmt"

	"dcstream/internal/bitvec"
	"dcstream/internal/hashing"
	"dcstream/internal/packet"
)

// CollectorConfig parameterizes one router's online streaming module.
type CollectorConfig struct {
	// Bits is the bitmap width n. The paper sizes it so that one epoch of
	// line-rate traffic fills about half the bits: 4M bits for OC-48.
	Bits int
	// HashSeed selects the hash function. All routers in one deployment
	// must share a seed, or identical payloads would map to different
	// indices and no cross-router pattern could form.
	HashSeed uint64
	// PrefixLen, when positive, hashes only the first PrefixLen bytes of
	// each payload (the paper's range(pkt.content, 0, len)); zero hashes
	// the whole payload.
	PrefixLen int
	// TargetFill ends an epoch once this fraction of bits is set; the
	// paper uses one half. Zero means 0.5.
	TargetFill float64
}

func (c CollectorConfig) withDefaults() CollectorConfig {
	if c.TargetFill == 0 {
		c.TargetFill = 0.5
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c CollectorConfig) Validate() error {
	if c.Bits <= 0 {
		return fmt.Errorf("aligned: bitmap width must be positive, got %d", c.Bits)
	}
	if c.PrefixLen < 0 {
		return fmt.Errorf("aligned: negative prefix length %d", c.PrefixLen)
	}
	if c.TargetFill < 0 || c.TargetFill > 1 {
		return fmt.Errorf("aligned: target fill %v outside [0,1]", c.TargetFill)
	}
	return nil
}

// Collector is the aligned-case data collection module (Figure 3): an n-bit
// array indexed by a uniform hash of the packet payload. It is not safe for
// concurrent use; each monitored link owns one collector.
type Collector struct {
	cfg     CollectorConfig
	hash    hashing.Hash64
	bitmap  *bitvec.Vector
	packets int
	ones    int
}

// NewCollector returns a collector for one link.
func NewCollector(cfg CollectorConfig) (*Collector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:    cfg,
		hash:   hashing.New(cfg.HashSeed),
		bitmap: bitvec.New(cfg.Bits),
	}, nil
}

// Update processes one packet (Figure 3's update algorithm): hash the
// payload (or its prefix) and set the indexed bit. Packets without payload
// are ignored, as the paper specifies.
func (c *Collector) Update(p packet.Packet) {
	if len(p.Payload) == 0 {
		return
	}
	data := p.Payload
	if c.cfg.PrefixLen > 0 && c.cfg.PrefixLen < len(data) {
		data = data[:c.cfg.PrefixLen]
	}
	idx := c.hash.Index(data, c.cfg.Bits)
	if !c.bitmap.Test(idx) {
		c.bitmap.Set(idx)
		c.ones++
	}
	c.packets++
}

// Packets returns the number of payload-bearing packets processed this epoch.
func (c *Collector) Packets() int { return c.packets }

// FillRatio returns the fraction of bits currently set.
func (c *Collector) FillRatio() float64 {
	return float64(c.ones) / float64(c.cfg.Bits)
}

// EpochDone reports whether the bitmap has reached the target fill and
// should be shipped to the analysis center.
func (c *Collector) EpochDone() bool {
	return c.FillRatio() >= c.cfg.TargetFill
}

// Digest returns a snapshot of the bitmap — the per-epoch digest that gets
// shipped to the center — and does not reset the collector.
func (c *Collector) Digest() *bitvec.Vector { return c.bitmap.Clone() }

// Reset clears the bitmap for the next measurement epoch.
func (c *Collector) Reset() {
	c.bitmap.Reset()
	c.packets = 0
	c.ones = 0
}
