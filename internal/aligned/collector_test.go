package aligned

import (
	"testing"

	"dcstream/internal/bitvec"
	"dcstream/internal/packet"
	"dcstream/internal/stats"
	"dcstream/internal/trafficgen"
)

func TestCollectorConfigValidation(t *testing.T) {
	for _, cfg := range []CollectorConfig{
		{Bits: 0},
		{Bits: -4},
		{Bits: 10, PrefixLen: -1},
		{Bits: 10, TargetFill: 1.5},
	} {
		if _, err := NewCollector(cfg); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
}

func TestCollectorSamePayloadSameBit(t *testing.T) {
	c1, err := NewCollector(CollectorConfig{Bits: 1 << 12, HashSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := NewCollector(CollectorConfig{Bits: 1 << 12, HashSeed: 9})
	payload := []byte("the same application layer data")
	c1.Update(packet.Packet{Flow: 1, Payload: payload})
	c2.Update(packet.Packet{Flow: 2, Payload: payload})
	d1, d2 := c1.Digest(), c2.Digest()
	if d1.OnesCount() != 1 || d2.OnesCount() != 1 {
		t.Fatalf("weights %d, %d want 1,1", d1.OnesCount(), d2.OnesCount())
	}
	if d1.Indices()[0] != d2.Indices()[0] {
		t.Fatal("identical payloads set different bits across routers")
	}
}

func TestCollectorDifferentSeedDifferentBit(t *testing.T) {
	c1, _ := NewCollector(CollectorConfig{Bits: 1 << 20, HashSeed: 1})
	c2, _ := NewCollector(CollectorConfig{Bits: 1 << 20, HashSeed: 2})
	payload := []byte("payload")
	c1.Update(packet.Packet{Payload: payload})
	c2.Update(packet.Packet{Payload: payload})
	if c1.Digest().Indices()[0] == c2.Digest().Indices()[0] {
		t.Fatal("different seeds mapped payload to the same bit (1/2^20 chance)")
	}
}

func TestCollectorIgnoresEmptyPayloads(t *testing.T) {
	c, _ := NewCollector(CollectorConfig{Bits: 64})
	c.Update(packet.Packet{Flow: 3})
	if c.Packets() != 0 || c.Digest().OnesCount() != 0 {
		t.Fatal("payload-less packet was recorded")
	}
}

func TestCollectorPrefixLen(t *testing.T) {
	full, _ := NewCollector(CollectorConfig{Bits: 1 << 16, HashSeed: 5})
	pre, _ := NewCollector(CollectorConfig{Bits: 1 << 16, HashSeed: 5, PrefixLen: 8})
	a := []byte("aaaaaaaaXXXX")
	b := []byte("aaaaaaaaYYYY")
	pre.Update(packet.Packet{Payload: a})
	pre.Update(packet.Packet{Payload: b})
	if pre.Digest().OnesCount() != 1 {
		t.Fatal("prefix hashing should collapse payloads sharing a prefix")
	}
	full.Update(packet.Packet{Payload: a})
	full.Update(packet.Packet{Payload: b})
	if full.Digest().OnesCount() != 2 {
		t.Fatal("full hashing should distinguish differing payloads")
	}
	// Prefix longer than payload hashes the whole payload.
	short, _ := NewCollector(CollectorConfig{Bits: 1 << 16, HashSeed: 5, PrefixLen: 100})
	short.Update(packet.Packet{Payload: []byte("tiny")})
	if short.Packets() != 1 {
		t.Fatal("short payload dropped")
	}
}

func TestCollectorFillMatchesBloomExpectation(t *testing.T) {
	// Inserting k random payloads into an l-bit array leaves a fraction
	// ≈ 1-exp(-k/l) of bits set — the Bloom filter property the paper sizes
	// bitmaps with (§III-A).
	const bits = 1 << 14
	const pkts = 11357 // ln2 * bits ≈ half fill
	c, _ := NewCollector(CollectorConfig{Bits: bits, HashSeed: 3, TargetFill: 0.45})
	rng := stats.NewRand(21)
	bg, err := trafficgen.Background(rng, trafficgen.BackgroundConfig{Packets: pkts, SegmentSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range bg {
		c.Update(p)
	}
	if got := c.FillRatio(); got < 0.47 || got > 0.53 {
		t.Fatalf("fill ratio %v, want ≈0.5", got)
	}
	if !c.EpochDone() {
		t.Fatal("epoch should be done past the 0.45 target fill")
	}
}

func TestCollectorReset(t *testing.T) {
	c, _ := NewCollector(CollectorConfig{Bits: 128})
	c.Update(packet.Packet{Payload: []byte("x")})
	c.Reset()
	if c.Packets() != 0 || c.FillRatio() != 0 || c.EpochDone() {
		t.Fatal("Reset did not clear state")
	}
}

func TestFromDigestsTranspose(t *testing.T) {
	d0 := bitvec.FromIndices(8, []int{1, 3})
	d1 := bitvec.FromIndices(8, []int{3, 7})
	m := FromDigests([]*bitvec.Vector{d0, d1})
	if m.Rows() != 2 || m.Cols() != 8 {
		t.Fatalf("shape %dx%d want 2x8", m.Rows(), m.Cols())
	}
	want := map[[2]int]bool{{0, 1}: true, {0, 3}: true, {1, 3}: true, {1, 7}: true}
	for i := 0; i < 2; i++ {
		for j := 0; j < 8; j++ {
			if m.Test(i, j) != want[[2]int{i, j}] {
				t.Fatalf("entry (%d,%d)=%v", i, j, m.Test(i, j))
			}
		}
	}
	// Column 3 (the shared payload position) must have weight 2.
	if m.Col(3).OnesCount() != 2 {
		t.Fatal("shared column weight wrong")
	}
}

func TestFromDigestsEndToEnd(t *testing.T) {
	// Two collectors see one shared payload; the resulting matrix must have
	// exactly one weight-2 column.
	c0, _ := NewCollector(CollectorConfig{Bits: 256, HashSeed: 1})
	c1, _ := NewCollector(CollectorConfig{Bits: 256, HashSeed: 1})
	shared := []byte("common content packet")
	c0.Update(packet.Packet{Payload: shared})
	c1.Update(packet.Packet{Payload: shared})
	c1.Update(packet.Packet{Payload: []byte("only at router 1")})

	m := FromDigests([]*bitvec.Vector{c0.Digest(), c1.Digest()})
	heavy := 0
	for j := 0; j < m.Cols(); j++ {
		if m.Col(j).OnesCount() == 2 {
			heavy++
		}
	}
	if heavy != 1 {
		t.Fatalf("want exactly 1 shared column, got %d", heavy)
	}
}

func TestMatrixPlantPattern(t *testing.T) {
	rng := stats.NewRand(33)
	m := NewMatrix(50, 200)
	rows, cols := m.PlantPattern(rng, 10, 7)
	if len(rows) != 10 || len(cols) != 7 {
		t.Fatalf("pattern dims %dx%d", len(rows), len(cols))
	}
	for _, j := range cols {
		for _, i := range rows {
			if !m.Test(i, j) {
				t.Fatalf("pattern bit (%d,%d) not set", i, j)
			}
		}
		if m.Col(j).OnesCount() != 10 {
			t.Fatal("pattern column has stray bits in a zero matrix")
		}
	}
}

func TestRandomMatrixHalfFull(t *testing.T) {
	rng := stats.NewRand(34)
	m := RandomMatrix(rng, 100, 500)
	total := 0
	for _, w := range m.ColumnWeights() {
		total += w
	}
	fill := float64(total) / float64(100*500)
	if fill < 0.48 || fill > 0.52 {
		t.Fatalf("random matrix fill %v, want ≈0.5", fill)
	}
}
