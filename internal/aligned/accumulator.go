package aligned

import (
	"fmt"
	"sort"

	"dcstream/internal/bitvec"
)

// Accumulator accounting constants. They mirror the center's shed ledger
// convention: a deterministic, slightly generous estimate of the Go runtime
// footprint, so the memory budget sees accumulator state the same way it sees
// buffered digests.
const (
	accVecHeaderBytes = 48 // bitvec.Vector struct + slice header
	accSlotBytes      = 64 // slots map entry + slotRouters element + weight
)

// initialCapRows is the row capacity columns start with; growth doubles it,
// so a window that ends up with r routers reallocates the arena at most
// ceil(log2(r/64)) times.
const initialCapRows = 64

// Accumulator maintains the aligned detection state of one window
// incrementally: the column-major matrix and the exact per-column popcounts,
// updated in O(popcount(digest)) per ingested digest instead of rebuilt by a
// full transposition at analyze time. Rows are assigned in arrival order
// ("slots"); the finalize path translates slot indices back to the batch
// path's sorted-router row order, which is valid because the detector's
// outcome is invariant under row permutation (no rule in Detect ever compares
// row indices — only column contents, weights, and column indices).
//
// The accumulator is not self-synchronizing: the center mutates and reads it
// under its own mutex.
type Accumulator struct {
	width   int // bitmap width, fixed by the first applied digest
	rows    int // used slots
	capRows int // allocated bits per column (arena capacity)
	cols    []*bitvec.Vector
	weights []int32
	slots   map[int]int // router -> slot
	slotIDs []int       // slot -> router, arrival order
	mixed   bool        // saw a digest of a different width; finalize must fall back
	bytes   int64
}

// NewAccumulator returns an empty accumulator; the first Add fixes the width.
func NewAccumulator() *Accumulator {
	return &Accumulator{slots: map[int]int{}}
}

// Rows returns the number of occupied row slots.
func (a *Accumulator) Rows() int { return a.rows }

// Width returns the bitmap width, or 0 before the first applied digest.
func (a *Accumulator) Width() int { return a.width }

// Mixed reports whether a digest of a conflicting width was seen. The
// incremental matrix is then unusable and finalize must take the batch path,
// which reproduces the batch width-mismatch error verbatim.
func (a *Accumulator) Mixed() bool { return a.mixed }

// Bytes returns the accounted memory footprint. It moves only by the deltas
// Add returns, so the center's ledger can track it exactly.
func (a *Accumulator) Bytes() int64 { return a.bytes }

func (a *Accumulator) structBytes() int64 {
	if a.width == 0 {
		return 0
	}
	capWords := int64((a.capRows + 63) / 64)
	return int64(a.width)*capWords*8 + // arena words
		int64(a.width)*accVecHeaderBytes + // column headers
		int64(a.width)*4 + // weights
		int64(len(a.slotIDs))*accSlotBytes // slot bookkeeping
}

// EstimateAdd returns the byte delta Add(router, bm) would report, without
// mutating anything. RejectNew admission uses this to refuse a digest before
// any state changes.
func (a *Accumulator) EstimateAdd(router int, bm *bitvec.Vector) int64 {
	if a.width != 0 && bm.Len() != a.width {
		return 0 // would only flip the mixed flag
	}
	width, capRows, slotCount := a.width, a.capRows, len(a.slotIDs)
	cur := a.structBytes()
	if width == 0 {
		width, capRows = bm.Len(), initialCapRows
	}
	if _, ok := a.slots[router]; !ok {
		if a.rows == capRows {
			capRows *= 2
		}
		slotCount++
	}
	capWords := int64((capRows + 63) / 64)
	next := int64(width)*capWords*8 +
		int64(width)*accVecHeaderBytes +
		int64(width)*4 +
		int64(slotCount)*accSlotBytes
	return next - cur
}

// Add applies one router digest: the router's row slot gets bm's bits and the
// touched columns' popcounts are bumped. Cost is O(popcount(bm)) plus
// amortized arena growth. It returns the accounted byte delta. A digest whose
// width conflicts with the established width marks the accumulator mixed and
// is not applied (the batch fallback reports the mismatch).
func (a *Accumulator) Add(router int, bm *bitvec.Vector) int64 {
	if a.width != 0 && bm.Len() != a.width {
		a.mixed = true
		return 0
	}
	before := a.structBytes()
	if a.width == 0 {
		a.width = bm.Len()
		a.capRows = initialCapRows
		a.cols = bitvec.NewArena(a.width, a.capRows)
		a.weights = make([]int32, a.width)
	}
	slot, ok := a.slots[router]
	if !ok {
		if a.rows == a.capRows {
			a.grow()
		}
		slot = a.rows
		a.rows++
		a.slots[router] = slot
		a.slotIDs = append(a.slotIDs, router)
	}
	for _, j := range bm.Indices() {
		a.cols[j].Set(slot)
		a.weights[j]++
	}
	delta := a.structBytes() - before
	a.bytes += delta
	return delta
}

// Remove retracts a previously applied digest for router (the DupKeepLast
// replacement path): its bits are cleared and the popcounts decremented. The
// slot stays assigned — the replacement Add reuses it, so slot order (and
// with it the row permutation) is stable across replacements. Digests that
// were never applied (unknown router, conflicting width) are ignored.
func (a *Accumulator) Remove(router int, bm *bitvec.Vector) {
	if a.width == 0 || bm.Len() != a.width {
		return
	}
	slot, ok := a.slots[router]
	if !ok {
		return
	}
	for _, j := range bm.Indices() {
		if a.cols[j].Test(slot) {
			a.cols[j].Clear(slot)
			a.weights[j]--
		}
	}
}

// grow doubles the arena row capacity, copying each column's words.
func (a *Accumulator) grow() {
	newCap := a.capRows * 2
	next := bitvec.NewArena(a.width, newCap)
	for j, c := range a.cols {
		bitvec.Blit(next[j], 0, c, a.capRows)
	}
	a.cols, a.capRows = next, newCap
}

// Matrix returns the accumulated matrix (rows in slot order, shared storage —
// do not mutate the accumulator while the detection runs) together with the
// maintained column weights. It panics when the accumulator is empty or
// mixed; callers gate on Rows and Mixed.
func (a *Accumulator) Matrix() (*Matrix, []int) {
	if a.mixed {
		panic("aligned: Matrix on mixed-width accumulator")
	}
	cols := make([]*bitvec.Vector, a.width)
	for j, c := range a.cols {
		cols[j] = c.Shrink(a.rows)
	}
	w := make([]int, a.width)
	for j, x := range a.weights {
		w[j] = int(x)
	}
	return ColumnMatrix(a.rows, cols), w
}

// SlotRouters returns the router id occupying each slot, in slot order. The
// slice is shared; treat read-only.
func (a *Accumulator) SlotRouters() []int { return a.slotIDs }

// BlitInto ORs the first Rows() bits of every column into dst (one vector per
// column, offset at), and AddWeightsInto accumulates the column weights; the
// two stitch a sliding-window span matrix out of per-epoch accumulators in
// O(columns·words) without touching individual bits.
func (a *Accumulator) BlitInto(dst []*bitvec.Vector, at int) {
	if len(dst) != a.width {
		panic(fmt.Sprintf("aligned: blit %d columns into %d", a.width, len(dst)))
	}
	for j, c := range a.cols {
		bitvec.Blit(dst[j], at, c, a.rows)
	}
}

// AddWeightsInto adds this accumulator's column weights into dst.
func (a *Accumulator) AddWeightsInto(dst []int) {
	if len(dst) != a.width {
		panic(fmt.Sprintf("aligned: add %d weights into %d", a.width, len(dst)))
	}
	for j, w := range a.weights {
		dst[j] += int(w)
	}
}

// RemapRows rewrites det.Rows through rank (rank[slot] = the row index the
// batch reference assigns to that slot's router) and restores ascending
// order. Everything else in a Detection is row-permutation invariant, so this
// is the entire translation from incremental to batch row space.
func RemapRows(det *Detection, rank []int) {
	for i, r := range det.Rows {
		det.Rows[i] = rank[r]
	}
	sort.Ints(det.Rows)
}
