package aligned

import (
	"testing"

	"dcstream/internal/stats"
)

func TestDetectAllTwoPatterns(t *testing.T) {
	rng := stats.NewRand(60)
	m := RandomMatrix(rng, 120, 1500)
	rowsA, colsA := m.PlantPattern(rng, 30, 14)
	rowsB, colsB := m.PlantPattern(rng, 24, 12)

	dets, err := DetectAll(m, RefinedConfig(400), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) < 2 {
		t.Fatalf("found %d patterns, want 2", len(dets))
	}
	// Match each detection to one planted pattern by row overlap.
	match := func(det Detection, rows, cols []int) bool {
		return containsAll(det.Rows, rows) >= len(rows)*8/10 &&
			containsAll(det.Cols, cols) >= len(cols)*7/10
	}
	foundA, foundB := false, false
	for _, det := range dets[:2] {
		if match(det, rowsA, colsA) {
			foundA = true
		}
		if match(det, rowsB, colsB) {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("patterns not separated: A=%v B=%v (%d detections)", foundA, foundB, len(dets))
	}
	// Input matrix must be untouched: the planted bits still there.
	for _, j := range colsA {
		for _, i := range rowsA {
			if !m.Test(i, j) {
				t.Fatal("DetectAll mutated the input matrix")
			}
		}
	}
}

func TestDetectAllRespectsLimit(t *testing.T) {
	rng := stats.NewRand(61)
	m := RandomMatrix(rng, 120, 1500)
	m.PlantPattern(rng, 30, 14)
	m.PlantPattern(rng, 24, 12)
	dets, err := DetectAll(m, RefinedConfig(400), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 1 {
		t.Fatalf("limit ignored: %d detections", len(dets))
	}
}

func TestDetectAllNoPattern(t *testing.T) {
	rng := stats.NewRand(62)
	m := RandomMatrix(rng, 100, 800)
	dets, err := DetectAll(m, RefinedConfig(256), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 0 {
		t.Fatalf("false positives: %d detections on noise", len(dets))
	}
}

func TestSeparateClusters(t *testing.T) {
	// Build a tiny matrix where one detection merged two contents seen by
	// different (here: disjoint) router subsets.
	m := NewMatrix(12, 20)
	rowsA := []int{0, 1, 2, 3, 4, 5}
	colsA := []int{2, 5, 7}
	rowsB := []int{6, 7, 8, 9, 10, 11}
	colsB := []int{11, 13}
	for _, j := range colsA {
		for _, i := range rowsA {
			m.Set(i, j)
		}
	}
	for _, j := range colsB {
		for _, i := range rowsB {
			m.Set(i, j)
		}
	}
	det := Detection{
		Found: true,
		Rows:  append(append([]int(nil), rowsA...), rowsB...),
		Cols:  append(append([]int(nil), colsA...), colsB...),
	}
	clusters := SeparateClusters(m, det)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters want 2: %v", len(clusters), clusters)
	}
	if len(clusters[0]) != 3 || clusters[0][0] != 2 {
		t.Fatalf("largest cluster wrong: %v", clusters)
	}
	if len(clusters[1]) != 2 || clusters[1][0] != 11 {
		t.Fatalf("second cluster wrong: %v", clusters)
	}
}

func TestSeparateClustersDegenerate(t *testing.T) {
	m := NewMatrix(4, 4)
	if got := SeparateClusters(m, Detection{}); got != nil {
		t.Fatal("not-found detection should yield nil")
	}
	if got := SeparateClusters(m, Detection{Found: true}); got != nil {
		t.Fatal("empty columns should yield nil")
	}
}
